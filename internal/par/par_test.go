package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		counts := make([]int32, n)
		For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForDeterministicAssembly(t *testing.T) {
	// Results land in caller-indexed slots, so the output is identical
	// however the iterations are scheduled.
	n := 257
	out := make([]int, n)
	For(n, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestForSerialWithOneProc(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	sum := 0 // unguarded on purpose: must run serially under GOMAXPROCS(1)
	For(100, func(i int) { sum += i })
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}
