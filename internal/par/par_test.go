package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"finwl/internal/check"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		counts := make([]int32, n)
		if err := For(n, func(i int) { atomic.AddInt32(&counts[i], 1) }); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForDeterministicAssembly(t *testing.T) {
	// Results land in caller-indexed slots, so the output is identical
	// however the iterations are scheduled.
	n := 257
	out := make([]int, n)
	if err := For(n, func(i int) { out[i] = i * i }); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestForSerialWithOneProc(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	sum := 0 // unguarded on purpose: must run serially under GOMAXPROCS(1)
	if err := For(100, func(i int) { sum += i }); err != nil {
		t.Fatal(err)
	}
	if sum != 4950 {
		t.Fatalf("sum = %d, want 4950", sum)
	}
}

// TestForRecoversWorkerPanic is the regression test for the crash the
// old pool had: a panic in one worker took the whole process down.
func TestForRecoversWorkerPanic(t *testing.T) {
	err := For(64, func(i int) {
		if i == 13 {
			panic("boom at 13")
		}
	})
	if err == nil {
		t.Fatal("want panic error, got nil")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %T is not *PanicError", err)
	}
	if pe.Index != 13 || pe.Value != "boom at 13" {
		t.Errorf("PanicError = {Index: %d, Value: %v}", pe.Index, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError has no stack trace")
	}
}

func TestForPanicSerialPath(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	err := For(4, func(i int) {
		if i == 2 {
			panic(fmt.Errorf("wrapped %d", i))
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("serial path: got %v", err)
	}
}

func TestForErrStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	sentinel := errors.New("fail")
	err := ForErr(nil, 100000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if got := ran.Load(); got == 100000 {
		t.Error("all iterations ran despite early error")
	}
}

func TestForErrLowestIndexWins(t *testing.T) {
	// Every iteration fails; the reported error must be a low index —
	// deterministically index 0 is always claimed, and no later error
	// may shadow an earlier one that was recorded.
	for trial := 0; trial < 10; trial++ {
		err := ForErr(nil, 64, func(i int) error { return fmt.Errorf("e%d", i) })
		if err == nil {
			t.Fatal("want error")
		}
		if err.Error() != "e0" {
			t.Fatalf("trial %d: got %v, want e0", trial, err)
		}
	}
}

func TestForErrPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForErr(ctx, 1000, func(i int) error { ran.Add(1); return nil })
	if !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v should unwrap to context.Canceled", err)
	}
}

func TestForErrCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForErr(ctx, 100000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := ran.Load(); got == 100000 {
		t.Error("cancellation did not stop the pool")
	}
}

func TestForErrNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		_ = For(256, func(i int) {
			if i%17 == 0 {
				panic(i)
			}
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// ForCost below the cutover must run serially in index order on the
// calling goroutine — no pool overhead for small chains.
func TestForCostSerialBelowCutover(t *testing.T) {
	var order []int
	err := ForCost(nil, 8,
		func(i int) int64 { return 10 }, // total 80 ≪ minParallelCost
		func(i int) error { order = append(order, i); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial path visited %v, want ascending index order", order)
		}
	}
	if len(order) != 8 {
		t.Fatalf("visited %d items, want 8", len(order))
	}
}

// Above the cutover every index still runs exactly once, whatever the
// descending-cost chunk schedule does.
func TestForCostParallelCoversEveryIndexOnce(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 100
	var counts [n]atomic.Int32
	err := ForCost(nil, n,
		func(i int) int64 { return int64(1+i) * 1 << 12 },
		func(i int) error { counts[i].Add(1); return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// Degenerate cost models must not break the cutover: negative costs
// clamp to zero and a cost function at MaxCost saturates instead of
// overflowing the total.
func TestForCostDegenerateCosts(t *testing.T) {
	var ran atomic.Int32
	if err := ForCost(nil, 4,
		func(i int) int64 { return -5 },
		func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 4 {
		t.Fatalf("negative costs: ran %d, want 4", ran.Load())
	}
	ran.Store(0)
	if err := ForCost(nil, 3,
		func(i int) int64 { return MaxCost },
		func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 3 {
		t.Fatalf("saturating costs: ran %d, want 3", ran.Load())
	}
}

// A pre-canceled context stops ForCost with the typed cancellation
// error on the parallel path, matching ForErr's contract.
func TestForCostPreCanceled(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForCost(ctx, 50,
		func(i int) int64 { return 1 << 14 },
		func(i int) error { return nil })
	if err == nil || !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// An iteration error surfaces and stops the remaining work.
func TestForCostErrorStops(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	var ran atomic.Int32
	err := ForCost(nil, 64,
		func(i int) int64 { return 1 << 12 },
		func(i int) error {
			if ran.Add(1) == 3 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if ran.Load() == 64 {
		t.Fatal("error did not stop unclaimed work")
	}
}
