// Package par provides the tiny deterministic worker-pool primitive
// the construction paths fan out over: a bounded parallel for-loop.
// Callers index into pre-sized result slices so assembly order never
// depends on scheduling, only the wall-clock does.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// For runs fn(i) for every i in [0, n) across up to
// runtime.GOMAXPROCS(0) goroutines and returns when all calls have
// finished. Iterations are claimed dynamically (an atomic counter), so
// unevenly sized work items — e.g. population levels whose state
// spaces grow with k — balance themselves. With one processor, or
// n ≤ 1, it degenerates to a plain loop with no goroutines at all.
//
// fn must be safe to call concurrently for distinct i.
func For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
