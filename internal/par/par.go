// Package par provides the tiny deterministic worker-pool primitive
// the construction paths fan out over: a bounded parallel for-loop.
// Callers index into pre-sized result slices so assembly order never
// depends on scheduling, only the wall-clock does.
//
// The pool is hardened: a panic inside one iteration no longer kills
// the process. Each worker recovers panics into *PanicError values,
// remaining iterations are abandoned as soon as any iteration fails or
// the caller's context is canceled, and the error reported back is the
// one from the lowest-indexed failing iteration — so the outcome is
// deterministic even though scheduling is not.
package par

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"finwl/internal/check"
)

// Ctx is the subset of context.Context the pool consults, kept as a
// local interface so plain For callers pass nothing.
type Ctx interface {
	Err() error
	Done() <-chan struct{}
}

// PanicError wraps a panic recovered from a worker iteration.
type PanicError struct {
	Index int    // iteration that panicked
	Value any    // the recovered value
	Stack []byte // stack trace captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: panic on iteration %d: %v", e.Index, e.Value)
}

// For runs fn(i) for every i in [0, n) across up to
// runtime.GOMAXPROCS(0) goroutines and returns when all calls have
// finished or the first failure has been observed. Iterations are
// claimed dynamically (an atomic counter), so unevenly sized work
// items — e.g. population levels whose state spaces grow with k —
// balance themselves. With one processor, or n ≤ 1, it degenerates to
// a plain loop with no goroutines at all.
//
// A panic in fn is recovered and returned as a *PanicError; once any
// iteration fails, unclaimed iterations are skipped. fn must be safe
// to call concurrently for distinct i.
func For(n int, fn func(i int)) error {
	return ForErr(nil, n, func(i int) error { fn(i); return nil })
}

// minParallelCost is the ForCost cutover: total modeled work below it
// runs serially. The unit is the callers' state-space cost model
// (≈ matrix entries touched, tens of ns each), so the threshold sits
// where the work is a few goroutine lifetimes — below it the pool's
// spawn/join overhead is the dominant term and parallel construction
// loses to a plain loop, which is exactly the regression the perf
// harness caught on small chains.
const minParallelCost = int64(1) << 16

// ForCost is ForErr with a per-item cost model driving both the
// serial/parallel cutover and the claim order. cost(i) is the modeled
// work of item i in arbitrary consistent units (the chain builders
// feed it the statespace.LevelSize/ChainPrice entry counts):
//
//   - when the total modeled cost is below minParallelCost, or only
//     one processor is available, the loop runs serially in index
//     order with zero goroutines;
//   - otherwise workers claim items from a descending-cost schedule in
//     chunks, so the largest levels start first (load balance) and the
//     tail of tiny levels is taken in batches instead of one atomic
//     claim each.
//
// Failure handling matches ForErr — panics become *PanicError values,
// the first failure stops unclaimed work, cancellation surfaces as
// check.ErrCanceled — except that "first" means first in the
// deterministic descending-cost schedule rather than index order.
func ForCost(ctx Ctx, n int, cost func(i int) int64, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var total int64
	order := make([]int, n)
	costs := make([]int64, n)
	for i := range order {
		order[i] = i
		c := cost(i)
		if c < 0 {
			c = 0
		}
		costs[i] = c
		if total < MaxCost-c {
			total += c
		} else {
			total = MaxCost
		}
	}
	if total < minParallelCost || runtime.GOMAXPROCS(0) <= 1 || n <= 1 {
		return ForErr(ctx, n, fn)
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })
	chunk := n / (runtime.GOMAXPROCS(0) * 4)
	if chunk < 1 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	return ForErr(ctx, chunks, func(ci int) error {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for _, i := range order[lo:hi] {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	})
}

// MaxCost is the saturation bound of ForCost's cost accumulation.
const MaxCost = int64(1) << 62

// ForErr is For with per-iteration errors and optional cancellation:
// ctx may be nil (never canceled) or a context.Context. The first
// error by iteration index wins; a canceled context surfaces as
// check.ErrCanceled. All spawned goroutines have exited by the time
// ForErr returns, whatever the outcome.
func ForErr(ctx Ctx, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	ctxErr := func() error {
		if ctx == nil {
			return nil
		}
		if err := ctx.Err(); err != nil {
			return &canceled{cause: err}
		}
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctxErr(); err != nil {
				return err
			}
			if err := runOne(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if firstErr == nil || i < firstIdx {
			firstErr, firstIdx = err, i
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				if failed.Load() {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					failed.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := runOne(i, fn); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Cancellation wins only when no iteration failed on its own: an
	// iteration error is more specific than the cancellation racing it.
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctxErr()
}

// canceled adapts a raw ctx.Err() into the typed-error contract
// without importing context (ctx may be any Ctx implementation).
type canceled struct{ cause error }

func (e *canceled) Error() string {
	return "par: " + check.ErrCanceled.Error() + ": " + e.cause.Error()
}
func (e *canceled) Unwrap() error { return e.cause }
func (e *canceled) Is(target error) bool {
	return target == check.ErrCanceled
}

// runOne executes one iteration with panic containment.
func runOne(i int, fn func(i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Index: i, Value: r, Stack: buf}
		}
	}()
	return fn(i)
}
