package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// LU is an LU factorization with partial pivoting: P·A = L·U, where L
// is unit lower triangular and U is upper triangular. A single
// factorization supports both right solves (A·x = b) and left solves
// (x·A = b), which is what the transient queueing solver needs: one
// factorization of I−P_k per population level serves every epoch.
type LU struct {
	lu   *Matrix // packed L (below diagonal, unit implied) and U
	perm []int   // row i of lu is row perm[i] of A
	sign float64 // permutation parity, for Det
}

// Factor computes the LU factorization of the square matrix a with
// partial pivoting. It returns ErrSingular when a pivot is exactly
// zero; near-singular systems succeed but with large condition
// numbers the caller is expected to validate residuals.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at/below row k.
		p := k
		maxAbs := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.data[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			perm[k], perm[p] = perm[p], perm[k]
			sign = -sign
		}
		pivot := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu.data[i*n+k] / pivot
			lu.data[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := lu.data[i*n : (i+1)*n]
			rk := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, perm: perm, sign: sign}, nil
}

// N returns the dimension of the factored matrix.
func (f *LU) N() int { return f.lu.rows }

// Solve solves A·x = b and returns x. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	n := f.N()
	if len(b) != n {
		panic(fmt.Sprintf("matrix: Solve length %d, want %d", len(b), n))
	}
	x := make([]float64, n)
	// Apply permutation: x = P·b.
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	d := f.lu.data
	// Forward substitution with unit lower triangular L.
	for i := 1; i < n; i++ {
		row := d[i*n : i*n+i]
		s := x[i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := d[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveLeft solves x·A = b (equivalently Aᵀ·xᵀ = bᵀ) and returns x.
// b is not modified.
func (f *LU) SolveLeft(b []float64) []float64 {
	n := f.N()
	if len(b) != n {
		panic(fmt.Sprintf("matrix: SolveLeft length %d, want %d", len(b), n))
	}
	// Aᵀ = Uᵀ·Lᵀ·P, so solve Uᵀ·z = b, then Lᵀ·w = z, then undo P.
	d := f.lu.data
	z := make([]float64, n)
	copy(z, b)
	// Uᵀ is lower triangular with U's diagonal: forward substitution.
	for i := 0; i < n; i++ {
		s := z[i]
		for j := 0; j < i; j++ {
			s -= d[j*n+i] * z[j]
		}
		z[i] = s / d[i*n+i]
	}
	// Lᵀ is unit upper triangular: back substitution.
	for i := n - 2; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < n; j++ {
			s -= d[j*n+i] * z[j]
		}
		z[i] = s
	}
	// P·x = w  ⇒  x[perm[i]] = w[i].
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[f.perm[i]] = z[i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.N()
	det := f.sign
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Inverse returns A⁻¹ computed column by column from the
// factorization.
func (f *LU) Inverse() *Matrix {
	n := f.N()
	inv := New(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col := f.Solve(e)
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.data[i*n+j] = col[i]
		}
	}
	return inv
}

// Solve is a convenience wrapper that factors a and solves a·x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse is a convenience wrapper that factors a and inverts it.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}
