package matrix

import (
	"fmt"
	"math"

	"finwl/internal/check"
	"finwl/internal/obs"
)

// ErrSingular is returned when a factorization or solve encounters a
// numerically singular matrix. It is the same value as
// check.ErrSingular, so callers can match either sentinel.
var ErrSingular = check.ErrSingular

// Factorization metrics: count and wall time of every dense LU, the
// dominant cost of solver construction. The solve kernels themselves
// are deliberately uninstrumented here — internal/core counts epochs,
// and a per-solve timer would put two clock reads on a sub-µs path.
var (
	mFactors = obs.Default.Counter("finwl_lu_factor_total",
		"Dense LU factorizations performed.")
	mFactorTime = obs.Default.Histogram("finwl_lu_factor_seconds",
		"Wall time of dense LU factorizations.",
		obs.ExpBounds(10_000, 4, 14), 1e-9) // 10µs .. ~2.7s
)

// LU is an LU factorization with partial pivoting: P·A = L·U, where L
// is unit lower triangular and U is upper triangular. A single
// factorization supports both right solves (A·x = b) and left solves
// (x·A = b), which is what the transient queueing solver needs: one
// factorization of I−P_k per population level serves every epoch.
type LU struct {
	lu     *Matrix // packed L (below diagonal, unit implied) and U
	perm   []int   // row i of lu is row perm[i] of A
	sign   float64 // permutation parity, for Det
	starts []int   // cycle starts of perm, for in-place permutation
	anorm  float64 // ‖A‖₁ of the factored matrix, for Cond1Est
}

// Factoring switches to a cache-blocked elimination at this dimension:
// the unblocked right-looking update streams the whole trailing
// submatrix once per pivot column, while the blocked form touches it
// once per luBlock columns, keeping each target row hot in cache
// across the block. The two paths produce bitwise-identical factors
// (same pivots, same per-element operation order), which the tests
// assert.
const (
	luBlockThreshold = 128
	luBlock          = 48
)

// Factor computes the LU factorization of the square matrix a with
// partial pivoting. It returns ErrSingular when a pivot is exactly
// zero; near-singular systems succeed but with large condition
// numbers the caller is expected to validate residuals.
func Factor(a *Matrix) (*LU, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: Factor requires a square matrix, got %dx%d", a.rows, a.cols)
	}
	mFactors.Inc()
	defer mFactorTime.Start().End()
	n := a.rows
	lu := a.Clone()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var sign float64
	var err error
	if n < luBlockThreshold {
		sign, err = factorPanel(lu.data, n, perm, 1, 0, n, n)
	} else {
		sign, err = factorBlocked(lu.data, n, perm)
	}
	if err != nil {
		return nil, err
	}
	return &LU{lu: lu, perm: perm, sign: sign, starts: permCycleStarts(perm), anorm: a.Norm1()}, nil
}

// factorPanel eliminates pivot columns kb..ke−1 of the n×n matrix d,
// restricting the row updates to columns < jEnd. With (kb, ke, jEnd) =
// (0, n, n) it is the classic unblocked right-looking elimination;
// with jEnd = ke it factors one panel of a blocked sweep, leaving the
// columns right of the panel untouched. Row swaps always span the full
// row so L multipliers and pending columns travel with their row.
func factorPanel(d []float64, n int, perm []int, sign float64, kb, ke, jEnd int) (float64, error) {
	for k := kb; k < ke; k++ {
		// Partial pivot: largest magnitude in column k at/below row k.
		p := k
		maxAbs := math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(d[i*n+k]); v > maxAbs {
				maxAbs = v
				p = i
			}
		}
		if maxAbs == 0 {
			return sign, ErrSingular
		}
		if p != k {
			rk := d[k*n : (k+1)*n]
			rp := d[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			perm[k], perm[p] = perm[p], perm[k]
			sign = -sign
		}
		pivot := d[k*n+k]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pivot
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := d[i*n : i*n+jEnd]
			rk := d[k*n : k*n+jEnd]
			for j := k + 1; j < jEnd; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return sign, nil
}

// factorBlocked runs the right-looking elimination in panels of
// luBlock columns. After each panel is factored (updates confined to
// the panel), the deferred eliminations are replayed on the columns to
// its right — first completing the panel's U rows, then the trailing
// submatrix — with pivot steps applied in the same increasing order
// and one row kept hot across the whole block.
func factorBlocked(d []float64, n int, perm []int) (float64, error) {
	sign := 1.0
	for kb := 0; kb < n; kb += luBlock {
		ke := kb + luBlock
		if ke > n {
			ke = n
		}
		var err error
		sign, err = factorPanel(d, n, perm, sign, kb, ke, ke)
		if err != nil {
			return sign, err
		}
		if ke == n {
			break
		}
		// Complete the panel's U rows: row r still owes the updates
		// from pivots kb..r−1 on the columns right of the panel.
		for r := kb + 1; r < ke; r++ {
			rr := d[r*n+ke : r*n+n]
			for k := kb; k < r; k++ {
				m := d[r*n+k]
				if m == 0 {
					continue
				}
				rk := d[k*n+ke : k*n+n]
				for j, v := range rk {
					rr[j] -= m * v
				}
			}
		}
		// Trailing update: each row below the panel replays the whole
		// block of pivots while it is resident in cache.
		for i := ke; i < n; i++ {
			ri := d[i*n+ke : i*n+n]
			for k := kb; k < ke; k++ {
				m := d[i*n+k]
				if m == 0 {
					continue
				}
				rk := d[k*n+ke : k*n+n]
				for j, v := range rk {
					ri[j] -= m * v
				}
			}
		}
	}
	return sign, nil
}

// permCycleStarts returns the start index of every non-trivial cycle
// of perm, enabling allocation-free in-place application of the
// permutation in SolveLeftInto.
func permCycleStarts(perm []int) []int {
	visited := make([]bool, len(perm))
	var starts []int
	for i, p := range perm {
		if visited[i] || p == i {
			visited[i] = true
			continue
		}
		starts = append(starts, i)
		for j := i; !visited[j]; j = perm[j] {
			visited[j] = true
		}
	}
	return starts
}

// N returns the dimension of the factored matrix.
func (f *LU) N() int { return f.lu.rows }

// Solve solves A·x = b and returns x. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	x := make([]float64, f.N())
	f.SolveInto(x, b)
	return x
}

// SolveInto solves A·x = b into dst and returns dst. dst must have
// length N and must not alias b; b is not modified. It performs no
// allocations.
func (f *LU) SolveInto(dst, b []float64) []float64 {
	n := f.N()
	if len(b) != n {
		panic(fmt.Sprintf("matrix: Solve length %d, want %d", len(b), n))
	}
	if len(dst) != n {
		panic(fmt.Sprintf("matrix: SolveInto dst length %d, want %d", len(dst), n))
	}
	x := dst
	// Apply permutation: x = P·b.
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	d := f.lu.data
	// Forward substitution with unit lower triangular L.
	for i := 1; i < n; i++ {
		row := d[i*n : i*n+i]
		s := x[i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := d[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveLeft solves x·A = b (equivalently Aᵀ·xᵀ = bᵀ) and returns x.
// b is not modified.
func (f *LU) SolveLeft(b []float64) []float64 {
	x := make([]float64, f.N())
	f.SolveLeftInto(x, b)
	return x
}

// SolveLeftInto solves x·A = b into dst and returns dst. dst must
// have length N; it may alias b (b is consumed in place in that
// case). It performs no allocations: the final permutation is applied
// in place by walking the cycles precomputed at factor time.
func (f *LU) SolveLeftInto(dst, b []float64) []float64 {
	n := f.N()
	if len(b) != n {
		panic(fmt.Sprintf("matrix: SolveLeft length %d, want %d", len(b), n))
	}
	if len(dst) != n {
		panic(fmt.Sprintf("matrix: SolveLeftInto dst length %d, want %d", len(dst), n))
	}
	// Aᵀ = Uᵀ·Lᵀ·P, so solve Uᵀ·z = b, then Lᵀ·w = z, then undo P.
	d := f.lu.data
	z := dst
	if &z[0] != &b[0] {
		copy(z, b)
	}
	// Uᵀ is lower triangular with U's diagonal: forward substitution.
	for i := 0; i < n; i++ {
		s := z[i]
		for j := 0; j < i; j++ {
			s -= d[j*n+i] * z[j]
		}
		z[i] = s / d[i*n+i]
	}
	// Lᵀ is unit upper triangular: back substitution.
	for i := n - 2; i >= 0; i-- {
		s := z[i]
		for j := i + 1; j < n; j++ {
			s -= d[j*n+i] * z[j]
		}
		z[i] = s
	}
	// P·x = w  ⇒  x[perm[i]] = w[i], applied in place cycle by cycle.
	for _, c := range f.starts {
		v := z[c]
		for i := f.perm[c]; i != c; i = f.perm[i] {
			z[i], v = v, z[i]
		}
		z[c] = v
	}
	return z
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.N()
	det := f.sign
	for i := 0; i < n; i++ {
		det *= f.lu.data[i*n+i]
	}
	return det
}

// Inverse returns A⁻¹ computed column by column from the
// factorization.
func (f *LU) Inverse() *Matrix {
	n := f.N()
	inv := New(n, n)
	e := make([]float64, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		f.SolveInto(col, e)
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.data[i*n+j] = col[i]
		}
	}
	return inv
}

// Solve is a convenience wrapper that factors a and solves a·x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse is a convenience wrapper that factors a and inverts it.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}
