package matrix

import (
	"math"
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	// Diagonal dominance keeps the systems well conditioned without
	// making pivoting trivial everywhere.
	for i := 0; i < n; i++ {
		m.data[i*n+i] += 2
	}
	return m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// The blocked elimination must be bitwise-identical to the unblocked
// one: same pivots, same factors, same parity.
func TestFactorBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{luBlockThreshold, 150, 200, 2*luBlock + 5} {
		a := randMatrix(rng, n)

		ref := a.Clone()
		refPerm := make([]int, n)
		for i := range refPerm {
			refPerm[i] = i
		}
		refSign, err := factorPanel(ref.data, n, refPerm, 1, 0, n, n)
		if err != nil {
			t.Fatal(err)
		}

		blk := a.Clone()
		blkPerm := make([]int, n)
		for i := range blkPerm {
			blkPerm[i] = i
		}
		blkSign, err := factorBlocked(blk.data, n, blkPerm)
		if err != nil {
			t.Fatal(err)
		}

		if refSign != blkSign {
			t.Fatalf("n=%d: sign %v vs %v", n, refSign, blkSign)
		}
		for i := range refPerm {
			if refPerm[i] != blkPerm[i] {
				t.Fatalf("n=%d: perm[%d] = %d vs %d", n, i, refPerm[i], blkPerm[i])
			}
		}
		for i, v := range ref.data {
			if v != blk.data[i] {
				t.Fatalf("n=%d: lu[%d] = %v (unblocked) vs %v (blocked)", n, i, v, blk.data[i])
			}
		}
	}
}

// Factoring through the public API (which selects the blocked path for
// large n) must still solve accurately.
func TestFactorBlockedSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 160
	a := randMatrix(rng, n)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(rng, n)
	b := a.MulVec(x)
	got := f.Solve(b)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", i, got[i], x[i])
		}
	}
	bl := a.VecMul(x) // x·a
	gotL := f.SolveLeft(bl)
	for i := range x {
		if math.Abs(gotL[i]-x[i]) > 1e-9 {
			t.Fatalf("left x[%d] = %v, want %v", i, gotL[i], x[i])
		}
	}
}

// The Into variants must agree exactly with the allocating wrappers
// and perform zero allocations.
func TestSolveIntoMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 17, 64, 140} {
		a := randMatrix(rng, n)
		f, err := Factor(a)
		if err != nil {
			t.Fatal(err)
		}
		b := randVec(rng, n)

		want := f.Solve(b)
		dst := make([]float64, n)
		got := f.SolveInto(dst, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: SolveInto[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}

		wantL := f.SolveLeft(b)
		dstL := make([]float64, n)
		gotL := f.SolveLeftInto(dstL, b)
		for i := range wantL {
			if gotL[i] != wantL[i] {
				t.Fatalf("n=%d: SolveLeftInto[%d] = %v, want %v", n, i, gotL[i], wantL[i])
			}
		}

		// Aliased left solve: dst == b is allowed and must agree too.
		bb := append([]float64(nil), b...)
		f.SolveLeftInto(bb, bb)
		for i := range wantL {
			if bb[i] != wantL[i] {
				t.Fatalf("n=%d: aliased SolveLeftInto[%d] = %v, want %v", n, i, bb[i], wantL[i])
			}
		}

		if allocs := testing.AllocsPerRun(10, func() {
			f.SolveInto(dst, b)
			f.SolveLeftInto(dstL, b)
		}); allocs != 0 {
			t.Fatalf("n=%d: Into kernels allocated %v times per run", n, allocs)
		}
	}
}

func TestVecMulIntoMatchesVecMul(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(7, 13)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	x := randVec(rng, 7)
	want := m.VecMul(x)
	dst := make([]float64, 13)
	dst[0] = 42 // must be overwritten, not accumulated into
	got := m.VecMulInto(dst, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VecMulInto[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	y := randVec(rng, 13)
	wantC := m.MulVec(y)
	dstC := make([]float64, 7)
	gotC := m.MulVecInto(dstC, y)
	for i := range wantC {
		if gotC[i] != wantC[i] {
			t.Fatalf("MulVecInto[%d] = %v, want %v", i, gotC[i], wantC[i])
		}
	}

	if allocs := testing.AllocsPerRun(10, func() {
		m.VecMulInto(dst, x)
		m.MulVecInto(dstC, y)
	}); allocs != 0 {
		t.Fatalf("Into products allocated %v times per run", allocs)
	}
}

func BenchmarkPerfFactor200(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix(rng, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerfSolveLeftInto200(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	a := randMatrix(rng, 200)
	f, err := Factor(a)
	if err != nil {
		b.Fatal(err)
	}
	x := randVec(rng, 200)
	dst := make([]float64, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.SolveLeftInto(dst, x)
	}
}
