package matrix

import "math"

// padé coefficients for the degree-13 diagonal approximant used by
// the scaling-and-squaring method (Higham 2005).
var pade13 = [...]float64{
	64764752532480000, 32382376266240000, 7771770303897600,
	1187353796428800, 129060195264000, 10559470521600,
	670442572800, 33522128640, 1323241920,
	40840800, 960960, 16380, 182, 1,
}

// Expm returns the matrix exponential e^A computed with the
// scaling-and-squaring method and a degree-13 Padé approximant.
// This is the workhorse behind phase-type distribution functions
// F(t) = 1 − p·exp(−tB)·ε.
func Expm(a *Matrix) *Matrix {
	if a.rows != a.cols {
		panic("matrix: Expm requires a square matrix")
	}
	n := a.rows
	norm := a.NormInf()
	// Scaling: choose s so that ‖A/2^s‖∞ ≤ θ13 ≈ 5.37.
	const theta13 = 5.371920351148152
	s := 0
	if norm > theta13 {
		s = int(math.Ceil(math.Log2(norm / theta13)))
	}
	as := a.Scale(1 / math.Exp2(float64(s)))

	// Padé 13: r(A) = q(A)⁻¹ p(A) with p, q split into even/odd parts.
	a2 := as.Mul(as)
	a4 := a2.Mul(a2)
	a6 := a4.Mul(a2)
	b := pade13[:]

	// u = A(A6(b13·A6 + b11·A4 + b9·A2) + b7·A6 + b5·A4 + b3·A2 + b1·I)
	w1 := a6.Scale(b[13]).Add(a4.Scale(b[11])).Add(a2.Scale(b[9]))
	w2 := a6.Scale(b[7]).Add(a4.Scale(b[5])).Add(a2.Scale(b[3])).Add(Identity(n).Scale(b[1]))
	u := as.Mul(a6.Mul(w1).Add(w2))
	// v = A6(b12·A6 + b10·A4 + b8·A2) + b6·A6 + b4·A4 + b2·A2 + b0·I
	z1 := a6.Scale(b[12]).Add(a4.Scale(b[10])).Add(a2.Scale(b[8]))
	z2 := a6.Scale(b[6]).Add(a4.Scale(b[4])).Add(a2.Scale(b[2])).Add(Identity(n).Scale(b[0]))
	v := a6.Mul(z1).Add(z2)

	// r = (v − u)⁻¹ (v + u)
	f, err := Factor(v.Sub(u))
	if err != nil {
		// v − u is nonsingular for any A after scaling; a singular
		// result means the input contained NaN/Inf.
		panic("matrix: Expm: singular Padé denominator (NaN or Inf input?)")
	}
	num := v.Add(u)
	r := New(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			col[i] = num.data[i*n+j]
		}
		x := f.Solve(col)
		for i := 0; i < n; i++ {
			r.data[i*n+j] = x[i]
		}
	}
	// Undo scaling by repeated squaring.
	for i := 0; i < s; i++ {
		r = r.Mul(r)
	}
	return r
}
