package matrix

import "math"

// Norm1 returns the maximum absolute column sum of m.
func (m *Matrix) Norm1() float64 {
	sums := make([]float64, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			sums[j] += math.Abs(v)
		}
	}
	var max float64
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

// NormInf returns the maximum absolute row sum of m.
func (m *Matrix) NormInf() float64 {
	var max float64
	for i := 0; i < m.rows; i++ {
		var s float64
		row := m.data[i*m.cols : (i+1)*m.cols]
		for _, v := range row {
			s += math.Abs(v)
		}
		if s > max {
			max = s
		}
	}
	return max
}

// FrobeniusNorm returns the square root of the sum of squared
// elements of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}
