package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

// randomDiagDominant returns a comfortably nonsingular matrix.
func randomDiagDominant(rng *rand.Rand, n int) *Matrix {
	m := randomMatrix(rng, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+float64(n)+1)
	}
	return m
}

func TestNewZeroInitialized(t *testing.T) {
	m := New(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromRowsAndAccessors(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong layout: %v", m)
	}
	if got := m.Row(1); got[0] != 3 || got[1] != 4 {
		t.Fatalf("Row(1) = %v", got)
	}
	if got := m.Col(0); got[0] != 1 || got[1] != 3 {
		t.Fatalf("Col(0) = %v", got)
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentityAndDiag(t *testing.T) {
	id := Identity(3)
	d := Diag([]float64{1, 1, 1})
	if !id.EqualTol(d, 0) {
		t.Fatal("Identity(3) != Diag(ones)")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomMatrix(rng, 5)
	if got := m.Mul(Identity(5)); !got.EqualTol(m, 1e-14) {
		t.Fatal("M·I != M")
	}
	if got := Identity(5).Mul(m); !got.EqualTol(m, 1e-14) {
		t.Fatal("I·M != M")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !got.EqualTol(want, 0) {
		t.Fatalf("got\n%vwant\n%v", got, want)
	}
}

func TestMulVecAndVecMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if got := a.MulVec([]float64{1, 1, 1}); got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
	if got := a.VecMul([]float64{1, 1}); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("VecMul = %v", got)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomMatrix(rng, 4)
	if !m.Transpose().Transpose().EqualTol(m, 0) {
		t.Fatal("(Mᵀ)ᵀ != M")
	}
}

func TestPow(t *testing.T) {
	a := FromRows([][]float64{{2, 0}, {0, 3}})
	want := FromRows([][]float64{{8, 0}, {0, 27}})
	if got := a.Pow(3); !got.EqualTol(want, 0) {
		t.Fatalf("Pow(3) = %v", got)
	}
	if got := a.Pow(0); !got.EqualTol(Identity(2), 0) {
		t.Fatalf("Pow(0) = %v", got)
	}
}

// Property: (A·B)·x == A·(B·x) for random matrices and vectors.
func TestMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		a, b := randomMatrix(r, n), randomMatrix(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		left := a.Mul(b).MulVec(x)
		right := a.MulVec(b.MulVec(x))
		return VecMaxAbsDiff(left, right) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: VecMul is the transpose dual of MulVec: x·A == Aᵀ·x.
func TestVecMulTransposeDualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		a := randomMatrix(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		return VecMaxAbsDiff(a.VecMul(x), a.Transpose().MulVec(x)) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	x, err := Solve(a, []float64{10, 12})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+3y=10, 6x+3y=12 → x=1, y=2
	if !almostEqual(x[0], 1, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("solve = %v, want [1 2]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Factor(a); err == nil {
		t.Fatal("Factor of singular matrix succeeded")
	}
}

// Property: Solve residual ‖Ax−b‖ is tiny for random well-conditioned A.
func TestLUSolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomDiagDominant(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		fct, err := Factor(a)
		if err != nil {
			return false
		}
		x := fct.Solve(b)
		return VecMaxAbsDiff(a.MulVec(x), b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: SolveLeft residual ‖xA−b‖ is tiny.
func TestLUSolveLeftResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomDiagDominant(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		fct, err := Factor(a)
		if err != nil {
			return false
		}
		x := fct.SolveLeft(b)
		return VecMaxAbsDiff(a.VecMul(x), b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		a := randomDiagDominant(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Mul(inv).EqualTol(Identity(n), 1e-9) {
			t.Fatalf("A·A⁻¹ != I for n=%d", n)
		}
		if !inv.Mul(a).EqualTol(Identity(n), 1e-9) {
			t.Fatalf("A⁻¹·A != I for n=%d", n)
		}
	}
}

func TestDet(t *testing.T) {
	a := FromRows([][]float64{{3, 8}, {4, 6}})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Det(), -14, 1e-12) {
		t.Fatalf("det = %v, want -14", f.Det())
	}
	// Permutation parity: a matrix needing a row swap.
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	fb, err := Factor(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fb.Det(), -1, 1e-12) {
		t.Fatalf("det of swap = %v, want -1", fb.Det())
	}
}

func TestExpmZeroIsIdentity(t *testing.T) {
	if got := Expm(New(4, 4)); !got.EqualTol(Identity(4), 1e-14) {
		t.Fatal("exp(0) != I")
	}
}

func TestExpmDiagonal(t *testing.T) {
	a := Diag([]float64{1, -2, 0.5})
	got := Expm(a)
	want := Diag([]float64{math.E, math.Exp(-2), math.Exp(0.5)})
	if !got.EqualTol(want, 1e-12) {
		t.Fatalf("exp(diag) =\n%vwant\n%v", got, want)
	}
}

func TestExpmNilpotent(t *testing.T) {
	// For strictly upper triangular N with N²=0: exp(N) = I + N.
	a := FromRows([][]float64{{0, 3}, {0, 0}})
	want := FromRows([][]float64{{1, 3}, {0, 1}})
	if got := Expm(a); !got.EqualTol(want, 1e-12) {
		t.Fatalf("exp(nilpotent) = %v", got)
	}
}

// Property: exp(sI + A) = e^s·exp(A) since sI commutes with everything.
func TestExpmScalarShiftProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomMatrix(r, n)
		s := r.NormFloat64()
		left := Expm(a.Add(Identity(n).Scale(s)))
		right := Expm(a).Scale(math.Exp(s))
		return left.MaxAbsDiff(right) < 1e-8*math.Max(1, right.NormInf())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: exp of a generator (rows sum to 0, non-negative
// off-diagonals) is row-stochastic.
func TestExpmGeneratorStochasticProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(5)
		g := New(n, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				if i != j {
					v := r.Float64() * 3
					g.Set(i, j, v)
					rowSum += v
				}
			}
			g.Set(i, i, -rowSum)
		}
		p := Expm(g)
		for i := 0; i < n; i++ {
			if !almostEqual(VecSum(p.Row(i)), 1, 1e-9) {
				return false
			}
			for j := 0; j < n; j++ {
				if p.At(i, j) < -1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExpmLargeNormScaling(t *testing.T) {
	// Exercises the squaring loop: ‖A‖ >> θ13.
	a := Diag([]float64{-50, -80})
	got := Expm(a)
	want := Diag([]float64{math.Exp(-50), math.Exp(-80)})
	if math.Abs(got.At(0, 0)-want.At(0, 0)) > 1e-12*want.At(0, 0) {
		t.Fatalf("exp(-50) = %v, want %v", got.At(0, 0), want.At(0, 0))
	}
}

func TestKronKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 5}, {6, 7}})
	got := Kron(a, b)
	want := FromRows([][]float64{
		{0, 5, 0, 10},
		{6, 7, 12, 14},
		{0, 15, 0, 20},
		{18, 21, 24, 28},
	})
	if !got.EqualTol(want, 0) {
		t.Fatalf("Kron =\n%vwant\n%v", got, want)
	}
}

// Property: (A⊗B)(x⊗y) == (Ax)⊗(By).
func TestKronMixedProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n, m := 1+r.Intn(4), 1+r.Intn(4)
		a, b := randomMatrix(r, n), randomMatrix(r, m)
		x := make([]float64, n)
		y := make([]float64, m)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		left := Kron(a, b).MulVec(KronVec(x, y))
		right := KronVec(a.MulVec(x), b.MulVec(y))
		return VecMaxAbsDiff(left, right) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNorms(t *testing.T) {
	a := FromRows([][]float64{{1, -2}, {-3, 4}})
	if a.Norm1() != 6 {
		t.Fatalf("Norm1 = %v, want 6", a.Norm1())
	}
	if a.NormInf() != 7 {
		t.Fatalf("NormInf = %v, want 7", a.NormInf())
	}
	if !almostEqual(a.FrobeniusNorm(), math.Sqrt(30), 1e-12) {
		t.Fatalf("Frobenius = %v", a.FrobeniusNorm())
	}
}

func TestVectorHelpers(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := VecSum(Ones(5)); got != 5 {
		t.Fatalf("VecSum(Ones) = %v", got)
	}
	u := Unit(3, 1)
	if u[0] != 0 || u[1] != 1 || u[2] != 0 {
		t.Fatalf("Unit = %v", u)
	}
	if got := Norm1([]float64{-1, 2, -3}); got != 6 {
		t.Fatalf("Norm1 = %v", got)
	}
	if got := NormInf([]float64{-1, 2, -3}); got != 3 {
		t.Fatalf("NormInf = %v", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v", got)
	}
	v := Normalize1([]float64{2, 2})
	if v[0] != 0.5 || v[1] != 0.5 {
		t.Fatalf("Normalize1 = %v", v)
	}
	if got := VecAdd([]float64{1, 2}, []float64{3, 4}); got[0] != 4 || got[1] != 6 {
		t.Fatalf("VecAdd = %v", got)
	}
	if got := VecSub([]float64{1, 2}, []float64{3, 4}); got[0] != -2 || got[1] != -2 {
		t.Fatalf("VecSub = %v", got)
	}
	if got := VecScale(2, []float64{1, 2}); got[0] != 2 || got[1] != 4 {
		t.Fatalf("VecScale = %v", got)
	}
}

func TestNormalize1PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normalize1 of zero vector did not panic")
		}
	}()
	Normalize1([]float64{0, 0})
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{4, 3}, {2, 1}})
	if got := a.Add(b); !got.EqualTol(FromRows([][]float64{{5, 5}, {5, 5}}), 0) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(a); !got.EqualTol(New(2, 2), 0) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); !got.EqualTol(FromRows([][]float64{{2, 4}, {6, 8}}), 0) {
		t.Fatalf("Scale = %v", got)
	}
}
