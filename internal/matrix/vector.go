package matrix

import (
	"fmt"
	"math"
)

// Ones returns a length-n vector of ones (the LAQT ε vector).
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Unit returns a length-n vector with a 1 in position i.
func Unit(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("matrix: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// VecAdd returns a + b elementwise.
func VecAdd(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("matrix: VecAdd length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// VecSub returns a − b elementwise.
func VecSub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("matrix: VecSub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// VecScale returns s·a.
func VecScale(s float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = s * v
	}
	return out
}

// VecSum returns the sum of the elements of a.
func VecSum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// Norm1 returns Σ|aᵢ|.
func Norm1(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += math.Abs(v)
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// NormInf returns max|aᵢ|.
func NormInf(a []float64) float64 {
	var s float64
	for _, v := range a {
		if m := math.Abs(v); m > s {
			s = m
		}
	}
	return s
}

// Normalize1 scales a in place so its elements sum to 1 and returns
// it. It panics if the element sum is zero.
func Normalize1(a []float64) []float64 {
	s := VecSum(a)
	if s == 0 {
		panic("matrix: Normalize1 of zero-sum vector")
	}
	for i := range a {
		a[i] /= s
	}
	return a
}

// VecMaxAbsDiff returns max|aᵢ − bᵢ|.
func VecMaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("matrix: VecMaxAbsDiff length mismatch")
	}
	var d float64
	for i := range a {
		if v := math.Abs(a[i] - b[i]); v > d {
			d = v
		}
	}
	return d
}
