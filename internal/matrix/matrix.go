// Package matrix provides the dense linear algebra needed by the
// linear-algebraic queueing theory (LAQT) machinery: matrices and
// vectors over float64, LU factorization with partial pivoting,
// left- and right-hand linear solves, inversion, matrix powers, the
// matrix exponential, and Kronecker products.
//
// Everything is implemented from scratch on top of the standard
// library. Matrices are dense, row-major, and sized at construction.
// The package favours explicit error returns over panics for
// numerically detectable failures (singular systems); index
// violations panic like slice accesses do.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// New returns a zero-initialized rows×cols matrix.
// It panics if either dimension is not positive.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
// The data is copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("matrix: FromRows requires at least one row and column")
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: ragged row %d: got %d values, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on its diagonal.
func Diag(d []float64) *Matrix {
	m := New(len(d), len(d))
	for i, v := range d {
		m.data[i*len(d)+i] = v
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Inc adds v to the element at row i, column j.
func (m *Matrix) Inc(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// RawRow returns row i without copying. The caller must not grow the
// returned slice; writes alias the matrix.
func (m *Matrix) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Add returns m + b as a new matrix.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.sameShape(b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] + b.data[i]
	}
	return out
}

// Sub returns m − b as a new matrix.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.sameShape(b)
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = m.data[i] - b.data[i]
	}
	return out
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := New(m.rows, m.cols)
	for i := range m.data {
		out.data[i] = s * m.data[i]
	}
	return out
}

func (m *Matrix) sameShape(b *Matrix) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d vs %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := New(m.rows, b.cols)
	// ikj loop order: stream through b rows for cache friendliness.
	for i := 0; i < m.rows; i++ {
		orow := out.data[i*b.cols : (i+1)*b.cols]
		arow := m.data[i*m.cols : (i+1)*m.cols]
		for k := 0; k < m.cols; k++ {
			a := arow[k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x (x treated as column).
func (m *Matrix) MulVec(x []float64) []float64 {
	return m.MulVecInto(make([]float64, m.rows), x)
}

// MulVecInto computes m·x into dst and returns dst. dst must have
// length Rows and must not alias x. It performs no allocations.
func (m *Matrix) MulVecInto(dst, x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec length %d, want %d", len(x), m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("matrix: MulVecInto dst length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
	return dst
}

// VecMul returns the vector-matrix product x·m (x treated as row).
func (m *Matrix) VecMul(x []float64) []float64 {
	return m.VecMulInto(make([]float64, m.cols), x)
}

// VecMulInto computes x·m into dst and returns dst. dst must have
// length Cols and must not alias x. It performs no allocations — the
// epoch kernels of the transient solver run entirely on this variant.
func (m *Matrix) VecMulInto(dst, x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("matrix: VecMul length %d, want %d", len(x), m.rows))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("matrix: VecMulInto dst length %d, want %d", len(dst), m.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i, xv := range x {
		if xv == 0 {
			continue
		}
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			dst[j] += xv * v
		}
	}
	return dst
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Pow returns m^n for n ≥ 0 by binary exponentiation.
// m must be square; Pow(m, 0) is the identity.
func (m *Matrix) Pow(n int) *Matrix {
	if m.rows != m.cols {
		panic("matrix: Pow requires a square matrix")
	}
	if n < 0 {
		panic("matrix: Pow requires n >= 0")
	}
	result := Identity(m.rows)
	base := m.Clone()
	for n > 0 {
		if n&1 == 1 {
			result = result.Mul(base)
		}
		n >>= 1
		if n > 0 {
			base = base.Mul(base)
		}
	}
	return result
}

// MaxAbsDiff returns the largest absolute elementwise difference
// between m and b.
func (m *Matrix) MaxAbsDiff(b *Matrix) float64 {
	m.sameShape(b)
	var d float64
	for i := range m.data {
		if v := math.Abs(m.data[i] - b.data[i]); v > d {
			d = v
		}
	}
	return d
}

// EqualTol reports whether every element of m and b differs by at
// most tol.
func (m *Matrix) EqualTol(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	return m.MaxAbsDiff(b) <= tol
}

// String renders the matrix with aligned columns, for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%10.6g", m.data[i*m.cols+j])
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}
