package matrix

import (
	"math/rand"
	"testing"
)

func benchMatrix(n int) *Matrix {
	rng := rand.New(rand.NewSource(42))
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
		m.Set(i, i, m.At(i, i)+float64(n))
	}
	return m
}

func BenchmarkMul100(b *testing.B) {
	m := benchMatrix(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Mul(m)
	}
}

func BenchmarkFactor200(b *testing.B) {
	m := benchMatrix(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolve200(b *testing.B) {
	m := benchMatrix(200)
	f, err := Factor(m)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 200)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Solve(rhs)
	}
}

func BenchmarkSolveLeft200(b *testing.B) {
	m := benchMatrix(200)
	f, err := Factor(m)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 200)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.SolveLeft(rhs)
	}
}

func BenchmarkExpm50(b *testing.B) {
	m := benchMatrix(50).Scale(0.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Expm(m)
	}
}

func BenchmarkKron20x20(b *testing.B) {
	m := benchMatrix(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Kron(m, m)
	}
}
