package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"finwl/internal/check"
)

func TestCond1EstIdentity(t *testing.T) {
	f, err := Factor(Identity(8))
	if err != nil {
		t.Fatal(err)
	}
	if c := f.Cond1Est(); math.Abs(c-1) > 1e-12 {
		t.Errorf("cond(I) estimate = %v, want 1", c)
	}
}

func TestCond1EstDiagonal(t *testing.T) {
	// cond₁ of diag(1, 1e-6) is exactly 1e6.
	f, err := Factor(Diag([]float64{1, 1e-6}))
	if err != nil {
		t.Fatal(err)
	}
	c := f.Cond1Est()
	if c < 1e5 || c > 1e7 {
		t.Errorf("cond estimate = %v, want ~1e6", c)
	}
}

func TestCond1EstHilbert(t *testing.T) {
	// The 8x8 Hilbert matrix has κ₁ ≈ 3.4e10; the estimate must land
	// within a couple of orders of magnitude.
	n := 8
	h := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	f, err := Factor(h)
	if err != nil {
		t.Fatal(err)
	}
	c := f.Cond1Est()
	if c < 1e9 || c > 1e12 {
		t.Errorf("hilbert cond estimate = %v, want ~3e10", c)
	}
}

func TestSolveRobustWellConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 40
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Inc(i, i, float64(n)) // diagonally dominant
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.Float64()
	}
	b := a.MulVec(want)
	x, cond, err := SolveRobust(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cond <= 0 || cond > 1e4 {
		t.Errorf("cond = %v for a well-conditioned system", cond)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-10 {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	// Left system through the same ladder.
	bl := a.VecMul(want)
	xl, _, err := SolveLeftRobust(a, bl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(xl[i]-want[i]) > 1e-10 {
			t.Fatalf("left x[%d] = %v, want %v", i, xl[i], want[i])
		}
	}
}

func TestSolveRobustRescuesBadScaling(t *testing.T) {
	// A system that is fine after row/column scaling but whose raw
	// condition number overflows the limit: rows scaled by 1e-200 and
	// 1e+200. Plain LU drowns in the scale disparity; the equilibrated
	// retry must rescue it.
	a := FromRows([][]float64{
		{1e-200 * 2, 1e-200 * 1},
		{1e200 * 1, 1e200 * 3},
	})
	b := []float64{1e-200 * 3, 1e200 * 4}
	x, _, err := SolveRobust(a, b)
	if err != nil {
		t.Fatalf("robust solve failed: %v", err)
	}
	// True solution of [[2,1],[1,3]]·x = [3,4]: x = [1, 1].
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-1) > 1e-9 {
		t.Errorf("x = %v, want [1 1]", x)
	}
}

func TestSolveRobustSingularTyped(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	_, _, err := SolveRobust(a, []float64{1, 1})
	if err == nil {
		t.Fatal("want error for singular system")
	}
	if !errors.Is(err, check.ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	if !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v should also match matrix.ErrSingular", err)
	}
}

func TestSolveRobustNaNInputTyped(t *testing.T) {
	a := FromRows([][]float64{
		{math.NaN(), 0},
		{0, 1},
	})
	_, _, err := SolveRobust(a, []float64{1, 1})
	if !errors.Is(err, check.ErrNumeric) {
		t.Errorf("err = %v, want ErrNumeric", err)
	}
	_, _, err = SolveRobust(Identity(2), []float64{math.Inf(1), 0})
	if !errors.Is(err, check.ErrNumeric) {
		t.Errorf("inf rhs: err = %v, want ErrNumeric", err)
	}
}

func TestSolveRobustShapeErrors(t *testing.T) {
	_, _, err := SolveRobust(New(2, 3), []float64{1, 1})
	if !errors.Is(err, check.ErrInvalidModel) {
		t.Errorf("non-square: %v", err)
	}
	_, _, err = SolveRobust(Identity(3), []float64{1, 1})
	if !errors.Is(err, check.ErrInvalidModel) {
		t.Errorf("length mismatch: %v", err)
	}
}

func TestErrSingularAliasesCheck(t *testing.T) {
	if !errors.Is(ErrSingular, check.ErrSingular) {
		t.Fatal("matrix.ErrSingular must alias check.ErrSingular")
	}
	_, err := Factor(New(2, 2)) // zero matrix
	if !errors.Is(err, check.ErrSingular) {
		t.Errorf("Factor(0) = %v, want ErrSingular", err)
	}
}
