package matrix

import (
	"fmt"
	"math"

	"finwl/internal/check"
)

// CondLimit is the 1-norm condition estimate above which a
// factorization is treated as numerically singular by the robust
// solve ladder: beyond it a float64 solve carries no trustworthy
// digits, so returning a typed error beats returning noise.
const CondLimit = 1e15

// Cond1Est returns an estimate of the 1-norm condition number
// κ₁(A) = ‖A‖₁·‖A⁻¹‖₁ of the factored matrix, using Hager's power
// method on A⁻¹ (the LAPACK xGECON approach): a handful of
// forward/backward solves, never an explicit inverse. The estimate is
// a lower bound that is almost always within a small factor of the
// true value.
func (f *LU) Cond1Est() float64 {
	n := f.N()
	if n == 1 {
		u := math.Abs(f.lu.data[0])
		if u == 0 {
			return math.Inf(1)
		}
		return f.anorm / u
	}
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	est := 0.0
	for iter := 0; iter < 5; iter++ {
		f.SolveInto(y, x) // y = A⁻¹·x
		est = Norm1(y)
		if !isFiniteVec(y) {
			return math.Inf(1)
		}
		// ξ = sign(y); z = A⁻ᵀ·ξ via the left solve.
		for i := range z {
			if y[i] >= 0 {
				z[i] = 1
			} else {
				z[i] = -1
			}
		}
		f.SolveLeftInto(z, z)
		if !isFiniteVec(z) {
			return math.Inf(1)
		}
		j, zmax := 0, 0.0
		for i, v := range z {
			if a := math.Abs(v); a > zmax {
				zmax, j = a, i
			}
		}
		if zmax <= Dot(z, x) {
			break
		}
		for i := range x {
			x[i] = 0
		}
		x[j] = 1
	}
	return est * f.anorm
}

func isFiniteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// equilibrate returns the row and column scale vectors that bring
// every row and column of a to unit maximum magnitude: the scaled
// matrix is S = diag(r)·A·diag(c). Scales are powers of two, so the
// scaling is exact in floating point. Zero rows/columns get scale 1.
func equilibrate(a *Matrix) (scaled *Matrix, r, c []float64) {
	n, m := a.Rows(), a.Cols()
	r = make([]float64, n)
	c = make([]float64, m)
	scaled = a.Clone()
	for i := 0; i < n; i++ {
		row := scaled.RawRow(i)
		maxAbs := 0.0
		for _, v := range row {
			if x := math.Abs(v); x > maxAbs {
				maxAbs = x
			}
		}
		r[i] = pow2Recip(maxAbs)
		for j := range row {
			row[j] *= r[i]
		}
	}
	for j := 0; j < m; j++ {
		maxAbs := 0.0
		for i := 0; i < n; i++ {
			if x := math.Abs(scaled.At(i, j)); x > maxAbs {
				maxAbs = x
			}
		}
		c[j] = pow2Recip(maxAbs)
		if c[j] != 1 {
			for i := 0; i < n; i++ {
				scaled.Set(i, j, scaled.At(i, j)*c[j])
			}
		}
	}
	return scaled, r, c
}

// pow2Recip returns the power of two nearest to 1/x (1 for x = 0 or
// non-finite x, so degenerate rows pass through unscaled).
func pow2Recip(x float64) float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	_, exp := math.Frexp(x)
	return math.Ldexp(1, -exp+1)
}

// refineRight performs one step of iterative refinement on A·x = b:
// r = b − A·x, A·δ = r, x ← x + δ. One step in working precision
// typically recovers the digits partial pivoting loses on
// ill-conditioned systems.
func refineRight(f *LU, a *Matrix, x, b []float64) {
	n := len(b)
	r := make([]float64, n)
	a.MulVecInto(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	d := make([]float64, n)
	f.SolveInto(d, r)
	for i := range x {
		x[i] += d[i]
	}
}

// refineLeft is refineRight for the left system x·A = b.
func refineLeft(f *LU, a *Matrix, x, b []float64) {
	n := len(b)
	r := make([]float64, n)
	a.VecMulInto(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	d := make([]float64, n)
	f.SolveLeftInto(d, r)
	for i := range x {
		x[i] += d[i]
	}
}

// SolveRobust solves A·x = b through the hardened fallback ladder:
//
//  1. factor and solve, then apply one step of iterative refinement;
//  2. if the factorization failed, the condition estimate exceeds
//     CondLimit, or the solution is non-finite, retry on an
//     equilibrated rescaling of A (exact powers of two);
//  3. if the rescaled system still fails, return a typed error —
//     check.ErrSingular with the condition estimate in the message —
//     instead of panicking or returning NaN.
//
// The condition estimate of the factorization that produced x is
// returned alongside it.
func SolveRobust(a *Matrix, b []float64) (x []float64, cond float64, err error) {
	return solveRobust(a, b, false)
}

// SolveLeftRobust is SolveRobust for the left system x·A = b.
func SolveLeftRobust(a *Matrix, b []float64) (x []float64, cond float64, err error) {
	return solveRobust(a, b, true)
}

func solveRobust(a *Matrix, b []float64, left bool) ([]float64, float64, error) {
	if a.Rows() != a.Cols() {
		return nil, 0, check.Invalid("matrix: robust solve needs a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	if len(b) != a.Rows() {
		return nil, 0, check.Invalid("matrix: robust solve rhs length %d, want %d", len(b), a.Rows())
	}
	if !isFiniteVec(a.data) {
		return nil, 0, fmt.Errorf("matrix: non-finite entries in system matrix: %w", check.ErrNumeric)
	}
	if !isFiniteVec(b) {
		return nil, 0, fmt.Errorf("matrix: non-finite entries in right-hand side: %w", check.ErrNumeric)
	}
	x, cond, err := solveRefined(a, b, left)
	if err == nil {
		return x, cond, nil
	}
	// Rescale retry: solve diag(r)·A·diag(c) in the scaled basis and
	// map the solution back.
	scaled, r, c := equilibrate(a)
	bs := make([]float64, len(b))
	if left {
		// x·A = b  ⇔  (x·R⁻¹)·(R·A·C) = b·C, x = z·R.
		for i := range bs {
			bs[i] = b[i] * c[i]
		}
	} else {
		// A·x = b  ⇔  (R·A·C)·(C⁻¹·x) = R·b, x = C·z.
		for i := range bs {
			bs[i] = b[i] * r[i]
		}
	}
	z, cond2, err2 := solveRefined(scaled, bs, left)
	if err2 != nil {
		return nil, math.Max(cond, cond2), fmt.Errorf(
			"matrix: system singular to working precision (cond est %.3g direct, %.3g equilibrated): %w",
			cond, cond2, check.ErrSingular)
	}
	if left {
		for i := range z {
			z[i] *= r[i]
		}
	} else {
		for i := range z {
			z[i] *= c[i]
		}
	}
	return z, cond2, nil
}

// solveRefined is one rung of the ladder: factor, solve, refine once,
// and screen the outcome for conditioning and finiteness.
func solveRefined(a *Matrix, b []float64, left bool) ([]float64, float64, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, math.Inf(1), fmt.Errorf("matrix: factorization failed: %w", err)
	}
	cond := f.Cond1Est()
	var x []float64
	if left {
		x = f.SolveLeft(b)
		refineLeft(f, a, x, b)
	} else {
		x = f.Solve(b)
		refineRight(f, a, x, b)
	}
	if !isFiniteVec(x) {
		return nil, cond, fmt.Errorf("matrix: solve produced non-finite values (cond est %.3g): %w", cond, check.ErrNumeric)
	}
	if cond > CondLimit {
		return nil, cond, fmt.Errorf("matrix: condition estimate %.3g exceeds limit %.3g: %w", cond, CondLimit, check.ErrSingular)
	}
	return x, cond, nil
}
