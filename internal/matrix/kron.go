package matrix

// Kron returns the Kronecker product a ⊗ b, the matrix of blocks
// a[i][j]·b. The paper's full (unreduced) product-space formulation
// of a K-workstation cluster is a Kronecker construction; it is used
// here to cross-validate the reduced product space on tiny systems.
func Kron(a, b *Matrix) *Matrix {
	out := New(a.rows*b.rows, a.cols*b.cols)
	for ia := 0; ia < a.rows; ia++ {
		for ja := 0; ja < a.cols; ja++ {
			av := a.data[ia*a.cols+ja]
			if av == 0 {
				continue
			}
			for ib := 0; ib < b.rows; ib++ {
				dst := (ia*b.rows + ib) * out.cols
				src := ib * b.cols
				for jb := 0; jb < b.cols; jb++ {
					out.data[dst+ja*b.cols+jb] = av * b.data[src+jb]
				}
			}
		}
	}
	return out
}

// KronVec returns the Kronecker product of two vectors, a ⊗ b.
func KronVec(a, b []float64) []float64 {
	out := make([]float64, len(a)*len(b))
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i*len(b)+j] = av * bv
		}
	}
	return out
}
