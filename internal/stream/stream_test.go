package stream

import (
	"context"
	"errors"
	"math"
	"testing"

	"finwl/internal/check"
	"finwl/internal/ctmc"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// testNet is a small two-station network: a single-server FCFS "cpu"
// with exponential service feeding an Erlang-2 "disk" delay pool, with
// half the cpu completions leaving the system.
func testNet() *network.Network {
	route := matrix.New(2, 2)
	route.Set(0, 1, 0.5)
	route.Set(1, 0, 1)
	return &network.Network{
		Stations: []network.Station{
			{Name: "cpu", Kind: statespace.Queue, Service: phase.MustExpo(2)},
			{Name: "disk", Kind: statespace.Delay, Service: phase.MustErlangMean(2, 0.8)},
		},
		Route: route,
		Exit:  []float64{0.5, 0},
		Entry: []float64{1, 0},
	}
}

func TestConfigValidation(t *testing.T) {
	net := testNet()
	arr := phase.MustExpoMean(1)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil network", Config{K: 2, JobTasks: 1, Jobs: 2, Arrival: arr}},
		{"zero K", Config{Net: net, JobTasks: 1, Jobs: 2, Arrival: arr}},
		{"zero JobTasks", Config{Net: net, K: 2, Jobs: 2, Arrival: arr}},
		{"no mode", Config{Net: net, K: 2, JobTasks: 1}},
		{"both modes", Config{Net: net, K: 2, JobTasks: 1, Jobs: 2, Arrival: arr, Customers: 2, Think: arr}},
		{"open without arrival", Config{Net: net, K: 2, JobTasks: 1, Jobs: 2}},
		{"closed without think", Config{Net: net, K: 2, JobTasks: 1, Customers: 2}},
		{"negative MaxStates", Config{Net: net, K: 2, JobTasks: 1, Jobs: 2, Arrival: arr, MaxStates: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatal("validation passed")
			}
			if !errors.Is(err, check.ErrInvalidModel) {
				t.Fatalf("error %v does not match ErrInvalidModel", err)
			}
		})
	}
}

func TestPriceMatchesBuild(t *testing.T) {
	// The planner's state count must equal what the builder
	// enumerates — Solve cross-checks this invariant internally, so a
	// successful solve in both modes is the assertion.
	for _, cfg := range []Config{
		{Net: testNet(), K: 3, JobTasks: 2, Jobs: 3, Arrival: phase.MustHyperExpFit(1, 4)},
		{Net: testNet(), K: 3, JobTasks: 2, Customers: 3, Think: phase.MustErlangMean(3, 1)},
	} {
		states, price, err := Price(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if states < 1 || price < states {
			t.Fatalf("implausible plan: states=%d price=%d", states, price)
		}
		res, err := Solve(context.Background(), cfg, []float64{1})
		if err != nil {
			t.Fatal(err)
		}
		if int64(res.States) != states || res.Price != price {
			t.Fatalf("planner says (%d, %d), solver says (%d, %d)", states, price, res.States, res.Price)
		}
	}
}

func TestPriceGuard(t *testing.T) {
	cfg := Config{
		Net: testNet(), K: 8, JobTasks: 4, Jobs: 64,
		Arrival: phase.MustExpoMean(1), MaxStates: 100,
	}
	_, _, err := Price(cfg)
	if err == nil {
		t.Fatal("oversized config passed the price guard")
	}
	if !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("error %v does not match ErrInvalidModel", err)
	}
	if _, err := Solve(context.Background(), cfg, nil); err == nil {
		t.Fatal("Solve accepted a config the price guard rejects")
	}
}

// A single-job stream is exactly the paper's one finite workload: the
// open-mode drain time must reproduce ctmc.MeanAbsorptionTime to
// round-off, though the two solvers share only the level matrices.
func TestOpenSingleJobMatchesCTMC(t *testing.T) {
	net := testNet()
	const tasks, cap = 5, 3
	cfg := Config{Net: net, K: cap, JobTasks: tasks, Jobs: 1, Arrival: phase.MustExpoMean(1)}
	res, err := Solve(context.Background(), cfg, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	chain, err := network.NewChain(net, cap)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ctmc.Build(chain, tasks)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.MeanAbsorptionTime()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.MeanDrain-want) / want; rel > 1e-9 {
		t.Fatalf("stream drain %v vs ctmc %v (rel %v)", res.MeanDrain, want, rel)
	}
	wantCDF, err := ref.CompletionCDF(2)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(res.DrainCDF[0] - wantCDF); diff > 1e-9 {
		t.Fatalf("stream CDF %v vs ctmc %v", res.DrainCDF[0], wantCDF)
	}
}

func TestOpenProbeLimits(t *testing.T) {
	cfg := Config{Net: testNet(), K: 3, JobTasks: 2, Jobs: 2, Arrival: phase.MustExpoMean(0.5)}
	res, err := Solve(context.Background(), cfg, []float64{0, 1e3})
	if err != nil {
		t.Fatal(err)
	}
	// At t = 0 job 1 has just arrived: E[J(0)] = JobTasks exactly.
	if math.Abs(res.MeanTasks[0]-2) > 1e-12 {
		t.Fatalf("E[J(0)] = %v, want 2", res.MeanTasks[0])
	}
	if res.DrainCDF[0] != 0 {
		t.Fatalf("drain CDF at 0 = %v, want 0", res.DrainCDF[0])
	}
	// Far past the drain the system is empty and the CDF saturated.
	if res.MeanTasks[1] > 1e-9 || res.DrainCDF[1] < 1-1e-9 {
		t.Fatalf("late probe: tasks=%v cdf=%v", res.MeanTasks[1], res.DrainCDF[1])
	}
	if res.MeanDrain <= 0 || math.IsNaN(res.MeanDrain) {
		t.Fatalf("mean drain %v", res.MeanDrain)
	}
}

func TestClosedProbeLimits(t *testing.T) {
	cfg := Config{Net: testNet(), K: 2, JobTasks: 2, Customers: 2, Think: phase.MustErlangMean(2, 1.5)}
	res, err := Solve(context.Background(), cfg, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeClosed {
		t.Fatalf("mode %q", res.Mode)
	}
	// At t = 0 everyone is thinking.
	if math.Abs(res.MeanTasks[0]) > 1e-12 {
		t.Fatalf("E[J(0)] = %v, want 0", res.MeanTasks[0])
	}
	if res.MeanTasks[1] <= 0 || res.MeanTasks[1] > 4 {
		t.Fatalf("E[J(4)] = %v outside (0, JB]", res.MeanTasks[1])
	}
	if res.DrainCDF != nil {
		t.Fatal("closed mode reported a drain CDF")
	}
}

func TestSolveCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Net: testNet(), K: 3, JobTasks: 2, Jobs: 3, Arrival: phase.MustExpoMean(1)}
	_, err := Solve(ctx, cfg, []float64{1})
	if !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("error %v does not match ErrCanceled", err)
	}
}
