package stream

import (
	"math"

	"finwl/internal/network"
)

// block is one bookkeeping cell of the augmented chain: a fixed
// (jobs-arrived, departures) pair in open mode or a (jobs-in-system,
// remaining-of-oldest) pair in closed mode, holding phDim phase
// states times the dk network states of level k.
type block struct {
	offset int // global index of the block's first state
	n      int // states in the block = phDim·dk
	phDim  int
	dk     int // network states at level k
	k      int // network level = min(j, K)
	j      int // tasks in the system (admitted + queued)
	g, d   int // open mode: jobs arrived, departures
	m, r   int // closed mode: jobs in system, remaining tasks of the oldest
}

// graph is the assembled augmented CTMC: a flat adjacency list over
// the transient states (edges to the absorbing drained state use
// target −1), the per-state total outflow rate, the tasks-in-system
// observable, and the initial distribution. Open-mode blocks appear
// in topological order — arrivals and departures only move the
// bookkeeping forward — which is what meanAbsorption's backward
// substitution relies on.
type graph struct {
	blocks    []block
	total     int
	rowPtr    []int
	to        []int
	rate      []float64
	exit      []float64
	tasks     []float64
	init      []float64
	absorbing bool
}

// newGraph assigns block offsets and sizes the state-indexed slices.
// States must then be emitted strictly in index order via state /
// edge / endState.
func newGraph(blocks []block, absorbing bool) *graph {
	total := 0
	for i := range blocks {
		blocks[i].offset = total
		total += blocks[i].n
	}
	return &graph{
		blocks:    blocks,
		total:     total,
		absorbing: absorbing,
		rowPtr:    append(make([]int, 0, total+1), 0),
		exit:      make([]float64, 0, total),
		tasks:     make([]float64, 0, total),
		init:      make([]float64, total),
	}
}

func (g *graph) state(j int) { g.tasks = append(g.tasks, float64(j)) }

func (g *graph) edge(to int, rate float64) {
	if rate == 0 {
		return
	}
	g.to = append(g.to, to)
	g.rate = append(g.rate, rate)
}

func (g *graph) endState(exit float64) {
	g.exit = append(g.exit, exit)
	g.rowPtr = append(g.rowPtr, len(g.to))
}

// levelOps caches dense row views of the per-level matrices the
// builder walks repeatedly: P rows, departure rows (Q, or Q·R when a
// queued task immediately refills the freed slot), and batch-admit
// chains R_{k+1}···R_{k'}.
type levelOps struct {
	chain *network.Chain
	p     map[int][][]float64
	dep   map[[2]int][][]float64 // {level, refill}
	admit map[[2]int][][]float64 // {kFrom, kTo}
}

func newLevelOps(chain *network.Chain) *levelOps {
	return &levelOps{
		chain: chain,
		p:     map[int][][]float64{},
		dep:   map[[2]int][][]float64{},
		admit: map[[2]int][][]float64{},
	}
}

func (o *levelOps) pRows(k int) [][]float64 {
	if r, ok := o.p[k]; ok {
		return r
	}
	lvl := o.chain.Levels[k]
	dm := lvl.P.Dense()
	rows := make([][]float64, lvl.States.Count())
	for i := range rows {
		rows[i] = dm.RawRow(i)
	}
	o.p[k] = rows
	return rows
}

func (o *levelOps) depRows(k int, refill bool) [][]float64 {
	key := [2]int{k, 0}
	if refill {
		key[1] = 1
	}
	if r, ok := o.dep[key]; ok {
		return r
	}
	lvl := o.chain.Levels[k]
	d := lvl.States.Count()
	rows := make([][]float64, d)
	e := make([]float64, d)
	for i := 0; i < d; i++ {
		e[i] = 1
		row := lvl.Q.VecMul(e) // row i of Q_k
		if refill {
			row = lvl.R.VecMul(row) // · R_k: the freed slot refills
		}
		rows[i] = row
		e[i] = 0
	}
	o.dep[key] = rows
	return rows
}

func (o *levelOps) admitRows(kFrom, kTo int) [][]float64 {
	key := [2]int{kFrom, kTo}
	if r, ok := o.admit[key]; ok {
		return r
	}
	d := o.chain.D(kFrom)
	rows := make([][]float64, d)
	for i := 0; i < d; i++ {
		v := make([]float64, d)
		v[i] = 1
		for k := kFrom + 1; k <= kTo; k++ {
			v = o.chain.Levels[k].R.VecMul(v)
		}
		rows[i] = v
	}
	o.admit[key] = rows
	return rows
}

// buildOpen assembles the open-mode chain: blocks (g jobs arrived,
// d departures) for g = 1..G (job 1 arrives at t = 0), d = 0..g·B,
// with j = g·B − d tasks in the system. While g < G the state carries
// the renewal arrival phase; the last arrival retires the clock and
// the phase dimension collapses to one. The (G, G·B) cell is the
// absorbing drained state.
func buildOpen(cfg *Config, chain *network.Chain) *graph {
	b, G := cfg.JobTasks, cfg.Jobs
	K := len(chain.Levels) - 1
	A := cfg.Arrival.Dim()
	level := func(j int) int {
		if j > K {
			return K
		}
		return j
	}

	var blocks []block
	bIdx := map[[2]int]int{}
	for g := 1; g <= G; g++ {
		phDim := A
		if g == G {
			phDim = 1
		}
		for d := 0; d <= g*b; d++ {
			if g == G && d == g*b {
				continue // the absorbing drained state
			}
			j := g*b - d
			k := level(j)
			bIdx[[2]int{g, d}] = len(blocks)
			blocks = append(blocks, block{
				n: phDim * chain.D(k), phDim: phDim, dk: chain.D(k),
				k: k, j: j, g: g, d: d,
			})
		}
	}
	gr := newGraph(blocks, true)
	ops := newLevelOps(chain)
	loc := func(bi, a, i int) int {
		blk := &gr.blocks[bi]
		return blk.offset + a*blk.dk + i
	}

	for bi := range gr.blocks {
		blk := gr.blocks[bi]
		g, d, j, k := blk.g, blk.d, blk.j, blk.k
		var mdiag []float64
		var pRows, depRows [][]float64
		if k > 0 {
			mdiag = chain.Levels[k].MDiag
			pRows = ops.pRows(k)
			depRows = ops.depRows(k, j-1 >= K)
		}
		depTo := -1 // −1 = absorbing
		if !(g == G && d+1 == g*b) {
			depTo = bIdx[[2]int{g, d + 1}]
		}
		arrTo := -1
		var arrRows [][]float64
		if g < G {
			arrTo = bIdx[[2]int{g + 1, d}]
			arrRows = ops.admitRows(k, level(j+b))
		}
		for a := 0; a < blk.phDim; a++ {
			for i := 0; i < blk.dk; i++ {
				gr.state(j)
				var exit float64
				if k > 0 {
					m := mdiag[i]
					exit += m
					for i2, w := range pRows[i] {
						gr.edge(loc(bi, a, i2), m*w)
					}
					for i2, w := range depRows[i] {
						if w == 0 {
							continue
						}
						if depTo < 0 {
							gr.edge(-1, m*w)
						} else {
							gr.edge(loc(depTo, a, i2), m*w)
						}
					}
				}
				if g < G {
					mu := cfg.Arrival.Rates[a]
					exit += mu
					for a2, w := range cfg.Arrival.Trans.RawRow(a) {
						gr.edge(loc(bi, a2, i), mu*w)
					}
					if e := cfg.Arrival.ExitProb(a); e > 0 {
						nextPh := gr.blocks[arrTo].phDim
						for i2, w := range arrRows[i] {
							if w == 0 {
								continue
							}
							if nextPh == 1 {
								gr.edge(loc(arrTo, 0, i2), mu*e*w)
							} else {
								for a2, al := range cfg.Arrival.Alpha {
									gr.edge(loc(arrTo, a2, i2), mu*e*w*al)
								}
							}
						}
					}
				}
				gr.endState(exit)
			}
		}
	}

	// Initial distribution: job 1 just arrived into an empty system —
	// block (1, 0), network at the batch entry vector, arrival phase
	// ~ Alpha (or the collapsed phase when G == 1).
	first := bIdx[[2]int{1, 0}]
	blk := gr.blocks[first]
	entry := chain.EntryVector(blk.k)
	if blk.phDim == 1 {
		for i, w := range entry {
			gr.init[loc(first, 0, i)] = w
		}
	} else {
		for a, al := range cfg.Arrival.Alpha {
			for i, w := range entry {
				gr.init[loc(first, a, i)] = al * w
			}
		}
	}
	return gr
}

// buildClosed assembles the closed-mode chain: blocks (m jobs in
// system, r tasks remaining of the oldest job) for m = 1..J,
// r = 1..B, plus the all-thinking block (0, 0); j = (m−1)·B + r.
// The phase structure is the composition of the J − m thinking
// customers over the think phases. Job completion is attributed FIFO:
// every departure decrements the oldest job, and when it hits zero
// that customer rejoins the think pool at an Alpha-drawn phase.
func buildClosed(cfg *Config, chain *network.Chain) *graph {
	b, J := cfg.JobTasks, cfg.Customers
	K := len(chain.Levels) - 1
	at := cfg.Think.Dim()
	level := func(j int) int {
		if j > K {
			return K
		}
		return j
	}

	comps := make([]*compSet, J+1)
	for w := 0; w <= J; w++ {
		comps[w] = enumComps(w, at)
	}

	var blocks []block
	bIdx := map[[2]int]int{}
	add := func(m, r, j int) {
		k := level(j)
		bIdx[[2]int{m, r}] = len(blocks)
		phDim := len(comps[J-m].list)
		blocks = append(blocks, block{
			n: phDim * chain.D(k), phDim: phDim, dk: chain.D(k),
			k: k, j: j, m: m, r: r,
		})
	}
	add(0, 0, 0)
	for m := 1; m <= J; m++ {
		for r := 1; r <= b; r++ {
			add(m, r, (m-1)*b+r)
		}
	}
	gr := newGraph(blocks, false)
	ops := newLevelOps(chain)
	loc := func(bi, c, i int) int {
		blk := &gr.blocks[bi]
		return blk.offset + c*blk.dk + i
	}

	scratch := make([]int, at)
	for bi := range gr.blocks {
		blk := gr.blocks[bi]
		m, r, j, k := blk.m, blk.r, blk.j, blk.k
		w := J - m
		cs := comps[w]
		var mdiag []float64
		var pRows, depRows [][]float64
		depTo := -1
		var depComp *compSet
		if k > 0 {
			mdiag = chain.Levels[k].MDiag
			pRows = ops.pRows(k)
			depRows = ops.depRows(k, j-1 >= K)
			if r > 1 {
				depTo = bIdx[[2]int{m, r - 1}]
			} else if m > 1 {
				depTo = bIdx[[2]int{m - 1, b}]
				depComp = comps[w+1]
			} else {
				depTo = bIdx[[2]int{0, 0}]
				depComp = comps[J]
			}
		}
		subTo := -1
		var subRows [][]float64
		if m < J {
			r2 := r
			if m == 0 {
				r2 = b
			}
			subTo = bIdx[[2]int{m + 1, r2}]
			subRows = ops.admitRows(k, level(j+b))
		}
		for ci := 0; ci < blk.phDim; ci++ {
			c := cs.list[ci]
			for i := 0; i < blk.dk; i++ {
				gr.state(j)
				var exit float64
				if k > 0 {
					mm := mdiag[i]
					exit += mm
					for i2, wt := range pRows[i] {
						gr.edge(loc(bi, ci, i2), mm*wt)
					}
					for i2, wt := range depRows[i] {
						if wt == 0 {
							continue
						}
						if r > 1 {
							gr.edge(loc(depTo, ci, i2), mm*wt)
						} else {
							// The oldest job completes: its customer
							// rejoins thinking at an Alpha-drawn phase.
							for a2, al := range cfg.Think.Alpha {
								if al == 0 {
									continue
								}
								copy(scratch, c)
								scratch[a2]++
								gr.edge(loc(depTo, depComp.index(scratch), i2), mm*wt*al)
							}
						}
					}
				}
				for a := 0; a < at; a++ {
					if c[a] == 0 {
						continue
					}
					nu := float64(c[a]) * cfg.Think.Rates[a]
					exit += nu
					for a2, tw := range cfg.Think.Trans.RawRow(a) {
						if tw == 0 {
							continue
						}
						copy(scratch, c)
						scratch[a]--
						scratch[a2]++
						gr.edge(loc(bi, cs.index(scratch), i), nu*tw)
					}
					if e := cfg.Think.ExitProb(a); e > 0 && subTo >= 0 {
						copy(scratch, c)
						scratch[a]--
						ci2 := comps[w-1].index(scratch)
						for i2, wt := range subRows[i] {
							gr.edge(loc(subTo, ci2, i2), nu*e*wt)
						}
					}
				}
				gr.endState(exit)
			}
		}
	}

	// Initial distribution: every customer thinking, phases drawn iid
	// from Alpha — a multinomial over the compositions of J.
	b0 := bIdx[[2]int{0, 0}]
	for ci, c := range comps[J].list {
		gr.init[loc(b0, ci, 0)] = multinomial(c, cfg.Think.Alpha)
	}
	return gr
}

// compSet enumerates the compositions of w items over p bins in a
// fixed order with O(1) amortized reverse lookup.
type compSet struct {
	list [][]int
	idx  map[string]int
}

func enumComps(w, p int) *compSet {
	cs := &compSet{idx: map[string]int{}}
	c := make([]int, p)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == p-1 {
			c[pos] = left
			cc := append([]int(nil), c...)
			cs.idx[compKey(cc)] = len(cs.list)
			cs.list = append(cs.list, cc)
			return
		}
		for v := 0; v <= left; v++ {
			c[pos] = v
			rec(pos+1, left-v)
		}
	}
	rec(0, w)
	return cs
}

func compKey(c []int) string {
	b := make([]byte, 4*len(c))
	for i, v := range c {
		b[4*i] = byte(v >> 24)
		b[4*i+1] = byte(v >> 16)
		b[4*i+2] = byte(v >> 8)
		b[4*i+3] = byte(v)
	}
	return string(b)
}

func (cs *compSet) index(c []int) int { return cs.idx[compKey(c)] }

// multinomial returns P(counts = c) when Σc items draw a bin iid
// from alpha, computed in the log domain so large pools stay finite.
func multinomial(c []int, alpha []float64) float64 {
	n := 0
	for _, v := range c {
		n += v
	}
	lg := lnFact(n)
	for b, v := range c {
		if v == 0 {
			continue
		}
		if alpha[b] == 0 {
			return 0
		}
		lg += float64(v)*math.Log(alpha[b]) - lnFact(v)
	}
	return math.Exp(lg)
}

func lnFact(n int) float64 {
	v, _ := math.Lgamma(float64(n + 1))
	return v
}
