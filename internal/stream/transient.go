package stream

import (
	"context"
	"fmt"
	"math"

	"finwl/internal/check"
	"finwl/internal/matrix"
)

// uniformRate returns Λ ≥ every state's total outflow rate.
func (g *graph) uniformRate() float64 {
	var q float64
	for _, e := range g.exit {
		if e > q {
			q = e
		}
	}
	return q
}

// step applies one jump of the uniformized DTMC: each state keeps
// 1 − Λ_s/q of its mass in place, the rest follows the rate-weighted
// edges; mass on absorbing edges (target −1) leaves the vector.
func (g *graph) step(dst, src []float64, q float64) {
	for i := range dst {
		dst[i] = 0
	}
	for s, v := range src {
		if v == 0 {
			continue
		}
		dst[s] += v * (1 - g.exit[s]/q)
		vq := v / q
		for p := g.rowPtr[s]; p < g.rowPtr[s+1]; p++ {
			if t := g.to[p]; t >= 0 {
				dst[t] += vq * g.rate[p]
			}
		}
	}
}

// transientAt computes, for every probe time, E[tasks in system] and
// the remaining transient probability mass (the drain-time survival
// function in open mode). One uniformization pass serves all probes:
// the per-jump moments ⟨tasks, v_n⟩ and ⟨1, v_n⟩ are independent of
// t, so each probe just re-weights them with its own Poisson pmf.
func (g *graph) transientAt(ctx context.Context, probes []float64) (tasks, surv []float64, err error) {
	tasks = make([]float64, len(probes))
	surv = make([]float64, len(probes))
	q := g.uniformRate()
	steps := 1
	pws := make([][]float64, len(probes))
	for pi, t := range probes {
		pws[pi] = poissonWeights(q*t, 1e-12)
		if len(pws[pi]) > steps {
			steps = len(pws[pi])
		}
	}
	if steps > maxUniformSteps {
		return nil, nil, fmt.Errorf("stream: uniformization needs %d jumps (limit %d) — probe horizon too far for this event rate: %w",
			steps, maxUniformSteps, check.ErrNotConverged)
	}
	cur := append([]float64(nil), g.init...)
	next := make([]float64, g.total)
	for n := 0; n < steps; n++ {
		if n%64 == 0 {
			if err := check.Canceled(ctx); err != nil {
				return nil, nil, err
			}
		}
		var tm, sm float64
		for s, v := range cur {
			tm += v * g.tasks[s]
			sm += v
		}
		for pi := range probes {
			if n < len(pws[pi]) {
				tasks[pi] += pws[pi][n] * tm
				surv[pi] += pws[pi][n] * sm
			}
		}
		if n+1 < steps {
			g.step(next, cur, q)
			cur, next = next, cur
		}
	}
	return tasks, surv, nil
}

// meanAbsorption solves (−Q)·t = ε over the transient states for the
// exact mean drain time. Open-mode blocks are topologically ordered
// (arrivals and departures only move forward), so the global system
// is block-triangular: one dense solve per block, walked backwards,
// exactly like ctmc.MeanAbsorptionTime but over the arrival-phase-
// augmented lattice.
func (g *graph) meanAbsorption(ctx context.Context) (float64, error) {
	t := make([]float64, g.total)
	for bi := len(g.blocks) - 1; bi >= 0; bi-- {
		if err := check.Canceled(ctx); err != nil {
			return 0, err
		}
		blk := g.blocks[bi]
		n := blk.n
		a := matrix.New(n, n)
		rhs := make([]float64, n)
		for x := 0; x < n; x++ {
			s := blk.offset + x
			row := a.RawRow(x)
			row[x] = g.exit[s]
			rhs[x] = 1
			for p := g.rowPtr[s]; p < g.rowPtr[s+1]; p++ {
				tgt := g.to[p]
				if tgt < 0 {
					continue // absorbing: contributes 0 to the rhs
				}
				if tgt >= blk.offset && tgt < blk.offset+n {
					row[tgt-blk.offset] -= g.rate[p]
				} else {
					rhs[x] += g.rate[p] * t[tgt]
				}
			}
		}
		sol, err := matrix.Solve(a, rhs)
		if err != nil {
			return 0, fmt.Errorf("stream: block (g=%d,d=%d) drain solve: %w", blk.g, blk.d, err)
		}
		copy(t[blk.offset:blk.offset+n], sol)
	}
	return matrix.Dot(g.init, t), nil
}

// poissonWeights returns Poisson(q) pmf values 0..K where the omitted
// tail mass is below tol, computed stably in the log domain.
func poissonWeights(q, tol float64) []float64 {
	if q <= 0 {
		return []float64{1}
	}
	mode := int(q)
	logPMF := func(k int) float64 {
		lg, _ := math.Lgamma(float64(k + 1))
		return -q + float64(k)*math.Log(q) - lg
	}
	var weights []float64
	var cum float64
	k := 0
	for {
		w := math.Exp(logPMF(k))
		weights = append(weights, w)
		cum += w
		if cum >= 1-tol && k >= mode {
			break
		}
		k++
		if k > mode+200+int(20*math.Sqrt(q+1)) {
			break
		}
	}
	return weights
}
