package stream

import (
	"context"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"

	"finwl/internal/phase"
	"finwl/internal/sim"
)

// equivReps is the per-case replication count for the sim-equivalence
// matrix: short by default so tier-1 stays fast, raised via
// STREAM_EQUIV_REPS by the nightly campaign.
func equivReps() int {
	if s := os.Getenv("STREAM_EQUIV_REPS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 2 {
			return n
		}
	}
	return 600
}

// TestStreamSimEquivalence is the acceptance matrix from the issue:
// three arrival/think laws (deterministic-ish cv² = 0.25, Poisson
// cv² = 1, bursty cv² = 4) crossed with open and closed loop mode.
// The solver's transient mean tasks-in-system (and, open mode, mean
// drain time and drain CDF) must sit within 3 standard errors of the
// simulator, which samples from the very same phase-type objects.
// Seeds are pinned, so a pass is reproducible, not a coin flip.
func TestStreamSimEquivalence(t *testing.T) {
	reps := equivReps()
	probes := []float64{0.5, 1.5, 3, 6, 12}
	laws := []struct {
		name string
		cv2  float64
	}{
		{"deterministic", 0.25},
		{"poisson", 1},
		{"bursty", 4},
	}
	for li, law := range laws {
		law := law
		ph := phase.MustFitCV2(1.2, law.cv2)
		for _, mode := range []string{ModeOpen, ModeClosed} {
			mode := mode
			seed := int64(1000*li + 7)
			t.Run(fmt.Sprintf("%s/%s", law.name, mode), func(t *testing.T) {
				t.Parallel()
				cfg := Config{Net: testNet(), K: 3, JobTasks: 2}
				if mode == ModeOpen {
					cfg.Jobs = 3
					cfg.Arrival = ph
				} else {
					cfg.Customers = 3
					cfg.Think = ph
				}
				res, err := Solve(context.Background(), cfg, probes)
				if err != nil {
					t.Fatal(err)
				}
				ref, err := sim.ReplicateStream(sim.StreamConfig{
					Net: cfg.Net, K: cfg.K, JobTasks: cfg.JobTasks,
					Jobs: cfg.Jobs, Arrival: cfg.Arrival,
					Customers: cfg.Customers, Think: cfg.Think,
					Probes: probes, Seed: seed, MaxEvents: 1 << 20,
				}, reps)
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range probes {
					// Floor the half-width: near-deterministic probes can
					// report a ~zero SE while the solver carries honest
					// series-truncation round-off.
					tol := 3*ref.TasksSE[i] + 1e-6
					if diff := math.Abs(res.MeanTasks[i] - ref.MeanTasks[i]); diff > tol {
						t.Errorf("E[J(%v)]: solver %.5f vs sim %.5f ± %.5f (diff %.5f > 3σ %.5f)",
							p, res.MeanTasks[i], ref.MeanTasks[i], ref.TasksSE[i], diff, tol)
					}
				}
				if mode == ModeOpen {
					tol := 3*ref.DrainSE + 1e-6
					if diff := math.Abs(res.MeanDrain - ref.MeanDrain); diff > tol {
						t.Errorf("mean drain: solver %.5f vs sim %.5f ± %.5f (diff %.5f > 3σ %.5f)",
							res.MeanDrain, ref.MeanDrain, ref.DrainSE, diff, tol)
					}
					for i, p := range probes {
						var below int
						for _, d := range ref.Drains {
							if d <= p {
								below++
							}
						}
						n := float64(len(ref.Drains))
						emp := float64(below) / n
						// Rule-of-three floor: zero (or all) successes make
						// the plug-in binomial SE degenerate, yet only bound
						// the true probability by about 3/n.
						tol := 3*math.Sqrt(emp*(1-emp)/n) + 3/n + 1e-6
						if diff := math.Abs(res.DrainCDF[i] - emp); diff > tol {
							t.Errorf("P(T<=%v): solver %.5f vs sim %.5f (diff %.5f > 3σ %.5f)",
								p, res.DrainCDF[i], emp, diff, tol)
						}
					}
				}
			})
		}
	}
}
