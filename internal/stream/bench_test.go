package stream

import (
	"context"
	"testing"

	"finwl/internal/phase"
)

// BenchmarkPerfStreamSolve measures one exact open-mode job-stream
// solve end to end — augmented-graph build, block topological order,
// and the per-block uniformization passes — on a mid-size chain. The
// gate holds both ns/op (relative, vs the committed snapshot) and
// allocs/op (hard STREAM_ALLOC_BUDGET in scripts/bench_diff.sh): the
// solver works per (g,d) block and must not allocate per jump.
func BenchmarkPerfStreamSolve(b *testing.B) {
	cfg := Config{
		Net: testNet(), K: 3, JobTasks: 4,
		Jobs: 3, Arrival: phase.MustHyperExpFit(1.2, 4),
	}
	probes := []float64{0.5, 2, 8}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Solve(ctx, cfg, probes)
		if err != nil {
			b.Fatal(err)
		}
		if res.MeanDrain <= 0 {
			b.Fatalf("mean drain %v", res.MeanDrain)
		}
	}
}
