// Package stream solves job-stream workloads: finite workloads of
// JobTasks tasks each that keep arriving while earlier ones drain,
// the generalization of the paper's single N-task job that the
// finite customer-pool literature (Boxma/Kella/Mandjes) and the
// MAP-driven transient queue work (Mandjes/Rutgers/Scheinhardt)
// point at.
//
// Two modes share one level-augmented CTMC machinery:
//
//   - Open: a fixed number of Jobs arrive by a phase-type renewal
//     process (the first at t = 0) while the network drains under the
//     usual admission cap K. The chain is absorbing — the drain time
//     (last task leaves after the last job arrived) has an exact mean
//     via block back-substitution and a distribution via
//     uniformization.
//
//   - Closed: a finite pool of Customers cycles forever — think for a
//     phase-type time, submit a job of JobTasks tasks, wait for it to
//     drain, rejoin the think pool. Job completion is attributed
//     FIFO: every departure is charged to the oldest outstanding job,
//     which keeps the chain exactly Markov with only (jobs in system,
//     remaining-of-oldest) bookkeeping — the same modeling move
//     internal/multiclass makes with random-order-of-service. The
//     chain is recurrent; the deliverable is the transient mean
//     tasks-in-system E[J(t)].
//
// Both modes ride the existing per-level matrices (network.Chain):
// the augmented state is (stream bookkeeping, arrival/think phases,
// network state at level min(j, K)), where j counts every task in the
// system including those queued for admission. The state space is
// priced through statespace.LevelSize before anything is allocated,
// so oversized configurations fail with a typed error instead of an
// allocation storm.
package stream

import (
	"context"
	"errors"
	"fmt"
	"math"

	"finwl/internal/check"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// ErrTooLarge marks a configuration whose augmented state space
// exceeds MaxStates. It additionally matches check.ErrInvalidModel, so
// existing error mapping keeps working; serving layers branch on it to
// degrade to a cheaper approximation instead of rejecting outright.
var ErrTooLarge = errors.New("stream state space too large")

// Config describes one job-stream scenario. Exactly one of the open
// (Jobs + Arrival) and closed (Customers + Think) field pairs must be
// set.
type Config struct {
	Net      *network.Network
	K        int // admission cap: max tasks concurrently inside the network
	JobTasks int // tasks per job

	// Open mode: Jobs finite workloads arrive by a phase-type renewal
	// process with inter-arrival law Arrival; the first job arrives at
	// t = 0.
	Jobs    int
	Arrival *phase.PH

	// Closed mode: Customers cycle submit → drain → think forever,
	// rejoining the pool with think-time law Think. At t = 0 every
	// customer is thinking.
	Customers int
	Think     *phase.PH

	// MaxStates bounds the augmented state space (0 = DefaultMaxStates).
	MaxStates int64
}

// DefaultMaxStates is the default cap on the augmented state space.
// The drain solve densifies one block at a time, never the whole
// space, so the bound is about total edge storage and uniformization
// step cost rather than a single dense matrix.
const DefaultMaxStates = 1 << 20

// maxUniformSteps bounds one uniformization series: past this many
// jumps the probe horizon is so far beyond the chain's mixing scale
// that the answer is indistinguishable from the limit anyway, and the
// series is cut off with a typed convergence error instead.
const maxUniformSteps = 4 << 20

// ModeOpen and ModeClosed are the Result.Mode values.
const (
	ModeOpen   = "open"
	ModeClosed = "closed"
)

// Result is the transient solution of one job-stream scenario.
type Result struct {
	Mode   string
	States int   // augmented transient states
	Price  int64 // admission price (see Price)

	// Probes echoes the probe times; MeanTasks[i] is E[J(Probes[i])],
	// the expected number of tasks in the system (admitted + queued)
	// at that time.
	Probes    []float64
	MeanTasks []float64

	// Open mode only: the exact mean drain time (last departure) and
	// the drain-time CDF P(T ≤ Probes[i]).
	MeanDrain float64
	DrainCDF  []float64
}

// Mode returns ModeOpen or ModeClosed for a validated config.
func (c *Config) Mode() string {
	if c.Jobs > 0 || c.Arrival != nil {
		return ModeOpen
	}
	return ModeClosed
}

// totalTasks is the largest possible number of in-system tasks.
func (c *Config) totalTasks() int {
	if c.Mode() == ModeOpen {
		return c.Jobs * c.JobTasks
	}
	return c.Customers * c.JobTasks
}

// maxLevel is the highest network population level the scenario can
// reach: the admission cap, or fewer when the whole stream holds
// fewer tasks.
func (c *Config) maxLevel() int {
	k := c.K
	if t := c.totalTasks(); t < k {
		k = t
	}
	return k
}

// Validate checks the structural invariants of the scenario. Every
// failure matches check.ErrInvalidModel.
func (c *Config) Validate() error {
	if c == nil {
		return check.Invalid("stream: nil config")
	}
	if c.Net == nil {
		return check.Invalid("stream: nil network")
	}
	if err := c.Net.Validate(); err != nil {
		return err
	}
	if c.K < 1 {
		return check.Invalid("stream: admission cap K=%d, want >= 1", c.K)
	}
	if c.JobTasks < 1 {
		return check.Invalid("stream: JobTasks=%d, want >= 1", c.JobTasks)
	}
	open := c.Jobs > 0 || c.Arrival != nil
	closed := c.Customers > 0 || c.Think != nil
	if open == closed {
		return check.Invalid("stream: configure exactly one of open mode (Jobs + Arrival) and closed mode (Customers + Think)")
	}
	if open {
		if c.Jobs < 1 {
			return check.Invalid("stream: open mode needs Jobs >= 1, got %d", c.Jobs)
		}
		if c.Arrival == nil {
			return check.Invalid("stream: open mode needs an Arrival law")
		}
		if err := c.Arrival.Validate(); err != nil {
			return err
		}
	} else {
		if c.Customers < 1 {
			return check.Invalid("stream: closed mode needs Customers >= 1, got %d", c.Customers)
		}
		if c.Think == nil {
			return check.Invalid("stream: closed mode needs a Think law")
		}
		if err := c.Think.Validate(); err != nil {
			return err
		}
	}
	if c.MaxStates < 0 {
		return check.Invalid("stream: MaxStates=%d, want >= 0", c.MaxStates)
	}
	return nil
}

// Price sizes the augmented chain without enumerating it: the number
// of transient states and an admission price in the same
// dense-entry units as statespace.ChainPrice — one n² + n term per
// (bookkeeping) block for the drain solves and edge storage, plus the
// level-chain construction itself. A configuration whose state count
// exceeds MaxStates fails with a typed ErrInvalidModel; callers that
// only want the price for admission accounting still receive it.
func Price(cfg Config) (states, price int64, err error) {
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	space := cfg.Net.Space()
	maxK := cfg.maxLevel()
	sizes := make([]float64, maxK+1)
	for k := 0; k <= maxK; k++ {
		sizes[k] = float64(space.LevelSize(k))
	}
	var s, p float64
	cfg.forEachBlockSize(sizes, func(n float64) {
		s += n
		p += n*n + n
	})
	p += float64(space.ChainPrice(maxK))
	states = clampPrice(s)
	price = clampPrice(p)
	max := cfg.MaxStates
	if max == 0 {
		max = DefaultMaxStates
	}
	if states > max {
		return states, price, fmt.Errorf(
			"stream: %d augmented states (limit %d) — lower Jobs/Customers, JobTasks or K: %w: %w",
			states, max, ErrTooLarge, check.ErrInvalidModel)
	}
	return states, price, nil
}

// forEachBlockSize visits the state count of every bookkeeping block,
// mirroring the enumeration in buildOpen/buildClosed without
// allocating any of it.
func (c *Config) forEachBlockSize(sizes []float64, visit func(n float64)) {
	b := c.JobTasks
	level := func(j int) float64 {
		k := j
		if k > len(sizes)-1 {
			k = len(sizes) - 1
		}
		return sizes[k]
	}
	if c.Mode() == ModeOpen {
		g0, ph := 1, float64(c.Arrival.Dim())
		for g := g0; g <= c.Jobs; g++ {
			phDim := ph
			if g == c.Jobs {
				phDim = 1
			}
			for d := 0; d <= g*b; d++ {
				if g == c.Jobs && d == g*b {
					continue // the absorbing drained state
				}
				visit(phDim * level(g*b-d))
			}
		}
		return
	}
	at := c.Think.Dim()
	visit(float64(statespace.Compositions(at, c.Customers))) // all thinking
	for m := 1; m <= c.Customers; m++ {
		comp := float64(statespace.Compositions(at, c.Customers-m))
		for r := 1; r <= b; r++ {
			visit(comp * level((m-1)*b+r))
		}
	}
}

// clampPrice converts a float64 size estimate to int64, saturating at
// statespace.MaxPrice like the other admission prices.
func clampPrice(v float64) int64 {
	if v >= float64(statespace.MaxPrice) {
		return statespace.MaxPrice
	}
	return int64(v)
}

// Solve computes the transient solution of the scenario: E[J(t)] at
// every probe time, and in open mode the exact mean drain time plus
// the drain-time CDF at the probes. Probe times must be finite and
// non-negative.
func Solve(ctx context.Context, cfg Config, probes []float64) (*Result, error) {
	states, price, err := Price(cfg)
	if err != nil {
		return nil, err
	}
	for i, t := range probes {
		if err := check.Finite("probe time", t); err != nil {
			return nil, err
		}
		if t < 0 {
			return nil, check.Invalid("stream: probe %d time %v, want >= 0", i, t)
		}
	}
	if err := check.Canceled(ctx); err != nil {
		return nil, err
	}
	chain, err := network.NewChainCtx(ctx, cfg.Net, cfg.maxLevel())
	if err != nil {
		return nil, err
	}
	var g *graph
	if cfg.Mode() == ModeOpen {
		g = buildOpen(&cfg, chain)
	} else {
		g = buildClosed(&cfg, chain)
	}
	if int64(g.total) != states {
		// The planner and the builder must agree: a mismatch means the
		// price was wrong and the admission guard meaningless.
		return nil, check.Invalid("stream: planned %d states but built %d (internal error)", states, g.total)
	}
	res := &Result{
		Mode:   cfg.Mode(),
		States: g.total,
		Price:  price,
		Probes: append([]float64(nil), probes...),
	}
	if len(probes) > 0 {
		tasks, surv, err := g.transientAt(ctx, probes)
		if err != nil {
			return nil, err
		}
		res.MeanTasks = tasks
		if g.absorbing {
			res.DrainCDF = make([]float64, len(surv))
			for i, s := range surv {
				cdf := 1 - s
				res.DrainCDF[i] = math.Min(1, math.Max(0, cdf))
			}
		}
	} else {
		res.MeanTasks = []float64{}
	}
	if g.absorbing {
		mean, err := g.meanAbsorption(ctx)
		if err != nil {
			return nil, err
		}
		res.MeanDrain = mean
	}
	return res, nil
}
