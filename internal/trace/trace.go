// Package trace is the scenario front door. It has two halves:
//
// Synthetic samples (this file): power-tailed draws (Pareto and
// lognormal, which are NOT phase-type) standing in for the measured
// CPU-time and file-size traces (BELLCORE et al.) that motivate the
// paper's non-exponential modeling; together with phase.FitHyperEM
// they close the loop measure → fit a matrix-exponential law → feed
// the analytic model.
//
// Event traces (events.go, drive.go): a workload spec (internal/spec)
// expands into a deterministic, seeded stream of timed request
// events — recordable as JSONL and replayable bit-identically — and
// the load driver fires that stream at a live finwld with open-loop
// pacing, scoring each class against its SLO.
package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"finwl/internal/phase"
)

// Pareto draws n samples from a Pareto(α, xmin) law: density
// α·xminᵅ/x^{α+1} for x ≥ xmin. For α ≤ 2 the variance is infinite —
// the regime the power-tail literature reports for CPU times.
func Pareto(rng *rand.Rand, alpha, xmin float64, n int) []float64 {
	if alpha <= 0 || xmin <= 0 {
		panic("trace: Pareto requires alpha > 0 and xmin > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = xmin / math.Pow(rng.Float64(), 1/alpha)
	}
	return out
}

// Lognormal draws n samples with the given log-mean and log-stddev.
func Lognormal(rng *rand.Rand, mu, sigma float64, n int) []float64 {
	if sigma <= 0 {
		panic("trace: Lognormal requires sigma > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	return out
}

// FromPH draws n samples from a phase-type law (for controlled
// experiments where the true distribution is known).
func FromPH(rng *rand.Rand, d *phase.PH, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// Summary describes a trace.
type Summary struct {
	N           int
	Mean        float64
	Variance    float64
	CV2         float64
	Min, Max    float64
	Median      float64
	P90, P99    float64
	ThirdMoment float64
}

// Summarize computes a Summary; it errors on empty or non-positive
// traces.
func Summarize(samples []float64) (*Summary, error) {
	if len(samples) == 0 {
		return nil, errors.New("trace: empty trace")
	}
	s := &Summary{N: len(samples), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, x := range samples {
		if x <= 0 || math.IsNaN(x) {
			return nil, fmt.Errorf("trace: sample %v out of domain", x)
		}
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(s.N)
	for _, x := range samples {
		d := x - s.Mean
		s.Variance += d * d
		s.ThirdMoment += x * x * x
	}
	if s.N > 1 {
		s.Variance /= float64(s.N - 1)
	}
	s.ThirdMoment /= float64(s.N)
	s.CV2 = s.Variance / (s.Mean * s.Mean)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	s.Median = quantile(sorted, 0.5)
	s.P90 = quantile(sorted, 0.9)
	s.P99 = quantile(sorted, 0.99)
	return s, nil
}

func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// WriteCSV writes one sample per row.
func WriteCSV(w io.Writer, samples []float64) error {
	cw := csv.NewWriter(w)
	for _, x := range samples {
		if err := cw.Write([]string{strconv.FormatFloat(x, 'g', -1, 64)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a one-column CSV of samples.
func ReadCSV(r io.Reader) ([]float64, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []float64
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if len(rec) == 0 {
			continue
		}
		v, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: bad sample %q: %w", rec[0], err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("trace: no samples in input")
	}
	return out, nil
}
