package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"

	"finwl/internal/check"
	"finwl/internal/phase"
	"finwl/internal/serve"
	"finwl/internal/spec"
)

// This file turns the package from a synthetic-sample stand-in into
// the front door for scenario traffic: a workload spec expands into a
// deterministic, seeded event trace — recordable as JSONL and
// replayable bit-identically — that the driver in drive.go fires at a
// live finwld.

// TraceVersion is the JSONL format version carried in the header.
const TraceVersion = 1

// Header is the first JSONL line of a recorded trace. It makes a
// recording self-contained: replaying needs no access to the spec the
// trace was generated from.
type Header struct {
	// Version is the trace format version (the "finwl_trace" key also
	// serves as the file-type sniff for finwld -replay).
	Version int `json:"finwl_trace"`
	// Spec names the originating workload spec.
	Spec string `json:"spec"`
	// Seed is the generator seed the event stream was drawn with.
	Seed int64 `json:"seed"`
	// Requests is the total request count across all events.
	Requests int `json:"requests"`
	// Classes carries each class's share and SLO so a replayed trace
	// scores attainment identically to a fresh generation.
	Classes []ClassInfo `json:"classes"`
}

// ClassInfo is the per-class slice of the header.
type ClassInfo struct {
	Name       string  `json:"name"`
	Requests   int     `json:"requests"`
	Endpoint   string  `json:"endpoint"`
	DeadlineMS int     `json:"deadline_ms,omitempty"`
	Target     float64 `json:"target"`
}

// Event is one arrival: a single request (solve), one submission of
// several (batch, jobs), or one job-stream scenario (stream), due AtMS
// milliseconds after the drive starts. Exactly one of Requests and
// Stream is set; Stream is omitempty, so pre-stream traces re-encode
// byte-identically.
type Event struct {
	Seq      int                  `json:"seq"`
	Class    string               `json:"class"`
	AtMS     float64              `json:"at_ms"`
	Endpoint string               `json:"endpoint"`
	Requests []*serve.Request     `json:"requests,omitempty"`
	Stream   *serve.StreamRequest `json:"stream,omitempty"`
}

// Trace is a fully expanded workload: the header plus the
// time-ordered event stream.
type Trace struct {
	Header Header
	Events []*Event
}

// classStream is the per-class intermediate before the merge.
type classStream struct {
	idx    int
	events []*Event
}

// Generate expands a validated spec into its event trace. The
// expansion is a pure function of (spec, spec.Seed): every arrival
// gap and workload size comes from a per-class PRNG seeded from the
// spec seed and the class index, so the same spec always yields a
// byte-identical trace.
func Generate(s *spec.Spec) (*Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	counts := s.ClassCounts()
	tr := &Trace{Header: Header{
		Version:  TraceVersion,
		Spec:     s.Name,
		Seed:     s.Seed,
		Requests: s.Requests,
	}}
	streams := make([]classStream, 0, len(s.Classes))
	for i := range s.Classes {
		c := &s.Classes[i]
		tr.Header.Classes = append(tr.Header.Classes, ClassInfo{
			Name:       c.Name,
			Requests:   counts[i],
			Endpoint:   c.EndpointOrDefault(),
			DeadlineMS: c.SLO.DeadlineMS,
			Target:     c.SLO.Target,
		})
		st, err := expandClass(s, c, i, counts[i])
		if err != nil {
			return nil, err
		}
		streams = append(streams, classStream{idx: i, events: st})
	}
	// Merge the class streams into one time-ordered stream. The sort
	// must be deterministic under time ties, so the key is
	// (time, class index, intra-class order).
	type tagged struct {
		ev       *Event
		class, k int
	}
	var all []tagged
	for _, st := range streams {
		for k, ev := range st.events {
			all = append(all, tagged{ev: ev, class: st.idx, k: k})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].ev.AtMS != all[b].ev.AtMS {
			return all[a].ev.AtMS < all[b].ev.AtMS
		}
		if all[a].class != all[b].class {
			return all[a].class < all[b].class
		}
		return all[a].k < all[b].k
	})
	tr.Events = make([]*Event, len(all))
	for i, t := range all {
		t.ev.Seq = i
		tr.Events[i] = t.ev
	}
	return tr, nil
}

// classSeed derives a class's PRNG seed from the spec seed; the odd
// multiplier (the 64-bit golden ratio) decorrelates adjacent classes.
func classSeed(seed int64, class int) int64 {
	return seed + int64(class+1)*-0x61c8864680b583eb
}

// expandClass draws the class's submissions: arrival gaps from its
// process, workload sizes uniformly from its N range.
func expandClass(s *spec.Spec, c *spec.Class, idx, count int) ([]*Event, error) {
	rng := rand.New(rand.NewSource(classSeed(s.Seed, idx)))
	batch := c.BatchOrDefault()
	rate := s.Rate * c.Fraction // requests per second for this class
	// Submissions arrive batch-times slower than requests, so the
	// inter-submission gap scales the per-request mean by the batch
	// size and the class still offers Rate × Fraction requests/s.
	meanGapMS := 1000 * float64(batch) / rate

	var gap func() float64
	switch c.Arrival.Process {
	case spec.ArrivalDeterministic:
		gap = func() float64 { return meanGapMS }
	case spec.ArrivalPoisson:
		gap = func() float64 { return rng.ExpFloat64() * meanGapMS }
	case spec.ArrivalBursty:
		ph, err := phase.FitCV2(meanGapMS, c.BurstCV2())
		if err != nil {
			return nil, check.Invalid("trace: class %s: bursty arrival fit: %v", c.Name, err)
		}
		gap = func() float64 { return ph.Sample(rng) }
	default:
		return nil, check.Invalid("trace: class %s: unknown arrival process %q", c.Name, c.Arrival.Process)
	}

	var events []*Event
	t := 0.0
	for remaining := count; remaining > 0; {
		jobs := batch
		if jobs > remaining {
			jobs = remaining
		}
		remaining -= jobs
		t += gap()
		ev := &Event{
			Class:    c.Name,
			AtMS:     t,
			Endpoint: c.EndpointOrDefault(),
		}
		if c.Endpoint == spec.EndpointStream {
			// One stream scenario per arrival; the N range samples the
			// per-job task count.
			n := c.N.Min + rng.Intn(c.N.Max-c.N.Min+1)
			ev.Stream = c.StreamRequest(n)
		} else {
			reqs := make([]*serve.Request, jobs)
			for j := range reqs {
				n := c.N.Min + rng.Intn(c.N.Max-c.N.Min+1)
				reqs[j] = c.Request(n)
			}
			ev.Requests = reqs
		}
		events = append(events, ev)
	}
	return events, nil
}

// RequestCount sums the requests across all events; a stream event
// counts as one request.
func (tr *Trace) RequestCount() int {
	n := 0
	for _, ev := range tr.Events {
		n += len(ev.Requests)
		if ev.Stream != nil {
			n++
		}
	}
	return n
}

// Class returns the header entry for a class name, or nil.
func (tr *Trace) Class(name string) *ClassInfo {
	for i := range tr.Header.Classes {
		if tr.Header.Classes[i].Name == name {
			return &tr.Header.Classes[i]
		}
	}
	return nil
}

// WriteJSONL records the trace as one JSON line for the header plus
// one per event. The encoding is canonical: recording a read-back
// trace reproduces the original bytes exactly, which is what makes
// "same spec + seed → byte-identical trace" a testable contract.
func (tr *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(tr.Header); err != nil {
		return fmt.Errorf("trace: encode header: %w", err)
	}
	for _, ev := range tr.Events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", ev.Seq, err)
		}
	}
	return bw.Flush()
}

// IsTrace sniffs whether data looks like a recorded trace (first
// significant line carries the finwl_trace header key) rather than a
// workload spec.
func IsTrace(data []byte) bool {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return false
	}
	line, _, _ := bytes.Cut(trimmed, []byte("\n"))
	return bytes.Contains(line, []byte(`"finwl_trace"`))
}

// ReadJSONL parses a recorded trace, validating the header version
// and per-event invariants (ordered seqs, nondecreasing times, known
// classes). All failures are typed check.ErrInvalidModel.
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("trace: read header: %w", err)
		}
		return nil, check.Invalid("trace: empty trace file")
	}
	tr := &Trace{}
	if err := strictUnmarshal(sc.Bytes(), &tr.Header); err != nil {
		return nil, check.Invalid("trace: header: %v", err)
	}
	if tr.Header.Version != TraceVersion {
		return nil, check.Invalid("trace: unsupported trace version %d (want %d)", tr.Header.Version, TraceVersion)
	}
	classes := make(map[string]bool, len(tr.Header.Classes))
	for _, ci := range tr.Header.Classes {
		classes[ci.Name] = true
	}
	prev := 0.0
	for line := 2; sc.Scan(); line++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			return nil, check.Invalid("trace: line %d: blank line inside trace", line)
		}
		ev := &Event{}
		if err := strictUnmarshal(sc.Bytes(), ev); err != nil {
			return nil, check.Invalid("trace: line %d: %v", line, err)
		}
		if ev.Seq != len(tr.Events) {
			return nil, check.Invalid("trace: line %d: seq %d out of order (want %d)", line, ev.Seq, len(tr.Events))
		}
		if ev.AtMS < prev {
			return nil, check.Invalid("trace: line %d: event time %v precedes %v", line, ev.AtMS, prev)
		}
		if !classes[ev.Class] {
			return nil, check.Invalid("trace: line %d: unknown class %q", line, ev.Class)
		}
		if len(ev.Requests) == 0 && ev.Stream == nil {
			return nil, check.Invalid("trace: line %d: event with no requests", line)
		}
		if len(ev.Requests) > 0 && ev.Stream != nil {
			return nil, check.Invalid("trace: line %d: event with both requests and a stream payload", line)
		}
		prev = ev.AtMS
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read events: %w", err)
	}
	if tr.RequestCount() != tr.Header.Requests {
		return nil, check.Invalid("trace: header says %d requests, events carry %d", tr.Header.Requests, tr.RequestCount())
	}
	return tr, nil
}

// strictUnmarshal decodes one JSON value rejecting unknown fields.
func strictUnmarshal(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
