package trace

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"

	"finwl/internal/check"
	"finwl/internal/spec"
)

// exampleSpec loads the committed example — the same file the README
// and the CI replay smoke use.
func exampleSpec(t testing.TB) *spec.Spec {
	t.Helper()
	s, err := spec.ParseFile("../../examples/spec-mixed.yaml")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// Same spec + same seed must expand to a byte-identical trace — the
// determinism contract the whole record/replay design rests on.
func TestGenerateDeterministic(t *testing.T) {
	var bufs [2]bytes.Buffer
	for i := range bufs {
		tr, err := Generate(exampleSpec(t))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSONL(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Fatal("two generations of the same spec differ")
	}
	// A different seed must actually change the stream.
	s := exampleSpec(t)
	s.Seed++
	tr, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	var other bytes.Buffer
	if err := tr.WriteJSONL(&other); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufs[0].Bytes(), other.Bytes()) {
		t.Fatal("different seeds produced identical traces")
	}
}

// Record → read → re-record must round-trip to the original bytes:
// the JSONL encoding is canonical.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := Generate(exampleSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := tr.WriteJSONL(&first); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := back.WriteJSONL(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("record → replay → re-record changed the bytes")
	}
}

// The generated stream must honor the spec exactly: per-class counts
// from largest-remainder apportioning, nondecreasing times, contiguous
// seqs, and every request built from its class template.
func TestGenerateInvariants(t *testing.T) {
	s := exampleSpec(t)
	tr, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	if tr.RequestCount() != s.Requests || tr.Header.Requests != s.Requests {
		t.Fatalf("trace carries %d requests (header %d), spec wants %d",
			tr.RequestCount(), tr.Header.Requests, s.Requests)
	}
	counts := s.ClassCounts()
	perClass := map[string]int{}
	prev := 0.0
	for i, ev := range tr.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.AtMS < prev {
			t.Fatalf("event %d at %v precedes %v", i, ev.AtMS, prev)
		}
		prev = ev.AtMS
		perClass[ev.Class] += len(ev.Requests)
	}
	for i := range s.Classes {
		c := &s.Classes[i]
		if got := perClass[c.Name]; got != counts[i] {
			t.Errorf("class %s: %d requests, want %d", c.Name, got, counts[i])
		}
		ci := tr.Class(c.Name)
		if ci == nil || ci.Requests != counts[i] || ci.Endpoint != c.EndpointOrDefault() {
			t.Errorf("class %s header entry %+v", c.Name, ci)
		}
	}
	for _, ev := range tr.Events {
		c := classByName(s, ev.Class)
		if len(ev.Requests) > c.BatchOrDefault() {
			t.Fatalf("event %d: %d requests exceeds class batch %d",
				ev.Seq, len(ev.Requests), c.BatchOrDefault())
		}
		for _, req := range ev.Requests {
			if req.N < c.N.Min || req.N > c.N.Max {
				t.Fatalf("event %d: n %d outside [%d,%d]", ev.Seq, req.N, c.N.Min, c.N.Max)
			}
			if req.K != c.Model.K || req.TimeoutMS != c.SLO.DeadlineMS {
				t.Fatalf("event %d: request %+v does not match class template", ev.Seq, req)
			}
		}
	}
}

func classByName(s *spec.Spec, name string) *spec.Class {
	for i := range s.Classes {
		if s.Classes[i].Name == name {
			return &s.Classes[i]
		}
	}
	return nil
}

func TestIsTrace(t *testing.T) {
	tr, err := Generate(exampleSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !IsTrace(buf.Bytes()) {
		t.Fatal("recorded trace not sniffed as a trace")
	}
	raw, err := os.ReadFile("../../examples/spec-mixed.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if IsTrace(raw) {
		t.Fatal("YAML spec sniffed as a trace")
	}
	if IsTrace([]byte(`{"name":"json spec"}`)) {
		t.Fatal("JSON spec sniffed as a trace")
	}
}

// Every malformed trace must be rejected with a typed error.
func TestReadJSONLErrors(t *testing.T) {
	tr, err := Generate(exampleSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(buf.String(), "\n")
	header, ev1, ev2 := lines[0], lines[1], lines[2]

	cases := map[string]string{
		"empty":            "",
		"bad version":      strings.Replace(header, `"finwl_trace":1`, `"finwl_trace":9`, 1) + ev1,
		"unknown field":    header + strings.Replace(ev1, `"seq":0`, `"seq":0,"zz":1`, 1),
		"seq out of order": header + ev2,
		"duplicate seq":    header + ev1 + ev1,
		"unknown class":    header + strings.Replace(ev1, tr.Events[0].Class, "nope", 1),
		"count mismatch":   header + ev1,
		"blank line":       header + ev1 + "\n" + ev2,
		"backwards time": `{"finwl_trace":1,"spec":"x","seed":0,"requests":2,"classes":[{"name":"a","requests":2,"endpoint":"solve","target":0}]}` + "\n" +
			`{"seq":0,"class":"a","at_ms":5,"endpoint":"solve","requests":[{"k":1,"n":1}]}` + "\n" +
			`{"seq":1,"class":"a","at_ms":4,"endpoint":"solve","requests":[{"k":1,"n":1}]}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); !errors.Is(err, check.ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", name, err)
		}
	}
}

// Generation from an invalid spec fails with the same typed error the
// spec package uses.
func TestGenerateInvalidSpec(t *testing.T) {
	s := exampleSpec(t)
	s.Classes[0].Fraction = 0.9
	if _, err := Generate(s); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("err = %v, want ErrInvalidModel", err)
	}
}
