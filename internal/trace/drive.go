package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"finwl/internal/check"
	"finwl/internal/cliutil"
	"finwl/internal/obs"
	"finwl/internal/serve"
)

// The load driver: fires a generated (or recorded) trace at a live
// finwld — replica or fleet router — with open-loop pacing, collects
// per-class latency/fidelity/error outcomes through internal/obs
// histograms, and scores each class against its SLO.

// DriveOptions tune a replay run.
type DriveOptions struct {
	// Client issues the HTTP requests (nil: cliutil.DefaultClient).
	Client *http.Client
	// Registry receives the driver's per-class latency and pacing-lag
	// histograms (nil: a private registry; the report carries the
	// derived quantiles either way).
	Registry *obs.Registry
	// TimeScale multiplies arrival offsets: 0.5 replays twice as fast
	// as recorded, 0 (and 1) replay in real time.
	TimeScale float64
	// MaxInFlight is the open-loop safety valve: the driver never
	// holds more than this many submissions in flight (default 512).
	// When the cap binds, the loop is no longer strictly open — the
	// report's MaxPacingLagMS exposes the stall.
	MaxInFlight int
	// PollInterval is the async-jobs completion poll period (default
	// 25ms).
	PollInterval time.Duration
	// TimelineBuckets is the number of equal time slices the run is
	// divided into for each class's latency-over-time timeline
	// (default 8; <0 disables the timeline).
	TimelineBuckets int
}

func (o DriveOptions) withDefaults() DriveOptions {
	if o.Client == nil {
		o.Client = cliutil.DefaultClient
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 512
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 25 * time.Millisecond
	}
	if o.TimelineBuckets == 0 {
		o.TimelineBuckets = 8
	}
	return o
}

// Report is the machine-readable outcome of a replay: the SLO
// attainment of every class plus driver health (pacing lag).
type Report struct {
	Spec      string  `json:"spec"`
	Seed      int64   `json:"seed"`
	Target    string  `json:"target"`
	TimeScale float64 `json:"time_scale"`

	Events    int     `json:"events"`
	Requests  int     `json:"requests"`  // planned, from the trace
	Completed int     `json:"completed"` // outcomes actually observed
	ElapsedMS float64 `json:"elapsed_ms"`

	// SLOMet is the gate verdict: every class at or above its target.
	SLOMet bool `json:"slo_met"`
	// Untyped5xx totals responses with a 5xx status that mapped to no
	// typed error sentinel — crashes, panics, injected chaos.
	Untyped5xx int `json:"untyped_5xx"`
	// MaxPacingLagMS is the worst observed gap between an event's due
	// time and its actual fire time — driver overhead, not server
	// latency.
	MaxPacingLagMS float64 `json:"max_pacing_lag_ms"`

	Classes []ClassReport `json:"classes"`
}

// ClassReport is one class's slice of the report.
type ClassReport struct {
	Class    string `json:"class"`
	Endpoint string `json:"endpoint"`

	Requests  int `json:"requests"` // planned, from the trace
	Sent      int `json:"sent"`
	Completed int `json:"completed"`
	OK        int `json:"ok"` // 2xx, including degraded results

	Degraded         int     `json:"degraded"`
	DegradedFraction float64 `json:"degraded_fraction"`

	// Errors counts typed failures by wire code; untyped 5xx responses
	// are counted separately — they indicate a server fault, not a
	// policy outcome.
	Errors     map[string]int `json:"errors,omitempty"`
	Untyped5xx int            `json:"untyped_5xx"`

	DeadlineMS int     `json:"deadline_ms,omitempty"`
	Target     float64 `json:"target"`
	// Attainment is the fraction of planned requests that succeeded
	// within the deadline (missing outcomes count as misses).
	Attainment float64 `json:"attainment"`
	Met        bool    `json:"met"`

	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`

	// Timeline slices the run into equal time buckets and reports how
	// this class's latency evolved — the view that separates "slow all
	// along" from "degraded under the burst".
	Timeline []TimelineBucket `json:"timeline,omitempty"`
}

// TimelineBucket is one slice of a class's latency-over-time timeline.
// A completion lands in the bucket covering the moment its outcome was
// recorded.
type TimelineBucket struct {
	StartMS   float64 `json:"start_ms"`
	EndMS     float64 `json:"end_ms"`
	Completed int     `json:"completed"`
	OK        int     `json:"ok"`
	MeanMS    float64 `json:"mean_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// latencyBounds spans 0.5ms to ~2000s in ~17% steps — fine enough
// that interpolated p50/p95/p99 are honest for the report.
var latencyBounds = obs.ExpBounds(500_000, 1.17, 96)

// collector aggregates one class's outcomes.
type collector struct {
	info  ClassInfo
	start time.Time // drive start, anchoring the timeline

	mu             sync.Mutex
	sent           int
	completed      int
	ok             int
	degraded       int
	withinDeadline int
	errors         map[string]int
	untyped5xx     int
	samples        []latSample

	lat *obs.Histogram
}

// latSample is one completion on the class's timeline.
type latSample struct {
	atNS  int64 // since drive start, at outcome time
	latNS int64
	ok    bool
}

// outcome records one request's fate. latency is the submission's
// wall time (each request of a batch shares it).
func (c *collector) outcome(latency time.Duration, ok, degraded, untyped bool, code string) {
	c.lat.ObserveDuration(latency)
	at := time.Since(c.start)
	deadline := time.Duration(c.info.DeadlineMS) * time.Millisecond
	c.mu.Lock()
	defer c.mu.Unlock()
	c.completed++
	c.samples = append(c.samples, latSample{atNS: int64(at), latNS: int64(latency), ok: ok})
	if ok {
		c.ok++
		if degraded {
			c.degraded++
		}
		if deadline <= 0 || latency <= deadline {
			c.withinDeadline++
		}
		return
	}
	if untyped {
		c.untyped5xx++
	}
	if code == "" {
		code = "unknown"
	}
	c.errors[code]++
}

// Drive replays tr against the finwld (or fleet router) at target,
// firing each event at its recorded offset without waiting for earlier
// responses (open loop). It returns the SLO report; the error is
// non-nil only for setup failures or a canceled context — per-request
// failures are data, recorded in the report.
func Drive(ctx context.Context, tr *Trace, target string, opts DriveOptions) (*Report, error) {
	if tr == nil || len(tr.Events) == 0 {
		return nil, check.Invalid("trace: drive: empty trace")
	}
	target = strings.TrimRight(target, "/")
	if target == "" {
		return nil, check.Invalid("trace: drive: no target URL")
	}
	opts = opts.withDefaults()

	colls := make(map[string]*collector, len(tr.Header.Classes))
	for _, ci := range tr.Header.Classes {
		colls[ci.Name] = &collector{
			info:   ci,
			errors: map[string]int{},
			lat: opts.Registry.Histogram("finwl_replay_latency_seconds",
				"Per-class request latency observed by the replay driver.",
				latencyBounds, 1e-9, obs.L("class", ci.Name)),
		}
	}
	for _, ev := range tr.Events {
		if colls[ev.Class] == nil {
			return nil, check.Invalid("trace: drive: event %d references unknown class %q", ev.Seq, ev.Class)
		}
	}
	lagHist := opts.Registry.Histogram("finwl_replay_pacing_lag_seconds",
		"Gap between an event's due time and its actual fire time.",
		latencyBounds, 1e-9)

	d := &driver{opts: opts, target: target, lag: lagHist}
	sem := make(chan struct{}, opts.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	for _, coll := range colls {
		coll.start = start
	}
	var maxLag maxTracker
loop:
	for _, ev := range tr.Events {
		due := start.Add(time.Duration(ev.AtMS * opts.TimeScale * float64(time.Millisecond)))
		if wait := time.Until(due); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				break loop
			case <-timer.C:
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break loop
		}
		lag := time.Since(due)
		if lag > 0 {
			lagHist.ObserveDuration(lag)
			maxLag.max(int64(lag))
		}
		coll := colls[ev.Class]
		n := len(ev.Requests)
		if ev.Stream != nil {
			n++
		}
		coll.mu.Lock()
		coll.sent += n
		coll.mu.Unlock()
		wg.Add(1)
		go func(ev *Event) {
			defer wg.Done()
			defer func() { <-sem }()
			d.fire(ctx, ev, coll)
		}(ev)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if err := check.Canceled(ctx); err != nil {
		return nil, err
	}

	rep := &Report{
		Spec:           tr.Header.Spec,
		Seed:           tr.Header.Seed,
		Target:         target,
		TimeScale:      opts.TimeScale,
		Events:         len(tr.Events),
		Requests:       tr.Header.Requests,
		ElapsedMS:      durMS(elapsed),
		SLOMet:         true,
		MaxPacingLagMS: float64(maxLag.load()) / 1e6,
	}
	for _, ci := range tr.Header.Classes {
		cr := colls[ci.Name].report(elapsed, opts.TimelineBuckets)
		rep.Completed += cr.Completed
		rep.Untyped5xx += cr.Untyped5xx
		if !cr.Met {
			rep.SLOMet = false
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep, nil
}

// report freezes a collector into its report slice; elapsed and
// buckets shape the timeline.
func (c *collector) report(elapsed time.Duration, buckets int) ClassReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := c.lat.Snapshot()
	cr := ClassReport{
		Class:      c.info.Name,
		Endpoint:   c.info.Endpoint,
		Requests:   c.info.Requests,
		Sent:       c.sent,
		Completed:  c.completed,
		OK:         c.ok,
		Degraded:   c.degraded,
		Untyped5xx: c.untyped5xx,
		DeadlineMS: c.info.DeadlineMS,
		Target:     c.info.Target,
		P50MS:      snap.Quantile(0.50) / 1e6,
		P95MS:      snap.Quantile(0.95) / 1e6,
		P99MS:      snap.Quantile(0.99) / 1e6,
	}
	if len(c.errors) > 0 {
		cr.Errors = make(map[string]int, len(c.errors))
		for k, v := range c.errors {
			cr.Errors[k] = v
		}
	}
	if c.ok > 0 {
		cr.DegradedFraction = float64(c.degraded) / float64(c.ok)
	}
	if snap.Count > 0 {
		cr.MeanMS = float64(snap.Sum) / float64(snap.Count) / 1e6
	}
	if c.info.Requests > 0 {
		cr.Attainment = float64(c.withinDeadline) / float64(c.info.Requests)
	}
	cr.Met = cr.Attainment >= c.info.Target
	cr.Timeline = timeline(c.samples, elapsed, buckets)
	return cr
}

// timeline folds the class's completion samples into `buckets` equal
// slices of [0, elapsed]. Every completion lands in exactly one bucket
// (the final bucket's end is inclusive), so bucket counts sum to the
// class's completed count.
func timeline(samples []latSample, elapsed time.Duration, buckets int) []TimelineBucket {
	if buckets < 1 || elapsed <= 0 || len(samples) == 0 {
		return nil
	}
	width := float64(elapsed) / float64(buckets)
	out := make([]TimelineBucket, buckets)
	sums := make([]float64, buckets)
	for i := range out {
		out[i].StartMS = float64(i) * width / 1e6
		out[i].EndMS = float64(i+1) * width / 1e6
	}
	for _, s := range samples {
		b := int(float64(s.atNS) / width)
		if b < 0 {
			b = 0
		}
		if b >= buckets {
			b = buckets - 1
		}
		out[b].Completed++
		if s.ok {
			out[b].OK++
		}
		ms := float64(s.latNS) / 1e6
		sums[b] += ms
		if ms > out[b].MaxMS {
			out[b].MaxMS = ms
		}
	}
	for i := range out {
		if out[i].Completed > 0 {
			out[i].MeanMS = sums[i] / float64(out[i].Completed)
		}
	}
	return out
}

// driver is the per-run firing state.
type driver struct {
	opts   DriveOptions
	target string
	lag    *obs.Histogram
}

// fire issues one event's submission and records every request's
// outcome on the collector.
func (d *driver) fire(ctx context.Context, ev *Event, coll *collector) {
	start := time.Now()
	switch ev.Endpoint {
	case "batch":
		var items []serve.BatchItem
		status, body, err := d.post(ctx, "/batch", ev.Requests, &items)
		latency := time.Since(start)
		if err != nil || len(items) != len(ev.Requests) {
			d.failAll(coll, len(ev.Requests), latency, status, body, err)
			return
		}
		for _, it := range items {
			recordItem(coll, latency, it)
		}
	case "jobs":
		d.fireJobs(ctx, ev, coll, start)
	case "stream":
		var resp serve.StreamResponse
		status, body, err := d.post(ctx, "/stream", ev.Stream, &resp)
		latency := time.Since(start)
		if err != nil || status != http.StatusOK {
			d.failAll(coll, 1, latency, status, body, err)
			return
		}
		degraded := resp.Fidelity == serve.FidelitySingleJob || resp.DegradedFrom != ""
		coll.outcome(latency, true, degraded, false, "")
	default: // solve
		for _, req := range ev.Requests {
			var resp serve.Response
			status, body, err := d.post(ctx, "/solve", req, &resp)
			latency := time.Since(start)
			if err != nil || status != http.StatusOK {
				d.failAll(coll, 1, latency, status, body, err)
				continue
			}
			coll.outcome(latency, true, resp.Degraded() || resp.DegradedFrom != "", false, "")
		}
	}
}

// fireJobs submits an async batch and polls it to completion; every
// job in the submission shares the submit→done latency.
func (d *driver) fireJobs(ctx context.Context, ev *Event, coll *collector, start time.Time) {
	var accepted struct {
		ID   string `json:"id"`
		Poll string `json:"poll"`
	}
	status, body, err := d.post(ctx, "/jobs", ev.Requests, &accepted)
	if err != nil || accepted.Poll == "" {
		d.failAll(coll, len(ev.Requests), time.Since(start), status, body, err)
		return
	}
	var job struct {
		State   string            `json:"state"`
		Results []serve.BatchItem `json:"results"`
		Error   string            `json:"error"`
		Code    string            `json:"code"`
	}
	for {
		status, body, err = d.get(ctx, accepted.Poll, &job)
		if err != nil {
			d.failAll(coll, len(ev.Requests), time.Since(start), status, body, err)
			return
		}
		if job.State == "done" {
			break
		}
		timer := time.NewTimer(d.opts.PollInterval)
		select {
		case <-ctx.Done():
			timer.Stop()
			d.failAll(coll, len(ev.Requests), time.Since(start), 0, serve.ErrorBody{}, ctx.Err())
			return
		case <-timer.C:
		}
	}
	latency := time.Since(start)
	if len(job.Results) != len(ev.Requests) {
		// Batch-level failure: the job finished with an error instead
		// of results.
		code := job.Code
		if code == "" {
			code = "job_failed"
		}
		for range ev.Requests {
			coll.outcome(latency, false, false, false, code)
		}
		return
	}
	for _, it := range job.Results {
		recordItem(coll, latency, it)
	}
}

// recordItem scores one batch/jobs item.
func recordItem(coll *collector, latency time.Duration, it serve.BatchItem) {
	if it.Response != nil && (it.Code == "" || it.Code == "degraded") {
		degraded := it.Response.Degraded() || it.Response.DegradedFrom != ""
		coll.outcome(latency, true, degraded, false, "")
		return
	}
	code := it.Code
	if code == "" {
		code = "unknown"
	}
	coll.outcome(latency, false, false, false, code)
}

// failAll records a submission-level failure for every request it
// carried, classifying the wire error as typed or untyped 5xx.
func (d *driver) failAll(coll *collector, n int, latency time.Duration, status int, body serve.ErrorBody, err error) {
	code, untyped := classify(status, body, err)
	for i := 0; i < n; i++ {
		coll.outcome(latency, false, false, untyped, code)
	}
}

// classify maps a failed exchange to (error-code key, untyped-5xx?).
// Typed means the reconstructed error matches one of the check/serve
// sentinels; a 5xx that matches none is a server fault (panic, chaos,
// proxy) and is what the CI gate holds to zero.
func classify(status int, body serve.ErrorBody, err error) (string, bool) {
	if status == 0 {
		// No HTTP exchange completed: transport error or cancellation.
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, check.ErrCanceled)) {
			return "canceled", false
		}
		return "transport", false
	}
	wire := serve.ErrorFromWire(status, body)
	typed := errors.Is(wire, check.ErrInvalidModel) ||
		errors.Is(wire, check.ErrOverloaded) ||
		errors.Is(wire, check.ErrCanceled) ||
		errors.Is(wire, check.ErrSingular) ||
		errors.Is(wire, check.ErrNumeric) ||
		errors.Is(wire, check.ErrNotConverged) ||
		errors.Is(wire, check.ErrDegraded) ||
		errors.Is(wire, serve.ErrJobUnknown) ||
		errors.Is(wire, serve.ErrJobGone)
	code := body.Code
	if code == "" {
		code = fmt.Sprintf("http_%d", status)
	}
	return code, status >= 500 && !typed
}

// post sends a JSON body and decodes a 2xx response into out; on a
// non-2xx it decodes the error body instead. status 0 means the
// exchange itself failed.
func (d *driver) post(ctx context.Context, path string, in, out any) (int, serve.ErrorBody, error) {
	req, err := cliutil.NewJSONRequest(ctx, http.MethodPost, d.target+path, in)
	if err != nil {
		return 0, serve.ErrorBody{}, err
	}
	return d.do(req, out)
}

func (d *driver) get(ctx context.Context, path string, out any) (int, serve.ErrorBody, error) {
	req, err := cliutil.NewJSONRequest(ctx, http.MethodGet, d.target+path, nil)
	if err != nil {
		return 0, serve.ErrorBody{}, err
	}
	return d.do(req, out)
}

func (d *driver) do(req *http.Request, out any) (int, serve.ErrorBody, error) {
	resp, err := d.opts.Client.Do(req)
	if err != nil {
		return 0, serve.ErrorBody{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, serve.ErrorBody{}, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var eb serve.ErrorBody
		_ = json.Unmarshal(raw, &eb) // non-JSON bodies stay empty → untyped
		return resp.StatusCode, eb, fmt.Errorf("trace: %s: HTTP %d", req.URL.Path, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return resp.StatusCode, serve.ErrorBody{}, fmt.Errorf("trace: decode %s response: %w", req.URL.Path, err)
		}
	}
	return resp.StatusCode, serve.ErrorBody{}, nil
}

// WriteReport emits the report as indented JSON.
func (r *Report) WriteReport(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Summary renders a short human-readable table for logs.
func (r *Report) Summary() string {
	var b strings.Builder
	verdict := "MET"
	if !r.SLOMet {
		verdict = "MISSED"
	}
	fmt.Fprintf(&b, "replay %s → %s: %d/%d requests completed in %.0fms, SLO %s\n",
		r.Spec, r.Target, r.Completed, r.Requests, r.ElapsedMS, verdict)
	for _, c := range r.Classes {
		status := "met"
		if !c.Met {
			status = "MISS"
		}
		fmt.Fprintf(&b, "  %-14s %-5s ok %d/%d att %.1f%% (target %.1f%%, %s) p50 %.1fms p95 %.1fms p99 %.1fms degraded %.1f%% untyped5xx %d\n",
			c.Class, c.Endpoint, c.OK, c.Requests, 100*c.Attainment, 100*c.Target, status,
			c.P50MS, c.P95MS, c.P99MS, 100*c.DegradedFraction, c.Untyped5xx)
	}
	return b.String()
}

func durMS(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// maxTracker tracks the maximum of concurrent observations.
type maxTracker struct {
	mu sync.Mutex
	v  int64
}

func (a *maxTracker) max(v int64) {
	a.mu.Lock()
	if v > a.v {
		a.v = v
	}
	a.mu.Unlock()
}

func (a *maxTracker) load() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.v
}
