package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"finwl/internal/check"
	"finwl/internal/serve"
	"finwl/internal/spec"
)

// driveSpec is a fast three-surface mix for integration tests: every
// endpoint, modest counts, generous deadlines, near-zero pacing via
// TimeScale.
const driveSpec = `
name: drive-test
seed: 11
requests: 20
rate: 100
classes:
  - name: points
    fraction: 0.4
    arrival:
      process: poisson
    slo:
      deadline_ms: 30000
      target: 0.9
    model:
      k: 2
    n:
      min: 4
      max: 8
  - name: streams
    fraction: 0.2
    arrival:
      process: poisson
    slo:
      deadline_ms: 30000
      target: 0.5
    endpoint: stream
    model:
      k: 2
    n:
      min: 2
      max: 3
    stream:
      jobs: 2
      arrival:
        process: poisson
        mean: 2
      probes: [0.5, 2]
  - name: batches
    fraction: 0.2
    arrival:
      process: deterministic
    slo:
      target: 0.5
    endpoint: batch
    batch: 2
    model:
      k: 2
    n:
      min: 4
      max: 6
  - name: async
    fraction: 0.2
    arrival:
      process: deterministic
    slo:
      deadline_ms: 30000
      target: 0.5
    endpoint: jobs
    batch: 2
    model:
      k: 2
    n:
      min: 4
      max: 6
`

// TestDriveAgainstServer replays a mixed trace against a real
// serve.Server and checks the report accounts for every planned
// request on every surface.
func TestDriveAgainstServer(t *testing.T) {
	s, err := spec.Parse([]byte(driveSpec))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Seed: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Drive(context.Background(), tr, ts.URL+"/", DriveOptions{
		TimeScale:    0.001,
		PollInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != s.Requests || rep.Completed != s.Requests {
		t.Fatalf("report requests %d completed %d, want %d", rep.Requests, rep.Completed, s.Requests)
	}
	if rep.Untyped5xx != 0 {
		t.Fatalf("untyped 5xx %d, want 0", rep.Untyped5xx)
	}
	if !rep.SLOMet {
		t.Fatalf("SLO not met: %s", rep.Summary())
	}
	if rep.Events != len(tr.Events) {
		t.Fatalf("report events %d, want %d", rep.Events, len(tr.Events))
	}
	counts := s.ClassCounts()
	if len(rep.Classes) != len(s.Classes) {
		t.Fatalf("class reports %d, want %d", len(rep.Classes), len(s.Classes))
	}
	for i, cr := range rep.Classes {
		c := &s.Classes[i]
		if cr.Class != c.Name || cr.Endpoint != c.EndpointOrDefault() {
			t.Fatalf("class report %d is %s/%s, want %s/%s",
				i, cr.Class, cr.Endpoint, c.Name, c.EndpointOrDefault())
		}
		if cr.Requests != counts[i] || cr.Sent != counts[i] || cr.Completed != counts[i] {
			t.Fatalf("class %s: requests/sent/completed %d/%d/%d, want %d",
				cr.Class, cr.Requests, cr.Sent, cr.Completed, counts[i])
		}
		if cr.OK != counts[i] || len(cr.Errors) != 0 {
			t.Fatalf("class %s: ok %d errors %v, want all ok", cr.Class, cr.OK, cr.Errors)
		}
		if !cr.Met || cr.Attainment != 1 {
			t.Fatalf("class %s: attainment %v met %v", cr.Class, cr.Attainment, cr.Met)
		}
		if cr.P50MS <= 0 || cr.P95MS < cr.P50MS || cr.P99MS < cr.P95MS {
			t.Fatalf("class %s: quantiles out of order p50 %v p95 %v p99 %v",
				cr.Class, cr.P50MS, cr.P95MS, cr.P99MS)
		}
		// The latency timeline must account for every completion of the
		// class across contiguous buckets spanning the run.
		if len(cr.Timeline) == 0 {
			t.Fatalf("class %s: no timeline", cr.Class)
		}
		bucketed, okSum := 0, 0
		for b, tb := range cr.Timeline {
			bucketed += tb.Completed
			okSum += tb.OK
			if tb.EndMS <= tb.StartMS {
				t.Fatalf("class %s: bucket %d spans [%v,%v]", cr.Class, b, tb.StartMS, tb.EndMS)
			}
			if b > 0 && cr.Timeline[b-1].EndMS != tb.StartMS {
				t.Fatalf("class %s: bucket %d not contiguous", cr.Class, b)
			}
			if tb.Completed > 0 && (tb.MeanMS <= 0 || tb.MaxMS < tb.MeanMS) {
				t.Fatalf("class %s: bucket %d mean %v max %v", cr.Class, b, tb.MeanMS, tb.MaxMS)
			}
		}
		if bucketed != cr.Completed || okSum != cr.OK {
			t.Fatalf("class %s: timeline holds %d/%d completions, class has %d/%d",
				cr.Class, bucketed, okSum, cr.Completed, cr.OK)
		}
	}
	var sb bytes.Buffer
	if err := rep.WriteReport(&sb); err != nil {
		t.Fatal(err)
	}
	var raw json.RawMessage
	if err := json.Unmarshal(sb.Bytes(), &raw); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
}

// TestDriveClassification pins the typed/untyped split: a 503 with a
// typed wire code is a policy outcome; a 500 with an untyped body is a
// server fault the CI gate holds to zero.
func TestDriveClassification(t *testing.T) {
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var one serve.Request
		_ = json.NewDecoder(r.Body).Decode(&one)
		switch one.K {
		case 2: // typed rejection
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(serve.ErrorBody{Error: "budget exhausted", Code: "overloaded"})
		default: // untyped crash
			w.WriteHeader(http.StatusInternalServerError)
			w.Write([]byte("<html>panic</html>"))
		}
	}))
	defer stub.Close()

	s, err := spec.Parse([]byte(`{
		"name": "classify", "seed": 3, "requests": 8, "rate": 1000,
		"classes": [
			{"name": "typed", "fraction": 0.5, "arrival": {"process": "deterministic"},
			 "slo": {"target": 0.5}, "model": {"k": 2}, "n": {"min": 2, "max": 2}},
			{"name": "untyped", "fraction": 0.5, "arrival": {"process": "deterministic"},
			 "slo": {"target": 0}, "model": {"k": 3}, "n": {"min": 2, "max": 2}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Drive(context.Background(), tr, stub.URL, DriveOptions{TimeScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	typed, untyped := rep.Classes[0], rep.Classes[1]
	if typed.Errors["overloaded"] != typed.Requests || typed.Untyped5xx != 0 {
		t.Fatalf("typed class: errors %v untyped %d, want all overloaded", typed.Errors, typed.Untyped5xx)
	}
	if typed.Met || typed.Attainment != 0 {
		t.Fatalf("typed class met=%v attainment=%v, want a miss", typed.Met, typed.Attainment)
	}
	if untyped.Untyped5xx != untyped.Requests {
		t.Fatalf("untyped class: untyped 5xx %d, want %d", untyped.Untyped5xx, untyped.Requests)
	}
	if rep.SLOMet {
		t.Fatal("report claims SLO met with a 0%-attainment class")
	}
	if rep.Untyped5xx != untyped.Requests {
		t.Fatalf("report untyped 5xx %d, want %d", rep.Untyped5xx, untyped.Requests)
	}
}

// TestDriveErrors covers setup failures and cancellation.
func TestDriveErrors(t *testing.T) {
	tr, err := Generate(exampleSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(context.Background(), &Trace{}, "http://x", DriveOptions{}); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("empty trace: err = %v", err)
	}
	if _, err := Drive(context.Background(), tr, "", DriveOptions{}); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("no target: err = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Drive(ctx, tr, "http://127.0.0.1:1", DriveOptions{}); !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("canceled drive: err = %v", err)
	}
}

// BenchmarkPerfReplayDrive measures driver overhead (pacing loop,
// collectors, classification) against a stub backend with near-zero
// service time, so the number tracks the driver, not a solver.
func BenchmarkPerfReplayDrive(b *testing.B) {
	resp, _ := json.Marshal(serve.Response{Fidelity: serve.FidelityExact})
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(resp)
	}))
	defer stub.Close()

	s, err := spec.Parse([]byte(`{
		"name": "bench", "seed": 5, "requests": 64, "rate": 1e6,
		"classes": [
			{"name": "load", "fraction": 1, "arrival": {"process": "poisson"},
			 "slo": {"deadline_ms": 60000, "target": 0.5},
			 "model": {"k": 2}, "n": {"min": 4, "max": 8}}
		]
	}`))
	if err != nil {
		b.Fatal(err)
	}
	tr, err := Generate(s)
	if err != nil {
		b.Fatal(err)
	}
	opts := DriveOptions{TimeScale: 1e-6}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := Drive(context.Background(), tr, stub.URL, opts)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Completed != 64 {
			b.Fatalf("completed %d", rep.Completed)
		}
	}
}
