package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"finwl/internal/phase"
)

func TestParetoMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alpha, xmin := 2.5, 1.0
	s := Pareto(rng, alpha, xmin, 400000)
	sum, err := Summarize(s)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := alpha * xmin / (alpha - 1)
	if math.Abs(sum.Mean-wantMean)/wantMean > 0.02 {
		t.Fatalf("Pareto mean %v, want %v", sum.Mean, wantMean)
	}
	if sum.Min < xmin {
		t.Fatalf("sample below xmin: %v", sum.Min)
	}
	// Median of Pareto: xmin·2^{1/α}.
	wantMedian := xmin * math.Pow(2, 1/alpha)
	if math.Abs(sum.Median-wantMedian)/wantMedian > 0.02 {
		t.Fatalf("median %v, want %v", sum.Median, wantMedian)
	}
}

func TestLognormalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mu, sigma := 0.5, 0.8
	s := Lognormal(rng, mu, sigma, 300000)
	sum, err := Summarize(s)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(mu + sigma*sigma/2)
	if math.Abs(sum.Mean-want)/want > 0.02 {
		t.Fatalf("lognormal mean %v, want %v", sum.Mean, want)
	}
}

func TestFromPH(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := phase.MustErlangMean(3, 2)
	s := FromPH(rng, d, 200000)
	sum, err := Summarize(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.Mean-2)/2 > 0.02 {
		t.Fatalf("PH trace mean %v, want 2", sum.Mean)
	}
	if math.Abs(sum.CV2-1.0/3) > 0.02 {
		t.Fatalf("PH trace C² %v, want 1/3", sum.CV2)
	}
}

func TestSummarizeQuantilesOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := Pareto(rng, 1.5, 1, 50000)
	sum, err := Summarize(s)
	if err != nil {
		t.Fatal(err)
	}
	if !(sum.Min <= sum.Median && sum.Median <= sum.P90 && sum.P90 <= sum.P99 && sum.P99 <= sum.Max) {
		t.Fatalf("quantiles out of order: %+v", sum)
	}
	// Heavy tail: the mean sits far above the median.
	if sum.Mean <= sum.Median {
		t.Fatal("Pareto(1.5) mean should exceed median")
	}
}

func TestSummarizeRejections(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("accepted empty trace")
	}
	if _, err := Summarize([]float64{1, 0}); err == nil {
		t.Fatal("accepted zero sample")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	samples := []float64{1.5, 2.25, 0.125, 1e6}
	var sb strings.Builder
	if err := WriteCSV(&sb, samples); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("round trip length %d", len(got))
	}
	for i := range samples {
		if got[i] != samples[i] {
			t.Fatalf("sample %d: %v != %v", i, got[i], samples[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("accepted empty input")
	}
	if _, err := ReadCSV(strings.NewReader("abc\n")); err == nil {
		t.Fatal("accepted non-numeric input")
	}
}

// End-to-end: a Pareto trace EM-fitted with H3 reproduces the
// trace mean closely and captures (most of) its variability.
func TestEMPipelineOnParetoTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	samples := Pareto(rng, 2.2, 1, 40000)
	sum, err := Summarize(samples)
	if err != nil {
		t.Fatal(err)
	}
	res, err := phase.FitHyperEM(samples, 3, 500, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dist.Mean()-sum.Mean)/sum.Mean > 0.02 {
		t.Fatalf("fit mean %v vs trace mean %v", res.Dist.Mean(), sum.Mean)
	}
	if res.Dist.CV2() <= 1 {
		t.Fatalf("fit C² %v should reflect the heavy tail", res.Dist.CV2())
	}
}

func TestGeneratorPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for name, f := range map[string]func(){
		"Pareto alpha":  func() { Pareto(rng, 0, 1, 1) },
		"Pareto xmin":   func() { Pareto(rng, 1, 0, 1) },
		"Lognorm sigma": func() { Lognormal(rng, 0, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
