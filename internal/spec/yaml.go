package spec

import (
	"encoding/json"
	"strconv"
	"strings"

	"finwl/internal/check"
)

// This file is a deliberately small YAML-subset reader — just enough
// for workload specs, with every failure typed as check.ErrInvalidModel
// and no panics on arbitrary input (FuzzSpecParse enforces both).
//
// Supported: indentation-nested mappings, block sequences ("- item",
// including "- key: value" inline mapping starts), scalars (null/~,
// booleans, integers, floats, bare and quoted strings), full-line and
// trailing "#" comments, a leading "---" document marker, and inline
// JSON flow collections ("[...]"/"{...}") as values. Not supported
// (typed error, never a guess): tabs in indentation, anchors/aliases,
// multi-document files, block scalars (| and >), and duplicate keys.

// yamlLine is one significant line of input.
type yamlLine struct {
	num    int // 1-based source line for error messages
	indent int
	text   string // content with indentation and comments stripped
}

// yamlParser walks the significant lines recursively by indentation.
type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseYAML decodes the subset above into nested map[string]any /
// []any / scalar values.
func parseYAML(data []byte) (any, error) {
	lines, err := splitYAMLLines(string(data))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return nil, check.Invalid("spec: empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, check.Invalid("spec: line %d: unexpected indentation", l.num)
	}
	return v, nil
}

// splitYAMLLines strips comments and blanks and computes indents.
func splitYAMLLines(s string) ([]yamlLine, error) {
	var out []yamlLine
	for num, raw := range strings.Split(s, "\n") {
		line := strings.TrimSuffix(raw, "\r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return nil, check.Invalid("spec: line %d: tab in indentation (use spaces)", num+1)
		}
		text := strings.TrimRight(stripComment(line[indent:]), " ")
		if text == "" {
			continue
		}
		if text == "---" && len(out) == 0 {
			continue
		}
		out = append(out, yamlLine{num: num + 1, indent: indent, text: text})
	}
	return out, nil
}

// stripComment removes a trailing "# ..." comment, honoring quotes. A
// '#' only opens a comment at the start of the content or after a
// space, per YAML.
func stripComment(s string) string {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseBlock parses the sequence or mapping whose items sit at exactly
// indent, consuming lines until one at a shallower indent (or EOF).
func (p *yamlParser) parseBlock(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, check.Invalid("spec: unexpected end of document")
	}
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, check.Invalid("spec: line %d: unexpected indentation", l.num)
	}
	if isDashLine(l.text) {
		return p.parseSequence(indent)
	}
	return p.parseMapping(indent)
}

func isDashLine(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yamlParser) parseSequence(indent int) (any, error) {
	seq := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || !isDashLine(l.text) {
			if l.indent > indent {
				return nil, check.Invalid("spec: line %d: unexpected indentation", l.num)
			}
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the deeper block that follows.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				seq = append(seq, nil)
				continue
			}
			v, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			continue
		}
		if !hasKeySep(rest) {
			// Plain scalar item.
			v, err := parseScalar(l.num, rest)
			if err != nil {
				return nil, err
			}
			seq = append(seq, v)
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				return nil, check.Invalid("spec: line %d: unexpected indentation", p.lines[p.pos].num)
			}
			continue
		}
		// Inline mapping start: rewrite "- rest" as a virtual line two
		// columns deeper and parse a block there, so "- key: value"
		// opens a mapping whose later keys align under "rest".
		p.lines[p.pos] = yamlLine{num: l.num, indent: indent + 2, text: rest}
		v, err := p.parseBlock(indent + 2)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

func (p *yamlParser) parseMapping(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, check.Invalid("spec: line %d: unexpected indentation", l.num)
			}
			break
		}
		if isDashLine(l.text) {
			return nil, check.Invalid("spec: line %d: sequence item inside a mapping", l.num)
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, check.Invalid("spec: line %d: duplicate key %q", l.num, key)
		}
		if rest != "" {
			v, err := parseScalar(l.num, rest)
			if err != nil {
				return nil, err
			}
			m[key] = v
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				return nil, check.Invalid("spec: line %d: unexpected indentation", p.lines[p.pos].num)
			}
			continue
		}
		// "key:" with nothing after — a nested block, or null.
		p.pos++
		if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
			m[key] = nil
			continue
		}
		v, err := p.parseBlock(p.lines[p.pos].indent)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// hasKeySep reports whether s contains a "key:"/"key: value"
// separator outside quotes — i.e. whether it starts a mapping entry.
func hasKeySep(s string) bool {
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			} else if c == '\\' && quote == '"' {
				i++
			}
		case c == '"' || c == '\'':
			// A quote mid-token (after the first byte) is just text.
			if i == 0 {
				quote = c
			}
		case c == ':' && (i+1 == len(s) || s[i+1] == ' '):
			return true
		}
	}
	return false
}

// splitKey splits "key: value" (or "key:") at the first unquoted
// colon-space boundary.
func splitKey(l yamlLine) (key, rest string, err error) {
	s := l.text
	for i := 0; i < len(s); i++ {
		if s[i] != ':' {
			continue
		}
		if i+1 == len(s) {
			return strings.TrimSpace(s[:i]), "", nil
		}
		if s[i+1] == ' ' {
			return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+1:]), nil
		}
	}
	return "", "", check.Invalid("spec: line %d: expected \"key: value\", got %q", l.num, s)
}

// parseScalar types a scalar token: null, bool, int, float, quoted or
// bare string, or an inline JSON flow collection.
func parseScalar(num int, s string) (any, error) {
	switch {
	case s == "~" || strings.EqualFold(s, "null"):
		return nil, nil
	case strings.EqualFold(s, "true"):
		return true, nil
	case strings.EqualFold(s, "false"):
		return false, nil
	case s[0] == '"':
		v, err := strconv.Unquote(s)
		if err != nil {
			return nil, check.Invalid("spec: line %d: bad quoted string %s", num, s)
		}
		return v, nil
	case s[0] == '\'':
		if len(s) < 2 || s[len(s)-1] != '\'' {
			return nil, check.Invalid("spec: line %d: unterminated string %s", num, s)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	case s[0] == '[' || s[0] == '{':
		var v any
		if err := json.Unmarshal([]byte(s), &v); err != nil {
			return nil, check.Invalid("spec: line %d: bad flow collection %q: %v", num, s, err)
		}
		return v, nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}
