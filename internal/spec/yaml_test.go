package spec

import (
	"errors"
	"reflect"
	"testing"

	"finwl/internal/check"
)

func TestYAMLScalars(t *testing.T) {
	got, err := parseYAML([]byte(`
name: demo
count: 42
rate: 2.5
neg: -7
on: true
off: FALSE
nothing: null
tilde: ~
quoted: "a: b # not a comment"
single: 'it''s'
bare: hello world
flow_list: [1, 2, 3]
flow_map: {"a": 1}
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name": "demo", "count": int64(42), "rate": 2.5, "neg": int64(-7),
		"on": true, "off": false, "nothing": nil, "tilde": nil,
		"quoted": "a: b # not a comment", "single": "it's", "bare": "hello world",
		"flow_list": []any{1.0, 2.0, 3.0}, "flow_map": map[string]any{"a": 1.0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseYAML:\n got %#v\nwant %#v", got, want)
	}
}

func TestYAMLNesting(t *testing.T) {
	got, err := parseYAML([]byte(`---
# top comment
outer:
  inner:
    a: 1
  b: two   # trailing comment
list:
  - 5
  - name: x
    deep:
      c: 3
  -
    d: 4
empty:
`))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"outer": map[string]any{"inner": map[string]any{"a": int64(1)}, "b": "two"},
		"list": []any{
			int64(5),
			map[string]any{"name": "x", "deep": map[string]any{"c": int64(3)}},
			map[string]any{"d": int64(4)},
		},
		"empty": nil,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseYAML:\n got %#v\nwant %#v", got, want)
	}
}

func TestYAMLTopLevelSequence(t *testing.T) {
	got, err := parseYAML([]byte("- 1\n- 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []any{int64(1), int64(2)}) {
		t.Fatalf("got %#v", got)
	}
}

// Every rejected input must fail with a typed check.ErrInvalidModel —
// the same contract FuzzSpecParse enforces over arbitrary bytes.
func TestYAMLErrors(t *testing.T) {
	cases := map[string]string{
		"empty":             "",
		"only comments":     "# nothing\n\n",
		"tab indent":        "a:\n\tb: 1\n",
		"duplicate key":     "a: 1\na: 2\n",
		"bad indent":        "a: 1\n  b: 2\n",
		"dash in mapping":   "a: 1\n- b\n",
		"missing colon":     "just a line\n",
		"bad quoted":        `a: "unterminated` + "\n",
		"bad single":        "a: 'unterminated\n",
		"bad flow":          "a: [1, 2\n",
		"scalar then deep":  "a: 1\n   b: 2\n",
		"seq item too deep": "- 5\n   a: 1\n",
	}
	for name, in := range cases {
		if _, err := parseYAML([]byte(in)); !errors.Is(err, check.ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", name, err)
		}
	}
}

func TestYAMLCommentHandling(t *testing.T) {
	got, err := parseYAML([]byte("a: b#not-comment\nc: 'x # inside' # outside\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{"a": "b#not-comment", "c": "x # inside"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v, want %#v", got, want)
	}
}
