// Package spec is the declarative workload layer: a YAML/JSON schema
// describing a mix of named client classes — each with a traffic
// fraction, an arrival process (deterministic, Poisson, or bursty via
// the phase-type machinery), a model template that compiles onto
// internal/workload + internal/cluster parameters, a workload-size
// range, and an SLO class (deadline + attainment target).
//
// A Spec is the front door for scenario diversity: internal/trace
// expands it into a deterministic, seeded event trace, and the finwld
// -replay driver fires that trace at a live server (or fleet router)
// and scores per-class SLO attainment. Every parse or validation
// failure matches check.ErrInvalidModel — the fuzz target holds the
// package to "no panics, typed errors only".
package spec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"

	"finwl/internal/check"
	"finwl/internal/serve"
)

// Arrival processes.
const (
	ArrivalDeterministic = "deterministic"
	ArrivalPoisson       = "poisson"
	ArrivalBursty        = "bursty"
)

// Endpoints a class can target.
const (
	EndpointSolve  = "solve"
	EndpointBatch  = "batch"
	EndpointJobs   = "jobs"
	EndpointStream = "stream"
)

// DefaultBurstCV2 is the squared coefficient of variation of
// inter-arrival times for a bursty class that does not pick its own —
// well into the heavy-burst regime the power-tail traces motivate.
const DefaultBurstCV2 = 16.0

// Spec is a complete workload specification.
type Spec struct {
	// Name labels the scenario in traces and reports.
	Name string `json:"name"`
	// Seed drives every random draw (arrival gaps, workload sizes);
	// the same spec + seed always expands to the same trace.
	Seed int64 `json:"seed"`
	// Requests is the total number of solve requests across all
	// classes (batch submissions count each job).
	Requests int `json:"requests"`
	// Rate is the aggregate arrival rate in requests per second; each
	// class arrives at Rate × Fraction.
	Rate float64 `json:"rate"`
	// Classes are the client classes of the mix.
	Classes []Class `json:"classes"`
}

// Class is one named client class.
type Class struct {
	Name string `json:"name"`
	// Fraction is this class's share of Requests and of Rate; the
	// fractions of a spec must sum to 1.
	Fraction float64 `json:"fraction"`
	Arrival  Arrival `json:"arrival"`
	SLO      SLO     `json:"slo"`
	// Endpoint picks the serving surface: "solve" (default, one
	// request per arrival), "batch" (synchronous shared-chain batches),
	// "jobs" (async batches polled to completion) or "stream"
	// (job-stream transient solves).
	Endpoint string `json:"endpoint,omitempty"`
	// Batch is the number of jobs per batch/jobs submission (default
	// 4; ignored for solve and stream).
	Batch int    `json:"batch,omitempty"`
	Model Model  `json:"model"`
	N     NRange `json:"n"`
	// Stream configures the stream endpoint's job-stream scenario; the
	// class's N range samples the per-job task count.
	Stream *StreamSpec `json:"stream,omitempty"`
}

// StreamSpec is the stream-endpoint sub-spec: exactly one of the open
// (jobs + arrival law) and closed (customers + think law) pairs must
// be set, mirroring serve.StreamRequest.
type StreamSpec struct {
	Jobs      int            `json:"jobs,omitempty"`
	Arrival   *serve.LawSpec `json:"arrival,omitempty"`
	Customers int            `json:"customers,omitempty"`
	Think     *serve.LawSpec `json:"think,omitempty"`
	// Probes are the E[J(t)] sample times sent with every request.
	Probes []float64 `json:"probes,omitempty"`
}

// Arrival selects the inter-arrival process of a class.
type Arrival struct {
	// Process is deterministic | poisson | bursty.
	Process string `json:"process"`
	// CV2 is the squared coefficient of variation of bursty
	// inter-arrival gaps, realized as a fitted H2/Coxian phase-type
	// law (default DefaultBurstCV2; must exceed 1).
	CV2 float64 `json:"cv2,omitempty"`
}

// SLO is a class's service-level objective.
type SLO struct {
	// DeadlineMS is the per-request latency budget; it is also sent as
	// the request's server-side deadline, so a tight SLO exercises the
	// degradation ladder. 0 means no deadline (attainment = success).
	DeadlineMS int `json:"deadline_ms,omitempty"`
	// Target is the required attainment fraction in [0,1]: the share
	// of the class's requests that must succeed within the deadline.
	Target float64 `json:"target"`
}

// Model is the per-class model template — the cluster form of
// serve.Request, shared by every request of the class except for the
// sampled workload size N.
type Model struct {
	Arch string         `json:"arch,omitempty"` // central (default) | distributed
	K    int            `json:"k"`
	App  *serve.AppSpec `json:"app,omitempty"`
	CV2  *serve.CV2Spec `json:"cv2,omitempty"`
}

// NRange is the inclusive workload-size range a class samples
// uniformly.
type NRange struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

// Parse decodes a workload spec from YAML or JSON (sniffed by the
// first significant byte) and validates it. All errors match
// check.ErrInvalidModel.
func Parse(data []byte) (*Spec, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	jsonBytes := data
	if len(trimmed) == 0 || trimmed[0] != '{' {
		tree, err := parseYAML(data)
		if err != nil {
			return nil, err
		}
		jsonBytes, err = json.Marshal(tree)
		if err != nil {
			return nil, check.Invalid("spec: %v", err)
		}
	}
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(jsonBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, check.Invalid("spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ParseFile reads and parses a spec file.
func ParseFile(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	return Parse(data)
}

// Validate checks the spec's structural invariants and compiles each
// class's model template through the serve/cluster/network validators,
// so a spec that validates will build real requests.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return check.Invalid("spec: missing name")
	}
	if err := check.Count("spec: requests", s.Requests, 1); err != nil {
		return err
	}
	if !(s.Rate > 0) || math.IsInf(s.Rate, 1) {
		return check.Invalid("spec: rate %v, want a positive finite rate", s.Rate)
	}
	if len(s.Classes) == 0 {
		return check.Invalid("spec: no classes")
	}
	seen := make(map[string]bool, len(s.Classes))
	fracSum := 0.0
	for i := range s.Classes {
		c := &s.Classes[i]
		if err := c.validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return check.Invalid("spec: duplicate class %q", c.Name)
		}
		seen[c.Name] = true
		fracSum += c.Fraction
	}
	if math.Abs(fracSum-1) > 1e-9 {
		return check.Invalid("spec: class fractions sum to %v, want 1", fracSum)
	}
	return nil
}

func (c *Class) validate() error {
	if c.Name == "" {
		return check.Invalid("spec: class with no name")
	}
	if !(c.Fraction > 0) || c.Fraction > 1 {
		return check.Invalid("spec: class %s: fraction %v, want in (0,1]", c.Name, c.Fraction)
	}
	switch c.Arrival.Process {
	case ArrivalDeterministic, ArrivalPoisson:
		if c.Arrival.CV2 != 0 {
			return check.Invalid("spec: class %s: arrival cv2 only applies to the bursty process", c.Name)
		}
	case ArrivalBursty:
		cv2 := c.Arrival.CV2
		if cv2 == 0 {
			cv2 = DefaultBurstCV2
		}
		if !(cv2 > 1) || math.IsInf(cv2, 1) || math.IsNaN(cv2) {
			return check.Invalid("spec: class %s: bursty cv2 %v, want > 1", c.Name, c.Arrival.CV2)
		}
	default:
		return check.Invalid("spec: class %s: unknown arrival process %q (want deterministic, poisson or bursty)", c.Name, c.Arrival.Process)
	}
	if c.SLO.DeadlineMS < 0 {
		return check.Invalid("spec: class %s: deadline_ms %d, want >= 0", c.Name, c.SLO.DeadlineMS)
	}
	if c.SLO.Target < 0 || c.SLO.Target > 1 || math.IsNaN(c.SLO.Target) {
		return check.Invalid("spec: class %s: slo target %v, want in [0,1]", c.Name, c.SLO.Target)
	}
	switch c.Endpoint {
	case "", EndpointSolve:
		if c.Batch != 0 {
			return check.Invalid("spec: class %s: batch size only applies to batch/jobs endpoints", c.Name)
		}
	case EndpointBatch, EndpointJobs:
		if c.Batch < 0 {
			return check.Invalid("spec: class %s: batch %d, want >= 1", c.Name, c.Batch)
		}
	case EndpointStream:
		if c.Batch != 0 {
			return check.Invalid("spec: class %s: batch size only applies to batch/jobs endpoints", c.Name)
		}
		if c.Stream == nil {
			return check.Invalid("spec: class %s: stream endpoint needs a stream sub-spec", c.Name)
		}
	default:
		return check.Invalid("spec: class %s: unknown endpoint %q (want solve, batch, jobs or stream)", c.Name, c.Endpoint)
	}
	if c.Stream != nil && c.Endpoint != EndpointStream {
		return check.Invalid("spec: class %s: stream sub-spec only applies to the stream endpoint", c.Name)
	}
	if c.N.Min < 1 || c.N.Max < c.N.Min {
		return check.Invalid("spec: class %s: n range [%d,%d], want 1 <= min <= max", c.Name, c.N.Min, c.N.Max)
	}
	// Compile the template once at the range floor: a spec that
	// validates must produce requests the server's own validators
	// accept (modulo N, which only grows the workload, not the model).
	if c.Endpoint == EndpointStream {
		if _, err := c.StreamRequest(c.N.Min).BuildConfig(0); err != nil {
			return fmt.Errorf("spec: class %s: stream model: %w", c.Name, err)
		}
	} else if _, err := c.Request(c.N.Min).BuildNetwork(); err != nil {
		return fmt.Errorf("spec: class %s: model: %w", c.Name, err)
	}
	return nil
}

// EndpointOrDefault resolves the class's serving surface.
func (c *Class) EndpointOrDefault() string {
	if c.Endpoint == "" {
		return EndpointSolve
	}
	return c.Endpoint
}

// BatchOrDefault resolves the jobs-per-submission count for the
// batch/jobs endpoints.
func (c *Class) BatchOrDefault() int {
	if c.Endpoint == EndpointBatch || c.Endpoint == EndpointJobs {
		if c.Batch == 0 {
			return 4
		}
		return c.Batch
	}
	return 1
}

// BurstCV2 resolves the bursty process's inter-arrival CV².
func (c *Class) BurstCV2() float64 {
	if c.Arrival.CV2 == 0 {
		return DefaultBurstCV2
	}
	return c.Arrival.CV2
}

// Request instantiates the class's model template at workload size n.
// The SLO deadline doubles as the server-side request deadline, so the
// degradation ladder sees exactly the latency budget the class is
// scored against.
func (c *Class) Request(n int) *serve.Request {
	return &serve.Request{
		Arch:      c.Model.Arch,
		K:         c.Model.K,
		N:         n,
		App:       c.Model.App,
		CV2:       c.Model.CV2,
		TimeoutMS: c.SLO.DeadlineMS,
	}
}

// StreamRequest instantiates a stream class's template with jobTasks
// tasks per job. As with Request, the SLO deadline doubles as the
// server-side request deadline.
func (c *Class) StreamRequest(jobTasks int) *serve.StreamRequest {
	s := c.Stream
	if s == nil {
		s = &StreamSpec{}
	}
	probes := make([]serve.Num, len(s.Probes))
	for i, p := range s.Probes {
		probes[i] = serve.Num(p)
	}
	return &serve.StreamRequest{
		Arch:      c.Model.Arch,
		K:         c.Model.K,
		App:       c.Model.App,
		CV2:       c.Model.CV2,
		JobTasks:  jobTasks,
		Jobs:      s.Jobs,
		Arrival:   s.Arrival,
		Customers: s.Customers,
		Think:     s.Think,
		Probes:    probes,
		TimeoutMS: c.SLO.DeadlineMS,
	}
}

// ClassCounts apportions the spec's total request count over the
// classes by largest-remainder rounding of the fractions, so the
// counts are exact, deterministic, and sum to Requests.
func (s *Spec) ClassCounts() []int {
	counts := make([]int, len(s.Classes))
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, len(s.Classes))
	assigned := 0
	for i := range s.Classes {
		exact := float64(s.Requests) * s.Classes[i].Fraction
		counts[i] = int(exact)
		rems[i] = rem{idx: i, frac: exact - float64(counts[i])}
		assigned += counts[i]
	}
	// Hand the leftover requests to the largest remainders; ties break
	// by class order for determinism.
	for assigned < s.Requests {
		best := -1
		for j := range rems {
			if best == -1 || rems[j].frac > rems[best].frac {
				best = j
			}
		}
		counts[rems[best].idx]++
		rems[best].frac = -1
		assigned++
	}
	return counts
}
