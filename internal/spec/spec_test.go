package spec

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"finwl/internal/check"
	"finwl/internal/serve"
)

// validYAML is a minimal two-class spec used across the tests.
const validYAML = `
name: test-mix
seed: 7
requests: 10
rate: 20
classes:
  - name: fast
    fraction: 0.7
    arrival:
      process: poisson
    slo:
      deadline_ms: 1000
      target: 0.9
    model:
      k: 2
    n:
      min: 4
      max: 8
  - name: slow
    fraction: 0.3
    arrival:
      process: bursty
    slo:
      target: 0.5
    endpoint: batch
    model:
      arch: distributed
      k: 2
    n:
      min: 3
      max: 3
`

func TestParseYAMLSpec(t *testing.T) {
	s, err := Parse([]byte(validYAML))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "test-mix" || s.Seed != 7 || s.Requests != 10 || s.Rate != 20 {
		t.Fatalf("header fields: %+v", s)
	}
	if len(s.Classes) != 2 {
		t.Fatalf("classes %d, want 2", len(s.Classes))
	}
	fast, slow := &s.Classes[0], &s.Classes[1]
	if fast.EndpointOrDefault() != EndpointSolve || fast.BatchOrDefault() != 1 {
		t.Fatalf("fast defaults: endpoint %q batch %d", fast.EndpointOrDefault(), fast.BatchOrDefault())
	}
	if slow.EndpointOrDefault() != EndpointBatch || slow.BatchOrDefault() != 4 {
		t.Fatalf("slow defaults: endpoint %q batch %d", slow.EndpointOrDefault(), slow.BatchOrDefault())
	}
	if got := slow.BurstCV2(); got != DefaultBurstCV2 {
		t.Fatalf("default burst cv2 %v, want %v", got, DefaultBurstCV2)
	}
	req := fast.Request(6)
	if req.N != 6 || req.K != 2 || req.TimeoutMS != 1000 {
		t.Fatalf("Request(6) = %+v", req)
	}
}

// The YAML and JSON forms of the same spec must decode identically —
// the YAML path re-marshals through JSON, so this pins the parity.
func TestParseJSONParity(t *testing.T) {
	yamlSpec, err := Parse([]byte(validYAML))
	if err != nil {
		t.Fatal(err)
	}
	jsonSpec, err := Parse([]byte(`{
		"name": "test-mix", "seed": 7, "requests": 10, "rate": 20,
		"classes": [
			{"name": "fast", "fraction": 0.7, "arrival": {"process": "poisson"},
			 "slo": {"deadline_ms": 1000, "target": 0.9}, "model": {"k": 2},
			 "n": {"min": 4, "max": 8}},
			{"name": "slow", "fraction": 0.3, "arrival": {"process": "bursty"},
			 "slo": {"target": 0.5}, "endpoint": "batch",
			 "model": {"arch": "distributed", "k": 2}, "n": {"min": 3, "max": 3}}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(yamlSpec, jsonSpec) {
		t.Fatalf("YAML and JSON forms differ:\nyaml %+v\njson %+v", yamlSpec, jsonSpec)
	}
}

// The committed example spec must stay valid — it is the README's
// runnable example and the CI replay smoke's input.
func TestParseExampleSpec(t *testing.T) {
	s, err := ParseFile("../../examples/spec-mixed.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mixed-demo" || len(s.Classes) != 3 {
		t.Fatalf("example spec: name %q classes %d", s.Name, len(s.Classes))
	}
	endpoints := map[string]bool{}
	for i := range s.Classes {
		endpoints[s.Classes[i].EndpointOrDefault()] = true
	}
	for _, ep := range []string{EndpointSolve, EndpointBatch, EndpointJobs} {
		if !endpoints[ep] {
			t.Errorf("example spec no longer exercises the %s endpoint", ep)
		}
	}
}

// The committed stream example must stay valid too — it is the README's
// job-stream walkthrough and exercises both stream modes.
func TestParseStreamExampleSpec(t *testing.T) {
	s, err := ParseFile("../../examples/spec-stream.yaml")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "stream-demo" || len(s.Classes) != 2 {
		t.Fatalf("stream example: name %q classes %d", s.Name, len(s.Classes))
	}
	var open, closed bool
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.EndpointOrDefault() != EndpointStream || c.Stream == nil {
			t.Fatalf("stream example class %s: endpoint %q", c.Name, c.EndpointOrDefault())
		}
		open = open || c.Stream.Jobs > 0
		closed = closed || c.Stream.Customers > 0
	}
	if !open || !closed {
		t.Fatalf("stream example: open=%v closed=%v, want both modes", open, closed)
	}
}

func TestValidateErrors(t *testing.T) {
	edit := func(f func(*Spec)) *Spec {
		s, err := Parse([]byte(validYAML))
		if err != nil {
			t.Fatal(err)
		}
		f(s)
		return s
	}
	cases := map[string]*Spec{
		"missing name":       edit(func(s *Spec) { s.Name = "" }),
		"zero requests":      edit(func(s *Spec) { s.Requests = 0 }),
		"zero rate":          edit(func(s *Spec) { s.Rate = 0 }),
		"no classes":         edit(func(s *Spec) { s.Classes = nil }),
		"duplicate class":    edit(func(s *Spec) { s.Classes[1].Name = "fast" }),
		"fractions sum":      edit(func(s *Spec) { s.Classes[0].Fraction = 0.5 }),
		"zero fraction":      edit(func(s *Spec) { s.Classes[0].Fraction = 0 }),
		"unknown arrival":    edit(func(s *Spec) { s.Classes[0].Arrival.Process = "uniform" }),
		"cv2 on poisson":     edit(func(s *Spec) { s.Classes[0].Arrival.CV2 = 4 }),
		"bursty cv2 <= 1":    edit(func(s *Spec) { s.Classes[1].Arrival.CV2 = 0.5 }),
		"negative deadline":  edit(func(s *Spec) { s.Classes[0].SLO.DeadlineMS = -1 }),
		"target > 1":         edit(func(s *Spec) { s.Classes[0].SLO.Target = 1.5 }),
		"unknown endpoint":   edit(func(s *Spec) { s.Classes[0].Endpoint = "pubsub" }),
		"stream no sub-spec": edit(func(s *Spec) { s.Classes[0].Endpoint = EndpointStream }),
		"stream on solve": edit(func(s *Spec) {
			s.Classes[0].Stream = &StreamSpec{Jobs: 2, Arrival: &serve.LawSpec{Process: "poisson", Mean: 1}}
		}),
		"stream batch": edit(func(s *Spec) {
			s.Classes[0].Endpoint = EndpointStream
			s.Classes[0].Batch = 2
			s.Classes[0].Stream = &StreamSpec{Jobs: 2, Arrival: &serve.LawSpec{Process: "poisson", Mean: 1}}
		}),
		"stream both modes": edit(func(s *Spec) {
			s.Classes[0].Endpoint = EndpointStream
			s.Classes[0].Stream = &StreamSpec{
				Jobs: 2, Arrival: &serve.LawSpec{Process: "poisson", Mean: 1},
				Customers: 2, Think: &serve.LawSpec{Process: "poisson", Mean: 1},
			}
		}),
		"stream bad law": edit(func(s *Spec) {
			s.Classes[0].Endpoint = EndpointStream
			s.Classes[0].Stream = &StreamSpec{Jobs: 2, Arrival: &serve.LawSpec{Process: "poisson", Mean: -1}}
		}),
		"stream bad probe": edit(func(s *Spec) {
			s.Classes[0].Endpoint = EndpointStream
			s.Classes[0].Stream = &StreamSpec{
				Jobs: 2, Arrival: &serve.LawSpec{Process: "poisson", Mean: 1},
				Probes: []float64{-1},
			}
		}),
		"batch on solve": edit(func(s *Spec) { s.Classes[0].Batch = 2 }),
		"negative batch": edit(func(s *Spec) { s.Classes[1].Batch = -1 }),
		"n min zero":     edit(func(s *Spec) { s.Classes[0].N.Min = 0 }),
		"n max < min":    edit(func(s *Spec) { s.Classes[0].N.Max = 1 }),
		"bad model k":    edit(func(s *Spec) { s.Classes[0].Model.K = 0 }),
		"bad model arch": edit(func(s *Spec) { s.Classes[0].Model.Arch = "mesh" }),
	}
	for name, s := range cases {
		if err := s.Validate(); !errors.Is(err, check.ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", name, err)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	in := strings.Replace(validYAML, "rate: 20", "rate: 20\nsurprise: 1", 1)
	if _, err := Parse([]byte(in)); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("unknown field: err = %v, want ErrInvalidModel", err)
	}
}

// ClassCounts must be exact (sums to Requests), deterministic, and
// follow largest-remainder rounding.
func TestClassCounts(t *testing.T) {
	mk := func(requests int, fracs ...float64) *Spec {
		s := &Spec{Requests: requests}
		for i, f := range fracs {
			s.Classes = append(s.Classes, Class{Name: fmt.Sprintf("c%d", i), Fraction: f})
		}
		return s
	}
	cases := []struct {
		s    *Spec
		want []int
	}{
		{mk(10, 0.7, 0.3), []int{7, 3}},
		{mk(10, 1.0/3, 1.0/3, 1.0/3), []int{4, 3, 3}},  // remainder tie → class order
		{mk(1, 0.5, 0.5), []int{1, 0}},                 // single request to first tie
		{mk(7, 0.5, 0.25, 0.25), []int{3, 2, 2}},       // remainders .5/.75/.75 → last two win
		{mk(60, 0.5, 0.3, 0.2), []int{30, 18, 12}},     // exact split
		{mk(100, 0.005, 0.005, 0.99), []int{1, 0, 99}}, // 0.5/0.5/99 remainders
	}
	for i, tc := range cases {
		got := tc.s.ClassCounts()
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("case %d: counts %v, want %v", i, got, tc.want)
		}
		sum := 0
		for _, c := range got {
			sum += c
		}
		if sum != tc.s.Requests {
			t.Errorf("case %d: counts sum %d, want %d", i, sum, tc.s.Requests)
		}
	}
}
