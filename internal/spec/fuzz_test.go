package spec

import (
	"errors"
	"os"
	"testing"

	"finwl/internal/check"
)

// FuzzSpecParse holds the parser to its contract on arbitrary bytes:
// never panic, and every failure is a typed check.ErrInvalidModel —
// a spec file with a syntax error must look exactly like a spec file
// with a semantic error to callers.
func FuzzSpecParse(f *testing.F) {
	if example, err := os.ReadFile("../../examples/spec-mixed.yaml"); err == nil {
		f.Add(example)
	}
	f.Add([]byte(validYAML))
	f.Add([]byte(`{"name":"j","seed":1,"requests":2,"rate":1,"classes":[{"name":"a","fraction":1,"arrival":{"process":"deterministic"},"slo":{"target":0},"model":{"k":1},"n":{"min":1,"max":1}}]}`))
	f.Add([]byte("a:\n  - 1\n  - b: 2\n"))
	f.Add([]byte("name: \"x\ty\"\nrate: [1, {\"k\": 2}]\n"))
	f.Add([]byte("---\n# only a comment\n"))
	f.Add([]byte("\t"))
	f.Add([]byte("- -\n-  - ~\n"))
	f.Add([]byte("a: 'b\nc: ''d'''))\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			if !errors.Is(err, check.ErrInvalidModel) {
				t.Fatalf("untyped parse error: %v", err)
			}
			return
		}
		// A spec that parses must also re-validate: Parse validates, so
		// a second Validate over the same value cannot disagree.
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse accepted a spec Validate rejects: %v", err)
		}
	})
}
