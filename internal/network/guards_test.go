package network

import (
	"context"
	"errors"
	"testing"

	"finwl/internal/check"
)

func TestChainRejectsBadPopulation(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	for _, k := range []int{0, -3, MaxPopulation + 1} {
		if _, err := NewChain(n, k); !errors.Is(err, check.ErrInvalidModel) {
			t.Fatalf("NewChain(maxK=%d) err = %v, want ErrInvalidModel", k, err)
		}
		if _, err := NewSparseChain(n, k); !errors.Is(err, check.ErrInvalidModel) {
			t.Fatalf("NewSparseChain(maxK=%d) err = %v, want ErrInvalidModel", k, err)
		}
	}
}

func TestChainRejectsHugeModel(t *testing.T) {
	// A population large enough that the dense chain would need far
	// more than the entry budget: the planner must refuse up front
	// (cheaply — this test should run in microseconds, not OOM).
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	if _, err := NewChain(n, 200); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("NewChain(huge) err = %v, want ErrInvalidModel", err)
	}
}

func TestChainCtxCanceled(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewChainCtx(ctx, n, 6); !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("NewChainCtx(canceled) err = %v, want ErrCanceled", err)
	}
	if _, err := NewSparseChainCtx(ctx, n, 6); !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("NewSparseChainCtx(canceled) err = %v, want ErrCanceled", err)
	}
}

func TestChainRejectsInvalidNetwork(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	n.Entry[0] = 0.2 // entry probabilities no longer sum to 1
	if _, err := NewChain(n, 3); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("NewChain(invalid net) err = %v, want ErrInvalidModel", err)
	}
}
