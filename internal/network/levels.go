package network

import (
	"context"
	"fmt"
	"runtime"

	"finwl/internal/arena"
	"finwl/internal/check"
	"finwl/internal/obs"
	"finwl/internal/par"
	"finwl/internal/sparse"
	"finwl/internal/statespace"
)

// mChainBuild times full chain constructions (validation, level
// enumeration, matrix generation) — the state-space-sized front half
// of every exact solve.
var mChainBuild = obs.Default.Histogram("finwl_chain_build_seconds",
	"Wall time of level-chain construction (enumeration + matrix generation).",
	obs.ExpBounds(100_000, 4, 13), 1e-9) // 100µs .. ~6.7s

// Allocation gauges for the most recent chain construction, sampled
// from the runtime's heap counters. The counters are process-global,
// so concurrent builds inflate each other's deltas — the gauges are a
// regression tripwire, not an exact attribution.
var (
	mChainBuildObjects = obs.Default.Gauge("finwl_chain_build_allocs",
		"Heap allocations during the most recent chain construction.",
		obs.L("unit", "objects"))
	mChainBuildBytes = obs.Default.Gauge("finwl_chain_build_allocs",
		"Heap allocations during the most recent chain construction.",
		obs.L("unit", "bytes"))
)

// heapAllocCounters reads the runtime's cumulative heap allocation
// counters. runtime.ReadMemStats is used rather than runtime/metrics
// because the latter's heap counters lag behind per-P allocation
// caches, reporting zero deltas for builds small enough to fit in
// already-cached spans; the stop-the-world here is a few microseconds,
// noise against any chain construction.
func heapAllocCounters() (objects, bytes uint64) {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Mallocs, m.TotalAlloc
}

// ChainBuildStats returns the heap allocation cost (objects, bytes)
// of the most recent chain construction in this process.
func ChainBuildStats() (objects, bytes int64) {
	return mChainBuildObjects.Value(), mChainBuildBytes.Value()
}

// Level holds the paper's per-population matrices for k active tasks:
//
//	MDiag — the diagonal of M_k, the total event rate of each state;
//	P     — [P_k]ij, the probability that the next event moves the
//	        system from state i to state j without a departure;
//	Q     — [Q_k]ij, the probability that the next event is a task
//	        departure leaving the system in state j of level k−1;
//	R     — [R_k]ij, the probability that a task arriving while the
//	        system is in state i of level k−1 puts it in state j.
//
// Rows of P_k + Q_k sum to one, as do rows of R_k.
//
// The matrices are CSR: each state has one outgoing entry per active
// service phase times routing fan-out, so the natural representation
// is sparse at every scale. Consumers that need the dense per-level
// system A_k = I − P_k materialize it with sparse.CSR.IMinusDense.
type Level struct {
	K      int
	States *statespace.Level
	MDiag  []float64
	P      *sparse.CSR
	Q      *sparse.CSR // D(k) × D(k−1)
	R      *sparse.CSR // D(k−1) × D(k)
}

// Chain is the full ladder of level matrices for populations 1..K,
// sharing one state-space layout. Levels[0] is the trivial empty
// level (one state, no matrices); Levels[k] describes k active tasks.
type Chain struct {
	Net    *Network
	Space  *statespace.Space
	Levels []*Level
}

// MaxPopulation is the largest supported maxK: state keys pack
// per-slot customer counts into single bytes, so populations beyond
// 255 cannot be represented. (Any chain near this bound is far past
// the memory guards anyway.)
const MaxPopulation = 255

// maxPhaseIndex bounds per-station phase counts for the same reason:
// a queue station's in-service phase index shares the byte encoding.
const maxPhaseIndex = 255

// Memory guards: the level-count DP (statespace.LevelSize) prices a
// chain before anything is allocated, so a model that would exhaust
// memory is rejected with ErrInvalidModel instead of dying in the
// allocator. NewChain keeps the stricter entry budget because its
// solver path may densify per-level factorizations
// (Σ d_k² + 2·d_k·d_{k−1} float64s ≈ 2 GiB); NewSparseChain is bounded
// by total enumerated states only.
const (
	maxDenseEntries = float64(1 << 28) // 268M float64s ≈ 2 GiB
	maxSparseStates = float64(1 << 24) // ~16.8M states
)

// planChain sizes every level of the prospective chain without
// enumerating it and rejects models whose construction could not
// complete. It returns the per-level state counts for reuse.
func planChain(space *statespace.Space, maxK int, dense bool) ([]int64, error) {
	if maxK < 1 {
		return nil, check.Invalid("network: chain needs maxK >= 1, got %d", maxK)
	}
	if maxK > MaxPopulation {
		return nil, check.Invalid("network: population %d exceeds the supported maximum %d", maxK, MaxPopulation)
	}
	for st := 0; st < space.Stations(); st++ {
		if p := space.Shape(st).Phases; p > maxPhaseIndex+1 {
			return nil, check.Invalid("network: station %d has %d phases, want <= %d", st, p, maxPhaseIndex+1)
		}
	}
	sizes := make([]int64, maxK+1)
	var states, entries float64
	for k := 0; k <= maxK; k++ {
		sizes[k] = space.LevelSize(k)
		d := float64(sizes[k])
		states += d
		if k > 0 {
			entries += d*d + 2*d*float64(sizes[k-1]) + d
		}
	}
	if dense && entries > maxDenseEntries {
		return nil, check.Invalid(
			"network: dense chain needs %.3g matrix entries (limit %.3g) — use the sparse chain or a smaller model",
			entries, maxDenseEntries)
	}
	if !dense && states > maxSparseStates {
		return nil, check.Invalid("network: chain has %.3g states (limit %.3g)", states, maxSparseStates)
	}
	return sizes, nil
}

// NewChain validates the network and builds every level up to maxK.
// See NewChainCtx for the construction strategy.
func NewChain(net *Network, maxK int) (*Chain, error) {
	return NewChainCtx(context.Background(), net, maxK)
}

// NewChainCtx is NewChain under a context: construction checks ctx
// between work items and returns a check.ErrCanceled-matching error as
// soon as cancellation or a deadline is observed.
func NewChainCtx(ctx context.Context, net *Network, maxK int) (*Chain, error) {
	return newChainCtx(ctx, net, maxK, true, "chain construction")
}

// newChainCtx builds the level ladder shared by NewChainCtx and
// NewSparseChainCtx; the two differ only in the admission budget
// (planChain) and the error label.
//
// Construction is parallel when it pays: the per-population state
// spaces are enumerated first (each level's enumeration is
// independent), then the level matrices are generated across a worker
// pool — level k only reads the network, the space layout, and the
// immutable state lists of levels k−1 and k, so the levels are
// embarrassingly parallel. par.ForCost drives the serial/parallel
// cutover from the planner's per-level state counts and schedules the
// largest levels first; small chains never pay the pool overhead.
func newChainCtx(ctx context.Context, net *Network, maxK int, dense bool, label string) (*Chain, error) {
	defer mChainBuild.Start().End()
	allocObjects, allocBytes := heapAllocCounters()
	defer func() {
		o, b := heapAllocCounters()
		mChainBuildObjects.Set(int64(o - allocObjects))
		mChainBuildBytes.Set(int64(b - allocBytes))
	}()
	if err := net.Validate(); err != nil {
		return nil, err
	}
	space := net.Space()
	sizes, err := planChain(space, maxK, dense)
	if err != nil {
		return nil, err
	}
	c := &Chain{Net: net, Space: space, Levels: make([]*Level, maxK+1)}
	states, err := enumerateLevels(ctx, space, maxK, sizes)
	if err != nil {
		return nil, err
	}
	c.Levels[0] = &Level{K: 0, States: states[0]}
	err = par.ForCost(ctx, maxK,
		func(i int) int64 { return levelBuildCost(sizes, i+1) },
		func(i int) error {
			k := i + 1
			c.Levels[k] = buildLevel(net, space, k, states[k-1], states[k])
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("network: %s: %w", label, err)
	}
	return c, nil
}

// levelBuildCost models the matrix-generation work of level k from the
// planner's state counts: every level-k state is visited with a
// handful of events, each costing a state copy plus a binary-search
// index lookup, and every level-(k−1) state seeds the arrival matrix.
// The constants put the unit near ForCost's "tens of ns" convention;
// they only need to be right within a small factor for the cutover.
func levelBuildCost(sizes []int64, k int) int64 {
	c := sizes[k]*96 + sizes[k-1]*32
	if c < 0 || c > par.MaxCost {
		return par.MaxCost
	}
	return c
}

// enumerateLevels lists the states of every population 0..maxK in
// parallel when the chain is large enough to pay for it; the
// enumerations share nothing but the read-only layout.
func enumerateLevels(ctx context.Context, space *statespace.Space, maxK int, sizes []int64) ([]*statespace.Level, error) {
	states := make([]*statespace.Level, maxK+1)
	err := par.ForCost(ctx, maxK+1,
		func(i int) int64 { return sizes[i] * 16 },
		func(i int) error {
			states[i] = space.Enumerate(i)
			return nil
		})
	if err != nil {
		return nil, fmt.Errorf("network: state enumeration: %w", err)
	}
	return states, nil
}

// D returns the number of states at level k.
func (c *Chain) D(k int) int { return c.Levels[k].States.Count() }

// EntryVector returns p_k, the state distribution after k tasks have
// entered an initially empty system: e₀·R₁·R₂···R_k (§4).
func (c *Chain) EntryVector(k int) []float64 {
	pi := []float64{1}
	for j := 1; j <= k; j++ {
		pi = c.Levels[j].R.VecMul(pi)
	}
	return pi
}

// levelSink receives the transition weights of one level as they are
// generated. The production sink assembles CSR directly; tests plug in
// a dense sink to hold the structured build to the dense reference.
// Every generator loop walks destination rows in non-decreasing order
// (the R pass iterates level-(k−1) states ascending, the M/P/Q pass
// iterates level-k states ascending), which is the contract that lets
// the CSR sink stream rows without a global sort.
type levelSink interface {
	setM(i int, rate float64)
	addP(i, j int, w float64)
	addQ(i, jPrev int, w float64)
	addR(iPrev, j int, w float64)
}

// csrSink streams one level's weights into row-ordered CSR builders.
type csrSink struct {
	m       []float64
	p, q, r *sparse.RowBuilder
}

func (s *csrSink) setM(i int, rate float64) { s.m[i] = rate }
func (s *csrSink) addP(i, j int, w float64) { s.p.Add(i, j, w) }
func (s *csrSink) addQ(i, j int, w float64) { s.q.Add(i, j, w) }
func (s *csrSink) addR(i, j int, w float64) { s.r.Add(i, j, w) }

// buildWS is the per-builder scratch a level generation needs: two
// state-width vectors and three CSR row builders. Workspaces are
// pooled — each concurrent builder checks one out, generates any
// number of levels with it, and returns it — so steady-state chain
// construction allocates only what escapes into the finished Level.
type buildWS struct {
	scratch, depart []int
	p, q, r         *sparse.RowBuilder
}

var buildPool = arena.Pool[buildWS]{New: func() *buildWS { return &buildWS{} }}

// prepare sizes the workspace for a d×dPrev level over states of the
// given width, reusing prior storage where it fits.
func (ws *buildWS) prepare(width, d, dPrev int) {
	ws.scratch = arena.Ints(ws.scratch, width)
	ws.depart = arena.Ints(ws.depart, width)
	if ws.p == nil {
		ws.p = sparse.NewRowBuilder(d, d)
		ws.q = sparse.NewRowBuilder(d, dPrev)
		ws.r = sparse.NewRowBuilder(dPrev, d)
		return
	}
	ws.p.Reset(d, d)
	ws.q.Reset(d, dPrev)
	ws.r.Reset(dPrev, d)
}

func buildLevel(net *Network, space *statespace.Space, k int, prev, cur *statespace.Level) *Level {
	d := cur.Count()
	dPrev := prev.Count()
	ws := buildPool.Get()
	ws.prepare(space.Width(), d, dPrev)
	lvl := &Level{
		K:      k,
		States: cur,
		MDiag:  make([]float64, d),
	}
	emitLevel(net, space, prev, cur,
		&csrSink{m: lvl.MDiag, p: ws.p, q: ws.q, r: ws.r},
		ws.scratch, ws.depart)
	lvl.P = ws.p.Build()
	lvl.Q = ws.q.Build()
	lvl.R = ws.r.Build()
	buildPool.Put(ws)
	return lvl
}

// emitLevel generates every M/P/Q/R weight of one population level.
// scratch and depart are caller-provided state-width work vectors
// (distinct, content ignored); nothing passed to the sink outlives the
// call. Weights for the same (row, column) pair are emitted in a fixed
// order, so accumulating sinks agree bitwise whatever their storage.
func emitLevel(net *Network, space *statespace.Space, prev, cur *statespace.Level, sink levelSink, scratch, depart []int) {
	d := cur.Count()
	dPrev := prev.Count()

	// addArrival distributes weight w over the states reached when a
	// task arrives at station dst with the system in `state`, calling
	// emit for each target state. It builds targets in scratch and
	// never writes state, so callers may pass the depart buffer.
	addArrival := func(state []int, dst int, w float64, emit func(target []int, w float64)) {
		st := net.Stations[dst]
		switch st.Kind {
		case statespace.Delay:
			for ph, a := range st.Service.Alpha {
				if a == 0 {
					continue
				}
				copy(scratch, state)
				space.SetDelayCount(scratch, dst, ph, space.DelayCount(scratch, dst, ph)+1)
				emit(scratch, w*a)
			}
		case statespace.Queue:
			n := space.QueueCount(state, dst)
			if n == 0 {
				// The arriving task goes straight into service.
				for ph, a := range st.Service.Alpha {
					if a == 0 {
						continue
					}
					copy(scratch, state)
					space.SetQueue(scratch, dst, 1, ph)
					emit(scratch, w*a)
				}
			} else {
				copy(scratch, state)
				space.SetQueue(scratch, dst, n+1, space.QueuePhase(state, dst))
				emit(scratch, w)
			}
		case statespace.Multi:
			copy(scratch, state)
			space.SetMultiCount(scratch, dst, space.MultiCount(state, dst)+1)
			emit(scratch, w)
		}
	}

	// R_k: arrivals into level k−1 states.
	for i := 0; i < dPrev; i++ {
		state := prev.State(i)
		for e, pe := range net.Entry {
			if pe == 0 {
				continue
			}
			addArrival(state, e, pe, func(target []int, w float64) {
				sink.addR(i, cur.MustIndex(target), w)
			})
		}
	}

	// M_k, P_k, Q_k: events out of level k states. The active units of a
	// state are walked once into a reusable buffer — the total rate
	// accumulates in the same visit order as a second walk would use, so
	// the division by total stays bitwise identical — and the emission
	// loop then replays the buffer.
	units := make([]activeUnit, 0, maxActiveUnits(net))
	for si := 0; si < d; si++ {
		state := cur.State(si)

		var total float64
		units = units[:0]
		forEachActiveUnit(net, space, state, func(st, ph int, rate float64) {
			units = append(units, activeUnit{st: st, ph: ph, rate: rate})
			total += rate
		})
		sink.setM(si, total)

		for _, u := range units {
			st, ph := u.st, u.ph
			w0 := u.rate / total
			svc := net.Stations[st].Service

			// Internal phase movement within the station.
			for ph2 := 0; ph2 < svc.Dim(); ph2++ {
				tp := svc.Trans.At(ph, ph2)
				if tp == 0 {
					continue
				}
				moved := moveWithinStation(net, space, state, st, ph, ph2, depart)
				sink.addP(si, cur.MustIndex(moved), w0*tp)
			}

			done := svc.ExitProb(ph)
			if done == 0 {
				continue
			}
			// Remove the completing customer from the station; for a
			// queue with waiting customers the successor's starting
			// phase fans out over the entry vector. base is the depart
			// buffer, which addArrival leaves untouched.
			forEachPostCompletion(net, space, state, st, ph, depart, func(base []int, bw float64) {
				// Route to the next station …
				for dst := 0; dst < len(net.Stations); dst++ {
					r := net.Route.At(st, dst)
					if r == 0 {
						continue
					}
					addArrival(base, dst, w0*done*bw*r, func(target []int, w float64) {
						sink.addP(si, cur.MustIndex(target), w)
					})
				}
				// … or leave the system.
				if e := net.Exit[st]; e > 0 {
					sink.addQ(si, prev.MustIndex(base), w0*done*bw*e)
				}
			})
		}
	}
}

// activeUnit is one independently-completing exponential phase of a
// state, as visited by forEachActiveUnit.
type activeUnit struct {
	st, ph int
	rate   float64
}

// maxActiveUnits bounds how many units forEachActiveUnit can visit in
// any state: every phase of each delay station, one unit per queue or
// multi-server station.
func maxActiveUnits(net *Network) int {
	n := 0
	for _, st := range net.Stations {
		if st.Kind == statespace.Delay {
			n += st.Service.Dim()
		} else {
			n++
		}
	}
	return n
}

// forEachActiveUnit visits every independently-completing exponential
// phase in the state with its aggregate rate: each occupied phase of
// a delay station (rate count·µ) and the in-service phase of each
// non-empty queue station (rate µ).
func forEachActiveUnit(net *Network, space *statespace.Space, state []int, f func(st, ph int, rate float64)) {
	for st := range net.Stations {
		svc := net.Stations[st].Service
		switch net.Stations[st].Kind {
		case statespace.Delay:
			for ph := 0; ph < svc.Dim(); ph++ {
				if c := space.DelayCount(state, st, ph); c > 0 {
					f(st, ph, float64(c)*svc.Rates[ph])
				}
			}
		case statespace.Queue:
			if n := space.QueueCount(state, st); n > 0 {
				ph := space.QueuePhase(state, st)
				f(st, ph, svc.Rates[ph])
			}
		case statespace.Multi:
			if n := space.MultiCount(state, st); n > 0 {
				busy := n
				if c := net.Stations[st].Servers; busy > c {
					busy = c
				}
				f(st, 0, float64(busy)*svc.Rates[0])
			}
		}
	}
}

// moveWithinStation returns the state after one customer at (st, ph)
// moves to phase ph2 of the same station, using buf as scratch.
func moveWithinStation(net *Network, space *statespace.Space, state []int, st, ph, ph2 int, buf []int) []int {
	copy(buf, state)
	switch net.Stations[st].Kind {
	case statespace.Delay:
		space.SetDelayCount(buf, st, ph, space.DelayCount(buf, st, ph)-1)
		space.SetDelayCount(buf, st, ph2, space.DelayCount(buf, st, ph2)+1)
	case statespace.Queue:
		space.SetQueue(buf, st, space.QueueCount(buf, st), ph2)
	case statespace.Multi:
		// Exponential only: no internal phase moves exist.
	}
	return buf
}

// forEachPostCompletion removes the customer completing service at
// (st, ph) and emits the resulting station state(s) with weights: a
// single state for delay stations and empty-after queues, and one
// state per successor entry phase for queues with waiting customers.
func forEachPostCompletion(net *Network, space *statespace.Space, state []int, st, ph int, buf []int, emit func(base []int, w float64)) {
	svc := net.Stations[st].Service
	switch net.Stations[st].Kind {
	case statespace.Delay:
		copy(buf, state)
		space.SetDelayCount(buf, st, ph, space.DelayCount(buf, st, ph)-1)
		emit(buf, 1)
	case statespace.Queue:
		n := space.QueueCount(state, st)
		if n == 1 {
			copy(buf, state)
			space.SetQueue(buf, st, 0, 0)
			emit(buf, 1)
			return
		}
		for ph2, a := range svc.Alpha {
			if a == 0 {
				continue
			}
			copy(buf, state)
			space.SetQueue(buf, st, n-1, ph2)
			emit(buf, a)
		}
	case statespace.Multi:
		copy(buf, state)
		space.SetMultiCount(buf, st, space.MultiCount(state, st)-1)
		emit(buf, 1)
	}
}
