package network

import (
	"context"
	"fmt"

	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/obs"
	"finwl/internal/par"
	"finwl/internal/statespace"
)

// mChainBuild times full chain constructions (validation, level
// enumeration, matrix generation) — the state-space-sized front half
// of every exact solve.
var mChainBuild = obs.Default.Histogram("finwl_chain_build_seconds",
	"Wall time of level-chain construction (enumeration + matrix generation).",
	obs.ExpBounds(100_000, 4, 13), 1e-9) // 100µs .. ~6.7s

// Level holds the paper's per-population matrices for k active tasks:
//
//	MDiag — the diagonal of M_k, the total event rate of each state;
//	P     — [P_k]ij, the probability that the next event moves the
//	        system from state i to state j without a departure;
//	Q     — [Q_k]ij, the probability that the next event is a task
//	        departure leaving the system in state j of level k−1;
//	R     — [R_k]ij, the probability that a task arriving while the
//	        system is in state i of level k−1 puts it in state j.
//
// Rows of P_k + Q_k sum to one, as do rows of R_k.
type Level struct {
	K      int
	States *statespace.Level
	MDiag  []float64
	P      *matrix.Matrix
	Q      *matrix.Matrix // D(k) × D(k−1)
	R      *matrix.Matrix // D(k−1) × D(k)
}

// Chain is the full ladder of level matrices for populations 1..K,
// sharing one state-space layout. Levels[0] is the trivial empty
// level (one state, no matrices); Levels[k] describes k active tasks.
type Chain struct {
	Net    *Network
	Space  *statespace.Space
	Levels []*Level
}

// MaxPopulation is the largest supported maxK: state keys pack
// per-slot customer counts into single bytes, so populations beyond
// 255 cannot be represented. (Any chain near this bound is far past
// the memory guards anyway.)
const MaxPopulation = 255

// maxPhaseIndex bounds per-station phase counts for the same reason:
// a queue station's in-service phase index shares the byte encoding.
const maxPhaseIndex = 255

// Memory guards: the level-count DP (statespace.LevelSize) prices a
// chain before anything is allocated, so a model that would exhaust
// memory is rejected with ErrInvalidModel instead of dying in the
// allocator. Dense chains are bounded by total matrix entries
// (Σ d_k² + 2·d_k·d_{k−1} float64s ≈ 2 GiB); sparse chains by total
// enumerated states.
const (
	maxDenseEntries = float64(1 << 28) // 268M float64s ≈ 2 GiB
	maxSparseStates = float64(1 << 24) // ~16.8M states
)

// planChain sizes every level of the prospective chain without
// enumerating it and rejects models whose construction could not
// complete. It returns the per-level state counts for reuse.
func planChain(space *statespace.Space, maxK int, dense bool) ([]int64, error) {
	if maxK < 1 {
		return nil, check.Invalid("network: chain needs maxK >= 1, got %d", maxK)
	}
	if maxK > MaxPopulation {
		return nil, check.Invalid("network: population %d exceeds the supported maximum %d", maxK, MaxPopulation)
	}
	for st := 0; st < space.Stations(); st++ {
		if p := space.Shape(st).Phases; p > maxPhaseIndex+1 {
			return nil, check.Invalid("network: station %d has %d phases, want <= %d", st, p, maxPhaseIndex+1)
		}
	}
	sizes := make([]int64, maxK+1)
	var states, entries float64
	for k := 0; k <= maxK; k++ {
		sizes[k] = space.LevelSize(k)
		d := float64(sizes[k])
		states += d
		if k > 0 {
			entries += d*d + 2*d*float64(sizes[k-1]) + d
		}
	}
	if dense && entries > maxDenseEntries {
		return nil, check.Invalid(
			"network: dense chain needs %.3g matrix entries (limit %.3g) — use the sparse chain or a smaller model",
			entries, maxDenseEntries)
	}
	if !dense && states > maxSparseStates {
		return nil, check.Invalid("network: chain has %.3g states (limit %.3g)", states, maxSparseStates)
	}
	return sizes, nil
}

// NewChain validates the network and builds every level up to maxK.
// See NewChainCtx for the construction strategy.
func NewChain(net *Network, maxK int) (*Chain, error) {
	return NewChainCtx(context.Background(), net, maxK)
}

// NewChainCtx is NewChain under a context: construction checks ctx
// between levels and returns a check.ErrCanceled-matching error as
// soon as cancellation or a deadline is observed.
//
// Construction is parallel: the per-population state spaces are
// enumerated first (each level's enumeration is independent), then the
// level matrices are generated across a worker pool — level k only
// reads the network, the space layout, and the immutable state lists
// of levels k−1 and k, so the levels are embarrassingly parallel.
// Workers claim the largest levels first and write into their own
// slot, keeping assembly deterministic.
func NewChainCtx(ctx context.Context, net *Network, maxK int) (*Chain, error) {
	defer mChainBuild.Start().End()
	if err := net.Validate(); err != nil {
		return nil, err
	}
	space := net.Space()
	if _, err := planChain(space, maxK, true); err != nil {
		return nil, err
	}
	c := &Chain{Net: net, Space: space, Levels: make([]*Level, maxK+1)}
	states, err := enumerateLevels(ctx, space, maxK)
	if err != nil {
		return nil, err
	}
	c.Levels[0] = &Level{K: 0, States: states[0]}
	err = par.ForErr(ctx, maxK, func(i int) error {
		k := maxK - i // largest state spaces first, for load balance
		c.Levels[k] = buildLevel(net, space, k, states[k-1], states[k])
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("network: chain construction: %w", err)
	}
	return c, nil
}

// enumerateLevels lists the states of every population 0..maxK in
// parallel; the enumerations share nothing but the read-only layout.
func enumerateLevels(ctx context.Context, space *statespace.Space, maxK int) ([]*statespace.Level, error) {
	states := make([]*statespace.Level, maxK+1)
	err := par.ForErr(ctx, maxK+1, func(i int) error {
		k := maxK - i
		states[k] = space.Enumerate(k)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("network: state enumeration: %w", err)
	}
	return states, nil
}

// D returns the number of states at level k.
func (c *Chain) D(k int) int { return c.Levels[k].States.Count() }

// EntryVector returns p_k, the state distribution after k tasks have
// entered an initially empty system: e₀·R₁·R₂···R_k (§4).
func (c *Chain) EntryVector(k int) []float64 {
	pi := []float64{1}
	for j := 1; j <= k; j++ {
		pi = c.Levels[j].R.VecMul(pi)
	}
	return pi
}

// levelSink receives the transition weights of one level as they are
// generated; dense and sparse chains share the construction logic and
// differ only in the sink.
type levelSink interface {
	setM(i int, rate float64)
	addP(i, j int, w float64)
	addQ(i, jPrev int, w float64)
	addR(iPrev, j int, w float64)
}

// denseSink writes into a dense Level.
type denseSink struct{ lvl *Level }

func (s denseSink) setM(i int, rate float64) { s.lvl.MDiag[i] = rate }
func (s denseSink) addP(i, j int, w float64) { s.lvl.P.Inc(i, j, w) }
func (s denseSink) addQ(i, j int, w float64) { s.lvl.Q.Inc(i, j, w) }
func (s denseSink) addR(i, j int, w float64) { s.lvl.R.Inc(i, j, w) }

func buildLevel(net *Network, space *statespace.Space, k int, prev, cur *statespace.Level) *Level {
	d := cur.Count()
	dPrev := prev.Count()
	lvl := &Level{
		K:      k,
		States: cur,
		MDiag:  make([]float64, d),
		P:      matrix.New(d, d),
		Q:      matrix.New(d, dPrev),
		R:      matrix.New(dPrev, d),
	}
	emitLevel(net, space, prev, cur, denseSink{lvl})
	return lvl
}

// emitLevel generates every M/P/Q/R weight of one population level.
func emitLevel(net *Network, space *statespace.Space, prev, cur *statespace.Level, sink levelSink) {
	d := cur.Count()
	dPrev := prev.Count()
	scratch := make([]int, space.Width())

	// addArrival distributes weight w over the states reached when a
	// task arrives at station dst with the system in `state`, calling
	// emit for each target state.
	addArrival := func(state []int, dst int, w float64, emit func(target []int, w float64)) {
		st := net.Stations[dst]
		switch st.Kind {
		case statespace.Delay:
			for ph, a := range st.Service.Alpha {
				if a == 0 {
					continue
				}
				copy(scratch, state)
				space.SetDelayCount(scratch, dst, ph, space.DelayCount(scratch, dst, ph)+1)
				emit(scratch, w*a)
			}
		case statespace.Queue:
			n := space.QueueCount(state, dst)
			if n == 0 {
				// The arriving task goes straight into service.
				for ph, a := range st.Service.Alpha {
					if a == 0 {
						continue
					}
					copy(scratch, state)
					space.SetQueue(scratch, dst, 1, ph)
					emit(scratch, w*a)
				}
			} else {
				copy(scratch, state)
				space.SetQueue(scratch, dst, n+1, space.QueuePhase(state, dst))
				emit(scratch, w)
			}
		case statespace.Multi:
			copy(scratch, state)
			space.SetMultiCount(scratch, dst, space.MultiCount(state, dst)+1)
			emit(scratch, w)
		}
	}

	// R_k: arrivals into level k−1 states.
	for i := 0; i < dPrev; i++ {
		state := prev.State(i)
		for e, pe := range net.Entry {
			if pe == 0 {
				continue
			}
			addArrival(state, e, pe, func(target []int, w float64) {
				sink.addR(i, cur.MustIndex(target), w)
			})
		}
	}

	// M_k, P_k, Q_k: events out of level k states.
	depart := make([]int, space.Width())
	for si := 0; si < d; si++ {
		state := cur.State(si)

		// First pass: total event rate.
		var total float64
		forEachActiveUnit(net, space, state, func(st, ph int, rate float64) {
			total += rate
		})
		sink.setM(si, total)

		forEachActiveUnit(net, space, state, func(st, ph int, rate float64) {
			w0 := rate / total
			svc := net.Stations[st].Service

			// Internal phase movement within the station.
			for ph2 := 0; ph2 < svc.Dim(); ph2++ {
				tp := svc.Trans.At(ph, ph2)
				if tp == 0 {
					continue
				}
				moved := moveWithinStation(net, space, state, st, ph, ph2, depart)
				sink.addP(si, cur.MustIndex(moved), w0*tp)
			}

			done := svc.ExitProb(ph)
			if done == 0 {
				return
			}
			// Remove the completing customer from the station; for a
			// queue with waiting customers the successor's starting
			// phase fans out over the entry vector.
			forEachPostCompletion(net, space, state, st, ph, depart, func(base []int, bw float64) {
				baseCopy := append([]int(nil), base...)
				// Route to the next station …
				for dst := 0; dst < len(net.Stations); dst++ {
					r := net.Route.At(st, dst)
					if r == 0 {
						continue
					}
					addArrival(baseCopy, dst, w0*done*bw*r, func(target []int, w float64) {
						sink.addP(si, cur.MustIndex(target), w)
					})
				}
				// … or leave the system.
				if e := net.Exit[st]; e > 0 {
					sink.addQ(si, prev.MustIndex(baseCopy), w0*done*bw*e)
				}
			})
		})
	}
}

// forEachActiveUnit visits every independently-completing exponential
// phase in the state with its aggregate rate: each occupied phase of
// a delay station (rate count·µ) and the in-service phase of each
// non-empty queue station (rate µ).
func forEachActiveUnit(net *Network, space *statespace.Space, state []int, f func(st, ph int, rate float64)) {
	for st := range net.Stations {
		svc := net.Stations[st].Service
		switch net.Stations[st].Kind {
		case statespace.Delay:
			for ph := 0; ph < svc.Dim(); ph++ {
				if c := space.DelayCount(state, st, ph); c > 0 {
					f(st, ph, float64(c)*svc.Rates[ph])
				}
			}
		case statespace.Queue:
			if n := space.QueueCount(state, st); n > 0 {
				ph := space.QueuePhase(state, st)
				f(st, ph, svc.Rates[ph])
			}
		case statespace.Multi:
			if n := space.MultiCount(state, st); n > 0 {
				busy := n
				if c := net.Stations[st].Servers; busy > c {
					busy = c
				}
				f(st, 0, float64(busy)*svc.Rates[0])
			}
		}
	}
}

// moveWithinStation returns the state after one customer at (st, ph)
// moves to phase ph2 of the same station, using buf as scratch.
func moveWithinStation(net *Network, space *statespace.Space, state []int, st, ph, ph2 int, buf []int) []int {
	copy(buf, state)
	switch net.Stations[st].Kind {
	case statespace.Delay:
		space.SetDelayCount(buf, st, ph, space.DelayCount(buf, st, ph)-1)
		space.SetDelayCount(buf, st, ph2, space.DelayCount(buf, st, ph2)+1)
	case statespace.Queue:
		space.SetQueue(buf, st, space.QueueCount(buf, st), ph2)
	case statespace.Multi:
		// Exponential only: no internal phase moves exist.
	}
	return buf
}

// forEachPostCompletion removes the customer completing service at
// (st, ph) and emits the resulting station state(s) with weights: a
// single state for delay stations and empty-after queues, and one
// state per successor entry phase for queues with waiting customers.
func forEachPostCompletion(net *Network, space *statespace.Space, state []int, st, ph int, buf []int, emit func(base []int, w float64)) {
	svc := net.Stations[st].Service
	switch net.Stations[st].Kind {
	case statespace.Delay:
		copy(buf, state)
		space.SetDelayCount(buf, st, ph, space.DelayCount(buf, st, ph)-1)
		emit(buf, 1)
	case statespace.Queue:
		n := space.QueueCount(state, st)
		if n == 1 {
			copy(buf, state)
			space.SetQueue(buf, st, 0, 0)
			emit(buf, 1)
			return
		}
		for ph2, a := range svc.Alpha {
			if a == 0 {
				continue
			}
			copy(buf, state)
			space.SetQueue(buf, st, n-1, ph2)
			emit(buf, a)
		}
	case statespace.Multi:
		copy(buf, state)
		space.SetMultiCount(buf, st, space.MultiCount(state, st)-1)
		emit(buf, 1)
	}
}
