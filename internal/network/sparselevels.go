package network

import (
	"context"
	"fmt"

	"finwl/internal/par"
	"finwl/internal/sparse"
	"finwl/internal/statespace"
)

// SparseLevel is a population level's matrices in CSR form, for state
// spaces too large to factor densely. The semantics are identical to
// Level.
type SparseLevel struct {
	K      int
	States *statespace.Level
	MDiag  []float64
	P      *sparse.CSR
	Q      *sparse.CSR // D(k) × D(k−1)
	R      *sparse.CSR // D(k−1) × D(k)
}

// SparseChain is the CSR counterpart of Chain, built by the same
// transition-generation code.
type SparseChain struct {
	Net    *Network
	Space  *statespace.Space
	Levels []*SparseLevel
}

// sparseSink accumulates one level into CSR builders.
type sparseSink struct {
	m       []float64
	p, q, r *sparse.Builder
}

func (s *sparseSink) setM(i int, rate float64) { s.m[i] = rate }
func (s *sparseSink) addP(i, j int, w float64) { s.p.Add(i, j, w) }
func (s *sparseSink) addQ(i, j int, w float64) { s.q.Add(i, j, w) }
func (s *sparseSink) addR(i, j int, w float64) { s.r.Add(i, j, w) }

// NewSparseChain validates the network and builds CSR level matrices
// for populations 1..maxK. See NewSparseChainCtx.
func NewSparseChain(net *Network, maxK int) (*SparseChain, error) {
	return NewSparseChainCtx(context.Background(), net, maxK)
}

// NewSparseChainCtx is NewSparseChain under a context. Like NewChain,
// the levels are generated in parallel once the state spaces exist;
// each worker owns its level's builders, so no synchronization is
// needed beyond the final join. Cancellation surfaces as a
// check.ErrCanceled-matching error.
func NewSparseChainCtx(ctx context.Context, net *Network, maxK int) (*SparseChain, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	space := net.Space()
	if _, err := planChain(space, maxK, false); err != nil {
		return nil, err
	}
	c := &SparseChain{Net: net, Space: space, Levels: make([]*SparseLevel, maxK+1)}
	states, err := enumerateLevels(ctx, space, maxK)
	if err != nil {
		return nil, err
	}
	c.Levels[0] = &SparseLevel{K: 0, States: states[0]}
	err = par.ForErr(ctx, maxK, func(i int) error {
		k := maxK - i
		prev, cur := states[k-1], states[k]
		d, dPrev := cur.Count(), prev.Count()
		sink := &sparseSink{
			m: make([]float64, d),
			p: sparse.NewBuilder(d, d),
			q: sparse.NewBuilder(d, dPrev),
			r: sparse.NewBuilder(dPrev, d),
		}
		emitLevel(net, space, prev, cur, sink)
		c.Levels[k] = &SparseLevel{
			K:      k,
			States: cur,
			MDiag:  sink.m,
			P:      sink.p.Build(),
			Q:      sink.q.Build(),
			R:      sink.r.Build(),
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("network: sparse chain construction: %w", err)
	}
	return c, nil
}

// D returns the number of states at level k.
func (c *SparseChain) D(k int) int { return c.Levels[k].States.Count() }

// EntryVector returns p_k = e₀·R₁···R_k.
func (c *SparseChain) EntryVector(k int) []float64 {
	pi := []float64{1}
	for j := 1; j <= k; j++ {
		pi = c.Levels[j].R.VecMul(pi)
	}
	return pi
}
