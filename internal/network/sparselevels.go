package network

import "context"

// The dense and sparse chains used to be distinct types built by
// distinct sinks; the structured builder now assembles CSR for both,
// so SparseLevel and SparseChain survive as aliases. The constructors
// keep their own admission budgets: NewChain prices the chain as if
// every level may densify (its solver path factors A_k = I − P_k
// densely when sparsity runs out), while NewSparseChain only bounds
// the total state count.

// SparseLevel is a population level's matrices in CSR form. Since the
// structured builder, every Level is CSR; the name remains for the
// large-state-space call sites.
type SparseLevel = Level

// SparseChain is the admission-relaxed counterpart of Chain, built by
// the same generator.
type SparseChain = Chain

// NewSparseChain validates the network and builds CSR level matrices
// for populations 1..maxK. See NewSparseChainCtx.
func NewSparseChain(net *Network, maxK int) (*SparseChain, error) {
	return NewSparseChainCtx(context.Background(), net, maxK)
}

// NewSparseChainCtx is NewChainCtx without the dense-entry admission
// budget: it accepts any model whose total enumerated state count
// fits, for consumers (the iterative sparse solver) that never
// densify a level. Cancellation surfaces as a check.ErrCanceled-
// matching error.
func NewSparseChainCtx(ctx context.Context, net *Network, maxK int) (*SparseChain, error) {
	return newChainCtx(ctx, net, maxK, false, "sparse chain construction")
}
