package network

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"finwl/internal/matrix"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// singleExpNet is one exponential station, exit after service.
func singleExpNet(mu float64, kind statespace.Kind) *Network {
	route := matrix.New(1, 1)
	return &Network{
		Stations: []Station{{Name: "s", Kind: kind, Service: phase.MustExpo(mu)}},
		Route:    route,
		Exit:     []float64{1},
		Entry:    []float64{1},
	}
}

// paperCentralNet builds the §5.4 four-station central-cluster chain
// with the given routing parameters and rates.
func paperCentralNet(q, p1, p2, muCPU, muD, muCom, muRD float64) *Network {
	route := matrix.New(4, 4)
	route.Set(0, 1, p1*(1-q)) // CPU → Disk
	route.Set(0, 2, p2*(1-q)) // CPU → Comm
	route.Set(1, 0, 1)        // Disk → CPU
	route.Set(2, 3, 1)        // Comm → RDisk
	route.Set(3, 0, 1)        // RDisk → CPU
	return &Network{
		Stations: []Station{
			{Name: "CPU", Kind: statespace.Delay, Service: phase.MustExpo(muCPU)},
			{Name: "Disk", Kind: statespace.Delay, Service: phase.MustExpo(muD)},
			{Name: "Comm", Kind: statespace.Queue, Service: phase.MustExpo(muCom)},
			{Name: "RDisk", Kind: statespace.Queue, Service: phase.MustExpo(muRD)},
		},
		Route: route,
		Exit:  []float64{q, 0, 0, 0},
		Entry: []float64{1, 0, 0, 0},
	}
}

func TestValidateGood(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadRouting(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	n.Route.Set(0, 1, 0.99) // row 0 no longer sums with exit to 1
	if err := n.Validate(); err == nil {
		t.Fatal("Validate accepted broken routing row")
	}
	n2 := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	n2.Entry[0] = 0.5
	if err := n2.Validate(); err == nil {
		t.Fatal("Validate accepted entry sum != 1")
	}
}

func TestAsPHSingleStationIsExponential(t *testing.T) {
	n := singleExpNet(2.5, statespace.Delay)
	d := n.AsPH()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Mean()-0.4) > 1e-12 {
		t.Fatalf("mean = %v, want 0.4", d.Mean())
	}
	if math.Abs(d.CV2()-1) > 1e-9 {
		t.Fatalf("C² = %v, want 1", d.CV2())
	}
}

// Paper §5.4: pV = [t_cpu/q, t_d·p1(1−q)/q, t_com·p2(1−q)/q,
// t_rd·p2(1−q)/q].
func TestTimeComponentsMatchPaperFormula(t *testing.T) {
	q, p1, p2 := 0.1, 0.4, 0.6
	muCPU, muD, muCom, muRD := 3.0, 1.5, 4.0, 0.75
	n := paperCentralNet(q, p1, p2, muCPU, muD, muCom, muRD)
	got, err := n.TimeComponents()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{
		(1 / muCPU) / q,
		(1 / muD) * p1 * (1 - q) / q,
		(1 / muCom) * p2 * (1 - q) / q,
		(1 / muRD) * p2 * (1 - q) / q,
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("pV[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVisitRatios(t *testing.T) {
	q := 0.2
	n := paperCentralNet(q, 0.5, 0.5, 1, 1, 1, 1)
	v, err := n.VisitRatios()
	if err != nil {
		t.Fatal(err)
	}
	// CPU is visited 1/q times on average; Disk p1(1−q)/q times;
	// Comm and RDisk p2(1−q)/q times.
	if math.Abs(v[0]-1/q) > 1e-9 {
		t.Fatalf("CPU visits = %v, want %v", v[0], 1/q)
	}
	if math.Abs(v[1]-0.5*(1-q)/q) > 1e-9 {
		t.Fatalf("Disk visits = %v", v[1])
	}
	if math.Abs(v[2]-v[3]) > 1e-12 {
		t.Fatal("Comm and RDisk visit ratios should match")
	}
}

func TestAsPHMeanEqualsSumOfTimeComponents(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 2, 1, 5, 0.5)
	mean := n.AsPH().Mean()
	var sum float64
	tc, err := n.TimeComponents()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tc {
		sum += v
	}
	if math.Abs(mean-sum) > 1e-9 {
		t.Fatalf("AsPH mean %v != Σ time components %v", mean, sum)
	}
}

func TestChainBasicShapes(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	c, err := NewChain(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	// D(k) = C(k+3, k) for 4 exponential stations.
	for k, want := range map[int]int{0: 1, 1: 4, 2: 10, 3: 20} {
		if got := c.D(k); got != want {
			t.Fatalf("D(%d) = %d, want %d", k, got, want)
		}
	}
}

// Stochasticity invariants: P_k+Q_k and R_k rows sum to 1; MDiag > 0.
func checkChainStochastic(t *testing.T, c *Chain, tol float64) {
	t.Helper()
	for k := 1; k < len(c.Levels); k++ {
		lvl := c.Levels[k]
		d := lvl.States.Count()
		pSums, qSums := lvl.P.RowSums(), lvl.Q.RowSums()
		for i := 0; i < d; i++ {
			if lvl.MDiag[i] <= 0 {
				t.Fatalf("level %d: MDiag[%d] = %v", k, i, lvl.MDiag[i])
			}
			if rowSum := pSums[i] + qSums[i]; math.Abs(rowSum-1) > tol {
				t.Fatalf("level %d: (P+Q) row %d sums to %v", k, i, rowSum)
			}
		}
		rSums := lvl.R.RowSums()
		for i := 0; i < c.Levels[k-1].States.Count(); i++ {
			if s := rSums[i]; math.Abs(s-1) > tol {
				t.Fatalf("level %d: R row %d sums to %v", k, i, s)
			}
		}
	}
}

func TestChainStochasticExponential(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	c, err := NewChain(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkChainStochastic(t, c, 1e-12)
}

func TestChainStochasticWithPhases(t *testing.T) {
	// Erlang-3 CPU (delay) and H2 remote disk (queue): the §5.4.1 and
	// §6.1 constructions combined.
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	n.Stations[0].Service = phase.MustErlangMean(3, 1.0)
	n.Stations[3].Service = phase.MustHyperExpFit(2, 10)
	c, err := NewChain(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkChainStochastic(t, c, 1e-12)
}

func TestEntryVectorIsDistribution(t *testing.T) {
	n := paperCentralNet(0.15, 0.3, 0.7, 1, 2, 3, 4)
	n.Stations[3].Service = phase.MustHyperExpFit(1, 4)
	c, err := NewChain(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		p := c.EntryVector(k)
		if len(p) != c.D(k) {
			t.Fatalf("EntryVector(%d) length %d, want %d", k, len(p), c.D(k))
		}
		if math.Abs(matrix.VecSum(p)-1) > 1e-12 {
			t.Fatalf("EntryVector(%d) sums to %v", k, matrix.VecSum(p))
		}
	}
	// With entry at the CPU only and exponential CPU, after K entries
	// every task sits at the CPU: p_K should be a unit vector.
	n2 := paperCentralNet(0.15, 0.3, 0.7, 1, 2, 3, 4)
	c2, err := NewChain(n2, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := c2.EntryVector(3)
	nonZero := 0
	for _, v := range p {
		if v > 1e-15 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Fatalf("p_K has %d non-zero entries, want 1", nonZero)
	}
}

// randomExpNetwork builds a random all-exponential network for
// property tests: every station exits with probability ≥ 0.2 so the
// single-task chain is absorbing.
func randomExpNetwork(r *rand.Rand, m int) *Network {
	stations := make([]Station, m)
	for i := range stations {
		kind := statespace.Delay
		if r.Intn(2) == 0 {
			kind = statespace.Queue
		}
		stations[i] = Station{
			Name:    string(rune('A' + i)),
			Kind:    kind,
			Service: phase.MustExpo(0.5 + 3*r.Float64()),
		}
	}
	route := matrix.New(m, m)
	exit := make([]float64, m)
	for i := 0; i < m; i++ {
		exit[i] = 0.2 + 0.3*r.Float64()
		remain := 1 - exit[i]
		weights := make([]float64, m)
		var sum float64
		for j := range weights {
			weights[j] = r.Float64()
			sum += weights[j]
		}
		for j := range weights {
			route.Set(i, j, remain*weights[j]/sum)
		}
	}
	entry := make([]float64, m)
	var es float64
	for i := range entry {
		entry[i] = r.Float64()
		es += entry[i]
	}
	for i := range entry {
		entry[i] /= es
	}
	return &Network{Stations: stations, Route: route, Exit: exit, Entry: entry}
}

// Property: every random exponential network yields stochastic level
// matrices.
func TestChainStochasticProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomExpNetwork(r, 1+r.Intn(3))
		c, err := NewChain(n, 1+r.Intn(3))
		if err != nil {
			return false
		}
		for k := 1; k < len(c.Levels); k++ {
			lvl := c.Levels[k]
			pSums, qSums := lvl.P.RowSums(), lvl.Q.RowSums()
			for i := 0; i < lvl.States.Count(); i++ {
				if rowSum := pSums[i] + qSums[i]; math.Abs(rowSum-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The reduced space must be a strong lumping of the paper's full
// Kronecker product space.
func TestLumpCheckPaperCluster(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	for k := 1; k <= 3; k++ {
		if err := LumpCheck(n, k, 1e-9); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}

func TestLumpCheckRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomExpNetwork(r, 1+r.Intn(3))
		k := 1 + r.Intn(3)
		return LumpCheck(n, k, 1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestLumpCheckRejectsPhases(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	n.Stations[0].Service = phase.MustErlangMean(2, 1)
	if err := LumpCheck(n, 2, 1e-9); err == nil {
		t.Fatal("LumpCheck accepted a multi-phase station")
	}
}

func TestChainErrors(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	if _, err := NewChain(n, 0); err == nil {
		t.Fatal("NewChain accepted maxK=0")
	}
	n.Entry[0] = 2
	if _, err := NewChain(n, 1); err == nil {
		t.Fatal("NewChain accepted invalid network")
	}
}
