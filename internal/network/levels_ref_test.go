package network

import (
	"fmt"
	"testing"

	"finwl/internal/matrix"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// The structured CSR builder replaced the dense per-level matrices,
// so the historical dense build survives here as the reference
// implementation: the same emitLevel generator draining into dense
// accumulators, built serially with none of the workspace pooling.
// Holding the production chain to this reference (to 1e-12, in
// practice bitwise — the CSR sink merges duplicates in emission order
// exactly like dense +=) is the equivalence contract of the refactor.

// DenseRefLevel is one population level accumulated densely.
type DenseRefLevel struct {
	MDiag []float64
	P     *matrix.Matrix
	Q     *matrix.Matrix // D(k) × D(k−1)
	R     *matrix.Matrix // D(k−1) × D(k)
}

// DenseRefChain is the reference ladder for populations 1..maxK.
type DenseRefChain struct {
	Levels []*DenseRefLevel
}

type denseRefSink struct{ lvl *DenseRefLevel }

func (s denseRefSink) setM(i int, rate float64) { s.lvl.MDiag[i] = rate }
func (s denseRefSink) addP(i, j int, w float64) { s.lvl.P.Inc(i, j, w) }
func (s denseRefSink) addQ(i, j int, w float64) { s.lvl.Q.Inc(i, j, w) }
func (s denseRefSink) addR(i, j int, w float64) { s.lvl.R.Inc(i, j, w) }

// BuildDenseReference is the pre-refactor dense chain construction:
// same validation, same admission budget, same generator, dense
// storage, fully serial. Exported to the package's external tests so
// the faultcheck corpus can be held to it.
func BuildDenseReference(net *Network, maxK int) (*DenseRefChain, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	space := net.Space()
	if _, err := planChain(space, maxK, true); err != nil {
		return nil, err
	}
	states := make([]*statespace.Level, maxK+1)
	for k := range states {
		states[k] = space.Enumerate(k)
	}
	scratch := make([]int, space.Width())
	depart := make([]int, space.Width())
	c := &DenseRefChain{Levels: make([]*DenseRefLevel, maxK+1)}
	for k := 1; k <= maxK; k++ {
		prev, cur := states[k-1], states[k]
		d, dPrev := cur.Count(), prev.Count()
		lvl := &DenseRefLevel{
			MDiag: make([]float64, d),
			P:     matrix.New(d, d),
			Q:     matrix.New(d, dPrev),
			R:     matrix.New(dPrev, d),
		}
		emitLevel(net, space, prev, cur, denseRefSink{lvl}, scratch, depart)
		c.Levels[k] = lvl
	}
	return c, nil
}

// CompareChainToDenseReference asserts a structured chain matches the
// reference within tol on every level. Exported for the external
// corpus tests.
func CompareChainToDenseReference(t *testing.T, c *Chain, ref *DenseRefChain, tol float64) {
	t.Helper()
	if len(c.Levels) != len(ref.Levels) {
		t.Fatalf("level count %d, reference %d", len(c.Levels), len(ref.Levels))
	}
	for k := 1; k < len(c.Levels); k++ {
		lvl, rl := c.Levels[k], ref.Levels[k]
		if d := matrix.VecMaxAbsDiff(lvl.MDiag, rl.MDiag); d > tol {
			t.Fatalf("level %d: MDiag differs from dense reference by %g", k, d)
		}
		if d := lvl.P.Dense().MaxAbsDiff(rl.P); d > tol {
			t.Fatalf("level %d: P differs from dense reference by %g", k, d)
		}
		if d := lvl.Q.Dense().MaxAbsDiff(rl.Q); d > tol {
			t.Fatalf("level %d: Q differs from dense reference by %g", k, d)
		}
		if d := lvl.R.Dense().MaxAbsDiff(rl.R); d > tol {
			t.Fatalf("level %d: R differs from dense reference by %g", k, d)
		}
	}
}

// gridNet is the §5.4 cluster with service processes widened to h
// phases: h=1 keeps every station exponential, h=2 puts two-phase
// hyperexponentials on the queue stations, h=3 an Erlang-3 on one of
// them. Phase growth stays on the queue stations so the k=8 state
// spaces remain dense-reference-sized.
func gridNet(h int) *Network {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	switch h {
	case 2:
		n.Stations[2].Service = phase.MustHyperExpFit(1, 8)
		n.Stations[3].Service = phase.MustHyperExpFit(2, 10)
	case 3:
		n.Stations[2].Service = phase.MustErlangMean(3, 1.0/3.0)
		n.Stations[3].Service = phase.MustHyperExpFit(2, 10)
	}
	return n
}

// TestStructuredMatchesDenseReference holds the CSR-native builder to
// the dense reference across the population × phase-richness grid.
func TestStructuredMatchesDenseReference(t *testing.T) {
	const tol = 1e-12
	for _, k := range []int{2, 4, 8} {
		for _, h := range []int{1, 2, 3} {
			t.Run(fmt.Sprintf("K%d/H%d", k, h), func(t *testing.T) {
				net := gridNet(h)
				ref, err := BuildDenseReference(net, k)
				if err != nil {
					t.Fatal(err)
				}
				c, err := NewChain(net, k)
				if err != nil {
					t.Fatal(err)
				}
				CompareChainToDenseReference(t, c, ref, tol)
				// Entry vectors ride on R products; they must agree too.
				pi := []float64{1}
				for j := 1; j <= k; j++ {
					pi = ref.Levels[j].R.VecMul(pi)
				}
				if d := matrix.VecMaxAbsDiff(c.EntryVector(k), pi); d > tol {
					t.Fatalf("entry vector differs from dense reference by %g", d)
				}
			})
		}
	}
}

// The pooled workspaces must not leak state between levels or chains:
// building twice (warm pool) has to reproduce the cold-pool result.
func TestStructuredBuildPoolReuse(t *testing.T) {
	net := gridNet(3)
	first, err := NewChain(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewChain(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 4; k++ {
		a, b := first.Levels[k], second.Levels[k]
		if d := a.P.Dense().MaxAbsDiff(b.P.Dense()); d != 0 {
			t.Fatalf("level %d: warm-pool P differs by %g", k, d)
		}
		if d := a.R.Dense().MaxAbsDiff(b.R.Dense()); d != 0 {
			t.Fatalf("level %d: warm-pool R differs by %g", k, d)
		}
	}
}
