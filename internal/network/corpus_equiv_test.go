// Equivalence of the structured builder with the dense reference over
// the degenerate-input corpus. This lives in the external test package
// because faultcheck imports network: the production package cannot
// see the corpus, but its test binary can.
package network_test

import (
	"testing"

	"finwl/internal/faultcheck"
	"finwl/internal/network"
)

// TestStructuredMatchesReferenceOnCorpus runs every degenerate class
// through both the structured builder and the dense reference build:
// they must agree on rejection (same validation runs first in both)
// and, when a chain is produced at all, on every matrix to 1e-12.
// Typed-error behaviour of the full pipelines over the same corpus is
// asserted separately by the faultcheck package's own tests.
func TestStructuredMatchesReferenceOnCorpus(t *testing.T) {
	for _, c := range faultcheck.Classes() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			net, k, _ := c.Build()
			ref, refErr := network.BuildDenseReference(net, k)
			chain, err := network.NewChain(net, k)
			if (refErr == nil) != (err == nil) {
				t.Fatalf("reference err = %v, structured err = %v", refErr, err)
			}
			if err != nil {
				return
			}
			network.CompareChainToDenseReference(t, chain, ref, 1e-12)
		})
	}
}
