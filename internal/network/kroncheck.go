package network

import (
	"fmt"
	"math"

	"finwl/internal/statespace"
)

// LumpCheck cross-validates the reduced-product-space construction
// against the paper's full Kronecker-style product space (§5.4) for
// an all-exponential network: it builds the naive space in which each
// of the k distinguishable tasks occupies one station — stations^k
// states — and verifies strong lumpability onto the reduced space:
// for every full state, the aggregate transition rate into each
// reduced target must equal M_k·P_k (internal) and M_k·Q_k
// (departures) of the reduced construction.
//
// Queue stations use the processor-sharing rate split µ/n per task,
// which has the same lumped count process as FCFS for exponential
// service. It returns an error describing the first mismatch, or nil.
func LumpCheck(net *Network, k int, tol float64) error {
	for _, st := range net.Stations {
		if st.Service.Dim() != 1 {
			return fmt.Errorf("network: LumpCheck requires exponential stations, %q has %d phases", st.Name, st.Service.Dim())
		}
	}
	chain, err := NewChain(net, k)
	if err != nil {
		return err
	}
	lvl := chain.Levels[k]
	prev := chain.Levels[k-1].States
	space := chain.Space
	m := len(net.Stations)

	// Enumerate full states: task → station assignments.
	full := enumerateAssignments(m, k)
	reduced := func(f []int) []int {
		state := make([]int, space.Width())
		for _, s := range f {
			switch net.Stations[s].Kind {
			case statespace.Delay:
				space.SetDelayCount(state, s, 0, space.DelayCount(state, s, 0)+1)
			case statespace.Queue:
				space.SetQueue(state, s, space.QueueCount(state, s)+1, 0)
			}
		}
		return state
	}

	for _, f := range full {
		ri := lvl.States.MustIndex(reduced(f))
		counts := make([]int, m)
		for _, s := range f {
			counts[s]++
		}
		// Aggregate full-space rates by reduced target.
		intoLevel := make(map[int]float64) // reduced index at level k
		intoPrev := make(map[int]float64)  // reduced index at level k−1
		var total float64
		for t, s := range f {
			var rate float64
			switch net.Stations[s].Kind {
			case statespace.Delay:
				rate = net.Stations[s].Service.Rates[0]
			case statespace.Queue:
				rate = net.Stations[s].Service.Rates[0] / float64(counts[s])
			}
			total += rate
			for dst := 0; dst < m; dst++ {
				r := net.Route.At(s, dst)
				if r == 0 {
					continue
				}
				g := append([]int(nil), f...)
				g[t] = dst
				intoLevel[lvl.States.MustIndex(reduced(g))] += rate * r
			}
			if e := net.Exit[s]; e > 0 {
				g := append(append([]int(nil), f[:t]...), f[t+1:]...)
				intoPrev[prev.MustIndex(reduced(g))] += rate * e
			}
		}
		if math.Abs(total-lvl.MDiag[ri]) > tol {
			return fmt.Errorf("network: state %v total rate %v, reduced M=%v", f, total, lvl.MDiag[ri])
		}
		for j := 0; j < lvl.States.Count(); j++ {
			want := lvl.MDiag[ri] * lvl.P.At(ri, j)
			got := intoLevel[j]
			// Skip the diagonal self-rate bookkeeping differences:
			// self-transitions (task routes back to its own station)
			// appear in both constructions identically, so compare all.
			if math.Abs(got-want) > tol {
				return fmt.Errorf("network: state %v → level state %d rate %v, reduced %v", f, j, got, want)
			}
		}
		for j := 0; j < prev.Count(); j++ {
			want := lvl.MDiag[ri] * lvl.Q.At(ri, j)
			got := intoPrev[j]
			if math.Abs(got-want) > tol {
				return fmt.Errorf("network: state %v ⇣ prev state %d rate %v, reduced %v", f, j, got, want)
			}
		}
	}
	return nil
}

// enumerateAssignments lists all station assignments of k tasks over
// m stations (mᵏ tuples).
func enumerateAssignments(m, k int) [][]int {
	if k == 0 {
		return [][]int{{}}
	}
	var out [][]int
	cur := make([]int, k)
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for s := 0; s < m; s++ {
			cur[i] = s
			rec(i + 1)
		}
	}
	rec(0)
	return out
}
