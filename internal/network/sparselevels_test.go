package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// NewSparseChain and NewChain now share the structured CSR builder;
// both must match the dense reference build exactly.
func TestSparseChainMatchesDenseReference(t *testing.T) {
	n := gridNet(2)
	ref, err := BuildDenseReference(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseChain(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	CompareChainToDenseReference(t, sp, ref, 1e-14)
}

// Property: agreement with the dense reference on random networks.
func TestSparseChainMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomExpNetwork(r, 1+r.Intn(3))
		k := 1 + r.Intn(3)
		ref, err := BuildDenseReference(n, k)
		if err != nil {
			return false
		}
		sp, err := NewSparseChain(n, k)
		if err != nil {
			return false
		}
		for lvl := 1; lvl <= k; lvl++ {
			if sp.Levels[lvl].P.Dense().MaxAbsDiff(ref.Levels[lvl].P) > 1e-13 {
				return false
			}
			if sp.Levels[lvl].R.Dense().MaxAbsDiff(ref.Levels[lvl].R) > 1e-13 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseChainErrors(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	if _, err := NewSparseChain(n, 0); err == nil {
		t.Fatal("accepted maxK=0")
	}
	bad := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	bad.Entry[0] = 2
	if _, err := NewSparseChain(bad, 1); err == nil {
		t.Fatal("accepted invalid network")
	}
}

// Sparse chains support the NNZ accounting the solver's scaling
// argument rests on: nnz per row stays bounded as D grows.
func TestSparseChainNNZBounded(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	sp, err := NewSparseChain(n, 6)
	if err != nil {
		t.Fatal(err)
	}
	lvl := sp.Levels[6]
	d := lvl.States.Count()
	perRow := float64(lvl.P.NNZ()) / float64(d)
	if perRow > 30 {
		t.Fatalf("P has %.1f nnz per row — construction is not sparse", perRow)
	}
}
