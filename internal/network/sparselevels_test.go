package network

import (
	"math/rand"
	"testing"
	"testing/quick"

	"finwl/internal/matrix"
	"finwl/internal/phase"
)

// The sparse chain must contain exactly the dense chain's matrices —
// both are produced by the same emitter through different sinks.
func TestSparseChainMatchesDense(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	n.Stations[3].Service = phase.MustHyperExpFit(1, 8)
	dense, err := NewChain(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseChain(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		dl, sl := dense.Levels[k], sp.Levels[k]
		if matrix.VecMaxAbsDiff(dl.MDiag, sl.MDiag) > 1e-14 {
			t.Fatalf("level %d: MDiag differs", k)
		}
		if sl.P.Dense().MaxAbsDiff(dl.P) > 1e-14 {
			t.Fatalf("level %d: P differs", k)
		}
		if sl.Q.Dense().MaxAbsDiff(dl.Q) > 1e-14 {
			t.Fatalf("level %d: Q differs", k)
		}
		if sl.R.Dense().MaxAbsDiff(dl.R) > 1e-14 {
			t.Fatalf("level %d: R differs", k)
		}
	}
	// Entry vectors agree too.
	if matrix.VecMaxAbsDiff(dense.EntryVector(3), sp.EntryVector(3)) > 1e-14 {
		t.Fatal("entry vectors differ")
	}
}

// Property: agreement on random networks.
func TestSparseChainMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := randomExpNetwork(r, 1+r.Intn(3))
		k := 1 + r.Intn(3)
		dense, err := NewChain(n, k)
		if err != nil {
			return false
		}
		sp, err := NewSparseChain(n, k)
		if err != nil {
			return false
		}
		for lvl := 1; lvl <= k; lvl++ {
			if sp.Levels[lvl].P.Dense().MaxAbsDiff(dense.Levels[lvl].P) > 1e-13 {
				return false
			}
			if sp.Levels[lvl].R.Dense().MaxAbsDiff(dense.Levels[lvl].R) > 1e-13 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseChainErrors(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	if _, err := NewSparseChain(n, 0); err == nil {
		t.Fatal("accepted maxK=0")
	}
	bad := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	bad.Entry[0] = 2
	if _, err := NewSparseChain(bad, 1); err == nil {
		t.Fatal("accepted invalid network")
	}
}

// Sparse chains support the NNZ accounting the solver's scaling
// argument rests on: nnz per row stays bounded as D grows.
func TestSparseChainNNZBounded(t *testing.T) {
	n := paperCentralNet(0.1, 0.5, 0.5, 1, 2, 3, 4)
	sp, err := NewSparseChain(n, 6)
	if err != nil {
		t.Fatal(err)
	}
	lvl := sp.Levels[6]
	d := lvl.States.Count()
	perRow := float64(lvl.P.NNZ()) / float64(d)
	if perRow > 30 {
		t.Fatalf("P has %.1f nnz per row — construction is not sparse", perRow)
	}
}
