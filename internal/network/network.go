// Package network models a closed finite-workload queueing network at
// the station level and constructs the LAQT matrices the transient
// solver consumes: the single-customer <p, B> representation (§3.1)
// and, for each population level k, the completion-rate matrix M_k,
// the internal transition matrix P_k, the exit matrix Q_k, and the
// entrance matrix R_k (§5.4).
//
// Stations are either Delay stations (dedicated servers — every
// customer present is in service, the paper's load-dependent CPU and
// local-disk pools) or Queue stations (shared single-server FCFS —
// the communication channel and shared disks). Each station serves
// with a phase-type distribution; Erlang and hyperexponential servers
// are therefore just stations with more than one phase, exactly the
// constructions of §5.4.1–5.4.2.
package network

import (
	"fmt"

	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// Station is one service station. Servers is used only by
// multi-server (statespace.Multi) stations and gives the number of
// parallel exponential servers.
type Station struct {
	Name    string
	Kind    statespace.Kind
	Service *phase.PH
	Servers int
}

// Network is a set of stations plus station-level routing: on
// completing service at station i a task moves to station j with
// probability Route[i][j] or leaves the system with probability
// Exit[i] (rows of Route plus Exit sum to one). A task entering the
// system starts at station i with probability Entry[i].
type Network struct {
	Stations []Station
	Route    *matrix.Matrix
	Exit     []float64
	Entry    []float64
}

// Validate checks the structural invariants of the network: station
// shapes, per-station service laws (delegated to phase.Validate),
// stochastic routing+exit rows, and a probability entry vector — all
// with NaN/Inf screens, every failure matching check.ErrInvalidModel.
func (n *Network) Validate() error {
	if n == nil {
		return check.Invalid("network: nil network")
	}
	m := len(n.Stations)
	if m == 0 {
		return check.Invalid("network: no stations")
	}
	if n.Route == nil {
		return check.Invalid("network: nil routing matrix")
	}
	if n.Route.Rows() != m || n.Route.Cols() != m {
		return check.Invalid("network: routing matrix %dx%d for %d stations", n.Route.Rows(), n.Route.Cols(), m)
	}
	if len(n.Exit) != m || len(n.Entry) != m {
		return check.Invalid("network: exit/entry vectors sized %d/%d for %d stations", len(n.Exit), len(n.Entry), m)
	}
	for i, st := range n.Stations {
		if st.Service == nil {
			return check.Invalid("network: station %d (%s) has no service distribution", i, st.Name)
		}
		if err := st.Service.Validate(); err != nil {
			return fmt.Errorf("network: station %d (%s): %w", i, st.Name, err)
		}
		switch st.Kind {
		case statespace.Delay, statespace.Queue:
		case statespace.Multi:
			if st.Servers < 1 {
				return check.Invalid("network: multi-server station %d (%s) needs Servers >= 1", i, st.Name)
			}
			if st.Service.Dim() != 1 {
				return check.Invalid("network: multi-server station %d (%s) must have exponential service", i, st.Name)
			}
		default:
			return check.Invalid("network: station %d (%s) has unknown kind %v", i, st.Name, st.Kind)
		}
		// Routing row i plus the exit probability must be stochastic.
		row := make([]float64, 0, m+1)
		row = append(row, n.Route.RawRow(i)...)
		row = append(row, n.Exit[i])
		if err := check.StochasticRow(fmt.Sprintf("network: station %d routing+exit", i), row); err != nil {
			return err
		}
	}
	if err := check.ProbVec("network: entry probabilities", n.Entry); err != nil {
		return err
	}
	return nil
}

// Space returns the reduced-product state space layout for the
// network's stations.
func (n *Network) Space() *statespace.Space {
	shapes := make([]statespace.StationShape, len(n.Stations))
	for i, st := range n.Stations {
		shapes[i] = statespace.StationShape{Kind: st.Kind, Phases: st.Service.Dim(), Servers: st.Servers}
	}
	return statespace.NewSpace(shapes)
}

// position indexes the single-customer chain: (station, phase) pairs
// flattened station-major.
func (n *Network) positions() (offsets []int, total int) {
	offsets = make([]int, len(n.Stations))
	for i, st := range n.Stations {
		offsets[i] = total
		total += st.Service.Dim()
	}
	return offsets, total
}

// AsPH returns the single-task system representation <p, B> of §3.1:
// with one customer the whole network is itself a phase-type
// distribution over (station, phase) positions whose completion is
// the task leaving the system. Its mean is the no-contention task
// flow time, and p·V gives the per-position time components vector
// the paper uses to calibrate routing probabilities.
func (n *Network) AsPH() *phase.PH {
	offsets, total := n.positions()
	alpha := make([]float64, total)
	rates := make([]float64, total)
	trans := matrix.New(total, total)
	for i, st := range n.Stations {
		svc := st.Service
		m := svc.Dim()
		for ph := 0; ph < m; ph++ {
			pos := offsets[i] + ph
			alpha[pos] = n.Entry[i] * svc.Alpha[ph]
			rates[pos] = svc.Rates[ph]
			// Internal phase movement within the station.
			for ph2 := 0; ph2 < m; ph2++ {
				if v := svc.Trans.At(ph, ph2); v != 0 {
					trans.Inc(pos, offsets[i]+ph2, v)
				}
			}
			// Service completion: route to the entry phase of the next
			// station, or leave the system (no transition entry).
			done := svc.ExitProb(ph)
			if done == 0 {
				continue
			}
			for j, st2 := range n.Stations {
				r := n.Route.At(i, j)
				if r == 0 {
					continue
				}
				for ph2, a := range st2.Service.Alpha {
					if a != 0 {
						trans.Inc(pos, offsets[j]+ph2, done*r*a)
					}
				}
			}
		}
	}
	return &phase.PH{Name: "network", Alpha: alpha, Rates: rates, Trans: trans}
}

// TimeComponents returns p·V of the single-task chain aggregated by
// station: the expected total time a lone task spends at each station
// over its life in the system (the paper's pV vector, e.g.
// [CX, (1−C)X, BY, Y] for the central cluster). It fails with a typed
// error when the single-task chain is not absorbing (a task can get
// trapped, making B singular).
func (n *Network) TimeComponents() ([]float64, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	ph := n.AsPH()
	// p·V = SolveLeft of B with p, through the robust ladder so a
	// stiff but solvable chain still yields its components.
	pv, _, err := matrix.SolveLeftRobust(ph.B(), ph.Alpha)
	if err != nil {
		return nil, fmt.Errorf("network: time components (is the network absorbing?): %w", err)
	}
	offsets, _ := n.positions()
	out := make([]float64, len(n.Stations))
	for i, st := range n.Stations {
		for k := 0; k < st.Service.Dim(); k++ {
			out[i] += pv[offsets[i]+k]
		}
	}
	return out, nil
}

// VisitRatios solves the traffic equations v = Entry + v·Route and
// returns the expected number of visits a task makes to each station.
// It fails with a typed error when the routing chain is not absorbing
// (I−Route singular: some tasks never leave).
func (n *Network) VisitRatios() ([]float64, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	m := len(n.Stations)
	a := matrix.Identity(m).Sub(n.Route)
	v, _, err := matrix.SolveLeftRobust(a, n.Entry)
	if err != nil {
		return nil, fmt.Errorf("network: traffic equations (is the routing chain absorbing?): %w", err)
	}
	return v, nil
}
