package faultcheck

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"finwl/internal/serve"
)

// TestStreamCampaign pushes all degenerate job-stream classes through
// a real HTTP round trip and asserts the /stream contract: invalid
// streams are refused with mapped statuses and typed bodies, and
// over-cap streams come back 200 but honestly tagged single-job. The
// tight StreamMaxStates guarantees the over-cap classes actually trip
// the pricing guard.
func TestStreamCampaign(t *testing.T) {
	srv := serve.New(serve.Config{Seed: 1, StreamMaxStates: 200})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	outcomes, err := StreamCampaign(ts.URL, ts.Client())
	if err != nil {
		t.Fatalf("campaign transport failure: %v", err)
	}
	if len(outcomes) != len(StreamClasses()) {
		t.Fatalf("campaign covered %d classes, want %d", len(outcomes), len(StreamClasses()))
	}
	degraded := 0
	for _, o := range outcomes {
		if err := o.Check(); err != nil {
			t.Errorf("%v", err)
		}
		if o.Status == http.StatusOK {
			degraded++
		}
		t.Logf("%-24s -> %d %s%s", o.Class, o.Status, o.Code, o.Fidelity)
	}
	if degraded == 0 {
		t.Error("no class exercised the degradation rung; the single-job assertions are vacuous")
	}

	// Spot-check the mapping: every invalid class is a 400 and both
	// over-cap classes land on the single-job rung.
	for _, o := range outcomes {
		if o.Degrades {
			if o.Status != http.StatusOK {
				t.Errorf("class %s: status %d, want 200 single-job (body %s)", o.Class, o.Status, o.Body)
			}
			continue
		}
		if o.Status != http.StatusBadRequest || o.Code != "invalid_model" {
			t.Errorf("class %s: %d %q, want 400 invalid_model (body %s)", o.Class, o.Status, o.Code, o.Body)
		}
	}

	// Refusals and degradations must land in the observability
	// counters the nightly campaign watches.
	st := srv.Snapshot()
	if st.Requests != int64(len(outcomes)) {
		t.Errorf("requests counter = %d, want %d", st.Requests, len(outcomes))
	}
	if st.Invalid != int64(len(outcomes)-degraded) {
		t.Errorf("invalid counter = %d, want %d", st.Invalid, len(outcomes)-degraded)
	}
	if st.Degraded != int64(degraded) {
		t.Errorf("degraded counter = %d, want %d", st.Degraded, degraded)
	}
}
