package faultcheck

import (
	"errors"
	"math"
	"testing"

	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// Every catalogued degenerate class must go through the full pipeline
// without a panic escaping and without an untyped error.
func TestDegenerateClasses(t *testing.T) {
	for _, cls := range Classes() {
		cls := cls
		t.Run(cls.Name, func(t *testing.T) {
			t.Parallel()
			net, k, n := cls.Build()
			if err := Exercise(net, k, n); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// A healthy network must pass Exercise too (the harness must not
// reject success).
func TestHealthyNetworkPasses(t *testing.T) {
	if err := Exercise(twoStation(), 3, 6); err != nil {
		t.Fatal(err)
	}
}

func TestTypedRecognizesSentinels(t *testing.T) {
	for _, err := range []error{
		nil,
		check.Invalid("x"),
		check.ErrSingular,
		check.ErrNotConverged,
		check.ErrNumeric,
		check.ErrCanceled,
	} {
		if !Typed(err) {
			t.Fatalf("Typed(%v) = false", err)
		}
	}
	if Typed(errors.New("plain")) {
		t.Fatal("Typed accepted an untyped error")
	}
}

// Specific classes must fail with the *right* sentinel, not just any.
func TestClassErrorIdentities(t *testing.T) {
	net := twoStation()
	net.Route.Set(0, 1, math.NaN())
	if err := net.Validate(); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("NaN routing: %v, want ErrInvalidModel", err)
	}

	trapped := twoStation()
	trapped.Route.Set(0, 1, 1)
	trapped.Exit = []float64{0, 0}
	if _, err := trapped.VisitRatios(); !errors.Is(err, check.ErrSingular) {
		t.Fatalf("trapped VisitRatios: %v, want ErrSingular", err)
	}
}

func TestExerciseSolveDegenerate(t *testing.T) {
	cases := []struct {
		name string
		a    func() *matrix.Matrix
		b    []float64
	}{
		{"singular", func() *matrix.Matrix {
			a := matrix.New(2, 2)
			a.Set(0, 0, 1)
			a.Set(0, 1, 2)
			a.Set(1, 0, 2)
			a.Set(1, 1, 4)
			return a
		}, []float64{1, 1}},
		{"nan-entries", func() *matrix.Matrix {
			a := matrix.Identity(3)
			a.Set(1, 1, math.NaN())
			return a
		}, []float64{1, 1, 1}},
		{"inf-rhs", func() *matrix.Matrix { return matrix.Identity(2) }, []float64{math.Inf(1), 0}},
		{"zero-matrix", func() *matrix.Matrix { return matrix.New(3, 3) }, []float64{1, 2, 3}},
		{"well-posed", func() *matrix.Matrix {
			a := matrix.Identity(2)
			a.Set(0, 1, 0.25)
			return a
		}, []float64{1, 2}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if err := ExerciseSolve(tc.a(), tc.b); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// The harness must notice an actual violation: a stage that panics.
func TestCaptureFlagsPanics(t *testing.T) {
	v, _ := capture("boom", func() error { panic("kaboom") })
	if v == nil || v.Panic == nil {
		t.Fatal("capture missed a panic")
	}
	v, _ = capture("plain", func() error { return errors.New("untyped") })
	if v == nil || v.Err == nil {
		t.Fatal("capture accepted an untyped error")
	}
}

// Multi-server stations go through the same hardened pipeline.
func TestMultiServerDegenerate(t *testing.T) {
	route := matrix.New(1, 1)
	net := &network.Network{
		Stations: []network.Station{
			{Name: "pool", Kind: statespace.Multi, Service: phase.MustExpo(1), Servers: 0},
		},
		Route: route,
		Exit:  []float64{1},
		Entry: []float64{1},
	}
	if err := Exercise(net, 3, 5); err != nil {
		t.Fatal(err)
	}
	if err := net.Validate(); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("Servers=0 multi station: %v, want ErrInvalidModel", err)
	}
}
