// Package faultcheck is the fault-injection harness of the solver
// pipeline: a catalogue of degenerate-input classes (NaN routing,
// infinite rates, absorbing subchains, oversized populations, …) and
// an Exercise driver that pushes a network through every public
// pipeline — validation, traffic equations, product form, dense and
// sparse transient solves, and the discrete-event simulator — under
// two invariants:
//
//  1. no panic escapes an exported entry point, and
//  2. every failure matches one of the typed sentinels in
//     internal/check under errors.Is.
//
// The package tests iterate the catalogue, and the fuzz targets
// generate adversarial networks, phase-type fits and linear systems
// beyond it. The harness lives in a non-test package so future tools
// (e.g. a soak binary) can reuse it.
package faultcheck

import (
	"context"
	"errors"
	"fmt"
	"math"

	"finwl/internal/check"
	"finwl/internal/core"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/productform"
	"finwl/internal/sim"
	"finwl/internal/sparse"
	"finwl/internal/statespace"
)

// Typed reports whether err matches the typed-error contract: nil, or
// one of the check sentinels under errors.Is.
func Typed(err error) bool {
	if err == nil {
		return true
	}
	for _, sentinel := range []error{
		check.ErrInvalidModel, check.ErrSingular, check.ErrNotConverged,
		check.ErrNumeric, check.ErrCanceled, check.ErrOverloaded, check.ErrDegraded,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// Violation is a broken robustness contract: a panic that escaped an
// exported entry point, or an untyped failure.
type Violation struct {
	Stage string
	Panic any   // non-nil when a panic escaped
	Err   error // non-nil for an untyped error
}

func (v *Violation) Error() string {
	if v.Panic != nil {
		return fmt.Sprintf("faultcheck: stage %s: panic escaped: %v", v.Stage, v.Panic)
	}
	return fmt.Sprintf("faultcheck: stage %s: untyped error: %v", v.Stage, v.Err)
}

func (v *Violation) Unwrap() error { return v.Err }

// capture runs fn with panic containment.
func capture(stage string, fn func() error) (violation *Violation, failed bool) {
	var err error
	panicked := func() (p any) {
		defer func() { p = recover() }()
		err = fn()
		return nil
	}()
	if panicked != nil {
		return &Violation{Stage: stage, Panic: panicked}, true
	}
	if err == nil {
		return nil, false
	}
	if !Typed(err) {
		return &Violation{Stage: stage, Err: err}, true
	}
	return nil, true
}

// maxSimEvents bounds one harness simulation run so structurally valid
// but non-absorbing networks fail typed instead of spinning.
const maxSimEvents = 200_000

// Exercise drives net through every public pipeline with population k
// and workload n, and returns a *Violation if any stage breaks the
// contract. A nil return means every stage either succeeded or failed
// with a typed error — both are contract-conforming outcomes.
func Exercise(net *network.Network, k, n int) error {
	ctx := context.Background()

	// Validation is the gate every solve entry point runs first: if it
	// rejects the model (typed), the pipeline below is unreachable in
	// real usage, but we still require the rejection itself to be clean.
	if v, failed := capture("validate", func() error { return net.Validate() }); v != nil {
		return v
	} else if failed {
		return nil
	}

	stages := []struct {
		name string
		fn   func() error
	}{
		{"visit-ratios", func() error { _, err := net.VisitRatios(); return err }},
		{"time-components", func() error { _, err := net.TimeComponents(); return err }},
		{"product-form", func() error { _, err := productform.FromNetwork(net); return err }},
		{"dense-solve", func() error { return densePipeline(ctx, net, k, n) }},
		{"sparse-solve", func() error { return sparsePipeline(ctx, net, k, n) }},
		{"simulate", func() error {
			_, err := sim.RunCtx(ctx, sim.Config{Net: net, K: k, N: n, Seed: 1, MaxEvents: maxSimEvents})
			return err
		}},
	}
	for _, st := range stages {
		if v, _ := capture(st.name, st.fn); v != nil {
			return v
		}
	}
	return nil
}

func densePipeline(ctx context.Context, net *network.Network, k, n int) error {
	s, err := core.NewSolverCtx(ctx, net, k)
	if err != nil {
		return err
	}
	if _, err := s.SolveCtx(ctx, n); err != nil {
		return err
	}
	if _, err := s.SolveSweepCtx(ctx, []int{1, n}); err != nil {
		return err
	}
	_, _, err = s.SteadyStateCtx(ctx)
	return err
}

func sparsePipeline(ctx context.Context, net *network.Network, k, n int) error {
	s, err := core.NewSparseSolverCtx(ctx, net, k)
	if err != nil {
		return err
	}
	_, err = s.SolveCtx(ctx, n)
	return err
}

// Class is one degenerate-input class of the catalogue.
type Class struct {
	Name  string
	Build func() (*network.Network, int, int) // network, K, N
}

// twoStation builds a small healthy two-station network the classes
// then break in targeted ways.
func twoStation() *network.Network {
	route := matrix.New(2, 2)
	route.Set(0, 1, 0.5)
	route.Set(1, 0, 1)
	return &network.Network{
		Stations: []network.Station{
			{Name: "cpu", Kind: statespace.Delay, Service: phase.MustExpo(2)},
			{Name: "io", Kind: statespace.Queue, Service: phase.MustExpo(3)},
		},
		Route: route,
		Exit:  []float64{0.5, 0},
		Entry: []float64{1, 0},
	}
}

// Classes returns the degenerate-input catalogue. Every class must
// survive Exercise without a contract violation.
func Classes() []Class {
	return []Class{
		{"nan-routing", func() (*network.Network, int, int) {
			net := twoStation()
			net.Route.Set(0, 1, math.NaN())
			return net, 3, 5
		}},
		{"inf-service-rate", func() (*network.Network, int, int) {
			net := twoStation()
			net.Stations[0].Service.Rates[0] = math.Inf(1)
			return net, 3, 5
		}},
		{"zero-service-rate", func() (*network.Network, int, int) {
			net := twoStation()
			net.Stations[1].Service.Rates[0] = 0
			return net, 3, 5
		}},
		{"negative-entry", func() (*network.Network, int, int) {
			net := twoStation()
			net.Entry = []float64{-0.5, 1.5}
			return net, 3, 5
		}},
		{"super-stochastic-row", func() (*network.Network, int, int) {
			net := twoStation()
			net.Route.Set(0, 1, 0.9) // row 0: 0.9 + exit 0.5 = 1.4
			return net, 3, 5
		}},
		{"no-stations", func() (*network.Network, int, int) {
			return &network.Network{}, 3, 5
		}},
		{"nil-routing-matrix", func() (*network.Network, int, int) {
			net := twoStation()
			net.Route = nil
			return net, 3, 5
		}},
		{"dimension-mismatch", func() (*network.Network, int, int) {
			net := twoStation()
			net.Exit = []float64{0.5} // one entry for two stations
			return net, 3, 5
		}},
		{"trapped-tasks", func() (*network.Network, int, int) {
			// Structurally valid closed loop: tasks never exit, so the
			// departure operator is singular and the simulator can never
			// finish. Both must fail typed.
			net := twoStation()
			net.Route.Set(0, 1, 1)
			net.Exit = []float64{0, 0}
			return net, 3, 5
		}},
		{"absorbing-phase", func() (*network.Network, int, int) {
			// A hand-built PH whose second phase loops onto itself with
			// probability one: service can never complete from it.
			net := twoStation()
			trans := matrix.New(2, 2)
			trans.Set(0, 1, 0.5)
			trans.Set(1, 1, 1)
			net.Stations[0].Service = &phase.PH{
				Name:  "trap",
				Alpha: []float64{1, 0},
				Rates: []float64{1, 1},
				Trans: trans,
			}
			return net, 3, 5
		}},
		{"nan-phase-entry", func() (*network.Network, int, int) {
			net := twoStation()
			net.Stations[0].Service.Alpha[0] = math.NaN()
			return net, 3, 5
		}},
		{"oversized-population", func() (*network.Network, int, int) {
			return twoStation(), network.MaxPopulation + 1, 5
		}},
		{"zero-population", func() (*network.Network, int, int) {
			return twoStation(), 0, 5
		}},
		{"zero-workload", func() (*network.Network, int, int) {
			return twoStation(), 3, 0
		}},
		{"unknown-station-kind", func() (*network.Network, int, int) {
			net := twoStation()
			net.Stations[1].Kind = statespace.Kind(99)
			return net, 3, 5
		}},
	}
}

// ExerciseSolve drives the dense and sparse robust linear solvers on
// an arbitrary matrix and right-hand side under the same contract:
// typed failure or a finite solution, never a panic.
func ExerciseSolve(a *matrix.Matrix, b []float64) error {
	if v, failed := capture("dense-robust-solve", func() error {
		x, _, err := matrix.SolveRobust(a, b)
		if err != nil {
			return err
		}
		return check.FiniteVec("solution", x)
	}); v != nil {
		return v
	} else if failed {
		return nil
	}

	// The same system through the sparse path: I−P with P = I−A is the
	// form the level solves use.
	n := a.Rows()
	p := matrix.Identity(n).Sub(a)
	builder := sparse.NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := p.At(i, j); v != 0 {
				builder.Add(i, j, v)
			}
		}
	}
	csr := builder.Build()
	if v, _ := capture("sparse-robust-solve", func() error {
		x, err := sparse.SolveIMinusP(csr, b, false, sparse.Options{})
		if err != nil {
			return err
		}
		return check.FiniteVec("solution", x)
	}); v != nil {
		return v
	}
	return nil
}
