package faultcheck

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"finwl/internal/batch"
	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/serve"
	"finwl/internal/statespace"
	"finwl/internal/stream"
)

// byteReader turns a fuzz payload into a stream of adversarial values.
// Exhausted input yields zeros, so every payload decodes to something.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() byte {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return b
}

// f64 maps one byte onto a value bucket chosen to stress the guards:
// zeros, NaN, both infinities, negatives, extreme magnitudes, and a
// dense band of small ordinary values.
func (r *byteReader) f64() float64 {
	b := r.next()
	switch b % 16 {
	case 0:
		return 0
	case 1:
		return math.NaN()
	case 2:
		return math.Inf(1)
	case 3:
		return math.Inf(-1)
	case 4:
		return -1.5
	case 5:
		return 1e-300
	case 6:
		return 1e300
	default:
		return float64(b%100) / 25 // [0, 4)
	}
}

// prob maps one byte onto [0, 0.5] with occasional adversarial values,
// so generated routing rows are often (not always) valid.
func (r *byteReader) prob() float64 {
	b := r.next()
	switch b % 13 {
	case 11:
		return math.NaN()
	case 12:
		return 2
	default:
		return float64(b%6) / 10
	}
}

// decodeNetwork builds a small network from fuzz bytes. The decoder
// is intentionally permissive: most payloads produce structurally
// broken networks, some produce valid ones — both must survive
// Exercise.
func decodeNetwork(data []byte) (*network.Network, int, int) {
	r := &byteReader{data: data}
	m := 1 + int(r.next()%3)
	stations := make([]network.Station, m)
	for i := range stations {
		var kind statespace.Kind
		switch r.next() % 3 {
		case 0:
			kind = statespace.Delay
		case 1:
			kind = statespace.Queue
		default:
			kind = statespace.Multi
		}
		dim := 1 + int(r.next()%2)
		alpha := make([]float64, dim)
		rates := make([]float64, dim)
		trans := matrix.New(dim, dim)
		if dim == 1 {
			alpha[0] = 1
		} else {
			a := r.prob()
			alpha[0], alpha[1] = a, 1-a
			trans.Set(0, 1, r.prob())
		}
		for j := range rates {
			rates[j] = 0.5 + r.f64()
		}
		stations[i] = network.Station{
			Name:    "s",
			Kind:    kind,
			Service: &phase.PH{Name: "fz", Alpha: alpha, Rates: rates, Trans: trans},
			Servers: int(r.next() % 4),
		}
	}
	route := matrix.New(m, m)
	exit := make([]float64, m)
	for i := 0; i < m; i++ {
		var sum float64
		for j := 0; j < m; j++ {
			p := r.prob() / float64(m)
			route.Set(i, j, p)
			sum += p
		}
		if r.next()%4 == 0 {
			exit[i] = r.f64() // often breaks the stochastic-row invariant
		} else {
			exit[i] = 1 - sum // often repairs it
		}
	}
	entry := make([]float64, m)
	if r.next()%4 == 0 {
		for i := range entry {
			entry[i] = r.prob()
		}
	} else {
		entry[0] = 1
	}
	k := 1 + int(r.next()%4)
	n := 1 + int(r.next()%6)
	return &network.Network{Stations: stations, Route: route, Exit: exit, Entry: entry}, k, n
}

// FuzzNetworkPipeline drives decoded networks through every public
// pipeline. Any escaped panic or untyped error fails the target.
func FuzzNetworkPipeline(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 40, 1, 1, 40, 40, 1, 10, 20, 1, 30, 10, 2, 1, 2, 3})
	f.Add([]byte{1, 1, 1, 80, 0, 0, 0, 1, 2})
	f.Add([]byte{3, 2, 2, 33, 3, 0, 1, 77, 2, 1, 2, 99, 1, 17, 4, 8, 15, 16, 23, 42})
	f.Fuzz(func(t *testing.T, data []byte) {
		net, k, n := decodeNetwork(data)
		if err := Exercise(net, k, n); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzPHFit drives every phase-type constructor with arbitrary
// parameters: either the fit succeeds and validates with finite
// moments, or it fails typed.
func FuzzPHFit(f *testing.F) {
	f.Add(1.0, 2.0, 0.1, uint8(2))
	f.Add(0.0, -1.0, 0.0, uint8(0))
	f.Add(math.NaN(), math.Inf(1), -3.0, uint8(200))
	f.Add(12.0, 10.0, 0.5, uint8(3))
	f.Add(1e-300, 1e300, 1e300, uint8(255))
	f.Fuzz(func(t *testing.T, mean, cv2, f0 float64, stagesB uint8) {
		stages := int(stagesB%12) + 1
		fits := []struct {
			name string
			fn   func() (*phase.PH, error)
		}{
			{"ExpoMean", func() (*phase.PH, error) { return phase.ExpoMean(mean) }},
			{"ErlangMean", func() (*phase.PH, error) { return phase.ErlangMean(stages, mean) }},
			{"HyperExpFit", func() (*phase.PH, error) { return phase.HyperExpFit(mean, cv2) }},
			{"HyperExpFitPDF0", func() (*phase.PH, error) { return phase.HyperExpFitPDF0(mean, cv2, f0) }},
			{"Coxian2", func() (*phase.PH, error) { return phase.Coxian2(mean, cv2) }},
			{"FitCV2", func() (*phase.PH, error) { return phase.FitCV2(mean, cv2) }},
			{"TPT", func() (*phase.PH, error) { return phase.TPT(stages, cv2, mean) }},
		}
		for _, fit := range fits {
			d, err := fit.fn()
			if err != nil {
				if !Typed(err) {
					t.Fatalf("%s(%v, %v): untyped error %v", fit.name, mean, cv2, err)
				}
				continue
			}
			if err := d.Validate(); err != nil {
				t.Fatalf("%s(%v, %v): fit passed but Validate failed: %v", fit.name, mean, cv2, err)
			}
			if err := check.Finite(fit.name+" mean", d.Mean()); err != nil {
				t.Fatalf("%s(%v, %v): non-finite mean: %v", fit.name, mean, cv2, err)
			}
		}
	})
}

// FuzzRobustSolve drives the dense and sparse robust linear solvers on
// arbitrary small systems.
func FuzzRobustSolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 10, 20, 30, 40, 50, 60})
	f.Add([]byte{4, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0})
	f.Add([]byte{3, 0, 0, 0, 0, 0, 0, 0, 0, 0, 7, 7, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		n := 1 + int(r.next()%5)
		a := matrix.New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, r.f64())
			}
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.f64()
		}
		if err := ExerciseSolve(a, b); err != nil {
			t.Fatal(err)
		}
	})
}

// FuzzStreamSpec drives the /stream request-parsing path with
// arbitrary JSON payloads: any body that decodes must either build a
// validated stream config and price it, or fail typed — never panic.
// NaN/∞ values travel through the Num wire type on purpose.
func FuzzStreamSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"k":2,"job_tasks":2,"jobs":2,"arrival":{"process":"poisson","mean":1},"probes":[0.5,2]}`))
	f.Add([]byte(`{"k":2,"job_tasks":3,"customers":2,"think":{"process":"bursty","mean":"NaN"}}`))
	f.Add([]byte(`{"k":0,"job_tasks":-1,"jobs":2,"arrival":{"process":"fit","mean":"+Inf","cv2":-3}}`))
	f.Add([]byte(`{"k":4,"job_tasks":8,"jobs":40,"arrival":{"process":"bursty","mean":1e-300},"probes":["Infinity"]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var req serve.StreamRequest
		if dec.Decode(&req) != nil {
			return // malformed JSON never reaches BuildConfig
		}
		if v, _ := capture("stream-build", func() error {
			cfg, err := req.BuildConfig(1 << 12)
			if err != nil {
				return err
			}
			_, _, err = stream.Price(cfg)
			return err
		}); v != nil {
			t.Fatal(v)
		}
	})
}

// FuzzJournalReplay drives the durability journal's replay path with
// arbitrary file contents: any input must either replay cleanly (with a
// possible torn-tail truncation) or fail typed ErrJournalCorrupt —
// never panic — and a clean open must be idempotent: closing and
// re-opening the repaired file yields identical entries.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"op\":\"submit\",\"id\":\"a\",\"jobs_total\":1}\n"))
	f.Add([]byte("{\"op\":\"submit\",\"id\":\"a\"}\n{\"op\":\"done\",\"id\":\"a\"}\n{\"op\":\"gr"))
	f.Add([]byte("{\"op\":broken}\n{\"op\":\"done\",\"id\":\"a\"}\n"))
	f.Add([]byte("\x00\x01\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "jobs.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j1, entries1, err := batch.OpenJournal(batch.JournalConfig{Path: path, Fsync: batch.FsyncNever})
		if err != nil {
			if !errors.Is(err, check.ErrJournalCorrupt) {
				t.Fatalf("open: untyped error %v", err)
			}
			return
		}
		if err := j1.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		j2, entries2, err := batch.OpenJournal(batch.JournalConfig{Path: path, Fsync: batch.FsyncNever})
		if err != nil {
			t.Fatalf("reopen after torn-tail repair: %v", err)
		}
		defer j2.Close()
		b1, err1 := json.Marshal(entries1)
		b2, err2 := json.Marshal(entries2)
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal entries: %v / %v", err1, err2)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("replay not idempotent:\nfirst  (%d) %s\nsecond (%d) %s",
				len(entries1), b1, len(entries2), b2)
		}
	})
}
