package faultcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"

	"finwl/internal/serve"
)

// StreamClass is one degenerate job-stream request. The catalogue
// mirrors Classes() for the /stream surface: malformed modes, broken
// renewal laws, adversarial probes, and an over-cap chain that must
// come back typed — refused or explicitly degraded, never a silent
// exact answer and never a 500.
type StreamClass struct {
	Name string
	// Degrades marks the classes that are structurally valid but too
	// large for the exact tier: the contract for those is a 200 tagged
	// single-job with a degraded_from reason, not a refusal.
	Degrades bool
	Request  *serve.StreamRequest
}

// law builds a LawSpec literal inline.
func law(process string, mean float64) *serve.LawSpec {
	return &serve.LawSpec{Process: process, Mean: serve.Num(mean)}
}

// StreamClasses returns the degenerate job-stream catalogue. Requests
// reuse the /solve cluster form (arch defaults to central) so the
// campaign exercises the shared network build before the stream
// guards.
func StreamClasses() []StreamClass {
	return []StreamClass{
		{Name: "zero-job-tasks", Request: &serve.StreamRequest{
			K: 2, JobTasks: 0, Jobs: 2, Arrival: law("poisson", 1),
		}},
		{Name: "no-mode", Request: &serve.StreamRequest{
			K: 2, JobTasks: 2,
		}},
		{Name: "both-modes", Request: &serve.StreamRequest{
			K: 2, JobTasks: 2, Jobs: 2, Arrival: law("poisson", 1),
			Customers: 2, Think: law("poisson", 1),
		}},
		{Name: "jobs-without-arrival", Request: &serve.StreamRequest{
			K: 2, JobTasks: 2, Jobs: 2,
		}},
		{Name: "customers-without-think", Request: &serve.StreamRequest{
			K: 2, JobTasks: 2, Customers: 2,
		}},
		{Name: "nan-arrival-mean", Request: &serve.StreamRequest{
			K: 2, JobTasks: 2, Jobs: 2, Arrival: law("poisson", math.NaN()),
		}},
		{Name: "negative-think-mean", Request: &serve.StreamRequest{
			K: 2, JobTasks: 2, Customers: 2, Think: law("deterministic", -1),
		}},
		{Name: "unknown-law-process", Request: &serve.StreamRequest{
			K: 2, JobTasks: 2, Jobs: 2, Arrival: law("brownian", 1),
		}},
		{Name: "zero-servers", Request: &serve.StreamRequest{
			K: 0, JobTasks: 2, Jobs: 2, Arrival: law("poisson", 1),
		}},
		{Name: "negative-probe", Request: &serve.StreamRequest{
			K: 2, JobTasks: 2, Jobs: 2, Arrival: law("poisson", 1),
			Probes: []serve.Num{-1},
		}},
		{Name: "inf-probe", Request: &serve.StreamRequest{
			K: 2, JobTasks: 2, Jobs: 2, Arrival: law("poisson", 1),
			Probes: []serve.Num{serve.Num(math.Inf(1))},
		}},
		{Name: "over-cap-open", Degrades: true, Request: &serve.StreamRequest{
			K: 3, JobTasks: 6, Jobs: 24, Arrival: law("bursty", 2),
			Probes: []serve.Num{1, 10},
		}},
		{Name: "over-cap-closed", Degrades: true, Request: &serve.StreamRequest{
			K: 3, JobTasks: 6, Customers: 24, Think: law("bursty", 2),
			Probes: []serve.Num{1, 10},
		}},
	}
}

// StreamOutcome records how the /stream surface disposed of one
// degenerate job-stream class.
type StreamOutcome struct {
	Class    string
	Degrades bool
	Status   int
	Code     string // machine-readable code from the error body
	Fidelity string // fidelity tag when the surface answered 200
	Body     string // raw response body, for diagnostics
}

// Check enforces the stream robustness contract on one outcome. A
// refusal must carry a mapped status and a typed code, exactly as on
// /solve. A 200 is allowed only for the over-cap classes, and only
// when it is honestly tagged single-job — a degenerate stream must
// never pass as an exact answer.
func (o StreamOutcome) Check() error {
	if o.Status == http.StatusOK {
		if !o.Degrades {
			return &Violation{
				Stage: "stream:" + o.Class,
				Err:   fmt.Errorf("degenerate stream answered 200 (body %s)", o.Body),
			}
		}
		if o.Fidelity != string(serve.FidelitySingleJob) {
			return &Violation{
				Stage: "stream:" + o.Class,
				Err:   fmt.Errorf("over-cap stream answered fidelity %q, want %q (body %s)", o.Fidelity, serve.FidelitySingleJob, o.Body),
			}
		}
		return nil
	}
	if !serveStatuses[o.Status] {
		return &Violation{
			Stage: "stream:" + o.Class,
			Err:   fmt.Errorf("HTTP status %d outside the degenerate-input contract (body %s)", o.Status, o.Body),
		}
	}
	if !serveCodes[o.Code] {
		return &Violation{
			Stage: "stream:" + o.Class,
			Err:   fmt.Errorf("error code %q is not a typed serve code (body %s)", o.Code, o.Body),
		}
	}
	return nil
}

// StreamCampaign pushes every degenerate job-stream class through a
// live HTTP surface (POST baseURL/stream) and returns one outcome per
// class. It is the /stream twin of ServeCampaign; callers run Check on
// each outcome. The over-cap classes assume the target server's
// StreamMaxStates is below their augmented-chain size — the campaign
// tests configure the cap explicitly.
func StreamCampaign(baseURL string, client *http.Client) ([]StreamOutcome, error) {
	if client == nil {
		client = http.DefaultClient
	}
	classes := StreamClasses()
	outcomes := make([]StreamOutcome, 0, len(classes))
	for _, c := range classes {
		body, err := json.Marshal(c.Request)
		if err != nil {
			return nil, fmt.Errorf("faultcheck: stream class %s: marshal request: %w", c.Name, err)
		}
		resp, err := client.Post(baseURL+"/stream", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("faultcheck: stream class %s: POST /stream: %w", c.Name, err)
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("faultcheck: stream class %s: read response: %w", c.Name, err)
		}
		var eb serve.ErrorBody
		_ = json.Unmarshal(raw, &eb) // non-error bodies leave Code empty
		var sr serve.StreamResponse
		_ = json.Unmarshal(raw, &sr) // error bodies leave Fidelity empty
		outcomes = append(outcomes, StreamOutcome{
			Class:    c.Name,
			Degrades: c.Degrades,
			Status:   resp.StatusCode,
			Code:     eb.Code,
			Fidelity: string(sr.Fidelity),
			Body:     string(bytes.TrimSpace(raw)),
		})
	}
	return outcomes, nil
}
