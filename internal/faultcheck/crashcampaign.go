package faultcheck

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"finwl/internal/serve"
)

// CrashReport is the outcome of a JobsCrashCampaign: the mixed-batch
// disposition polled to done before the crash, the same job's record as
// the recovered server serves it, and whether a replayed
// Idempotency-Key still maps to the pre-crash job.
type CrashReport struct {
	JobID      string
	IdemStable bool
	Before     *BatchReport
	After      *BatchReport
}

// Check folds the whole crash contract: the recovered record must pass
// the per-class and control checks on its own AND agree with the
// pre-crash run — same typed code per degenerate class, bit-identical
// totals per healthy control, same job for the replayed key.
func (r *CrashReport) Check() error {
	if !r.IdemStable {
		return &Violation{Stage: "crash:idempotency",
			Err: fmt.Errorf("replayed Idempotency-Key minted a new job after recovery")}
	}
	if len(r.After.Outcomes) != len(r.Before.Outcomes) {
		return &Violation{Stage: "crash:shape",
			Err: fmt.Errorf("recovered %d class outcomes, pre-crash had %d", len(r.After.Outcomes), len(r.Before.Outcomes))}
	}
	for i := range r.After.Outcomes {
		b, a := r.Before.Outcomes[i], r.After.Outcomes[i]
		if err := a.Check(); err != nil {
			return err
		}
		if a.Code != b.Code {
			return &Violation{Stage: "crash:" + a.Class,
				Err: fmt.Errorf("recovery changed the typed code: %q before, %q after", b.Code, a.Code)}
		}
	}
	if err := r.After.CheckValid(); err != nil {
		return err
	}
	for i := range r.After.Valid {
		b, a := r.Before.Valid[i], r.After.Valid[i]
		if b.Response == nil || a.Response == nil {
			return &Violation{Stage: "crash:valid",
				Err: fmt.Errorf("control job %d lost its response across the crash", i)}
		}
		if a.Response.TotalTime != b.Response.TotalTime {
			return &Violation{Stage: "crash:valid",
				Err: fmt.Errorf("control job %d: recovered total %v != pre-crash %v", i, a.Response.TotalTime, b.Response.TotalTime)}
		}
	}
	return nil
}

// JobsCrashCampaign runs the durability robustness campaign in dir:
// boot a journal-backed server (fsync always), push the full
// degenerate-class catalogue through POST /jobs under an
// Idempotency-Key, poll it to done, then kill the server the hard way —
// listener torn down, no Drain, the journal is all recovery gets — and
// boot a second server over the same directory. The recovered server
// must serve the job's results from its ID, agree with the pre-crash
// run, and map the replayed key back to the same job.
func JobsCrashCampaign(ctx context.Context, dir string) (*CrashReport, error) {
	cfg := serve.Config{Seed: 13, JournalDir: dir, Fsync: "always"}
	s1, err := serve.NewRecovered(cfg)
	if err != nil {
		return nil, fmt.Errorf("faultcheck: boot pre-crash server: %w", err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	reqs, classIdx, validIdx := campaignBatch()
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("faultcheck: marshal batch: %w", err)
	}
	const idemKey = "crash-campaign"
	id, poll, err := submitJobOnce(ctx, ts1.URL, body, idemKey)
	if err != nil {
		return nil, err
	}
	pre, err := pollJobDone(ctx, ts1.URL, poll)
	if err != nil {
		return nil, err
	}
	if len(pre.Results) != len(reqs) {
		return nil, fmt.Errorf("faultcheck: pre-crash job has %d results for %d jobs", len(pre.Results), len(reqs))
	}
	before := batchReport(pre.Results, classIdx, validIdx)

	// SIGKILL stand-in: tear the listener down mid-conversation and
	// never Drain — no flush, no clean close, the fsynced journal is the
	// only state recovery gets.
	ts1.CloseClientConnections()
	ts1.Close()

	s2, err := serve.NewRecovered(cfg)
	if err != nil {
		return nil, fmt.Errorf("faultcheck: recover post-crash server: %w", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer func() {
		ts2.Close()
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s2.Drain(sctx)
		_ = s1.Drain(sctx) // post-campaign tidy-up; the crash already happened
	}()

	post, err := pollJobDone(ctx, ts2.URL, "/jobs/"+id)
	if err != nil {
		return nil, err
	}
	if len(post.Results) != len(reqs) {
		return nil, fmt.Errorf("faultcheck: recovered job has %d results for %d jobs", len(post.Results), len(reqs))
	}
	again, _, err := submitJobOnce(ctx, ts2.URL, body, idemKey)
	if err != nil {
		return nil, err
	}
	return &CrashReport{
		JobID:      id,
		IdemStable: again == id,
		Before:     before,
		After:      batchReport(post.Results, classIdx, validIdx),
	}, nil
}

// submitJobOnce POSTs one async batch and returns the accepted job ID
// and poll path.
func submitJobOnce(ctx context.Context, baseURL string, body []byte, idemKey string) (id, poll string, err error) {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/jobs", bytes.NewReader(body))
	if err != nil {
		return "", "", err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if idemKey != "" {
		httpReq.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return "", "", fmt.Errorf("faultcheck: POST /jobs: %w", err)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if err != nil {
		return "", "", fmt.Errorf("faultcheck: read submit response: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", "", fmt.Errorf("faultcheck: POST /jobs: HTTP %d (body %s)", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var acc struct {
		ID   string `json:"id"`
		Poll string `json:"poll"`
	}
	if err := json.Unmarshal(raw, &acc); err != nil || acc.ID == "" {
		return "", "", fmt.Errorf("faultcheck: bad submit body %s: %v", bytes.TrimSpace(raw), err)
	}
	return acc.ID, acc.Poll, nil
}

// jobRecord is the slice of the GET /jobs/{id} body the campaigns read.
type jobRecord struct {
	State   string            `json:"state"`
	Results []serve.BatchItem `json:"results"`
	Error   string            `json:"error"`
	Code    string            `json:"code"`
}

// pollJobDone polls GET {baseURL}{poll} until the job reports done.
func pollJobDone(ctx context.Context, baseURL, poll string) (*jobRecord, error) {
	for {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+poll, nil)
		if err != nil {
			return nil, err
		}
		resp, err := http.DefaultClient.Do(httpReq)
		if err != nil {
			return nil, fmt.Errorf("faultcheck: poll %s: %w", poll, err)
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("faultcheck: read poll response: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("faultcheck: poll %s: HTTP %d (body %s)", poll, resp.StatusCode, bytes.TrimSpace(raw))
		}
		var job jobRecord
		if err := json.Unmarshal(raw, &job); err != nil {
			return nil, fmt.Errorf("faultcheck: decode poll response: %w", err)
		}
		if job.Error != "" {
			return nil, fmt.Errorf("faultcheck: job failed as a whole: %s (%s)", job.Error, job.Code)
		}
		if job.State == "done" {
			return &job, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("faultcheck: job still %q: %w", job.State, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}
