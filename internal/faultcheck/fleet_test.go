package faultcheck

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"finwl/internal/fleet"
	"finwl/internal/fleet/chaos"
	"finwl/internal/serve"
)

// testFleet boots n replica engines behind chaos injectors and a
// router over them, all on live HTTP.
type fleetHarness struct {
	router    *fleet.Router
	routerSrv *httptest.Server
	replicas  []*httptest.Server
	injectors []*chaos.Injector
}

func bootFleet(t *testing.T, n int, mut func(*fleet.Config)) *fleetHarness {
	t.Helper()
	h := &fleetHarness{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{Seed: int64(i) + 1})
		inj := chaos.New(srv.Handler(), int64(i)+7)
		ts := httptest.NewServer(inj)
		h.injectors = append(h.injectors, inj)
		h.replicas = append(h.replicas, ts)
		urls[i] = ts.URL
	}
	cfg := fleet.Config{
		Replicas:  urls,
		Seed:      1,
		RetryBase: time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.router = rt
	h.routerSrv = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		h.routerSrv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Drain(ctx)
		for _, ts := range h.replicas {
			ts.Close()
		}
	})
	return h
}

// postSolve sends one request through the router and returns the
// status, decoded response (zero on errors), and error body.
func (h *fleetHarness) postSolve(t *testing.T, req *serve.Request) (int, serve.Response, serve.ErrorBody) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.routerSrv.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /solve through router: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	var out serve.Response
	var eb serve.ErrorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &out); err != nil {
			t.Fatalf("decode response: %v (%s)", err, raw)
		}
	} else {
		_ = json.Unmarshal(raw, &eb)
	}
	return resp.StatusCode, out, eb
}

// replicaIndex resolves a routed_via tag to the replica slot.
func (h *fleetHarness) replicaIndex(t *testing.T, via string) int {
	t.Helper()
	for i, ts := range h.replicas {
		if strings.HasSuffix(via, ts.URL) {
			return i
		}
	}
	t.Fatalf("routed_via %q names no replica", via)
	return -1
}

// TestFleetCampaign: every degenerate-input class through a healthy
// 3-replica fleet keeps the typed-error contract, and — because typed
// refusals must pass through unretried — burns zero failover hops.
func TestFleetCampaign(t *testing.T) {
	h := bootFleet(t, 3, nil)
	report, err := FleetCampaign(h.routerSrv.URL, h.routerSrv.Client())
	if err != nil {
		t.Fatalf("campaign transport failure: %v", err)
	}
	if len(report.Outcomes) != len(Classes()) {
		t.Fatalf("campaign covered %d classes, want %d", len(report.Outcomes), len(Classes()))
	}
	for _, o := range report.Outcomes {
		if err := o.CheckFleet(); err != nil {
			t.Errorf("%v", err)
		}
		t.Logf("%-24s -> %d %s", o.Class, o.Status, o.Code)
	}
	if report.FailoverDelta != 0 {
		t.Errorf("degenerate inputs burned %d failover hops; typed refusals must not be retried", report.FailoverDelta)
	}
}

// TestFleetChaosMatrix: with the request's owner replica killed,
// slowed, or partitioned, the router still returns the correct answer
// with a 200 — zero 5xx from router-side failures — and the failover
// counter records the reroute for the fault modes that need one.
func TestFleetChaosMatrix(t *testing.T) {
	cases := []struct {
		name         string
		fault        chaos.Fault
		wantFailover bool // must the answer come from a non-owner replica?
	}{
		{"owner-down", chaos.Fault{Mode: chaos.Drop}, true},
		{"owner-slow", chaos.Fault{Mode: chaos.Delay, Delay: 75 * time.Millisecond}, false},
		{"owner-partitioned", chaos.Fault{Mode: chaos.Partition}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := bootFleet(t, 3, func(c *fleet.Config) {
				c.HopTimeout = 500 * time.Millisecond // partition detection well under the request deadline
			})
			req := &serve.Request{Arch: "central", K: 4, N: 30}

			// Reference answer and owner discovery on the healthy fleet.
			status, healthy, eb := h.postSolve(t, req)
			if status != http.StatusOK {
				t.Fatalf("healthy solve: HTTP %d (%s %s)", status, eb.Code, eb.Error)
			}
			owner := h.replicaIndex(t, healthy.RoutedVia)

			before, err := routerFailovers(h.routerSrv.URL, nil)
			if err != nil {
				t.Fatal(err)
			}
			h.injectors[owner].Set(tc.fault)

			// A fresh population dodges every replica's result cache, so
			// the faulted owner must actually be routed around (or
			// through, for the slow case), not papered over by a hit.
			req2 := &serve.Request{Arch: "central", K: 4, N: 31}
			status, got, eb := h.postSolve(t, req2)
			if status != http.StatusOK {
				t.Fatalf("solve under %s: HTTP %d (%s %s)", tc.name, status, eb.Code, eb.Error)
			}
			want := directReference(t, req2)
			if math.Abs(got.TotalTime-want) > 1e-13 {
				t.Errorf("answer under %s: %v, want %v", tc.name, got.TotalTime, want)
			}
			if got.RoutedVia == "" {
				t.Error("response missing routed_via")
			}
			after, err := routerFailovers(h.routerSrv.URL, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tc.wantFailover {
				if h.replicaIndex(t, got.RoutedVia) == owner {
					t.Errorf("answer under %s came via the faulted owner (%q)", tc.name, got.RoutedVia)
				}
				if after <= before {
					t.Errorf("failover counter did not move under %s (%d -> %d)", tc.name, before, after)
				}
			}
		})
	}
}

// directReference computes the expected E(T) on a private engine.
func directReference(t *testing.T, req *serve.Request) float64 {
	t.Helper()
	s := serve.New(serve.Config{Seed: 123})
	resp, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("reference solve: %v", err)
	}
	return resp.TotalTime
}
