package faultcheck

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"finwl/internal/serve"
)

// checkBatchReport asserts the shared contract of both batch
// campaigns: full class coverage, a typed per-job refusal for every
// degenerate class, healthy controls unharmed, and both error regimes
// (rejected at validation, failed inside the solver) represented.
func checkBatchReport(t *testing.T, rep *BatchReport, label string) {
	t.Helper()
	if len(rep.Outcomes) != len(Classes()) {
		t.Fatalf("%s covered %d classes, want %d", label, len(rep.Outcomes), len(Classes()))
	}
	invalid, solverFailed := 0, 0
	for _, o := range rep.Outcomes {
		if err := o.Check(); err != nil {
			t.Errorf("%v", err)
		}
		switch o.Code {
		case "invalid_model":
			invalid++
		case "singular", "numeric", "not_converged":
			solverFailed++
		}
		t.Logf("%-24s -> %s", o.Class, o.Code)
	}
	if invalid == 0 {
		t.Errorf("%s produced no validation refusals; the typed-code assertion is weak", label)
	}
	if solverFailed == 0 {
		t.Errorf("%s produced no in-solver failures; structurally-valid classes never reached the chain", label)
	}
	if err := rep.CheckValid(); err != nil {
		t.Errorf("%s: %v", label, err)
	}
	if len(rep.Valid) != len(Classes()) {
		t.Fatalf("%s carried %d control jobs, want %d", label, len(rep.Valid), len(Classes()))
	}
}

// TestBatchCampaign pushes all degenerate-input classes through one
// mixed POST /batch: the submission returns 200 with a typed error
// item per degenerate job, and the interleaved healthy jobs — which
// share a single sweep group — all solve.
func TestBatchCampaign(t *testing.T) {
	srv := serve.New(serve.Config{Seed: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := BatchCampaign(ts.URL, ts.Client())
	if err != nil {
		t.Fatalf("campaign transport failure: %v", err)
	}
	checkBatchReport(t, rep, "batch campaign")

	// The controls share one network, so the scheduler must have run
	// them as one group: 15 jobs, 14 chain reuses at minimum.
	st := srv.Snapshot()
	wantJobs := int64(2 * len(Classes()))
	if st.BatchJobs != wantJobs {
		t.Errorf("batch jobs counter = %d, want %d", st.BatchJobs, wantJobs)
	}
	if st.BatchChainReuse < int64(len(Classes())-1) {
		t.Errorf("chain reuse counter = %d, want >= %d (controls share one group)",
			st.BatchChainReuse, len(Classes())-1)
	}
}

// TestAsyncBatchCampaign runs the same mixed submission through the
// async lifecycle — accept, poll to done, fetch retained results —
// proving the job store and progress plumbing survive the degenerate
// catalogue too, with identical per-job typing.
func TestAsyncBatchCampaign(t *testing.T) {
	srv := serve.New(serve.Config{Seed: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	rep, err := AsyncBatchCampaign(ctx, ts.URL, ts.Client())
	if err != nil {
		t.Fatalf("campaign transport failure: %v", err)
	}
	checkBatchReport(t, rep, "async campaign")

	// Finished results stay fetchable: a second campaign under the same
	// server must not collide with the retained record.
	rep2, err := AsyncBatchCampaign(ctx, ts.URL, ts.Client())
	if err != nil {
		t.Fatalf("second campaign transport failure: %v", err)
	}
	if err := rep2.CheckValid(); err != nil {
		t.Errorf("second campaign: %v", err)
	}
}
