package faultcheck

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// fleetCodes is the closed set of typed error codes a fleet router may
// emit for a degenerate input: everything a replica can say, plus
// "unavailable" (every candidate replica refused or was down). "panic",
// "internal" and "chaos" are deliberately absent — a chaos-injected
// replica fault must be absorbed by failover, never forwarded to the
// client.
var fleetCodes = map[string]bool{
	"invalid_model": true,
	"overloaded":    true,
	"draining":      true,
	"unavailable":   true,
	"canceled":      true,
	"singular":      true,
	"numeric":       true,
	"not_converged": true,
	"degraded":      true,
}

// CheckFleet enforces the router-mode robustness contract on one
// outcome: same as Check, with the router's own typed refusals
// ("unavailable") also admitted.
func (o ServeOutcome) CheckFleet() error {
	if !serveStatuses[o.Status] {
		return &Violation{
			Stage: "fleet:" + o.Class,
			Err:   fmt.Errorf("HTTP status %d outside the degenerate-input contract (body %s)", o.Status, o.Body),
		}
	}
	if !fleetCodes[o.Code] {
		return &Violation{
			Stage: "fleet:" + o.Class,
			Err:   fmt.Errorf("error code %q is not a typed fleet code (body %s)", o.Code, o.Body),
		}
	}
	return nil
}

// FleetReport is the result of one router-mode campaign: the per-class
// outcomes plus how many failover hops the campaign cost the router.
// Deterministic 4xx refusals must not burn failover retries, so a
// campaign of purely degenerate inputs against a healthy fleet must
// report FailoverDelta == 0.
type FleetReport struct {
	Outcomes      []ServeOutcome
	FailoverDelta int64
}

// FleetCampaign pushes every degenerate-input class through a live
// fleet router (POST baseURL/solve) and brackets the sweep with reads
// of the router's failover counter from GET /stats.
func FleetCampaign(baseURL string, client *http.Client) (*FleetReport, error) {
	before, err := routerFailovers(baseURL, client)
	if err != nil {
		return nil, err
	}
	outcomes, err := ServeCampaign(baseURL, client)
	if err != nil {
		return nil, err
	}
	after, err := routerFailovers(baseURL, client)
	if err != nil {
		return nil, err
	}
	return &FleetReport{Outcomes: outcomes, FailoverDelta: after - before}, nil
}

// routerFailovers reads the "failovers" counter from the router's
// /stats payload.
func routerFailovers(baseURL string, client *http.Client) (int64, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(baseURL + "/stats")
	if err != nil {
		return 0, fmt.Errorf("faultcheck: GET /stats: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, fmt.Errorf("faultcheck: read /stats: %w", err)
	}
	var body struct {
		Failovers int64 `json:"failovers"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		return 0, fmt.Errorf("faultcheck: decode /stats: %w", err)
	}
	return body.Failovers, nil
}
