package faultcheck

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"finwl/internal/serve"
)

// BatchOutcome records how one degenerate-input class was disposed of
// inside a shared-chain batch submission: the contract is per-job —
// a typed error item for the degenerate job, never a panic, a 500, or
// a sunk batch.
type BatchOutcome struct {
	Class string
	Code  string // machine-readable code from the job's error item
	Error string
	Item  serve.BatchItem
}

// Check enforces the batch-mode robustness contract on one outcome: a
// degenerate job must fail individually with a typed code and must not
// smuggle out a successful response.
func (o BatchOutcome) Check() error {
	if o.Item.Response != nil {
		return &Violation{
			Stage: "batch:" + o.Class,
			Err:   fmt.Errorf("degenerate input produced a successful response: %+v", o.Item.Response),
		}
	}
	if !serveCodes[o.Code] {
		return &Violation{
			Stage: "batch:" + o.Class,
			Err:   fmt.Errorf("error code %q is not a typed serve code (error %q)", o.Code, o.Error),
		}
	}
	return nil
}

// BatchReport pairs the degenerate outcomes with the healthy control
// jobs interleaved into the same submission.
type BatchReport struct {
	Outcomes []BatchOutcome
	Valid    []serve.BatchItem
}

// CheckValid asserts the mixed-batch half of the contract: every
// healthy control job must come back as a real solve despite sharing
// the submission (and its scheduler run) with every degenerate class.
func (r *BatchReport) CheckValid() error {
	for i, it := range r.Valid {
		if it.Response == nil {
			return &Violation{
				Stage: "batch:valid",
				Err:   fmt.Errorf("healthy control job %d failed alongside degenerate neighbors: %s (%s)", i, it.Error, it.Code),
			}
		}
		if !(it.Response.TotalTime > 0) {
			return &Violation{
				Stage: "batch:valid",
				Err:   fmt.Errorf("healthy control job %d returned a non-positive total time %v", i, it.Response.TotalTime),
			}
		}
	}
	return nil
}

// campaignBatch interleaves every degenerate class with one healthy
// cluster job apiece. The controls share one network at distinct
// workload sizes, so they collapse into a single sweep group that the
// scheduler runs alongside the degenerate jobs — the strongest mixed-
// batch shape: a poisoned job in the array must not take the healthy
// group (or the batch) with it.
func campaignBatch() (reqs []*serve.Request, classIdx, validIdx []int) {
	for i, c := range Classes() {
		reqs = append(reqs, &serve.Request{Arch: "central", K: 3, N: 10 + i})
		validIdx = append(validIdx, len(reqs)-1)
		net, k, n := c.Build()
		reqs = append(reqs, &serve.Request{K: k, N: n, Network: serve.SpecFromNetwork(net)})
		classIdx = append(classIdx, len(reqs)-1)
	}
	return reqs, classIdx, validIdx
}

func batchReport(items []serve.BatchItem, classIdx, validIdx []int) *BatchReport {
	classes := Classes()
	rep := &BatchReport{}
	for i, idx := range classIdx {
		it := items[idx]
		rep.Outcomes = append(rep.Outcomes, BatchOutcome{
			Class: classes[i].Name,
			Code:  it.Code,
			Error: it.Error,
			Item:  it,
		})
	}
	for _, idx := range validIdx {
		rep.Valid = append(rep.Valid, items[idx])
	}
	return rep
}

// BatchCampaign pushes every degenerate-input class of the catalogue
// through POST /batch as one mixed submission (healthy control jobs
// interleaved) and maps the per-job items back to their classes. The
// HTTP status must be 200 — batch failures are per-item by contract —
// so any other status is a transport-level error here.
func BatchCampaign(baseURL string, client *http.Client) (*BatchReport, error) {
	if client == nil {
		client = http.DefaultClient
	}
	reqs, classIdx, validIdx := campaignBatch()
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("faultcheck: marshal batch: %w", err)
	}
	resp, err := client.Post(baseURL+"/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("faultcheck: POST /batch: %w", err)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("faultcheck: read batch response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("faultcheck: POST /batch: HTTP %d (body %s)", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var items []serve.BatchItem
	if err := json.Unmarshal(raw, &items); err != nil {
		return nil, fmt.Errorf("faultcheck: decode batch response: %w", err)
	}
	if len(items) != len(reqs) {
		return nil, fmt.Errorf("faultcheck: batch returned %d items for %d jobs", len(items), len(reqs))
	}
	return batchReport(items, classIdx, validIdx), nil
}

// AsyncBatchCampaign submits the same mixed batch through the async
// API — POST /jobs, then GET /jobs/{id} polling until the record is
// done — and maps the stored results exactly like BatchCampaign. It
// additionally proves the job lifecycle itself survives degenerate
// payloads: acceptance, progress polling, and result retention all
// happen with the catalogue in flight.
func AsyncBatchCampaign(ctx context.Context, baseURL string, client *http.Client) (*BatchReport, error) {
	if client == nil {
		client = http.DefaultClient
	}
	reqs, classIdx, validIdx := campaignBatch()
	body, err := json.Marshal(reqs)
	if err != nil {
		return nil, fmt.Errorf("faultcheck: marshal batch: %w", err)
	}
	resp, err := client.Post(baseURL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("faultcheck: POST /jobs: %w", err)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("faultcheck: read submit response: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("faultcheck: POST /jobs: HTTP %d (body %s)", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var acc struct {
		ID   string `json:"id"`
		Poll string `json:"poll"`
	}
	if err := json.Unmarshal(raw, &acc); err != nil || acc.ID == "" {
		return nil, fmt.Errorf("faultcheck: bad submit body %s: %v", bytes.TrimSpace(raw), err)
	}

	var job struct {
		State   string            `json:"state"`
		Results []serve.BatchItem `json:"results"`
		Error   string            `json:"error"`
		Code    string            `json:"code"`
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+acc.Poll, nil)
		if err != nil {
			return nil, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, fmt.Errorf("faultcheck: poll %s: %w", acc.Poll, err)
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("faultcheck: read poll response: %w", err)
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("faultcheck: poll %s: HTTP %d (body %s)", acc.Poll, resp.StatusCode, bytes.TrimSpace(raw))
		}
		job.Results = nil
		if err := json.Unmarshal(raw, &job); err != nil {
			return nil, fmt.Errorf("faultcheck: decode poll response: %w", err)
		}
		if job.State == "done" {
			break
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("faultcheck: job %s still %q: %w", acc.ID, job.State, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if job.Error != "" {
		return nil, fmt.Errorf("faultcheck: async batch failed as a whole: %s (%s)", job.Error, job.Code)
	}
	if len(job.Results) != len(reqs) {
		return nil, fmt.Errorf("faultcheck: async batch returned %d items for %d jobs", len(job.Results), len(reqs))
	}
	return batchReport(job.Results, classIdx, validIdx), nil
}
