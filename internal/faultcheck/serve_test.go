package faultcheck

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"finwl/internal/serve"
)

// TestServeCampaign pushes all degenerate-input classes through a real
// HTTP round trip and asserts the serve-mode contract: every class is
// refused with a mapped 4xx/5xx status and a typed error body — zero
// panics, zero 200s, zero untyped 500s.
func TestServeCampaign(t *testing.T) {
	srv := serve.New(serve.Config{Seed: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	outcomes, err := ServeCampaign(ts.URL, ts.Client())
	if err != nil {
		t.Fatalf("campaign transport failure: %v", err)
	}
	if len(outcomes) != len(Classes()) {
		t.Fatalf("campaign covered %d classes, want %d", len(outcomes), len(Classes()))
	}
	for _, o := range outcomes {
		if err := o.Check(); err != nil {
			t.Errorf("%v", err)
		}
		t.Logf("%-24s -> %d %s", o.Class, o.Status, o.Code)
	}

	// Spot-check the two mapping regimes: validation failures are 400s
	// and the structurally-valid-but-singular class exhausts the whole
	// degradation ladder into a 503.
	want := map[string]int{
		"nan-routing":          http.StatusBadRequest,
		"oversized-population": http.StatusBadRequest,
		"zero-population":      http.StatusBadRequest,
		"absorbing-phase":      http.StatusBadRequest,
		"trapped-tasks":        http.StatusServiceUnavailable,
	}
	for _, o := range outcomes {
		if w, ok := want[o.Class]; ok && o.Status != w {
			t.Errorf("class %s: status %d, want %d (body %s)", o.Class, o.Status, w, o.Body)
		}
	}

	// The rejections must land in the right observability counters:
	// every class reaches Solve (degenerate values travel as JSON on
	// purpose), each invalid_model refusal bumps the invalid counter,
	// and every structurally-valid-but-doomed class burns down the
	// whole degradation ladder into the failures counter.
	invalid, failed := 0, 0
	for _, o := range outcomes {
		switch o.Code {
		case "invalid_model":
			invalid++
		case "singular", "numeric", "not_converged":
			failed++
		}
	}
	st := srv.Snapshot()
	if st.Requests != int64(len(outcomes)) {
		t.Errorf("requests counter = %d, want %d (one per campaign class)", st.Requests, len(outcomes))
	}
	if st.Invalid != int64(invalid) {
		t.Errorf("invalid counter = %d, want %d (one per invalid_model refusal)", st.Invalid, invalid)
	}
	if st.Failures != int64(failed) {
		t.Errorf("failures counter = %d, want %d (one per ladder exhaustion)", st.Failures, failed)
	}
	if failed == 0 {
		t.Error("campaign produced no ladder exhaustion; the failures-counter assertion is vacuous")
	}
}
