package faultcheck

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"finwl/internal/serve"
)

// serveCodes is the closed set of machine-readable error codes the
// serve boundary may emit for a degenerate input. "panic" and
// "internal" are deliberately absent: their appearance is a contract
// violation, exactly like an escaped panic in the in-process harness.
var serveCodes = map[string]bool{
	"invalid_model": true,
	"overloaded":    true,
	"draining":      true,
	"canceled":      true,
	"singular":      true,
	"numeric":       true,
	"not_converged": true,
	"degraded":      true,
}

// serveStatuses is the closed set of HTTP statuses a degenerate input
// may map to: 400 (model rejected), 429 (admission rejected), 503
// (draining, or a numerical failure that survived the whole
// degradation ladder), 504 (deadline).
var serveStatuses = map[int]bool{
	http.StatusBadRequest:         true,
	http.StatusTooManyRequests:    true,
	http.StatusServiceUnavailable: true,
	http.StatusGatewayTimeout:     true,
}

// ServeOutcome records how the HTTP serve surface disposed of one
// degenerate-input class.
type ServeOutcome struct {
	Class  string
	Status int
	Code   string // machine-readable code from the error body
	Body   string // raw response body, for diagnostics
}

// Check enforces the serve-mode robustness contract on one outcome: a
// degenerate input must be refused with a mapped status and a typed
// error body — never a 200, a 500, or a panic.
func (o ServeOutcome) Check() error {
	if !serveStatuses[o.Status] {
		return &Violation{
			Stage: "serve:" + o.Class,
			Err:   fmt.Errorf("HTTP status %d outside the degenerate-input contract (body %s)", o.Status, o.Body),
		}
	}
	if !serveCodes[o.Code] {
		return &Violation{
			Stage: "serve:" + o.Class,
			Err:   fmt.Errorf("error code %q is not a typed serve code (body %s)", o.Code, o.Body),
		}
	}
	return nil
}

// ServeCampaign pushes every degenerate-input class of the catalogue
// through a live HTTP serve surface (POST baseURL/solve) and returns
// one outcome per class. It is the HTTP-boundary twin of Exercise:
// the request bodies travel as JSON — including NaN/∞ values, which
// the serve wire format round-trips on purpose — so the full decode →
// build → validate → ladder path is what gets tested. Callers run
// Check on each outcome (or assert exact statuses themselves).
func ServeCampaign(baseURL string, client *http.Client) ([]ServeOutcome, error) {
	if client == nil {
		client = http.DefaultClient
	}
	classes := Classes()
	outcomes := make([]ServeOutcome, 0, len(classes))
	for _, c := range classes {
		net, k, n := c.Build()
		req := serve.Request{K: k, N: n, Network: serve.SpecFromNetwork(net)}
		body, err := json.Marshal(&req)
		if err != nil {
			return nil, fmt.Errorf("faultcheck: class %s: marshal request: %w", c.Name, err)
		}
		resp, err := client.Post(baseURL+"/solve", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("faultcheck: class %s: POST /solve: %w", c.Name, err)
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("faultcheck: class %s: read response: %w", c.Name, err)
		}
		var eb serve.ErrorBody
		_ = json.Unmarshal(raw, &eb) // non-error bodies leave Code empty
		outcomes = append(outcomes, ServeOutcome{
			Class:  c.Name,
			Status: resp.StatusCode,
			Code:   eb.Code,
			Body:   string(bytes.TrimSpace(raw)),
		})
	}
	return outcomes, nil
}
