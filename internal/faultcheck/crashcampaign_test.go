package faultcheck

import (
	"context"
	"testing"
	"time"
)

// TestJobsCrashCampaign: the full degenerate-class catalogue goes
// through a journal-backed /jobs submission, the server dies without
// draining, and the recovered server must reproduce every disposition —
// all 15 classes typed, every control job intact, the idempotency
// window still mapping the replayed key to the pre-crash job.
func TestJobsCrashCampaign(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := JobsCrashCampaign(ctx, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(rep.After.Outcomes), len(Classes()); got != want {
		t.Fatalf("campaign covered %d classes, catalogue has %d", got, want)
	}
	for _, o := range rep.After.Outcomes {
		if err := o.Check(); err != nil {
			t.Error(err)
		}
	}
	if err := rep.After.CheckValid(); err != nil {
		t.Error(err)
	}
	if err := rep.Check(); err != nil {
		t.Error(err)
	}
}
