package productform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"finwl/internal/core"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

func approx(t *testing.T, got, want, relTol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

// Machine-repair / central-server sanity: a single queue visited once
// per job with demand d: X(n) = 1/d for any n ≥ 1 (the server is the
// only resource and is saturated).
func TestSingleQueueThroughput(t *testing.T) {
	m := &Model{
		Visits: []float64{1},
		Means:  []float64{0.5},
		Kinds:  []statespace.Kind{statespace.Queue},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		approx(t, m.ThroughputBuzen(n), 2, 1e-12, "Buzen X(n)")
		approx(t, m.MVA(n).Throughput, 2, 1e-12, "MVA X(n)")
	}
}

// A single delay station: X(n) = n/s (all customers in service).
func TestSingleDelayThroughput(t *testing.T) {
	m := &Model{
		Visits: []float64{1},
		Means:  []float64{2},
		Kinds:  []statespace.Kind{statespace.Delay},
	}
	for n := 1; n <= 5; n++ {
		approx(t, m.ThroughputBuzen(n), float64(n)/2, 1e-12, "Buzen delay X(n)")
		approx(t, m.MVA(n).Throughput, float64(n)/2, 1e-12, "MVA delay X(n)")
	}
}

// Two-queue closed network with n=2, known by hand:
// demands d1, d2; G(1)=d1+d2, G(2)=d1²+d1d2+d2²; X(2)=G(1)/G(2).
func TestTwoQueuesHandComputed(t *testing.T) {
	d1, d2 := 0.5, 0.25
	m := &Model{
		Visits: []float64{1, 1},
		Means:  []float64{d1, d2},
		Kinds:  []statespace.Kind{statespace.Queue, statespace.Queue},
	}
	g := m.NormalizationConstants(2)
	approx(t, g[1], d1+d2, 1e-12, "G(1)")
	approx(t, g[2], d1*d1+d1*d2+d2*d2, 1e-12, "G(2)")
	approx(t, m.ThroughputBuzen(2), g[1]/g[2], 1e-12, "X(2)")
}

// Buzen and MVA must agree on random mixed networks.
func TestBuzenMVAAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := 1 + r.Intn(5)
		m := &Model{
			Visits: make([]float64, s),
			Means:  make([]float64, s),
			Kinds:  make([]statespace.Kind, s),
		}
		for i := 0; i < s; i++ {
			m.Visits[i] = 0.2 + 2*r.Float64()
			m.Means[i] = 0.2 + 2*r.Float64()
			if r.Intn(2) == 0 {
				m.Kinds[i] = statespace.Delay
			} else {
				m.Kinds[i] = statespace.Queue
			}
		}
		for n := 1; n <= 6; n++ {
			b := m.ThroughputBuzen(n)
			v := m.MVA(n).Throughput
			if math.Abs(b-v) > 1e-9*math.Max(1, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// MVA bookkeeping: queue lengths sum to the population and
// utilizations equal X·d.
func TestMVAConservation(t *testing.T) {
	m := &Model{
		Visits: []float64{1, 0.8, 0.4},
		Means:  []float64{0.3, 0.7, 1.1},
		Kinds:  []statespace.Kind{statespace.Delay, statespace.Queue, statespace.Queue},
	}
	for n := 1; n <= 8; n++ {
		res := m.MVA(n)
		var total float64
		for _, q := range res.QueueLen {
			total += q
		}
		approx(t, total, float64(n), 1e-9, "Σ queue lengths")
		for i := range res.Util {
			approx(t, res.Util[i], res.Throughput*m.demand(i), 1e-12, "utilization")
		}
	}
}

// The paper's identity: for exponential servers the transient model's
// steady-state inter-departure time equals the product-form solution.
func TestSteadyStateMatchesTransientModel(t *testing.T) {
	q, p1, p2 := 0.1, 0.5, 0.5
	route := matrix.New(4, 4)
	route.Set(0, 1, p1*(1-q))
	route.Set(0, 2, p2*(1-q))
	route.Set(1, 0, 1)
	route.Set(2, 3, 1)
	route.Set(3, 0, 1)
	net := &network.Network{
		Stations: []network.Station{
			{Name: "CPU", Kind: statespace.Delay, Service: phase.MustExpo(1 / 0.3)},
			{Name: "Disk", Kind: statespace.Delay, Service: phase.MustExpo(1 / 0.6)},
			{Name: "Comm", Kind: statespace.Queue, Service: phase.MustExpo(1 / 0.2)},
			{Name: "RDisk", Kind: statespace.Queue, Service: phase.MustExpo(1 / 0.9)},
		},
		Route: route,
		Exit:  []float64{q, 0, 0, 0},
		Entry: []float64{1, 0, 0, 0},
	}
	for _, k := range []int{1, 2, 4, 6} {
		s, err := core.NewSolver(net, k)
		if err != nil {
			t.Fatal(err)
		}
		_, tss, err := s.SteadyState()
		if err != nil {
			t.Fatal(err)
		}
		pfm, err := FromNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		pf := pfm.Interdeparture(k)
		approx(t, tss, pf, 1e-9, "t_ss vs product form")
	}
}

// With a phase-type queue the product form is only approximate: the
// two must diverge (this is the paper's whole point).
func TestPhaseTypeQueueBreaksProductForm(t *testing.T) {
	route := matrix.New(2, 2)
	route.Set(0, 1, 0.5)
	route.Set(1, 0, 1)
	net := &network.Network{
		Stations: []network.Station{
			{Name: "CPU", Kind: statespace.Delay, Service: phase.MustExpo(2)},
			{Name: "Shared", Kind: statespace.Queue, Service: phase.MustHyperExpFit(1, 25)},
		},
		Route: route,
		Exit:  []float64{0.5, 0},
		Entry: []float64{1, 0},
	}
	s, err := core.NewSolver(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, tss, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	pfm, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	pf := pfm.Interdeparture(4)
	if math.Abs(tss-pf)/pf < 0.02 {
		t.Fatalf("H2 queue: t_ss %v ≈ PF %v — expected a visible gap", tss, pf)
	}
}

// Insensitivity: with only delay stations the product form is exact
// for any service distribution, so t_ss must match even with H2.
func TestDelayInsensitivity(t *testing.T) {
	route := matrix.New(2, 2)
	route.Set(0, 1, 0.6)
	route.Set(1, 0, 1)
	net := &network.Network{
		Stations: []network.Station{
			{Name: "A", Kind: statespace.Delay, Service: phase.MustHyperExpFit(0.7, 9)},
			{Name: "B", Kind: statespace.Delay, Service: phase.MustErlangMean(3, 1.2)},
		},
		Route: route,
		Exit:  []float64{0.4, 0},
		Entry: []float64{1, 0},
	}
	s, err := core.NewSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, tss, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	pfm, err := FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	pf := pfm.Interdeparture(3)
	approx(t, tss, pf, 1e-8, "insensitive t_ss vs PF")
}

func TestValidateErrors(t *testing.T) {
	m := &Model{Visits: []float64{1}, Means: []float64{0}, Kinds: []statespace.Kind{statespace.Queue}}
	if err := m.Validate(); err == nil {
		t.Fatal("accepted zero mean")
	}
	m2 := &Model{}
	if err := m2.Validate(); err == nil {
		t.Fatal("accepted empty model")
	}
	m3 := &Model{Visits: []float64{-1}, Means: []float64{1}, Kinds: []statespace.Kind{statespace.Queue}}
	if err := m3.Validate(); err == nil {
		t.Fatal("accepted negative visits")
	}
}

func TestInterdepartureAndGSeries(t *testing.T) {
	m := &Model{
		Visits: []float64{1, 1},
		Means:  []float64{0.5, 0.25},
		Kinds:  []statespace.Kind{statespace.Queue, statespace.Delay},
	}
	if got := m.Interdeparture(3); math.Abs(got*m.ThroughputBuzen(3)-1) > 1e-12 {
		t.Fatalf("Interdeparture inconsistent with throughput: %v", got)
	}
	g := m.NormalizationConstants(4)
	if len(g) != 5 || g[0] != 1 {
		t.Fatalf("G series wrong: %v", g)
	}
	for i := 1; i < len(g); i++ {
		if g[i] <= 0 {
			t.Fatalf("G(%d) = %v", i, g[i])
		}
	}
}

func TestMultiServerBuzenBetweenQueueAndDelay(t *testing.T) {
	// A c-server station's throughput sits between the 1-server queue
	// and the infinite-server delay versions.
	mk := func(kind statespace.Kind, servers int) float64 {
		m := &Model{
			Visits:  []float64{1, 1},
			Means:   []float64{0.4, 1.2},
			Kinds:   []statespace.Kind{statespace.Delay, kind},
			Servers: []int{0, servers},
		}
		return m.ThroughputBuzen(6)
	}
	q := mk(statespace.Queue, 0)
	c2 := mk(statespace.Multi, 2)
	c4 := mk(statespace.Multi, 4)
	d := mk(statespace.Delay, 0)
	if !(q < c2 && c2 < c4 && c4 <= d) {
		t.Fatalf("ordering violated: queue %v, c2 %v, c4 %v, delay %v", q, c2, c4, d)
	}
	// One server: identical to the queue formula.
	if got := mk(statespace.Multi, 1); math.Abs(got-q) > 1e-12 {
		t.Fatalf("multi(1) %v != queue %v", got, q)
	}
}

func TestPanicsOnBadPopulation(t *testing.T) {
	m := &Model{Visits: []float64{1}, Means: []float64{1}, Kinds: []statespace.Kind{statespace.Queue}}
	defer func() {
		if recover() == nil {
			t.Fatal("MVA(0) did not panic")
		}
	}()
	m.MVA(0)
}
