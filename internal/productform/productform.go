// Package productform implements the classical steady-state solution
// of closed product-form (Jackson/Gordon–Newell) queueing networks —
// the baseline the paper extends. Two independent algorithms are
// provided: Buzen's convolution algorithm (G(N), reference [3,4] of
// the paper) with load-dependent service rates, and exact Mean Value
// Analysis. Both treat delay (infinite-server) stations and
// single-server FCFS queues, which is exactly the station repertoire
// of the cluster models.
//
// The product-form solution is exact only for exponential FCFS
// queues; for phase-type queues it is the approximation whose error
// the paper quantifies. The transient model's steady state
// (core.SteadyState) must coincide with it in the exponential case —
// an identity the integration tests assert.
package productform

import (
	"fmt"

	"finwl/internal/network"
	"finwl/internal/statespace"
)

// Model is the station-level data the product-form algorithms need:
// per-job visit counts, mean service times per visit, station kinds,
// and (for multi-server stations) server counts.
type Model struct {
	Visits  []float64
	Means   []float64
	Kinds   []statespace.Kind
	Names   []string
	Servers []int // per station; used by Multi stations only
}

// FromNetwork derives the product-form model of a network: visit
// ratios from the traffic equations and mean service times from the
// stations' phase-type distributions. It fails when the routing chain
// is not absorbing (the traffic equations are singular).
func FromNetwork(net *network.Network) (*Model, error) {
	v, err := net.VisitRatios()
	if err != nil {
		return nil, err
	}
	m := &Model{
		Visits:  v,
		Means:   make([]float64, len(v)),
		Kinds:   make([]statespace.Kind, len(v)),
		Names:   make([]string, len(v)),
		Servers: make([]int, len(v)),
	}
	for i, st := range net.Stations {
		m.Means[i] = st.Service.Mean()
		m.Kinds[i] = st.Kind
		m.Names[i] = st.Name
		m.Servers[i] = st.Servers
	}
	return m, nil
}

// Validate checks the model's dimensions and positivity.
func (m *Model) Validate() error {
	if len(m.Visits) == 0 {
		return fmt.Errorf("productform: empty model")
	}
	if len(m.Means) != len(m.Visits) || len(m.Kinds) != len(m.Visits) {
		return fmt.Errorf("productform: mismatched field lengths")
	}
	for i := range m.Visits {
		if m.Visits[i] < 0 {
			return fmt.Errorf("productform: negative visit ratio at station %d", i)
		}
		if m.Means[i] <= 0 {
			return fmt.Errorf("productform: non-positive service mean at station %d", i)
		}
	}
	return nil
}

// demand returns the service demand v_i·s_i of station i.
func (m *Model) demand(i int) float64 { return m.Visits[i] * m.Means[i] }

// ThroughputBuzen returns the system throughput X(n) — job
// completions per unit time with n customers — via the convolution
// algorithm: X(n) = G(n−1)/G(n).
func (m *Model) ThroughputBuzen(n int) float64 {
	g := m.gSeries(n)
	return g[n-1] / g[n]
}

// NormalizationConstants returns G(0..n) from Buzen's convolution.
// f_i(k) = d_i^k for a queue and d_i^k/k! for a delay station, with
// d_i the service demand.
func (m *Model) NormalizationConstants(n int) []float64 {
	return m.gSeries(n)
}

func (m *Model) gSeries(n int) []float64 {
	if n < 1 {
		panic("productform: population must be >= 1")
	}
	g := make([]float64, n+1)
	g[0] = 1
	for i := range m.Visits {
		d := m.demand(i)
		switch m.Kinds[i] {
		case statespace.Queue:
			// g_new(k) = Σ_j d^j · g(k−j) has the O(n) recurrence
			// g_new(k) = g(k) + d·g_new(k−1).
			for k := 1; k <= n; k++ {
				g[k] = g[k] + d*g[k-1]
			}
		case statespace.Delay:
			// Full convolution with f(j) = d^j/j!.
			next := make([]float64, n+1)
			for k := 0; k <= n; k++ {
				term := 1.0 // d^j / j!
				for j := 0; j <= k; j++ {
					if j > 0 {
						term *= d / float64(j)
					}
					next[k] += term * g[k-j]
				}
			}
			copy(g, next)
		case statespace.Multi:
			// f(j) = d^j / Π_{l=1..j} min(l, c) — load-dependent rates
			// up to c busy servers.
			c := 1
			if m.Servers != nil && m.Servers[i] > 1 {
				c = m.Servers[i]
			}
			next := make([]float64, n+1)
			for k := 0; k <= n; k++ {
				term := 1.0
				for j := 0; j <= k; j++ {
					if j > 0 {
						div := j
						if div > c {
							div = c
						}
						term *= d / float64(div)
					}
					next[k] += term * g[k-j]
				}
			}
			copy(g, next)
		default:
			panic(fmt.Sprintf("productform: unknown station kind %v", m.Kinds[i]))
		}
	}
	return g
}

// MVAResult carries the per-population outputs of mean value
// analysis.
type MVAResult struct {
	N          int
	Throughput float64   // system throughput X(N)
	Residence  []float64 // mean residence time per visit at each station
	QueueLen   []float64 // mean number of customers at each station
	Util       []float64 // utilization (queues) / mean busy servers (delays)
}

// MVA runs exact mean value analysis up to population n and returns
// the result at n.
func (m *Model) MVA(n int) *MVAResult {
	if n < 1 {
		panic("productform: population must be >= 1")
	}
	s := len(m.Visits)
	q := make([]float64, s)
	res := &MVAResult{N: n}
	for pop := 1; pop <= n; pop++ {
		r := make([]float64, s)
		var cycle float64
		for i := 0; i < s; i++ {
			switch m.Kinds[i] {
			case statespace.Delay:
				r[i] = m.Means[i]
			case statespace.Queue:
				r[i] = m.Means[i] * (1 + q[i])
			case statespace.Multi:
				panic("productform: exact MVA does not support multi-server stations; use ThroughputBuzen")
			}
			cycle += m.Visits[i] * r[i]
		}
		x := float64(pop) / cycle
		for i := 0; i < s; i++ {
			q[i] = x * m.Visits[i] * r[i]
		}
		if pop == n {
			res.Throughput = x
			res.Residence = r
			res.QueueLen = q
			res.Util = make([]float64, s)
			for i := 0; i < s; i++ {
				res.Util[i] = x * m.demand(i)
			}
		}
	}
	return res
}

// Interdeparture returns the product-form steady-state mean time
// between job completions with n customers, G(n)/G(n−1).
func (m *Model) Interdeparture(n int) float64 {
	return 1 / m.ThroughputBuzen(n)
}
