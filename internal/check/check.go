// Package check is the validation layer of the solver pipeline: the
// typed-error vocabulary every package reports failures in, plus the
// structural screens (probability vectors, stochastic rows, positive
// rates, NaN/Inf filters) that public constructors run on their inputs
// before any numerical work begins.
//
// The error contract is deliberately small. Every failure a caller can
// act on matches exactly one of the sentinels below under errors.Is:
//
//	ErrInvalidModel — the input fails a structural invariant; fix the
//	                  model, retrying cannot help.
//	ErrSingular     — a linear system is numerically singular after the
//	                  fallback ladder (refine → rescale → error).
//	ErrNotConverged — an iterative method hit its iteration cap; the
//	                  message carries the final residual.
//	ErrNumeric      — a computation produced NaN/Inf that the guards
//	                  caught before it could be returned as a result.
//	ErrCanceled     — the caller's context was canceled or its deadline
//	                  expired; also matches context.Canceled /
//	                  context.DeadlineExceeded via Unwrap.
//	ErrOverloaded   — admission control rejected the request: cost
//	                  beyond the remaining budget, queue full, or the
//	                  server draining; retry later or shrink the model.
//	ErrDegraded     — the result was served by a cheaper approximation
//	                  tier because the exact path was unavailable; the
//	                  response is usable but not exact.
//	ErrJournalCorrupt — a durability journal failed its integrity check
//	                  on replay (boot-time only; a torn last record is
//	                  truncated with a warning instead).
//
// check imports only the standard library plus internal/obs (itself
// stdlib-only) so every package — including internal/matrix at the
// bottom of the stack — can use it.
package check

import (
	"context"
	"errors"
	"fmt"
	"math"

	"finwl/internal/obs"
)

// ErrInvalidModel is returned when an input fails structural
// validation at a public constructor.
var ErrInvalidModel = errors.New("invalid model")

// ErrSingular is returned when a linear system is numerically
// singular and the fallback ladder could not rescue it.
var ErrSingular = errors.New("singular matrix")

// ErrNotConverged is returned when an iterative method exhausts its
// iteration budget without meeting its tolerance.
var ErrNotConverged = errors.New("did not converge")

// ErrNumeric is returned when a guard catches a NaN or Inf that would
// otherwise have been silently returned as a result.
var ErrNumeric = errors.New("non-finite numerical result")

// ErrCanceled is returned when a context is canceled or its deadline
// expires mid-computation.
var ErrCanceled = errors.New("computation canceled")

// ErrOverloaded is returned when admission control rejects a request:
// its state-space cost exceeds the remaining capacity budget, the job
// queue is full, or the server has stopped admitting work. Retrying
// later, or with a smaller model, can help.
var ErrOverloaded = errors.New("server overloaded")

// ErrDegraded marks a result computed by a cheaper approximation tier
// because the exact path was unavailable (breaker open, deadline too
// tight, or a numerical failure). It accompanies a usable response —
// callers that need exact numbers must check for it.
var ErrDegraded = errors.New("result degraded to an approximation")

// ErrJournalCorrupt is returned when a durability journal fails its
// integrity check on replay: a record in the middle of the file does
// not parse. (A partial *last* record is the ordinary signature of a
// crash mid-append and is truncated with a warning, not an error.)
// Recovery requires operator action — inspect or move the journal —
// so this is raised at boot, never on a request path.
var ErrJournalCorrupt = errors.New("journal corrupt")

// canceledError wraps a context error so that errors.Is matches both
// ErrCanceled and the underlying context sentinel. When the context
// carries an obs request ID, the message names the request that died
// so a cancellation deep in the solver is attributable in the logs.
type canceledError struct {
	cause error
	reqID string
}

func (e *canceledError) Error() string {
	if e.reqID != "" {
		return "computation canceled (request " + e.reqID + "): " + e.cause.Error()
	}
	return "computation canceled: " + e.cause.Error()
}
func (e *canceledError) Unwrap() error { return e.cause }
func (e *canceledError) Is(target error) bool {
	return target == ErrCanceled
}

// Canceled converts ctx's cancellation state into a typed error that
// matches both ErrCanceled and the context package's own sentinel. It
// returns nil when the context is still live.
func Canceled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return &canceledError{cause: err, reqID: obs.RequestIDFrom(ctx)}
	}
	return nil
}

// Invalid builds an ErrInvalidModel-matching error with a formatted
// description.
func Invalid(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrInvalidModel)
}

// Finite rejects NaN and ±Inf.
func Finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return Invalid("%s is %v, want finite", name, v)
	}
	return nil
}

// FiniteVec rejects any NaN or ±Inf element.
func FiniteVec(name string, v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Invalid("%s[%d] is %v, want finite", name, i, x)
		}
	}
	return nil
}

// Positive requires v > 0 and finite.
func Positive(name string, v float64) error {
	if err := Finite(name, v); err != nil {
		return err
	}
	if v <= 0 {
		return Invalid("%s is %v, want > 0", name, v)
	}
	return nil
}

// PositiveVec requires every element > 0 and finite — the screen for
// rate vectors.
func PositiveVec(name string, v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) || x <= 0 {
			return Invalid("%s[%d] is %v, want positive finite", name, i, x)
		}
	}
	return nil
}

// ProbTol is the tolerance used when checking that probabilities sum
// to one.
const ProbTol = 1e-9

// ProbVec requires v to be a probability vector: finite, non-negative
// entries summing to 1 within ProbTol.
func ProbVec(name string, v []float64) error {
	if len(v) == 0 {
		return Invalid("%s is empty", name)
	}
	var sum float64
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Invalid("%s[%d] is %v, want finite", name, i, x)
		}
		if x < 0 {
			return Invalid("%s[%d] is %v, want >= 0", name, i, x)
		}
		sum += x
	}
	if math.Abs(sum-1) > ProbTol {
		return Invalid("%s sums to %v, want 1", name, sum)
	}
	return nil
}

// SubStochasticRow requires finite, non-negative entries whose sum does
// not exceed 1 + ProbTol — the invariant of internal transition rows
// whose deficit is the exit probability.
func SubStochasticRow(name string, row []float64) error {
	var sum float64
	for j, x := range row {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return Invalid("%s[%d] is %v, want finite", name, j, x)
		}
		if x < 0 {
			return Invalid("%s[%d] is %v, want >= 0", name, j, x)
		}
		sum += x
	}
	if sum > 1+ProbTol {
		return Invalid("%s sums to %v > 1", name, sum)
	}
	return nil
}

// StochasticRow requires a row that sums to exactly 1 within ProbTol
// on top of the SubStochasticRow screens.
func StochasticRow(name string, row []float64) error {
	if err := SubStochasticRow(name, row); err != nil {
		return err
	}
	var sum float64
	for _, x := range row {
		sum += x
	}
	if math.Abs(sum-1) > ProbTol {
		return Invalid("%s sums to %v, want 1", name, sum)
	}
	return nil
}

// Count requires n >= min, the screen for populations and workload
// sizes.
func Count(name string, n, min int) error {
	if n < min {
		return Invalid("%s is %d, want >= %d", name, n, min)
	}
	return nil
}
