package check

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

// timeZero is a deadline already in the past.
func timeZero() time.Time { return time.Now().Add(-time.Hour) }

func TestCanceledMatchesBothSentinels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx)
	if err == nil {
		t.Fatal("Canceled on canceled ctx returned nil")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error %v does not match ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not match context.Canceled", err)
	}
}

func TestCanceledDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), timeZero())
	defer cancel()
	err := Canceled(ctx)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline error %v should match ErrCanceled and DeadlineExceeded", err)
	}
}

func TestCanceledLiveContext(t *testing.T) {
	if err := Canceled(context.Background()); err != nil {
		t.Errorf("live context gave %v", err)
	}
}

func TestScreens(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		err  error
		bad  bool
	}{
		{"finite ok", Finite("x", 1.5), false},
		{"finite nan", Finite("x", nan), true},
		{"finite inf", Finite("x", math.Inf(1)), true},
		{"positive ok", Positive("x", 2), false},
		{"positive zero", Positive("x", 0), true},
		{"positive nan", Positive("x", nan), true},
		{"probvec ok", ProbVec("p", []float64{0.25, 0.75}), false},
		{"probvec empty", ProbVec("p", nil), true},
		{"probvec neg", ProbVec("p", []float64{-0.5, 1.5}), true},
		{"probvec sum", ProbVec("p", []float64{0.2, 0.2}), true},
		{"probvec nan", ProbVec("p", []float64{nan, 1}), true},
		{"substoch ok", SubStochasticRow("r", []float64{0.2, 0.3}), false},
		{"substoch over", SubStochasticRow("r", []float64{0.8, 0.4}), true},
		{"stoch ok", StochasticRow("r", []float64{0.5, 0.5}), false},
		{"stoch under", StochasticRow("r", []float64{0.5, 0.4}), true},
		{"positivevec bad", PositiveVec("mu", []float64{1, 0}), true},
		{"count ok", Count("n", 3, 1), false},
		{"count bad", Count("n", 0, 1), true},
	}
	for _, c := range cases {
		if c.bad && c.err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
		if !c.bad && c.err != nil {
			t.Errorf("%s: want nil, got %v", c.name, c.err)
		}
		if c.bad && !errors.Is(c.err, ErrInvalidModel) {
			t.Errorf("%s: %v does not match ErrInvalidModel", c.name, c.err)
		}
	}
}

func TestSentinelsDistinct(t *testing.T) {
	sentinels := []error{
		ErrInvalidModel, ErrSingular, ErrNotConverged,
		ErrNumeric, ErrCanceled, ErrOverloaded, ErrDegraded,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if got := errors.Is(a, b); got != (i == j) {
				t.Errorf("errors.Is(%v, %v) = %v", a, b, got)
			}
		}
	}
}

func TestOverloadedAndDegradedWrap(t *testing.T) {
	over := fmt.Errorf("queue full (8 waiting): %w", ErrOverloaded)
	if !errors.Is(over, ErrOverloaded) {
		t.Errorf("%v does not match ErrOverloaded", over)
	}
	if errors.Is(over, ErrCanceled) || errors.Is(over, ErrInvalidModel) {
		t.Errorf("%v matches an unrelated sentinel", over)
	}
	deg := fmt.Errorf("served bounds after exact tier failed: %w: %w", ErrDegraded, ErrSingular)
	if !errors.Is(deg, ErrDegraded) {
		t.Errorf("%v does not match ErrDegraded", deg)
	}
	if !errors.Is(deg, ErrSingular) {
		t.Errorf("%v lost its cause sentinel", deg)
	}
}
