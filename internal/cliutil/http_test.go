package cliutil

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"finwl/internal/obs"
)

// TestRequestIDPropagation: a context carrying an obs request ID
// stamps X-Request-Id on outgoing hops, so router → replica log lines
// correlate; a bare context sends no header.
func TestRequestIDPropagation(t *testing.T) {
	var got []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got = append(got, r.Header.Get("X-Request-Id"))
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	ctx := obs.WithRequestID(context.Background(), "req-deadbeef")
	if _, err := PostJSON(ctx, nil, ts.URL, map[string]int{"x": 1}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := GetJSON(context.Background(), nil, ts.URL, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("server saw %d requests, want 2", len(got))
	}
	if got[0] != "req-deadbeef" {
		t.Errorf("propagated X-Request-Id = %q, want req-deadbeef", got[0])
	}
	if got[1] != "" {
		t.Errorf("bare context sent X-Request-Id %q, want none", got[1])
	}
}

// TestNewJSONRequestHeaders: JSON bodies get a Content-Type; bodyless
// requests get neither body nor the header.
func TestNewJSONRequestHeaders(t *testing.T) {
	req, err := NewJSONRequest(context.Background(), http.MethodPost, "http://example/solve", map[string]int{"k": 3})
	if err != nil {
		t.Fatal(err)
	}
	if ct := req.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if req.Body == nil {
		t.Error("expected a body")
	}

	req, err = NewJSONRequest(context.Background(), http.MethodGet, "http://example/stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		t.Errorf("bodyless Content-Type = %q, want empty", ct)
	}
	if req.Body != nil {
		t.Error("unexpected body on GET")
	}
}

// TestDoJSONErrorSnippet: non-2xx responses surface status and body
// snippet; the status is returned either way so callers can branch.
func TestDoJSONErrorSnippet(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full","code":"overloaded"}`))
	}))
	defer ts.Close()

	status, err := GetJSON(context.Background(), nil, ts.URL, nil)
	if status != http.StatusTooManyRequests {
		t.Errorf("status = %d, want 429", status)
	}
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Errorf("err = %v, want body snippet", err)
	}
}

// TestDefaultClientConfigured: the shared client is pooled and
// bounded — the properties the fleet router relies on.
func TestDefaultClientConfigured(t *testing.T) {
	if DefaultClient.Timeout <= 0 {
		t.Error("DefaultClient has no timeout")
	}
	tr, ok := DefaultClient.Transport.(*http.Transport)
	if !ok {
		t.Fatalf("DefaultClient transport is %T", DefaultClient.Transport)
	}
	if tr.MaxIdleConnsPerHost < 2 {
		t.Errorf("MaxIdleConnsPerHost = %d; router hops need connection reuse", tr.MaxIdleConnsPerHost)
	}
}
