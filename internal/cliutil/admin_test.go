package cliutil

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"finwl/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestStartAdminDisabled(t *testing.T) {
	a, err := StartAdmin("")
	if err != nil || a != nil {
		t.Fatalf("StartAdmin(\"\") = %v, %v, want nil, nil", a, err)
	}
	// Nil-receiver methods must be safe so callers can wire the flag
	// through unconditionally.
	if a.Addr() != nil {
		t.Errorf("nil Admin Addr = %v, want nil", a.Addr())
	}
	if err := a.Close(); err != nil {
		t.Errorf("nil Admin Close = %v, want nil", err)
	}
}

func TestStartAdminEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("finwl_admin_test_total", "test counter").Inc()

	a, err := StartAdmin("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("StartAdmin: %v", err)
	}
	defer a.Close()
	base := "http://" + a.Addr().String()

	status, body := get(t, base+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status = %d", status)
	}
	if !strings.Contains(body, "finwl_admin_test_total 1") {
		t.Errorf("/metrics missing counter sample:\n%s", body)
	}

	status, body = get(t, base+"/debug/vars")
	if status != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", status)
	}
	if !strings.Contains(body, "cmdline") {
		t.Errorf("/debug/vars missing expvar builtin:\n%.200s", body)
	}

	status, _ = get(t, base+"/debug/pprof/")
	if status != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", status)
	}
}
