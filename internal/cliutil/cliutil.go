// Package cliutil carries the shared plumbing of the cmd/ binaries:
// the run()-returns-error main wrapper with distinct exit codes, the
// -timeout flag's context construction, and interrupt wiring. Every
// command exits 0 on success, 1 on a runtime failure (solver error,
// I/O, timeout, interrupt), and 2 on command-line misuse — with a
// one-line message on stderr, never a panic or a stack trace.
package cliutil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"finwl/internal/check"
)

// UsageError marks command-line misuse; Main exits 2 for it.
type UsageError struct{ Msg string }

func (e *UsageError) Error() string { return e.Msg }

// Usagef builds a UsageError with a formatted message.
func Usagef(format string, args ...any) error {
	return &UsageError{Msg: fmt.Sprintf(format, args...)}
}

// Main runs run under a context honoring timeout (0 = no limit) and
// SIGINT/SIGTERM, and converts its error into the exit-code contract
// above. A first signal cancels the context, so Ctrl-C takes the same
// typed check.ErrCanceled path as -timeout and exits 1 after cleanup;
// a second signal falls through to the runtime's default hard kill.
// Main does not return on failure.
func Main(name string, timeout time.Duration, run func(ctx context.Context) error) {
	ctx, cancel := context.WithCancel(context.Background())
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
		signal.Stop(sig) // a second signal kills the process
	}()
	err := run(ctx)
	cancel()
	signal.Stop(sig)
	if err == nil {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	var ue *UsageError
	if errors.As(err, &ue) {
		os.Exit(2)
	}
	os.Exit(1)
}

// Await runs fn concurrently and returns its result, or a typed
// check.ErrCanceled-matching error if the deadline or an interrupt
// lands first. It exists to put legacy synchronous call trees (which
// cannot observe ctx themselves) under the -timeout contract: an
// abandoned fn keeps running, but Main is about to exit the process
// anyway.
func Await[T any](ctx context.Context, fn func() (T, error)) (T, error) {
	type result struct {
		v   T
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := fn()
		ch <- result{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-ctx.Done():
		var zero T
		return zero, check.Canceled(ctx)
	}
}
