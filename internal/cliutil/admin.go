package cliutil

import (
	"expvar"
	"flag"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"finwl/internal/obs"
)

// MetricsAddrFlag registers the -metrics-addr flag every long-running
// command shares; pass its value to StartAdmin after flag.Parse.
func MetricsAddrFlag() *string {
	return flag.String("metrics-addr", "",
		"admin listener address for /metrics, /debug/vars and /debug/pprof (empty disables)")
}

// Admin is the opt-in operational listener shared by the long-running
// commands (-metrics-addr): GET /metrics in Prometheus text form,
// /debug/vars (expvar), and the /debug/pprof profiling surface. It is
// a separate listener from any service traffic so profiling and
// scraping can be firewalled independently — bind it to loopback (the
// default commands use) unless the network is trusted; pprof exposes
// heap contents and CPU profiles to anyone who can reach it.
type Admin struct {
	ln  net.Listener
	srv *http.Server
	err chan error
}

// StartAdmin binds addr and serves the admin endpoints from the given
// registries until Close. An empty addr disables the listener and
// returns (nil, nil); a nil *Admin's methods are no-ops, so callers
// can wire the flag through unconditionally.
func StartAdmin(addr string, regs ...*obs.Registry) (*Admin, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	obs.PublishExpvar("finwl_metrics", regs...)

	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(regs...))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	a := &Admin{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		},
		err: make(chan error, 1),
	}
	go func() { a.err <- a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the bound address, or nil when the listener is
// disabled.
func (a *Admin) Addr() net.Addr {
	if a == nil {
		return nil
	}
	return a.ln.Addr()
}

// Close stops the admin listener and waits for Serve to return.
func (a *Admin) Close() error {
	if a == nil {
		return nil
	}
	err := a.srv.Close()
	<-a.err
	return err
}
