package cliutil

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// PostJSON sends in as a JSON body to url and decodes the 2xx response
// into out (skipped when out is nil). A non-2xx status becomes an
// error carrying the status and a snippet of the body — finwld's typed
// error JSON is short, so the snippet is usually the whole story. The
// HTTP status is returned either way so callers can distinguish, e.g.,
// a 429 from a 503.
func PostJSON(ctx context.Context, client *http.Client, url string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, fmt.Errorf("cliutil: encode request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("cliutil: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(client, req, out)
}

// GetJSON fetches url and decodes the 2xx JSON response into out, with
// the same non-2xx error shape as PostJSON.
func GetJSON(ctx context.Context, client *http.Client, url string, out any) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, fmt.Errorf("cliutil: build request: %w", err)
	}
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) (int, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, fmt.Errorf("cliutil: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		snippet := strings.TrimSpace(string(raw))
		if len(snippet) > 256 {
			snippet = snippet[:256] + "..."
		}
		return resp.StatusCode, fmt.Errorf("cliutil: %s: HTTP %d: %s", req.URL, resp.StatusCode, snippet)
	}
	if out == nil {
		return resp.StatusCode, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return resp.StatusCode, fmt.Errorf("cliutil: decode response: %w", err)
	}
	return resp.StatusCode, nil
}
