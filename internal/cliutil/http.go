package cliutil

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"finwl/internal/obs"
)

// DefaultClient is the HTTP client the cmd/ binaries and the fleet
// router share when the caller passes nil: connection-pooled (so a
// router hop reuses its replica connections instead of paying a
// handshake per request) and bounded by a default timeout —
// http.DefaultClient has none, and a single unreachable peer could
// otherwise hang a hop forever. Per-request deadlines still come from
// the context; the client timeout is the outer safety net, sized
// above serve's 60s MaxTimeout default.
var DefaultClient = &http.Client{
	Timeout: 2 * time.Minute,
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          128,
		MaxIdleConnsPerHost:   32,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: time.Second,
	},
}

// NewJSONRequest builds an HTTP request carrying in as a JSON body
// (nil for bodyless methods), with Content-Type set and — when ctx
// carries an obs request ID — the X-Request-Id header propagated, so
// a hop made on behalf of an inbound request correlates router →
// replica in both sides' structured logs.
func NewJSONRequest(ctx context.Context, method, url string, in any) (*http.Request, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("cliutil: encode request: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, fmt.Errorf("cliutil: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := obs.RequestIDFrom(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	return req, nil
}

// PostJSON sends in as a JSON body to url and decodes the 2xx response
// into out (skipped when out is nil). A non-2xx status becomes an
// error carrying the status and a snippet of the body — finwld's typed
// error JSON is short, so the snippet is usually the whole story. The
// HTTP status is returned either way so callers can distinguish, e.g.,
// a 429 from a 503. A nil client uses DefaultClient.
func PostJSON(ctx context.Context, client *http.Client, url string, in, out any) (int, error) {
	req, err := NewJSONRequest(ctx, http.MethodPost, url, in)
	if err != nil {
		return 0, err
	}
	return doJSON(client, req, out)
}

// GetJSON fetches url and decodes the 2xx JSON response into out, with
// the same non-2xx error shape as PostJSON. A nil client uses
// DefaultClient.
func GetJSON(ctx context.Context, client *http.Client, url string, out any) (int, error) {
	req, err := NewJSONRequest(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	return doJSON(client, req, out)
}

func doJSON(client *http.Client, req *http.Request, out any) (int, error) {
	if client == nil {
		client = DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, fmt.Errorf("cliutil: read response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		snippet := strings.TrimSpace(string(raw))
		if len(snippet) > 256 {
			snippet = snippet[:256] + "..."
		}
		return resp.StatusCode, fmt.Errorf("cliutil: %s: HTTP %d: %s", req.URL, resp.StatusCode, snippet)
	}
	if out == nil {
		return resp.StatusCode, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return resp.StatusCode, fmt.Errorf("cliutil: decode response: %w", err)
	}
	return resp.StatusCode, nil
}
