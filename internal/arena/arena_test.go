package arena

import (
	"sync"
	"testing"
)

type ws struct{ buf []int }

func TestPoolReusesWorkspaces(t *testing.T) {
	made := 0
	p := Pool[ws]{New: func() *ws { made++; return &ws{} }}
	a := p.Get()
	a.buf = make([]int, 64)
	p.Put(a)
	b := p.Get()
	if b != a {
		// sync.Pool may drop entries under GC pressure; a fresh object
		// is legal, but in a quiet single-goroutine test reuse is the
		// overwhelmingly expected path — flag it so a plumbing bug
		// (Put discarding, Get always constructing) cannot hide.
		t.Logf("pool returned a fresh workspace (made=%d)", made)
	}
	if made < 1 || made > 2 {
		t.Fatalf("constructor ran %d times, want 1 (or 2 under GC)", made)
	}
}

func TestPoolConcurrentSafety(t *testing.T) {
	p := Pool[ws]{New: func() *ws { return &ws{} }}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w := p.Get()
				w.buf = Ints(w.buf, 32)
				w.buf[7] = i
				p.Put(w)
			}
		}()
	}
	wg.Wait()
}

func TestIntsSemantics(t *testing.T) {
	// Growth: too-small buffers are replaced.
	small := make([]int, 2)
	grown := Ints(small, 10)
	if len(grown) != 10 {
		t.Fatalf("len = %d, want 10", len(grown))
	}
	// Reuse: a large-enough buffer keeps its storage and is zeroed.
	big := make([]int, 16)
	for i := range big {
		big[i] = 9
	}
	reused := Ints(big, 8)
	if len(reused) != 8 || cap(reused) != 16 {
		t.Fatalf("len/cap = %d/%d, want 8/16", len(reused), cap(reused))
	}
	if &reused[0] != &big[0] {
		t.Fatal("reuse path reallocated")
	}
	for i, v := range reused {
		if v != 0 {
			t.Fatalf("slot %d not zeroed: %d", i, v)
		}
	}
	if got := Ints(nil, 0); len(got) != 0 {
		t.Fatalf("Ints(nil, 0) len = %d", len(got))
	}
}

func TestFloatsSemantics(t *testing.T) {
	big := make([]float64, 12)
	for i := range big {
		big[i] = 3.5
	}
	reused := Floats(big, 5)
	if len(reused) != 5 || &reused[0] != &big[0] {
		t.Fatal("Floats did not reuse a large-enough buffer")
	}
	for _, v := range reused {
		if v != 0 {
			t.Fatal("Floats did not zero the reused prefix")
		}
	}
	if grown := Floats(reused, 40); len(grown) != 40 {
		t.Fatalf("growth len = %d, want 40", len(grown))
	}
}
