// Package arena provides pooled, size-elastic scratch workspaces for
// the construction hot paths. The chain builder allocates the same
// family of buffers for every level it generates — state scratch
// vectors, CSR row builders — and a naive build pays for them again at
// each level and each chain. An arena.Pool keeps one workspace object
// per concurrent builder and hands it back for the next level (and the
// next chain), so steady-state construction allocates only what
// escapes into the result.
//
// The helpers deliberately do not hold memory themselves: a Pool is a
// typed veneer over sync.Pool, so workspaces are still reclaimable
// under memory pressure and safe across goroutines.
package arena

import "sync"

// Pool is a typed sync.Pool of workspace objects. The zero value with
// New set is ready to use.
type Pool[T any] struct {
	// New constructs a fresh workspace when the pool is empty.
	New func() *T
	p   sync.Pool
}

// Get returns a pooled workspace, constructing one if none is idle.
func (p *Pool[T]) Get() *T {
	if v := p.p.Get(); v != nil {
		return v.(*T)
	}
	return p.New()
}

// Put returns a workspace for reuse. The caller must not retain it.
func (p *Pool[T]) Put(x *T) { p.p.Put(x) }

// Ints returns a zeroed []int of length n, reusing buf's storage when
// it is large enough. The idiom is `ws.buf = arena.Ints(ws.buf, n)`.
func Ints(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Floats is Ints for []float64.
func Floats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}
