package sparse

import (
	"math/rand"
	"testing"
)

func benchP(n int, nnzPerRow int) *CSR {
	r := rand.New(rand.NewSource(5))
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		total := 0.95
		for k := 0; k < nnzPerRow; k++ {
			b.Add(i, r.Intn(n), total/float64(nnzPerRow))
		}
	}
	return b.Build()
}

func BenchmarkVecMul5000(b *testing.B) {
	p := benchP(5000, 20)
	x := make([]float64, 5000)
	for i := range x {
		x[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.VecMul(x)
	}
}

func BenchmarkBiCGSTAB5000(b *testing.B) {
	p := benchP(5000, 20)
	rhs := make([]float64, 5000)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveIMinusP(p, rhs, false, Options{Tol: 1e-10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = benchP(5000, 20)
	}
}
