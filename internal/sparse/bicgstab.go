package sparse

import (
	"fmt"
	"math"

	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/obs"
)

// Iterative-solver metrics: iteration volume is the paper-level cost
// driver of the sparse path, restarts flag numerically marginal
// systems before they become errors, and dense fallbacks mark systems
// the iterative path gave up on entirely.
var (
	mIterations = obs.Default.Counter("finwl_bicgstab_iterations_total",
		"BiCGSTAB iterations across all sweeps.")
	mRestarts = obs.Default.Counter("finwl_bicgstab_restarts_total",
		"BiCGSTAB breakdown restarts (fresh sweep from the current iterate).")
	mDenseFallbacks = obs.Default.Counter("finwl_bicgstab_dense_fallbacks_total",
		"Iterative solves that fell back to the dense robust LU ladder.")
)

// ErrNoConvergence is returned when an iterative solve fails to reach
// the requested tolerance within its iteration budget. It is the same
// value as check.ErrNotConverged, so callers can match either
// sentinel.
var ErrNoConvergence = check.ErrNotConverged

// DenseFallbackLimit is the largest system the iterative path will
// densify when BiCGSTAB fails: below it a dense robust LU solve is a
// few hundred megabytes at worst and always terminates, above it the
// typed iterative error is returned instead.
const DenseFallbackLimit = 4096

// Options controls the iterative solvers.
type Options struct {
	Tol     float64   // relative residual target; default 1e-12
	MaxIter int       // default 10·n
	Precond []float64 // optional Jacobi preconditioner: 1/diag(A)
}

func (o Options) withDefaults(n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 200 {
			o.MaxIter = 200
		}
	}
	return o
}

// BiCGSTAB solves A·x = b where A is given as a matrix-vector product
// callback, using the (optionally Jacobi-preconditioned) stabilized
// bi-conjugate gradient method. It suits the transient solver's
// systems (I−P), which are nonsymmetric M-matrix-like and well
// conditioned after Jacobi scaling.
//
// Breakdowns (ρ = 0, ω = 0, or a NaN anywhere in the recurrence) no
// longer abort the solve outright: the method restarts once from its
// current iterate with a fresh residual, and only if the restarted
// sweep also stalls does it return a typed error —
// check.ErrNotConverged with the final relative residual in the
// message.
func BiCGSTAB(mulVec func([]float64) []float64, b []float64, opts Options) ([]float64, error) {
	n := len(b)
	opts = opts.withDefaults(n)
	for _, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("sparse: non-finite right-hand side: %w", check.ErrNumeric)
		}
	}
	apply := func(x []float64) []float64 {
		if opts.Precond == nil {
			return mulVec(x)
		}
		// Right preconditioning: solve A·D⁻¹·y = b, x = D⁻¹·y.
		scaled := make([]float64, n)
		for i := range scaled {
			scaled[i] = x[i] * opts.Precond[i]
		}
		return mulVec(scaled)
	}

	x := make([]float64, n)
	normB := matrix.Norm2(b)
	if normB == 0 {
		return x, nil
	}
	const restarts = 1
	var relres float64
	for attempt := 0; attempt <= restarts; attempt++ {
		if attempt > 0 {
			mRestarts.Inc()
		}
		var ok bool
		relres, ok = bicgstabSweep(apply, b, x, normB, opts)
		if ok {
			return unprecondition(x, opts), nil
		}
		if !isFinite(relres) {
			// The iterate itself degenerated; restarting from it would
			// propagate NaNs, so start the retry from zero again.
			for i := range x {
				x[i] = 0
			}
		}
	}
	return nil, fmt.Errorf("sparse: BiCGSTAB stalled at relative residual %.3g after %d iterations and a restart: %w",
		relres, opts.MaxIter, ErrNoConvergence)
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// bicgstabSweep runs one BiCGSTAB sweep from the current iterate x
// (updated in place, in the preconditioned basis) and reports the
// final relative residual and whether the tolerance was met. A
// breakdown ends the sweep with ok = false so the caller can restart.
func bicgstabSweep(apply func([]float64) []float64, b, x []float64, normB float64, opts Options) (relres float64, ok bool) {
	n := len(b)
	r := apply(x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	relres = matrix.Norm2(r) / normB
	if relres < opts.Tol {
		return relres, true
	}
	rHat := append([]float64(nil), r...)
	var (
		rho, alpha, omega float64 = 1, 1, 1
		v, p                      = make([]float64, n), make([]float64, n)
	)
	for iter := 0; iter < opts.MaxIter; iter++ {
		mIterations.Inc()
		rhoNext := matrix.Dot(rHat, r)
		if rhoNext == 0 || !isFinite(rhoNext) {
			// Breakdown: re-anchor the shadow residual and retry once
			// inside this sweep before giving up to the outer restart.
			copy(rHat, r)
			rhoNext = matrix.Dot(rHat, r)
			if rhoNext == 0 || !isFinite(rhoNext) {
				return relres, false
			}
		}
		beta := (rhoNext / rho) * (alpha / omega)
		rho = rhoNext
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		v = apply(p)
		denom := matrix.Dot(rHat, v)
		if denom == 0 || !isFinite(denom) {
			return relres, false
		}
		alpha = rho / denom
		s := make([]float64, n)
		for i := 0; i < n; i++ {
			s[i] = r[i] - alpha*v[i]
		}
		if sres := matrix.Norm2(s) / normB; sres < opts.Tol {
			for i := 0; i < n; i++ {
				x[i] += alpha * p[i]
			}
			return sres, true
		}
		t := apply(s)
		tt := matrix.Dot(t, t)
		if tt == 0 || !isFinite(tt) {
			for i := 0; i < n; i++ {
				x[i] += alpha * p[i]
			}
			copy(r, s)
			return matrix.Norm2(s) / normB, false
		}
		omega = matrix.Dot(t, s) / tt
		for i := 0; i < n; i++ {
			x[i] += alpha*p[i] + omega*s[i]
			r[i] = s[i] - omega*t[i]
		}
		relres = matrix.Norm2(r) / normB
		if relres < opts.Tol {
			return relres, true
		}
		if omega == 0 || !isFinite(omega) || !isFinite(relres) {
			return relres, false
		}
	}
	return relres, false
}

func unprecondition(x []float64, opts Options) []float64 {
	if opts.Precond == nil {
		return x
	}
	for i := range x {
		x[i] *= opts.Precond[i]
	}
	return x
}

// SolveIMinusP solves x·(I−P) = b (left system) or (I−P)·x = b (right
// system) for a substochastic CSR matrix P, with Jacobi
// preconditioning derived from the system's diagonal.
//
// When the iterative solve fails — breakdown plus a failed restart —
// and the system is no larger than DenseFallbackLimit, the system is
// densified and handed to the dense robust LU ladder (refinement,
// equilibrated retry) as a last resort. Only if that also fails does
// the caller see an error, and it is always errors.Is-matchable
// against the check sentinels.
func SolveIMinusP(p *CSR, b []float64, left bool, opts Options) ([]float64, error) {
	n := p.Rows()
	diag := p.Diagonal()
	pre := make([]float64, n)
	for i := range pre {
		d := 1 - diag[i]
		if d <= 0 || math.IsNaN(d) {
			d = 1
		}
		pre[i] = 1 / d
	}
	opts.Precond = pre
	mul := func(x []float64) []float64 {
		var px []float64
		if left {
			px = p.VecMul(x)
		} else {
			px = p.MulVec(x)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = x[i] - px[i]
		}
		return out
	}
	x, err := BiCGSTAB(mul, b, opts)
	if err == nil {
		return x, nil
	}
	if p.Rows() != p.Cols() || n > DenseFallbackLimit {
		return nil, err
	}
	mDenseFallbacks.Inc()
	a := matrix.Identity(n).Sub(p.Dense())
	var (
		xd   []float64
		derr error
	)
	if left {
		xd, _, derr = matrix.SolveLeftRobust(a, b)
	} else {
		xd, _, derr = matrix.SolveRobust(a, b)
	}
	if derr != nil {
		return nil, fmt.Errorf("sparse: iterative solve failed (%v); dense fallback: %w", err, derr)
	}
	return xd, nil
}
