package sparse

import (
	"errors"
	"math"

	"finwl/internal/matrix"
)

// ErrNoConvergence is returned when an iterative solve fails to reach
// the requested tolerance within its iteration budget.
var ErrNoConvergence = errors.New("sparse: iterative solve did not converge")

// Options controls the iterative solvers.
type Options struct {
	Tol     float64   // relative residual target; default 1e-12
	MaxIter int       // default 10·n
	Precond []float64 // optional Jacobi preconditioner: 1/diag(A)
}

func (o Options) withDefaults(n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-12
	}
	if o.MaxIter == 0 {
		o.MaxIter = 10 * n
		if o.MaxIter < 200 {
			o.MaxIter = 200
		}
	}
	return o
}

// BiCGSTAB solves A·x = b where A is given as a matrix-vector product
// callback, using the (optionally Jacobi-preconditioned)
// stabilized bi-conjugate gradient method. It suits the transient
// solver's systems (I−P), which are nonsymmetric M-matrix-like and
// well conditioned after Jacobi scaling.
func BiCGSTAB(mulVec func([]float64) []float64, b []float64, opts Options) ([]float64, error) {
	n := len(b)
	opts = opts.withDefaults(n)
	apply := func(x []float64) []float64 {
		if opts.Precond == nil {
			return mulVec(x)
		}
		// Right preconditioning: solve A·D⁻¹·y = b, x = D⁻¹·y.
		scaled := make([]float64, n)
		for i := range scaled {
			scaled[i] = x[i] * opts.Precond[i]
		}
		return mulVec(scaled)
	}

	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b − A·0
	rHat := append([]float64(nil), r...)
	normB := matrix.Norm2(b)
	if normB == 0 {
		return x, nil
	}
	var (
		rho, alpha, omega float64 = 1, 1, 1
		v, p                      = make([]float64, n), make([]float64, n)
	)
	for iter := 0; iter < opts.MaxIter; iter++ {
		rhoNext := matrix.Dot(rHat, r)
		if rhoNext == 0 {
			// Breakdown: restart with the current residual.
			copy(rHat, r)
			rhoNext = matrix.Dot(rHat, r)
			if rhoNext == 0 {
				break
			}
		}
		beta := (rhoNext / rho) * (alpha / omega)
		rho = rhoNext
		for i := 0; i < n; i++ {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		v = apply(p)
		alpha = rho / matrix.Dot(rHat, v)
		s := make([]float64, n)
		for i := 0; i < n; i++ {
			s[i] = r[i] - alpha*v[i]
		}
		if matrix.Norm2(s)/normB < opts.Tol {
			for i := 0; i < n; i++ {
				x[i] += alpha * p[i]
			}
			return unprecondition(x, opts), nil
		}
		t := apply(s)
		tt := matrix.Dot(t, t)
		if tt == 0 {
			return nil, ErrNoConvergence
		}
		omega = matrix.Dot(t, s) / tt
		for i := 0; i < n; i++ {
			x[i] += alpha*p[i] + omega*s[i]
			r[i] = s[i] - omega*t[i]
		}
		if matrix.Norm2(r)/normB < opts.Tol {
			return unprecondition(x, opts), nil
		}
		if omega == 0 || math.IsNaN(omega) {
			return nil, ErrNoConvergence
		}
	}
	return nil, ErrNoConvergence
}

func unprecondition(x []float64, opts Options) []float64 {
	if opts.Precond == nil {
		return x
	}
	for i := range x {
		x[i] *= opts.Precond[i]
	}
	return x
}

// SolveIMinusP solves x·(I−P) = b (left system) or (I−P)·x = b (right
// system) for a substochastic CSR matrix P, with Jacobi
// preconditioning derived from the system's diagonal.
func SolveIMinusP(p *CSR, b []float64, left bool, opts Options) ([]float64, error) {
	n := p.Rows()
	diag := p.Diagonal()
	pre := make([]float64, n)
	for i := range pre {
		d := 1 - diag[i]
		if d <= 0 {
			d = 1
		}
		pre[i] = 1 / d
	}
	opts.Precond = pre
	mul := func(x []float64) []float64 {
		var px []float64
		if left {
			px = p.VecMul(x)
		} else {
			px = p.MulVec(x)
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = x[i] - px[i]
		}
		return out
	}
	return BiCGSTAB(mul, b, opts)
}
