// Package sparse provides compressed sparse row (CSR) matrices and
// the iterative solvers the large-population transient solver needs.
// The level matrices P_k, Q_k, R_k are extremely sparse — each state
// has one outgoing entry per active service phase times routing
// fan-out — so beyond a few thousand states the dense LU path in
// internal/matrix stops being viable. This package keeps the same
// left/right solve operations available at scale: matrix-vector
// products over CSR plus a preconditioned BiCGSTAB.
package sparse

import (
	"fmt"
	"sort"

	"finwl/internal/matrix"
)

// CSR is an immutable compressed-sparse-row matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// Builder accumulates coordinate-format entries; duplicates are
// summed at Build time.
type Builder struct {
	rows, cols int
	is, js     []int
	vs         []float64
}

// NewBuilder returns a Builder for a rows×cols matrix.
func NewBuilder(rows, cols int) *Builder {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: invalid dimensions %dx%d", rows, cols))
	}
	return &Builder{rows: rows, cols: cols}
}

// Add accumulates v at (i, j).
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for %dx%d", i, j, b.rows, b.cols))
	}
	if v == 0 {
		return
	}
	b.is = append(b.is, i)
	b.js = append(b.js, j)
	b.vs = append(b.vs, v)
}

// Build converts the accumulated entries to CSR, summing duplicates.
func (b *Builder) Build() *CSR {
	n := len(b.is)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ox, oy := order[x], order[y]
		if b.is[ox] != b.is[oy] {
			return b.is[ox] < b.is[oy]
		}
		return b.js[ox] < b.js[oy]
	})
	m := &CSR{rows: b.rows, cols: b.cols, rowPtr: make([]int, b.rows+1)}
	lastI, lastJ := -1, -1
	for _, o := range order {
		i, j, v := b.is[o], b.js[o], b.vs[o]
		if i == lastI && j == lastJ {
			m.vals[len(m.vals)-1] += v
			continue
		}
		m.colIdx = append(m.colIdx, j)
		m.vals = append(m.vals, v)
		lastI, lastJ = i, j
		m.rowPtr[i+1]++
	}
	for i := 0; i < b.rows; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m
}

// Rows returns the row count.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the column count.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.vals) }

// At returns the value at (i, j); O(log nnz(row i)).
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	idx := sort.SearchInts(m.colIdx[lo:hi], j)
	if lo+idx < hi && m.colIdx[lo+idx] == j {
		return m.vals[lo+idx]
	}
	return 0
}

// MulVec returns A·x.
func (m *CSR) MulVec(x []float64) []float64 {
	return m.MulVecInto(make([]float64, m.rows), x)
}

// MulVecInto computes A·x into dst and returns dst. dst must have
// length Rows and must not alias x. It performs no allocations.
func (m *CSR) MulVecInto(dst, x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("sparse: MulVec length %d, want %d", len(x), m.cols))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("sparse: MulVecInto dst length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		var s float64
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			s += m.vals[p] * x[m.colIdx[p]]
		}
		dst[i] = s
	}
	return dst
}

// VecMul returns x·A (x treated as a row vector).
func (m *CSR) VecMul(x []float64) []float64 {
	return m.VecMulInto(make([]float64, m.cols), x)
}

// VecMulInto computes x·A into dst and returns dst. dst must have
// length Cols and must not alias x. It performs no allocations.
func (m *CSR) VecMulInto(dst, x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("sparse: VecMul length %d, want %d", len(x), m.rows))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("sparse: VecMulInto dst length %d, want %d", len(dst), m.cols))
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			dst[m.colIdx[p]] += xv * m.vals[p]
		}
	}
	return dst
}

// IMinusDense returns I − A as a dense matrix: the per-level system
// A_k = I − P_k in the form the dense factorization ladder consumes.
// The entry values are identical to matrix.Identity(n).Sub(dense P):
// absent entries stay at the exact identity values and stored entries
// are the same one subtraction.
func (m *CSR) IMinusDense() *matrix.Matrix {
	if m.rows != m.cols {
		panic(fmt.Sprintf("sparse: IMinusDense requires a square matrix, got %dx%d", m.rows, m.cols))
	}
	d := matrix.Identity(m.rows)
	for i := 0; i < m.rows; i++ {
		row := d.RawRow(i)
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			row[m.colIdx[p]] -= m.vals[p]
		}
	}
	return d
}

// RowSums returns the vector of row sums.
func (m *CSR) RowSums() []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			out[i] += m.vals[p]
		}
	}
	return out
}

// Diagonal returns the main diagonal as a slice.
func (m *CSR) Diagonal() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.At(i, i)
	}
	return out
}

// Transpose returns Aᵀ as a new CSR.
func (m *CSR) Transpose() *CSR {
	b := NewBuilder(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			b.Add(m.colIdx[p], i, m.vals[p])
		}
	}
	return b.Build()
}

// Dense expands to a dense matrix (for tests and small systems).
func (m *CSR) Dense() *matrix.Matrix {
	d := matrix.New(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for p := m.rowPtr[i]; p < m.rowPtr[i+1]; p++ {
			d.Set(i, m.colIdx[p], m.vals[p])
		}
	}
	return d
}

// FromDense converts a dense matrix, dropping exact zeros.
func FromDense(d *matrix.Matrix) *CSR {
	b := NewBuilder(d.Rows(), d.Cols())
	for i := 0; i < d.Rows(); i++ {
		row := d.RawRow(i)
		for j, v := range row {
			if v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}
