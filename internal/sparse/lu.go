package sparse

import (
	"errors"
	"fmt"
	"math"

	"finwl/internal/matrix"
)

// The level systems A_k = I − P_k are weakly row-diagonally-dominant
// M-matrices: P_k is substochastic (non-negative entries, row sums
// ≤ 1), so A_k has a unit-bounded diagonal and non-positive
// off-diagonals whose magnitudes the diagonal dominates. Gaussian
// elimination preserves that structure, which is what makes an LU
// without pivoting stable here — the property the dense path buys with
// partial pivoting. FactorIMinusP checks the precondition explicitly
// and refuses anything else, so a caller can always fall back to the
// pivoted dense ladder.
var (
	// ErrNotSubstochastic reports a matrix outside the factorization's
	// stability domain (negative, non-finite, or row sums above one).
	ErrNotSubstochastic = errors.New("sparse: matrix is not substochastic")
	// ErrFill reports a factorization abandoned because fill-in passed
	// the point where the dense path is the better tool.
	ErrFill = errors.New("sparse: LU fill-in exceeds sparse budget")
)

// LU is a sparse LU factorization of A = I − P without pivoting:
// A = L·U with L unit lower triangular and U upper triangular, both
// stored by rows. Like the dense matrix.LU it serves right solves
// (A·x = b) and left solves (x·A = b) from one factorization, which is
// all the transient solver needs per level.
type LU struct {
	n int
	// L's strictly lower part by rows; the unit diagonal is implicit.
	lp []int
	li []int
	lx []float64
	// U's strictly upper part by rows, plus its diagonal.
	up []int
	ui []int
	ux []float64
	ud []float64

	anorm float64 // ‖A‖₁, for Cond1Est
}

// FactorIMinusP factors A = I − P for a square substochastic CSR
// matrix P. It returns ErrNotSubstochastic when P is outside the
// no-pivot stability domain, matrix.ErrSingular on an exactly zero
// pivot, and ErrFill when the factors densify past the budget where
// dense elimination wins; on any error the caller is expected to fall
// back to the dense ladder.
func FactorIMinusP(p *CSR) (*LU, error) {
	n := p.rows
	if p.cols != n {
		return nil, fmt.Errorf("sparse: FactorIMinusP requires a square matrix, got %dx%d", p.rows, p.cols)
	}
	// Validate the stability precondition and accumulate the column
	// absolute sums of A = I − P for the 1-norm in one pass.
	colAbs := make([]float64, n)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		var rowSum float64
		for q := p.rowPtr[i]; q < p.rowPtr[i+1]; q++ {
			v := p.vals[q]
			if !(v >= 0) { // negative or NaN
				return nil, ErrNotSubstochastic
			}
			rowSum += v
			if j := p.colIdx[q]; j == i {
				diag[i] = v
			} else {
				colAbs[j] += v
			}
		}
		if rowSum > 1+1e-9 {
			return nil, ErrNotSubstochastic
		}
	}
	var anorm float64
	for j := 0; j < n; j++ {
		if a := math.Abs(1-diag[j]) + colAbs[j]; a > anorm {
			anorm = a
		}
	}
	// Beyond a quarter of the dense entry count the blocked dense LU is
	// faster than chasing fill, so the sparse attempt resigns.
	budget := n * n / 4
	if min := 16*p.NNZ() + 4*n; budget < min {
		budget = min
	}
	if nn := n * n; budget > nn {
		budget = nn
	}

	// Pre-size each factor side near the fill budget's floor: growth by
	// doubling would land in the same ballpark anyway, but with a dozen
	// intermediate copies per side for the garbage collector to chase.
	est := 8*p.NNZ() + 2*n
	if est > budget {
		est = budget
	}
	f := &LU{
		n:     n,
		anorm: anorm,
		lp:    make([]int, n+1),
		up:    make([]int, n+1),
		ud:    make([]float64, n),
		li:    make([]int, 0, est),
		lx:    make([]float64, 0, est),
		ui:    make([]int, 0, est),
		ux:    make([]float64, 0, est),
	}
	// Row-wise (up-looking) elimination with a dense accumulator: row i
	// of A is scattered into w, rows k < i are applied in ascending
	// order (fill from step k lands strictly right of k, so a single
	// ascending scan of w sees every contribution), and the surviving
	// entries are gathered into L and U, re-zeroing w for the next row.
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = 1
		for q := p.rowPtr[i]; q < p.rowPtr[i+1]; q++ {
			w[p.colIdx[q]] -= p.vals[q]
		}
		for k := 0; k < i; k++ {
			piv := w[k]
			if piv == 0 {
				continue
			}
			m := piv / f.ud[k]
			w[k] = 0
			f.li = append(f.li, k)
			f.lx = append(f.lx, m)
			ui, ux := f.ui[f.up[k]:f.up[k+1]], f.ux[f.up[k]:f.up[k+1]]
			for q, j := range ui {
				w[j] -= m * ux[q]
			}
		}
		f.lp[i+1] = len(f.lx)
		uii := w[i]
		w[i] = 0
		if uii == 0 {
			return nil, matrix.ErrSingular
		}
		f.ud[i] = uii
		for j := i + 1; j < n; j++ {
			if v := w[j]; v != 0 {
				f.ui = append(f.ui, j)
				f.ux = append(f.ux, v)
				w[j] = 0
			}
		}
		f.up[i+1] = len(f.ux)
		if len(f.lx)+len(f.ux) > budget {
			return nil, ErrFill
		}
	}
	return f, nil
}

// N returns the dimension of the factored matrix.
func (f *LU) N() int { return f.n }

// NNZ returns the stored entry count of L and U combined (including
// U's diagonal).
func (f *LU) NNZ() int { return len(f.lx) + len(f.ux) + f.n }

// Solve solves A·x = b and returns x. b is not modified.
func (f *LU) Solve(b []float64) []float64 {
	return f.SolveInto(make([]float64, f.n), b)
}

// SolveInto solves A·x = b into dst and returns dst. dst must have
// length N; it may alias b. It performs no allocations.
func (f *LU) SolveInto(dst, b []float64) []float64 {
	n := f.n
	if len(b) != n {
		panic(fmt.Sprintf("sparse: Solve length %d, want %d", len(b), n))
	}
	if len(dst) != n {
		panic(fmt.Sprintf("sparse: SolveInto dst length %d, want %d", len(dst), n))
	}
	x := dst
	if &x[0] != &b[0] {
		copy(x, b)
	}
	// Forward substitution with unit lower triangular L.
	for i := 0; i < n; i++ {
		s := x[i]
		li, lx := f.li[f.lp[i]:f.lp[i+1]], f.lx[f.lp[i]:f.lp[i+1]]
		for q, j := range li {
			s -= lx[q] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		ui, ux := f.ui[f.up[i]:f.up[i+1]], f.ux[f.up[i]:f.up[i+1]]
		for q, j := range ui {
			s -= ux[q] * x[j]
		}
		x[i] = s / f.ud[i]
	}
	return x
}

// SolveLeft solves x·A = b and returns x. b is not modified.
func (f *LU) SolveLeft(b []float64) []float64 {
	return f.SolveLeftInto(make([]float64, f.n), b)
}

// SolveLeftInto solves x·A = b into dst and returns dst. dst must
// have length N; it may alias b. It performs no allocations.
//
// Aᵀ = Uᵀ·Lᵀ, and both transposed solves run in scatter form off the
// row-stored factors: Uᵀ (lower triangular) forward with each finished
// component pushed into the rows to its right, Lᵀ (unit upper
// triangular) backward the same way.
func (f *LU) SolveLeftInto(dst, b []float64) []float64 {
	n := f.n
	if len(b) != n {
		panic(fmt.Sprintf("sparse: SolveLeft length %d, want %d", len(b), n))
	}
	if len(dst) != n {
		panic(fmt.Sprintf("sparse: SolveLeftInto dst length %d, want %d", len(dst), n))
	}
	z := dst
	if &z[0] != &b[0] {
		copy(z, b)
	}
	for i := 0; i < n; i++ {
		zi := z[i] / f.ud[i]
		z[i] = zi
		if zi != 0 {
			ui, ux := f.ui[f.up[i]:f.up[i+1]], f.ux[f.up[i]:f.up[i+1]]
			for q, j := range ui {
				z[j] -= ux[q] * zi
			}
		}
	}
	for i := n - 1; i >= 1; i-- {
		zi := z[i]
		if zi == 0 {
			continue
		}
		li, lx := f.li[f.lp[i]:f.lp[i+1]], f.lx[f.lp[i]:f.lp[i+1]]
		for q, j := range li {
			z[j] -= lx[q] * zi
		}
	}
	return z
}

// Cond1Est returns κ₁(A) = ‖A‖₁·‖A⁻¹‖₁. Where the dense matrix.LU
// must estimate ‖A⁻¹‖₁ with Hager's power method (ten solves), the
// M-matrix structure this factorization requires makes it exact in
// one: a nonsingular M-matrix has an entrywise non-negative inverse,
// so ‖A⁻¹‖₁ = max_j Σ_i |A⁻¹_ij| = max_j (1ᵀ·A⁻¹)_j — a single left
// solve with the all-ones vector. The result upper-bounds what Hager
// would report (an estimator never exceeds the true norm), so gating
// it against matrix.CondLimit is at least as strict as the dense gate.
func (f *LU) Cond1Est() float64 {
	z := make([]float64, f.n)
	for i := range z {
		z[i] = 1
	}
	f.SolveLeftInto(z, z)
	if !finiteVec(z) {
		return math.Inf(1)
	}
	var inv float64
	for _, v := range z {
		// |·| guards the tiny negative entries round-off can leave.
		if a := math.Abs(v); a > inv {
			inv = a
		}
	}
	return inv * f.anorm
}

func finiteVec(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
