package sparse

import (
	"math/rand"
	"testing"

	"finwl/internal/matrix"
)

// RowBuilder must agree with the sorting Builder for any emission that
// respects its row-order contract — same entries, same merged values,
// same CSR layout.
func TestRowBuilderMatchesBuilder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+r.Intn(12), 1+r.Intn(12)
		rb := NewRowBuilder(rows, cols)
		cb := NewBuilder(rows, cols)
		for i := 0; i < rows; i++ {
			for e := r.Intn(6); e > 0; e-- {
				j, v := r.Intn(cols), r.NormFloat64()
				rb.Add(i, j, v)
				cb.Add(i, j, v)
			}
		}
		got, want := rb.Build().Dense(), cb.Build().Dense()
		if d := got.MaxAbsDiff(want); d != 0 {
			t.Fatalf("trial %d: RowBuilder diverges from Builder by %g", trial, d)
		}
	}
}

// In-row duplicates merge in emission order (bitwise-reproducing dense
// accumulation), columns sort on row close, and explicit zeros on
// first emission are dropped.
func TestRowBuilderMergeAndSort(t *testing.T) {
	b := NewRowBuilder(2, 4)
	b.Add(0, 3, 1.5)
	b.Add(0, 1, 2.0)
	b.Add(0, 3, 0.25) // duplicate: merges into the live entry
	b.Add(0, 2, 0.0)  // zero: dropped
	b.Add(1, 0, 1.0)
	m := b.Build()
	if got := m.NNZ(); got != 3 {
		t.Fatalf("nnz = %d, want 3", got)
	}
	d := m.Dense()
	if d.At(0, 3) != 1.75 || d.At(0, 1) != 2.0 || d.At(1, 0) != 1.0 {
		t.Fatalf("unexpected entries: %v", d)
	}
}

// Reset reuses the backing arrays: a pooled builder must produce
// identical matrices across generations with no cross-talk.
func TestRowBuilderReset(t *testing.T) {
	b := NewRowBuilder(3, 3)
	b.Add(0, 0, 1)
	b.Add(2, 1, 2)
	first := b.Build()
	b.Reset(2, 5)
	b.Add(1, 4, 3)
	second := b.Build()
	if first.NNZ() != 2 || second.NNZ() != 1 {
		t.Fatalf("nnz = %d, %d, want 2, 1", first.NNZ(), second.NNZ())
	}
	if r, c := second.Rows(), second.Cols(); r != 2 || c != 5 {
		t.Fatalf("second dims = %dx%d, want 2x5", r, c)
	}
	if second.Dense().At(1, 4) != 3 {
		t.Fatal("entry lost across Reset")
	}
	// The first build owns its storage: mutating the builder afterwards
	// must not corrupt it.
	if first.Dense().At(2, 1) != 2 {
		t.Fatal("first build shares storage with the reset builder")
	}
}

// The row-order contract is enforced: revisiting a closed row panics
// rather than silently corrupting the layout.
func TestRowBuilderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("closed row", func() {
		b := NewRowBuilder(3, 3)
		b.Add(2, 0, 1)
		b.Add(1, 0, 1)
	})
	mustPanic("out of range", func() {
		NewRowBuilder(2, 2).Add(0, 5, 1)
	})
	mustPanic("bad dims", func() { NewRowBuilder(0, 3) })
}

// A build through RowBuilder must round-trip through MulVec the same
// as a dense multiply — the layout invariants (sorted columns, exact
// row pointers) are what the kernels rely on.
func TestRowBuilderKernelLayout(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	rb := NewRowBuilder(8, 6)
	d := matrix.New(8, 6)
	for i := 0; i < 8; i++ {
		for e := 0; e < 3; e++ {
			j, v := r.Intn(6), r.NormFloat64()
			rb.Add(i, j, v)
			d.Inc(i, j, v)
		}
	}
	m := rb.Build()
	x := make([]float64, 6)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	got, want := m.MulVec(x), d.MulVec(x)
	if matrix.NormInf(matrix.VecSub(got, want)) > 1e-12 {
		t.Fatalf("MulVec diverges: %v vs %v", got, want)
	}
}
