package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"finwl/internal/matrix"
)

// Property: the no-pivot sparse LU agrees with the pivoted dense
// factorization on right solves, left solves, and in-place variants
// for random substochastic systems.
func TestLUMatchesDenseFactor(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		p := substochasticP(r, n)
		f, err := FactorIMinusP(p)
		if err != nil {
			// Budget rejection is legitimate; singularity on a
			// substochastic system with row sums ≤ 0.97 is not.
			return errors.Is(err, ErrFill)
		}
		dense, err := matrix.Factor(p.IMinusDense())
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, xd := f.Solve(b), dense.Solve(b)
		y, yd := f.SolveLeft(b), dense.SolveLeft(b)
		scale := math.Max(1, matrix.NormInf(b))
		if matrix.NormInf(matrix.VecSub(x, xd)) > 1e-9*scale {
			return false
		}
		if matrix.NormInf(matrix.VecSub(y, yd)) > 1e-9*scale {
			return false
		}
		// In-place aliasing: dst == b must give the same answers.
		bx := append([]float64(nil), b...)
		f.SolveInto(bx, bx)
		if matrix.NormInf(matrix.VecSub(bx, x)) != 0 {
			return false
		}
		by := append([]float64(nil), b...)
		f.SolveLeftInto(by, by)
		return matrix.NormInf(matrix.VecSub(by, y)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Cond1Est is exact for this factorization, not an estimate: on a
// diagonal substochastic P it must reproduce κ₁ = ‖A‖₁·‖A⁻¹‖₁ =
// max(1−p_i)·max(1/(1−p_j)) to the last bit, and in general it can
// never fall below the dense Hager estimate of the same matrix.
func TestLUCond1Exact(t *testing.T) {
	ps := []float64{0.9, 0.5, 0.0, 0.25}
	b := NewBuilder(len(ps), len(ps))
	for i, p := range ps {
		if p != 0 {
			b.Add(i, i, p)
		}
	}
	f, err := FactorIMinusP(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	// ‖A‖₁ = 1−0 = 1 (the empty diagonal), ‖A⁻¹‖₁ = 1/(1−0.9); computed
	// through the slice so the comparison uses runtime float arithmetic,
	// not Go's exact constant folding.
	want := 1 / (1 - ps[0])
	if got := f.Cond1Est(); got != want {
		t.Fatalf("Cond1Est = %v, want exactly %v", got, want)
	}

	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		p := substochasticP(r, 2+r.Intn(30))
		f, err := FactorIMinusP(p)
		if err != nil {
			continue
		}
		dense, err := matrix.Factor(p.IMinusDense())
		if err != nil {
			t.Fatal(err)
		}
		exact, est := f.Cond1Est(), dense.Cond1Est()
		if exact < est*(1-1e-9) {
			t.Fatalf("trial %d: exact κ₁ %v below the Hager estimate %v", trial, exact, est)
		}
	}
}

// The stability domain is enforced: negative entries, NaN, and row
// sums above one are all rejected with ErrNotSubstochastic before any
// elimination happens.
func TestLURejectsNonSubstochastic(t *testing.T) {
	cases := map[string]func(b *Builder){
		"negative": func(b *Builder) { b.Add(0, 1, -0.1) },
		"nan":      func(b *Builder) { b.Add(0, 1, math.NaN()) },
		"rowsum":   func(b *Builder) { b.Add(0, 0, 0.7); b.Add(0, 1, 0.7) },
	}
	for name, fill := range cases {
		b := NewBuilder(2, 2)
		fill(b)
		if _, err := FactorIMinusP(b.Build()); !errors.Is(err, ErrNotSubstochastic) {
			t.Errorf("%s: err = %v, want ErrNotSubstochastic", name, err)
		}
	}
	if _, err := FactorIMinusP(NewBuilder(2, 3).Build()); err == nil {
		t.Error("non-square matrix accepted")
	}
}

// A stochastic P (row sums exactly one — tasks never depart) makes
// I − P singular; the factorization must report matrix.ErrSingular so
// the caller's typed-error contract survives the sparse path.
func TestLUSingular(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 1)
	b.Add(1, 0, 1)
	if _, err := FactorIMinusP(b.Build()); !errors.Is(err, matrix.ErrSingular) {
		t.Fatalf("err = %v, want matrix.ErrSingular", err)
	}
}

// A sparse matrix whose elimination densifies past the budget resigns
// with ErrFill instead of grinding through a dense-sized factorization
// (the caller falls back to the blocked dense LU, which wins there).
func TestLUFillBudget(t *testing.T) {
	const n = 200
	r := rand.New(rand.NewSource(1))
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		for c := 0; c < 4; c++ {
			b.Add(i, r.Intn(n), 0.2)
		}
	}
	if _, err := FactorIMinusP(b.Build()); !errors.Is(err, ErrFill) {
		t.Fatalf("err = %v, want ErrFill", err)
	}
}

// Solves are allocation-free in their Into forms — the contract the
// per-epoch kernels rely on.
func TestLUSolveIntoAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	p := substochasticP(r, 25)
	f, err := FactorIMinusP(p)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 25)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	dst := make([]float64, 25)
	if avg := testing.AllocsPerRun(50, func() {
		f.SolveInto(dst, b)
		f.SolveLeftInto(dst, b)
	}); avg != 0 {
		t.Fatalf("SolveInto/SolveLeftInto allocate %v objects per call, want 0", avg)
	}
}
