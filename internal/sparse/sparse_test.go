package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"finwl/internal/check"
	"finwl/internal/matrix"
)

func randomDense(r *rand.Rand, rows, cols int, density float64) *matrix.Matrix {
	d := matrix.New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if r.Float64() < density {
				d.Set(i, j, r.NormFloat64())
			}
		}
	}
	return d
}

func TestBuilderAndAt(t *testing.T) {
	b := NewBuilder(3, 4)
	b.Add(0, 1, 2)
	b.Add(2, 3, 5)
	b.Add(0, 1, 3) // duplicate accumulates
	b.Add(1, 0, 0) // explicit zero dropped
	m := b.Build()
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if m.At(0, 1) != 5 {
		t.Fatalf("At(0,1) = %v, want 5", m.At(0, 1))
	}
	if m.At(2, 3) != 5 || m.At(1, 1) != 0 {
		t.Fatal("wrong values")
	}
}

func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Add did not panic")
		}
	}()
	NewBuilder(2, 2).Add(2, 0, 1)
}

func TestRoundTripDense(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	d := randomDense(r, 7, 5, 0.3)
	if got := FromDense(d).Dense(); !got.EqualTol(d, 0) {
		t.Fatal("FromDense/Dense round trip failed")
	}
}

// Property: CSR MulVec / VecMul match the dense implementations.
func TestMulMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		d := randomDense(r, rows, cols, 0.4)
		m := FromDense(d)
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		return matrix.VecMaxAbsDiff(m.MulVec(x), d.MulVec(x)) < 1e-12 &&
			matrix.VecMaxAbsDiff(m.VecMul(y), d.VecMul(y)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeAndSums(t *testing.T) {
	d := matrix.FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	m := FromDense(d)
	if got := m.Transpose().Dense(); !got.EqualTol(d.Transpose(), 0) {
		t.Fatal("transpose mismatch")
	}
	sums := m.RowSums()
	if sums[0] != 3 || sums[1] != 3 {
		t.Fatalf("RowSums = %v", sums)
	}
	diag := m.Diagonal()
	if diag[0] != 1 || diag[1] != 3 {
		t.Fatalf("Diagonal = %v", diag)
	}
}

// substochasticP builds a random substochastic matrix with spectral
// radius < 1 (row sums ≤ 0.97).
func substochasticP(r *rand.Rand, n int) *CSR {
	b := NewBuilder(n, n)
	for i := 0; i < n; i++ {
		weights := make([]float64, n)
		var sum float64
		for j := range weights {
			if r.Float64() < 0.5 {
				weights[j] = r.Float64()
				sum += weights[j]
			}
		}
		if sum == 0 {
			continue
		}
		scale := (0.5 + 0.45*r.Float64()) / sum
		for j, w := range weights {
			if w > 0 {
				b.Add(i, j, w*scale)
			}
		}
	}
	return b.Build()
}

// Property: SolveIMinusP solutions satisfy their defining systems.
func TestSolveIMinusPProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		p := substochasticP(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		// Right system.
		x, err := SolveIMinusP(p, b, false, Options{})
		if err != nil {
			return false
		}
		res := matrix.VecSub(matrix.VecSub(x, p.MulVec(x)), b)
		if matrix.NormInf(res) > 1e-8*math.Max(1, matrix.NormInf(b)) {
			return false
		}
		// Left system.
		y, err := SolveIMinusP(p, b, true, Options{})
		if err != nil {
			return false
		}
		res = matrix.VecSub(matrix.VecSub(y, p.VecMul(y)), b)
		return matrix.NormInf(res) < 1e-8*math.Max(1, matrix.NormInf(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBiCGSTABAgainstLU(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 3 + r.Intn(20)
		p := substochasticP(r, n)
		a := matrix.Identity(n).Sub(p.Dense())
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		want, err := matrix.Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveIMinusP(p, b, false, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if matrix.VecMaxAbsDiff(got, want) > 1e-7*math.Max(1, matrix.NormInf(want)) {
			t.Fatalf("trial %d: BiCGSTAB deviates from LU by %v", trial, matrix.VecMaxAbsDiff(got, want))
		}
	}
}

func TestBiCGSTABZeroRHS(t *testing.T) {
	p := substochasticP(rand.New(rand.NewSource(2)), 5)
	x, err := SolveIMinusP(p, make([]float64, 5), false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if matrix.NormInf(x) != 0 {
		t.Fatal("zero rhs should give zero solution")
	}
}

func TestBiCGSTABNoConvergenceBudget(t *testing.T) {
	// An absurdly small iteration budget must surface as the typed
	// non-convergence error from the raw iterative method …
	r := rand.New(rand.NewSource(3))
	p := substochasticP(r, 40)
	b := make([]float64, 40)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	mul := func(x []float64) []float64 {
		px := p.MulVec(x)
		out := make([]float64, len(x))
		for i := range out {
			out[i] = x[i] - px[i]
		}
		return out
	}
	_, err := BiCGSTAB(mul, b, Options{MaxIter: 1, Tol: 1e-15})
	if err == nil {
		t.Fatal("expected ErrNoConvergence with MaxIter=1")
	}
	if !errors.Is(err, ErrNoConvergence) || !errors.Is(err, check.ErrNotConverged) {
		t.Fatalf("err = %v, want typed ErrNoConvergence", err)
	}

	// … while the full pipeline rescues the same system through the
	// dense LU fallback and returns the correct solution.
	x, err := SolveIMinusP(p, b, false, Options{MaxIter: 1, Tol: 1e-15})
	if err != nil {
		t.Fatalf("dense fallback should have rescued the solve: %v", err)
	}
	want, err := SolveIMinusP(p, b, false, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("fallback x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}
