package sparse

import "fmt"

// RowBuilder assembles a CSR matrix from entries emitted in
// non-decreasing row order — the natural order of the level-matrix
// generators, whose state loops walk rows ascending. Unlike Builder it
// never buys a global sort or per-entry coordinate storage: entries
// land directly in CSR layout, duplicates within the open row are
// merged in place (in emission order, reproducing dense accumulation
// bitwise), and closing a row insertion-sorts its short column list.
//
// A RowBuilder is reusable: Reset reinitializes it for a new matrix
// while keeping the backing arrays, which is what lets the chain
// builder pool one workspace across every level it constructs.
type RowBuilder struct {
	rows, cols int
	cur        int // the open (lowest still-appendable) row
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// NewRowBuilder returns a RowBuilder for a rows×cols matrix.
func NewRowBuilder(rows, cols int) *RowBuilder {
	b := &RowBuilder{}
	b.Reset(rows, cols)
	return b
}

// Reset reinitializes the builder for a new rows×cols matrix, reusing
// the backing storage of previous builds.
func (b *RowBuilder) Reset(rows, cols int) {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("sparse: invalid dimensions %dx%d", rows, cols))
	}
	b.rows, b.cols, b.cur = rows, cols, 0
	if cap(b.rowPtr) < rows+1 {
		b.rowPtr = make([]int, 1, rows+1)
	} else {
		b.rowPtr = b.rowPtr[:1]
	}
	b.rowPtr[0] = 0
	b.colIdx = b.colIdx[:0]
	b.vals = b.vals[:0]
}

// Add accumulates v at (i, j). Rows must be visited in non-decreasing
// order of i; within a row, columns may arrive in any order and
// duplicates are summed as they arrive.
func (b *RowBuilder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for %dx%d", i, j, b.rows, b.cols))
	}
	if i < b.cur {
		panic(fmt.Sprintf("sparse: RowBuilder row %d after row %d was closed", i, b.cur))
	}
	for b.cur < i {
		b.closeRow()
	}
	// Merge duplicates within the open row; level-matrix rows are a
	// handful of entries, so the linear scan beats any index structure.
	start := b.rowPtr[len(b.rowPtr)-1]
	for p := len(b.colIdx) - 1; p >= start; p-- {
		if b.colIdx[p] == j {
			b.vals[p] += v
			return
		}
	}
	if v == 0 {
		return
	}
	b.colIdx = append(b.colIdx, j)
	b.vals = append(b.vals, v)
}

// closeRow finalizes the open row: its column list is insertion-sorted
// (values travel with their columns) so the finished CSR has the
// ascending-column layout every kernel iterates in.
func (b *RowBuilder) closeRow() {
	start := b.rowPtr[len(b.rowPtr)-1]
	ci, vs := b.colIdx[start:], b.vals[start:]
	for i := 1; i < len(ci); i++ {
		c, v := ci[i], vs[i]
		j := i - 1
		for j >= 0 && ci[j] > c {
			ci[j+1], vs[j+1] = ci[j], vs[j]
			j--
		}
		ci[j+1], vs[j+1] = c, v
	}
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
	b.cur++
}

// Build closes the remaining rows and returns the finished CSR. The
// builder may be Reset and reused afterwards; the returned matrix owns
// fresh exact-length storage.
func (b *RowBuilder) Build() *CSR {
	for b.cur < b.rows {
		b.closeRow()
	}
	return &CSR{
		rows:   b.rows,
		cols:   b.cols,
		rowPtr: append([]int(nil), b.rowPtr...),
		colIdx: append([]int(nil), b.colIdx...),
		vals:   append([]float64(nil), b.vals...),
	}
}
