// Package batch is the shared-chain job scheduler behind /batch: it
// accepts a set of solve jobs, groups them by canonical network key,
// builds and factors each distinct chain exactly once (through the
// caller's solver cache), runs every group through one incremental
// sweep over the union of its requested populations, and fans results
// back per job. The paper's figure sweeps are exactly this workload —
// many populations over one network — and SolveSweep's prefix-reuse
// property makes a group of J same-network jobs cost one chain plus J
// drain checkpoints instead of J chains.
//
// The scheduler owns grouping, group-level admission pricing
// (statespace.SweepPrice), bounded concurrency over internal/par,
// cross-call deduplication of identical in-flight groups, and
// partial-failure semantics: one bad job fails typed without
// poisoning its group. Everything environment-shaped — admission,
// the solver cache, metrics — is injected through Hooks so the
// package depends only on the solver pipeline, not on the serving
// layer that wraps it.
package batch

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"finwl/internal/check"
	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/par"
)

// Job is one solve request. Key is the caller's canonical identity of
// (network, K) — jobs with equal keys are assumed to describe the
// same chain and are solved as one group; an empty Key isolates the
// job in a group of its own.
type Job struct {
	Key string
	Net *network.Network
	K   int
	N   int
}

// Outcome is the per-job result. Exactly one of Result, Err is
// non-nil. The group-level fields are repeated on every member so a
// caller can account for sharing without reconstructing the grouping.
type Outcome struct {
	Result *core.Result
	Err    error

	// Reused reports that the group's solver came out of the caller's
	// cache (or from a concurrent builder) — no fresh chain
	// construction happened for this group at all.
	Reused bool
	// Shared reports that the whole group was deduplicated against an
	// identical in-flight group from another Run call: this job rode
	// along as a follower and did no work of its own.
	Shared bool
	// GroupJobs is the size of this job's group within this Run call.
	GroupJobs int
	// Price is the group's admission price (charged once per group,
	// reported on every member).
	Price int64

	Wait    time.Duration // admission-queue wait of the group
	Elapsed time.Duration // group wall time after admission
}

// Hooks inject the caller's environment. Acquire/Release bracket a
// group's admission (Acquire returning an error fails the whole
// group, typed); SolverFor resolves the factored solver for a group
// key, reporting whether it was reused from cache rather than freshly
// built. OnGroupDone fires once per solved group (not for dedup
// followers) with the group size, whether the chain was reused, and
// the group-level error if the group never solved. Any nil hook is
// skipped (Acquire nil = unlimited admission).
type Hooks struct {
	Acquire     func(done <-chan struct{}, price int64) error
	Release     func(price int64)
	SolverFor   func(ctx context.Context, key string, net *network.Network, k int) (*core.Solver, bool, error)
	OnGroupDone func(jobs int, reused bool, err error)
}

// Progress receives scheduling milestones; any nil field is skipped.
// Callbacks run on scheduler goroutines and must be cheap.
type Progress struct {
	// OnPlan fires once before solving starts, with the job count and
	// the size of every group (groups are solved in first-appearance
	// order of their keys, but complete in any order).
	OnPlan func(jobs int, groupJobs []int)
	// OnPlanGroups fires alongside OnPlan with each group's member job
	// indices — the detail a durability journal needs to checkpoint
	// groups by the caller's own indexing.
	OnPlanGroups func(groups [][]int)
	// OnGroupStart / OnGroupDone fire per group index.
	OnGroupStart func(group int)
	// OnGroupDone fires after every member of the group has settled
	// (OnJobSettled included), so a checkpoint taken here sees the
	// group's final outcomes.
	OnGroupDone func(group int)
	// OnJobSettled fires as each job's outcome lands, with the job's
	// index into the Run slice — the streaming view of the []Outcome
	// that Run returns. Settles for different jobs may run concurrently
	// on scheduler goroutines.
	OnJobSettled func(job int, o Outcome)
	// OnJobDone fires after every job settles with the running count.
	OnJobDone func(done, total int)
}

// Scheduler groups and runs batches. Safe for concurrent use; a
// single Scheduler should front a solver cache so concurrent batches
// share chains.
type Scheduler struct {
	hooks  Hooks
	flight flightGroup
}

// New builds a Scheduler around the given hooks.
func New(hooks Hooks) *Scheduler {
	return &Scheduler{hooks: hooks, flight: flightGroup{m: make(map[string]*flightCall)}}
}

// groupResult is what one solved group shares with its jobs — and,
// through the flight group, with identical concurrent groups.
type groupResult struct {
	byN    map[int]*core.Result
	errByN map[int]error
	err    error // group-level failure (admission, solver build)
	reused bool
	price  int64
	wait   time.Duration
	solved time.Duration
}

// Run solves jobs and returns one Outcome per job, in order. It never
// returns an error: every failure is typed into its job's Outcome. A
// canceled ctx settles all unfinished jobs with check.ErrCanceled.
func (s *Scheduler) Run(ctx context.Context, jobs []Job, prog *Progress) []Outcome {
	outcomes := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return outcomes
	}
	// Group by key, preserving first-appearance order.
	type group struct {
		key  string
		idxs []int
	}
	byKey := make(map[string]int)
	var groups []*group
	for i, j := range jobs {
		key := j.Key
		if key == "" {
			// An unkeyed job cannot be proven identical to anything;
			// isolate it.
			key = fmt.Sprintf("\x00unkeyed-%d", i)
		}
		gi, ok := byKey[key]
		if !ok {
			gi = len(groups)
			byKey[key] = gi
			groups = append(groups, &group{key: key})
		}
		groups[gi].idxs = append(groups[gi].idxs, i)
	}
	if prog != nil && prog.OnPlan != nil {
		sizes := make([]int, len(groups))
		for gi, g := range groups {
			sizes[gi] = len(g.idxs)
		}
		prog.OnPlan(len(jobs), sizes)
	}
	if prog != nil && prog.OnPlanGroups != nil {
		members := make([][]int, len(groups))
		for gi, g := range groups {
			members[gi] = append([]int(nil), g.idxs...)
		}
		prog.OnPlanGroups(members)
	}

	var done atomic.Int64
	settle := func(i int, o Outcome) {
		outcomes[i] = o
		if prog != nil && prog.OnJobSettled != nil {
			prog.OnJobSettled(i, o)
		}
		if prog != nil && prog.OnJobDone != nil {
			prog.OnJobDone(int(done.Add(1)), len(jobs))
		}
	}

	// Groups run across the bounded worker pool; the fn never returns
	// an error (failures settle per job), so ForErr only stops early on
	// cancellation.
	_ = par.ForErr(ctx, len(groups), func(gi int) error {
		g := groups[gi]
		if prog != nil && prog.OnGroupStart != nil {
			prog.OnGroupStart(gi)
		}
		s.runGroup(ctx, g.key, jobs, g.idxs, settle)
		if prog != nil && prog.OnGroupDone != nil {
			prog.OnGroupDone(gi)
		}
		return nil
	})

	// Groups skipped by cancellation never settled their jobs.
	for i := range outcomes {
		if outcomes[i].Result == nil && outcomes[i].Err == nil {
			err := check.Canceled(ctx)
			if err == nil {
				err = fmt.Errorf("batch: job %d never scheduled: %w", i, check.ErrCanceled)
			}
			settle(i, Outcome{Err: err})
		}
	}
	return outcomes
}

// runGroup solves one group and settles every member's outcome.
func (s *Scheduler) runGroup(ctx context.Context, key string, jobs []Job, idxs []int, settle func(int, Outcome)) {
	// Per-job validation first: a structurally broken job fails alone,
	// and the group solves from the survivors.
	live := idxs[:0:0]
	for _, i := range idxs {
		j := jobs[i]
		switch {
		case j.Net == nil:
			settle(i, Outcome{Err: check.Invalid("batch: job %d has no network", i), GroupJobs: len(idxs)})
		case j.K < 1:
			settle(i, Outcome{Err: check.Invalid("batch: job %d population K is %d, want >= 1", i, j.K), GroupJobs: len(idxs)})
		default:
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return
	}
	// All live jobs share one key, hence one network and K; bad N
	// values stay in the union and fail individually inside the sweep.
	first := jobs[live[0]]
	ns := make([]int, 0, len(live))
	seen := make(map[int]bool, len(live))
	for _, i := range live {
		if n := jobs[i].N; !seen[n] {
			seen[n] = true
			ns = append(ns, n)
		}
	}
	sort.Ints(ns)

	// Identical concurrent groups (same chain, same population union)
	// collapse onto one leader; followers share its results.
	sig := flightKey(key, ns)
	res, shared, abandoned := s.flight.do(ctx.Done(), sig, func() *groupResult {
		return s.solveGroup(ctx, key, first, ns, len(live))
	})
	if abandoned {
		err := check.Canceled(ctx)
		if err == nil {
			err = fmt.Errorf("batch: group abandoned: %w", check.ErrCanceled)
		}
		for _, i := range live {
			settle(i, Outcome{Err: err, GroupJobs: len(idxs)})
		}
		return
	}
	for _, i := range live {
		o := Outcome{
			Reused:    res.reused,
			Shared:    shared,
			GroupJobs: len(idxs),
			Price:     res.price,
			Wait:      res.wait,
			Elapsed:   res.solved,
		}
		switch {
		case res.err != nil:
			o.Err = res.err
		case res.errByN[jobs[i].N] != nil:
			o.Err = res.errByN[jobs[i].N]
		default:
			o.Result = res.byN[jobs[i].N]
		}
		settle(i, o)
	}
}

// solveGroup is the leader path: price → admit → solver → one sweep.
func (s *Scheduler) solveGroup(ctx context.Context, key string, j Job, ns []int, jobs int) *groupResult {
	res := &groupResult{}
	res.price = j.Net.Space().SweepPrice(j.K, len(ns))
	start := time.Now()
	if s.hooks.Acquire != nil {
		if err := s.hooks.Acquire(ctx.Done(), res.price); err != nil {
			res.err = err
			s.groupDone(jobs, res)
			return res
		}
		defer s.hooks.Release(res.price)
	}
	res.wait = time.Since(start)

	solveStart := time.Now()
	solver, reused, err := s.resolveSolver(ctx, key, j)
	if err != nil {
		res.err = err
		s.groupDone(jobs, res)
		return res
	}
	res.reused = reused

	results, errs := solver.SolveSweepEachCtx(ctx, ns)
	res.byN = make(map[int]*core.Result, len(ns))
	res.errByN = make(map[int]error, len(ns))
	for i, n := range ns {
		if errs[i] != nil {
			res.errByN[n] = errs[i]
		} else {
			res.byN[n] = results[i]
		}
	}
	res.solved = time.Since(solveStart)
	s.groupDone(jobs, res)
	return res
}

func (s *Scheduler) groupDone(jobs int, res *groupResult) {
	if s.hooks.OnGroupDone != nil {
		s.hooks.OnGroupDone(jobs, res.reused, res.err)
	}
}

func (s *Scheduler) resolveSolver(ctx context.Context, key string, j Job) (*core.Solver, bool, error) {
	if s.hooks.SolverFor != nil {
		return s.hooks.SolverFor(ctx, key, j.Net, j.K)
	}
	solver, err := core.NewSolverCtx(ctx, j.Net, j.K)
	return solver, false, err
}

func flightKey(key string, ns []int) string {
	var b strings.Builder
	b.WriteString(key)
	for _, n := range ns {
		fmt.Fprintf(&b, "|%d", n)
	}
	return b.String()
}

// flightGroup collapses identical concurrent group solves: the first
// caller runs fn, followers block on the same call and share its
// result. Unlike a result cache this holds nothing after the call
// completes — persistent reuse is the caller's cache, via SolverFor.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	res  *groupResult
}

// do returns fn's result, whether this caller was a follower, and
// whether it abandoned the wait because done closed first (the leader
// still completes; an abandoned follower gets no result).
func (f *flightGroup) do(done <-chan struct{}, key string, fn func() *groupResult) (res *groupResult, shared, abandoned bool) {
	f.mu.Lock()
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.res, true, false
		case <-done:
			return nil, true, true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()

	c.res = fn()
	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	close(c.done)
	return c.res, false, false
}
