package batch

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"finwl/internal/check"
	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/workload"
)

func centralNet(t *testing.T, k int, dists cluster.Dists) *network.Network {
	t.Helper()
	net, err := cluster.Central(k, workload.Default(30), dists, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

// cachingHooks counts fresh solver builds per key and serves repeats
// from its own cache, standing in for the serve solver cache.
type cachingHooks struct {
	mu      sync.Mutex
	builds  map[string]int
	cache   map[string]*core.Solver
	groups  []int
	reused  []bool
	acquire int64
}

func newCachingHooks() *cachingHooks {
	return &cachingHooks{builds: make(map[string]int), cache: make(map[string]*core.Solver)}
}

func (h *cachingHooks) hooks() Hooks {
	return Hooks{
		Acquire: func(done <-chan struct{}, price int64) error {
			h.mu.Lock()
			h.acquire += price
			h.mu.Unlock()
			return nil
		},
		Release: func(price int64) {
			h.mu.Lock()
			h.acquire -= price
			h.mu.Unlock()
		},
		SolverFor: func(ctx context.Context, key string, net *network.Network, k int) (*core.Solver, bool, error) {
			h.mu.Lock()
			if s, ok := h.cache[key]; ok {
				h.mu.Unlock()
				return s, true, nil
			}
			h.mu.Unlock()
			s, err := core.NewSolverCtx(ctx, net, k)
			if err != nil {
				return nil, false, err
			}
			h.mu.Lock()
			h.cache[key] = s
			h.builds[key]++
			h.mu.Unlock()
			return s, false, nil
		},
		OnGroupDone: func(jobs int, reused bool, err error) {
			h.mu.Lock()
			h.groups = append(h.groups, jobs)
			h.reused = append(h.reused, reused)
			h.mu.Unlock()
		},
	}
}

// A batch over two distinct networks groups by key, builds each chain
// once, and returns per-job results identical to standalone solves.
func TestRunGroupsShareChains(t *testing.T) {
	netA := centralNet(t, 4, cluster.Dists{})
	netB := centralNet(t, 4, cluster.Dists{CPU: cluster.ErlangStages(3)})
	jobs := []Job{
		{Key: "A", Net: netA, K: 4, N: 50},
		{Key: "B", Net: netB, K: 4, N: 10},
		{Key: "A", Net: netA, K: 4, N: 2},
		{Key: "A", Net: netA, K: 4, N: 120},
		{Key: "A", Net: netA, K: 4, N: 50}, // duplicate population
		{Key: "B", Net: netB, K: 4, N: 80},
	}
	h := newCachingHooks()
	var planJobs int
	var planGroups []int
	var doneCalls int
	prog := &Progress{
		OnPlan:    func(jobs int, groupJobs []int) { planJobs, planGroups = jobs, groupJobs },
		OnJobDone: func(done, total int) { doneCalls++ },
	}
	outcomes := New(h.hooks()).Run(context.Background(), jobs, prog)

	if planJobs != len(jobs) || len(planGroups) != 2 || planGroups[0] != 4 || planGroups[1] != 2 {
		t.Fatalf("plan: jobs=%d groups=%v", planJobs, planGroups)
	}
	if doneCalls != len(jobs) {
		t.Fatalf("OnJobDone fired %d times, want %d", doneCalls, len(jobs))
	}
	if h.builds["A"] != 1 || h.builds["B"] != 1 {
		t.Fatalf("chain builds per key: %v, want exactly 1 each", h.builds)
	}
	if len(h.groups) != 2 {
		t.Fatalf("OnGroupDone fired %d times, want 2", len(h.groups))
	}
	if h.acquire != 0 {
		t.Fatalf("admission not balanced: %d units still held", h.acquire)
	}
	for i, j := range jobs {
		o := outcomes[i]
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		want := map[string]int{"A": 4, "B": 2}[j.Key]
		if o.GroupJobs != want {
			t.Fatalf("job %d: GroupJobs %d, want %d", i, o.GroupJobs, want)
		}
		if o.Price <= 0 || o.Result == nil || o.Result.N != j.N {
			t.Fatalf("job %d: malformed outcome %+v", i, o)
		}
		ref, err := core.NewSolver(j.Net, j.K)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, err := ref.Solve(j.N)
		if err != nil {
			t.Fatal(err)
		}
		if !closeRel(o.Result.TotalTime, wantRes.TotalTime, 1e-13) {
			t.Fatalf("job %d: TotalTime %v, want %v", i, o.Result.TotalTime, wantRes.TotalTime)
		}
	}
}

// One bad job per failure mode — no network, bad K, bad N — fails
// typed and alone; its group-mates still solve.
func TestRunPartialFailure(t *testing.T) {
	net := centralNet(t, 3, cluster.Dists{})
	jobs := []Job{
		{Key: "A", Net: net, K: 3, N: 20},
		{Key: "A", Net: net, K: 3, N: 0},  // bad N: fails inside the sweep
		{Key: "A", Net: nil, K: 3, N: 5},  // no network
		{Key: "", Net: net, K: 0, N: 5},   // bad K
		{Key: "A", Net: net, K: 3, N: 40}, // healthy group-mate
	}
	h := newCachingHooks()
	outcomes := New(h.hooks()).Run(context.Background(), jobs, nil)
	for _, i := range []int{1, 2, 3} {
		if !errors.Is(outcomes[i].Err, check.ErrInvalidModel) {
			t.Fatalf("job %d: err %v, want ErrInvalidModel", i, outcomes[i].Err)
		}
		if outcomes[i].Result != nil {
			t.Fatalf("job %d: result alongside error", i)
		}
	}
	for _, i := range []int{0, 4} {
		if outcomes[i].Err != nil || outcomes[i].Result == nil {
			t.Fatalf("healthy job %d poisoned: %+v", i, outcomes[i])
		}
	}
	if h.builds["A"] != 1 {
		t.Fatalf("builds: %v, want one for A", h.builds)
	}
}

// A failed group admission fails every group member typed, and other
// groups are untouched.
func TestRunGroupAdmissionFailure(t *testing.T) {
	net := centralNet(t, 3, cluster.Dists{})
	other := centralNet(t, 3, cluster.Dists{CPU: cluster.ErlangStages(2)})
	hooks := Hooks{
		Acquire: func(done <-chan struct{}, price int64) error {
			return check.ErrOverloaded
		},
	}
	// Only group A is priced over budget in this fake: reject all.
	outcomes := New(hooks).Run(context.Background(), []Job{
		{Key: "A", Net: net, K: 3, N: 10},
		{Key: "B", Net: other, K: 3, N: 10},
	}, nil)
	for i, o := range outcomes {
		if !errors.Is(o.Err, check.ErrOverloaded) {
			t.Fatalf("job %d: err %v, want ErrOverloaded", i, o.Err)
		}
	}
}

// A dead context settles every job with a typed cancel.
func TestRunCanceled(t *testing.T) {
	net := centralNet(t, 3, cluster.Dists{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outcomes := New(Hooks{}).Run(ctx, []Job{
		{Key: "A", Net: net, K: 3, N: 10},
		{Key: "A", Net: net, K: 3, N: 20},
	}, nil)
	for i, o := range outcomes {
		if !errors.Is(o.Err, check.ErrCanceled) {
			t.Fatalf("job %d: err %v, want ErrCanceled", i, o.Err)
		}
	}
}

// Two concurrent Runs over the identical group collapse onto one
// leader: one build, one OnGroupDone, follower outcomes marked
// Shared.
func TestRunDedupsIdenticalConcurrentGroups(t *testing.T) {
	net := centralNet(t, 3, cluster.Dists{})
	h := newCachingHooks()
	hooks := h.hooks()
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	inner := hooks.Acquire
	hooks.Acquire = func(done <-chan struct{}, price int64) error {
		once.Do(func() { close(entered) })
		<-release
		return inner(done, price)
	}
	sched := New(hooks)
	jobs := []Job{{Key: "A", Net: net, K: 3, N: 30}, {Key: "A", Net: net, K: 3, N: 60}}

	var wg sync.WaitGroup
	results := make([][]Outcome, 2)
	wg.Add(1)
	go func() { defer wg.Done(); results[0] = sched.Run(context.Background(), jobs, nil) }()
	<-entered // leader is parked inside admission
	wg.Add(1)
	go func() { defer wg.Done(); results[1] = sched.Run(context.Background(), jobs, nil) }()
	// Give the second Run time to park as a flight follower, then let
	// the leader go.
	time.Sleep(100 * time.Millisecond)
	close(release)
	wg.Wait()

	if h.builds["A"] != 1 {
		t.Fatalf("builds: %v, want exactly one", h.builds)
	}
	if len(h.groups) != 1 {
		t.Fatalf("OnGroupDone fired %d times, want 1 (followers share the leader's group)", len(h.groups))
	}
	shared := 0
	for _, outs := range results {
		for i, o := range outs {
			if o.Err != nil || o.Result == nil {
				t.Fatalf("outcome %d: %+v", i, o)
			}
			if o.Shared {
				shared++
			}
		}
	}
	if shared != len(jobs) {
		t.Fatalf("%d shared outcomes, want %d (one whole Run deduplicated)", shared, len(jobs))
	}
}
