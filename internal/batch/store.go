package batch

import (
	"fmt"
	"sync"
	"time"

	"finwl/internal/check"
)

// State is an async job record's lifecycle phase.
type State string

const (
	StateQueued  State = "queued"  // accepted, not yet scheduled
	StateRunning State = "running" // solving
	StateDone    State = "done"    // finished (results or error)
)

// GroupProgress is the per-group slice of a record's progress view.
type GroupProgress struct {
	Jobs  int   `json:"jobs"`
	State State `json:"state"`
}

// Record is a point-in-time snapshot of one async batch. Results and
// Err are set only in StateDone; Results entries are immutable once
// published, so holders may read them without the store's lock.
type Record[R any] struct {
	ID        string
	State     State
	JobsTotal int
	JobsDone  int
	Groups    []GroupProgress
	Results   []R
	Err       error
	Created   time.Time
	Finished  time.Time
}

// Store is a size-bounded TTL store of async batch records. Capacity
// bounds the number of records held at once: new submissions are
// rejected (typed check.ErrOverloaded) while active records fill the
// store, and completed records are retained — fetchable — until they
// expire, are evicted as the oldest done record by a new submission,
// or the process exits. All methods are safe for concurrent use.
type Store[R any] struct {
	mu   sync.Mutex
	cap  int
	ttl  time.Duration
	now  func() time.Time
	recs map[string]*Record[R]
	// order holds record IDs oldest-first, for done-record eviction.
	order []string
	// nextExpiry is the earliest instant any done record can expire
	// (zero = none can), so the O(held) expiry scan runs only when it
	// can actually remove something instead of on every operation.
	nextExpiry time.Time

	// Gone tracking (TrackGone): IDs of records that once existed but
	// were expired or evicted, so Lookup can tell "expired" (410 Gone)
	// from "never seen" (404). Bounded FIFO; disabled when goneCap = 0.
	goneCap   int
	gone      map[string]bool
	goneOrder []string
}

// NewStore builds a Store holding at most capacity records, expiring
// done records ttl after they finish. now is a test hook (nil = wall
// clock). capacity < 1 and ttl <= 0 take minimal working defaults.
func NewStore[R any](capacity int, ttl time.Duration, now func() time.Time) *Store[R] {
	if capacity < 1 {
		capacity = 1
	}
	if ttl <= 0 {
		ttl = time.Minute
	}
	if now == nil {
		now = time.Now
	}
	return &Store[R]{cap: capacity, ttl: ttl, now: now, recs: make(map[string]*Record[R])}
}

// Add registers a new queued record. It fails typed as overloaded
// when every slot is held by a still-active (queued/running) record;
// done records are evicted oldest-first to make room.
func (s *Store[R]) Add(id string, jobsTotal int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if _, ok := s.recs[id]; ok {
		return check.Invalid("batch: duplicate job id %q", id)
	}
	for len(s.recs) >= s.cap {
		if !s.evictOldestDoneLocked() {
			return fmt.Errorf("batch: job store full (%d active): %w", len(s.recs), check.ErrOverloaded)
		}
	}
	s.recs[id] = &Record[R]{ID: id, State: StateQueued, JobsTotal: jobsTotal, Created: s.now()}
	s.order = append(s.order, id)
	return nil
}

// TrackGone enables tombstone tracking of up to capacity expired or
// evicted record IDs, so Lookup can distinguish a once-valid ID from a
// never-seen one. Off by default: without a journal the distinction
// does not survive a restart anyway, and the pre-durability wire
// behavior (404 for both) is preserved bit-for-bit.
func (s *Store[R]) TrackGone(capacity int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if capacity < 1 {
		capacity = 1
	}
	s.goneCap = capacity
	if s.gone == nil {
		s.gone = make(map[string]bool)
	}
}

// MarkGone records id as once-valid-now-expired without it ever
// entering the live map — the recovery path uses this for journaled
// jobs that finished beyond the TTL before the restart.
func (s *Store[R]) MarkGone(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.markGoneLocked(id)
}

func (s *Store[R]) markGoneLocked(id string) {
	if s.goneCap <= 0 || s.gone[id] {
		return
	}
	s.gone[id] = true
	s.goneOrder = append(s.goneOrder, id)
	for len(s.goneOrder) > s.goneCap {
		delete(s.gone, s.goneOrder[0])
		s.goneOrder = s.goneOrder[1:]
	}
}

// LookupStatus is Lookup's verdict on a record ID.
type LookupStatus int

const (
	// LookupMiss: never seen (or seen so long ago the tombstone itself
	// was evicted) — the HTTP layer's 404.
	LookupMiss LookupStatus = iota
	// LookupGone: once valid, since expired or evicted — 410.
	LookupGone
	// LookupHit: live record returned.
	LookupHit
)

// Lookup is Get plus the gone/never-seen distinction.
func (s *Store[R]) Lookup(id string) (Record[R], LookupStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	if r, ok := s.recs[id]; ok {
		return snapshotLocked(r), LookupHit
	}
	if s.gone[id] {
		return Record[R]{}, LookupGone
	}
	return Record[R]{}, LookupMiss
}

// Restore re-inserts a record rehydrated from the journal, preserving
// its original timestamps and state. Replay idempotency: an ID already
// present is left untouched (reported false). Unlike Add, Restore
// never fails on a full store — journaled work survived a crash and
// must not be dropped by a capacity race — though it still evicts done
// records first to make room.
func (s *Store[R]) Restore(rec Record[R]) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.recs[rec.ID]; ok {
		return false
	}
	for len(s.recs) >= s.cap {
		if !s.evictOldestDoneLocked() {
			break
		}
	}
	cp := rec
	cp.Groups = append([]GroupProgress(nil), rec.Groups...)
	cp.Results = append([]R(nil), rec.Results...)
	s.recs[rec.ID] = &cp
	s.order = append(s.order, rec.ID)
	if cp.State == StateDone && !cp.Finished.IsZero() {
		s.noteFinishedLocked(cp.Finished)
	}
	return true
}

// Get returns a snapshot of the record, or false if it is unknown or
// has expired.
func (s *Store[R]) Get(id string) (Record[R], bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	r, ok := s.recs[id]
	if !ok {
		return Record[R]{}, false
	}
	return snapshotLocked(r), true
}

// Start moves a queued record to running.
func (s *Store[R]) Start(id string) {
	s.withLocked(id, func(r *Record[R]) {
		if r.State == StateQueued {
			r.State = StateRunning
		}
	})
}

// Plan records the group layout once the scheduler has grouped the
// batch.
func (s *Store[R]) Plan(id string, jobsTotal int, groupJobs []int) {
	s.withLocked(id, func(r *Record[R]) {
		r.JobsTotal = jobsTotal
		r.Groups = make([]GroupProgress, len(groupJobs))
		for i, jobs := range groupJobs {
			r.Groups[i] = GroupProgress{Jobs: jobs, State: StateQueued}
		}
	})
}

// GroupState updates one group's phase.
func (s *Store[R]) GroupState(id string, group int, state State) {
	s.withLocked(id, func(r *Record[R]) {
		if group >= 0 && group < len(r.Groups) {
			r.Groups[group].State = state
		}
	})
}

// JobsDone updates the settled-job count.
func (s *Store[R]) JobsDone(id string, done int) {
	s.withLocked(id, func(r *Record[R]) {
		if done > r.JobsDone {
			r.JobsDone = done
		}
	})
}

// Finish completes a record with its results or a batch-level error.
// Finished results stay fetchable until TTL expiry or eviction.
func (s *Store[R]) Finish(id string, results []R, err error) {
	s.withLocked(id, func(r *Record[R]) {
		if r.State == StateDone {
			return
		}
		r.State = StateDone
		r.Results = results
		r.Err = err
		r.Finished = s.now()
		s.noteFinishedLocked(r.Finished)
		if err == nil {
			r.JobsDone = r.JobsTotal
		}
	})
}

// DrainQueued fails every still-queued record with err (typically a
// typed check.ErrCanceled): the drain contract is that work which
// never started reports canceled while finished results remain
// fetchable.
func (s *Store[R]) DrainQueued(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.recs {
		if r.State == StateQueued {
			r.State = StateDone
			r.Err = err
			r.Finished = s.now()
			s.noteFinishedLocked(r.Finished)
		}
	}
}

// Len returns the held and active (non-done) record counts.
func (s *Store[R]) Len() (held, active int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.expireLocked()
	for _, r := range s.recs {
		if r.State != StateDone {
			active++
		}
	}
	return len(s.recs), active
}

func (s *Store[R]) withLocked(id string, fn func(*Record[R])) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.recs[id]; ok {
		fn(r)
	}
}

// noteFinishedLocked folds a newly finished record into the expiry
// horizon.
func (s *Store[R]) noteFinishedLocked(finished time.Time) {
	exp := finished.Add(s.ttl)
	if s.nextExpiry.IsZero() || exp.Before(s.nextExpiry) {
		s.nextExpiry = exp
	}
}

// expireLocked drops done records past their TTL. The scan is
// amortized: it runs only once the earliest possible expiry has
// arrived, and recomputes the horizon as it goes.
func (s *Store[R]) expireLocked() {
	now := s.now()
	if s.nextExpiry.IsZero() || now.Before(s.nextExpiry) {
		return
	}
	cutoff := now.Add(-s.ttl)
	var next time.Time
	kept := s.order[:0]
	for _, id := range s.order {
		r, ok := s.recs[id]
		if !ok {
			continue
		}
		if r.State == StateDone {
			if r.Finished.Before(cutoff) {
				delete(s.recs, id)
				s.markGoneLocked(id)
				continue
			}
			if exp := r.Finished.Add(s.ttl); next.IsZero() || exp.Before(next) {
				next = exp
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
	s.nextExpiry = next
}

// evictOldestDoneLocked removes the oldest completed record, if any.
func (s *Store[R]) evictOldestDoneLocked() bool {
	for i, id := range s.order {
		if r, ok := s.recs[id]; ok && r.State == StateDone {
			delete(s.recs, id)
			s.markGoneLocked(id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			return true
		}
	}
	return false
}

func snapshotLocked[R any](r *Record[R]) Record[R] {
	cp := *r
	cp.Groups = append([]GroupProgress(nil), r.Groups...)
	cp.Results = append([]R(nil), r.Results...)
	return cp
}
