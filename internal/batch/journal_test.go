package batch

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"finwl/internal/check"
)

func openTestJournal(t *testing.T, path string, hooks JournalHooks) (*Journal, []Entry) {
	t.Helper()
	j, entries, err := OpenJournal(JournalConfig{Path: path, Fsync: FsyncAlways, Hooks: hooks})
	if err != nil {
		t.Fatalf("OpenJournal(%s): %v", path, err)
	}
	return j, entries
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, entries := openTestJournal(t, path, JournalHooks{})
	if len(entries) != 0 {
		t.Fatalf("fresh journal replayed %d entries", len(entries))
	}
	j.Append(Entry{Op: OpSubmit, ID: "a", JobsTotal: 2, IdemKey: "k1", Reqs: json.RawMessage(`[{"k":3}]`)})
	j.Append(Entry{Op: OpGroup, ID: "a", Group: 0, Idx: []int{0, 1}, Items: json.RawMessage(`[{},{}]`)})
	j.Append(Entry{Op: OpDone, ID: "a", Items: json.RawMessage(`[{},{}]`)})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, entries := openTestJournal(t, path, JournalHooks{})
	defer j2.Close()
	if len(entries) != 3 {
		t.Fatalf("replayed %d entries, want 3", len(entries))
	}
	if entries[0].Op != OpSubmit || entries[0].ID != "a" || entries[0].IdemKey != "k1" || entries[0].JobsTotal != 2 {
		t.Fatalf("submit entry mangled: %+v", entries[0])
	}
	if entries[1].Op != OpGroup || len(entries[1].Idx) != 2 {
		t.Fatalf("group entry mangled: %+v", entries[1])
	}
	if entries[0].T.IsZero() {
		t.Fatal("entry timestamp not stamped")
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, _ := openTestJournal(t, path, JournalHooks{})
	j.Append(Entry{Op: OpSubmit, ID: "a"})
	j.Append(Entry{Op: OpSubmit, ID: "b"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"b","it`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for round := 0; round < 2; round++ { // replay must be idempotent
		j2, entries := openTestJournal(t, path, JournalHooks{})
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
		if len(entries) != 2 || entries[0].ID != "a" || entries[1].ID != "b" {
			t.Fatalf("round %d: replayed %+v, want the 2 complete records", round, entries)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"it`) {
		t.Fatalf("torn tail not truncated: %q", raw)
	}
}

func TestJournalMidFileCorruptionTyped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	body := `{"op":"submit","id":"a"}` + "\n" + `{"op":garbage}` + "\n" + `{"op":"done","id":"a"}` + "\n"
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(JournalConfig{Path: path})
	if !errors.Is(err, check.ErrJournalCorrupt) {
		t.Fatalf("mid-file corruption: %v, want ErrJournalCorrupt", err)
	}
}

func TestJournalLastRecordMissingNewlineKept(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	body := `{"op":"submit","id":"a"}` + "\n" + `{"op":"done","id":"a"}` // no trailing \n
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, entries := openTestJournal(t, path, JournalHooks{})
	defer j.Close()
	if len(entries) != 2 || entries[1].Op != OpDone {
		t.Fatalf("replayed %+v, want both records (last parses despite missing newline)", entries)
	}
}

func TestJournalWriteFaultsAbsorbed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	fail := true
	hooks := JournalHooks{
		Write: func(b []byte, next func([]byte) (int, error)) (int, error) {
			if fail {
				return 0, fmt.Errorf("disk on fire")
			}
			return next(b)
		},
		Sync: func(next func() error) error {
			if fail {
				return fmt.Errorf("fsync on fire")
			}
			return next()
		},
	}
	j, _ := openTestJournal(t, path, hooks)
	j.Append(Entry{Op: OpSubmit, ID: "lost"})
	if j.WriteFailures() == 0 {
		t.Fatal("write failure not counted")
	}
	fail = false
	j.Append(Entry{Op: OpSubmit, ID: "kept"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, entries := openTestJournal(t, path, JournalHooks{})
	if len(entries) != 1 || entries[0].ID != "kept" {
		t.Fatalf("replayed %+v, want only the record written after the fault cleared", entries)
	}
}

func TestJournalIntervalPolicyFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	j, _, err := OpenJournal(JournalConfig{Path: path, Fsync: FsyncInterval, Interval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Entry{Op: OpSubmit, ID: "a"})
	deadline := time.Now().Add(2 * time.Second)
	for {
		raw, _ := os.ReadFile(path)
		if strings.Contains(string(raw), `"id":"a"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never wrote the entry")
		}
		time.Sleep(time.Millisecond)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"", FsyncInterval, true},
		{"interval", FsyncInterval, true},
		{"always", FsyncAlways, true},
		{"never", FsyncNever, true},
		{"sometimes", "", false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && !errors.Is(err, check.ErrInvalidModel) {
			t.Fatalf("ParseFsyncPolicy(%q): %v, want ErrInvalidModel", tc.in, err)
		}
	}
}
