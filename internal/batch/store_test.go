package batch

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"finwl/internal/check"
)

func fakeClock(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestStoreLifecycle(t *testing.T) {
	now, _ := fakeClock(time.Unix(1000, 0))
	st := NewStore[string](4, time.Minute, now)
	if err := st.Add("j1", 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Add("j1", 3); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("duplicate id: %v, want ErrInvalidModel", err)
	}
	r, ok := st.Get("j1")
	if !ok || r.State != StateQueued || r.JobsTotal != 3 {
		t.Fatalf("fresh record: %+v ok=%v", r, ok)
	}
	st.Start("j1")
	st.Plan("j1", 3, []int{2, 1})
	st.GroupState("j1", 0, StateRunning)
	st.JobsDone("j1", 2)
	r, _ = st.Get("j1")
	if r.State != StateRunning || r.JobsDone != 2 || len(r.Groups) != 2 || r.Groups[0].State != StateRunning {
		t.Fatalf("mid-flight record: %+v", r)
	}
	st.Finish("j1", []string{"a", "b", "c"}, nil)
	r, _ = st.Get("j1")
	if r.State != StateDone || len(r.Results) != 3 || r.JobsDone != 3 || r.Err != nil {
		t.Fatalf("done record: %+v", r)
	}
	// A second Finish (e.g. a drain racing completion) must not clobber.
	st.Finish("j1", nil, check.ErrCanceled)
	r, _ = st.Get("j1")
	if r.Err != nil || len(r.Results) != 3 {
		t.Fatalf("refinished record clobbered: %+v", r)
	}
	if held, active := st.Len(); held != 1 || active != 0 {
		t.Fatalf("len: held=%d active=%d", held, active)
	}
}

func TestStoreCapacityAndEviction(t *testing.T) {
	now, _ := fakeClock(time.Unix(1000, 0))
	st := NewStore[int](2, time.Minute, now)
	if err := st.Add("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Add("b", 1); err != nil {
		t.Fatal(err)
	}
	// Both active: a third submission is rejected typed.
	if err := st.Add("c", 1); !errors.Is(err, check.ErrOverloaded) {
		t.Fatalf("full store: %v, want ErrOverloaded", err)
	}
	// Once a record completes it is evictable and the submission fits.
	st.Finish("a", []int{1}, nil)
	if err := st.Add("c", 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("a"); ok {
		t.Fatal("oldest done record survived eviction")
	}
	if _, ok := st.Get("b"); !ok {
		t.Fatal("active record evicted")
	}
}

func TestStoreTTL(t *testing.T) {
	now, advance := fakeClock(time.Unix(1000, 0))
	st := NewStore[int](4, time.Minute, now)
	if err := st.Add("a", 1); err != nil {
		t.Fatal(err)
	}
	st.Finish("a", []int{42}, nil)
	advance(59 * time.Second)
	if _, ok := st.Get("a"); !ok {
		t.Fatal("record expired before its TTL")
	}
	advance(2 * time.Second)
	if _, ok := st.Get("a"); ok {
		t.Fatal("record survived past its TTL")
	}
	// Active records never expire.
	if err := st.Add("b", 1); err != nil {
		t.Fatal(err)
	}
	advance(time.Hour)
	if _, ok := st.Get("b"); !ok {
		t.Fatal("active record expired")
	}
}

func TestStoreDrainQueued(t *testing.T) {
	now, _ := fakeClock(time.Unix(1000, 0))
	st := NewStore[int](8, time.Minute, now)
	for _, id := range []string{"queued", "running", "done"} {
		if err := st.Add(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	st.Start("running")
	st.Finish("done", []int{7}, nil)
	st.DrainQueued(check.ErrCanceled)
	if r, _ := st.Get("queued"); r.State != StateDone || !errors.Is(r.Err, check.ErrCanceled) {
		t.Fatalf("queued record after drain: %+v", r)
	}
	if r, _ := st.Get("running"); r.State != StateRunning || r.Err != nil {
		t.Fatalf("running record perturbed by drain: %+v", r)
	}
	if r, _ := st.Get("done"); r.Err != nil || len(r.Results) != 1 {
		t.Fatalf("done record perturbed by drain: %+v", r)
	}
}

func TestStoreGoneTracking(t *testing.T) {
	now, advance := fakeClock(time.Unix(1000, 0))
	st := NewStore[int](2, time.Minute, now)
	st.TrackGone(8)
	if _, status := st.Lookup("never"); status != LookupMiss {
		t.Fatalf("unknown id: %v, want LookupMiss", status)
	}
	if err := st.Add("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, status := st.Lookup("a"); status != LookupHit {
		t.Fatal("live record not a hit")
	}
	st.Finish("a", []int{1}, nil)
	advance(2 * time.Minute)
	if _, status := st.Lookup("a"); status != LookupGone {
		t.Fatal("TTL-expired record not marked gone")
	}
	// Capacity eviction marks gone too.
	if err := st.Add("b", 1); err != nil {
		t.Fatal(err)
	}
	st.Finish("b", []int{2}, nil)
	for _, id := range []string{"c", "d"} {
		if err := st.Add(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, status := st.Lookup("b"); status != LookupGone {
		t.Fatal("evicted record not marked gone")
	}
	// MarkGone for a record that never entered the live map.
	st.MarkGone("replayed-stale")
	if _, status := st.Lookup("replayed-stale"); status != LookupGone {
		t.Fatal("MarkGone id not gone")
	}
}

func TestStoreGoneDisabledByDefault(t *testing.T) {
	now, advance := fakeClock(time.Unix(1000, 0))
	st := NewStore[int](2, time.Minute, now)
	if err := st.Add("a", 1); err != nil {
		t.Fatal(err)
	}
	st.Finish("a", []int{1}, nil)
	advance(2 * time.Minute)
	if _, status := st.Lookup("a"); status != LookupMiss {
		t.Fatal("gone tracking active without TrackGone; the journal-off path must keep 404 semantics")
	}
}

func TestStoreGoneBounded(t *testing.T) {
	now, _ := fakeClock(time.Unix(1000, 0))
	st := NewStore[int](2, time.Minute, now)
	st.TrackGone(2)
	for _, id := range []string{"g1", "g2", "g3"} {
		st.MarkGone(id)
	}
	if _, status := st.Lookup("g1"); status != LookupMiss {
		t.Fatal("oldest tombstone survived past gone capacity")
	}
	if _, status := st.Lookup("g3"); status != LookupGone {
		t.Fatal("newest tombstone lost")
	}
}

func TestStoreRestore(t *testing.T) {
	now, _ := fakeClock(time.Unix(5000, 0))
	st := NewStore[string](2, time.Minute, now)
	created := time.Unix(4000, 0)
	finished := time.Unix(4970, 0) // within TTL of the clock's 5000
	rec := Record[string]{
		ID: "r1", State: StateDone, JobsTotal: 2, JobsDone: 2,
		Results: []string{"x", "y"}, Created: created, Finished: finished,
	}
	if !st.Restore(rec) {
		t.Fatal("first restore rejected")
	}
	if st.Restore(rec) {
		t.Fatal("duplicate restore accepted; replay would double-insert")
	}
	got, ok := st.Get("r1")
	if !ok || !got.Created.Equal(created) || !got.Finished.Equal(finished) || len(got.Results) != 2 {
		t.Fatalf("restored record: %+v ok=%v", got, ok)
	}
	// Store-full + journal-replay interaction: restores beyond capacity
	// evict done records first, and when only active records remain the
	// restore still lands — journaled work is never dropped.
	if err := st.Add("active1", 1); err != nil {
		t.Fatal(err)
	}
	if !st.Restore(Record[string]{ID: "r2", State: StateQueued, JobsTotal: 1, Created: created}) {
		t.Fatal("restore over capacity rejected")
	}
	if _, ok := st.Get("r1"); ok {
		t.Fatal("done record not evicted to make room for a restore")
	}
	if !st.Restore(Record[string]{ID: "r3", State: StateQueued, JobsTotal: 1, Created: created}) {
		t.Fatal("restore with only active records rejected")
	}
	if held, active := st.Len(); held != 3 || active != 3 {
		t.Fatalf("after over-capacity restore: held=%d active=%d, want 3/3", held, active)
	}
}

// TestStoreConcurrentAccess exercises Put/Get/evict/expire under the
// race detector with the fake clock advancing concurrently.
func TestStoreConcurrentAccess(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	st := NewStore[int](8, 50*time.Millisecond, clock)
	st.TrackGone(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("w%d-%d", w, i)
				if err := st.Add(id, 1); err == nil {
					st.Start(id)
					st.JobsDone(id, 1)
					st.Finish(id, []int{i}, nil)
				}
				st.Get(id)
				st.Lookup(id)
				st.Restore(Record[int]{ID: id + "-r", State: StateDone, JobsTotal: 1, Created: clock(), Finished: clock()})
				st.Len()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			mu.Lock()
			now = now.Add(10 * time.Millisecond)
			mu.Unlock()
		}
	}()
	wg.Wait()
}
