package batch

import (
	"errors"
	"testing"
	"time"

	"finwl/internal/check"
)

func fakeClock(start time.Time) (func() time.Time, func(time.Duration)) {
	now := start
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestStoreLifecycle(t *testing.T) {
	now, _ := fakeClock(time.Unix(1000, 0))
	st := NewStore[string](4, time.Minute, now)
	if err := st.Add("j1", 3); err != nil {
		t.Fatal(err)
	}
	if err := st.Add("j1", 3); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("duplicate id: %v, want ErrInvalidModel", err)
	}
	r, ok := st.Get("j1")
	if !ok || r.State != StateQueued || r.JobsTotal != 3 {
		t.Fatalf("fresh record: %+v ok=%v", r, ok)
	}
	st.Start("j1")
	st.Plan("j1", 3, []int{2, 1})
	st.GroupState("j1", 0, StateRunning)
	st.JobsDone("j1", 2)
	r, _ = st.Get("j1")
	if r.State != StateRunning || r.JobsDone != 2 || len(r.Groups) != 2 || r.Groups[0].State != StateRunning {
		t.Fatalf("mid-flight record: %+v", r)
	}
	st.Finish("j1", []string{"a", "b", "c"}, nil)
	r, _ = st.Get("j1")
	if r.State != StateDone || len(r.Results) != 3 || r.JobsDone != 3 || r.Err != nil {
		t.Fatalf("done record: %+v", r)
	}
	// A second Finish (e.g. a drain racing completion) must not clobber.
	st.Finish("j1", nil, check.ErrCanceled)
	r, _ = st.Get("j1")
	if r.Err != nil || len(r.Results) != 3 {
		t.Fatalf("refinished record clobbered: %+v", r)
	}
	if held, active := st.Len(); held != 1 || active != 0 {
		t.Fatalf("len: held=%d active=%d", held, active)
	}
}

func TestStoreCapacityAndEviction(t *testing.T) {
	now, _ := fakeClock(time.Unix(1000, 0))
	st := NewStore[int](2, time.Minute, now)
	if err := st.Add("a", 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Add("b", 1); err != nil {
		t.Fatal(err)
	}
	// Both active: a third submission is rejected typed.
	if err := st.Add("c", 1); !errors.Is(err, check.ErrOverloaded) {
		t.Fatalf("full store: %v, want ErrOverloaded", err)
	}
	// Once a record completes it is evictable and the submission fits.
	st.Finish("a", []int{1}, nil)
	if err := st.Add("c", 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Get("a"); ok {
		t.Fatal("oldest done record survived eviction")
	}
	if _, ok := st.Get("b"); !ok {
		t.Fatal("active record evicted")
	}
}

func TestStoreTTL(t *testing.T) {
	now, advance := fakeClock(time.Unix(1000, 0))
	st := NewStore[int](4, time.Minute, now)
	if err := st.Add("a", 1); err != nil {
		t.Fatal(err)
	}
	st.Finish("a", []int{42}, nil)
	advance(59 * time.Second)
	if _, ok := st.Get("a"); !ok {
		t.Fatal("record expired before its TTL")
	}
	advance(2 * time.Second)
	if _, ok := st.Get("a"); ok {
		t.Fatal("record survived past its TTL")
	}
	// Active records never expire.
	if err := st.Add("b", 1); err != nil {
		t.Fatal(err)
	}
	advance(time.Hour)
	if _, ok := st.Get("b"); !ok {
		t.Fatal("active record expired")
	}
}

func TestStoreDrainQueued(t *testing.T) {
	now, _ := fakeClock(time.Unix(1000, 0))
	st := NewStore[int](8, time.Minute, now)
	for _, id := range []string{"queued", "running", "done"} {
		if err := st.Add(id, 1); err != nil {
			t.Fatal(err)
		}
	}
	st.Start("running")
	st.Finish("done", []int{7}, nil)
	st.DrainQueued(check.ErrCanceled)
	if r, _ := st.Get("queued"); r.State != StateDone || !errors.Is(r.Err, check.ErrCanceled) {
		t.Fatalf("queued record after drain: %+v", r)
	}
	if r, _ := st.Get("running"); r.State != StateRunning || r.Err != nil {
		t.Fatalf("running record perturbed by drain: %+v", r)
	}
	if r, _ := st.Get("done"); r.Err != nil || len(r.Results) != 1 {
		t.Fatalf("done record perturbed by drain: %+v", r)
	}
}
