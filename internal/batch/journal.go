package batch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"finwl/internal/check"
)

// FsyncPolicy selects how eagerly journal appends reach the disk.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs after every append: a record is durable before
	// its caller sees the submit acknowledged. Highest latency.
	FsyncAlways FsyncPolicy = "always"
	// FsyncInterval batches fsyncs on a background ticker (default
	// 100ms): a crash loses at most one interval of appends. The
	// replayer treats whatever survived as the truth, so the only cost
	// is re-running work whose submit record was lost.
	FsyncInterval FsyncPolicy = "interval"
	// FsyncNever leaves flushing to the OS page cache — durable across
	// process crashes but not across power loss.
	FsyncNever FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a policy string (the -fsync flag).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case "", FsyncInterval:
		return FsyncInterval, nil
	case FsyncAlways:
		return FsyncAlways, nil
	case FsyncNever:
		return FsyncNever, nil
	}
	return "", check.Invalid("batch: fsync policy %q, want always|interval|never", s)
}

// Journal entry ops. A job's life on disk is one OpSubmit, zero or
// more OpGroup checkpoints, and exactly one of OpDone / OpCancel; the
// fleet router additionally journals OpRedispatch when it moves an
// orphaned job to a ring successor. Unknown ops are skipped on replay
// so a journal written by a newer build still rehydrates what this
// one understands.
const (
	OpSubmit     = "submit"
	OpGroup      = "group"
	OpDone       = "done"
	OpCancel     = "cancel"
	OpRedispatch = "redispatch"
)

// Entry is one journal record. Fields beyond Op/ID are op-specific;
// payloads (the submitted requests, a checkpoint group's settled
// items) stay raw JSON so the journal does not depend on the serving
// layer's types.
type Entry struct {
	Op string    `json:"op"`
	ID string    `json:"id"`
	T  time.Time `json:"t,omitempty"`

	// OpSubmit
	IdemKey   string          `json:"idem_key,omitempty"`
	JobsTotal int             `json:"jobs_total,omitempty"`
	Reqs      json.RawMessage `json:"reqs,omitempty"`
	Owner     string          `json:"owner,omitempty"` // router journal: owning replica URL
	Key       string          `json:"key,omitempty"`   // router journal: dominant shard key

	// OpGroup (one solved group's checkpoint) and OpDone (final items).
	Group  int             `json:"group,omitempty"`
	Idx    []int           `json:"idx,omitempty"` // request indices settled by Items
	Groups []int           `json:"groups,omitempty"`
	Items  json.RawMessage `json:"items,omitempty"`

	// OpCancel / OpDone with a batch-level error.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`

	// OpRedispatch
	NewID string `json:"new_id,omitempty"`

	// ReqsV/ItemsV are lazy variants of Reqs/Items: writeEntry
	// marshals them at write time — on the flush goroutine under the
	// interval policy — so submit/settle hot paths never pay for
	// payload serialization. Never populated on replayed entries.
	ReqsV  any `json:"-"`
	ItemsV any `json:"-"`
}

// JournalHooks intercept the journal's file writes and fsyncs, for
// fault injection (chaos.DiskFaults) and tests. A nil hook passes
// through. Hooks run under the journal's lock and must not call back
// into it.
type JournalHooks struct {
	Write func(b []byte, next func([]byte) (int, error)) (int, error)
	Sync  func(next func() error) error
}

// JournalConfig opens a Journal.
type JournalConfig struct {
	Path     string
	Fsync    FsyncPolicy   // default FsyncInterval
	Interval time.Duration // FsyncInterval period (default 100ms)
	Hooks    JournalHooks
	Logger   *slog.Logger     // torn-tail and write-failure warnings; nil discards
	Now      func() time.Time // entry timestamps (nil = wall clock)
}

// Journal is an append-only JSONL log of async-job state transitions.
// Appends are serialized under one mutex; replay happens once, in
// OpenJournal, before any append.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	w      *bufio.Writer
	hooks  JournalHooks
	policy FsyncPolicy
	now    func() time.Time
	logger *slog.Logger

	dirty  bool // appended since last sync (interval policy)
	closed bool

	writeFails atomic.Int64

	// Interval policy: Append hands the entry to the flush goroutine
	// instead of marshaling and writing on the caller — the policy
	// already tolerates losing an interval of appends on a crash, so
	// the handoff costs nothing in guarantees and keeps the submit
	// path's latency within a hair of the journal-less one.
	appendQ   chan Entry
	stopOnce  sync.Once
	flushStop chan struct{}
	flushDone chan struct{}
}

// OpenJournal opens (creating if needed) the journal at cfg.Path,
// replays every complete record already in it, and returns the entries
// oldest-first. A partial last record — the signature of a crash mid-
// append — is truncated away with a warning; a malformed record
// anywhere else fails typed check.ErrJournalCorrupt, because silently
// skipping it could resurrect or lose jobs.
func OpenJournal(cfg JournalConfig) (*Journal, []Entry, error) {
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncInterval
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	f, err := os.OpenFile(cfg.Path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("batch: open journal: %w", err)
	}
	entries, keep, err := replay(f, cfg.Path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if end, serr := f.Seek(0, io.SeekEnd); serr == nil && keep < end {
		if cfg.Logger != nil {
			cfg.Logger.Warn("journal: truncating torn tail",
				"path", cfg.Path, "kept_bytes", keep, "torn_bytes", end-keep)
		}
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("batch: truncate torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("batch: seek journal: %w", err)
	}
	j := &Journal{
		f:      f,
		w:      bufio.NewWriter(f),
		hooks:  cfg.Hooks,
		policy: cfg.Fsync,
		now:    cfg.Now,
		logger: cfg.Logger,
	}
	if j.policy == FsyncInterval {
		j.appendQ = make(chan Entry, 1024)
		j.flushStop = make(chan struct{})
		j.flushDone = make(chan struct{})
		go j.flushLoop(cfg.Interval)
	}
	return j, entries, nil
}

// replay decodes every complete record and returns the byte offset of
// the last good newline-terminated entry, so the caller can truncate a
// torn tail.
func replay(f *os.File, path string) (entries []Entry, keep int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("batch: seek journal: %w", err)
	}
	r := bufio.NewReader(f)
	line := 0
	for {
		raw, rerr := r.ReadBytes('\n')
		complete := rerr == nil
		if len(raw) > 0 {
			line++
			var e Entry
			if derr := json.Unmarshal(raw, &e); derr != nil || e.Op == "" || e.ID == "" {
				if !complete {
					// Torn tail: the crash interrupted this append.
					return entries, keep, nil
				}
				// A complete-but-broken record mid-file: flag, don't guess.
				return nil, 0, fmt.Errorf("batch: journal %s record %d: %v: %w",
					path, line, derr, check.ErrJournalCorrupt)
			}
			if !complete {
				// Parses but lost its newline — the final flush died after
				// the payload, before the terminator. The record is whole;
				// keep it and let the truncation re-align to its end.
				entries = append(entries, e)
				keep += int64(len(raw))
				return entries, keep, nil
			}
			entries = append(entries, e)
			keep += int64(len(raw))
		}
		if rerr != nil {
			if rerr == io.EOF {
				return entries, keep, nil
			}
			return nil, 0, fmt.Errorf("batch: read journal: %w", rerr)
		}
	}
}

// Append writes one entry. Failures are absorbed: the journal logs,
// counts them (WriteFailures), and the in-memory path keeps serving —
// durability degrades rather than availability. The entry's timestamp
// is stamped here if unset. Under the interval policy the entry is
// queued to the flush goroutine and lands within one interval; the
// other policies write (and, for always, fsync) before returning.
func (j *Journal) Append(e Entry) {
	if j == nil {
		return
	}
	if e.T.IsZero() {
		e.T = j.now()
	}
	if j.policy == FsyncInterval {
		select {
		case j.appendQ <- e:
		case <-j.flushStop:
			// Closing: the entry joins the (at most one interval of)
			// appends the policy already declares losable.
		}
		return
	}
	j.writeEntry(e)
}

// writeEntry marshals and writes one entry, applying the policy's
// flush behavior. Runs on the caller for always/never, on the flush
// goroutine for interval.
func (j *Journal) writeEntry(e Entry) {
	if e.Reqs == nil && e.ReqsV != nil {
		raw, err := json.Marshal(e.ReqsV)
		if err != nil {
			j.fail("marshal", err)
			return
		}
		e.Reqs, e.ReqsV = raw, nil
	}
	if e.Items == nil && e.ItemsV != nil {
		raw, err := json.Marshal(e.ItemsV)
		if err != nil {
			j.fail("marshal", err)
			return
		}
		e.Items, e.ItemsV = raw, nil
	}
	b, err := json.Marshal(&e)
	if err != nil {
		j.fail("marshal", err)
		return
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return
	}
	write := j.w.Write
	if j.hooks.Write != nil {
		prev := write
		write = func(p []byte) (int, error) { return j.hooks.Write(p, prev) }
	}
	if n, err := write(b); err != nil || n < len(b) {
		if err == nil {
			err = io.ErrShortWrite
		}
		j.fail("write", err)
		return
	}
	switch j.policy {
	case FsyncAlways:
		if err := j.syncLocked(); err != nil {
			j.fail("sync", err)
		}
	case FsyncInterval:
		j.dirty = true
	case FsyncNever:
		if err := j.w.Flush(); err != nil {
			j.fail("flush", err)
		}
	}
}

// Sync flushes buffered appends and fsyncs the file.
func (j *Journal) Sync() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if err := j.w.Flush(); err != nil {
		return err
	}
	sync := j.f.Sync
	if j.hooks.Sync != nil {
		prev := sync
		sync = func() error { return j.hooks.Sync(prev) }
	}
	if err := sync(); err != nil {
		return err
	}
	j.dirty = false
	return nil
}

// WriteFailures reports how many appends or syncs have failed since
// open — the degraded-durability tripwire surfaced as a metric.
func (j *Journal) WriteFailures() int64 {
	if j == nil {
		return 0
	}
	return j.writeFails.Load()
}

func (j *Journal) fail(stage string, err error) {
	j.writeFails.Add(1)
	if j.logger != nil {
		j.logger.Warn("journal: append failed, continuing without durability",
			"stage", stage, "error", err)
	}
}

func (j *Journal) flushLoop(interval time.Duration) {
	defer close(j.flushDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case e := <-j.appendQ:
			j.writeEntry(e)
		case <-t.C:
			j.mu.Lock()
			if j.dirty && !j.closed {
				if err := j.syncLocked(); err != nil {
					j.fail("sync", err)
				}
			}
			j.mu.Unlock()
		case <-j.flushStop:
			// Drain what made it into the queue before the stop signal,
			// then let Close take the final sync.
			for {
				select {
				case e := <-j.appendQ:
					j.writeEntry(e)
				default:
					return
				}
			}
		}
	}
}

// Close drains queued appends, performs a final sync and releases the
// file. Safe to call twice; appends after Close are dropped.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	if j.flushStop != nil {
		j.stopOnce.Do(func() { close(j.flushStop) })
		<-j.flushDone
	}
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	err := j.syncLocked()
	j.closed = true
	f := j.f
	j.mu.Unlock()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
