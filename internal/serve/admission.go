package serve

import (
	"fmt"
	"sync"

	"finwl/internal/check"
	"finwl/internal/statespace"
)

// chainPrice is the admission cost of an exact solve, delegated to
// statespace.ChainPrice so the serve and batch layers price against
// the same scale. Saturates at maxPrice.
const maxPrice = statespace.MaxPrice

func chainPrice(space *statespace.Space, maxK int) int64 {
	return space.ChainPrice(maxK)
}

// admission is a bounded, budget-priced job queue. A request acquires
// its state-space cost before solving and releases it after; requests
// that do not fit wait FIFO up to maxQueue deep, and anything beyond
// that — or priced over the whole budget — is rejected with a typed
// check.ErrOverloaded. close cancels every waiter (typed
// check.ErrCanceled) and rejects all future acquires, which is the
// drain path.
type admission struct {
	mu       sync.Mutex
	budget   int64
	used     int64
	maxQueue int
	queue    []*waiter
	closed   bool
	inflight sync.WaitGroup // one unit per granted acquire
}

type waiter struct {
	price   int64
	ready   chan struct{} // closed on grant
	granted bool
	err     error // set instead of grant on close
}

func newAdmission(budget int64, maxQueue int) *admission {
	return &admission{budget: budget, maxQueue: maxQueue}
}

// acquire blocks until price units of budget are available, the
// context ends, or the admission is closed. A nil return means the
// caller owns price units (and one inflight token) and must release.
func (a *admission) acquire(done <-chan struct{}, price int64) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return fmt.Errorf("serve: draining, not admitting work: %w", check.ErrOverloaded)
	}
	if price > a.budget {
		a.mu.Unlock()
		return fmt.Errorf("serve: model costs %d state-space units, budget is %d: %w", price, a.budget, check.ErrOverloaded)
	}
	if a.used+price <= a.budget && len(a.queue) == 0 {
		a.grantLocked(price)
		a.mu.Unlock()
		return nil
	}
	if len(a.queue) >= a.maxQueue {
		n := len(a.queue)
		a.mu.Unlock()
		return fmt.Errorf("serve: job queue full (%d waiting): %w", n, check.ErrOverloaded)
	}
	w := &waiter{price: price, ready: make(chan struct{})}
	a.queue = append(a.queue, w)
	a.mu.Unlock()

	select {
	case <-w.ready:
		if w.err != nil {
			return w.err
		}
		return nil
	case <-done:
		a.mu.Lock()
		if w.granted {
			// Lost the race: the grant landed while we were cancelling.
			a.releaseLocked(price)
			a.mu.Unlock()
			return fmt.Errorf("serve: canceled while queued: %w", check.ErrCanceled)
		}
		a.removeLocked(w)
		a.mu.Unlock()
		return fmt.Errorf("serve: canceled while queued: %w", check.ErrCanceled)
	}
}

// grantLocked charges the budget and takes an inflight token.
func (a *admission) grantLocked(price int64) {
	a.used += price
	a.inflight.Add(1)
}

// release returns price units and promotes FIFO waiters that now fit.
func (a *admission) release(price int64) {
	a.mu.Lock()
	a.releaseLocked(price)
	a.mu.Unlock()
}

func (a *admission) releaseLocked(price int64) {
	a.used -= price
	a.inflight.Done()
	for len(a.queue) > 0 {
		w := a.queue[0]
		if a.used+w.price > a.budget {
			break
		}
		a.queue = a.queue[1:]
		w.granted = true
		a.grantLocked(w.price)
		close(w.ready)
	}
}

func (a *admission) removeLocked(target *waiter) {
	for i, w := range a.queue {
		if w == target {
			a.queue = append(a.queue[:i], a.queue[i+1:]...)
			return
		}
	}
}

// close stops admitting: every queued waiter fails typed as canceled,
// and future acquires are rejected as overloaded. In-flight work is
// untouched; callers drain it via wait.
func (a *admission) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return
	}
	a.closed = true
	for _, w := range a.queue {
		w.err = fmt.Errorf("serve: queued work canceled by drain: %w", check.ErrCanceled)
		close(w.ready)
	}
	a.queue = nil
}

// wait blocks until all granted work has released.
func (a *admission) wait() { a.inflight.Wait() }

// stats returns the current budget occupancy and queue depth.
func (a *admission) snapshot() (used, budget int64, queued int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used, a.budget, len(a.queue)
}
