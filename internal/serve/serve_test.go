package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// healthyTwoStation builds a small well-posed open-exit network.
func healthyTwoStation() *NetworkSpec {
	route := matrix.New(2, 2)
	route.Set(0, 1, 0.5)
	route.Set(1, 0, 1)
	return SpecFromNetwork(&network.Network{
		Stations: []network.Station{
			{Name: "cpu", Kind: statespace.Delay, Service: phase.MustExpo(2)},
			{Name: "io", Kind: statespace.Queue, Service: phase.MustExpo(3)},
		},
		Route: route,
		Exit:  []float64{0.5, 0},
		Entry: []float64{1, 0},
	})
}

// trappedTwoStation is the same station shapes (and therefore the same
// breaker class) with a closed loop: exact, steady and bounds all fail
// with singular traffic equations.
func trappedTwoStation() *NetworkSpec {
	spec := healthyTwoStation()
	spec.Route[0][1] = 1
	spec.Exit = []Num{0, 0}
	return spec
}

func TestSolveExactThenCached(t *testing.T) {
	s := New(Config{Seed: 1})
	req := &Request{Arch: "central", K: 3, N: 10}
	resp, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if resp.Fidelity != FidelityExact || resp.Cached || resp.TotalTime <= 0 {
		t.Fatalf("first solve = %+v, want fresh exact with positive total time", resp)
	}
	resp2, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("second Solve: %v", err)
	}
	if !resp2.Cached || resp2.TotalTime != resp.TotalTime {
		t.Fatalf("second solve = %+v, want cache hit with identical value", resp2)
	}
	if st := s.Snapshot(); st.CacheHits != 1 || st.Exact != 1 {
		t.Fatalf("stats = %+v, want 1 cache hit and 1 exact solve", st)
	}
}

func TestCacheKeyCanonicalizesClusterAndRawForms(t *testing.T) {
	// A cluster request and the raw-network spelling of the same model
	// must share a cache entry.
	s := New(Config{Seed: 1})
	cReq := &Request{Arch: "central", K: 3, N: 10}
	cResp, err := s.Solve(context.Background(), cReq)
	if err != nil {
		t.Fatal(err)
	}
	net, err := cReq.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	rawResp, err := s.Solve(context.Background(), &Request{K: 3, N: 10, Network: SpecFromNetwork(net)})
	if err != nil {
		t.Fatal(err)
	}
	if !rawResp.Cached || rawResp.TotalTime != cResp.TotalTime {
		t.Fatalf("raw-form solve = %+v, want a cache hit on the cluster-form entry", rawResp)
	}
}

func TestBreakerForcesDegradedFidelity(t *testing.T) {
	s := New(Config{Seed: 1, BreakerThreshold: 2})
	ctx := context.Background()

	// Two singular failures of the class trip its breaker: the trapped
	// network fails every rung, so each request exhausts the ladder.
	for i := 0; i < 2; i++ {
		req := &Request{K: 3, N: 5 + i, Network: trappedTwoStation()}
		if _, err := s.Solve(ctx, req); !errors.Is(err, check.ErrSingular) {
			t.Fatalf("trapped solve %d: err = %v, want ErrSingular", i, err)
		}
	}

	// A healthy model of the same class now skips the exact tiers.
	resp, err := s.Solve(ctx, &Request{K: 3, N: 5, Network: healthyTwoStation()})
	if err == nil || !errors.Is(err, check.ErrDegraded) {
		t.Fatalf("err = %v, want a DegradedError matching check.ErrDegraded", err)
	}
	if resp == nil {
		t.Fatal("degraded solve returned no usable response")
	}
	if resp.Fidelity != FidelitySteady {
		t.Fatalf("fidelity = %s, want steady-state (breaker open, no deadline pressure)", resp.Fidelity)
	}
	if resp.DegradedFrom == "" {
		t.Fatal("degraded response carries no degraded_from reason")
	}
	var de *DegradedError
	if !errors.As(err, &de) || de.Fidelity != resp.Fidelity {
		t.Fatalf("error detail %v does not mirror the response fidelity %s", err, resp.Fidelity)
	}
	if st := s.Snapshot(); st.Degraded != 1 || st.Failures != 2 {
		t.Fatalf("stats = %+v, want 2 ladder failures and 1 degraded response", st)
	}
}

// TestHalfOpenProbeReleasedWithoutOutcome is the regression test for
// the probe-token leak: a request that wins the half-open probe but
// never reports an outcome — here because its deadline keeps
// selectTier away from the exact rungs — must release the token, or
// every later request sees allow() = (false, false) and the class is
// stuck degraded until restart.
func TestHalfOpenProbeReleasedWithoutOutcome(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	s := New(Config{
		Seed:             1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Second,
		Now:              clk.now,
		// ~0.1s per state-space unit puts the exact estimate in the
		// seconds for the two-station class: far above a 500ms request
		// deadline, far below the 60s default cap.
		ExactNsPerUnit: 1e8,
	})
	ctx := context.Background()

	// One singular failure trips the class breaker (threshold 1).
	if _, err := s.Solve(ctx, &Request{K: 3, N: 5, Network: trappedTwoStation()}); !errors.Is(err, check.ErrSingular) {
		t.Fatalf("trapped solve: err = %v, want ErrSingular", err)
	}
	clk.advance(time.Second) // open → half-open

	// This request claims the probe token, but its 500ms deadline is
	// below the exact estimate, so no exact rung runs and the probe
	// outcome is never reported.
	resp, err := s.Solve(ctx, &Request{K: 3, N: 5, Network: healthyTwoStation(), TimeoutMS: 500})
	if !errors.Is(err, check.ErrDegraded) {
		t.Fatalf("probe-claiming solve: err = %v (resp %+v), want ErrDegraded", err, resp)
	}

	// The next deadline-free request of the class must get a fresh
	// probe, run exact, and close the breaker.
	resp, err = s.Solve(ctx, &Request{K: 3, N: 6, Network: healthyTwoStation()})
	if err != nil {
		t.Fatalf("recovery solve: %v", err)
	}
	if resp.Fidelity != FidelityExact {
		t.Fatalf("recovery fidelity = %s, want exact (leaked probe token?)", resp.Fidelity)
	}
	if resp.Breaker != BreakerClosed.String() {
		t.Fatalf("breaker after successful probe = %q, want closed", resp.Breaker)
	}
}

// TestClassStateBounded: breaker and estimator tables are keyed by a
// client-controlled class and must not grow without bound.
func TestClassStateBounded(t *testing.T) {
	s := New(Config{Seed: 1, ClassCacheSize: 2})
	for k := 1; k <= 4; k++ { // four distinct classes (class key includes K)
		if _, err := s.Solve(context.Background(), &Request{Arch: "central", K: k, N: 10}); err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
	}
	if n := s.breakers.len(); n > 2 {
		t.Fatalf("breaker classes = %d, want ≤ 2 (LRU-bounded)", n)
	}
	if n := s.est.classes.len(); n > 2 {
		t.Fatalf("estimator classes = %d, want ≤ 2 (LRU-bounded)", n)
	}
}

func TestDeadlineDegrades(t *testing.T) {
	s := New(Config{Seed: 1})
	// A model whose exact-tier estimate is far above a 1ms deadline.
	resp, err := s.Solve(context.Background(), &Request{Arch: "central", K: 10, N: 50, TimeoutMS: 1})
	if !errors.Is(err, check.ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if resp == nil || !resp.Degraded() {
		t.Fatalf("resp = %+v, want a degraded approximation", resp)
	}
	if resp.Fidelity == FidelityBounds && resp.TotalTimeLower >= resp.TotalTimeUpper {
		t.Fatalf("bounds envelope [%v, %v] is empty", resp.TotalTimeLower, resp.TotalTimeUpper)
	}
}

func TestHTTPFidelityRoundTrip(t *testing.T) {
	s := New(Config{Seed: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(body string) (int, map[string]any) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/solve", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("bad JSON body %q: %v", raw, err)
		}
		return resp.StatusCode, m
	}

	status, body := post(`{"arch":"central","k":3,"n":10}`)
	if status != http.StatusOK || body["fidelity"] != "exact" {
		t.Fatalf("healthy solve: status %d body %v, want 200 fidelity=exact", status, body)
	}

	// The degraded tag must round-trip to the client on a 200.
	status, body = post(`{"arch":"central","k":10,"n":50,"timeout_ms":1}`)
	if status != http.StatusOK {
		t.Fatalf("degraded solve: status %d body %v, want 200", status, body)
	}
	fid, _ := body["fidelity"].(string)
	if fid != string(FidelitySteady) && fid != string(FidelityBounds) {
		t.Fatalf("degraded fidelity = %q, want steady-state or bounds", fid)
	}
	if body["degraded_from"] == "" {
		t.Fatalf("degraded body %v carries no degraded_from", body)
	}

	// Error mapping: bad model, wrong method, unknown field.
	status, body = post(`{"arch":"central","k":0,"n":10}`)
	if status != http.StatusBadRequest || body["code"] != "invalid_model" {
		t.Fatalf("invalid model: status %d body %v, want 400 invalid_model", status, body)
	}
	status, body = post(`{"arch":"central","k":3,"n":10,"bogus":1}`)
	if status != http.StatusBadRequest || body["code"] != "invalid_model" {
		t.Fatalf("unknown field: status %d body %v, want 400 invalid_model", status, body)
	}
	getResp, err := ts.Client().Get(ts.URL + "/solve")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /solve: status %d, want 405", getResp.StatusCode)
	}
}

// TestDrainUnderLoad is the issue-mandated shutdown scenario: with one
// request solving and one queued, Drain must cancel the queued request
// (typed check.ErrCanceled), finish or force-cancel the in-flight one,
// reject new work as draining, and leak no goroutines.
func TestDrainUnderLoad(t *testing.T) {
	before := runtime.NumGoroutine()

	inflightReq := &Request{Arch: "central", K: 16, N: 2000}
	net, err := inflightReq.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	price := chainPrice(net.Space(), inflightReq.K)
	// Budget fits exactly one such solve, so the second request queues.
	s := New(Config{Seed: 1, Budget: price, MaxQueue: 4})

	var wg sync.WaitGroup
	errs := make([]error, 2)
	resps := make([]*Response, 2)
	for i := 0; i < 2; i++ {
		i := i
		req := &Request{Arch: "central", K: 16, N: 2000 + i}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resps[i], errs[i] = s.Solve(context.Background(), req)
		}()
		// Admit the first fully before launching the second so the
		// in-flight/queued roles are deterministic.
		waitFor(t, func() bool {
			used, _, queued := s.adm.snapshot()
			return used > 0 && queued >= i
		})
	}

	// Force-cancel drain: the deadline is already unreachable for the
	// in-flight exact solve.
	drainCtx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	err = s.Drain(drainCtx)
	wg.Wait()

	if err == nil || !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("Drain = %v, want a typed deadline-expired report", err)
	}
	canceled := 0
	for i := 0; i < 2; i++ {
		if errs[i] == nil {
			continue // finished before the force-cancel landed
		}
		if !errors.Is(errs[i], check.ErrCanceled) {
			t.Fatalf("request %d: err = %v (resp %+v), want ErrCanceled", i, errs[i], resps[i])
		}
		canceled++
	}
	if canceled == 0 {
		t.Fatal("no request observed the drain cancel; the scenario did not exercise the path")
	}

	// New work is refused as draining (503, not 429).
	_, err = s.Solve(context.Background(), &Request{Arch: "central", K: 3, N: 5})
	if !errors.Is(err, ErrDraining) || !errors.Is(err, check.ErrOverloaded) {
		t.Fatalf("post-drain Solve: err = %v, want ErrDraining ∧ ErrOverloaded", err)
	}
	if StatusOf(err) != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503", StatusOf(err))
	}

	// No goroutine may outlive the drain (issue: leak check under
	// cancel-during-drain).
	waitForGoroutines(t, before)
}

// TestDrainCompletesInflight: with an ample deadline, Drain lets the
// running solve finish and returns nil.
func TestDrainCompletesInflight(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{Seed: 1})
	var wg sync.WaitGroup
	var resp *Response
	var solveErr error
	var done atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, solveErr = s.Solve(context.Background(), &Request{Arch: "central", K: 10, N: 80})
		done.Store(true)
	}()
	// In-flight, or already finished (the solve is only ~tens of ms).
	waitFor(t, func() bool {
		used, _, _ := s.adm.snapshot()
		return used > 0 || done.Load()
	})

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	if solveErr != nil {
		t.Fatalf("in-flight solve: %v", solveErr)
	}
	if resp.Fidelity != FidelityExact {
		t.Fatalf("in-flight solve fidelity = %s, want exact", resp.Fidelity)
	}
	waitForGoroutines(t, before)
}

func TestStatusAndCodeMapping(t *testing.T) {
	cases := []struct {
		err    error
		status int
		code   string
	}{
		{nil, 200, ""},
		{&DegradedError{Fidelity: FidelityBounds, Reason: "x"}, 200, "degraded"},
		{check.Invalid("x"), 400, "invalid_model"},
		{errDraining(), 503, "draining"},
		{check.ErrOverloaded, 429, "overloaded"},
		{check.ErrCanceled, 504, "canceled"},
		{check.ErrSingular, 503, "singular"},
		{check.ErrNumeric, 503, "numeric"},
		{check.ErrNotConverged, 503, "not_converged"},
		{errors.New("mystery"), 500, "internal"},
	}
	for _, tc := range cases {
		if got := StatusOf(tc.err); got != tc.status {
			t.Errorf("StatusOf(%v) = %d, want %d", tc.err, got, tc.status)
		}
		if got := CodeOf(tc.err); got != tc.code {
			t.Errorf("CodeOf(%v) = %q, want %q", tc.err, got, tc.code)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// waitForGoroutines asserts the goroutine count settles back to the
// baseline (solver teardown is asynchronous for a few scheduler ticks).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after\n%s", baseline, runtime.NumGoroutine(), buf[:n])
}

// TestStatsChainBuildAllocs: /stats surfaces the heap cost of the most
// recent chain construction (the finwl_chain_build_allocs gauges) once
// a solve has built one.
func TestStatsChainBuildAllocs(t *testing.T) {
	s := New(Config{Seed: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, err := s.Solve(context.Background(), &Request{Arch: "central", K: 3, N: 10}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body statsBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.ChainBuildAllocs <= 0 || body.ChainBuildBytes <= 0 {
		t.Fatalf("chain build stats = (%d objects, %d bytes), want both positive",
			body.ChainBuildAllocs, body.ChainBuildBytes)
	}
}

// TestRequestIdentityFastPath: a repeated request is served from the
// result cache via the request-identity mapping — without rebuilding
// the network — and deadline changes do not split the identity.
func TestRequestIdentityFastPath(t *testing.T) {
	s := New(Config{Seed: 1})
	ctx := context.Background()
	first, err := s.Solve(ctx, &Request{Arch: "central", K: 3, N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first solve must miss")
	}
	// Same request with a different deadline: still one identity.
	hit, err := s.Solve(ctx, &Request{Arch: "central", K: 3, N: 10, TimeoutMS: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("repeat solve must hit the cache")
	}
	if hit.TotalTime != first.TotalTime {
		t.Fatalf("cached TotalTime = %v, want %v", hit.TotalTime, first.TotalTime)
	}
	if got := s.Snapshot().CacheHits; got != 1 {
		t.Fatalf("cache hits = %d, want 1", got)
	}
}
