package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"finwl/internal/batch"
	"finwl/internal/check"
	"finwl/internal/obs"
)

// BatchItem is one element of a /batch (or finished async job)
// response: a full Response on success, an error body otherwise.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
	Code     string    `json:"code,omitempty"`
}

func errItem(err error) BatchItem {
	return BatchItem{Error: err.Error(), Code: CodeOf(err)}
}

// SolveBatch runs a set of requests through the shared-chain batch
// scheduler and returns one item per request, in order. It never
// fails as a whole: per-job errors are typed into their items. Jobs
// over the same network share one chain build and one sweep; per-job
// TimeoutMS is ignored — the whole batch runs under MaxTimeout.
func (s *Server) SolveBatch(ctx context.Context, reqs []*Request) []BatchItem {
	return s.solveBatch(ctx, reqs, nil)
}

func (s *Server) solveBatch(ctx context.Context, reqs []*Request, prog *batch.Progress) []BatchItem {
	span := s.m.batchSeconds.Start()
	defer span.End()
	s.m.batchJobs.Add(int64(len(reqs)))
	items := make([]BatchItem, len(reqs))
	if s.draining.Load() {
		err := errDraining()
		s.m.rejected.Add(int64(len(reqs)))
		for i := range items {
			items[i] = errItem(err)
		}
		return items
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.MaxTimeout)
	defer cancel()
	stop := context.AfterFunc(s.workCtx, cancel)
	defer stop()

	// Settle what needs no solving — invalid models and cache hits —
	// and hand the rest to the scheduler as keyed jobs.
	jobs := make([]batch.Job, 0, len(reqs))
	jobIdx := make([]int, 0, len(reqs))
	cacheKeys := make([]string, len(reqs))
	for i, req := range reqs {
		if req == nil {
			s.m.invalid.Inc()
			items[i] = errItem(check.Invalid("serve: batch job %d is null", i))
			continue
		}
		net, err := req.BuildNetwork()
		if err != nil {
			s.m.invalid.Inc()
			items[i] = errItem(err)
			continue
		}
		netKey := networkKey(net)
		cacheKeys[i] = fmt.Sprintf("%s|k=%d|n=%d", netKey, req.K, req.N)
		if cached, ok := s.cache.get(cacheKeys[i]); ok {
			s.m.cacheHits.Inc()
			cp := cached.clone()
			cp.Cached = true
			cp.Timings = &Timings{}
			items[i] = BatchItem{Response: cp}
			continue
		}
		s.m.cacheMisses.Inc()
		jobs = append(jobs, batch.Job{
			Key: fmt.Sprintf("%s|K=%d", netKey, req.K),
			Net: net,
			K:   req.K,
			N:   req.N,
		})
		jobIdx = append(jobIdx, i)
	}

	outcomes := s.sched.Run(ctx, jobs, prog)
	for oi, o := range outcomes {
		i := jobIdx[oi]
		if o.Shared {
			s.m.deduped.Inc()
			// A dedup follower rode a group from another submission: no
			// chain work of its own, whatever the leader paid for.
			s.m.batchChainReuse.Inc()
		}
		if o.Err != nil {
			if errors.Is(o.Err, check.ErrCanceled) {
				s.m.canceled.Inc()
			}
			items[i] = errItem(o.Err)
			continue
		}
		// Both tiers are full fidelity; the tag records whether this
		// group ran on a freshly built chain (exact) or swept a cached
		// factored one (checkpoint).
		fid := FidelityExact
		if o.Reused {
			fid = FidelityCheckpoint
		}
		resp := &Response{
			Fidelity:     fid,
			K:            reqs[i].K,
			N:            reqs[i].N,
			TotalTime:    o.Result.TotalTime,
			Epochs:       len(o.Result.Epochs),
			Price:        o.Price,
			Deduplicated: o.Shared,
			ElapsedMS:    durMS(o.Elapsed),
			Timings: &Timings{
				QueueMS: durMS(o.Wait),
				SolveMS: durMS(o.Elapsed),
			},
		}
		s.m.tierCounter(fid).Inc()
		s.m.solveTime.ObserveDuration(o.Elapsed)
		s.cache.add(cacheKeys[i], resp)
		items[i] = BatchItem{Response: resp.clone()}
	}
	return items
}

func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// jobBody is the GET /jobs/{id} response: progress while the batch
// runs, results (or the batch-level error) once done.
type jobBody struct {
	ID         string                `json:"id"`
	State      string                `json:"state"`
	JobsTotal  int                   `json:"jobs_total"`
	JobsDone   int                   `json:"jobs_done"`
	Groups     []batch.GroupProgress `json:"groups,omitempty"`
	Results    []BatchItem           `json:"results,omitempty"`
	Error      string                `json:"error,omitempty"`
	Code       string                `json:"code,omitempty"`
	CreatedAt  time.Time             `json:"created_at"`
	FinishedAt *time.Time            `json:"finished_at,omitempty"`
}

// SubmitJob accepts an async batch (JobRunner interface): it records
// the job and runs it on the bounded async worker pool. Every failure
// is typed (ErrOverloaded while draining or when the job store is
// full).
func (s *Server) SubmitJob(reqs []*Request) (string, error) {
	if s.draining.Load() {
		return "", errDraining()
	}
	id := obs.NewRequestID()
	if err := s.jobs.Add(id, len(reqs)); err != nil {
		if errors.Is(err, check.ErrOverloaded) {
			s.m.rejected.Inc()
		}
		return "", err
	}
	s.asyncWG.Add(1)
	go s.runAsync(id, reqs)
	return id, nil
}

// runAsync executes one accepted async batch. Queued work that drain
// reaches before a worker slot does fails typed as canceled; once
// running, the batch holds admission like any synchronous one and
// drain waits for it (or force-cancels it at the drain deadline).
func (s *Server) runAsync(id string, reqs []*Request) {
	defer s.asyncWG.Done()
	select {
	case s.asyncSem <- struct{}{}:
		defer func() { <-s.asyncSem }()
	case <-s.drainCh:
		s.jobs.Finish(id, nil, errDrainCanceled())
		return
	}
	if s.draining.Load() {
		// Drain won the race for the worker slot.
		s.jobs.Finish(id, nil, errDrainCanceled())
		return
	}
	s.jobs.Start(id)
	// Progress flows into the store as the scheduler reports it; jobs
	// settled before scheduling (cache hits, invalid models) are folded
	// in at plan time.
	var preSettled int
	prog := &batch.Progress{
		OnPlan: func(jobs int, groupJobs []int) {
			preSettled = len(reqs) - jobs
			s.jobs.Plan(id, len(reqs), groupJobs)
			s.jobs.JobsDone(id, preSettled)
		},
		OnGroupStart: func(g int) { s.jobs.GroupState(id, g, batch.StateRunning) },
		OnGroupDone:  func(g int) { s.jobs.GroupState(id, g, batch.StateDone) },
		OnJobDone:    func(done, total int) { s.jobs.JobsDone(id, preSettled+done) },
	}
	items := s.solveBatch(s.workCtx, reqs, prog)
	s.jobs.Finish(id, items, nil)
}

func errDrainCanceled() error {
	return fmt.Errorf("serve: queued batch canceled by drain: %w", check.ErrCanceled)
}

// JobPayload returns the GET /jobs/{id} body for id, or ok=false for
// an unknown or expired job (JobRunner interface).
func (s *Server) JobPayload(id string) (any, bool) {
	rec, ok := s.jobs.Get(id)
	if !ok {
		return nil, false
	}
	body := jobBody{
		ID:        rec.ID,
		State:     string(rec.State),
		JobsTotal: rec.JobsTotal,
		JobsDone:  rec.JobsDone,
		Groups:    rec.Groups,
		CreatedAt: rec.Created,
	}
	if rec.State == batch.StateDone {
		f := rec.Finished
		body.FinishedAt = &f
		if rec.Err != nil {
			body.Error = rec.Err.Error()
			body.Code = CodeOf(rec.Err)
		} else {
			body.Results = rec.Results
		}
	}
	return body, true
}
