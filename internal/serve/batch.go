package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"finwl/internal/batch"
	"finwl/internal/check"
	"finwl/internal/obs"
)

// BatchItem is one element of a /batch (or finished async job)
// response: a full Response on success, an error body otherwise.
type BatchItem struct {
	Response *Response `json:"response,omitempty"`
	Error    string    `json:"error,omitempty"`
	Code     string    `json:"code,omitempty"`
}

func errItem(err error) BatchItem {
	return BatchItem{Error: err.Error(), Code: CodeOf(err)}
}

// clone copies an item deeply enough that a holder mutating its
// Response flags cannot race with other holders (the idempotency
// cache, concurrent redeliveries).
func (it BatchItem) clone() BatchItem {
	if it.Response != nil {
		it.Response = it.Response.clone()
	}
	return it
}

func cloneItems(items []BatchItem) []BatchItem {
	out := make([]BatchItem, len(items))
	for i, it := range items {
		out[i] = it.clone()
	}
	return out
}

// SolveBatch runs a set of requests through the shared-chain batch
// scheduler and returns one item per request, in order. It never
// fails as a whole: per-job errors are typed into their items. Jobs
// over the same network share one chain build and one sweep; per-job
// TimeoutMS is ignored — the whole batch runs under MaxTimeout.
//
// A client-supplied Idempotency-Key (threaded through ctx by the
// front) makes redelivery safe: concurrent submissions with the same
// key collapse onto one run, and completed results are replayed from
// a bounded window instead of re-solving.
func (s *Server) SolveBatch(ctx context.Context, reqs []*Request) []BatchItem {
	key := IdempotencyKeyFrom(ctx)
	if key == "" {
		return s.solveBatch(ctx, reqs, nil, nil)
	}
	if items, ok := s.idemBatch.get(key); ok {
		s.m.idemHits.Inc()
		return cloneItems(items)
	}
	items, _, shared, abandoned := s.idemFlight.do(ctx.Done(), key, func() ([]BatchItem, error) {
		items := s.solveBatch(ctx, reqs, nil, nil)
		// A run cut short by cancellation must not pin canceled items in
		// the window — the retry that redelivers this key wants a real
		// answer, not a replay of the timeout.
		if ctx.Err() == nil {
			s.idemBatch.add(key, items)
		}
		return items, nil
	})
	if abandoned {
		err := check.Canceled(ctx)
		out := make([]BatchItem, len(reqs))
		for i := range out {
			out[i] = errItem(err)
		}
		return out
	}
	if shared {
		s.m.idemHits.Inc()
		return cloneItems(items)
	}
	return items
}

// jobRecorder carries one async job's durability state into
// solveBatch: the journal to checkpoint into and the items already
// settled by a pre-crash run (indexed by request position), which
// skip scheduling entirely on the restarted run.
type jobRecorder struct {
	id      string
	journal *batch.Journal
	preset  map[int]BatchItem
}

func (rec *jobRecorder) presetItem(i int) (BatchItem, bool) {
	if rec == nil || rec.preset == nil {
		return BatchItem{}, false
	}
	it, ok := rec.preset[i]
	return it, ok
}

func (s *Server) solveBatch(ctx context.Context, reqs []*Request, prog *batch.Progress, rec *jobRecorder) []BatchItem {
	span := s.m.batchSeconds.Start()
	defer span.End()
	s.m.batchJobs.Add(int64(len(reqs)))
	items := make([]BatchItem, len(reqs))
	if s.draining.Load() {
		err := errDraining()
		s.m.rejected.Add(int64(len(reqs)))
		for i := range items {
			items[i] = errItem(err)
		}
		return items
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.MaxTimeout)
	defer cancel()
	stop := context.AfterFunc(s.workCtx, cancel)
	defer stop()

	// Settle what needs no solving — checkpointed items from a
	// recovered run, invalid models and cache hits — and hand the rest
	// to the scheduler as keyed jobs.
	jobs := make([]batch.Job, 0, len(reqs))
	jobIdx := make([]int, 0, len(reqs))
	cacheKeys := make([]string, len(reqs))
	for i, req := range reqs {
		if it, ok := rec.presetItem(i); ok {
			// Already solved before the crash; the journal checkpoint is
			// the result (metrics were counted by the original run).
			items[i] = it
			continue
		}
		if req == nil {
			s.m.invalid.Inc()
			items[i] = errItem(check.Invalid("serve: batch job %d is null", i))
			continue
		}
		net, err := req.BuildNetwork()
		if err != nil {
			s.m.invalid.Inc()
			items[i] = errItem(err)
			continue
		}
		netKey := networkKey(net)
		cacheKeys[i] = fmt.Sprintf("%s|k=%d|n=%d", netKey, req.K, req.N)
		if cached, ok := s.cache.get(cacheKeys[i]); ok {
			s.m.cacheHits.Inc()
			cp := cached.clone()
			cp.Cached = true
			cp.Timings = &Timings{}
			items[i] = BatchItem{Response: cp}
			continue
		}
		s.m.cacheMisses.Inc()
		jobs = append(jobs, batch.Job{
			Key: fmt.Sprintf("%s|K=%d", netKey, req.K),
			Net: net,
			K:   req.K,
			N:   req.N,
		})
		jobIdx = append(jobIdx, i)
	}

	s.sched.Run(ctx, jobs, s.batchProgress(prog, rec, reqs, items, jobIdx, cacheKeys))
	return items
}

// batchProgress wraps the caller's Progress with the layer that turns
// scheduler outcomes into response items as they settle (streaming,
// so a crash checkpoint never waits for the whole batch) and — when a
// recorder is attached — journals each solved group's items as a
// checkpoint the restarted run can resume from.
func (s *Server) batchProgress(prog *batch.Progress, rec *jobRecorder, reqs []*Request, items []BatchItem, jobIdx []int, cacheKeys []string) *batch.Progress {
	// groups is written once, before any solving starts, on the Run
	// caller's goroutine; OnGroupDone reads only its own group's
	// members, all settled before it fires.
	var groups [][]int
	return &batch.Progress{
		OnPlan: func(jobs int, groupJobs []int) {
			if prog != nil && prog.OnPlan != nil {
				prog.OnPlan(jobs, groupJobs)
			}
		},
		OnPlanGroups: func(gs [][]int) {
			groups = gs
			if prog != nil && prog.OnPlanGroups != nil {
				prog.OnPlanGroups(gs)
			}
		},
		OnGroupStart: func(g int) {
			if prog != nil && prog.OnGroupStart != nil {
				prog.OnGroupStart(g)
			}
		},
		OnJobSettled: func(job int, o batch.Outcome) {
			i := jobIdx[job]
			items[i] = s.itemFromOutcome(reqs[i], cacheKeys[i], o)
			if prog != nil && prog.OnJobSettled != nil {
				prog.OnJobSettled(job, o)
			}
		},
		OnGroupDone: func(g int) {
			if rec != nil && rec.journal != nil && g < len(groups) {
				idx := make([]int, len(groups[g]))
				checkpoint := make([]BatchItem, len(groups[g]))
				for j, job := range groups[g] {
					idx[j] = jobIdx[job]
					checkpoint[j] = items[jobIdx[job]]
				}
				rec.journal.Append(batch.Entry{Op: batch.OpGroup, ID: rec.id, Group: g, Idx: idx, ItemsV: checkpoint})
			}
			if prog != nil && prog.OnGroupDone != nil {
				prog.OnGroupDone(g)
			}
		},
		OnJobDone: func(done, total int) {
			if prog != nil && prog.OnJobDone != nil {
				prog.OnJobDone(done, total)
			}
		},
	}
}

// itemFromOutcome converts one scheduler outcome into its response
// item, charging the serve metrics and feeding the result cache.
func (s *Server) itemFromOutcome(req *Request, cacheKey string, o batch.Outcome) BatchItem {
	if o.Shared {
		s.m.deduped.Inc()
		// A dedup follower rode a group from another submission: no
		// chain work of its own, whatever the leader paid for.
		s.m.batchChainReuse.Inc()
	}
	if o.Err != nil {
		if errors.Is(o.Err, check.ErrCanceled) {
			s.m.canceled.Inc()
		}
		return errItem(o.Err)
	}
	// Both tiers are full fidelity; the tag records whether this
	// group ran on a freshly built chain (exact) or swept a cached
	// factored one (checkpoint).
	fid := FidelityExact
	if o.Reused {
		fid = FidelityCheckpoint
	}
	resp := &Response{
		Fidelity:     fid,
		K:            req.K,
		N:            req.N,
		TotalTime:    o.Result.TotalTime,
		Epochs:       len(o.Result.Epochs),
		Price:        o.Price,
		Deduplicated: o.Shared,
		ElapsedMS:    durMS(o.Elapsed),
		Timings: &Timings{
			QueueMS: durMS(o.Wait),
			SolveMS: durMS(o.Elapsed),
		},
	}
	s.m.tierCounter(fid).Inc()
	s.m.solveTime.ObserveDuration(o.Elapsed)
	s.cache.add(cacheKey, resp)
	return BatchItem{Response: resp.clone()}
}

func durMS(d time.Duration) float64 {
	return float64(d.Microseconds()) / 1000
}

// jobBody is the GET /jobs/{id} response: progress while the batch
// runs, results (or the batch-level error) once done.
type jobBody struct {
	ID         string                `json:"id"`
	State      string                `json:"state"`
	JobsTotal  int                   `json:"jobs_total"`
	JobsDone   int                   `json:"jobs_done"`
	Groups     []batch.GroupProgress `json:"groups,omitempty"`
	Results    []BatchItem           `json:"results,omitempty"`
	Error      string                `json:"error,omitempty"`
	Code       string                `json:"code,omitempty"`
	RoutedVia  string                `json:"routed_via,omitempty"` // fleet router: takeover provenance
	CreatedAt  time.Time             `json:"created_at"`
	FinishedAt *time.Time            `json:"finished_at,omitempty"`
}

// newJobID mints an async job ID. With a replica identity (fleet or
// journal mode) the ID is "replica/uuid" so a router can route a GET
// back by prefix alone; without one it stays the bare PR-5 shape.
func (s *Server) newJobID() string {
	if s.replicaID != "" {
		return s.replicaID + "/" + obs.NewRequestID()
	}
	return obs.NewRequestID()
}

// SubmitJob accepts an async batch (JobRunner interface): it records
// the job — durably, when a journal is configured — and runs it on
// the bounded async worker pool. A non-empty idemKey makes the submit
// idempotent: a redelivery inside the dedup window returns the
// original job's ID instead of re-running the work. Every failure is
// typed (ErrOverloaded while draining or when the job store is full).
func (s *Server) SubmitJob(ctx context.Context, reqs []*Request, idemKey string) (string, error) {
	if s.draining.Load() {
		return "", errDraining()
	}
	if idemKey != "" {
		// The key window is read-modify-write atomic under idemMu so two
		// concurrent submits with one key cannot both mint jobs.
		s.idemMu.Lock()
		defer s.idemMu.Unlock()
		if id, ok := s.idemJobs.get(idemKey); ok {
			// Only a live record answers a replayed key; a gone (expired)
			// one lets the redelivery mint a fresh job — the documented
			// recovery move after a 410.
			if _, status := s.jobs.Lookup(id); status == batch.LookupHit {
				s.m.idemHits.Inc()
				return id, nil
			}
		}
	}
	id := s.newJobID()
	if err := s.jobs.Add(id, len(reqs)); err != nil {
		if errors.Is(err, check.ErrOverloaded) {
			s.m.rejected.Inc()
		}
		return "", err
	}
	if s.journal != nil {
		s.journal.Append(batch.Entry{Op: batch.OpSubmit, ID: id, IdemKey: idemKey, JobsTotal: len(reqs), ReqsV: reqs})
	}
	if idemKey != "" {
		s.idemJobs.add(idemKey, id)
	}
	s.asyncWG.Add(1)
	go s.runAsync(id, reqs, nil)
	return id, nil
}

// runAsync executes one accepted async batch. Queued work that drain
// reaches before a worker slot does fails typed as canceled; once
// running, the batch holds admission like any synchronous one and
// drain waits for it (or force-cancels it at the drain deadline).
// preset carries checkpointed items from a recovered run (nil for
// fresh submissions).
func (s *Server) runAsync(id string, reqs []*Request, preset map[int]BatchItem) {
	defer s.asyncWG.Done()
	select {
	case s.asyncSem <- struct{}{}:
		defer func() { <-s.asyncSem }()
	case <-s.drainCh:
		s.finishJob(id, nil, errDrainCanceled())
		return
	}
	if s.draining.Load() {
		// Drain won the race for the worker slot.
		s.finishJob(id, nil, errDrainCanceled())
		return
	}
	s.jobs.Start(id)
	// Progress flows into the store as the scheduler reports it; jobs
	// settled before scheduling (checkpointed items, cache hits,
	// invalid models) are folded in at plan time.
	var preSettled int
	prog := &batch.Progress{
		OnPlan: func(jobs int, groupJobs []int) {
			preSettled = len(reqs) - jobs
			s.jobs.Plan(id, len(reqs), groupJobs)
			s.jobs.JobsDone(id, preSettled)
		},
		OnGroupStart: func(g int) { s.jobs.GroupState(id, g, batch.StateRunning) },
		OnGroupDone:  func(g int) { s.jobs.GroupState(id, g, batch.StateDone) },
		OnJobDone:    func(done, total int) { s.jobs.JobsDone(id, preSettled+done) },
	}
	rec := &jobRecorder{id: id, journal: s.journal, preset: preset}
	items := s.solveBatch(s.workCtx, reqs, prog, rec)
	s.finishJob(id, items, nil)
}

// finishJob completes an async job, journaling its terminal
// transition first so a crash between the two leaves the job
// in-flight (re-run on recovery) rather than silently lost.
func (s *Server) finishJob(id string, items []BatchItem, err error) {
	if s.journal != nil {
		if err != nil {
			s.journal.Append(batch.Entry{Op: batch.OpCancel, ID: id, Error: err.Error(), Code: CodeOf(err)})
		} else {
			s.journal.Append(batch.Entry{Op: batch.OpDone, ID: id, ItemsV: items})
		}
	}
	s.jobs.Finish(id, items, err)
}

func errDrainCanceled() error {
	return fmt.Errorf("serve: queued batch canceled by drain: %w", check.ErrCanceled)
}

// JobPayload returns the GET /jobs/{id} body for id (JobRunner
// interface). Unknown IDs fail typed ErrJobUnknown (404); IDs the
// journal proves were once valid but whose records have expired fail
// ErrJobGone (410).
func (s *Server) JobPayload(ctx context.Context, id string) (any, error) {
	rec, status := s.jobs.Lookup(id)
	switch status {
	case batch.LookupMiss:
		return nil, jobUnknown(id)
	case batch.LookupGone:
		return nil, jobGone(id)
	}
	body := jobBody{
		ID:        rec.ID,
		State:     string(rec.State),
		JobsTotal: rec.JobsTotal,
		JobsDone:  rec.JobsDone,
		Groups:    rec.Groups,
		CreatedAt: rec.Created,
	}
	if rec.State == batch.StateDone {
		f := rec.Finished
		body.FinishedAt = &f
		if rec.Err != nil {
			body.Error = rec.Err.Error()
			body.Code = CodeOf(rec.Err)
		} else {
			body.Results = rec.Results
		}
	}
	return body, nil
}
