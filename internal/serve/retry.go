package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"finwl/internal/check"
)

// transientErr reports whether a failure is worth re-attempting: the
// iterative caps (ErrNotConverged) and guarded NaN/∞ escapes
// (ErrNumeric) can clear on a retry because the robust ladder below
// (iterative refinement → equilibrated refactor → dense fallback)
// takes progressively different paths; ErrInvalidModel and
// ErrSingular are final.
func transientErr(err error) bool {
	return errors.Is(err, check.ErrNotConverged) || errors.Is(err, check.ErrNumeric)
}

// lockedRand is a mutex-guarded jitter source shared by all requests.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{r: rand.New(rand.NewSource(seed))}
}

// jitter returns a uniform duration in [0, d).
func (l *lockedRand) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.r.Int63n(int64(d)))
}

// withRetry runs fn up to 1+retries times, sleeping base·2^attempt
// plus up to 100% jitter between attempts, but only for transient
// failures and only while the context has room for the sleep. The
// returned error is the last attempt's. onRetry is invoked before
// each re-attempt (stats hook).
func withRetry(ctx context.Context, retries int, base time.Duration, jit *lockedRand, onRetry func(), fn func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = fn()
		if err == nil || !transientErr(err) || attempt >= retries {
			return err
		}
		backoff := base << attempt
		sleep := backoff + jit.jitter(backoff)
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < sleep {
			// Not enough deadline left to wait out the backoff; give
			// the remaining time to the degradation ladder instead.
			return err
		}
		if onRetry != nil {
			onRetry()
		}
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return check.Canceled(ctx)
		}
	}
}
