package serve

import (
	"encoding/json"
	"errors"
	"math"
	"testing"

	"finwl/internal/check"
	"finwl/internal/statespace"
)

func TestNumRoundTripsNonFinite(t *testing.T) {
	cases := []float64{0, 1.5, -2.25e-9, math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, f := range cases {
		b, err := json.Marshal(Num(f))
		if err != nil {
			t.Fatalf("marshal %v: %v", f, err)
		}
		var back Num
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		got := float64(back)
		if math.IsNaN(f) {
			if !math.IsNaN(got) {
				t.Fatalf("NaN round-tripped to %v via %s", got, b)
			}
		} else if got != f {
			t.Fatalf("%v round-tripped to %v via %s", f, got, b)
		}
	}
	var n Num
	if err := json.Unmarshal([]byte(`"wat"`), &n); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf(`unmarshal "wat": err = %v, want ErrInvalidModel`, err)
	}
}

func TestKindRoundTrip(t *testing.T) {
	for _, k := range []statespace.Kind{statespace.Delay, statespace.Queue, statespace.Multi, statespace.Kind(99)} {
		b, err := json.Marshal(Kind{k})
		if err != nil {
			t.Fatalf("marshal kind %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if back.Kind != k {
			t.Fatalf("kind %v round-tripped to %v via %s", k, back.Kind, b)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"teleporter"`), &k); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("unknown kind name: err = %v, want ErrInvalidModel", err)
	}
}

func TestBuildMatrixRejectsRaggedRows(t *testing.T) {
	_, err := buildMatrix("route", [][]Num{{1, 2}, {3}})
	if !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("ragged rows: err = %v, want ErrInvalidModel", err)
	}
	m, err := buildMatrix("route", nil)
	if err != nil || m != nil {
		t.Fatalf("empty input = (%v, %v), want (nil, nil)", m, err)
	}
}

func TestSpecNetworkRoundTrip(t *testing.T) {
	req := &Request{Arch: "distributed", K: 4, N: 12}
	net, err := req.BuildNetwork()
	if err != nil {
		t.Fatalf("build cluster network: %v", err)
	}
	spec := SpecFromNetwork(net)
	back, err := spec.buildNetwork()
	if err != nil {
		t.Fatalf("rebuild from spec: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("rebuilt network invalid: %v", err)
	}
	if CacheKey(net, 4, 12) != CacheKey(back, 4, 12) {
		t.Fatal("network → spec → network changed the cache key")
	}
}

func TestBuildNetworkRejections(t *testing.T) {
	cases := []struct {
		name string
		req  Request
	}{
		{"zero-n", Request{Arch: "central", K: 3, N: 0}},
		{"zero-k", Request{Arch: "central", K: 0, N: 5}},
		{"oversized-k", Request{Arch: "central", K: 1 << 20, N: 5}},
		{"unknown-arch", Request{Arch: "quantum", K: 3, N: 5}},
	}
	for _, tc := range cases {
		if _, err := tc.req.BuildNetwork(); !errors.Is(err, check.ErrInvalidModel) {
			t.Errorf("%s: err = %v, want ErrInvalidModel", tc.name, err)
		}
	}
}
