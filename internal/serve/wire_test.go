package serve

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"finwl/internal/check"
)

// TestErrorWireRoundTrip: every sentinel the serve boundary can emit
// survives the status/code → JSON → ErrorFromWire round trip, so a
// router branches on exactly the error the replica raised.
func TestErrorWireRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want []error // every sentinel the reconstruction must match
	}{
		{"invalid", check.Invalid("bad station"), []error{check.ErrInvalidModel}},
		{"overloaded", fmt.Errorf("queue full: %w", check.ErrOverloaded), []error{check.ErrOverloaded}},
		{"draining", errDraining(), []error{ErrDraining, check.ErrOverloaded}},
		{"unavailable", Unavailable(nil), []error{ErrUnavailable, check.ErrOverloaded}},
		{"canceled", fmt.Errorf("deadline: %w", check.ErrCanceled), []error{check.ErrCanceled}},
		{"singular", fmt.Errorf("pivot: %w", check.ErrSingular), []error{check.ErrSingular}},
		{"numeric", fmt.Errorf("overflow: %w", check.ErrNumeric), []error{check.ErrNumeric}},
		{"not_converged", fmt.Errorf("stalled: %w", check.ErrNotConverged), []error{check.ErrNotConverged}},
		{"degraded", &DegradedError{Fidelity: FidelityBounds, Reason: "x"}, []error{check.ErrDegraded}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, code := StatusOf(tc.err), CodeOf(tc.err)
			back := ErrorFromWire(status, ErrorBody{Error: tc.err.Error(), Code: code})
			for _, sentinel := range tc.want {
				if !errors.Is(back, sentinel) {
					t.Errorf("round trip of %v (status %d code %q) lost sentinel %v; got %v",
						tc.err, status, code, sentinel, back)
				}
			}
			if back.Error() == "" {
				t.Error("reconstructed error has empty message")
			}
			// The reconstruction must map back to the same status, so a
			// router re-serving the error keeps the wire contract.
			if got := StatusOf(back); got != status {
				t.Errorf("reconstructed error maps to status %d, was %d", got, status)
			}
		})
	}
}

// TestErrorFromWireStatusFallback: unknown codes classify by status
// class, and everything else stays untyped (a replica fault for the
// router's retry policy).
func TestErrorFromWireStatusFallback(t *testing.T) {
	if err := ErrorFromWire(http.StatusBadRequest, ErrorBody{Error: "x", Code: "mystery"}); !errors.Is(err, check.ErrInvalidModel) {
		t.Errorf("unknown-code 400 = %v, want ErrInvalidModel", err)
	}
	if err := ErrorFromWire(http.StatusTooManyRequests, ErrorBody{}); !errors.Is(err, check.ErrOverloaded) {
		t.Errorf("bare 429 = %v, want ErrOverloaded", err)
	}
	if err := ErrorFromWire(http.StatusServiceUnavailable, ErrorBody{}); !errors.Is(err, check.ErrOverloaded) {
		t.Errorf("bare 503 = %v, want ErrOverloaded", err)
	}
	if err := ErrorFromWire(http.StatusGatewayTimeout, ErrorBody{}); !errors.Is(err, check.ErrCanceled) {
		t.Errorf("bare 504 = %v, want ErrCanceled", err)
	}

	// Chaos-injected and proxy-generated failures stay untyped.
	for _, status := range []int{http.StatusInternalServerError, http.StatusBadGateway} {
		err := ErrorFromWire(status, ErrorBody{Error: "injected", Code: "chaos"})
		if err == nil {
			t.Fatalf("status %d returned nil", status)
		}
		for _, sentinel := range []error{
			check.ErrInvalidModel, check.ErrOverloaded, check.ErrCanceled,
			check.ErrSingular, check.ErrNumeric, check.ErrNotConverged, check.ErrDegraded,
		} {
			if errors.Is(err, sentinel) {
				t.Errorf("untyped status %d matched sentinel %v", status, sentinel)
			}
		}
	}
}
