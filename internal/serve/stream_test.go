package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"finwl/internal/check"
	"finwl/internal/stream"
)

func TestStreamLawSpecDefaults(t *testing.T) {
	cases := []struct {
		process string
		cv2     float64
	}{
		{"deterministic", 0.25},
		{"poisson", 1},
		{"bursty", 4},
		{"", 1},
		{"fit", 1},
	}
	for _, tc := range cases {
		ph, err := (&LawSpec{Process: tc.process, Mean: 2}).buildPH("arrival")
		if err != nil {
			t.Fatalf("%q: %v", tc.process, err)
		}
		if diff := math.Abs(ph.Mean() - 2); diff > 1e-9 {
			t.Fatalf("%q: mean %v, want 2", tc.process, ph.Mean())
		}
		if diff := math.Abs(ph.CV2() - tc.cv2); diff > 0.01 && tc.cv2 != 0.25 {
			t.Fatalf("%q: cv2 %v, want %v", tc.process, ph.CV2(), tc.cv2)
		}
	}
	for _, bad := range []*LawSpec{
		{Process: "weibull", Mean: 1},
		{Mean: 0},
		{Mean: -1},
		{Mean: Num(math.NaN())},
		{Mean: 1, CV2: -2},
	} {
		if _, err := bad.buildPH("arrival"); err == nil {
			t.Fatalf("law %+v accepted", bad)
		} else if !errors.Is(err, check.ErrInvalidModel) {
			t.Fatalf("law %+v: error %v does not match ErrInvalidModel", bad, err)
		}
	}
}

func TestSolveStreamExact(t *testing.T) {
	s := New(Config{Seed: 1})
	req := &StreamRequest{
		Arch: "central", K: 3, JobTasks: 4, Jobs: 2,
		Arrival: &LawSpec{Process: "poisson", Mean: 5},
		Probes:  []Num{0, 2, 10},
	}
	resp, err := s.SolveStream(context.Background(), req)
	if err != nil {
		t.Fatalf("SolveStream: %v", err)
	}
	if resp.Fidelity != FidelityExact || resp.Mode != stream.ModeOpen {
		t.Fatalf("response %+v, want exact open", resp)
	}
	if resp.States < 1 || resp.Price < 1 {
		t.Fatalf("states=%d price=%d", resp.States, resp.Price)
	}
	if float64(resp.MeanDrain) <= 0 {
		t.Fatalf("mean drain %v", resp.MeanDrain)
	}
	if len(resp.MeanTasks) != 3 || len(resp.DrainCDF) != 3 {
		t.Fatalf("probe series lengths %d/%d, want 3", len(resp.MeanTasks), len(resp.DrainCDF))
	}
	if math.Abs(float64(resp.MeanTasks[0])-4) > 1e-9 {
		t.Fatalf("E[J(0)] = %v, want job_tasks", resp.MeanTasks[0])
	}
	if st := s.Snapshot(); st.Exact != 1 || st.Degraded != 0 {
		t.Fatalf("stats %+v, want one exact stream solve", st)
	}
}

func TestSolveStreamClosed(t *testing.T) {
	s := New(Config{Seed: 1})
	resp, err := s.SolveStream(context.Background(), &StreamRequest{
		Arch: "central", K: 2, JobTasks: 2, Customers: 2,
		Think:  &LawSpec{Process: "deterministic", Mean: 3},
		Probes: []Num{1, 5},
	})
	if err != nil {
		t.Fatalf("SolveStream: %v", err)
	}
	if resp.Mode != stream.ModeClosed || resp.DrainCDF != nil || resp.MeanDrain != 0 {
		t.Fatalf("closed response %+v, want no drain outputs", resp)
	}
}

func TestSolveStreamInvalid(t *testing.T) {
	s := New(Config{Seed: 1})
	for name, req := range map[string]*StreamRequest{
		"no job tasks": {Arch: "central", K: 2, Jobs: 2, Arrival: &LawSpec{Mean: 1}},
		"both modes": {Arch: "central", K: 2, JobTasks: 1, Jobs: 2, Arrival: &LawSpec{Mean: 1},
			Customers: 2, Think: &LawSpec{Mean: 1}},
		"neither mode": {Arch: "central", K: 2, JobTasks: 1},
		"bad law":      {Arch: "central", K: 2, JobTasks: 1, Jobs: 2, Arrival: &LawSpec{Mean: -1}},
		"bad probe": {Arch: "central", K: 2, JobTasks: 1, Jobs: 2, Arrival: &LawSpec{Mean: 1},
			Probes: []Num{Num(math.Inf(1))}},
		"bad arch": {Arch: "ring", K: 2, JobTasks: 1, Jobs: 2, Arrival: &LawSpec{Mean: 1}},
	} {
		_, err := s.SolveStream(context.Background(), req)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, check.ErrInvalidModel) {
			t.Fatalf("%s: error %v does not match ErrInvalidModel", name, err)
		}
		if StatusOf(err) != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, StatusOf(err))
		}
	}
}

func TestSolveStreamDegradesToSingleJob(t *testing.T) {
	// A tiny state cap forces the single-job rung; the response stays
	// usable and the error is typed degraded.
	s := New(Config{Seed: 1, StreamMaxStates: 4})
	resp, err := s.SolveStream(context.Background(), &StreamRequest{
		Arch: "central", K: 3, JobTasks: 4, Jobs: 3,
		Arrival: &LawSpec{Process: "bursty", Mean: 4},
		Probes:  []Num{1},
	})
	if err == nil || !errors.Is(err, check.ErrDegraded) {
		t.Fatalf("error %v, want ErrDegraded", err)
	}
	if resp == nil || resp.Fidelity != FidelitySingleJob {
		t.Fatalf("response %+v, want single-job fidelity", resp)
	}
	if float64(resp.MeanDrain) <= 0 {
		t.Fatalf("degraded mean drain %v", resp.MeanDrain)
	}
	if resp.DegradedFrom == "" || !strings.Contains(resp.DegradedFrom, "states") {
		t.Fatalf("degraded_from %q", resp.DegradedFrom)
	}
	if st := s.Snapshot(); st.Degraded != 1 {
		t.Fatalf("stats %+v, want one degraded response", st)
	}

	// Closed mode degrades to the cycle-time steady state.
	resp, err = s.SolveStream(context.Background(), &StreamRequest{
		Arch: "central", K: 3, JobTasks: 4, Customers: 3,
		Think:  &LawSpec{Mean: 4},
		Probes: []Num{1, 2},
	})
	if err == nil || !errors.Is(err, check.ErrDegraded) {
		t.Fatalf("closed degraded error %v", err)
	}
	if len(resp.MeanTasks) != 2 || !(float64(resp.MeanTasks[0]) > 0) {
		t.Fatalf("closed degraded tasks %v", resp.MeanTasks)
	}
}

func TestSolveStreamDraining(t *testing.T) {
	s := New(Config{Seed: 1})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, err := s.SolveStream(context.Background(), &StreamRequest{
		Arch: "central", K: 2, JobTasks: 1, Jobs: 1, Arrival: &LawSpec{Mean: 1},
	})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("error %v, want ErrDraining", err)
	}
}

func TestStreamHTTPRoundTrip(t *testing.T) {
	s := New(Config{Seed: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := `{"arch":"central","k":3,"job_tasks":2,"jobs":2,` +
		`"arrival":{"process":"poisson","mean":3},"probes":[0,1,5]}`
	httpResp, err := http.Post(srv.URL+"/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", httpResp.StatusCode)
	}
	var resp StreamResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Fidelity != FidelityExact || len(resp.MeanTasks) != 3 {
		t.Fatalf("wire response %+v", resp)
	}

	// Unknown fields and malformed bodies answer 400 typed.
	for _, bad := range []string{
		`{"arch":"central","k":3,"job_tasks":2,"jobs":2,"arrival":{"mean":3},"bogus":1}`,
		`{"k":`,
		`[]`,
	} {
		r, err := http.Post(srv.URL+"/stream", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		var eb ErrorBody
		if err := json.NewDecoder(r.Body).Decode(&eb); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest || eb.Code != "invalid_model" {
			t.Fatalf("body %q: status %d code %q, want 400 invalid_model", bad, r.StatusCode, eb.Code)
		}
	}
}
