package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/obs"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// uniqueTwoStation returns a healthy two-station network spec with a
// caller-chosen CPU rate, so tests that count process-global chain
// builds get a network no other test has ever solved.
func uniqueTwoStation(rate float64) *NetworkSpec {
	route := matrix.New(2, 2)
	route.Set(0, 1, 0.5)
	route.Set(1, 0, 1)
	return SpecFromNetwork(&network.Network{
		Stations: []network.Station{
			{Name: "cpu", Kind: statespace.Delay, Service: phase.MustExpo(rate)},
			{Name: "io", Kind: statespace.Queue, Service: phase.MustExpo(3)},
		},
		Route: route,
		Exit:  []float64{0.5, 0},
		Entry: []float64{1, 0},
	})
}

func relClose(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

// chainBuilds reads the process-global chain-construction count; the
// registry returns the already-registered histogram for an existing
// name, so this observes the same instance network.NewChain times.
func chainBuilds() int64 {
	return obs.Default.Histogram("finwl_chain_build_seconds",
		"Wall time of level-chain construction.", obs.ExpBounds(100_000, 4, 13), 1e-9).Count()
}

// The tentpole acceptance: a batch of J jobs over one network performs
// exactly one chain construction, reports J−1 jobs as chain reuse, and
// every result matches the corresponding single solve to 1e-13.
func TestBatchBuildsChainOnceAndMatchesSolve(t *testing.T) {
	spec := uniqueTwoStation(2.625) // rate unique to this test
	ns := []int{12, 3, 30, 7, 30, 18}
	reqs := make([]*Request, len(ns))
	for i, n := range ns {
		reqs[i] = &Request{K: 2, N: n, Network: spec}
	}

	// Reference answers from an independent server (its chain build
	// lands before the measured window).
	ref := New(Config{Seed: 1})
	want := make([]float64, len(ns))
	for i, req := range reqs {
		resp, err := ref.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("reference solve N=%d: %v", req.N, err)
		}
		want[i] = resp.TotalTime
	}

	s := New(Config{Seed: 2})
	before := chainBuilds()
	items := s.SolveBatch(context.Background(), reqs)
	if got := chainBuilds() - before; got != 1 {
		t.Fatalf("batch of %d jobs built %d chains, want exactly 1", len(ns), got)
	}
	for i, item := range items {
		if item.Response == nil {
			t.Fatalf("job %d failed: %s (%s)", i, item.Error, item.Code)
		}
		r := item.Response
		if r.Fidelity != FidelityExact || r.N != ns[i] || r.K != 2 || r.Price <= 0 || r.Timings == nil {
			t.Fatalf("job %d: malformed response %+v", i, r)
		}
		if !relClose(r.TotalTime, want[i], 1e-13) {
			t.Fatalf("job %d (N=%d): TotalTime %v, want %v", i, ns[i], r.TotalTime, want[i])
		}
	}
	if got := s.m.batchChainReuse.Value(); got != int64(len(ns)-1) {
		t.Fatalf("chain reuse %d, want %d (all jobs but the builder)", got, len(ns)-1)
	}
	if s.m.batchGroups.Value() != 1 || s.m.batchJobs.Value() != int64(len(ns)) {
		t.Fatalf("groups %d jobs %d, want 1 group of %d", s.m.batchGroups.Value(), s.m.batchJobs.Value(), len(ns))
	}

	// A repeat batch is answered wholly from the result cache: zero
	// further chain builds, every item flagged cached.
	before = chainBuilds()
	again := s.SolveBatch(context.Background(), reqs)
	if got := chainBuilds() - before; got != 0 {
		t.Fatalf("repeat batch built %d chains, want 0", got)
	}
	for i, item := range again {
		if item.Response == nil || !item.Response.Cached {
			t.Fatalf("repeat job %d not served from cache: %+v", i, item)
		}
	}

	// A new population over the same network sweeps the cached factored
	// solver: checkpoint fidelity, no fresh build, whole group reused.
	more := []*Request{{K: 2, N: 60, Network: spec}, {K: 2, N: 45, Network: spec}}
	before = chainBuilds()
	reuse := s.m.batchChainReuse.Value()
	extra := s.SolveBatch(context.Background(), more)
	if got := chainBuilds() - before; got != 0 {
		t.Fatalf("cached-solver batch built %d chains, want 0", got)
	}
	for i, item := range extra {
		if item.Response == nil || item.Response.Fidelity != FidelityCheckpoint {
			t.Fatalf("cached-solver job %d: %+v, want checkpoint fidelity", i, item)
		}
	}
	if got := s.m.batchChainReuse.Value() - reuse; got != int64(len(more)) {
		t.Fatalf("cached-solver batch reuse %d, want %d", got, len(more))
	}
}

// Satellite: concurrent identical /batch submissions collapse onto one
// in-flight group — the leader solves, the follower's jobs ride along
// and are counted by finwld_dedup_total.
func TestBatchConcurrentIdenticalSubmissionsDedup(t *testing.T) {
	s := New(Config{Seed: 3})
	// Heavy enough that the leader is still solving when the follower
	// arrives (the follower is launched only once the leader holds
	// admission budget).
	reqs := []*Request{
		{Arch: "central", K: 12, N: 5000},
		{Arch: "central", K: 12, N: 150},
	}
	var wg sync.WaitGroup
	results := make([][]BatchItem, 2)
	wg.Add(1)
	go func() { defer wg.Done(); results[0] = s.SolveBatch(context.Background(), reqs) }()
	waitFor(t, func() bool { used, _, _ := s.adm.snapshot(); return used > 0 })
	wg.Add(1)
	go func() { defer wg.Done(); results[1] = s.SolveBatch(context.Background(), reqs) }()
	wg.Wait()

	for ri, items := range results {
		for i, item := range items {
			if item.Response == nil {
				t.Fatalf("submission %d job %d failed: %s (%s)", ri, i, item.Error, item.Code)
			}
		}
	}
	if got := s.m.deduped.Value(); got != int64(len(reqs)) {
		t.Fatalf("finwld_dedup_total = %d, want %d (one whole submission deduplicated)", got, len(reqs))
	}
	deduplicated := 0
	for _, items := range results {
		for _, item := range items {
			if item.Response.Deduplicated {
				deduplicated++
			}
		}
	}
	if deduplicated != len(reqs) {
		t.Fatalf("%d responses flagged deduplicated, want %d", deduplicated, len(reqs))
	}
	// One group solved once; the follower's jobs reused its chain.
	if got := s.m.batchGroups.Value(); got != 1 {
		t.Fatalf("batch groups %d, want 1", got)
	}
	if got := s.m.batchChainReuse.Value(); got != int64(2*len(reqs)-1) {
		t.Fatalf("chain reuse %d, want %d (leader group %d−1, follower %d)",
			got, 2*len(reqs)-1, len(reqs), len(reqs))
	}
	// Both results agree bit-for-bit: they are the same solve.
	for i := range reqs {
		if results[0][i].Response.TotalTime != results[1][i].Response.TotalTime {
			t.Fatalf("job %d: leader %v != follower %v", i,
				results[0][i].Response.TotalTime, results[1][i].Response.TotalTime)
		}
	}
}

// A mixed batch over HTTP: per-job typed errors, valid jobs solved,
// top-level 200.
func TestBatchHTTPMixed(t *testing.T) {
	s := New(Config{Seed: 4, MaxBatchJobs: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal([]*Request{
		{Network: healthyTwoStation(), K: 2, N: 8},
		{Network: trappedTwoStation(), K: 2, N: 8},
		{Network: healthyTwoStation(), K: 2, N: 0},
	})
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch status %d, want 200", resp.StatusCode)
	}
	var items []BatchItem
	if err := json.NewDecoder(resp.Body).Decode(&items); err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items, want 3", len(items))
	}
	if items[0].Response == nil || items[0].Response.TotalTime <= 0 {
		t.Fatalf("valid job failed: %+v", items[0])
	}
	if items[1].Code != "singular" || items[1].Response != nil {
		t.Fatalf("trapped job: %+v, want singular", items[1])
	}
	if items[2].Code != "invalid_model" {
		t.Fatalf("zero-population job: %+v, want invalid_model", items[2])
	}

	// Oversized submissions are rejected whole, typed overloaded.
	big, _ := json.Marshal(make([]*Request, 5))
	resp2, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(string(big)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("oversized batch status %d, want 429", resp2.StatusCode)
	}

	// Undecodable bodies are a 400.
	resp3, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status %d, want 400", resp3.StatusCode)
	}
}

func postJobs(t *testing.T, url string, reqs []*Request) jobAccepted {
	t.Helper()
	body, _ := json.Marshal(reqs)
	resp, err := http.Post(url+"/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status %d, want 202", resp.StatusCode)
	}
	var acc jobAccepted
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	if acc.ID == "" || acc.Poll != "/jobs/"+acc.ID {
		t.Fatalf("malformed acceptance %+v", acc)
	}
	return acc
}

func getJob(t *testing.T, url, id string) (jobBody, int) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body jobBody
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
	}
	return body, resp.StatusCode
}

// The async API end to end: submit, poll to completion, fetch results.
func TestAsyncJobLifecycle(t *testing.T) {
	s := New(Config{Seed: 5})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqs := []*Request{
		{Network: healthyTwoStation(), K: 2, N: 10},
		{Network: healthyTwoStation(), K: 2, N: 25},
		{Arch: "central", K: 3, N: 12},
	}
	acc := postJobs(t, ts.URL, reqs)
	if acc.Jobs != len(reqs) {
		t.Fatalf("accepted %d jobs, want %d", acc.Jobs, len(reqs))
	}
	var final jobBody
	waitFor(t, func() bool {
		body, status := getJob(t, ts.URL, acc.ID)
		if status != http.StatusOK {
			return false
		}
		final = body
		return body.State == "done"
	})
	if final.JobsDone != len(reqs) || final.JobsTotal != len(reqs) {
		t.Fatalf("done record jobs %d/%d, want %d/%d", final.JobsDone, final.JobsTotal, len(reqs), len(reqs))
	}
	if len(final.Groups) != 2 {
		t.Fatalf("%d groups, want 2 (two distinct networks)", len(final.Groups))
	}
	for gi, g := range final.Groups {
		if g.State != "done" {
			t.Fatalf("group %d state %q, want done", gi, g.State)
		}
	}
	if len(final.Results) != len(reqs) {
		t.Fatalf("%d results, want %d", len(final.Results), len(reqs))
	}
	for i, item := range final.Results {
		if item.Response == nil || item.Response.TotalTime <= 0 || item.Response.N != reqs[i].N {
			t.Fatalf("result %d malformed: %+v", i, item)
		}
	}
	if final.FinishedAt == nil {
		t.Fatal("done record carries no finish time")
	}

	// Results stay fetchable on repeat polls, and unknown IDs are 404.
	if _, status := getJob(t, ts.URL, acc.ID); status != http.StatusOK {
		t.Fatalf("repeat poll status %d, want 200", status)
	}
	if _, status := getJob(t, ts.URL, "no-such-job"); status != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", status)
	}
}

// The drain acceptance: a running async batch completes and stays
// fetchable, a queued one fails typed as canceled, and no goroutines
// leak.
func TestAsyncDrainTypedOutcomes(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{Seed: 6, AsyncWorkers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A quick batch that finishes before the drain starts.
	finished := postJobs(t, ts.URL, []*Request{{Network: healthyTwoStation(), K: 2, N: 6}})
	waitFor(t, func() bool {
		body, _ := getJob(t, ts.URL, finished.ID)
		return body.State == "done"
	})

	// A heavy batch that is mid-solve when the drain starts…
	running := postJobs(t, ts.URL, []*Request{{Arch: "central", K: 16, N: 2000}})
	waitFor(t, func() bool {
		used, _, _ := s.adm.snapshot()
		body, _ := getJob(t, ts.URL, running.ID)
		return body.State == "running" && used > 0
	})
	// …and one parked behind the single worker slot.
	queued := postJobs(t, ts.URL, []*Request{{Network: healthyTwoStation(), K: 2, N: 9}})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}

	// Running work was waited for; its results are fetchable post-drain.
	body, status := getJob(t, ts.URL, running.ID)
	if status != http.StatusOK || body.State != "done" || len(body.Results) != 1 || body.Results[0].Response == nil {
		t.Fatalf("running batch after drain: status %d body %+v", status, body)
	}
	// Queued work failed typed without ever starting.
	body, status = getJob(t, ts.URL, queued.ID)
	if status != http.StatusOK || body.State != "done" || body.Code != "canceled" || len(body.Results) != 0 {
		t.Fatalf("queued batch after drain: status %d body %+v", status, body)
	}
	// Finished-before-drain results remain fetchable.
	body, status = getJob(t, ts.URL, finished.ID)
	if status != http.StatusOK || len(body.Results) != 1 {
		t.Fatalf("pre-drain batch after drain: status %d body %+v", status, body)
	}
	// New submissions are rejected while draining.
	raw, _ := json.Marshal([]*Request{{Network: healthyTwoStation(), K: 2, N: 4}})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: status %d, want 503", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/batch while draining: status %d, want 503", resp2.StatusCode)
	}

	ts.Close()
	waitForGoroutines(t, baseline)
}

// The job store rejects submissions once every slot holds active work.
func TestAsyncStoreOverload(t *testing.T) {
	s := New(Config{Seed: 7, AsyncWorkers: 1, JobStoreSize: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fill both slots: one running heavy batch, one queued behind it.
	postJobs(t, ts.URL, []*Request{{Arch: "central", K: 16, N: 2000}})
	waitFor(t, func() bool { used, _, _ := s.adm.snapshot(); return used > 0 })
	postJobs(t, ts.URL, []*Request{{Network: healthyTwoStation(), K: 2, N: 5}})

	raw, _ := json.Marshal([]*Request{{Network: healthyTwoStation(), K: 2, N: 6}})
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull job store: status %d, want 429", resp.StatusCode)
	}
	var eb ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Code != "overloaded" {
		t.Fatalf("overfull job store body: %+v err %v", eb, err)
	}
	// Let the work finish so the test tears down cleanly.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = s.Drain(ctx)
}

// Exercising the store TTL through the server clock hook: finished
// records expire, in-flight ones never do.
func TestAsyncResultTTL(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	s := New(Config{Seed: 8, JobTTL: time.Minute, Now: clock})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	acc := postJobs(t, ts.URL, []*Request{{Network: healthyTwoStation(), K: 2, N: 5}})
	waitFor(t, func() bool {
		body, _ := getJob(t, ts.URL, acc.ID)
		return body.State == "done"
	})
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	if _, status := getJob(t, ts.URL, acc.ID); status != http.StatusNotFound {
		t.Fatalf("expired job status %d, want 404", status)
	}
}

// Batch counters surface on /stats alongside the PR-3 shape.
func TestStatsCarriesBatchCounters(t *testing.T) {
	s := New(Config{Seed: 9})
	items := s.SolveBatch(context.Background(), []*Request{
		{Network: healthyTwoStation(), K: 2, N: 7},
		{Network: healthyTwoStation(), K: 2, N: 11},
	})
	for i, item := range items {
		if item.Response == nil {
			t.Fatalf("job %d: %s", i, item.Error)
		}
	}
	st := s.Snapshot()
	if st.BatchJobs != 2 || st.BatchGroups != 1 || st.BatchChainReuse != 1 {
		t.Fatalf("stats %+v, want 2 jobs / 1 group / 1 reuse", st)
	}
}
