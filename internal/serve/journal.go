package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"finwl/internal/batch"
	"finwl/internal/obs"
)

// idemKeyCtx threads a client-supplied Idempotency-Key from the HTTP
// front to SolveBatch without widening the Service interface.
type idemKeyCtx struct{}

// WithIdempotencyKey attaches an idempotency key to ctx; the front
// calls this for /batch requests carrying an Idempotency-Key header.
func WithIdempotencyKey(ctx context.Context, key string) context.Context {
	if key == "" {
		return ctx
	}
	return context.WithValue(ctx, idemKeyCtx{}, key)
}

// IdempotencyKeyFrom returns the key attached by WithIdempotencyKey,
// or "".
func IdempotencyKeyFrom(ctx context.Context) string {
	key, _ := ctx.Value(idemKeyCtx{}).(string)
	return key
}

// openJournal opens (or creates) the durability journal under
// cfg.JournalDir and rehydrates the async-job store from it: finished
// results inside the TTL become fetchable done records, results past
// the TTL leave 410-answering tombstones, and jobs that were queued
// or running at the crash re-enqueue — running ones resume from their
// last checkpointed group instead of from scratch. Only called from
// NewRecovered, before the server is shared.
func (s *Server) openJournal(cfg Config) error {
	policy, err := batch.ParseFsyncPolicy(cfg.Fsync)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
		return fmt.Errorf("serve: create journal dir: %w", err)
	}
	if s.replicaID == "" {
		id, err := loadOrCreateReplicaID(filepath.Join(cfg.JournalDir, "replica-id"))
		if err != nil {
			return err
		}
		s.replicaID = id
	}
	j, entries, err := batch.OpenJournal(batch.JournalConfig{
		Path:     filepath.Join(cfg.JournalDir, "jobs.jsonl"),
		Fsync:    policy,
		Interval: cfg.FsyncInterval,
		Hooks:    cfg.JournalHooks,
		Logger:   cfg.Logger,
		Now:      cfg.Now,
	})
	if err != nil {
		return err
	}
	s.journal = j
	// With durability on, the store can certify that an unknown ID was
	// once valid — keep enough tombstones to cover several store
	// generations of expiries.
	s.jobs.TrackGone(8 * cfg.JobStoreSize)
	s.recover(entries)
	return nil
}

// loadOrCreateReplicaID persists this replica's job-ID prefix so IDs
// handed out before a crash still carry the right prefix after it.
func loadOrCreateReplicaID(path string) (string, error) {
	if b, err := os.ReadFile(path); err == nil {
		if id := strings.TrimSpace(string(b)); id != "" {
			return id, nil
		}
	}
	id := "r-" + obs.NewRequestID()
	if err := os.WriteFile(path, []byte(id+"\n"), 0o644); err != nil {
		return "", fmt.Errorf("serve: persist replica id: %w", err)
	}
	return id, nil
}

// jobReplay is one job's folded journal history.
type jobReplay struct {
	submit *batch.Entry
	groups []batch.Entry
	done   *batch.Entry
	cancel *batch.Entry
}

// recover folds the replayed entries per job and rehydrates the
// store. Replay is idempotent: Restore refuses duplicate IDs, so
// re-running recovery over the same journal (or a journal extended by
// this very boot) is a no-op for already-present records.
func (s *Server) recover(entries []batch.Entry) {
	byID := make(map[string]*jobReplay)
	var order []string
	for i := range entries {
		e := &entries[i]
		r, ok := byID[e.ID]
		if !ok {
			r = &jobReplay{}
			byID[e.ID] = r
			order = append(order, e.ID)
		}
		switch e.Op {
		case batch.OpSubmit:
			r.submit = e
		case batch.OpGroup:
			r.groups = append(r.groups, *e)
		case batch.OpDone:
			r.done = e
		case batch.OpCancel:
			r.cancel = e
		}
		// Unknown ops (a newer build's journal) are skipped.
	}
	now := s.cfg.Now()
	for _, id := range order {
		r := byID[id]
		if r.submit == nil && r.done == nil && r.cancel == nil {
			// An interval-policy crash can lose the submit record while
			// keeping later ones; without the requests there is nothing
			// to resume, and without a terminal record nothing to serve.
			continue
		}
		recovered := false
		switch {
		case r.done != nil:
			recovered = s.recoverTerminal(id, r, r.done, now)
		case r.cancel != nil:
			recovered = s.recoverTerminal(id, r, r.cancel, now)
		default:
			recovered = s.recoverInFlight(id, r)
		}
		if recovered {
			s.m.jobsRecovered.Inc()
		}
		if r.submit != nil && r.submit.IdemKey != "" {
			s.idemJobs.add(r.submit.IdemKey, id)
		}
	}
}

// recoverTerminal rehydrates a job whose terminal record (done or
// cancel) survived: within the TTL the results become fetchable
// again, past it the ID leaves a 410 tombstone.
func (s *Server) recoverTerminal(id string, r *jobReplay, term *batch.Entry, now time.Time) bool {
	if term.T.IsZero() || now.Sub(term.T) >= s.cfg.JobTTL {
		s.jobs.MarkGone(id)
		return false
	}
	rec := batch.Record[BatchItem]{
		ID:       id,
		State:    batch.StateDone,
		Finished: term.T,
	}
	if r.submit != nil {
		rec.Created = r.submit.T
		rec.JobsTotal = r.submit.JobsTotal
	} else {
		rec.Created = term.T
	}
	if term.Op == batch.OpCancel {
		rec.Err = ErrorFromWire(0, ErrorBody{Error: term.Error, Code: term.Code})
	} else {
		var items []BatchItem
		if err := json.Unmarshal(term.Items, &items); err != nil {
			s.warn("journal: done record undecodable, tombstoning", "id", id, "error", err)
			s.jobs.MarkGone(id)
			return false
		}
		rec.Results = items
		if rec.JobsTotal == 0 {
			rec.JobsTotal = len(items)
		}
		rec.JobsDone = rec.JobsTotal
	}
	return s.jobs.Restore(rec)
}

// recoverInFlight re-enqueues a job that was queued or running at the
// crash. Group checkpoints journaled by the pre-crash run become
// preset items, so only the unsolved remainder is re-run.
func (s *Server) recoverInFlight(id string, r *jobReplay) bool {
	var reqs []*Request
	if err := json.Unmarshal(r.submit.Reqs, &reqs); err != nil {
		s.warn("journal: submit record undecodable, tombstoning", "id", id, "error", err)
		s.jobs.MarkGone(id)
		return false
	}
	preset := make(map[int]BatchItem)
	for _, g := range r.groups {
		var items []BatchItem
		if err := json.Unmarshal(g.Items, &items); err != nil || len(items) != len(g.Idx) {
			s.warn("journal: group checkpoint undecodable, re-solving its jobs", "id", id, "group", g.Group)
			continue
		}
		for j, idx := range g.Idx {
			if idx >= 0 && idx < len(reqs) {
				preset[idx] = items[j]
			}
		}
	}
	if !s.jobs.Restore(batch.Record[BatchItem]{
		ID:        id,
		State:     batch.StateQueued,
		JobsTotal: len(reqs),
		Created:   r.submit.T,
	}) {
		return false
	}
	s.asyncWG.Add(1)
	go s.runAsync(id, reqs, preset)
	return true
}

func (s *Server) warn(msg string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Warn(msg, args...)
	}
}
