package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"finwl/internal/check"
	"finwl/internal/cluster"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

// Num is a float64 whose JSON form round-trips non-finite values:
// ordinary numbers are numbers, and NaN/±Inf — which encoding/json
// rejects — are the strings "NaN", "+Inf", "-Inf". The serve boundary
// must be able to *carry* degenerate values so that the validators
// behind it are the ones rejecting them (and the fault-injection
// campaign can prove they do); silently refusing them at decode time
// would leave that path untested.
type Num float64

// MarshalJSON writes finite values as numbers and non-finite values
// as quoted strings.
func (n Num) MarshalJSON() ([]byte, error) {
	f := float64(n)
	switch {
	case math.IsNaN(f):
		return []byte(`"NaN"`), nil
	case math.IsInf(f, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(f, -1):
		return []byte(`"-Inf"`), nil
	}
	return strconv.AppendFloat(nil, f, 'g', -1, 64), nil
}

// UnmarshalJSON accepts a JSON number or one of the strings "NaN",
// "Inf", "+Inf", "-Inf".
func (n *Num) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch strings.ToLower(s) {
		case "nan":
			*n = Num(math.NaN())
		case "inf", "+inf":
			*n = Num(math.Inf(1))
		case "-inf":
			*n = Num(math.Inf(-1))
		default:
			return check.Invalid("serve: number %q is not a number or NaN/±Inf", s)
		}
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return err
	}
	*n = Num(f)
	return nil
}

func nums(v []float64) []Num {
	if v == nil {
		return nil
	}
	out := make([]Num, len(v))
	for i, x := range v {
		out[i] = Num(x)
	}
	return out
}

func floats(v []Num) []float64 {
	if v == nil {
		return nil
	}
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

// Kind wraps statespace.Kind with a JSON form that is either a name
// ("delay", "queue", "multi") or a raw integer, so out-of-range kinds
// can travel to network.Validate where they are rejected typed.
type Kind struct{ statespace.Kind }

// MarshalJSON writes known kinds by name and unknown ones as numbers.
func (k Kind) MarshalJSON() ([]byte, error) {
	switch k.Kind {
	case statespace.Delay, statespace.Queue, statespace.Multi:
		return json.Marshal(k.String())
	}
	return json.Marshal(int(k.Kind))
}

// UnmarshalJSON accepts a kind name or integer.
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch strings.ToLower(s) {
		case "delay":
			k.Kind = statespace.Delay
		case "queue":
			k.Kind = statespace.Queue
		case "multi":
			k.Kind = statespace.Multi
		default:
			return check.Invalid("serve: unknown station kind %q", s)
		}
		return nil
	}
	var i int
	if err := json.Unmarshal(b, &i); err != nil {
		return err
	}
	k.Kind = statespace.Kind(i)
	return nil
}

// PHSpec is the wire form of a phase-type service distribution.
type PHSpec struct {
	Alpha []Num   `json:"alpha"`
	Rates []Num   `json:"rates"`
	Trans [][]Num `json:"trans"`
}

// StationSpec is the wire form of one station.
type StationSpec struct {
	Name    string  `json:"name,omitempty"`
	Kind    Kind    `json:"kind"`
	Servers int     `json:"servers,omitempty"`
	Service *PHSpec `json:"service"`
}

// NetworkSpec is the wire form of a raw station-level network — the
// power-user (and fault-injection) alternative to the cluster form.
type NetworkSpec struct {
	Stations []StationSpec `json:"stations"`
	Route    [][]Num       `json:"route"`
	Exit     []Num         `json:"exit"`
	Entry    []Num         `json:"entry"`
}

// AppSpec is the wire form of the workload application model; zero
// fields inherit the paper's default workload.
type AppSpec struct {
	X          *float64 `json:"x,omitempty"`
	C          *float64 `json:"c,omitempty"`
	Y          *float64 `json:"y,omitempty"`
	B          *float64 `json:"b,omitempty"`
	Cycles     *float64 `json:"cycles,omitempty"`
	RemoteFrac *float64 `json:"remote_frac,omitempty"`
}

// CV2Spec overrides the squared coefficient of variation of each
// cluster component's service distribution (0 = exponential default).
type CV2Spec struct {
	CPU    float64 `json:"cpu,omitempty"`
	Disk   float64 `json:"disk,omitempty"`
	Comm   float64 `json:"comm,omitempty"`
	Remote float64 `json:"remote,omitempty"`
}

// Request is one solve request. Exactly one model form is used: the
// cluster form (Arch + optional App/CV2) or the raw Network form,
// which takes precedence when present.
type Request struct {
	Arch      string       `json:"arch,omitempty"` // "central" | "distributed"
	K         int          `json:"k"`              // max concurrency / workstations
	N         int          `json:"n"`              // workload size (tasks)
	App       *AppSpec     `json:"app,omitempty"`
	CV2       *CV2Spec     `json:"cv2,omitempty"`
	Network   *NetworkSpec `json:"network,omitempty"`
	TimeoutMS int          `json:"timeout_ms,omitempty"` // per-request deadline
}

// buildMatrix converts a [][]Num into a dense matrix, rejecting
// ragged rows with a typed error. Empty input yields nil (the
// validators reject nil with their own message).
func buildMatrix(name string, rows [][]Num) (*matrix.Matrix, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	cols := len(rows[0])
	if cols == 0 {
		return nil, check.Invalid("serve: %s row 0 is empty", name)
	}
	m := matrix.New(len(rows), cols)
	for i, row := range rows {
		if len(row) != cols {
			return nil, check.Invalid("serve: %s row %d has %d entries, want %d", name, i, len(row), cols)
		}
		for j, v := range row {
			m.Set(i, j, float64(v))
		}
	}
	return m, nil
}

// buildPH converts a PHSpec into a phase-type distribution without
// panicking on malformed dimensions; deeper invariants are left to
// phase.Validate, which network.Validate runs.
func (p *PHSpec) buildPH(name string) (*phase.PH, error) {
	if p == nil {
		return nil, nil
	}
	trans, err := buildMatrix(name+" trans", p.Trans)
	if err != nil {
		return nil, err
	}
	return &phase.PH{
		Name:  name,
		Alpha: floats(p.Alpha),
		Rates: floats(p.Rates),
		Trans: trans,
	}, nil
}

// buildNetwork converts a NetworkSpec into a network.Network. It only
// guards against conversions that would panic (ragged matrices); all
// model invariants are network.Validate's job.
func (ns *NetworkSpec) buildNetwork() (*network.Network, error) {
	route, err := buildMatrix("route", ns.Route)
	if err != nil {
		return nil, err
	}
	stations := make([]network.Station, len(ns.Stations))
	for i, st := range ns.Stations {
		svc, err := st.Service.buildPH(st.Name)
		if err != nil {
			return nil, err
		}
		stations[i] = network.Station{
			Name:    st.Name,
			Kind:    st.Kind.Kind,
			Service: svc,
			Servers: st.Servers,
		}
	}
	return &network.Network{
		Stations: stations,
		Route:    route,
		Exit:     floats(ns.Exit),
		Entry:    floats(ns.Entry),
	}, nil
}

// SpecFromNetwork converts a network back into its wire form — the
// inverse of buildNetwork, used to push programmatically-built
// (including degenerate) networks through the HTTP surface and to
// derive canonical cache keys.
func SpecFromNetwork(net *network.Network) *NetworkSpec {
	if net == nil {
		return &NetworkSpec{}
	}
	spec := &NetworkSpec{
		Exit:  nums(net.Exit),
		Entry: nums(net.Entry),
	}
	if net.Route != nil {
		spec.Route = make([][]Num, net.Route.Rows())
		for i := range spec.Route {
			spec.Route[i] = nums(net.Route.RawRow(i))
		}
	}
	spec.Stations = make([]StationSpec, len(net.Stations))
	for i, st := range net.Stations {
		ss := StationSpec{Name: st.Name, Kind: Kind{st.Kind}, Servers: st.Servers}
		if st.Service != nil {
			ph := &PHSpec{Alpha: nums(st.Service.Alpha), Rates: nums(st.Service.Rates)}
			if st.Service.Trans != nil {
				ph.Trans = make([][]Num, st.Service.Trans.Rows())
				for r := range ph.Trans {
					ph.Trans[r] = nums(st.Service.Trans.RawRow(r))
				}
			}
			ss.Service = ph
		}
		spec.Stations[i] = ss
	}
	return spec
}

// buildApp resolves the workload model: paper defaults overridden by
// any AppSpec fields present.
func (r *Request) buildApp() workload.App {
	app := workload.Default(r.N)
	if s := r.App; s != nil {
		if s.X != nil {
			app.X = *s.X
		}
		if s.C != nil {
			app.C = *s.C
		}
		if s.Y != nil {
			app.Y = *s.Y
		}
		if s.B != nil {
			app.B = *s.B
		}
		if s.Cycles != nil {
			app.Cycles = *s.Cycles
		}
		if s.RemoteFrac != nil {
			app.RemoteFrac = *s.RemoteFrac
		}
	}
	return app
}

func (r *Request) dists() cluster.Dists {
	var d cluster.Dists
	if c := r.CV2; c != nil {
		if c.CPU > 0 {
			d.CPU = cluster.WithCV2(c.CPU)
		}
		if c.Disk > 0 {
			d.Disk = cluster.WithCV2(c.Disk)
		}
		if c.Comm > 0 {
			d.Comm = cluster.WithCV2(c.Comm)
		}
		if c.Remote > 0 {
			d.Remote = cluster.WithCV2(c.Remote)
		}
	}
	return d
}

// BuildNetwork resolves the request into a validated network. Every
// failure matches a check sentinel (ErrInvalidModel for model
// problems).
func (r *Request) BuildNetwork() (*network.Network, error) {
	if err := check.Count("serve: workload n", r.N, 1); err != nil {
		return nil, err
	}
	if err := check.Count("serve: population k", r.K, 1); err != nil {
		return nil, err
	}
	if r.K > network.MaxPopulation {
		return nil, check.Invalid("serve: population %d exceeds the supported maximum %d", r.K, network.MaxPopulation)
	}
	var (
		net *network.Network
		err error
	)
	switch {
	case r.Network != nil:
		net, err = r.Network.buildNetwork()
	case r.Arch == "central" || r.Arch == "":
		net, err = cluster.Central(r.K, r.buildApp(), r.dists(), cluster.Options{})
	case r.Arch == "distributed":
		net, err = cluster.Distributed(r.K, r.buildApp(), r.dists())
	default:
		return nil, check.Invalid("serve: unknown arch %q (want central or distributed)", r.Arch)
	}
	if err != nil {
		return nil, err
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// CacheKey returns the canonical identity of a solve: the fully
// resolved network (cluster requests and equivalent raw-network
// requests collapse to the same key) plus (k, n). Deadlines are
// deliberately excluded — only full-fidelity results are cached, and
// those are valid under any deadline.
func CacheKey(net *network.Network, k, n int) string {
	return fmt.Sprintf("%s|k=%d|n=%d", networkKey(net), k, n)
}

// ShardKey is the canonical identity of a factored chain: the
// resolved network plus the population K, with the workload size n
// excluded — every n over the same chain reuses one factorization.
// It keys the server's solver cache, the batch scheduler's grouping,
// and the fleet router's consistent-hash placement, so the replica a
// request hashes to is exactly the replica whose caches are warm for
// its model.
func ShardKey(net *network.Network, k int) string {
	return fmt.Sprintf("%s|K=%d", networkKey(net), k)
}

// networkKey is the canonical JSON of the network's wire form.
func networkKey(net *network.Network) string {
	b, err := json.Marshal(SpecFromNetwork(net))
	if err != nil {
		// Num/Kind marshalers cannot fail; any other failure would be a
		// programming error in the spec types themselves.
		panic(fmt.Sprintf("serve: canonical network marshal: %v", err))
	}
	return string(b)
}
