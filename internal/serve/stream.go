package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"finwl/internal/check"
	"finwl/internal/phase"
	"finwl/internal/stream"
)

// FidelitySingleJob tags a stream response computed by the
// single-job degradation rung: the job-stream chain was too large or
// failed numerically, so the answer was assembled from the paper's
// single-workload solver plus renewal arithmetic. Coarse, but typed —
// clients always know they did not get the exact stream solve.
const FidelitySingleJob Fidelity = "single-job"

// LawSpec is the wire form of an arrival or think-time law: a named
// process fitted by mean and squared coefficient of variation through
// phase.FitCV2. CV2 defaults per process — deterministic 0.25 (Erlang
// approximation), poisson 1, bursty 4 — and may be overridden.
type LawSpec struct {
	Process string `json:"process,omitempty"` // deterministic | poisson | bursty | fit
	Mean    Num    `json:"mean"`
	CV2     Num    `json:"cv2,omitempty"`
}

// buildPH resolves a LawSpec into a phase-type distribution; every
// failure matches check.ErrInvalidModel.
func (l *LawSpec) buildPH(name string) (*phase.PH, error) {
	if l == nil {
		return nil, nil
	}
	cv2 := float64(l.CV2)
	var def float64
	switch strings.ToLower(l.Process) {
	case "deterministic":
		def = 0.25
	case "poisson":
		def = 1
	case "bursty":
		def = 4
	case "", "fit":
		def = 1
	default:
		return nil, check.Invalid("serve: unknown %s process %q (want deterministic, poisson, bursty or fit)", name, l.Process)
	}
	if cv2 == 0 {
		cv2 = def
	}
	ph, err := phase.FitCV2(float64(l.Mean), cv2)
	if err != nil {
		return nil, typedOr(fmt.Errorf("serve: %s law: %w", name, err), check.ErrInvalidModel)
	}
	ph.Name = name
	return ph, nil
}

// StreamRequest is one POST /stream request: the same model forms as
// /solve (cluster or raw network) plus the job-stream fields. Exactly
// one of the open (jobs + arrival) and closed (customers + think)
// pairs must be set.
type StreamRequest struct {
	Arch    string       `json:"arch,omitempty"`
	K       int          `json:"k"`
	App     *AppSpec     `json:"app,omitempty"`
	CV2     *CV2Spec     `json:"cv2,omitempty"`
	Network *NetworkSpec `json:"network,omitempty"`

	JobTasks  int      `json:"job_tasks"`
	Jobs      int      `json:"jobs,omitempty"`
	Arrival   *LawSpec `json:"arrival,omitempty"`
	Customers int      `json:"customers,omitempty"`
	Think     *LawSpec `json:"think,omitempty"`

	Probes    []Num `json:"probes,omitempty"`
	TimeoutMS int   `json:"timeout_ms,omitempty"`
}

// BuildConfig resolves the request into a validated stream.Config.
// maxStates is the server-side state cap (0 = stream default) — it is
// deliberately not client-controlled. Every failure matches a check
// sentinel.
func (r *StreamRequest) BuildConfig(maxStates int64) (stream.Config, error) {
	var cfg stream.Config
	if r.JobTasks < 1 {
		return cfg, check.Invalid("serve: stream job_tasks=%d, want >= 1", r.JobTasks)
	}
	// The network forms and their guards are exactly /solve's; the
	// workload size a cluster-form app model scales by is the job size.
	base := Request{Arch: r.Arch, K: r.K, N: r.JobTasks, App: r.App, CV2: r.CV2, Network: r.Network}
	net, err := base.BuildNetwork()
	if err != nil {
		return cfg, err
	}
	arrival, err := (r.Arrival).buildPH("arrival")
	if err != nil {
		return cfg, err
	}
	think, err := (r.Think).buildPH("think")
	if err != nil {
		return cfg, err
	}
	cfg = stream.Config{
		Net: net, K: r.K, JobTasks: r.JobTasks,
		Jobs: r.Jobs, Arrival: arrival,
		Customers: r.Customers, Think: think,
		MaxStates: maxStates,
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	for i, p := range r.Probes {
		if err := check.Finite("serve: stream probe", float64(p)); err != nil {
			return cfg, err
		}
		if p < 0 {
			return cfg, check.Invalid("serve: stream probe %d is %v, want >= 0", i, float64(p))
		}
	}
	return cfg, nil
}

// StreamResponse is the client-visible result of one stream solve.
type StreamResponse struct {
	Fidelity  Fidelity `json:"fidelity"`
	Mode      string   `json:"mode"`
	K         int      `json:"k"`
	JobTasks  int      `json:"job_tasks"`
	Jobs      int      `json:"jobs,omitempty"`
	Customers int      `json:"customers,omitempty"`

	States int   `json:"states,omitempty"` // exact tier: augmented transient states
	Price  int64 `json:"price"`            // admission cost charged

	Probes    []Num `json:"probes,omitempty"`
	MeanTasks []Num `json:"mean_tasks,omitempty"` // E[tasks in system] per probe
	MeanDrain Num   `json:"mean_drain,omitempty"` // open mode: mean time of last departure
	DrainCDF  []Num `json:"drain_cdf,omitempty"`  // open mode: P(drain <= probe)

	DegradedFrom string   `json:"degraded_from,omitempty"`
	ElapsedMS    float64  `json:"elapsed_ms"`
	Timings      *Timings `json:"timings,omitempty"`
}

// SolveStream runs one job-stream request: admission-priced exact
// solve first, falling to the single-job rung when the augmented chain
// is over the state cap or fails numerically. As with Solve, a
// degraded result returns both a usable response and a *DegradedError
// matching check.ErrDegraded.
func (s *Server) SolveStream(ctx context.Context, req *StreamRequest) (*StreamResponse, error) {
	s.m.requests.Inc()
	if s.draining.Load() {
		s.m.rejected.Inc()
		return nil, errDraining()
	}
	cfg, err := req.BuildConfig(s.cfg.StreamMaxStates)
	if err != nil {
		s.m.invalid.Inc()
		return nil, err
	}
	probes := floats(req.Probes)

	timeout := s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	stop := context.AfterFunc(s.workCtx, cancel)
	defer stop()

	var reason string
	states, price, perr := stream.Price(cfg)
	if perr != nil && !errors.Is(perr, stream.ErrTooLarge) {
		s.m.invalid.Inc()
		return nil, perr
	}
	if perr != nil {
		reason = fmt.Sprintf("%d augmented states over the stream cap", states)
	} else {
		resp, err := s.streamExact(ctx, cfg, probes, price)
		switch {
		case err == nil:
			return resp, nil
		case errors.Is(err, check.ErrCanceled):
			s.m.canceled.Inc()
			return nil, err
		case errors.Is(err, check.ErrOverloaded), errors.Is(err, check.ErrInvalidModel):
			return nil, err
		}
		// Numerical failure of the exact tier: fall one rung.
		reason = fmt.Sprintf("exact stream tier failed: %v", err)
	}
	resp, err := s.streamSingleJob(ctx, cfg, probes, reason)
	if err != nil {
		if errors.Is(err, check.ErrCanceled) {
			s.m.canceled.Inc()
		} else if !errors.Is(err, check.ErrOverloaded) {
			s.m.failures.Inc()
		}
		return nil, err
	}
	s.m.degraded.Inc()
	return resp, &DegradedError{Fidelity: FidelitySingleJob, Reason: reason}
}

// streamExact is the admission → exact stream solve path.
func (s *Server) streamExact(ctx context.Context, cfg stream.Config, probes []float64, price int64) (*StreamResponse, error) {
	queueSpan := s.m.queueWait.Start()
	if err := s.adm.acquire(ctx.Done(), price); err != nil {
		queueSpan.End()
		if errors.Is(err, check.ErrOverloaded) {
			s.m.rejected.Inc()
		}
		return nil, err
	}
	queueWait := queueSpan.End()
	defer s.adm.release(price)

	start := time.Now()
	res, err := stream.Solve(ctx, cfg, probes)
	if err != nil {
		return nil, err
	}
	solveTime := time.Since(start)
	s.m.tierCounter(FidelityExact).Inc()
	s.m.solveTime.ObserveDuration(solveTime)
	resp := &StreamResponse{
		Fidelity: FidelityExact,
		Mode:     res.Mode,
		K:        cfg.K, JobTasks: cfg.JobTasks,
		Jobs: cfg.Jobs, Customers: cfg.Customers,
		States: res.States, Price: res.Price,
		Probes:    nums(res.Probes),
		MeanTasks: nums(res.MeanTasks),
		MeanDrain: Num(res.MeanDrain),
		DrainCDF:  nums(res.DrainCDF),
		ElapsedMS: float64(solveTime.Microseconds()) / 1000,
		Timings: &Timings{
			QueueMS: float64(queueWait.Microseconds()) / 1000,
			SolveMS: float64(solveTime.Microseconds()) / 1000,
		},
	}
	return resp, nil
}

// streamSingleJob is the degradation rung: solve the paper's single
// finite workload exactly, then extend it with renewal arithmetic.
// Open mode brackets the drain as the later of "last arrival plus one
// job's drain" (light traffic) and "jobs served back to back"
// (saturation). Closed mode reports the cycle-time steady state
// E[J] ≈ Customers·JobTasks·T₁/(T₁ + think) at every probe. No drain
// CDF — the rung cannot see the distribution.
func (s *Server) streamSingleJob(ctx context.Context, cfg stream.Config, probes []float64, reason string) (*StreamResponse, error) {
	k := cfg.K
	if cfg.JobTasks < k {
		k = cfg.JobTasks
	}
	space := cfg.Net.Space()
	price := chainPrice(space, k)
	queueSpan := s.m.queueWait.Start()
	if err := s.adm.acquire(ctx.Done(), price); err != nil {
		queueSpan.End()
		if errors.Is(err, check.ErrOverloaded) {
			s.m.rejected.Inc()
		}
		return nil, err
	}
	queueWait := queueSpan.End()
	defer s.adm.release(price)

	start := time.Now()
	solver, _, err := s.solverFor(ctx, ShardKey(cfg.Net, k), cfg.Net, k)
	if err != nil {
		return nil, err
	}
	res, err := solver.SolveCtx(ctx, cfg.JobTasks)
	if err != nil {
		return nil, err
	}
	t1 := res.TotalTime
	solveTime := time.Since(start)
	s.m.solveTime.ObserveDuration(solveTime)
	resp := &StreamResponse{
		Fidelity: FidelitySingleJob,
		Mode:     cfg.Mode(),
		K:        cfg.K, JobTasks: cfg.JobTasks,
		Jobs: cfg.Jobs, Customers: cfg.Customers,
		Price:        price,
		Probes:       nums(probes),
		DegradedFrom: reason,
		ElapsedMS:    float64(solveTime.Microseconds()) / 1000,
		Timings: &Timings{
			QueueMS: float64(queueWait.Microseconds()) / 1000,
			SolveMS: float64(solveTime.Microseconds()) / 1000,
		},
	}
	if cfg.Mode() == stream.ModeOpen {
		g := float64(cfg.Jobs - 1)
		resp.MeanDrain = Num(math.Max(g*cfg.Arrival.Mean(), g*t1) + t1)
	} else {
		level := float64(cfg.Customers) * float64(cfg.JobTasks) * t1 / (t1 + cfg.Think.Mean())
		tasks := make([]Num, len(probes))
		for i := range tasks {
			tasks[i] = Num(level)
		}
		resp.MeanTasks = tasks
	}
	return resp, nil
}
