package serve

import (
	"errors"
	"testing"
	"time"

	"finwl/internal/check"
)

func TestAdmissionGrantAndRelease(t *testing.T) {
	a := newAdmission(100, 4)
	if err := a.acquire(nil, 60); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	if err := a.acquire(nil, 40); err != nil {
		t.Fatalf("second acquire filling budget: %v", err)
	}
	used, budget, queued := a.snapshot()
	if used != 100 || budget != 100 || queued != 0 {
		t.Fatalf("snapshot = (%d, %d, %d), want (100, 100, 0)", used, budget, queued)
	}
	a.release(60)
	a.release(40)
	if used, _, _ := a.snapshot(); used != 0 {
		t.Fatalf("used after release = %d, want 0", used)
	}
	a.wait() // must not block once everything released
}

func TestAdmissionRejectsOverBudgetPrice(t *testing.T) {
	a := newAdmission(100, 4)
	err := a.acquire(nil, 101)
	if !errors.Is(err, check.ErrOverloaded) {
		t.Fatalf("over-budget price: err = %v, want ErrOverloaded", err)
	}
}

func TestAdmissionQueueFullRejects(t *testing.T) {
	a := newAdmission(100, 1)
	if err := a.acquire(nil, 100); err != nil {
		t.Fatalf("filler acquire: %v", err)
	}
	// One waiter fits in the queue...
	firstQueued := make(chan error, 1)
	go func() { firstQueued <- a.acquire(make(chan struct{}), 10) }()
	waitForQueue(t, a, 1)
	// ...the next is rejected.
	if err := a.acquire(nil, 10); !errors.Is(err, check.ErrOverloaded) {
		t.Fatalf("queue-full acquire: err = %v, want ErrOverloaded", err)
	}
	a.release(100) // promotes the queued waiter
	if err := <-firstQueued; err != nil {
		t.Fatalf("promoted waiter: %v", err)
	}
	a.release(10)
}

func TestAdmissionFIFOPromotion(t *testing.T) {
	a := newAdmission(100, 8)
	if err := a.acquire(nil, 100); err != nil {
		t.Fatal(err)
	}
	// Waiter 1 (price 90) queues first, waiter 2 (price 50) second.
	// When the filler releases, strict FIFO grants the head — and only
	// the head, since 90+50 exceeds the budget: the cheaper latecomer
	// must not bypass it.
	grants := make(chan int, 2)
	for i, price := range []int64{90, 50} {
		i, price := i+1, price
		go func() {
			if err := a.acquire(make(chan struct{}), price); err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			grants <- i
		}()
		waitForQueue(t, a, i)
	}
	a.release(100)
	if first := <-grants; first != 1 {
		t.Fatalf("first grant went to waiter %d, want the FIFO head 1", first)
	}
	if _, _, queued := a.snapshot(); queued != 1 {
		t.Fatalf("queue depth = %d, want waiter 2 still blocked behind the head", queued)
	}
	a.release(90)
	if second := <-grants; second != 2 {
		t.Fatalf("second grant went to waiter %d, want 2", second)
	}
	a.release(50)
	a.wait()
}

func TestAdmissionCancelWhileQueued(t *testing.T) {
	a := newAdmission(100, 4)
	if err := a.acquire(nil, 100); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	errCh := make(chan error, 1)
	go func() { errCh <- a.acquire(done, 10) }()
	waitForQueue(t, a, 1)
	close(done)
	if err := <-errCh; !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("canceled waiter: err = %v, want ErrCanceled", err)
	}
	if _, _, queued := a.snapshot(); queued != 0 {
		t.Fatalf("queue depth after cancel = %d, want 0", queued)
	}
	a.release(100)
}

func TestAdmissionCloseCancelsQueueTyped(t *testing.T) {
	a := newAdmission(100, 4)
	if err := a.acquire(nil, 100); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- a.acquire(make(chan struct{}), 10) }()
	waitForQueue(t, a, 1)
	a.close()
	if err := <-errCh; !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("drained waiter: err = %v, want ErrCanceled", err)
	}
	if err := a.acquire(nil, 1); !errors.Is(err, check.ErrOverloaded) {
		t.Fatalf("post-close acquire: err = %v, want ErrOverloaded", err)
	}
	a.release(100)
	a.wait()
}

func waitForQueue(t *testing.T, a *admission, depth int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, queued := a.snapshot(); queued >= depth {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue never reached depth %d", depth)
}
