package serve

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"finwl/internal/check"
)

// The serve perf trio: what a request costs when the cache absorbs it,
// when the full exact pipeline runs, and when the degradation ladder
// answers instead. bench.sh snapshots these into BENCH_n.json.

func BenchmarkPerfServeCacheHit(b *testing.B) {
	s := New(Config{Seed: 1})
	req := &Request{Arch: "central", K: 3, N: 10}
	if _, err := s.Solve(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Solve(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected a cache hit")
		}
	}
}

func BenchmarkPerfServeCacheMiss(b *testing.B) {
	s := New(Config{Seed: 1, CacheSize: -1, SolverCacheSize: -1})
	req := &Request{Arch: "central", K: 3, N: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Solve(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Fidelity != FidelityExact {
			b.Fatalf("fidelity = %s, want exact", resp.Fidelity)
		}
	}
}

func BenchmarkPerfServeDegraded(b *testing.B) {
	s := New(Config{Seed: 1, CacheSize: -1, SolverCacheSize: -1})
	// 1ms of deadline against a ~25ms exact estimate: the ladder
	// answers from the cheap end every iteration.
	req := &Request{Arch: "central", K: 10, N: 50, TimeoutMS: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Solve(context.Background(), req)
		if !errors.Is(err, check.ErrDegraded) {
			b.Fatalf("err = %v, want ErrDegraded", err)
		}
		if resp == nil || !resp.Degraded() {
			b.Fatal("expected a degraded approximation")
		}
	}
}

// benchSubmit measures POST /jobs acceptance latency — the window the
// fsync policy widens. Each submitted batch is a pre-warmed cache hit
// so the async workers settle it almost instantly and the store never
// fills; the measured cost is ID minting, store insert, and (in the
// journal variants) the submit append under the configured policy.
func benchSubmit(b *testing.B, cfg Config) {
	cfg.Seed = 1
	// Big enough that the submit loop never waits on the async workers:
	// the measured cost is ID minting, the store insert, and (in the
	// journal variants) the submit append under the configured policy.
	cfg.JobStoreSize = 1 << 21
	cfg.AsyncWorkers = 8
	s := New(cfg)
	defer s.Drain(context.Background())
	req := &Request{Arch: "central", K: 3, N: 10}
	if _, err := s.Solve(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	reqs := []*Request{req}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			_, err := s.SubmitJob(context.Background(), reqs, "")
			if err == nil {
				break
			}
			if !errors.Is(err, check.ErrOverloaded) {
				b.Fatal(err)
			}
			// The async workers fell behind the submit loop; steady-state
			// backpressure is part of the measured latency.
			runtime.Gosched()
		}
	}
}

// The durability perf acceptance pair: journal-interval submits must
// stay within ~10% of the in-memory baseline (bench_diff.sh compares
// them run over run).

func BenchmarkPerfJobSubmitMemory(b *testing.B) {
	benchSubmit(b, Config{})
}

func BenchmarkPerfJobSubmitJournalInterval(b *testing.B) {
	benchSubmit(b, Config{JournalDir: b.TempDir(), Fsync: "interval"})
}

func BenchmarkPerfJobSubmitJournalAlways(b *testing.B) {
	benchSubmit(b, Config{JournalDir: b.TempDir(), Fsync: "always"})
}
