package serve

import (
	"context"
	"errors"
	"testing"

	"finwl/internal/check"
)

// The serve perf trio: what a request costs when the cache absorbs it,
// when the full exact pipeline runs, and when the degradation ladder
// answers instead. bench.sh snapshots these into BENCH_n.json.

func BenchmarkPerfServeCacheHit(b *testing.B) {
	s := New(Config{Seed: 1})
	req := &Request{Arch: "central", K: 3, N: 10}
	if _, err := s.Solve(context.Background(), req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Solve(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected a cache hit")
		}
	}
}

func BenchmarkPerfServeCacheMiss(b *testing.B) {
	s := New(Config{Seed: 1, CacheSize: -1, SolverCacheSize: -1})
	req := &Request{Arch: "central", K: 3, N: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Solve(context.Background(), req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Fidelity != FidelityExact {
			b.Fatalf("fidelity = %s, want exact", resp.Fidelity)
		}
	}
}

func BenchmarkPerfServeDegraded(b *testing.B) {
	s := New(Config{Seed: 1, CacheSize: -1, SolverCacheSize: -1})
	// 1ms of deadline against a ~25ms exact estimate: the ladder
	// answers from the cheap end every iteration.
	req := &Request{Arch: "central", K: 10, N: 50, TimeoutMS: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := s.Solve(context.Background(), req)
		if !errors.Is(err, check.ErrDegraded) {
			b.Fatalf("err = %v, want ErrDegraded", err)
		}
		if resp == nil || !resp.Degraded() {
			b.Fatal("expected a degraded approximation")
		}
	}
}
