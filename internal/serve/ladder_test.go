package serve

import (
	"testing"
	"time"
)

// TestSelectTierTable is the issue-mandated matrix: the fidelity the
// ladder picks for every (remaining deadline, breaker state, cached
// solver) combination, against fixed cost estimates of exact = 100ms,
// checkpoint = 12ms, steady = 2ms.
func TestSelectTierTable(t *testing.T) {
	est := estimates{
		exact:      100 * time.Millisecond,
		checkpoint: 12 * time.Millisecond,
		steady:     2 * time.Millisecond,
	}
	cases := []struct {
		name        string
		breakerOpen bool
		haveSolver  bool
		remaining   time.Duration
		want        Fidelity
	}{
		// Closed breaker, cold solver cache: deadline picks the rung.
		{"closed/cold/no-deadline", false, false, noDeadline, FidelityExact},
		{"closed/cold/ample", false, false, time.Second, FidelityExact},
		{"closed/cold/exact-boundary", false, false, 100 * time.Millisecond, FidelityExact},
		{"closed/cold/below-exact", false, false, 99 * time.Millisecond, FidelitySteady},
		{"closed/cold/below-steady", false, false, time.Millisecond, FidelityBounds},
		{"closed/cold/zero", false, false, 0, FidelityBounds},

		// Closed breaker, warm solver: checkpoint preferred whenever it
		// fits — even when exact would too (same numbers, cheaper).
		{"closed/warm/no-deadline", false, true, noDeadline, FidelityCheckpoint},
		{"closed/warm/ample", false, true, time.Second, FidelityCheckpoint},
		{"closed/warm/between", false, true, 50 * time.Millisecond, FidelityCheckpoint},
		{"closed/warm/below-checkpoint", false, true, 5 * time.Millisecond, FidelitySteady},
		{"closed/warm/below-steady", false, true, time.Millisecond, FidelityBounds},

		// Open breaker: the exact tiers are short-circuited no matter
		// how much deadline or cache is available.
		{"open/cold/no-deadline", true, false, noDeadline, FidelitySteady},
		{"open/warm/no-deadline", true, true, noDeadline, FidelitySteady},
		{"open/warm/ample", true, true, time.Second, FidelitySteady},
		{"open/cold/below-steady", true, false, time.Millisecond, FidelityBounds},
		{"open/warm/zero", true, true, 0, FidelityBounds},
	}
	for _, tc := range cases {
		if got := selectTier(tc.breakerOpen, tc.haveSolver, tc.remaining, est); got != tc.want {
			t.Errorf("%s: selectTier = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestRungBelow(t *testing.T) {
	order := map[Fidelity]Fidelity{
		FidelityExact:      FidelitySteady,
		FidelityCheckpoint: FidelitySteady,
		FidelitySteady:     FidelityBounds,
		FidelityBounds:     FidelityBounds, // floor
	}
	for from, want := range order {
		if got := rungBelow(from); got != want {
			t.Errorf("rungBelow(%s) = %s, want %s", from, got, want)
		}
	}
}

func TestEstimatorLearns(t *testing.T) {
	e := newEstimator(50, 0.125, float64(2*time.Millisecond), 256)
	const class, price = "c", int64(1000)

	cold := e.estimate(class, price)
	if cold.exact != 50*1000 {
		t.Fatalf("cold exact estimate = %v, want 50µs", cold.exact)
	}
	if cold.steady != 2*time.Millisecond {
		t.Fatalf("cold steady estimate = %v, want 2ms", cold.steady)
	}

	// Observe solves 10× slower than the seed; the EWMA must move
	// toward them, and an unrelated class must be untouched.
	for i := 0; i < 20; i++ {
		e.observe(class, FidelityExact, price, 500*1000)
	}
	warm := e.estimate(class, price)
	if warm.exact <= 2*cold.exact {
		t.Fatalf("exact estimate %v barely moved from %v after 20 slow observations", warm.exact, cold.exact)
	}
	other := e.estimate("other", price)
	if other.exact != cold.exact {
		t.Fatalf("unrelated class drifted: %v, want %v", other.exact, cold.exact)
	}

	// Degenerate observations are ignored.
	e.observe(class, FidelityExact, 0, time.Second)
	e.observe(class, FidelityExact, price, 0)
	if e.estimate(class, price) != warm {
		t.Fatal("zero-price or zero-duration observation moved the estimate")
	}
}
