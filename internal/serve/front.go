package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"finwl/internal/check"
	"finwl/internal/obs"
)

// Service is the request-facing surface the HTTP front serves. Two
// implementations exist: *Server (the embedded solve engine) and
// fleet.Router (which forwards each request to the replica owning its
// shard). The split is what makes router, replica and embedded modes
// share one wire contract — decode limits, error mapping, request-ID
// propagation and panic recovery live in the Front, not in either
// implementation.
type Service interface {
	// Solve runs one request; a degraded result returns both a usable
	// Response and an error matching check.ErrDegraded.
	Solve(ctx context.Context, req *Request) (*Response, error)
	// SolveBatch runs a set of requests, returning one item per
	// request in order; per-job failures are typed into their items.
	SolveBatch(ctx context.Context, reqs []*Request) []BatchItem
	// Draining reports whether the service has begun shutting down.
	Draining() bool
	// StatsPayload is the GET /stats response body.
	StatsPayload() any
}

// JobRunner is the optional async-batch surface (POST /jobs, GET
// /jobs/{id}). *Server implements it against the local store and
// journal; fleet.Router implements it by forwarding to the replica
// owning the job. A non-empty idemKey (the Idempotency-Key header)
// makes SubmitJob safe to redeliver. JobPayload's error is mapped
// through StatusOf/CodeOf: ErrJobUnknown → 404, ErrJobGone → 410.
type JobRunner interface {
	SubmitJob(ctx context.Context, reqs []*Request, idemKey string) (id string, err error)
	JobPayload(ctx context.Context, id string) (payload any, err error)
}

// StreamRunner is the optional job-stream surface (POST /stream). A
// Service that implements it gets the route; one that does not (the
// fleet router, until it learns stream sharding) simply serves 404,
// and clients fall back on per-job /solve calls.
type StreamRunner interface {
	SolveStream(ctx context.Context, req *StreamRequest) (*StreamResponse, error)
}

// rejectionCounter lets the front report protocol-level rejections
// (batch over the job limit) back into an implementation's metrics
// without widening the Service interface.
type rejectionCounter interface{ noteRejected() }

// FrontConfig tunes the HTTP front.
type FrontConfig struct {
	Logger       *slog.Logger    // one structured line per request; nil disables
	MaxBatchJobs int             // max jobs per /batch or /jobs submission (default 256)
	Registries   []*obs.Registry // concatenated on GET /metrics
}

// Front is the HTTP boundary: it owns request decoding (body limits,
// NaN/±Inf round-trip), the error → status/code mapping, request-ID
// assignment and echo, panic recovery, and per-request logging —
// everything between the wire and a Service.
type Front struct {
	svc  Service
	jobs JobRunner // nil disables the /jobs routes
	cfg  FrontConfig
}

// NewFront wires a Service (and optionally a JobRunner) behind the
// standard HTTP surface. jobs may be nil.
func NewFront(svc Service, jobs JobRunner, cfg FrontConfig) *Front {
	if cfg.MaxBatchJobs == 0 {
		cfg.MaxBatchJobs = 256
	}
	return &Front{svc: svc, jobs: jobs, cfg: cfg}
}

// maxBodyBytes bounds a request body; a 4-station spec is ~2 KB, so
// 1 MiB leaves room for very wide raw networks without letting a
// client exhaust memory.
const maxBodyBytes = 1 << 20

// maxBatchBodyBytes bounds a batch submission body: room for
// MaxBatchJobs fully-specified raw networks.
const maxBatchBodyBytes = 8 << 20

// Handler returns the HTTP surface: POST /solve, POST /batch, POST
// /jobs + GET /jobs/{id} (when a JobRunner is wired), GET /healthz,
// GET /stats, GET /metrics. A recover middleware turns any escaped
// panic into a 500 with code "panic" — the fault-injection campaigns
// assert it never fires. The outer middleware also assigns each
// request an ID (honoring a client-supplied X-Request-Id), threads it
// through the context so downstream hops and solver cancellation
// errors can name the request, echoes it on the response, and emits
// one slog line per request when FrontConfig.Logger is set.
func (f *Front) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", f.handleSolve)
	mux.HandleFunc("POST /batch", f.handleBatch)
	if sr, ok := f.svc.(StreamRunner); ok {
		mux.HandleFunc("POST /stream", f.streamHandler(sr))
	}
	if f.jobs != nil {
		mux.HandleFunc("POST /jobs", f.handleJobSubmit)
		// {id...} rather than {id}: fleet-era job IDs are
		// "replica/uuid", and the prefix is what routes the GET.
		mux.HandleFunc("GET /jobs/{id...}", f.handleJobGet)
	}
	mux.HandleFunc("/healthz", f.handleHealth)
	mux.HandleFunc("/stats", f.handleStats)
	mux.Handle("/metrics", obs.Handler(f.cfg.Registries...))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = obs.NewRequestID()
		}
		r = r.WithContext(obs.WithRequestID(r.Context(), reqID))
		w.Header().Set("X-Request-Id", reqID)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				writeJSON(sw, http.StatusInternalServerError, ErrorBody{
					Error: fmt.Sprintf("panic: %v", p),
					Code:  "panic",
				})
			}
			if f.cfg.Logger != nil {
				f.cfg.Logger.Info("request",
					"request_id", reqID,
					"method", r.Method,
					"path", r.URL.Path,
					"status", sw.status,
					"elapsed_ms", float64(time.Since(start).Microseconds())/1000,
				)
			}
		}()
		mux.ServeHTTP(sw, r)
	})
}

// statusWriter captures the status code for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (f *Front) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, ErrorBody{Error: "POST only", Code: "method"})
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		werr := check.Invalid("serve: bad request body: %v", err)
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: werr.Error(), Code: CodeOf(werr)})
		return
	}
	resp, err := f.svc.Solve(r.Context(), &req)
	if resp != nil && (err == nil || errors.Is(err, check.ErrDegraded)) {
		// A cache hit is already a private clone with zeroed timings;
		// re-measuring its serialization would only report the cost of
		// this handler, so it goes straight to the encoder. Fresh
		// results measure serialization with a first marshal, record it
		// in the timings, and encode again — on a copy, because the
		// original pointer may be shared with the result cache.
		if !resp.Cached {
			resp = resp.clone()
			encStart := time.Now()
			if _, merr := json.Marshal(resp); merr == nil && resp.Timings != nil {
				resp.Timings.EncodeMS = float64(time.Since(encStart).Microseconds()) / 1000
			}
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	writeJSON(w, StatusOf(err), ErrorBody{Error: err.Error(), Code: CodeOf(err)})
}

// streamHandler serves POST /stream against an implementation's
// StreamRunner surface; decode limits and error mapping match /solve.
func (f *Front) streamHandler(sr StreamRunner) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req StreamRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			werr := check.Invalid("serve: bad stream body: %v", err)
			writeJSON(w, http.StatusBadRequest, ErrorBody{Error: werr.Error(), Code: CodeOf(werr)})
			return
		}
		resp, err := sr.SolveStream(r.Context(), &req)
		if resp != nil && (err == nil || errors.Is(err, check.ErrDegraded)) {
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeJSON(w, StatusOf(err), ErrorBody{Error: err.Error(), Code: CodeOf(err)})
	}
}

// decodeBatch reads a JSON array of requests, enforcing the body and
// job-count limits; on failure it writes the error response itself.
func (f *Front) decodeBatch(w http.ResponseWriter, r *http.Request) ([]*Request, bool) {
	var reqs []*Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBatchBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&reqs); err != nil {
		werr := check.Invalid("serve: bad batch body: %v", err)
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: werr.Error(), Code: CodeOf(werr)})
		return nil, false
	}
	if len(reqs) > f.cfg.MaxBatchJobs {
		err := fmt.Errorf("serve: batch of %d jobs exceeds limit %d: %w", len(reqs), f.cfg.MaxBatchJobs, check.ErrOverloaded)
		if rc, ok := f.svc.(rejectionCounter); ok {
			rc.noteRejected()
		}
		writeJSON(w, StatusOf(err), ErrorBody{Error: err.Error(), Code: CodeOf(err)})
		return nil, false
	}
	return reqs, true
}

func (f *Front) handleBatch(w http.ResponseWriter, r *http.Request) {
	reqs, ok := f.decodeBatch(w, r)
	if !ok {
		return
	}
	if f.svc.Draining() {
		err := errDraining()
		writeJSON(w, StatusOf(err), ErrorBody{Error: err.Error(), Code: CodeOf(err)})
		return
	}
	ctx := WithIdempotencyKey(r.Context(), r.Header.Get("Idempotency-Key"))
	writeJSON(w, http.StatusOK, f.svc.SolveBatch(ctx, reqs))
}

// jobAccepted is the POST /jobs response.
type jobAccepted struct {
	ID   string `json:"id"`
	Jobs int    `json:"jobs"`
	Poll string `json:"poll"`
}

func (f *Front) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	reqs, ok := f.decodeBatch(w, r)
	if !ok {
		return
	}
	id, err := f.jobs.SubmitJob(r.Context(), reqs, r.Header.Get("Idempotency-Key"))
	if err != nil {
		writeJSON(w, StatusOf(err), ErrorBody{Error: err.Error(), Code: CodeOf(err)})
		return
	}
	writeJSON(w, http.StatusAccepted, jobAccepted{ID: id, Jobs: len(reqs), Poll: "/jobs/" + id})
}

func (f *Front) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	payload, err := f.jobs.JobPayload(r.Context(), id)
	if err != nil {
		writeJSON(w, StatusOf(err), ErrorBody{Error: err.Error(), Code: CodeOf(err)})
		return
	}
	writeJSON(w, http.StatusOK, payload)
}

func (f *Front) handleHealth(w http.ResponseWriter, r *http.Request) {
	if f.svc.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: "draining", Code: "draining"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (f *Front) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.svc.StatsPayload())
}

// jsonBufPool recycles encode buffers across responses; oversized
// buffers (past 64 KiB) are dropped rather than pinned in the pool.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Response types marshal by construction; surface any
		// programming error instead of sending a half-written body.
		jsonBufPool.Put(buf)
		http.Error(w, `{"error":"encode failure","code":"internal"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= 1<<16 {
		jsonBufPool.Put(buf)
	}
}
