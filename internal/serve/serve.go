// Package serve is the resilient request-processing layer in front of
// the solver pipeline — what turns the one-shot CLI solvers into a
// long-running service that survives bursts, numerical failures and
// shutdowns:
//
//   - admission control: a bounded FIFO job queue priced by the
//     statespace.LevelSize DP, so a request's state-space cost is
//     charged against a capacity budget before anything is allocated
//     (reject → check.ErrOverloaded → HTTP 429);
//   - retry with exponential backoff + jitter for transient failures
//     (ErrNotConverged, ErrNumeric), riding the dense-fallback ladder
//     underneath;
//   - a per-model-class circuit breaker that trips after repeated
//     ErrSingular/ErrNumeric failures and short-circuits to the
//     degradation path, with half-open probes to recover;
//   - a graceful-degradation ladder — exact transient solve →
//     incremental sweep over a cached factored solver → product-form
//     steady-state approximation → operational-analysis bounds — with
//     every response carrying an explicit fidelity tag;
//   - a singleflight-deduplicated LRU result cache keyed by the
//     canonicalized model; and
//   - graceful drain: stop admitting, cancel queued work (typed
//     check.ErrCanceled), finish in-flight solves within a deadline.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"finwl/internal/batch"
	"finwl/internal/bounds"
	"finwl/internal/check"
	"finwl/internal/core"
	"finwl/internal/network"
	"finwl/internal/obs"
	"finwl/internal/productform"
	"finwl/internal/statespace"
)

// ErrDraining marks rejections issued while the server is shutting
// down; it additionally matches check.ErrOverloaded and maps to HTTP
// 503 (rather than 429) so clients know not to retry this instance.
var ErrDraining = errors.New("server draining")

func errDraining() error {
	return fmt.Errorf("%w: %w", ErrDraining, check.ErrOverloaded)
}

// ErrUnavailable marks a fleet-router failure to place a request on
// any replica: every candidate was down, partitioned, or refused the
// work. It additionally matches check.ErrOverloaded (retrying later
// can help) and maps to HTTP 503 so clients can tell it from their
// own model being rejected.
var ErrUnavailable = errors.New("no replica available")

// ErrJobUnknown marks a GET /jobs/{id} for an ID this server has never
// seen; it maps to HTTP 404 (code "not_found").
var ErrJobUnknown = errors.New("unknown job")

// ErrJobGone marks a GET /jobs/{id} for an ID that was once valid but
// whose record has since expired or been evicted — a distinction only
// a journal-backed server can make. It maps to HTTP 410 (code "gone"):
// re-polling cannot help, but re-submitting with the same idempotency
// key safely re-runs the work.
var ErrJobGone = errors.New("job expired")

func jobUnknown(id string) error {
	return fmt.Errorf("serve: unknown or expired job %q: %w", id, ErrJobUnknown)
}

func jobGone(id string) error {
	return fmt.Errorf("serve: job %q expired; results no longer retained: %w", id, ErrJobGone)
}

// Unavailable wraps cause (the last per-replica failure, may be nil)
// into an ErrUnavailable-matching error.
func Unavailable(cause error) error {
	if cause == nil {
		return fmt.Errorf("%w: %w", ErrUnavailable, check.ErrOverloaded)
	}
	return fmt.Errorf("%w: %w: last error: %w", ErrUnavailable, check.ErrOverloaded, cause)
}

// Config tunes the serving layer. Zero values take the defaults
// below; negative cache sizes disable the cache.
type Config struct {
	Budget           int64         // admission budget, state-space units (default 1<<27)
	MaxQueue         int           // max queued (waiting) requests (default 64)
	CacheSize        int           // result-cache entries (default 512, <0 disables)
	SolverCacheSize  int           // factored-solver cache entries (default 4, <0 disables)
	BreakerThreshold int           // consecutive failures to trip (default 5)
	BreakerCooldown  time.Duration // open → half-open delay (default 5s)
	ClassCacheSize   int           // per-model-class breaker/estimator entries (default 256; <1 takes the default)
	Retries          int           // extra attempts for transient failures (default 2, <0 disables)
	RetryBase        time.Duration // first backoff (default 50ms)
	MaxTimeout       time.Duration // cap and default for per-request deadlines (default 60s)
	StreamMaxStates  int64         // /stream augmented-state cap (default stream.DefaultMaxStates)

	// Batch and async-job tuning.
	MaxBatchJobs int           // max jobs in one /batch or /jobs submission (default 256)
	JobStoreSize int           // async job records held at once (default 64)
	JobTTL       time.Duration // retention of finished async results (default 10m)
	AsyncWorkers int           // concurrent async batch runs (default 4)

	// Durability. A non-empty JournalDir enables the async-jobs
	// journal: every /jobs transition is appended to
	// JournalDir/jobs.jsonl and replayed at boot — queued and
	// running-at-crash batches re-enqueue (running ones restart from
	// their last checkpointed group), finished results within JobTTL
	// stay fetchable, and expired-but-once-valid IDs answer 410 Gone.
	// Empty (the default) keeps the purely in-memory PR-5 behavior.
	JournalDir    string
	Fsync         string             // journal fsync policy: always|interval|never (default interval)
	FsyncInterval time.Duration      // interval-policy sync period (default 100ms)
	JournalHooks  batch.JournalHooks // fault-injection hooks (chaos, tests)
	// ReplicaID prefixes async job IDs ("replica/uuid") so a fleet
	// router can route GET /jobs/{id} back by prefix alone. Empty with
	// a journal: a generated ID is persisted in JournalDir/replica-id
	// so the prefix survives restarts. Empty without a journal: IDs
	// stay bare (the PR-5 wire shape).
	ReplicaID string
	// IdemWindow bounds the Idempotency-Key dedup LRU for /jobs and
	// /batch (default 256; negative disables).
	IdemWindow int

	// Cold-start cost model for the degradation ladder; the per-class
	// EWMA estimator refines these from observed solves.
	ExactNsPerUnit float64       // exact-tier ns per state-space unit (default 50)
	CheckpointFrac float64       // checkpoint cost as a fraction of exact (default 0.125)
	SteadyEstimate time.Duration // steady-tier cost guess (default 2ms)

	Seed int64            // jitter seed (default: wall clock)
	Now  func() time.Time // test hook for breaker clocks

	// Logger receives one structured line per HTTP request (request
	// ID, method, path, status, elapsed). nil disables request logging.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	def := func(v *int64, d int64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Budget, 1<<27)
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 512
	}
	if c.SolverCacheSize == 0 {
		c.SolverCacheSize = 4
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.ClassCacheSize < 1 {
		// Unlike the result caches this one cannot be disabled: an
		// unretained breaker would never accumulate a failure streak.
		c.ClassCacheSize = 256
	}
	if c.Retries == 0 {
		c.Retries = 2
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase == 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBatchJobs == 0 {
		c.MaxBatchJobs = 256
	}
	if c.JobStoreSize == 0 {
		c.JobStoreSize = 64
	}
	if c.JobTTL == 0 {
		c.JobTTL = 10 * time.Minute
	}
	if c.AsyncWorkers < 1 {
		c.AsyncWorkers = 4
	}
	if c.IdemWindow == 0 {
		c.IdemWindow = 256
	}
	if c.ExactNsPerUnit == 0 {
		c.ExactNsPerUnit = 50
	}
	if c.CheckpointFrac == 0 {
		c.CheckpointFrac = 0.125
	}
	if c.SteadyEstimate == 0 {
		c.SteadyEstimate = 2 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Response is the client-visible result of one solve.
type Response struct {
	Fidelity Fidelity `json:"fidelity"`
	K        int      `json:"k"`
	N        int      `json:"n"`

	// TotalTime is E(T), the mean time to complete the workload —
	// exact for the exact/checkpoint tiers, approximate for steady,
	// and the bracket midpoint for bounds.
	TotalTime float64 `json:"total_time"`
	// Bounds-tier envelope (zero otherwise).
	TotalTimeLower  float64 `json:"total_time_lower,omitempty"`
	TotalTimeUpper  float64 `json:"total_time_upper,omitempty"`
	ThroughputLower float64 `json:"x_lower,omitempty"`
	ThroughputUpper float64 `json:"x_upper,omitempty"`

	Epochs       int     `json:"epochs,omitempty"`        // exact tiers: epochs computed (= N)
	Price        int64   `json:"price"`                   // admission cost charged
	Breaker      string  `json:"breaker,omitempty"`       // model-class breaker state
	DegradedFrom string  `json:"degraded_from,omitempty"` // why fidelity < exact
	RoutedVia    string  `json:"routed_via,omitempty"`    // fleet router: which replica answered, and why
	Cached       bool    `json:"cached,omitempty"`
	Deduplicated bool    `json:"deduplicated,omitempty"`
	ElapsedMS    float64 `json:"elapsed_ms"`

	// Timings breaks the request's wall time into its pipeline stages;
	// EncodeMS is filled by the HTTP handler just before the final
	// serialization. PR-3 clients that ignore unknown fields are
	// unaffected.
	Timings *Timings `json:"timings,omitempty"`
}

// Timings is the per-response stage breakdown.
type Timings struct {
	QueueMS  float64 `json:"queue_ms"`  // admission-queue wait
	SolveMS  float64 `json:"solve_ms"`  // ladder time after admission
	EncodeMS float64 `json:"encode_ms"` // response JSON serialization
}

// clone copies a Response deeply enough that mutating the copy's
// flags or timings cannot race with other holders of the original
// (the result cache, concurrent dedup followers).
func (r *Response) clone() *Response {
	cp := *r
	if r.Timings != nil {
		t := *r.Timings
		cp.Timings = &t
	}
	return &cp
}

// Degraded reports whether the response came from an approximation
// tier rather than an exact one.
func (r *Response) Degraded() bool {
	return r.Fidelity != FidelityExact && r.Fidelity != FidelityCheckpoint
}

// DegradedError accompanies a usable degraded Response; it matches
// check.ErrDegraded so callers can branch with errors.Is while still
// consuming the approximation.
type DegradedError struct {
	Fidelity Fidelity
	Reason   string
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("served %s approximation (%s)", e.Fidelity, e.Reason)
}

func (e *DegradedError) Unwrap() error { return check.ErrDegraded }

// Stats are monotonic service counters, exposed at /stats.
type Stats struct {
	Requests     int64 `json:"requests"`
	CacheHits    int64 `json:"cache_hits"`
	Deduplicated int64 `json:"deduplicated"`
	Rejected     int64 `json:"rejected"` // admission rejections (429/503)
	Invalid      int64 `json:"invalid"`  // model rejections (400)
	Canceled     int64 `json:"canceled"` // 504s
	Retries      int64 `json:"retries"`
	Degraded     int64 `json:"degraded"` // responses with fidelity below exact tiers
	Failures     int64 `json:"failures"` // ladder exhausted (503)
	Exact        int64 `json:"exact"`
	Checkpoint   int64 `json:"checkpoint"`
	Steady       int64 `json:"steady_state"`
	Bounds       int64 `json:"bounds"`

	// Batch scheduler counters (additive to the PR-3 shape).
	BatchJobs       int64 `json:"batch_jobs"`
	BatchGroups     int64 `json:"batch_groups"`
	BatchChainReuse int64 `json:"batch_chain_reuse"`
}

// Server is the resilient solver service. Create with New; it is safe
// for concurrent use.
type Server struct {
	cfg   Config
	adm   *admission
	cache *lru[*Response]
	// reqKeys maps a request's wire identity (deadline stripped) to its
	// result-cache key, so repeat requests skip network construction
	// and canonicalization on the hit path.
	reqKeys *lru[string]
	solvers *lru[*core.Solver]
	flight  *flightGroup[*Response]
	est     *estimator
	rand    *lockedRand

	// breakers is LRU-bounded (ClassCacheSize): the class key is
	// client-controlled, so an unbounded map would let a diverse
	// workload leak memory. An evicted class simply starts over closed.
	breakers *lru[*Breaker]

	// Batch surface: the shared-chain scheduler, a singleflight around
	// fresh chain construction (so concurrent groups over one network
	// build it once), and the async job store plus its worker gate.
	sched        *batch.Scheduler
	solverFlight *flightGroup[*core.Solver]
	jobs         *batch.Store[BatchItem]
	asyncSem     chan struct{}
	asyncWG      sync.WaitGroup

	// Durability and idempotency: the append-only journal (nil when
	// JournalDir is empty), this replica's job-ID prefix, and the
	// bounded Idempotency-Key windows — idemJobs maps a key to its job
	// ID under idemMu (submits must be read-modify-write atomic),
	// idemBatch caches a keyed /batch's items with idemFlight
	// collapsing concurrent redeliveries of the same key.
	journal    *batch.Journal
	replicaID  string
	idemMu     sync.Mutex
	idemJobs   *lru[string]
	idemBatch  *lru[[]BatchItem]
	idemFlight *flightGroup[[]BatchItem]

	draining   atomic.Bool
	drainCh    chan struct{} // closed when Drain starts; parks no new async work
	drainOnce  sync.Once
	workCtx    context.Context
	workCancel context.CancelFunc

	reg *obs.Registry
	m   *serveMetrics
}

// New builds a Server from cfg (zero value = all defaults). With a
// JournalDir configured it additionally recovers journaled async jobs;
// a journal that cannot be opened or replayed (including typed
// check.ErrJournalCorrupt) is logged and the server runs without
// durability — use NewRecovered when that must be a hard failure.
func New(cfg Config) *Server {
	s, err := NewRecovered(cfg)
	if err != nil {
		// Availability-first fallback: serve from memory only. The
		// journal error was already logged by NewRecovered's caller
		// contract below; strip the journal config and rebuild.
		if cfg.Logger != nil {
			cfg.Logger.Error("journal disabled: open/replay failed", "dir", cfg.JournalDir, "error", err)
		}
		bare := cfg
		bare.JournalDir = ""
		s, _ = NewRecovered(bare)
	}
	return s
}

// NewRecovered is New with journal failures surfaced: a JournalDir
// that cannot be opened, or whose contents fail the integrity check
// (typed check.ErrJournalCorrupt), returns the error instead of a
// server. With an empty JournalDir it never fails.
func NewRecovered(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	workCtx, workCancel := context.WithCancel(context.Background())
	reg := obs.NewRegistry()
	s := &Server{
		cfg:          cfg,
		adm:          newAdmission(cfg.Budget, cfg.MaxQueue),
		cache:        newLRU[*Response](cfg.CacheSize),
		reqKeys:      newLRU[string](cfg.CacheSize),
		solvers:      newLRU[*core.Solver](cfg.SolverCacheSize),
		flight:       newFlightGroup[*Response](),
		est:          newEstimator(cfg.ExactNsPerUnit, cfg.CheckpointFrac, float64(cfg.SteadyEstimate), cfg.ClassCacheSize),
		rand:         newLockedRand(cfg.Seed),
		breakers:     newLRU[*Breaker](cfg.ClassCacheSize),
		solverFlight: newFlightGroup[*core.Solver](),
		jobs:         batch.NewStore[BatchItem](cfg.JobStoreSize, cfg.JobTTL, cfg.Now),
		asyncSem:     make(chan struct{}, cfg.AsyncWorkers),
		drainCh:      make(chan struct{}),
		workCtx:      workCtx,
		workCancel:   workCancel,
		reg:          reg,
		m:            newServeMetrics(reg),

		replicaID:  cfg.ReplicaID,
		idemJobs:   newLRU[string](cfg.IdemWindow),
		idemBatch:  newLRU[[]BatchItem](cfg.IdemWindow),
		idemFlight: newFlightGroup[[]BatchItem](),
	}
	s.sched = batch.New(batch.Hooks{
		Acquire: func(done <-chan struct{}, price int64) error {
			err := s.adm.acquire(done, price)
			if err != nil && errors.Is(err, check.ErrOverloaded) {
				s.m.rejected.Inc()
			}
			return err
		},
		Release:   s.adm.release,
		SolverFor: s.solverFor,
		OnGroupDone: func(jobs int, reused bool, err error) {
			s.m.batchGroups.Inc()
			s.m.batchGroupJobs.Observe(int64(jobs))
			// Chain-reuse accounting: a cached (or concurrently built)
			// solver means no member of the group triggered a fresh
			// chain; a fresh build is shared by everyone but the builder.
			switch {
			case reused:
				s.m.batchChainReuse.Add(int64(jobs))
			case err == nil:
				s.m.batchChainReuse.Add(int64(jobs - 1))
			}
		},
	})
	registerGauges(reg, s)
	if cfg.JournalDir != "" {
		if err := s.openJournal(cfg); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// solverFor resolves the factored solver for solverKey, building it at
// most once across concurrent callers: the solver cache answers
// repeats, and the singleflight collapses simultaneous first builds of
// the same chain (two batch groups, or a batch racing /solve). The
// bool reports reuse — the caller did not pay for a chain
// construction.
func (s *Server) solverFor(ctx context.Context, solverKey string, net *network.Network, k int) (*core.Solver, bool, error) {
	if solver, ok := s.solvers.get(solverKey); ok {
		return solver, true, nil
	}
	solver, err, shared, abandoned := s.solverFlight.do(ctx.Done(), solverKey, func() (*core.Solver, error) {
		sv, err := core.NewSolverCtx(ctx, net, k)
		if err != nil {
			return nil, err
		}
		s.solvers.add(solverKey, sv)
		return sv, nil
	})
	if abandoned {
		return nil, false, check.Canceled(ctx)
	}
	return solver, shared, err
}

// Metrics returns the server's metric registry, for embedding into a
// combined /metrics page (finwld concatenates it with obs.Default).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// classKey identifies a model class for the circuit breakers and the
// cost estimator: the station-shape signature plus the population.
func classKey(space *statespace.Space, k int) string {
	var b strings.Builder
	for i := 0; i < space.Stations(); i++ {
		sh := space.Shape(i)
		fmt.Fprintf(&b, "%s:%d:%d|", sh.Kind, sh.Phases, sh.Servers)
	}
	fmt.Fprintf(&b, "K=%d", k)
	return b.String()
}

// requestIdentity is the canonical wire form of a request with its
// deadline stripped — a deadline never changes which result is
// correct, only how long the caller waits for it. It returns "" when
// the request cannot marshal (never for requests the API can express),
// which simply disables the fast path for that call.
func requestIdentity(req *Request) string {
	r := *req
	r.TimeoutMS = 0
	b, err := json.Marshal(&r)
	if err != nil {
		return ""
	}
	return string(b)
}

func (s *Server) breakerFor(class string) *Breaker {
	return s.breakers.getOrCreate(class, func() *Breaker {
		return NewBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown, s.cfg.Now, s.m.breakerTransition)
	})
}

// Solve runs one request through the full resilience pipeline. On a
// degraded result both return values are non-nil: a usable Response
// plus a *DegradedError matching check.ErrDegraded. Every other error
// matches a check sentinel.
func (s *Server) Solve(ctx context.Context, req *Request) (*Response, error) {
	s.m.requests.Inc()
	if s.draining.Load() {
		s.m.rejected.Inc()
		return nil, errDraining()
	}
	// Request-identity fast path: a repeat of a request already seen
	// maps straight to its result-cache key, skipping network
	// construction and canonicalization entirely. The mapping is
	// populated only after a successful BuildNetwork, so it can never
	// vouch for an invalid request.
	rid := requestIdentity(req)
	if rid != "" {
		if key, ok := s.reqKeys.get(rid); ok {
			if cached, ok := s.cache.get(key); ok {
				s.m.cacheHits.Inc()
				cp := cached.clone()
				cp.Cached = true
				cp.Timings = &Timings{} // a hit does no queueing or solving
				return cp, nil
			}
		}
	}
	net, err := req.BuildNetwork()
	if err != nil {
		s.m.invalid.Inc()
		return nil, err
	}

	timeout := s.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	// A drain deadline cuts in-flight work by cancelling every
	// request's context.
	stop := context.AfterFunc(s.workCtx, cancel)
	defer stop()

	netKey := networkKey(net)
	key := fmt.Sprintf("%s|k=%d|n=%d", netKey, req.K, req.N)
	if rid != "" {
		s.reqKeys.add(rid, key)
	}
	if cached, ok := s.cache.get(key); ok {
		s.m.cacheHits.Inc()
		cp := cached.clone()
		cp.Cached = true
		cp.Timings = &Timings{} // a hit does no queueing or solving
		return cp, nil
	}
	s.m.cacheMisses.Inc()

	solverKey := fmt.Sprintf("%s|K=%d", netKey, req.K) // == ShardKey(net, req.K)
	resp, err, shared, abandoned := s.flight.do(ctx.Done(), key, func() (*Response, error) {
		return s.process(ctx, net, req.K, req.N, key, solverKey)
	})
	if abandoned {
		s.m.canceled.Inc()
		return nil, check.Canceled(ctx)
	}
	if shared {
		s.m.deduped.Inc()
		if resp != nil {
			cp := resp.clone()
			cp.Deduplicated = true
			resp = cp
		}
	}
	if err != nil && errors.Is(err, check.ErrCanceled) {
		s.m.canceled.Inc()
	}
	return resp, err
}

// process is the admission → breaker → ladder core of one solve; it
// runs once per singleflight key.
func (s *Server) process(ctx context.Context, net *network.Network, k, n int, key, solverKey string) (*Response, error) {
	space := net.Space()
	price := chainPrice(space, k)
	queueSpan := s.m.queueWait.Start()
	if err := s.adm.acquire(ctx.Done(), price); err != nil {
		queueSpan.End()
		if errors.Is(err, check.ErrOverloaded) {
			s.m.rejected.Inc()
		}
		return nil, err
	}
	queueWait := queueSpan.End()
	defer s.adm.release(price)

	class := classKey(space, k)
	br := s.breakerFor(class)
	allowed, probe := br.Allow()
	// A half-open probe token must be released on every exit path.
	// Cancellation, a non-tripping exact failure, or a tier choice that
	// never attempts an exact rung report neither OnSuccess nor
	// onFailure; without the abort the breaker would stay probing
	// forever and short-circuit the class until restart.
	probeSettled := false
	if probe {
		defer func() {
			if !probeSettled {
				br.AbortProbe()
			}
		}()
	}
	est := s.est.estimate(class, price)
	remaining := noDeadline
	if dl, ok := ctx.Deadline(); ok {
		remaining = time.Until(dl)
		if remaining > 0 {
			// Only bounded requests are observable here: noDeadline
			// would park every unbounded request in the +Inf bucket and
			// drown the signal (how close requests run to their budget).
			s.m.deadlineRemaining.ObserveDuration(remaining)
		}
	}
	_, haveSolver := s.solvers.get(solverKey)
	tier := selectTier(!allowed, haveSolver, remaining, est)

	var reasons []string
	if tier == FidelitySteady || tier == FidelityBounds {
		if !allowed {
			reasons = append(reasons, "breaker "+br.State().String())
		} else {
			reasons = append(reasons, fmt.Sprintf("deadline %v below exact estimate %v", remaining.Round(time.Millisecond), est.exact.Round(time.Millisecond)))
		}
	}

	for rung := tier; ; rung = rungBelow(rung) {
		start := time.Now()
		var resp *Response
		err := withRetry(ctx, s.cfg.Retries, s.cfg.RetryBase, s.rand, func() { s.m.retries.Inc() }, func() error {
			var e error
			resp, e = s.runTier(ctx, rung, net, k, n, solverKey)
			return e
		})
		if err == nil {
			solveTime := time.Since(start)
			s.est.observe(class, resp.Fidelity, price, solveTime)
			s.m.tierCounter(resp.Fidelity).Inc()
			s.m.solveTime.ObserveDuration(solveTime)
			resp.K, resp.N, resp.Price = k, n, price
			resp.ElapsedMS = float64(solveTime.Microseconds()) / 1000
			resp.Timings = &Timings{
				QueueMS: float64(queueWait.Microseconds()) / 1000,
				SolveMS: float64(solveTime.Microseconds()) / 1000,
			}
			if !resp.Degraded() {
				if probe || allowed {
					br.OnSuccess()
					probeSettled = true
				}
				resp.Breaker = br.State().String()
				s.cache.add(key, resp)
				return resp, nil
			}
			resp.Breaker = br.State().String()
			resp.DegradedFrom = strings.Join(reasons, "; ")
			s.m.degraded.Inc()
			return resp, &DegradedError{Fidelity: resp.Fidelity, Reason: resp.DegradedFrom}
		}
		if errors.Is(err, check.ErrCanceled) {
			return nil, err
		}
		if (rung == FidelityExact || rung == FidelityCheckpoint) &&
			(errors.Is(err, check.ErrSingular) || errors.Is(err, check.ErrNumeric)) {
			br.OnFailure()
			probeSettled = true
		}
		if rung == FidelityBounds {
			// Ladder exhausted: nothing cheaper to fall to.
			s.m.failures.Inc()
			return nil, err
		}
		reasons = append(reasons, fmt.Sprintf("%s tier failed: %v", rung, err))
	}
}

// runTier executes one ladder rung. The returned Response carries the
// fidelity actually delivered (a checkpoint request whose cached
// solver was evicted builds a fresh one and reports exact).
func (s *Server) runTier(ctx context.Context, rung Fidelity, net *network.Network, k, n int, solverKey string) (*Response, error) {
	switch rung {
	case FidelityExact, FidelityCheckpoint:
		solver, reused, err := s.solverFor(ctx, solverKey, net, k)
		if err != nil {
			return nil, err
		}
		if !reused {
			rung = FidelityExact
		}
		var res *core.Result
		if rung == FidelityCheckpoint {
			// The incremental sweep path: one feeding pass over the
			// already-factored chain with a drain checkpoint at n.
			rs, err := solver.SolveSweepCtx(ctx, []int{n})
			if err != nil {
				return nil, err
			}
			res = rs[0]
		} else {
			var err error
			res, err = solver.SolveCtx(ctx, n)
			if err != nil {
				return nil, err
			}
		}
		return &Response{Fidelity: rung, TotalTime: res.TotalTime, Epochs: len(res.Epochs)}, nil

	case FidelitySteady:
		return steadyApprox(net, k, n)

	default: // FidelityBounds
		return boundsEnvelope(net, n)
	}
}

// steadyApprox is the product-form steady-state approximation of
// E(T): drain epochs costed at the product-form interdeparture time
// of each population 1..min(n,K), and the n−K feeding epochs at the
// level-K rate — the paper's steady-state stand-in for the transient.
func steadyApprox(net *network.Network, k, n int) (*Response, error) {
	m, err := productform.FromNetwork(net)
	if err != nil {
		return nil, err
	}
	if err := typedOr(m.Validate(), check.ErrInvalidModel); err != nil {
		return nil, err
	}
	var total float64
	kTop := min(n, k)
	var xK float64
	for kk := 1; kk <= kTop; kk++ {
		x := m.ThroughputBuzen(kk)
		if !(x > 0) {
			return nil, fmt.Errorf("serve: product-form throughput X(%d) = %v: %w", kk, x, check.ErrNumeric)
		}
		total += 1 / x
		xK = x
	}
	if n > k {
		total += float64(n-k) / xK
	}
	if err := check.Finite("serve: steady-state total time", total); err != nil {
		return nil, fmt.Errorf("%v: %w", err, check.ErrNumeric)
	}
	return &Response{Fidelity: FidelitySteady, TotalTime: total}, nil
}

// boundsEnvelope is the last rung: the operational-analysis bounds
// bracket, O(stations) and deadline-proof.
func boundsEnvelope(net *network.Network, n int) (*Response, error) {
	m, err := productform.FromNetwork(net)
	if err != nil {
		return nil, err
	}
	b, err := bounds.FromModel(m, n)
	if err != nil {
		return nil, typedOr(err, check.ErrInvalidModel)
	}
	if !(b.XUpperBJB > 0) || !(b.XLowerBJB > 0) {
		return nil, fmt.Errorf("serve: degenerate throughput bounds [%v, %v]: %w", b.XLowerBJB, b.XUpperBJB, check.ErrNumeric)
	}
	lower := float64(n) / b.XUpperBJB
	upper := float64(n) / b.XLowerBJB
	return &Response{
		Fidelity:        FidelityBounds,
		TotalTime:       (lower + upper) / 2,
		TotalTimeLower:  lower,
		TotalTimeUpper:  upper,
		ThroughputLower: b.XLowerBJB,
		ThroughputUpper: b.XUpperBJB,
	}, nil
}

// typedOr passes through nil and already-typed errors, and wraps
// anything else with the given sentinel so the serve boundary never
// leaks an untyped failure.
func typedOr(err, sentinel error) error {
	if err == nil {
		return nil
	}
	for _, s := range []error{
		check.ErrInvalidModel, check.ErrSingular, check.ErrNotConverged,
		check.ErrNumeric, check.ErrCanceled, check.ErrOverloaded, check.ErrDegraded,
	} {
		if errors.Is(err, s) {
			return err
		}
	}
	return fmt.Errorf("%v: %w", err, sentinel)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain gracefully shuts the service down: stop admitting (new
// requests fail 503-draining), cancel all queued work (typed
// check.ErrCanceled), and wait for in-flight solves. If ctx expires
// first, in-flight work is force-canceled (the solvers poll their
// contexts and unwind promptly) and Drain reports it; either way,
// when Drain returns no request is still running.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.adm.close()
	done := make(chan struct{})
	go func() {
		s.adm.wait()
		// Async batches not yet holding admission: queued ones fail
		// typed off drainCh, running ones unwind through their (now
		// rejecting) acquires.
		s.asyncWG.Wait()
		close(done)
	}()
	finish := func() {
		// Belt and braces: any record still queued after the workers
		// unwound reports canceled, and finished results stay fetchable.
		s.jobs.DrainQueued(errDrainCanceled())
	}
	select {
	case <-done:
		finish()
		s.closeJournal()
		return nil
	case <-ctx.Done():
		s.workCancel()
		<-done
		finish()
		s.closeJournal()
		return fmt.Errorf("serve: drain deadline expired, in-flight work canceled: %w", check.ErrCanceled)
	}
}

// closeJournal syncs and closes the journal at the end of a drain; a
// journal-less server no-ops.
func (s *Server) closeJournal() {
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && s.cfg.Logger != nil {
			s.cfg.Logger.Warn("journal close failed", "error", err)
		}
	}
}

// Snapshot returns the current counters, read from the same
// registry-backed metrics /metrics scrapes — the JSON shape is
// unchanged from PR 3 so /stats consumers keep working.
func (s *Server) Snapshot() Stats {
	m := s.m
	return Stats{
		Requests:     m.requests.Value(),
		CacheHits:    m.cacheHits.Value(),
		Deduplicated: m.deduped.Value(),
		Rejected:     m.rejected.Value(),
		Invalid:      m.invalid.Value(),
		Canceled:     m.canceled.Value(),
		Retries:      m.retries.Value(),
		Degraded:     m.degraded.Value(),
		Failures:     m.failures.Value(),
		Exact:        m.exact.Value(),
		Checkpoint:   m.checkpoint.Value(),
		Steady:       m.steady.Value(),
		Bounds:       m.bounds.Value(),

		BatchJobs:       m.batchJobs.Value(),
		BatchGroups:     m.batchGroups.Value(),
		BatchChainReuse: m.batchChainReuse.Value(),
	}
}

// StatusOf maps an error from Solve to its HTTP status code. The
// serve contract: 400 for model problems, 429 for overload, 503 for
// draining, fleet unavailability and numerical failures that survived
// the whole ladder, 504 for deadlines/cancellation, 200 otherwise
// (including degraded results).
func StatusOf(err error) int {
	switch {
	case err == nil, errors.Is(err, check.ErrDegraded):
		return http.StatusOK
	case errors.Is(err, ErrDraining), errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrJobUnknown):
		return http.StatusNotFound
	case errors.Is(err, ErrJobGone):
		return http.StatusGone
	case errors.Is(err, check.ErrInvalidModel):
		return http.StatusBadRequest
	case errors.Is(err, check.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, check.ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, check.ErrSingular), errors.Is(err, check.ErrNumeric),
		errors.Is(err, check.ErrNotConverged):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// CodeOf maps an error to the machine-readable code carried in error
// bodies.
func CodeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrUnavailable):
		return "unavailable"
	case errors.Is(err, ErrJobUnknown):
		return "not_found"
	case errors.Is(err, ErrJobGone):
		return "gone"
	case errors.Is(err, check.ErrInvalidModel):
		return "invalid_model"
	case errors.Is(err, check.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, check.ErrCanceled):
		return "canceled"
	case errors.Is(err, check.ErrSingular):
		return "singular"
	case errors.Is(err, check.ErrNumeric):
		return "numeric"
	case errors.Is(err, check.ErrNotConverged):
		return "not_converged"
	case errors.Is(err, check.ErrDegraded):
		return "degraded"
	default:
		return "internal"
	}
}

// ErrorBody is the JSON error payload.
type ErrorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// Handler returns the standard HTTP surface for this server — the
// reusable Front wired to the embedded solve engine and its async job
// store, exposing this server's registry concatenated with the
// process-wide solver-stage metrics on /metrics.
func (s *Server) Handler() http.Handler {
	return NewFront(s, s, FrontConfig{
		Logger:       s.cfg.Logger,
		MaxBatchJobs: s.cfg.MaxBatchJobs,
		Registries:   []*obs.Registry{s.reg, obs.Default},
	}).Handler()
}

// noteRejected lets the Front charge protocol-level rejections (batch
// over the job limit) to this server's admission-rejection counter.
func (s *Server) noteRejected() { s.m.rejected.Inc() }

// statsBody is the /stats payload.
type statsBody struct {
	Stats      Stats             `json:"stats"`
	ReplicaID  string            `json:"replica_id,omitempty"` // job-ID prefix; routers scrape it
	BudgetUsed int64             `json:"budget_used"`
	Budget     int64             `json:"budget"`
	Queued     int               `json:"queued"`
	CacheLen   int               `json:"cache_len"`
	SolverLen  int               `json:"solver_cache_len"`
	Breakers   map[string]string `json:"breakers"`
	Draining   bool              `json:"draining"`
	// Heap cost of the most recent chain construction in this process
	// (the finwl_chain_build_allocs gauges) — the regression tripwire
	// for the structured sparse build path.
	ChainBuildAllocs int64 `json:"chain_build_allocs"`
	ChainBuildBytes  int64 `json:"chain_build_bytes"`
}

// StatsPayload is the GET /stats response body (Service interface).
func (s *Server) StatsPayload() any {
	used, budget, queued := s.adm.snapshot()
	buildObjects, buildBytes := network.ChainBuildStats()
	body := statsBody{
		Stats:            s.Snapshot(),
		ReplicaID:        s.replicaID,
		BudgetUsed:       used,
		Budget:           budget,
		Queued:           queued,
		CacheLen:         s.cache.len(),
		SolverLen:        s.solvers.len(),
		Breakers:         make(map[string]string),
		Draining:         s.draining.Load(),
		ChainBuildAllocs: buildObjects,
		ChainBuildBytes:  buildBytes,
	}
	s.breakers.each(func(class string, br *Breaker) {
		body.Breakers[class] = br.State().String()
	})
	return body
}
