package serve

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

const (
	// BreakerClosed: requests flow to the exact path.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the exact path is short-circuited to the
	// degradation ladder until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request may try the exact path; its
	// outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is the three-state circuit breaker guarding a fallible
// path: the exact solve path of one model class here, and the
// passive-health view of one replica in internal/fleet. It trips to
// open after `threshold` consecutive failures reported via OnFailure;
// after `cooldown` it admits a single half-open probe whose success
// closes it and whose failure re-opens it.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	// onTransition (optional) observes every state change, called with
	// the state entered while the breaker lock is held — keep it to an
	// atomic bump (the serve metrics hook is exactly that).
	onTransition func(to BreakerState)

	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a closed breaker. now defaults to time.Time's
// clock; onTransition (optional) observes each state change.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time, onTransition func(to BreakerState)) *Breaker {
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now, onTransition: onTransition}
}

// setState records a state change, notifying the transition hook only
// on an actual change (an open→open cooldown restart is not a
// transition).
func (b *Breaker) setState(to BreakerState) {
	if b.state == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// Allow reports whether this request may take the guarded path. probe
// is true when the request is the single half-open probe; the caller
// must settle its outcome via OnSuccess/OnFailure/AbortProbe.
func (b *Breaker) Allow() (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, false
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false, false
		}
		b.setState(BreakerHalfOpen)
		b.probing = false
		fallthrough
	default: // BreakerHalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// AbortProbe releases the half-open probe token without recording an
// outcome — the probe request was canceled, failed with a non-tripping
// error, or never reached an exact rung at all (tight deadline). The
// breaker stays half-open so the next request can claim a fresh probe;
// without this release a lost probe would pin probing=true forever and
// permanently short-circuit the class.
func (b *Breaker) AbortProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// OnSuccess records a successful exact solve: it closes a half-open
// breaker and clears the failure streak.
func (b *Breaker) OnSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.setState(BreakerClosed)
	b.fails = 0
	b.probing = false
}

// OnFailure records a tripping failure: a half-open probe failure
// re-opens immediately; in closed state the streak counts up to the
// threshold.
func (b *Breaker) OnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	case BreakerOpen:
		// Failures from requests admitted before the trip; stay open
		// and restart the cooldown so a struggling class backs off.
		b.trip()
	}
}

func (b *Breaker) trip() {
	b.setState(BreakerOpen)
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
}

// State returns the externally visible state (resolving an elapsed
// open cooldown to half-open for reporting).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}
