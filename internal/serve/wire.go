package serve

import (
	"fmt"
	"net/http"

	"finwl/internal/check"
)

// ErrorFromWire is the reverse of the StatusOf/CodeOf mapping: it
// reconstructs the typed sentinel from a replica's JSON error body so
// a router (or any HTTP client of finwld) can branch with errors.Is
// instead of matching status codes or message strings. The returned
// error keeps the replica's message and matches exactly the sentinels
// the originating error did — a 503 "draining" round-trips back to
// ErrDraining ∧ check.ErrOverloaded, a 504 "canceled" to
// check.ErrCanceled, and so on (the forward table lives in DESIGN.md
// §9).
//
// Unknown codes fall back on the status class: 400 → ErrInvalidModel,
// 429 → ErrOverloaded, 503 → ErrOverloaded (the replica refused the
// work for a reason this build does not know; retrying elsewhere can
// help), 504 → ErrCanceled. Anything else — including chaos-injected
// or proxy-generated 5xx — stays untyped, which router retry policy
// treats as a replica fault.
func ErrorFromWire(status int, body ErrorBody) error {
	msg := body.Error
	if msg == "" {
		msg = fmt.Sprintf("HTTP %d", status)
	}
	switch body.Code {
	case "invalid_model":
		return fmt.Errorf("%s: %w", msg, check.ErrInvalidModel)
	case "overloaded":
		return fmt.Errorf("%s: %w", msg, check.ErrOverloaded)
	case "draining":
		return fmt.Errorf("%s: %w: %w", msg, ErrDraining, check.ErrOverloaded)
	case "unavailable":
		return fmt.Errorf("%s: %w: %w", msg, ErrUnavailable, check.ErrOverloaded)
	case "canceled":
		return fmt.Errorf("%s: %w", msg, check.ErrCanceled)
	case "singular":
		return fmt.Errorf("%s: %w", msg, check.ErrSingular)
	case "numeric":
		return fmt.Errorf("%s: %w", msg, check.ErrNumeric)
	case "not_converged":
		return fmt.Errorf("%s: %w", msg, check.ErrNotConverged)
	case "degraded":
		return fmt.Errorf("%s: %w", msg, check.ErrDegraded)
	case "not_found":
		return fmt.Errorf("%s: %w", msg, ErrJobUnknown)
	case "gone":
		return fmt.Errorf("%s: %w", msg, ErrJobGone)
	}
	switch status {
	case http.StatusBadRequest:
		return fmt.Errorf("%s: %w", msg, check.ErrInvalidModel)
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return fmt.Errorf("%s: %w", msg, check.ErrOverloaded)
	case http.StatusGatewayTimeout:
		return fmt.Errorf("%s: %w", msg, check.ErrCanceled)
	case http.StatusNotFound:
		return fmt.Errorf("%s: %w", msg, ErrJobUnknown)
	case http.StatusGone:
		return fmt.Errorf("%s: %w", msg, ErrJobGone)
	}
	return fmt.Errorf("serve: replica error: %s (HTTP %d, code %q)", msg, status, body.Code)
}
