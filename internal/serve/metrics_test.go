package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"finwl/internal/check"
	"finwl/internal/obs"
)

// Prometheus text-format line validators — copied from internal/obs's
// prom_test so the HTTP-boundary scrape is checked against the same
// grammar the writer is tested with.
var (
	sampleLine = regexp.MustCompile(
		`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)
	headerLine = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
)

// validateProm fails the test on any malformed exposition line and
// returns the set of sample names seen.
func validateProm(t *testing.T, body string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !headerLine.MatchString(line) {
				t.Fatalf("malformed header line: %q", line)
			}
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		names[name] = true
	}
	return names
}

// TestMetricsScrapeGolden drives the server through every counter
// category — exact solve, cache hit, invalid model, deadline
// degradation, singular ladder exhaustion with a breaker trip — then
// scrapes GET /metrics and checks the exposition is well-formed and
// carries the full metric surface.
func TestMetricsScrapeGolden(t *testing.T) {
	s := New(Config{Seed: 1, BreakerThreshold: 2})
	ctx := context.Background()

	if _, err := s.Solve(ctx, &Request{Arch: "central", K: 3, N: 10}); err != nil {
		t.Fatalf("exact solve: %v", err)
	}
	if _, err := s.Solve(ctx, &Request{Arch: "central", K: 3, N: 10}); err != nil {
		t.Fatalf("cached solve: %v", err)
	}
	if _, err := s.Solve(ctx, &Request{Arch: "central", K: 0, N: 10}); !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("invalid solve: err = %v, want ErrInvalidModel", err)
	}
	if _, err := s.Solve(ctx, &Request{Arch: "central", K: 10, N: 50, TimeoutMS: 1}); !errors.Is(err, check.ErrDegraded) {
		t.Fatalf("degraded solve: err = %v, want ErrDegraded", err)
	}
	for i := 0; i < 2; i++ { // two singular failures trip the class breaker
		if _, err := s.Solve(ctx, &Request{K: 3, N: 5 + i, Network: trappedTwoStation()}); !errors.Is(err, check.ErrSingular) {
			t.Fatalf("trapped solve %d: err = %v, want ErrSingular", i, err)
		}
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	names := validateProm(t, body)

	// The full surface: serve-layer counters/histograms/gauges plus the
	// process-wide solver-stage metrics, one exposition page.
	want := []string{
		// serve counters
		"finwld_requests_total", "finwld_cache_hits_total", "finwld_cache_misses_total",
		"finwld_dedup_total", "finwld_rejected_total", "finwld_invalid_total",
		"finwld_canceled_total", "finwld_retries_total", "finwld_degraded_total",
		"finwld_failures_total", "finwld_tier_total", "finwld_breaker_transitions_total",
		// serve histograms
		"finwld_queue_wait_seconds_bucket", "finwld_queue_wait_seconds_sum", "finwld_queue_wait_seconds_count",
		"finwld_solve_seconds_bucket", "finwld_deadline_remaining_seconds_bucket",
		// batch scheduler families
		"finwld_batch_jobs_total", "finwld_batch_groups_total", "finwld_batch_chain_reuse_total",
		"finwld_batch_group_jobs_bucket", "finwld_batch_seconds_bucket",
		// serve gauges
		"finwld_queue_depth", "finwld_budget_used", "finwld_budget_total",
		"finwld_cache_entries", "finwld_solver_cache_entries", "finwld_draining",
		"finwld_batch_store_records", "finwld_batch_store_active",
		// solver-stage metrics (obs.Default)
		"finwl_solves_total", "finwl_epochs_total", "finwl_lu_factor_total",
		"finwl_lu_factor_seconds_bucket", "finwl_chain_build_seconds_bucket",
		"finwl_statespace_levels_total", "finwl_statespace_level_states_bucket",
	}
	for _, n := range want {
		if !names[n] {
			t.Errorf("exposition missing %s", n)
		}
	}

	// Value spot-checks tied to the request mix above.
	for _, line := range []string{
		`finwld_cache_hits_total 1`,
		`finwld_invalid_total 1`,
		`finwld_degraded_total 1`,
		`finwld_failures_total 2`,
		`finwld_tier_total{tier="exact"} 1`,
		`finwld_breaker_transitions_total{state="open"} 1`,
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("exposition missing sample %q", line)
		}
	}

	distinct := 0
	for n := range names {
		if strings.HasPrefix(n, "finwl") {
			distinct++
		}
	}
	if distinct < 12 {
		t.Fatalf("only %d distinct finwl metrics exposed, want >= 12:\n%s", distinct, body)
	}
}

// TestSnapshotMatchesRegistry: /stats must stay wire-compatible — the
// JSON counters are now read from the registry, so the snapshot and
// the scrape must agree.
func TestSnapshotMatchesRegistry(t *testing.T) {
	s := New(Config{Seed: 1})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := s.Solve(ctx, &Request{Arch: "central", K: 3, N: 10 + i%2}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Snapshot()
	// N=10 solves exact; the repeat is a cache hit; N=11 reuses the
	// factored solver via the checkpoint tier.
	if st.Requests != 3 || st.CacheHits != 1 || st.Exact+st.Checkpoint != 2 {
		t.Fatalf("snapshot = %+v, want requests=3 cache_hits=1 exact+checkpoint=2", st)
	}
	var b strings.Builder
	if err := s.Metrics().WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "finwld_requests_total 3\n") {
		t.Fatalf("registry disagrees with snapshot:\n%s", b.String())
	}
}

// TestTimingsBreakdown: every fresh /solve response carries the
// queue/solve/encode stage breakdown, a cache hit reports zero queue
// and solve time, and the request ID round-trips via X-Request-Id.
func TestTimingsBreakdown(t *testing.T) {
	s := New(Config{Seed: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(reqID string) (*http.Response, map[string]any) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/solve",
			bytes.NewBufferString(`{"arch":"central","k":3,"n":10}`))
		if err != nil {
			t.Fatal(err)
		}
		if reqID != "" {
			req.Header.Set("X-Request-Id", reqID)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp, m
	}

	resp, body := post("probe-42")
	if got := resp.Header.Get("X-Request-Id"); got != "probe-42" {
		t.Errorf("client-supplied request ID not echoed: got %q", got)
	}
	tm, ok := body["timings"].(map[string]any)
	if !ok {
		t.Fatalf("fresh response has no timings object: %v", body)
	}
	for _, k := range []string{"queue_ms", "solve_ms", "encode_ms"} {
		v, ok := tm[k].(float64)
		if !ok || v < 0 {
			t.Errorf("timings[%s] = %v, want a non-negative number", k, tm[k])
		}
	}
	if tm["solve_ms"].(float64) <= 0 {
		t.Errorf("fresh solve_ms = %v, want > 0", tm["solve_ms"])
	}

	resp, body = post("")
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("server did not assign a request ID")
	}
	if body["cached"] != true {
		t.Fatalf("second solve not cached: %v", body)
	}
	tm, ok = body["timings"].(map[string]any)
	if !ok {
		t.Fatalf("cached response has no timings object: %v", body)
	}
	if tm["queue_ms"].(float64) != 0 || tm["solve_ms"].(float64) != 0 {
		t.Errorf("cache hit reports queue/solve work: %v", tm)
	}
}

// TestRequestLogging: with a Logger configured, each request emits one
// structured line carrying the request ID and status.
func TestRequestLogging(t *testing.T) {
	var buf syncBuffer
	s := New(Config{Seed: 1, Logger: newTestLogger(&buf)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/solve",
		bytes.NewBufferString(`{"arch":"central","k":3,"n":10}`))
	req.Header.Set("X-Request-Id", "log-probe")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	line := buf.String()
	for _, want := range []string{`"request_id":"log-probe"`, `"status":200`, `"path":"/solve"`} {
		if !strings.Contains(line, want) {
			t.Errorf("log line missing %s:\n%s", want, line)
		}
	}
}

// syncBuffer is a mutex-guarded buffer: the HTTP server logs from its
// connection goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func newTestLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}
