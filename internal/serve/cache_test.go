package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("b", 2)
	c.get("a") // refresh a; b is now least recent
	c.add("c", 3)
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived eviction, want it dropped")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU[int](-1)
	c.add("a", 1)
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatalf("disabled cache len = %d, want 0", c.len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU[int](2)
	c.add("a", 1)
	c.add("a", 9)
	if v, _ := c.get("a"); v != 9 {
		t.Fatalf("a = %d, want updated value 9", v)
	}
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1", c.len())
	}
}

func TestFlightGroupDeduplicates(t *testing.T) {
	g := newFlightGroup[int]()
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	leaderDone := make(chan struct{})
	var leaderVal int
	var leaderShared bool
	go func() {
		defer close(leaderDone)
		leaderVal, _, leaderShared, _ = g.do(nil, "k", func() (int, error) {
			calls.Add(1)
			close(started)
			<-release
			return 42, nil
		})
	}()
	<-started

	const joiners = 8
	var wg sync.WaitGroup
	var entered atomic.Int64
	shared := make([]bool, joiners)
	vals := make([]int, joiners)
	for i := 0; i < joiners; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Add(1)
			vals[i], _, shared[i], _ = g.do(nil, "k", func() (int, error) {
				calls.Add(1)
				return -1, nil
			})
		}()
	}
	// Release the leader only once every joiner is at (or inside) its
	// do call, so they all join the in-flight computation.
	for entered.Load() < joiners {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	<-leaderDone

	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if leaderVal != 42 || leaderShared {
		t.Fatalf("leader got (%d, shared=%v), want (42, false)", leaderVal, leaderShared)
	}
	for i := 0; i < joiners; i++ {
		if vals[i] != 42 || !shared[i] {
			t.Fatalf("joiner %d got (%d, shared=%v), want (42, true)", i, vals[i], shared[i])
		}
	}
}

func TestFlightGroupAbandon(t *testing.T) {
	g := newFlightGroup[int]()
	release := make(chan struct{})
	started := make(chan struct{})
	go g.do(nil, "k", func() (int, error) {
		close(started)
		<-release
		return 1, errors.New("x")
	})
	<-started

	done := make(chan struct{})
	close(done) // joiner's context already over
	_, _, _, abandoned := g.do(done, "k", func() (int, error) { return 0, nil })
	if !abandoned {
		t.Fatal("joiner with an expired context did not abandon the flight")
	}
	close(release) // leader finishes normally
}
