package serve

import (
	"math"
	"sync"
	"time"
)

// Fidelity tags how a response was computed — the rungs of the
// graceful-degradation ladder, best first.
type Fidelity string

const (
	// FidelityExact: full transient solve (chain construction +
	// per-level factorization + epoch recursion).
	FidelityExact Fidelity = "exact"
	// FidelityCheckpoint: exact numbers via the incremental sweep path
	// over a cached, already-factored solver — no construction cost.
	FidelityCheckpoint Fidelity = "checkpoint"
	// FidelitySteady: the steady-state/product-form approximation —
	// feeding epochs costed at the product-form interdeparture time.
	FidelitySteady Fidelity = "steady-state"
	// FidelityBounds: the operational-analysis bounds envelope, O(M).
	FidelityBounds Fidelity = "bounds"
)

// rungBelow returns the next-cheaper rung.
func rungBelow(f Fidelity) Fidelity {
	switch f {
	case FidelityExact, FidelityCheckpoint:
		return FidelitySteady
	default:
		return FidelityBounds
	}
}

// noDeadline is the "remaining time" of a request without a deadline.
const noDeadline = time.Duration(math.MaxInt64)

// estimates predicts the wall-clock cost of each ladder rung for one
// request.
type estimates struct {
	exact      time.Duration
	checkpoint time.Duration
	steady     time.Duration
}

// selectTier picks the best affordable rung. The ladder:
//
//	exact      — needs a closed (or probing half-open) breaker and
//	             enough deadline for construction + solve;
//	checkpoint — same result, cheaper: preferred whenever a factored
//	             solver is already cached;
//	steady     — product-form approximation when the exact tiers are
//	             unaffordable or the breaker is open;
//	bounds     — the envelope of last resort; always affordable.
//
// It is a pure function so the (deadline × breaker-state) matrix is
// directly table-testable.
func selectTier(breakerOpen, haveSolver bool, remaining time.Duration, est estimates) Fidelity {
	if !breakerOpen {
		if haveSolver && remaining >= est.checkpoint {
			return FidelityCheckpoint
		}
		if remaining >= est.exact {
			return FidelityExact
		}
	}
	if remaining >= est.steady {
		return FidelitySteady
	}
	return FidelityBounds
}

// estimator predicts rung costs per model class from an EWMA of
// observed (duration / state-space price) ratios, seeded with
// conservative defaults so a cold server still degrades sanely under
// tight deadlines. The class table is LRU-bounded — the key is
// client-controlled, and an evicted class just restarts from the
// defaults. mu guards all classEst field access; the lru's own lock
// only orders storage (always acquired under mu, never the reverse).
type estimator struct {
	mu      sync.Mutex
	classes *lru[*classEst]

	defExactNsPerUnit float64
	defCheckpointFrac float64
	defSteadyNs       float64
}

type classEst struct {
	exactNsPerUnit      float64
	checkpointNsPerUnit float64
	steadyNs            float64
}

const ewmaAlpha = 0.3

func newEstimator(exactNsPerUnit, checkpointFrac, steadyNs float64, maxClasses int) *estimator {
	return &estimator{
		classes:           newLRU[*classEst](maxClasses),
		defExactNsPerUnit: exactNsPerUnit,
		defCheckpointFrac: checkpointFrac,
		defSteadyNs:       steadyNs,
	}
}

func (e *estimator) classFor(class string) *classEst {
	return e.classes.getOrCreate(class, func() *classEst {
		return &classEst{
			exactNsPerUnit:      e.defExactNsPerUnit,
			checkpointNsPerUnit: e.defExactNsPerUnit * e.defCheckpointFrac,
			steadyNs:            e.defSteadyNs,
		}
	})
}

// estimate prices the rungs of one request of `price` state-space
// units against the class's learned coefficients.
func (e *estimator) estimate(class string, price int64) estimates {
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.classFor(class)
	p := float64(price)
	return estimates{
		exact:      time.Duration(c.exactNsPerUnit * p),
		checkpoint: time.Duration(c.checkpointNsPerUnit * p),
		steady:     time.Duration(c.steadyNs),
	}
}

// observe feeds a measured rung duration back into the class EWMA.
func (e *estimator) observe(class string, tier Fidelity, price int64, d time.Duration) {
	if price <= 0 || d <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	c := e.classFor(class)
	blend := func(old, sample float64) float64 {
		return (1-ewmaAlpha)*old + ewmaAlpha*sample
	}
	switch tier {
	case FidelityExact:
		c.exactNsPerUnit = blend(c.exactNsPerUnit, float64(d)/float64(price))
	case FidelityCheckpoint:
		c.checkpointNsPerUnit = blend(c.checkpointNsPerUnit, float64(d)/float64(price))
	case FidelitySteady:
		c.steadyNs = blend(c.steadyNs, float64(d))
	}
}
