package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"finwl/internal/check"
)

func TestWithRetryTransientSucceeds(t *testing.T) {
	jit := newLockedRand(1)
	attempts, retries := 0, 0
	err := withRetry(context.Background(), 3, time.Microsecond, jit,
		func() { retries++ },
		func() error {
			attempts++
			if attempts < 3 {
				return fmt.Errorf("wobble: %w", check.ErrNotConverged)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("err = %v, want success on third attempt", err)
	}
	if attempts != 3 || retries != 2 {
		t.Fatalf("attempts = %d, retries = %d, want 3 and 2", attempts, retries)
	}
}

func TestWithRetryNonTransientFailsFast(t *testing.T) {
	attempts := 0
	err := withRetry(context.Background(), 3, time.Microsecond, newLockedRand(1), nil,
		func() error {
			attempts++
			return fmt.Errorf("pivot: %w", check.ErrSingular)
		})
	if !errors.Is(err, check.ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (ErrSingular is final)", attempts)
	}
}

func TestWithRetryExhaustsBudget(t *testing.T) {
	attempts := 0
	err := withRetry(context.Background(), 2, time.Microsecond, newLockedRand(1), nil,
		func() error {
			attempts++
			return fmt.Errorf("wobble: %w", check.ErrNumeric)
		})
	if !errors.Is(err, check.ErrNumeric) {
		t.Fatalf("err = %v, want the last ErrNumeric", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 1 + 2 retries", attempts)
	}
}

// TestWithRetrySkipsSleepItCannotAfford: when the backoff would not
// fit in the remaining deadline, withRetry returns the transient error
// immediately so the degradation ladder gets the leftover time.
func TestWithRetrySkipsSleepItCannotAfford(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	attempts := 0
	start := time.Now()
	err := withRetry(ctx, 5, time.Hour, newLockedRand(1), nil,
		func() error {
			attempts++
			return fmt.Errorf("wobble: %w", check.ErrNotConverged)
		})
	if !errors.Is(err, check.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("withRetry blocked %v waiting for an unaffordable backoff", elapsed)
	}
}

func TestWithRetryCanceledDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err := withRetry(ctx, 1, time.Hour, newLockedRand(1), nil,
		func() error { return fmt.Errorf("wobble: %w", check.ErrNumeric) })
	if !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled from a canceled backoff", err)
	}
}

func TestJitterBounds(t *testing.T) {
	jit := newLockedRand(7)
	for i := 0; i < 1000; i++ {
		d := jit.jitter(time.Millisecond)
		if d < 0 || d >= time.Millisecond {
			t.Fatalf("jitter = %v, want [0, 1ms)", d)
		}
	}
	if jit.jitter(0) != 0 {
		t.Fatal("jitter(0) != 0")
	}
}
