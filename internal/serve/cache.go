package serve

import (
	"container/list"
	"sync"
)

// lru is a small mutex-guarded LRU map. Zero or negative capacity
// disables it (every get misses, every add is dropped).
type lru[V any] struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lru[V] {
	return &lru[V]{cap: capacity, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lru[V]) get(key string) (V, bool) {
	var zero V
	if c.cap <= 0 {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

func (c *lru[V]) add(key string, val V) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry[V]).key)
	}
}

// getOrCreate returns the value for key, atomically creating and
// retaining mk()'s value on a miss (evicting the LRU entry past
// capacity). With a non-positive capacity the fresh value is returned
// unretained.
func (c *lru[V]) getOrCreate(key string, mk func() V) V {
	if c.cap <= 0 {
		return mk()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry[V]).val
	}
	v := mk()
	c.m[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.m, last.Value.(*lruEntry[V]).key)
	}
	return v
}

// each calls fn for every entry, most recent first, holding the lock;
// fn must not call back into the lru.
func (c *lru[V]) each(fn func(key string, val V)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry[V])
		fn(e.key, e.val)
	}
}

func (c *lru[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup deduplicates concurrent identical work: the first
// caller for a key runs fn, later callers for the same key block and
// share the leader's result. Unlike a cache, entries live only while
// the leader is running.
type flightGroup[V any] struct {
	mu sync.Mutex
	m  map[string]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

func newFlightGroup[V any]() *flightGroup[V] {
	return &flightGroup[V]{m: make(map[string]*flightCall[V])}
}

// do runs fn for key, or joins an in-flight run. shared reports
// whether the result came from another caller's run. A joining caller
// whose done channel fires first abandons the flight (the leader
// keeps running) and returns abandoned = true.
func (g *flightGroup[V]) do(done <-chan struct{}, key string, fn func() (V, error)) (val V, err error, shared, abandoned bool) {
	g.mu.Lock()
	if call, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-call.done:
			return call.val, call.err, true, false
		case <-done:
			var zero V
			return zero, nil, true, true
		}
	}
	call := &flightCall[V]{done: make(chan struct{})}
	g.m[key] = call
	g.mu.Unlock()

	call.val, call.err = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(call.done)
	return call.val, call.err, false, false
}
