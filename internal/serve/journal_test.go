package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"finwl/internal/batch"
	"finwl/internal/check"
	"finwl/internal/fleet/chaos"
)

func journalConfig(dir string) Config {
	return Config{Seed: 11, JournalDir: dir, Fsync: "always"}
}

func submitAndWait(t *testing.T, s *Server, reqs []*Request, idemKey string) (string, jobBody) {
	t.Helper()
	id, err := s.SubmitJob(context.Background(), reqs, idemKey)
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	return id, waitJobDone(t, s, id)
}

func waitJobDone(t *testing.T, s *Server, id string) jobBody {
	t.Helper()
	var body jobBody
	waitFor(t, func() bool {
		payload, err := s.JobPayload(context.Background(), id)
		if err != nil {
			return false
		}
		body = payload.(jobBody)
		return body.State == "done"
	})
	return body
}

// The durability acceptance: results finished before a restart stay
// fetchable from the same ID afterwards, identical to the no-crash
// run, and a replayed Idempotency-Key maps back to the same job.
func TestJournalRecoveryFinishedResults(t *testing.T) {
	dir := t.TempDir()
	reqs := []*Request{
		{Network: healthyTwoStation(), K: 2, N: 10},
		{Network: healthyTwoStation(), K: 2, N: 25},
	}

	s1, err := NewRecovered(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	id, before := submitAndWait(t, s1, reqs, "idem-done")
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2, err := NewRecovered(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Drain(context.Background())
	payload, err := s2.JobPayload(context.Background(), id)
	if err != nil {
		t.Fatalf("recovered JobPayload(%s): %v", id, err)
	}
	after := payload.(jobBody)
	if after.State != "done" || len(after.Results) != len(reqs) {
		t.Fatalf("recovered record %+v, want done with %d results", after, len(reqs))
	}
	for i := range reqs {
		b, a := before.Results[i].Response, after.Results[i].Response
		if b == nil || a == nil || !relClose(a.TotalTime, b.TotalTime, 1e-13) {
			t.Fatalf("result %d drifted across restart: %+v vs %+v", i, b, a)
		}
	}
	if got := s2.m.jobsRecovered.Value(); got != 1 {
		t.Fatalf("jobsRecovered = %d, want 1", got)
	}
	// The idempotency window survives too: redelivering the key returns
	// the recovered job instead of minting a new one.
	again, err := s2.SubmitJob(context.Background(), reqs, "idem-done")
	if err != nil {
		t.Fatal(err)
	}
	if again != id {
		t.Fatalf("replayed key minted %q, want original %q", again, id)
	}
}

func appendEntries(t *testing.T, dir string, entries ...batch.Entry) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, "jobs.jsonl"), os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	for _, e := range entries {
		if e.T.IsZero() {
			e.T = time.Now()
		}
		if err := enc.Encode(&e); err != nil {
			t.Fatal(err)
		}
	}
}

// A job whose submit record survived but whose terminal record did not
// — the signature of a crash mid-run — is re-enqueued at boot and
// completes with the same answers the uninterrupted run would give.
func TestJournalRecoveryInFlightReruns(t *testing.T) {
	dir := t.TempDir()
	reqs := []*Request{{Network: healthyTwoStation(), K: 2, N: 10}}
	raw, _ := json.Marshal(reqs)
	appendEntries(t, dir, batch.Entry{Op: batch.OpSubmit, ID: "crashed/job-1", JobsTotal: 1, Reqs: raw})

	s, err := NewRecovered(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	body := waitJobDone(t, s, "crashed/job-1")
	if len(body.Results) != 1 || body.Results[0].Response == nil {
		t.Fatalf("recovered run results %+v", body.Results)
	}

	ref := New(Config{Seed: 3})
	want, err := ref.Solve(context.Background(), reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(body.Results[0].Response.TotalTime, want.TotalTime, 1e-13) {
		t.Fatalf("recovered TotalTime %v, want %v", body.Results[0].Response.TotalTime, want.TotalTime)
	}
}

// A checkpointed group is not re-solved on recovery: its journaled
// items pass through bit-for-bit, and only the unsolved remainder
// runs.
func TestJournalRecoveryCheckpointPreset(t *testing.T) {
	dir := t.TempDir()
	reqs := []*Request{
		{Network: healthyTwoStation(), K: 2, N: 10},
		{Arch: "central", K: 3, N: 12},
	}
	rawReqs, _ := json.Marshal(reqs)
	// The sentinel TotalTime could never come out of a real solve of
	// this model, so result[0] carrying it proves the checkpoint was
	// honored rather than recomputed.
	checkpoint := []BatchItem{{Response: &Response{Fidelity: FidelityExact, K: 2, N: 10, TotalTime: 123456.789}}}
	rawItems, _ := json.Marshal(checkpoint)
	appendEntries(t, dir,
		batch.Entry{Op: batch.OpSubmit, ID: "ckpt/job-1", JobsTotal: 2, Reqs: rawReqs},
		batch.Entry{Op: batch.OpGroup, ID: "ckpt/job-1", Group: 0, Idx: []int{0}, Items: rawItems},
	)

	s, err := NewRecovered(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	body := waitJobDone(t, s, "ckpt/job-1")
	if len(body.Results) != 2 {
		t.Fatalf("%d results, want 2", len(body.Results))
	}
	if r := body.Results[0].Response; r == nil || r.TotalTime != 123456.789 {
		t.Fatalf("checkpointed item re-solved: %+v", body.Results[0])
	}
	if r := body.Results[1].Response; r == nil || r.TotalTime <= 0 {
		t.Fatalf("unsolved remainder not run: %+v", body.Results[1])
	}
}

// Expired-but-once-valid IDs answer 410 Gone (not 404) when the
// journal can certify they existed, and redelivering their
// idempotency key mints a fresh job.
func TestJournalExpiredJobGone(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	cfg := journalConfig(dir)
	cfg.JobTTL = time.Minute
	cfg.Now = clock
	s, err := NewRecovered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	reqs := []*Request{{Network: healthyTwoStation(), K: 2, N: 5}}
	id, _ := submitAndWait(t, s, reqs, "idem-ttl")
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()

	_, err = s.JobPayload(context.Background(), id)
	if !errors.Is(err, ErrJobGone) {
		t.Fatalf("expired job error %v, want ErrJobGone", err)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("expired job HTTP %d, want 410", resp.StatusCode)
	}
	var eb ErrorBody
	if json.NewDecoder(resp.Body).Decode(&eb); eb.Code != "gone" {
		t.Fatalf("expired job code %q, want gone", eb.Code)
	}
	if !errors.Is(ErrorFromWire(http.StatusGone, eb), ErrJobGone) {
		t.Fatal("410 body does not round-trip to ErrJobGone")
	}
	// Truly unknown IDs still 404.
	if _, err := s.JobPayload(context.Background(), "never-seen"); !errors.Is(err, ErrJobUnknown) {
		t.Fatalf("unknown job error %v, want ErrJobUnknown", err)
	}
	// A replayed key for an expired job re-runs rather than pointing at
	// the tombstone.
	fresh, err := s.SubmitJob(context.Background(), reqs, "idem-ttl")
	if err != nil {
		t.Fatal(err)
	}
	if fresh == id {
		t.Fatal("replayed key returned the expired job instead of re-running")
	}
}

// Replaying the same journal twice is a no-op: a second boot over the
// journal the first boot extended sees identical state.
func TestJournalReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	reqs := []*Request{{Network: healthyTwoStation(), K: 2, N: 8}}
	s1, err := NewRecovered(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := submitAndWait(t, s1, reqs, "")
	s1.Drain(context.Background())

	var want float64
	for round := 0; round < 2; round++ {
		s, err := NewRecovered(journalConfig(dir))
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		payload, err := s.JobPayload(context.Background(), id)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		body := payload.(jobBody)
		if body.State != "done" || len(body.Results) != 1 {
			t.Fatalf("round %d: %+v", round, body)
		}
		if held, _ := s.jobs.Len(); held != 1 {
			t.Fatalf("round %d: %d records, want 1 (replay duplicated)", round, held)
		}
		if round == 0 {
			want = body.Results[0].Response.TotalTime
		} else if body.Results[0].Response.TotalTime != want {
			t.Fatalf("round 1 result %v != round 0 result %v", body.Results[0].Response.TotalTime, want)
		}
		s.Drain(context.Background())
	}
}

// /batch idempotency: a redelivered key replays the window instead of
// re-solving, and the handles are independent clones.
func TestBatchIdempotencyKey(t *testing.T) {
	s := New(Config{Seed: 12})
	reqs := []*Request{{Network: healthyTwoStation(), K: 2, N: 9}}
	ctx := WithIdempotencyKey(context.Background(), "batch-key")
	first := s.SolveBatch(ctx, reqs)
	if first[0].Response == nil {
		t.Fatalf("first run failed: %+v", first[0])
	}
	hits := s.m.idemHits.Value()
	second := s.SolveBatch(ctx, reqs)
	if s.m.idemHits.Value() != hits+1 {
		t.Fatal("redelivered key did not hit the idempotency window")
	}
	if second[0].Response == nil || second[0].Response.TotalTime != first[0].Response.TotalTime {
		t.Fatalf("replayed items differ: %+v vs %+v", first[0], second[0])
	}
	if second[0].Response == first[0].Response {
		t.Fatal("replayed item shares the cached Response pointer")
	}
	// A keyless batch never touches the window.
	if s.SolveBatch(context.Background(), reqs); s.m.idemHits.Value() != hits+1 {
		t.Fatal("keyless batch charged the idempotency window")
	}
}

// SubmitJob idempotency under concurrency: many redeliveries of one
// key mint exactly one job.
func TestSubmitJobIdempotencyConcurrent(t *testing.T) {
	s := New(Config{Seed: 13})
	defer s.Drain(context.Background())
	reqs := []*Request{{Network: healthyTwoStation(), K: 2, N: 6}}
	ids := make([]string, 8)
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := s.SubmitJob(context.Background(), reqs, "one-key")
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = id
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("concurrent redeliveries minted distinct jobs: %v", ids)
		}
	}
}

// Without a journal the wire behavior is the pre-durability one:
// bare job IDs and 404 (never 410) for expired records.
func TestJournalDisabledKeepsLegacyShape(t *testing.T) {
	s := New(Config{Seed: 14})
	defer s.Drain(context.Background())
	id, err := s.SubmitJob(context.Background(), []*Request{{Network: healthyTwoStation(), K: 2, N: 4}}, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range id {
		if c == '/' {
			t.Fatalf("journal-less job ID %q carries a replica prefix", id)
		}
	}
}

// A corrupt journal is a hard boot failure for NewRecovered and a
// logged memory-only fallback for New.
func TestJournalCorruptBootPaths(t *testing.T) {
	dir := t.TempDir()
	body := `{"op":"submit","id":"a","jobs_total":1}` + "\n" + `{"op":broken}` + "\n" + `{"op":"done","id":"a"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "jobs.jsonl"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecovered(journalConfig(dir)); !errors.Is(err, check.ErrJournalCorrupt) {
		t.Fatalf("NewRecovered over corruption: %v, want ErrJournalCorrupt", err)
	}
	s := New(journalConfig(dir))
	defer s.Drain(context.Background())
	if s == nil || s.journal != nil {
		t.Fatal("New over corruption should fall back to a journal-less server")
	}
	if _, err := s.SubmitJob(context.Background(), []*Request{{Network: healthyTwoStation(), K: 2, N: 3}}, ""); err != nil {
		t.Fatalf("fallback server cannot serve: %v", err)
	}
}

// The disk-fault acceptance: a journal whose writes and fsyncs fail
// underneath the server must never surface into serving — the
// in-memory store stays the source of truth, results stay correct,
// and the failures are counted rather than returned.
func TestJournalDiskFaultsAbsorbed(t *testing.T) {
	disk := chaos.NewDisk(7, chaos.DiskFault{WriteFail: 0.3, ShortWrite: 0.3, SyncFail: 0.3})
	cfg := journalConfig(t.TempDir())
	cfg.JournalHooks = disk.Hooks()
	s, err := NewRecovered(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Drain(context.Background())

	for i := 0; i < 12; i++ {
		req := &Request{Network: healthyTwoStation(), K: 2, N: 5 + i}
		_, body := submitAndWait(t, s, []*Request{req}, "")
		if len(body.Results) != 1 || body.Results[0].Response == nil {
			t.Fatalf("job %d lost its result under disk faults: %+v", i, body)
		}
		if body.Results[0].Response.TotalTime <= 0 {
			t.Fatalf("job %d: TotalTime %v", i, body.Results[0].Response.TotalTime)
		}
	}
	wf, sw, sf := disk.Counts()
	if wf == 0 || sw == 0 || sf == 0 {
		t.Fatalf("injector fired (%d write, %d short, %d sync); every class should trip at these rates", wf, sw, sf)
	}
	if s.journal.WriteFailures() == 0 {
		t.Fatal("journal counted no failures — the degraded-durability tripwire is dead")
	}
}
