package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a mutable time source for driving breaker cooldowns.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(3, time.Second, clk.now, nil)

	if ok, probe := b.Allow(); !ok || probe {
		t.Fatalf("closed breaker: allow = (%v, %v), want (true, false)", ok, probe)
	}
	// Two failures stay closed, the third trips.
	b.OnFailure()
	b.OnFailure()
	if ok, _ := b.Allow(); !ok {
		t.Fatal("breaker tripped before threshold")
	}
	b.OnFailure()
	if ok, _ := b.Allow(); ok {
		t.Fatal("breaker still allowing after threshold failures")
	}
	if s := b.State(); s != BreakerOpen {
		t.Fatalf("state = %v, want open", s)
	}

	// Cooldown elapses: exactly one probe goes through.
	clk.advance(time.Second)
	if s := b.State(); s != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", s)
	}
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("first half-open allow = (%v, %v), want (true, true)", ok, probe)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second caller allowed during an in-flight probe")
	}

	// Probe failure re-opens with a fresh cooldown.
	b.OnFailure()
	if ok, _ := b.Allow(); ok {
		t.Fatal("allowed immediately after a failed probe")
	}
	clk.advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("probe after second cooldown = (%v, %v), want (true, true)", ok, probe)
	}
	// Probe success closes and clears the streak.
	b.OnSuccess()
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", s)
	}
	b.OnFailure()
	b.OnFailure()
	if ok, _ := b.Allow(); !ok {
		t.Fatal("streak not cleared by success")
	}
}

// TestBreakerAbortProbeReleasesToken: a probe abandoned without an
// outcome (canceled, degraded away from the exact rungs) must free the
// token for the next caller instead of pinning probing=true forever.
func TestBreakerAbortProbeReleasesToken(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(1, time.Second, clk.now, nil)
	b.OnFailure() // trip
	clk.advance(time.Second)
	if ok, probe := b.Allow(); !ok || !probe {
		t.Fatalf("half-open allow = (%v, %v), want (true, true)", ok, probe)
	}
	if ok, _ := b.Allow(); ok {
		t.Fatal("second caller allowed during an in-flight probe")
	}
	b.AbortProbe()
	if s := b.State(); s != BreakerHalfOpen {
		t.Fatalf("state after abort = %v, want half-open", s)
	}
	ok, probe := b.Allow()
	if !ok || !probe {
		t.Fatalf("allow after abort = (%v, %v), want a fresh probe", ok, probe)
	}
	b.OnSuccess()
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", s)
	}
}

// TestBreakerHalfOpenRace hammers a half-open breaker from many
// goroutines (run under -race in CI): exactly one caller may win the
// probe slot per half-open window.
func TestBreakerHalfOpenRace(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := NewBreaker(1, time.Second, clk.now, nil)
	for round := 0; round < 10; round++ {
		b.OnFailure() // trip
		clk.advance(time.Second)

		var probes, allows atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 32; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ok, probe := b.Allow()
				if probe {
					probes.Add(1)
				}
				if ok {
					allows.Add(1)
				}
			}()
		}
		wg.Wait()
		if probes.Load() != 1 || allows.Load() != 1 {
			t.Fatalf("round %d: %d probes, %d allows, want exactly 1 of each", round, probes.Load(), allows.Load())
		}
		b.OnSuccess() // close for the next round
	}
}
