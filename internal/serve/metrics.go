package serve

import (
	"finwl/internal/obs"
)

// serveMetrics is the registry-backed heart of the server's
// observability: every counter the old hand-rolled Stats struct
// carried, re-homed on a per-Server obs.Registry so /stats stays
// wire-compatible while /metrics exposes the same state (plus
// histograms and gauges the JSON snapshot never had) in Prometheus
// text form.
//
// The registry is per-Server rather than process-global so tests and
// embedders get isolated counters; finwld's /metrics page concatenates
// this registry with obs.Default (the solver-stage metrics).
type serveMetrics struct {
	requests    *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	deduped     *obs.Counter
	rejected    *obs.Counter
	invalid     *obs.Counter
	canceled    *obs.Counter
	retries     *obs.Counter
	degraded    *obs.Counter
	failures    *obs.Counter

	// tier is indexed by Fidelity via tierCounter.
	exact      *obs.Counter
	checkpoint *obs.Counter
	steady     *obs.Counter
	bounds     *obs.Counter

	// Breaker state transitions, labeled by the state entered.
	brClosed   *obs.Counter
	brOpen     *obs.Counter
	brHalfOpen *obs.Counter

	queueWait         *obs.Histogram // admission wait, ns
	solveTime         *obs.Histogram // ladder time after admission, ns
	deadlineRemaining *obs.Histogram // remaining deadline at tier choice, ns

	// Batch scheduler families: how much chain-build sharing the
	// grouping actually delivers.
	batchJobs       *obs.Counter
	batchGroups     *obs.Counter
	batchChainReuse *obs.Counter
	batchGroupJobs  *obs.Histogram // jobs per solved group
	batchSeconds    *obs.Histogram // whole-batch wall time, ns

	// Durability and idempotency families.
	idemHits      *obs.Counter // submissions answered from the Idempotency-Key window
	jobsRecovered *obs.Counter // journal-replayed jobs rehydrated at boot
}

// Histogram bucket rationale (documented in DESIGN.md §11): serve-path
// latencies span ~100µs cache misses to the 60s default deadline cap,
// so 14 exponential buckets ×4 from 100µs cover 100µs..~27min; queue
// waits start finer (10µs) because an uncontended acquire is
// sub-millisecond and the interesting signal is the onset of queueing.
var (
	solveBounds = obs.ExpBounds(100_000, 4, 14)
	queueBounds = obs.ExpBounds(10_000, 4, 14)
)

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	c := func(name, help string, labels ...obs.Label) *obs.Counter {
		return reg.Counter(name, help, labels...)
	}
	tier := func(f Fidelity) *obs.Counter {
		return c("finwld_tier_total", "Successful responses by fidelity tier.", obs.L("tier", string(f)))
	}
	br := func(state BreakerState) *obs.Counter {
		return c("finwld_breaker_transitions_total", "Circuit-breaker state transitions, labeled by the state entered.",
			obs.L("state", state.String()))
	}
	return &serveMetrics{
		requests:    c("finwld_requests_total", "Solve requests received."),
		cacheHits:   c("finwld_cache_hits_total", "Requests answered from the result cache."),
		cacheMisses: c("finwld_cache_misses_total", "Requests that missed the result cache."),
		deduped:     c("finwld_dedup_total", "Requests that shared another request's in-flight solve."),
		rejected:    c("finwld_rejected_total", "Admission rejections (overload or draining)."),
		invalid:     c("finwld_invalid_total", "Requests rejected for an invalid model."),
		canceled:    c("finwld_canceled_total", "Requests canceled or past their deadline."),
		retries:     c("finwld_retries_total", "Transient-failure retry attempts."),
		degraded:    c("finwld_degraded_total", "Responses served below the exact tiers."),
		failures:    c("finwld_failures_total", "Requests that exhausted the whole degradation ladder."),

		exact:      tier(FidelityExact),
		checkpoint: tier(FidelityCheckpoint),
		steady:     tier(FidelitySteady),
		bounds:     tier(FidelityBounds),

		brClosed:   br(BreakerClosed),
		brOpen:     br(BreakerOpen),
		brHalfOpen: br(BreakerHalfOpen),

		queueWait: reg.Histogram("finwld_queue_wait_seconds",
			"Time spent waiting in the admission queue.", queueBounds, 1e-9),
		solveTime: reg.Histogram("finwld_solve_seconds",
			"Time from admission to a ladder verdict.", solveBounds, 1e-9),
		deadlineRemaining: reg.Histogram("finwld_deadline_remaining_seconds",
			"Deadline remaining at degradation-ladder tier choice.", solveBounds, 1e-9),

		batchJobs:       c("finwld_batch_jobs_total", "Jobs submitted through the batch scheduler (sync and async)."),
		batchGroups:     c("finwld_batch_groups_total", "Distinct network groups solved by the batch scheduler."),
		batchChainReuse: c("finwld_batch_chain_reuse_total", "Batched jobs served without a fresh chain construction."),
		batchGroupJobs: reg.Histogram("finwld_batch_group_jobs",
			"Jobs per solved batch group.", obs.ExpBounds(1, 2, 10), 1),
		batchSeconds: reg.Histogram("finwld_batch_seconds",
			"Wall time of one whole batch, submission to fan-in.", solveBounds, 1e-9),

		idemHits: c("finwld_idempotent_hits_total",
			"Submissions answered from the Idempotency-Key dedup window instead of re-running."),
		jobsRecovered: c("finwld_jobs_recovered_total",
			"Async jobs rehydrated from the durability journal at boot."),
	}
}

// registerGauges exposes the admission queue's live state and the
// cache occupancies as scrape-time gauges. Separate from
// newServeMetrics because the admission queue and caches are built
// alongside the metrics in New.
func registerGauges(reg *obs.Registry, s *Server) {
	reg.GaugeFunc("finwld_queue_depth", "Requests waiting in the admission queue.", func() float64 {
		_, _, queued := s.adm.snapshot()
		return float64(queued)
	})
	reg.GaugeFunc("finwld_budget_used", "Admission budget currently charged, state-space units.", func() float64 {
		used, _, _ := s.adm.snapshot()
		return float64(used)
	})
	reg.GaugeFunc("finwld_budget_total", "Configured admission budget, state-space units.", func() float64 {
		_, budget, _ := s.adm.snapshot()
		return float64(budget)
	})
	reg.GaugeFunc("finwld_cache_entries", "Result-cache entries resident.", func() float64 {
		return float64(s.cache.len())
	})
	reg.GaugeFunc("finwld_solver_cache_entries", "Factored solvers resident.", func() float64 {
		return float64(s.solvers.len())
	})
	reg.GaugeFunc("finwld_draining", "1 while the server is draining.", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("finwld_batch_store_records", "Async job records resident (active + retained results).", func() float64 {
		held, _ := s.jobs.Len()
		return float64(held)
	})
	reg.GaugeFunc("finwld_batch_store_active", "Async job records still queued or running.", func() float64 {
		_, active := s.jobs.Len()
		return float64(active)
	})
	reg.GaugeFunc("finwld_journal_write_failures", "Journal appends or syncs that failed (degraded durability); 0 with the journal off.", func() float64 {
		return float64(s.journal.WriteFailures()) // nil-safe: 0 without a journal
	})
}

// tierCounter maps a fidelity to its counter.
func (m *serveMetrics) tierCounter(f Fidelity) *obs.Counter {
	switch f {
	case FidelityExact:
		return m.exact
	case FidelityCheckpoint:
		return m.checkpoint
	case FidelitySteady:
		return m.steady
	default:
		return m.bounds
	}
}

// breakerTransition is the hook handed to every breaker.
func (m *serveMetrics) breakerTransition(to BreakerState) {
	switch to {
	case BreakerClosed:
		m.brClosed.Inc()
	case BreakerOpen:
		m.brOpen.Inc()
	case BreakerHalfOpen:
		m.brHalfOpen.Inc()
	}
}
