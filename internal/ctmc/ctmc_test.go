package ctmc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

func approx(t *testing.T, got, want, relTol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

func singleStation(kind statespace.Kind, svc *phase.PH) *network.Network {
	return &network.Network{
		Stations: []network.Station{{Name: "s", Kind: kind, Service: svc}},
		Route:    matrix.New(1, 1),
		Exit:     []float64{1},
		Entry:    []float64{1},
	}
}

func buildChain(t *testing.T, net *network.Network, k, n int) *Chain {
	t.Helper()
	ch, err := network.NewChain(net, k)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(ch, n)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// The chain's mean absorption time must equal the level-recursion
// E(T) — two independent computations of the same model.
func TestMeanMatchesTransientSolver(t *testing.T) {
	app := workload.Default(12)
	configs := []cluster.Dists{
		{},
		{Remote: cluster.WithCV2(10)},
		{CPU: cluster.ErlangStages(2), Remote: cluster.WithCV2(5)},
	}
	for i, d := range configs {
		net, err := cluster.Central(3, app, d, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.NewSolver(net, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.TotalTime(app.N)
		if err != nil {
			t.Fatal(err)
		}
		c := buildChain(t, net, 3, app.N)
		got, err := c.MeanAbsorptionTime()
		if err != nil {
			t.Fatal(err)
		}
		approx(t, got, want, 1e-9, "mean absorption vs E(T)")
		if i == 0 && c.States() == 0 {
			t.Fatal("no transient states")
		}
	}
}

// Property: agreement holds for random networks and workloads.
func TestMeanMatchesSolverProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net := randomNet(r)
		k := 1 + r.Intn(3)
		n := k + r.Intn(6)
		s, err := core.NewSolver(net, k)
		if err != nil {
			return false
		}
		want, err := s.TotalTime(n)
		if err != nil {
			return false
		}
		ch, err := network.NewChain(net, k)
		if err != nil {
			return false
		}
		c, err := Build(ch, n)
		if err != nil {
			return false
		}
		got, err := c.MeanAbsorptionTime()
		if err != nil {
			return false
		}
		return math.Abs(got-want) < 1e-8*math.Max(1, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func randomNet(r *rand.Rand) *network.Network {
	m := 1 + r.Intn(3)
	stations := make([]network.Station, m)
	for i := range stations {
		kind := statespace.Delay
		if r.Intn(2) == 0 {
			kind = statespace.Queue
		}
		var svc *phase.PH
		if r.Intn(2) == 0 {
			svc = phase.MustExpo(0.5 + 2*r.Float64())
		} else {
			svc = phase.MustHyperExpFit(0.5+r.Float64(), 1+3*r.Float64())
		}
		stations[i] = network.Station{Name: string(rune('A' + i)), Kind: kind, Service: svc}
	}
	route := matrix.New(m, m)
	exit := make([]float64, m)
	for i := 0; i < m; i++ {
		exit[i] = 0.3 + 0.4*r.Float64()
		remain := 1 - exit[i]
		w := make([]float64, m)
		var sum float64
		for j := range w {
			w[j] = r.Float64()
			sum += w[j]
		}
		for j := range w {
			route.Set(i, j, remain*w[j]/sum)
		}
	}
	entry := make([]float64, m)
	entry[0] = 1
	return &network.Network{Stations: stations, Route: route, Exit: exit, Entry: entry}
}

// Single exponential FCFS queue: completion of N tasks is
// MustErlang(N, µ) — closed-form CDF.
func TestCDFSingleQueueErlang(t *testing.T) {
	mu := 1.5
	n := 4
	c := buildChain(t, singleStation(statespace.Queue, phase.MustExpo(mu)), 2, n)
	erlangCDF := func(tt float64) float64 {
		// P(MustErlang(n,µ) ≤ t) = 1 − e^{−µt} Σ_{k<n} (µt)^k/k!
		sum, term := 0.0, 1.0
		for k := 0; k < n; k++ {
			if k > 0 {
				term *= mu * tt / float64(k)
			}
			sum += term
		}
		return 1 - math.Exp(-mu*tt)*sum
	}
	for _, tt := range []float64{0.5, 1, 2, 4, 8} {
		got, err := c.CompletionCDF(tt)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, got, erlangCDF(tt), 1e-8, "Erlang CDF")
	}
}

// Delay station with K = N: completion is max of N iid exponentials,
// CDF = (1 − e^{−µt})^N.
func TestCDFDelayMaxOfExponentials(t *testing.T) {
	mu := 0.8
	n := 3
	c := buildChain(t, singleStation(statespace.Delay, phase.MustExpo(mu)), n, n)
	for _, tt := range []float64{0.5, 1, 2, 5} {
		got, err := c.CompletionCDF(tt)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(1-math.Exp(-mu*tt), float64(n))
		approx(t, got, want, 1e-8, "max-of-exp CDF")
	}
}

func TestCDFMonotoneAndBounded(t *testing.T) {
	app := workload.Default(6)
	net, err := cluster.Central(2, app, cluster.Dists{Remote: cluster.WithCV2(8)}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := buildChain(t, net, 2, app.N)
	mean, err := c.MeanAbsorptionTime()
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, frac := range []float64{0.1, 0.5, 1, 1.5, 2, 4} {
		v, err := c.CompletionCDF(mean * frac)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev || v < 0 || v > 1 {
			t.Fatalf("CDF not monotone in [0,1]: %v after %v", v, prev)
		}
		prev = v
	}
	if prev < 0.95 {
		t.Fatalf("CDF at 4× mean is only %v", prev)
	}
	if z, _ := c.CompletionCDF(0); z != 0 {
		t.Fatal("CDF(0) != 0")
	}
}

// The CDF's implied mean (∫ survival) must match the direct mean.
func TestCDFImpliedMean(t *testing.T) {
	net := singleStation(statespace.Queue, phase.MustHyperExpFit(1, 6))
	c := buildChain(t, net, 2, 3)
	mean, err := c.MeanAbsorptionTime()
	if err != nil {
		t.Fatal(err)
	}
	// Trapezoid over survival with fine grid out to 40×mean.
	var integral float64
	h := mean / 100
	last := 1.0
	for x := h; x < 40*mean; x += h {
		v, err := c.CompletionCDF(x)
		if err != nil {
			t.Fatal(err)
		}
		surv := 1 - v
		integral += h * (last + surv) / 2
		last = surv
		if surv < 1e-10 {
			break
		}
	}
	approx(t, integral, mean, 0.01, "∫survival vs mean")
}

func TestQuantile(t *testing.T) {
	net := singleStation(statespace.Queue, phase.MustExpo(2))
	c := buildChain(t, net, 1, 2) // MustErlang(2,2): median at known point
	q50, err := c.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.CompletionCDF(q50)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, 0.5, 1e-4, "CDF at median")
	q99, err := c.Quantile(0.99)
	if err != nil {
		t.Fatal(err)
	}
	if q99 <= q50 {
		t.Fatal("q99 should exceed median")
	}
	if _, err := c.Quantile(1.5); err == nil {
		t.Fatal("accepted quantile > 1")
	}
}

// Heavy-tailed service moves the tail percentile much more than the
// mean — the extension's whole point.
func TestTailSensitivity(t *testing.T) {
	app := workload.Default(8)
	k := 2
	mk := func(d cluster.Dists) (mean, p99 float64) {
		net, err := cluster.Central(k, app, d, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c := buildChain(t, net, k, app.N)
		mean, err = c.MeanAbsorptionTime()
		if err != nil {
			t.Fatal(err)
		}
		p99, err = c.Quantile(0.99)
		if err != nil {
			t.Fatal(err)
		}
		return mean, p99
	}
	mExp, tExp := mk(cluster.Dists{})
	mH2, tH2 := mk(cluster.Dists{Remote: cluster.WithCV2(25)})
	meanRatio := mH2 / mExp
	tailRatio := tH2 / tExp
	if tailRatio <= meanRatio {
		t.Fatalf("p99 ratio %v should exceed mean ratio %v", tailRatio, meanRatio)
	}
}

func TestOccupancyAt(t *testing.T) {
	app := workload.Default(6)
	net, err := cluster.Central(2, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c := buildChain(t, net, 2, app.N)
	// At t=0 both admitted tasks sit at the CPU (entry station).
	occ0, err := c.OccupancyAt(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(occ0[0]-2) > 1e-12 {
		t.Fatalf("t=0 CPU occupancy %v, want 2", occ0[0])
	}
	var total0 float64
	for _, v := range occ0 {
		total0 += v
	}
	if math.Abs(total0-2) > 1e-12 {
		t.Fatalf("t=0 total occupancy %v, want 2", total0)
	}
	// Mid-run: mass spread over stations, total ≤ 2 (some work done).
	mean, err := c.MeanAbsorptionTime()
	if err != nil {
		t.Fatal(err)
	}
	occMid, err := c.OccupancyAt(mean / 2)
	if err != nil {
		t.Fatal(err)
	}
	var totalMid float64
	for st, v := range occMid {
		if v < -1e-12 {
			t.Fatalf("negative occupancy at station %d", st)
		}
		totalMid += v
	}
	if totalMid >= 2 || totalMid <= 0 {
		t.Fatalf("mid-run occupancy %v, want in (0, 2)", totalMid)
	}
	// Long after the mean everything has drained.
	occLate, err := c.OccupancyAt(mean * 8)
	if err != nil {
		t.Fatal(err)
	}
	var totalLate float64
	for _, v := range occLate {
		totalLate += v
	}
	if totalLate > 0.05 {
		t.Fatalf("late occupancy %v, want ~0", totalLate)
	}
}

func TestBuildRejectsBadN(t *testing.T) {
	net := singleStation(statespace.Queue, phase.MustExpo(1))
	ch, err := network.NewChain(net, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(ch, 0); err == nil {
		t.Fatal("Build accepted N=0")
	}
}

func TestPoissonWeights(t *testing.T) {
	for _, q := range []float64{0.5, 3, 20, 150} {
		w := poissonWeights(q, 1e-13)
		var sum float64
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Fatalf("q=%v: weights sum to %v", q, sum)
		}
	}
	if w := poissonWeights(0, 1e-13); len(w) != 1 || w[0] != 1 {
		t.Fatal("q=0 should be the unit mass")
	}
}
