// Package ctmc assembles the complete absorbing continuous-time
// Markov chain of a finite workload — every (departures-so-far,
// network-state) pair — and solves it directly. It serves two roles:
//
//  1. An independent cross-validation of the level-based transient
//     recursion: the mean absorption time computed here by block
//     back-substitution must equal core.Solver's E(T) exactly, though
//     the two computations share no code path beyond the level
//     matrices.
//  2. A genuine extension of the paper: the full *distribution* of
//     the job completion time via uniformization, not just its mean —
//     percentiles of the makespan, which heavy-tailed service laws
//     move far more than they move the mean.
package ctmc

import (
	"errors"
	"fmt"
	"math"

	"finwl/internal/matrix"
	"finwl/internal/network"
)

// Chain is the absorbing CTMC of one finite workload.
type Chain struct {
	N int // tasks in the workload
	K int // maximum concurrency

	chain *network.Chain
	// offsets[d] is the global index of the first state of the block
	// with d departures; blocks run d = 0 .. N−1, then absorption.
	offsets []int
	total   int
	// init is the initial distribution over block 0.
	init []float64
}

// levelAt returns the population level active in block d.
func (c *Chain) levelAt(d int) int {
	k := c.N - d
	if k > c.K {
		k = c.K
	}
	return k
}

// Build assembles the absorbing chain for a workload of n tasks on a
// level chain built to K = len(chain.Levels)−1.
func Build(chain *network.Chain, n int) (*Chain, error) {
	k := len(chain.Levels) - 1
	if n < 1 {
		return nil, errors.New("ctmc: workload must have at least one task")
	}
	c := &Chain{N: n, K: k, chain: chain}
	c.offsets = make([]int, n+1)
	for d := 0; d < n; d++ {
		c.offsets[d+1] = c.offsets[d] + chain.Levels[c.levelAt(d)].States.Count()
	}
	c.total = c.offsets[n]
	c.init = chain.EntryVector(c.levelAt(0))
	return c, nil
}

// States returns the number of transient states.
func (c *Chain) States() int { return c.total }

// MeanAbsorptionTime solves (−Q)·t = ε over the transient states. The
// generator is block upper-triangular in the departure count, so the
// solve is one dense level solve per block, walked backwards — an
// exact, independent recomputation of E(T).
func (c *Chain) MeanAbsorptionTime() (float64, error) {
	// t_d = τ-like vector for block d:
	// (I − P_k)·t_d = M_k⁻¹·ε + (I − P_k)⁻¹·hop-term … concretely:
	// for state i in block d:
	//   t = 1/M_ii + Σ_j P[i][j]·t_d[j] + Σ_j' Hop[i][j']·t_{d+1}[j']
	// where Hop is Q_k·R_k while tasks queue, else Q_k, and t_N = 0.
	var next []float64 // t_{d+1}
	for d := c.N - 1; d >= 0; d-- {
		k := c.levelAt(d)
		lvl := c.chain.Levels[k]
		dk := lvl.States.Count()
		rhs := make([]float64, dk)
		for i := 0; i < dk; i++ {
			rhs[i] = 1 / lvl.MDiag[i]
		}
		if next != nil {
			// Add Q (·R) · t_{d+1}.
			hop := lvl.Q.MulVec(projectHop(c, d, next))
			rhs = matrix.VecAdd(rhs, hop)
		}
		a := lvl.P.IMinusDense()
		t, err := matrix.Solve(a, rhs)
		if err != nil {
			return 0, fmt.Errorf("ctmc: block %d solve: %w", d, err)
		}
		next = t
	}
	return matrix.Dot(c.init, next), nil
}

// projectHop maps t_{d+1} back through R when the departure in block
// d is immediately followed by a replacement (the next block lives at
// the same level k); otherwise the levels differ by one and Q already
// lands on level k−1.
func projectHop(c *Chain, d int, next []float64) []float64 {
	kNow, kNext := c.levelAt(d), c.levelAt(d+1)
	if kNow == kNext {
		// Block d+1 is at the same level: departure (level k−1) is
		// followed by an arrival R_k back up to level k.
		return c.chain.Levels[kNow].R.MulVec(next)
	}
	return next
}

// CompletionCDF returns P(T ≤ t), the probability the whole workload
// has finished by time t, via uniformization with adaptive Poisson
// truncation (error < 1e-12).
func (c *Chain) CompletionCDF(t float64) (float64, error) {
	if t <= 0 {
		return 0, nil
	}
	lambda := c.uniformizationRate()
	// Survival = total transient probability mass after time t.
	pi := c.globalInit()
	surv := 0.0
	q := lambda * t
	pw := poissonWeights(q, 1e-13)
	cur := pi
	for k := 0; k < len(pw); k++ {
		if pw[k] > 0 {
			surv += pw[k] * matrix.VecSum(cur)
		}
		if k+1 < len(pw) {
			cur = c.stepUniformized(cur, lambda)
		}
	}
	cdf := 1 - surv
	if cdf < 0 {
		cdf = 0
	}
	if cdf > 1 {
		cdf = 1
	}
	return cdf, nil
}

// Quantile inverts the completion CDF by bisection.
func (c *Chain) Quantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("ctmc: quantile %v outside (0,1)", p)
	}
	mean, err := c.MeanAbsorptionTime()
	if err != nil {
		return 0, err
	}
	lo, hi := 0.0, 2*mean
	for {
		v, err := c.CompletionCDF(hi)
		if err != nil {
			return 0, err
		}
		if v >= p || hi > 1e6*mean {
			break
		}
		hi *= 2
	}
	for iter := 0; iter < 100; iter++ {
		mid := (lo + hi) / 2
		v, err := c.CompletionCDF(mid)
		if err != nil {
			return 0, err
		}
		if v < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-9*mean {
			break
		}
	}
	return (lo + hi) / 2, nil
}

// OccupancyAt returns the expected number of customers at each
// station at time t, including tasks still queued for admission —
// the time-domain view of the transient the paper's epoch series
// shows in departure order. Entries decay to zero as the workload
// drains.
func (c *Chain) OccupancyAt(t float64) ([]float64, error) {
	space := c.chain.Space
	occ := make([]float64, space.Stations())
	pi := c.globalInit()
	if t > 0 {
		lambda := c.uniformizationRate()
		pw := poissonWeights(lambda*t, 1e-13)
		acc := make([]float64, c.total)
		cur := pi
		for k := 0; k < len(pw); k++ {
			if pw[k] > 0 {
				for i, v := range cur {
					acc[i] += pw[k] * v
				}
			}
			if k+1 < len(pw) {
				cur = c.stepUniformized(cur, lambda)
			}
		}
		pi = acc
	}
	for d := 0; d < c.N; d++ {
		k := c.levelAt(d)
		lvl := c.chain.Levels[k]
		for i := 0; i < lvl.States.Count(); i++ {
			p := pi[c.offsets[d]+i]
			if p == 0 {
				continue
			}
			state := lvl.States.State(i)
			for st := 0; st < space.Stations(); st++ {
				occ[st] += p * float64(space.CustomersAt(state, st))
			}
		}
	}
	return occ, nil
}

// uniformizationRate returns Λ ≥ every state's total event rate.
func (c *Chain) uniformizationRate() float64 {
	var lambda float64
	for k := 1; k <= c.K; k++ {
		for _, m := range c.chain.Levels[k].MDiag {
			if m > lambda {
				lambda = m
			}
		}
	}
	return lambda
}

// globalInit expands the initial distribution to the global space.
func (c *Chain) globalInit() []float64 {
	pi := make([]float64, c.total)
	copy(pi[:len(c.init)], c.init)
	return pi
}

// stepUniformized applies the uniformized DTMC to a global
// distribution: within-block moves via P (scaled by M/Λ), block hops
// via Q(R), self-loops for the remaining probability; absorption mass
// simply leaves the vector.
func (c *Chain) stepUniformized(pi []float64, lambda float64) []float64 {
	out := make([]float64, c.total)
	for d := 0; d < c.N; d++ {
		k := c.levelAt(d)
		lvl := c.chain.Levels[k]
		dk := lvl.States.Count()
		block := pi[c.offsets[d] : c.offsets[d]+dk]
		// Scale each state's outflow by M_ii/Λ; keep the rest in place.
		scaled := make([]float64, dk)
		for i, v := range block {
			rate := lvl.MDiag[i] / lambda
			scaled[i] = v * rate
			out[c.offsets[d]+i] += v * (1 - rate)
		}
		// Within-block transitions.
		moved := lvl.P.VecMul(scaled)
		dst := out[c.offsets[d] : c.offsets[d]+dk]
		for i, v := range moved {
			dst[i] += v
		}
		// Departure hop to block d+1 (or absorption if d == N−1).
		if d+1 < c.N {
			hopped := lvl.Q.VecMul(scaled)
			if c.levelAt(d+1) == k {
				hopped = lvl.R.VecMul(hopped)
			}
			dst2 := out[c.offsets[d+1]:c.offsets[d+2]]
			for i, v := range hopped {
				dst2[i] += v
			}
		}
	}
	return out
}

// poissonWeights returns Poisson(q) pmf values 0..K where the omitted
// tail mass is below tol, computed stably in the log domain.
func poissonWeights(q, tol float64) []float64 {
	if q <= 0 {
		return []float64{1}
	}
	// Start at the mode and expand outward to avoid underflow.
	mode := int(q)
	logPMF := func(k int) float64 {
		lg, _ := math.Lgamma(float64(k + 1))
		return -q + float64(k)*math.Log(q) - lg
	}
	// Find upper truncation: walk until cumulative ≥ 1 − tol.
	var weights []float64
	var cum float64
	k := 0
	for {
		w := math.Exp(logPMF(k))
		weights = append(weights, w)
		cum += w
		if cum >= 1-tol && k >= mode {
			break
		}
		k++
		if k > mode+200+int(20*math.Sqrt(q+1)) {
			break
		}
	}
	return weights
}
