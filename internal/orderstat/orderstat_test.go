package orderstat

import (
	"math"
	"testing"

	"finwl/internal/phase"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

func TestExpMaxMeanHarmonic(t *testing.T) {
	approx(t, ExpMaxMean(1, 2), 0.5, 1e-12, "H1")
	approx(t, ExpMaxMean(3, 1), 1+0.5+1.0/3, 1e-12, "H3")
}

func TestExpMinMean(t *testing.T) {
	approx(t, ExpMinMean(4, 0.5), 1/(4*0.5), 1e-12, "min of 4")
}

func TestNumericMatchesExponentialClosedForm(t *testing.T) {
	d := phase.MustExpo(1.3)
	for _, n := range []int{2, 3, 5} {
		approx(t, MaxMean(d, n), ExpMaxMean(n, 1.3), 1e-3, "MaxMean exp")
		approx(t, MinMean(d, n), ExpMinMean(n, 1.3), 1e-3, "MinMean exp")
	}
}

func TestMaxOfTwoH2ClosedForm(t *testing.T) {
	d := phase.MustHyperExpFit(2, 8)
	p, mu1, mu2 := d.Alpha[0], d.Rates[0], d.Rates[1]
	eMin := p*p/(2*mu1) + 2*p*(1-p)/(mu1+mu2) + (1-p)*(1-p)/(2*mu2)
	want := 2*d.Mean() - eMin
	approx(t, MaxMean(d, 2), want, 1e-3, "max of two H2")
	approx(t, MinMean(d, 2), eMin, 1e-3, "min of two H2")
}

func TestMaxMinIdentityN2(t *testing.T) {
	// E[max]+E[min] = 2E[X] for n=2, any distribution.
	for _, d := range []*phase.PH{
		phase.MustErlangMean(3, 1.5),
		phase.MustHyperExpFit(1, 20),
	} {
		got := MaxMean(d, 2) + MinMean(d, 2)
		approx(t, got, 2*d.Mean(), 1e-3, "max+min identity")
	}
}

func TestMaxMonotoneInN(t *testing.T) {
	d := phase.MustHyperExpFit(1, 5)
	prev := 0.0
	for n := 1; n <= 6; n++ {
		v := MaxMean(d, n)
		if v <= prev {
			t.Fatalf("MaxMean not increasing at n=%d: %v <= %v", n, v, prev)
		}
		prev = v
	}
}

func TestNormalQuantile(t *testing.T) {
	approx(t, normalQuantile(0.5), 0, 1e-6, "median")
	approx(t, normalQuantile(0.975), 1.959964, 1e-4, "97.5%")
	approx(t, normalQuantile(0.025), -1.959964, 1e-4, "2.5%")
	approx(t, normalQuantile(0.999), 3.0902, 1e-3, "99.9%")
}

func TestIndependentMakespan(t *testing.T) {
	d := phase.MustExpoMean(2)
	approx(t, IndependentMakespan(d, 7, 1), 14, 1e-9, "k=1 serial")
	approx(t, IndependentMakespan(d, 3, 8), MaxMean(d, 3), 1e-9, "n<=k is max")
	// More machines never slower (for fixed n).
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		v := IndependentMakespan(d, 64, k)
		if v > prev+1e-9 {
			t.Fatalf("makespan grew with k=%d: %v > %v", k, v, prev)
		}
		prev = v
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"ExpMaxMean": func() { ExpMaxMean(0, 1) },
		"ExpMinMean": func() { ExpMinMean(0, 1) },
		"MaxMean":    func() { MaxMean(phase.MustExpo(1), 0) },
		"MinMean":    func() { MinMean(phase.MustExpo(1), 0) },
		"Makespan":   func() { IndependentMakespan(phase.MustExpo(1), 0, 1) },
		"Quantile":   func() { normalQuantile(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
