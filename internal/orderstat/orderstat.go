// Package orderstat provides the order-statistics analysis that the
// paper's introduction contrasts with the network model: when tasks
// are fully independent (no shared resources), the job completion
// time on K machines is the maximum of iid task times, and speedup
// analysis reduces to order statistics. Comparing these bounds with
// the contention-aware transient model quantifies what shared
// resources cost.
package orderstat

import (
	"math"

	"finwl/internal/phase"
)

// ExpMaxMean returns E[max of n iid Exp(µ)] = H_n/µ.
func ExpMaxMean(n int, mu float64) float64 {
	if n < 1 {
		panic("orderstat: n must be >= 1")
	}
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h / mu
}

// ExpMinMean returns E[min of n iid Exp(µ)] = 1/(nµ).
func ExpMinMean(n int, mu float64) float64 {
	if n < 1 {
		panic("orderstat: n must be >= 1")
	}
	return 1 / (float64(n) * mu)
}

// MaxMean returns E[max of n iid draws] of a phase-type distribution
// by numeric integration of 1 − F(t)ⁿ. Accuracy is limited by the
// integration grid; the defaults hold ~1e-4 relative error for the
// families used in the paper.
func MaxMean(d *phase.PH, n int) float64 {
	if n < 1 {
		panic("orderstat: n must be >= 1")
	}
	if n == 1 {
		return d.Mean()
	}
	return integrate(func(t float64) float64 {
		return 1 - math.Pow(d.CDF(t), float64(n))
	}, d.Mean()*10, upperBound(d, n))
}

// MinMean returns E[min of n iid draws] via ∫ R(t)ⁿ dt.
func MinMean(d *phase.PH, n int) float64 {
	if n < 1 {
		panic("orderstat: n must be >= 1")
	}
	if n == 1 {
		return d.Mean()
	}
	return integrate(func(t float64) float64 {
		return math.Pow(d.Reliability(t), float64(n))
	}, d.Mean()*10, upperBound(d, n))
}

// IndependentMakespan returns the expected completion time of N
// independent tasks on K machines when tasks are pre-assigned in
// balanced batches of ⌈N/K⌉ / ⌊N/K⌋: the max over machines of a sum
// of iid task times, approximated by a normal-order-statistics
// correction — exact for K=1 and asymptotically tight for large
// batches. It is the "no contention" reference line for the speedup
// figures.
func IndependentMakespan(d *phase.PH, n, k int) float64 {
	if n < 1 || k < 1 {
		panic("orderstat: n and k must be >= 1")
	}
	if k == 1 {
		return float64(n) * d.Mean()
	}
	if n <= k {
		return MaxMean(d, n)
	}
	// Machines get batches of size q or q+1.
	q := n / k
	rem := n % k
	// Expected max of k batch sums ≈ batch mean + z_k·σ_batch where
	// z_k = E[max of k standard normals], Blom's approximation.
	zk := normalMaxApprox(k)
	mean := d.Mean()
	sd := math.Sqrt(d.Variance())
	big := float64(q+1)*mean + zk*sd*math.Sqrt(float64(q+1))
	small := float64(q)*mean + zk*sd*math.Sqrt(float64(q))
	if rem > 0 {
		return big
	}
	return small
}

// normalMaxApprox estimates E[max of k standard normals] with Blom's
// formula Φ⁻¹((k−α)/(k−2α+1)), α = 0.375.
func normalMaxApprox(k int) float64 {
	if k == 1 {
		return 0
	}
	const alpha = 0.375
	p := (float64(k) - alpha) / (float64(k) - 2*alpha + 1)
	return normalQuantile(p)
}

// normalQuantile is the Acklam rational approximation of Φ⁻¹.
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("orderstat: quantile domain")
	}
	a := []float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := []float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := []float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := []float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// upperBound picks an integration horizon: far enough into the tail
// that the n-fold max has negligible mass beyond it.
func upperBound(d *phase.PH, n int) float64 {
	scale := d.Mean() * math.Max(1, d.CV2())
	return scale * (30 + 10*math.Log(float64(n)+1))
}

// integrate runs composite Simpson on [0, hi], with a dense grid on
// the body [0, split] where most of the mass lives and a coarser one
// on the tail (split, hi] — heavy-tailed H2/TPT distributions need a
// long horizon without starving the body of resolution.
func integrate(f func(float64) float64, split, hi float64) float64 {
	if split >= hi {
		split = hi / 2
	}
	return simpson(f, 0, split, 4000) + simpson(f, split, hi, 4000)
}

func simpson(f func(float64) float64, lo, hi float64, steps int) float64 {
	h := (hi - lo) / float64(steps)
	sum := f(lo) + f(hi)
	for i := 1; i < steps; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}
