// Package workload models the paper's application layer (§5.1): a
// job is a set of N iid tasks, each a geometric number of
// compute/I-O cycles characterized by four time components — local
// CPU time C·X, local disk time (1−C)·X, communication time B·Y and
// remote service time Y. The cluster builders translate these
// components plus device speeds into the routing probabilities
// q, p₁, p₂ of the network model (§5.4).
package workload

import (
	"fmt"
	"math"
)

// App is the application model.
type App struct {
	// N is the number of tasks in the job (the finite workload).
	N int
	// X is the expected local service time per task: X = E(T₁)+E(T₂),
	// CPU plus local disk.
	X float64
	// C is the fraction of local time spent on the CPU: C·X on CPU,
	// (1−C)·X on the local disk.
	C float64
	// Y is the expected remote service time per task, E(T₃).
	Y float64
	// B is the communication overhead ratio: the task spends B·Y on
	// the communication channel per unit of remote service.
	B float64
	// Cycles is the mean number of compute/I-O cycles per task, the
	// 1/q of the geometric cycle count in Figure 1.
	Cycles float64
	// RemoteFrac is p₂, the probability that an I/O request is remote
	// rather than local, used by the central model where p₁+p₂ = 1.
	RemoteFrac float64
}

// Default returns the workload used for the paper's Section 6
// experiments: tasks with a 12-time-unit total service requirement
// (E(T) = X + B·Y + Y = 9 + 0.5 + 2.5) and a shared storage demand
// high enough that the remote server runs near saturation on 5–8
// workstations — the "heavy load" regime where the service
// distribution visibly shapes the transient (Figs. 3–13).
func Default(n int) App {
	return App{
		N:          n,
		X:          8.7,
		C:          0.5,
		Y:          2.75,
		B:          0.2,
		Cycles:     10,
		RemoteFrac: 0.5,
	}
}

// LowContention returns the same 12-unit task with most of the work
// local (Y = 1.2), so the shared servers stay lightly loaded and the
// cluster scales to ~10 workstations — the regime of the speedup
// scaling experiments (Figs. 14–15).
func LowContention(n int) App {
	return App{
		N:          n,
		X:          10.56,
		C:          0.5,
		Y:          1.2,
		B:          0.2,
		Cycles:     10,
		RemoteFrac: 0.5,
	}
}

// Validate checks the model's ranges.
func (a App) Validate() error {
	switch {
	case a.N < 1:
		return fmt.Errorf("workload: N = %d, want >= 1", a.N)
	case a.X <= 0:
		return fmt.Errorf("workload: X = %v, want > 0", a.X)
	case a.C <= 0 || a.C >= 1:
		return fmt.Errorf("workload: C = %v, want in (0,1)", a.C)
	case a.Y < 0:
		return fmt.Errorf("workload: Y = %v, want >= 0", a.Y)
	case a.B < 0:
		return fmt.Errorf("workload: B = %v, want >= 0", a.B)
	case a.Cycles < 1:
		return fmt.Errorf("workload: Cycles = %v, want >= 1", a.Cycles)
	case a.RemoteFrac <= 0 || a.RemoteFrac >= 1:
		return fmt.Errorf("workload: RemoteFrac = %v, want in (0,1)", a.RemoteFrac)
	case math.IsNaN(a.X + a.C + a.Y + a.B + a.Cycles + a.RemoteFrac):
		return fmt.Errorf("workload: NaN parameter")
	}
	return nil
}

// Q returns the per-cycle exit probability q = 1/Cycles.
func (a App) Q() float64 { return 1 / a.Cycles }

// SingleTaskTime returns the mean no-contention flow time of one
// task, E(T) = X + B·Y + Y — the sum of the pV time components.
func (a App) SingleTaskTime() float64 { return a.X + a.B*a.Y + a.Y }

// SerialTime returns the mean time to run the whole job on a single
// workstation with purely local data: N·(X+Y) of work with no
// communication. It is the baseline of the paper's speedup plots.
func (a App) SerialTime() float64 { return float64(a.N) * (a.X + a.Y) }
