package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultInvariants(t *testing.T) {
	app := Default(30)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if app.N != 30 {
		t.Fatalf("N = %d", app.N)
	}
	if math.Abs(app.SingleTaskTime()-12) > 1e-12 {
		t.Fatalf("E(T) = %v, want 12", app.SingleTaskTime())
	}
	if math.Abs(app.Q()-0.1) > 1e-12 {
		t.Fatalf("q = %v, want 0.1", app.Q())
	}
}

func TestLowContentionInvariants(t *testing.T) {
	app := LowContention(100)
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(app.SingleTaskTime()-12) > 1e-12 {
		t.Fatalf("E(T) = %v, want 12", app.SingleTaskTime())
	}
	if app.Y >= Default(100).Y {
		t.Fatal("low-contention workload should have less remote work")
	}
}

func TestSerialTime(t *testing.T) {
	app := Default(10)
	want := 10 * (app.X + app.Y)
	if math.Abs(app.SerialTime()-want) > 1e-12 {
		t.Fatalf("SerialTime = %v, want %v", app.SerialTime(), want)
	}
}

func TestValidateRejections(t *testing.T) {
	base := Default(5)
	mutations := map[string]func(*App){
		"N":          func(a *App) { a.N = 0 },
		"X":          func(a *App) { a.X = -1 },
		"C low":      func(a *App) { a.C = 0 },
		"C high":     func(a *App) { a.C = 1 },
		"Y":          func(a *App) { a.Y = -0.1 },
		"B":          func(a *App) { a.B = -0.1 },
		"Cycles":     func(a *App) { a.Cycles = 0.9 },
		"RemoteFrac": func(a *App) { a.RemoteFrac = 0 },
		"NaN":        func(a *App) { a.X = math.NaN() },
	}
	for name, mutate := range mutations {
		app := base
		mutate(&app)
		if err := app.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, app)
		}
	}
}

// Property: SingleTaskTime decomposes as CX + (1−C)X + BY + Y and is
// always at least X.
func TestSingleTaskTimeProperty(t *testing.T) {
	f := func(xq, cq, yq, bq uint8) bool {
		app := App{
			N:          1,
			X:          0.5 + float64(xq)/16,
			C:          0.05 + 0.9*float64(cq)/256,
			Y:          float64(yq) / 16,
			B:          float64(bq) / 64,
			Cycles:     5,
			RemoteFrac: 0.5,
		}
		if err := app.Validate(); err != nil {
			return false
		}
		total := app.SingleTaskTime()
		decomposed := app.C*app.X + (1-app.C)*app.X + app.B*app.Y + app.Y
		return math.Abs(total-decomposed) < 1e-12 && total >= app.X
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
