package core

import (
	"math"
	"testing"

	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/productform"
	"finwl/internal/sim"
	"finwl/internal/statespace"
)

// multiNet is a two-station network: a delay "think" stage and a
// c-server exponential station — the classic machine-repair shape.
func multiNet(c int, muThink, muSvc float64) *network.Network {
	route := matrix.New(2, 2)
	route.Set(0, 1, 0.5)
	route.Set(1, 0, 1)
	return &network.Network{
		Stations: []network.Station{
			{Name: "think", Kind: statespace.Delay, Service: phase.MustExpo(muThink)},
			{Name: "pool", Kind: statespace.Multi, Service: phase.MustExpo(muSvc), Servers: c},
		},
		Route: route,
		Exit:  []float64{0.5, 0},
		Entry: []float64{1, 0},
	}
}

// A 1-server Multi station is exactly a Queue station.
func TestMultiOneServerEqualsQueue(t *testing.T) {
	asQueue := multiNet(1, 2, 1.5)
	asQueue.Stations[1].Kind = statespace.Queue
	asQueue.Stations[1].Servers = 0
	sm := mustSolver(t, multiNet(1, 2, 1.5), 4)
	sq := mustSolver(t, asQueue, 4)
	for _, n := range []int{4, 9} {
		a, err := sm.TotalTime(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sq.TotalTime(n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, a, b, 1e-10, "multi(1) vs queue")
	}
}

// A Multi station with servers ≥ K never queues: it must match the
// Delay version.
func TestMultiEnoughServersEqualsDelay(t *testing.T) {
	k := 3
	asDelay := multiNet(k, 2, 1.5)
	asDelay.Stations[1].Kind = statespace.Delay
	asDelay.Stations[1].Servers = 0
	sm := mustSolver(t, multiNet(k, 2, 1.5), k)
	sd := mustSolver(t, asDelay, k)
	a, err := sm.TotalTime(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sd.TotalTime(7)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, a, b, 1e-10, "multi(K) vs delay")
}

// Exponential multi-server stations keep the product form: the
// transient steady state must match Buzen with load-dependent rates.
func TestMultiSteadyStateMatchesBuzen(t *testing.T) {
	for _, c := range []int{1, 2, 3} {
		net := multiNet(c, 1.7, 0.9)
		s := mustSolver(t, net, 5)
		_, tss, err := s.SteadyState()
		if err != nil {
			t.Fatal(err)
		}
		pfm, err := productform.FromNetwork(net)
		if err != nil {
			t.Fatal(err)
		}
		pf := pfm.Interdeparture(5)
		approx(t, tss, pf, 1e-9, "multi t_ss vs Buzen")
	}
}

// More servers help monotonically, with diminishing returns bounded
// by the delay version.
func TestMultiMonotoneInServers(t *testing.T) {
	n := 10
	prev := math.Inf(1)
	for _, c := range []int{1, 2, 4} {
		s := mustSolver(t, multiNet(c, 2, 1), 4)
		total, err := s.TotalTime(n)
		if err != nil {
			t.Fatal(err)
		}
		if total >= prev {
			t.Fatalf("c=%d: %v not faster than %v", c, total, prev)
		}
		prev = total
	}
}

// Simulator agreement for the multi-server station.
func TestMultiSimAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	net := multiNet(2, 1.5, 1)
	s := mustSolver(t, net, 4)
	want, err := s.TotalTime(12)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Replicate(sim.Config{Net: net, K: 4, N: 12, Seed: 3}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanTotal-want) > 4*rep.TotalCI95 {
		t.Fatalf("sim %v ± %v vs analytic %v", rep.MeanTotal, rep.TotalCI95, want)
	}
}

// Validation rejects malformed multi-server stations.
func TestMultiValidation(t *testing.T) {
	bad := multiNet(2, 1, 1)
	bad.Stations[1].Servers = 0
	if _, err := NewSolver(bad, 2); err == nil {
		t.Fatal("accepted Servers=0")
	}
	bad2 := multiNet(2, 1, 1)
	bad2.Stations[1].Service = phase.MustErlangMean(2, 1)
	if _, err := NewSolver(bad2, 2); err == nil {
		t.Fatal("accepted PH service on a multi-server station")
	}
}

// MVA must refuse multi-server stations rather than silently
// approximate.
func TestMVARejectsMulti(t *testing.T) {
	net := multiNet(2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("MVA accepted a multi-server station")
		}
	}()
	pfm, err := productform.FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	pfm.MVA(3)
}
