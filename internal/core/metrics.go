package core

import "finwl/internal/obs"

// Solver-stage metrics on the process-wide registry. These are the
// quantities the paper says dominate transient-solve cost — level
// sizes, factorization time, epoch counts — so an operator can see
// where a running instance spends its time without profiling.
//
// Hot-path note: the epoch and iteration counters are incremented
// inside the allocation-free kernels; a Counter.Inc is one atomic add,
// which preserves the 0 allocs/op property (bench-asserted by
// BenchmarkPerfFeedEpochIntoK8).
var (
	mSolves = obs.Default.Counter("finwl_solves_total",
		"Transient solves started (Solve and per-sweep-checkpoint units are counted separately).")
	mEpochs = obs.Default.Counter("finwl_epochs_total",
		"Feeding and draining epochs advanced by the transient kernels.")
	mSweepCheckpoints = obs.Default.Counter("finwl_sweep_checkpoints_total",
		"Drain checkpoints materialized by SolveSweep's shared feeding pass.")
	mPowerIters = obs.Default.Counter("finwl_power_iterations_total",
		"Power/fixed-point iterations of the steady-state and time-stationary solvers.")
	mLevelFactor = obs.Default.Histogram("finwl_level_factor_seconds",
		"Per-level LU factorization time of A_k = I - P_k during solver construction.",
		obs.ExpBounds(10_000, 4, 14), 1e-9) // 10µs .. ~2.7s
	mSparseFactors = obs.Default.Counter("finwl_level_factorizations_total",
		"Level factorizations of A_k = I - P_k, by elimination path.",
		obs.L("path", "sparse"))
	mDenseFactors = obs.Default.Counter("finwl_level_factorizations_total",
		"Level factorizations of A_k = I - P_k, by elimination path.",
		obs.L("path", "dense"))
)
