package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"finwl/internal/check"
	"finwl/internal/cluster"
	"finwl/internal/workload"
)

// SolveSweep must reproduce per-N Solve results to machine precision:
// both paths run the same kernels in the same order, so the epoch
// sequences agree to the last bit (the assertions allow a whisper of
// relative slack in case a future refactor reassociates a sum).
func TestSolveSweepMatchesSolve(t *testing.T) {
	const relTol = 1e-13
	cases := []struct {
		name  string
		dists cluster.Dists
		k     int
		ns    []int
	}{
		// Unsorted with duplicates, spanning N < K, N = K and N ≫ K.
		{"exponential", cluster.Dists{}, 4, []int{50, 2, 4, 200, 4, 1, 3, 120, 50}},
		{"erlang3-cpu", cluster.Dists{CPU: cluster.ErlangStages(3)}, 4, []int{1, 4, 3, 80, 10}},
		{"h2-remote-cv10", cluster.Dists{Remote: cluster.WithCV2(10)}, 5, []int{2, 5, 150, 5, 30}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app := workload.Default(30)
			net, err := cluster.Central(tc.k, app, tc.dists, cluster.Options{})
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSolver(net, tc.k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.SolveSweep(tc.ns)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(tc.ns) {
				t.Fatalf("got %d results for %d workloads", len(got), len(tc.ns))
			}
			for i, n := range tc.ns {
				want, err := s.Solve(n)
				if err != nil {
					t.Fatal(err)
				}
				r := got[i]
				if r.N != n || r.K != want.K {
					t.Fatalf("N=%d: header (N=%d, K=%d), want (N=%d, K=%d)", n, r.N, r.K, want.N, want.K)
				}
				if len(r.Epochs) != n || len(r.Departures) != n {
					t.Fatalf("N=%d: %d epochs, %d departures", n, len(r.Epochs), len(r.Departures))
				}
				if !closeRel(r.TotalTime, want.TotalTime, relTol) {
					t.Fatalf("N=%d: TotalTime %v, want %v", n, r.TotalTime, want.TotalTime)
				}
				for j := range want.Epochs {
					if !closeRel(r.Epochs[j], want.Epochs[j], relTol) {
						t.Fatalf("N=%d: epoch %d = %v, want %v", n, j, r.Epochs[j], want.Epochs[j])
					}
					if !closeRel(r.Departures[j], want.Departures[j], relTol) {
						t.Fatalf("N=%d: departure %d = %v, want %v", n, j, r.Departures[j], want.Departures[j])
					}
				}
			}
		})
	}
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

func TestSolveSweepRejectsBadWorkload(t *testing.T) {
	app := workload.Default(10)
	net, err := cluster.Central(3, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SolveSweep([]int{5, 0, 7}); err == nil {
		t.Fatal("want error for workload 0")
	}
	if rs, err := s.SolveSweep(nil); err != nil || len(rs) != 0 {
		t.Fatalf("empty sweep: %v, %d results", err, len(rs))
	}
}

func TestTotalTimeSweep(t *testing.T) {
	app := workload.Default(10)
	net, err := cluster.Central(3, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	ns := []int{3, 10, 25}
	totals, err := s.TotalTimeSweep(ns)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range ns {
		want, err := s.TotalTime(n)
		if err != nil {
			t.Fatal(err)
		}
		if !closeRel(totals[i], want, 1e-13) {
			t.Fatalf("N=%d: %v, want %v", n, totals[i], want)
		}
	}
}

// SolveSweepEach must agree with per-N Solve on every healthy
// workload and confine each bad workload to its own slot: the batch
// scheduler depends on one poisoned job not discarding its group.
func TestSolveSweepEachIsolatesFailures(t *testing.T) {
	const relTol = 1e-13
	app := workload.Default(30)
	net, err := cluster.Central(4, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	ns := []int{50, 0, 2, -3, 4, 120, 50}
	bad := map[int]bool{1: true, 3: true}
	results, errs := s.SolveSweepEach(ns)
	if len(results) != len(ns) || len(errs) != len(ns) {
		t.Fatalf("got %d results, %d errs for %d workloads", len(results), len(errs), len(ns))
	}
	for i, n := range ns {
		if bad[i] {
			if !errors.Is(errs[i], check.ErrInvalidModel) {
				t.Fatalf("ns[%d]=%d: err %v, want ErrInvalidModel", i, n, errs[i])
			}
			if results[i] != nil {
				t.Fatalf("ns[%d]=%d: got a result alongside the error", i, n)
			}
			continue
		}
		if errs[i] != nil {
			t.Fatalf("ns[%d]=%d: unexpected error %v", i, n, errs[i])
		}
		want, err := s.Solve(n)
		if err != nil {
			t.Fatal(err)
		}
		r := results[i]
		if r == nil || r.N != n || len(r.Epochs) != n {
			t.Fatalf("ns[%d]=%d: malformed result %+v", i, n, r)
		}
		if !closeRel(r.TotalTime, want.TotalTime, relTol) {
			t.Fatalf("ns[%d]=%d: TotalTime %v, want %v", i, n, r.TotalTime, want.TotalTime)
		}
		for j := range want.Epochs {
			if !closeRel(r.Epochs[j], want.Epochs[j], relTol) {
				t.Fatalf("ns[%d]=%d: epoch %d = %v, want %v", i, n, j, r.Epochs[j], want.Epochs[j])
			}
		}
	}
}

// Under a dead context every workload fails typed as canceled — the
// sweep must not return half-filled slots with nil errors.
func TestSolveSweepEachCanceled(t *testing.T) {
	app := workload.Default(10)
	net, err := cluster.Central(3, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, errs := s.SolveSweepEachCtx(ctx, []int{2, 5, 20})
	for i := range errs {
		if !errors.Is(errs[i], check.ErrCanceled) {
			t.Fatalf("ns[%d]: err %v, want ErrCanceled", i, errs[i])
		}
		if results[i] != nil {
			t.Fatalf("ns[%d]: got a result from a canceled sweep", i)
		}
	}
}

// Tau must hand back an owned copy: mutating it cannot perturb later
// solves.
func TestTauReturnsDefensiveCopy(t *testing.T) {
	app := workload.Default(10)
	net, err := cluster.Central(3, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.TotalTime(10)
	if err != nil {
		t.Fatal(err)
	}
	tau := s.Tau(3)
	for i := range tau {
		tau[i] = -1
	}
	after, err := s.TotalTime(10)
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatalf("mutating Tau's result changed TotalTime: %v vs %v", before, after)
	}

	sp, err := NewSparseSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	spBefore, err := sp.TotalTime(10)
	if err != nil {
		t.Fatal(err)
	}
	stau, err := sp.Tau(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range stau {
		stau[i] = -1
	}
	spAfter, err := sp.TotalTime(10)
	if err != nil {
		t.Fatal(err)
	}
	if spBefore != spAfter {
		t.Fatalf("mutating SparseSolver.Tau's result changed TotalTime: %v vs %v", spBefore, spAfter)
	}
}
