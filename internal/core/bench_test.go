package core

import (
	"runtime"
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/workload"
)

func benchNet(b *testing.B, k int, d cluster.Dists) *Solver {
	b.Helper()
	app := workload.Default(30)
	net, err := cluster.Central(k, app, d, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(net, k)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// Building + factoring the chain is the setup cost paid once per
// configuration. The serial/parallel pair measures the worker-pool
// speedup of chain construction and per-level factorization (they
// coincide on a single-core host).
func benchNewSolver(b *testing.B, procs int) {
	if procs > 0 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
	}
	app := workload.Default(30)
	net, err := cluster.Central(8, app, cluster.Dists{Remote: cluster.WithCV2(10)}, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSolver(net, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNewSolverCentralK8H2(b *testing.B)       { benchNewSolver(b, 0) }
func BenchmarkNewSolverCentralK8H2Serial(b *testing.B) { benchNewSolver(b, 1) }

// One feeding epoch through the public (allocating) API: the per-task
// marginal cost of the transient solution.
func BenchmarkFeedEpochK8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{Remote: cluster.WithCV2(10)})
	pi := s.EntryVector(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pi = s.Feed(8, pi)
	}
}

// The same epoch through the workspace kernel, as the Solve loop runs
// it: must be 0 allocs/op.
func BenchmarkFeedEpochIntoK8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{Remote: cluster.WithCV2(10)})
	ws := s.getWS()
	defer s.putWS(ws)
	d := s.d(8)
	pi := ws.cur[:d]
	copy(pi, s.EntryVector(8))
	out := ws.next[:d]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.EpochTime(8, pi)
		_ = t
		s.feedInto(out, 8, pi, ws)
		pi, out = out, pi
	}
}

// BenchmarkPerfFeedEpochIntoK8 is BenchmarkFeedEpochIntoK8 under the
// Perf harness naming so the CI bench snapshot records it: the epoch
// kernel plus its epoch-counter instrumentation must stay 0 allocs/op
// (the counter bump is one atomic add).
func BenchmarkPerfFeedEpochIntoK8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{Remote: cluster.WithCV2(10)})
	ws := s.getWS()
	defer s.putWS(ws)
	d := s.d(8)
	pi := ws.cur[:d]
	copy(pi, s.EntryVector(8))
	out := ws.next[:d]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.EpochTime(8, pi)
		_ = t
		mEpochs.Inc() // what SolveCtx adds per epoch
		s.feedInto(out, 8, pi, ws)
		pi, out = out, pi
	}
}

// TestFeedEpochAllocFree is the hard gate behind the benchmark above:
// the instrumented epoch kernel may not allocate at all.
func TestFeedEpochAllocFree(t *testing.T) {
	app := workload.Default(30)
	net, err := cluster.Central(8, app, cluster.Dists{Remote: cluster.WithCV2(10)}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	ws := s.getWS()
	defer s.putWS(ws)
	d := s.d(8)
	pi := ws.cur[:d]
	copy(pi, s.EntryVector(8))
	out := ws.next[:d]
	if n := testing.AllocsPerRun(100, func() {
		_ = s.EpochTime(8, pi)
		mEpochs.Inc()
		s.feedInto(out, 8, pi, ws)
		pi, out = out, pi
	}); n != 0 {
		t.Fatalf("instrumented epoch kernel allocates %v allocs/op, want 0", n)
	}
}

func BenchmarkSolveN100K8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(100); err != nil {
			b.Fatal(err)
		}
	}
}

// Large-K transient pass, allocation-tracked: the Result slices and
// entry vector are the only allocations however large N is.
func BenchmarkSolveN400K8H2(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{Remote: cluster.WithCV2(10)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(400); err != nil {
			b.Fatal(err)
		}
	}
}

// A 100-point N-sweep: one SolveSweep feeding pass with checkpointed
// drains versus 100 independent Solve calls.
func sweepNs() []int {
	ns := make([]int, 100)
	for i := range ns {
		ns[i] = 8 + 4*i // 8 .. 404
	}
	return ns
}

func BenchmarkSolveSweep100PointsK8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{Remote: cluster.WithCV2(10)})
	ns := sweepNs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.SolveSweep(ns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepeatedSolve100PointsK8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{Remote: cluster.WithCV2(10)})
	ns := sweepNs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range ns {
			if _, err := s.Solve(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSteadyStateK8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{Remote: cluster.WithCV2(10)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SteadyState(); err != nil {
			b.Fatal(err)
		}
	}
}

// Sparse vs dense on the same mid-size model.
func BenchmarkSparseSolveDistributedK4(b *testing.B) {
	app := workload.Default(20)
	net, err := cluster.Distributed(4, app, cluster.Dists{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSparseSolver(net, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseSolveDistributedK4(b *testing.B) {
	app := workload.Default(20)
	net, err := cluster.Distributed(4, app, cluster.Dists{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(net, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(20); err != nil {
			b.Fatal(err)
		}
	}
}
