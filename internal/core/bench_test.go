package core

import (
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/workload"
)

func benchNet(b *testing.B, k int, d cluster.Dists) *Solver {
	b.Helper()
	app := workload.Default(30)
	net, err := cluster.Central(k, app, d, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(net, k)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// Building + factoring the chain is the setup cost paid once per
// configuration.
func BenchmarkNewSolverCentralK8H2(b *testing.B) {
	app := workload.Default(30)
	net, err := cluster.Central(8, app, cluster.Dists{Remote: cluster.WithCV2(10)}, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSolver(net, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// One feeding epoch: the per-task marginal cost of the transient
// solution.
func BenchmarkFeedEpochK8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{Remote: cluster.WithCV2(10)})
	pi := s.EntryVector(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pi = s.Feed(8, pi)
	}
}

func BenchmarkSolveN100K8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateK8(b *testing.B) {
	s := benchNet(b, 8, cluster.Dists{Remote: cluster.WithCV2(10)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.SteadyState(); err != nil {
			b.Fatal(err)
		}
	}
}

// Sparse vs dense on the same mid-size model.
func BenchmarkSparseSolveDistributedK4(b *testing.B) {
	app := workload.Default(20)
	net, err := cluster.Distributed(4, app, cluster.Dists{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSparseSolver(net, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDenseSolveDistributedK4(b *testing.B) {
	app := workload.Default(20)
	net, err := cluster.Distributed(4, app, cluster.Dists{})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSolver(net, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(20); err != nil {
			b.Fatal(err)
		}
	}
}
