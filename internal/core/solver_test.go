package core

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

func singleStation(kind statespace.Kind, svc *phase.PH) *network.Network {
	return &network.Network{
		Stations: []network.Station{{Name: "s", Kind: kind, Service: svc}},
		Route:    matrix.New(1, 1),
		Exit:     []float64{1},
		Entry:    []float64{1},
	}
}

func mustSolver(t *testing.T, net *network.Network, k int) *Solver {
	t.Helper()
	s, err := NewSolver(net, k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

// A single FCFS queue serves one task at a time: E(T) = N·E(S)
// regardless of K and of the service distribution.
func TestSingleQueueIsSequential(t *testing.T) {
	for _, svc := range []*phase.PH{
		phase.MustExpo(2),
		phase.MustErlangMean(3, 1.7),
		phase.MustHyperExpFit(2.5, 12),
	} {
		s := mustSolver(t, singleStation(statespace.Queue, svc), 3)
		for _, n := range []int{1, 3, 7} {
			got, err := s.TotalTime(n)
			if err != nil {
				t.Fatal(err)
			}
			approx(t, got, float64(n)*svc.Mean(), 1e-9, "E(T) single queue")
		}
		// Every epoch equals one full mean service time.
		r, err := s.Solve(5)
		if err != nil {
			t.Fatal(err)
		}
		for i, e := range r.Epochs {
			approx(t, e, svc.Mean(), 1e-9, "epoch "+string(rune('0'+i)))
		}
	}
}

// A single exponential delay station with K in service: feeding epochs
// are 1/(Kµ), draining gives the harmonic tail — E(T) =
// (N−K)/(Kµ) + H_K/µ.
func TestSingleDelayExponentialHarmonic(t *testing.T) {
	mu := 1.5
	for k := 1; k <= 5; k++ {
		s := mustSolver(t, singleStation(statespace.Delay, phase.MustExpo(mu)), k)
		for _, n := range []int{k, k + 4} {
			var want float64
			want = float64(n-k) / (float64(k) * mu)
			for j := 1; j <= k; j++ {
				want += 1 / (float64(j) * mu)
			}
			got, err := s.TotalTime(n)
			if err != nil {
				t.Fatal(err)
			}
			approx(t, got, want, 1e-9, "E(T) delay harmonic")
		}
	}
}

// K=2 tasks on a delay station, N=2: E(T) = E[max(X₁,X₂)]. For H2,
// E[max] = 2E[X] − ∫R(t)²dt in closed form. This exercises R₂, Q₂,
// Y₂ and the phase bookkeeping end to end.
func TestDelayMaxOfTwoHyperexponential(t *testing.T) {
	d := phase.MustHyperExpFit(2, 8)
	p, mu1, mu2 := d.Alpha[0], d.Rates[0], d.Rates[1]
	eMin := p*p/(2*mu1) + 2*p*(1-p)/(mu1+mu2) + (1-p)*(1-p)/(2*mu2)
	want := 2*d.Mean() - eMin
	s := mustSolver(t, singleStation(statespace.Delay, d), 2)
	got, err := s.TotalTime(2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, want, 1e-9, "E[max of 2 H2]")
}

// Same for Erlang-2: E[min] = ∫R(t)² dt with R(t) = e^{−µt}(1+µt):
// ∫ e^{−2µt}(1+µt)² dt = 1/(2µ) + 2µ/(4µ²)·... computed numerically
// here to keep the test independent of hand algebra.
func TestDelayMaxOfTwoErlang(t *testing.T) {
	d := phase.MustErlang(2, 2) // mean 1
	mu := 2.0
	// ∫₀^∞ [e^{−µt}(1+µt)]² dt
	f := func(tt float64) float64 {
		r := math.Exp(-mu*tt) * (1 + mu*tt)
		return r * r
	}
	var eMin float64
	const h = 1e-4
	for x := 0.0; x < 20; x += h {
		eMin += h * (f(x) + f(x+h)) / 2
	}
	want := 2*d.Mean() - eMin
	s := mustSolver(t, singleStation(statespace.Delay, d), 2)
	got, err := s.TotalTime(2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, got, want, 1e-6, "E[max of 2 Erlang-2]")
}

// centralCluster builds the paper's §5.4 example with sensible rates.
func centralCluster(k int, rdisk *phase.PH) *network.Network {
	q, p1, p2 := 0.1, 0.5, 0.5
	route := matrix.New(4, 4)
	route.Set(0, 1, p1*(1-q))
	route.Set(0, 2, p2*(1-q))
	route.Set(1, 0, 1)
	route.Set(2, 3, 1)
	route.Set(3, 0, 1)
	return &network.Network{
		Stations: []network.Station{
			{Name: "CPU", Kind: statespace.Delay, Service: phase.MustExpo(1 / 0.3)},
			{Name: "Disk", Kind: statespace.Delay, Service: phase.MustExpo(1 / 0.6)},
			{Name: "Comm", Kind: statespace.Queue, Service: phase.MustExpo(1 / 0.2)},
			{Name: "RDisk", Kind: statespace.Queue, Service: rdisk},
		},
		Route: route,
		Exit:  []float64{q, 0, 0, 0},
		Entry: []float64{1, 0, 0, 0},
	}
}

func TestSolveEpochCountAndMonotonicity(t *testing.T) {
	net := centralCluster(4, phase.MustExpoMean(1.0))
	s := mustSolver(t, net, 4)
	r, err := s.Solve(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Epochs) != 12 || len(r.Departures) != 12 {
		t.Fatalf("epochs %d, departures %d, want 12", len(r.Epochs), len(r.Departures))
	}
	for i := 1; i < 12; i++ {
		if r.Departures[i] <= r.Departures[i-1] {
			t.Fatalf("departure times not increasing at %d", i)
		}
	}
	var sum float64
	for _, e := range r.Epochs {
		sum += e
	}
	approx(t, r.TotalTime, sum, 1e-12, "TotalTime vs Σ epochs")
}

// N < K is served by a smaller effective level.
func TestSolveSmallWorkload(t *testing.T) {
	net := centralCluster(4, phase.MustExpoMean(1.0))
	s := mustSolver(t, net, 4)
	r, err := s.Solve(2)
	if err != nil {
		t.Fatal(err)
	}
	if r.K != 2 || len(r.Epochs) != 2 {
		t.Fatalf("K=%d epochs=%d, want 2/2", r.K, len(r.Epochs))
	}
	// And it must agree with a solver built for K=2.
	s2 := mustSolver(t, net, 2)
	want, err := s2.TotalTime(2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, r.TotalTime, want, 1e-10, "N<K total time")
}

func TestSolveRejectsBadN(t *testing.T) {
	s := mustSolver(t, singleStation(statespace.Queue, phase.MustExpo(1)), 1)
	if _, err := s.Solve(0); err == nil {
		t.Fatal("Solve(0) succeeded")
	}
}

// Depart keeps probability mass: Y_k is stochastic.
func TestDepartIsStochastic(t *testing.T) {
	net := centralCluster(3, phase.MustHyperExpFit(1, 10))
	s := mustSolver(t, net, 3)
	pi := s.EntryVector(3)
	for k := 3; k >= 1; k-- {
		if math.Abs(matrix.VecSum(pi)-1) > 1e-10 {
			t.Fatalf("level %d: distribution sums to %v", k, matrix.VecSum(pi))
		}
		if k > 1 {
			pi = s.Depart(k, pi)
		}
	}
}

func TestFeedIsStochastic(t *testing.T) {
	net := centralCluster(3, phase.MustHyperExpFit(1, 10))
	s := mustSolver(t, net, 3)
	pi := s.EntryVector(3)
	for i := 0; i < 10; i++ {
		pi = s.Feed(3, pi)
		if math.Abs(matrix.VecSum(pi)-1) > 1e-10 {
			t.Fatalf("feed %d: sums to %v", i, matrix.VecSum(pi))
		}
	}
}

// The transient epochs converge to the steady-state inter-departure
// time, and both steady-state methods agree.
func TestSteadyStateConvergence(t *testing.T) {
	net := centralCluster(4, phase.MustHyperExpFit(1.0, 5))
	s := mustSolver(t, net, 4)
	piD, tssD, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	piP, err := s.steadyPower(context.Background(), s.K)
	if err != nil {
		t.Fatal(err)
	}
	if matrix.VecMaxAbsDiff(piD, piP) > 1e-8 {
		t.Fatal("direct and power-iteration steady states disagree")
	}
	r, err := s.Solve(300)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch deep inside the feeding region ≈ t_ss.
	mid := r.Epochs[150]
	approx(t, mid, tssD, 1e-6, "mid-run epoch vs t_ss")
}

// Fixed point property: feeding the steady state returns it.
func TestSteadyStateIsFixedPoint(t *testing.T) {
	net := centralCluster(3, phase.MustHyperExpFit(1.0, 20))
	s := mustSolver(t, net, 3)
	pi, _, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	next := s.Feed(3, pi)
	if matrix.VecMaxAbsDiff(pi, next) > 1e-9 {
		t.Fatal("steady state is not a fixed point of Feed")
	}
}

// The approximation converges to the exact total time for large N
// (relative error vanishes) and is close even for moderate N.
func TestApproxTotalTime(t *testing.T) {
	net := centralCluster(4, phase.MustExpoMean(0.8))
	s := mustSolver(t, net, 4)
	for _, n := range []int{10, 50, 400} {
		exact, err := s.TotalTime(n)
		if err != nil {
			t.Fatal(err)
		}
		appr, err := s.ApproxTotalTime(n)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(appr-exact) / exact
		bound := 0.05
		if n >= 400 {
			bound = 0.002
		}
		if relErr > bound {
			t.Fatalf("N=%d: approximation error %v > %v (exact %v, approx %v)", n, relErr, bound, exact, appr)
		}
	}
	// N ≤ K falls back to exact.
	exact, _ := s.TotalTime(3)
	appr, _ := s.ApproxTotalTime(3)
	approx(t, appr, exact, 1e-12, "N<=K approx")
}

// Property: for random small exponential networks, E(T) is additive
// over the epochs, distributions stay normalized, and total time is
// monotone in N.
func TestSolveMonotoneInNProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net := randomNet(r)
		s, err := NewSolver(net, 1+r.Intn(3))
		if err != nil {
			return false
		}
		prev := 0.0
		for n := 1; n <= 6; n++ {
			tt, err := s.TotalTime(n)
			if err != nil || tt <= prev {
				return false
			}
			prev = tt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func randomNet(r *rand.Rand) *network.Network {
	m := 1 + r.Intn(3)
	stations := make([]network.Station, m)
	for i := range stations {
		kind := statespace.Delay
		if r.Intn(2) == 0 {
			kind = statespace.Queue
		}
		var svc *phase.PH
		switch r.Intn(3) {
		case 0:
			svc = phase.MustExpo(0.5 + 2*r.Float64())
		case 1:
			svc = phase.MustErlangMean(2, 0.5+r.Float64())
		default:
			svc = phase.MustHyperExpFit(0.5+r.Float64(), 1+4*r.Float64())
		}
		stations[i] = network.Station{Name: string(rune('A' + i)), Kind: kind, Service: svc}
	}
	route := matrix.New(m, m)
	exit := make([]float64, m)
	for i := 0; i < m; i++ {
		exit[i] = 0.25 + 0.5*r.Float64()
		remain := 1 - exit[i]
		w := make([]float64, m)
		var sum float64
		for j := range w {
			w[j] = r.Float64()
			sum += w[j]
		}
		for j := range w {
			route.Set(i, j, remain*w[j]/sum)
		}
	}
	entry := make([]float64, m)
	entry[r.Intn(m)] = 1
	return &network.Network{Stations: stations, Route: route, Exit: exit, Entry: entry}
}

// Property: first-epoch time equals the single-task mean when K=1,
// for any service distribution mix (the network is then a PH renewal
// process: E(T) = N·mean).
func TestK1RenewalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net := randomNet(r)
		s, err := NewSolver(net, 1)
		if err != nil {
			return false
		}
		mean := net.AsPH().Mean()
		n := 1 + r.Intn(6)
		tt, err := s.TotalTime(n)
		if err != nil {
			return false
		}
		return math.Abs(tt-float64(n)*mean) < 1e-8*math.Max(1, float64(n)*mean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTauPositive(t *testing.T) {
	net := centralCluster(4, phase.MustHyperExpFit(1, 50))
	s := mustSolver(t, net, 4)
	for k := 1; k <= 4; k++ {
		for i, v := range s.Tau(k) {
			if v <= 0 {
				t.Fatalf("τ'_%d[%d] = %v", k, i, v)
			}
		}
	}
}

func TestCheckLevelPanics(t *testing.T) {
	s := mustSolver(t, singleStation(statespace.Queue, phase.MustExpo(1)), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Tau(0) did not panic")
		}
	}()
	s.Tau(0)
}
