package core

import (
	"math"
	"sync"
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/workload"
)

// A Solver is immutable after construction: concurrent Solve calls
// must agree and not race (run with -race).
func TestSolverConcurrentUse(t *testing.T) {
	app := workload.Default(20)
	net, err := cluster.Central(4, app, cluster.Dists{Remote: cluster.WithCV2(5)}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSolver(t, net, 4)
	want, err := s.TotalTime(app.N)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.TotalTime(app.N)
			if err != nil {
				errs <- err
				return
			}
			if math.Abs(got-want) > 1e-12 {
				errs <- errMismatch{got, want}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errMismatch struct{ got, want float64 }

func (e errMismatch) Error() string { return "concurrent results diverged" }

// The pooled scratch workspaces must keep Solve, SolveSweep,
// SteadyState and TimeStationary independent when they run
// concurrently on one Solver (run with -race): each goroutine checks
// its answers against serially computed references.
func TestSolverMixedConcurrentUse(t *testing.T) {
	app := workload.Default(40)
	net, err := cluster.Central(4, app, cluster.Dists{Remote: cluster.WithCV2(5)}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSolver(t, net, 4)

	wantTotal, err := s.TotalTime(app.N)
	if err != nil {
		t.Fatal(err)
	}
	_, wantTss, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	wantTS, err := s.TimeStationary()
	if err != nil {
		t.Fatal(err)
	}
	sweepNs := []int{2, 4, 15, 40}
	wantSweep, err := s.TotalTimeSweep(sweepNs)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(4)
		go func() {
			defer wg.Done()
			got, err := s.TotalTime(app.N)
			if err != nil {
				errs <- err
			} else if got != wantTotal {
				errs <- errMismatch{got, wantTotal}
			}
		}()
		go func() {
			defer wg.Done()
			_, tss, err := s.SteadyState()
			if err != nil {
				errs <- err
			} else if math.Abs(tss-wantTss) > 1e-12*wantTss {
				errs <- errMismatch{tss, wantTss}
			}
		}()
		go func() {
			defer wg.Done()
			pi, err := s.TimeStationary()
			if err != nil {
				errs <- err
				return
			}
			for i := range pi {
				if math.Abs(pi[i]-wantTS[i]) > 1e-12 {
					errs <- errMismatch{pi[i], wantTS[i]}
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			totals, err := s.TotalTimeSweep(sweepNs)
			if err != nil {
				errs <- err
				return
			}
			for i := range totals {
				if totals[i] != wantSweep[i] {
					errs <- errMismatch{totals[i], wantSweep[i]}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// SparseSolver caches τ lazily; concurrent use must stay correct.
func TestSparseSolverConcurrentUse(t *testing.T) {
	app := workload.Default(15)
	net, err := cluster.Central(4, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSparseSolver(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	dense := mustSolver(t, net, 4)
	want, err := dense.TotalTime(app.N)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.TotalTime(app.N)
			if err != nil {
				errs <- err
				return
			}
			if math.Abs(got-want) > 1e-7*want {
				errs <- errMismatch{got, want}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
