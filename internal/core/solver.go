// Package core implements the paper's primary contribution: the
// transient, finite-workload solution of a closed queueing network
// (§4). A job of N iid tasks runs on a system that holds at most K of
// them; each departure is immediately replaced from the queue until
// the workload drains.
//
// For each population level k the solver factors A_k = I − P_k once
// and computes τ'_k = A_k⁻¹ M_k⁻¹ ε, the mean-time-to-next-departure
// vector. An epoch then costs one dot product (its mean length) and
// one left-solve (the post-departure state): π·Y_k = y·Q_k where
// y·A_k = π, because Y_k = V_k M_k Q_k and V_k = A_k⁻¹ M_k⁻¹.
//
// The same operator drives the three regimes the paper analyses:
//
//   - transient fill/feeding: π ← π·Y_K·R_K with epoch times
//     p_K (Y_K R_K)^i τ'_K,
//   - steady state: the fixed point π* = π*·Y_K·R_K with
//     t_ss = π*·τ'_K, which for exponential servers coincides with the
//     product-form (Jackson) solution,
//   - draining: after the queue empties, π steps down the levels
//     k = K, K−1, …, 1 through Y_k with epoch times π·τ'_k.
package core

import (
	"errors"
	"fmt"

	"finwl/internal/matrix"
	"finwl/internal/network"
)

// Solver holds a network's level matrices with their factorizations.
type Solver struct {
	Chain  *network.Chain
	K      int
	levels []*levelSolver // index k ∈ [1, K]
}

type levelSolver struct {
	lvl  *network.Level
	fact *matrix.LU // LU of A_k = I − P_k
	tau  []float64  // τ'_k
}

// NewSolver builds the level chain for populations 1..K and factors
// every level.
func NewSolver(net *network.Network, K int) (*Solver, error) {
	chain, err := network.NewChain(net, K)
	if err != nil {
		return nil, err
	}
	return NewSolverFromChain(chain)
}

// NewSolverFromChain factors an already-built chain.
func NewSolverFromChain(chain *network.Chain) (*Solver, error) {
	K := len(chain.Levels) - 1
	s := &Solver{Chain: chain, K: K, levels: make([]*levelSolver, K+1)}
	for k := 1; k <= K; k++ {
		lvl := chain.Levels[k]
		d := lvl.States.Count()
		a := matrix.Identity(d).Sub(lvl.P)
		fact, err := matrix.Factor(a)
		if err != nil {
			return nil, fmt.Errorf("core: level %d: I−P_k singular (tasks can avoid departing): %w", k, err)
		}
		minvEps := make([]float64, d)
		for i := 0; i < d; i++ {
			minvEps[i] = 1 / lvl.MDiag[i]
		}
		s.levels[k] = &levelSolver{lvl: lvl, fact: fact, tau: fact.Solve(minvEps)}
	}
	return s, nil
}

// Tau returns τ'_k, the mean time until the next departure from each
// state of level k. The returned slice is shared; do not modify.
func (s *Solver) Tau(k int) []float64 {
	s.checkLevel(k)
	return s.levels[k].tau
}

func (s *Solver) checkLevel(k int) {
	if k < 1 || k > s.K {
		panic(fmt.Sprintf("core: level %d outside [1, %d]", k, s.K))
	}
}

// EpochTime returns the mean time to the next departure given state
// distribution pi over level k: π·τ'_k (the paper's Ψ[V_k] when π is
// the entry vector).
func (s *Solver) EpochTime(k int, pi []float64) float64 {
	s.checkLevel(k)
	return matrix.Dot(pi, s.levels[k].tau)
}

// Depart returns the state distribution over level k−1 immediately
// after a departure from distribution pi over level k: π·Y_k, with
// Y_k = V_k M_k Q_k evaluated as a left-solve followed by the exit
// map.
func (s *Solver) Depart(k int, pi []float64) []float64 {
	s.checkLevel(k)
	ls := s.levels[k]
	y := ls.fact.SolveLeft(pi)
	return ls.lvl.Q.VecMul(y)
}

// Feed returns the state distribution after a departure immediately
// followed by a replacement arrival: π·Y_K·R_K.
func (s *Solver) Feed(k int, pi []float64) []float64 {
	s.checkLevel(k)
	return s.Chain.Levels[k].R.VecMul(s.Depart(k, pi))
}

// EntryVector returns p_k = p·R₂···R_k, the distribution right after
// the k-th task has entered an initially empty system.
func (s *Solver) EntryVector(k int) []float64 {
	s.checkLevel(k)
	return s.Chain.EntryVector(k)
}

// Result is the full transient solution for one workload.
type Result struct {
	N          int       // number of tasks
	K          int       // maximum concurrency used
	Epochs     []float64 // mean inter-departure time of each epoch, length N
	Departures []float64 // cumulative mean departure times, length N
	TotalTime  float64   // E(T) — mean time to complete all N tasks
}

// Solve computes the transient solution for a workload of N tasks.
// The first min(N, K) tasks enter at time zero; every departure is
// replaced while tasks remain queued; then the system drains. For
// N ≤ K the model is the paper's Case 1, otherwise Case 2.
func (s *Solver) Solve(n int) (*Result, error) {
	if n < 1 {
		return nil, errors.New("core: workload must have at least one task")
	}
	kStart := n
	if kStart > s.K {
		kStart = s.K
	}
	res := &Result{N: n, K: kStart, Epochs: make([]float64, 0, n), Departures: make([]float64, 0, n)}
	pi := s.Chain.EntryVector(kStart)
	queued := n - kStart
	var clock float64
	for k := kStart; k >= 1; {
		t := s.EpochTime(k, pi)
		clock += t
		res.Epochs = append(res.Epochs, t)
		res.Departures = append(res.Departures, clock)
		if queued > 0 {
			pi = s.Feed(k, pi)
			queued--
		} else {
			pi = s.Depart(k, pi)
			k--
		}
	}
	res.TotalTime = clock
	return res, nil
}

// TotalTime is a convenience wrapper returning only E(T) for N tasks.
func (s *Solver) TotalTime(n int) (float64, error) {
	r, err := s.Solve(n)
	if err != nil {
		return 0, err
	}
	return r.TotalTime, nil
}

// SteadyState solves π* = π*·Y_K·R_K, the fixed point of the feeding
// operator, and returns π* with the steady-state inter-departure time
// t_ss = π*·τ'_K (§6.1.2). For small levels it solves the linear
// system directly; otherwise it power-iterates the (cheap) operator
// form. The transient solution approaches t_ss per epoch as the
// workload grows, and for exponential servers t_ss matches the
// product-form solution.
func (s *Solver) SteadyState() (pi []float64, tss float64, err error) {
	k := s.K
	d := s.Chain.Levels[k].States.Count()
	if d <= 400 {
		pi, err = s.steadyDirect(k)
	} else {
		pi, err = s.steadyPower(k)
	}
	if err != nil {
		return nil, 0, err
	}
	return pi, s.EpochTime(k, pi), nil
}

// steadyDirect builds T = Y_K·R_K densely and solves the singular
// system πT = π with the normalization Σπ = 1 replacing one equation.
func (s *Solver) steadyDirect(k int) ([]float64, error) {
	d := s.Chain.Levels[k].States.Count()
	// Build T row by row: row i of T is e_i·Y_k·R_k.
	tmat := matrix.New(d, d)
	e := make([]float64, d)
	for i := 0; i < d; i++ {
		e[i] = 1
		row := s.Feed(k, e)
		e[i] = 0
		for j := 0; j < d; j++ {
			tmat.Set(i, j, row[j])
		}
	}
	// Solve π(T − I) = 0 with Σπ = 1: transpose to (Tᵀ − I)x = 0 and
	// overwrite the last equation with the normalization.
	a := tmat.Transpose().Sub(matrix.Identity(d))
	for j := 0; j < d; j++ {
		a.Set(d-1, j, 1)
	}
	b := make([]float64, d)
	b[d-1] = 1
	x, err := matrix.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("core: steady-state system singular: %w", err)
	}
	return x, nil
}

// steadyPower runs power iteration on the operator form of Y_K·R_K.
func (s *Solver) steadyPower(k int) ([]float64, error) {
	d := s.Chain.Levels[k].States.Count()
	pi := make([]float64, d)
	for i := range pi {
		pi[i] = 1 / float64(d)
	}
	const maxIter = 200000
	const tol = 1e-13
	for iter := 0; iter < maxIter; iter++ {
		next := s.Feed(k, pi)
		matrix.Normalize1(next) // guard against round-off drift
		if matrix.VecMaxAbsDiff(next, pi) < tol {
			return next, nil
		}
		pi = next
	}
	return nil, errors.New("core: steady-state power iteration did not converge")
}

// TimeStationary returns the time-stationary distribution of the
// feeding-region CTMC at level K — the generator M_K(P_K + Q_K·R_K − I)
// of the system while departures are still being replaced. This is
// NOT the same distribution as SteadyState's fixed point: that one is
// embedded at departure instants, while this one is weighted by the
// time spent in each state. Time averages (mean queue lengths,
// utilizations) must be computed here; for exponential networks they
// then coincide with MVA's, which the tests assert.
func (s *Solver) TimeStationary() ([]float64, error) {
	k := s.K
	lvl := s.Chain.Levels[k]
	d := lvl.States.Count()
	// ν = π·M solves the embedded jump chain ν = ν(P + Q·R); then
	// π ∝ ν·M⁻¹.
	nu := make([]float64, d)
	for i := range nu {
		nu[i] = 1 / float64(d)
	}
	const maxIter = 500000
	const tol = 1e-13
	for iter := 0; iter < maxIter; iter++ {
		next := lvl.P.VecMul(nu)
		hop := lvl.R.VecMul(lvl.Q.VecMul(nu))
		for i := range next {
			next[i] += hop[i]
		}
		matrix.Normalize1(next)
		if matrix.VecMaxAbsDiff(next, nu) < tol {
			nu = next
			break
		}
		nu = next
		if iter == maxIter-1 {
			return nil, errors.New("core: time-stationary iteration did not converge")
		}
	}
	pi := make([]float64, d)
	for i := range pi {
		pi[i] = nu[i] / lvl.MDiag[i]
	}
	return matrix.Normalize1(pi), nil
}

// ApproxTotalTime is the steady-state approximation of E(T) in the
// spirit of the paper's reference [17]: the N−K feeding epochs are
// costed at t_ss instead of being propagated individually, and the
// draining tail is propagated from the steady-state distribution.
// It trades the per-epoch transient for O(K) work independent of N.
func (s *Solver) ApproxTotalTime(n int) (float64, error) {
	if n <= s.K {
		// No feeding region to approximate; fall back to exact.
		return s.TotalTime(n)
	}
	piSS, tss, err := s.SteadyState()
	if err != nil {
		return 0, err
	}
	// First epoch from the true entry vector, remaining feeding epochs
	// at the steady-state rate.
	pK := s.Chain.EntryVector(s.K)
	total := s.EpochTime(s.K, pK) + float64(n-s.K)*tss
	// Drain from the steady-state distribution.
	pi := piSS
	for k := s.K; k >= 1; k-- {
		if k != s.K {
			total += s.EpochTime(k, pi)
		}
		pi = s.Depart(k, pi)
	}
	// The K-level epoch at steady state was already counted once in
	// the feeding sum; the loop above added draining epochs for
	// k = K−1 … 1 only.
	return total, nil
}
