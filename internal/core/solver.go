// Package core implements the paper's primary contribution: the
// transient, finite-workload solution of a closed queueing network
// (§4). A job of N iid tasks runs on a system that holds at most K of
// them; each departure is immediately replaced from the queue until
// the workload drains.
//
// For each population level k the solver factors A_k = I − P_k once
// and computes τ'_k = A_k⁻¹ M_k⁻¹ ε, the mean-time-to-next-departure
// vector. An epoch then costs one dot product (its mean length) and
// one left-solve (the post-departure state): π·Y_k = y·Q_k where
// y·A_k = π, because Y_k = V_k M_k Q_k and V_k = A_k⁻¹ M_k⁻¹.
//
// The same operator drives the three regimes the paper analyses:
//
//   - transient fill/feeding: π ← π·Y_K·R_K with epoch times
//     p_K (Y_K R_K)^i τ'_K,
//   - steady state: the fixed point π* = π*·Y_K·R_K with
//     t_ss = π*·τ'_K, which for exponential servers coincides with the
//     product-form (Jackson) solution,
//   - draining: after the queue empties, π steps down the levels
//     k = K, K−1, …, 1 through Y_k with epoch times π·τ'_k.
//
// Performance: level factorizations fan out over a worker pool at
// construction; the epoch loop runs on pooled scratch workspaces and
// the *Into matrix kernels, so the N epochs of Solve, the sweep pass
// of SolveSweep, and the power iterations perform zero allocations
// per iteration. Solvers are safe for concurrent use.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/par"
	"finwl/internal/sparse"
)

// finiteResult screens a scalar result boundary: a NaN/Inf mean time
// means the model fed the kernels something the validators could not
// see (e.g. a pathological but structurally valid chain), and must
// surface as a typed error instead of a silent garbage number.
func finiteResult(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("core: %s is %v: %w", name, v, check.ErrNumeric)
	}
	return nil
}

// Solver holds a network's level matrices with their factorizations.
type Solver struct {
	Chain  *network.Chain
	K      int
	levels []*levelSolver // index k ∈ [1, K]
	maxD   int            // largest level dimension
	ws     sync.Pool      // *workspace scratch, so solves never share state
}

// factorization is the per-level solve capability the epoch kernels
// need: right and left solves off one factorization of A_k = I − P_k,
// plus the condition estimate that gates admission. Both the sparse
// no-pivot M-matrix LU and the pivoted blocked dense LU satisfy it.
type factorization interface {
	Solve(b []float64) []float64
	SolveInto(dst, b []float64) []float64
	SolveLeftInto(dst, b []float64) []float64
	Cond1Est() float64
}

type levelSolver struct {
	lvl  *network.Level
	fact factorization // factorization of A_k = I − P_k
	tau  []float64     // τ'_k
}

// workspace is the per-solve scratch memory: every buffer is sized to
// the largest level, so one workspace serves a whole transient pass
// without reallocation. Workspaces are pooled on the Solver; a Solve,
// SolveSweep, SteadyState or TimeStationary call checks one out for
// its duration, which keeps concurrent calls from sharing state.
type workspace struct {
	y          []float64 // left-solve result inside departInto
	t          []float64 // post-departure vector inside feedInto
	cur, next  []float64 // ping-pong state distributions
	dcur, dnxt []float64 // drain-checkpoint distributions (SolveSweep)
}

// NewSolver builds the level chain for populations 1..K and factors
// every level.
func NewSolver(net *network.Network, K int) (*Solver, error) {
	return NewSolverCtx(context.Background(), net, K)
}

// NewSolverCtx is NewSolver under a context: both the chain
// construction and the per-level factorizations observe cancellation,
// surfacing it as a check.ErrCanceled-matching error.
func NewSolverCtx(ctx context.Context, net *network.Network, K int) (*Solver, error) {
	chain, err := network.NewChainCtx(ctx, net, K)
	if err != nil {
		return nil, err
	}
	return NewSolverFromChainCtx(ctx, chain)
}

// NewSolverFromChain factors an already-built chain. See
// NewSolverFromChainCtx.
func NewSolverFromChain(chain *network.Chain) (*Solver, error) {
	return NewSolverFromChainCtx(context.Background(), chain)
}

// NewSolverFromChainCtx factors an already-built chain under a
// context. The per-level factorizations are independent, so they run
// across a worker pool when the modeled work justifies it; results
// land in per-level slots, worker panics come back as wrapped errors,
// and a singular or numerically hopeless level reports a
// check.ErrSingular-matching error naming the level.
func NewSolverFromChainCtx(ctx context.Context, chain *network.Chain) (*Solver, error) {
	K := len(chain.Levels) - 1
	s := &Solver{Chain: chain, K: K, levels: make([]*levelSolver, K+1)}
	err := par.ForCost(ctx, K,
		func(i int) int64 {
			// Factorization cost scales with the level's d² accumulator
			// scans (sparse path) up to d³ (dense fallback); d² in
			// ForCost's tens-of-ns units is the conservative model.
			d := int64(chain.Levels[K-i].States.Count())
			if d > 1<<20 {
				return par.MaxCost
			}
			return d * d
		},
		func(i int) error {
			k := K - i // biggest level first, for load balance
			lvl := chain.Levels[k]
			d := lvl.States.Count()
			fact, err := factorLevel(k, lvl)
			if err != nil {
				return err
			}
			minvEps := make([]float64, d)
			for i := 0; i < d; i++ {
				minvEps[i] = 1 / lvl.MDiag[i]
			}
			s.levels[k] = &levelSolver{lvl: lvl, fact: fact, tau: fact.Solve(minvEps)}
			return nil
		})
	if err != nil {
		return nil, err
	}
	for k := 0; k <= K; k++ {
		if d := chain.Levels[k].States.Count(); d > s.maxD {
			s.maxD = d
		}
	}
	s.ws.New = func() any {
		return &workspace{
			y:    make([]float64, s.maxD),
			t:    make([]float64, s.maxD),
			cur:  make([]float64, s.maxD),
			next: make([]float64, s.maxD),
			dcur: make([]float64, s.maxD),
			dnxt: make([]float64, s.maxD),
		}
	}
	return s, nil
}

// sparseWorthwhile decides whether a level's A_k = I − P_k should be
// attempted with the sparse no-pivot LU: tiny systems are faster in
// the dense ladder's cache-friendly kernels, and a level whose P is
// already a quarter dense will only densify further under elimination.
func sparseWorthwhile(d, nnz int) bool {
	return d >= 16 && nnz*4 <= d*d
}

// factorLevel produces the level-k factorization, preferring the
// structured sparse elimination and falling back to the pivoted dense
// ladder whenever sparsity, stability, or conditioning runs out. The
// dense path owns error reporting, so the failure modes (and their
// typed errors and messages) are exactly the historical dense ones.
func factorLevel(k int, lvl *network.Level) (factorization, error) {
	span := mLevelFactor.Start()
	defer span.End()
	d := lvl.States.Count()
	if sparseWorthwhile(d, lvl.P.NNZ()) {
		if f, err := sparse.FactorIMinusP(lvl.P); err == nil {
			if f.Cond1Est() <= matrix.CondLimit {
				mSparseFactors.Inc()
				return f, nil
			}
		}
	}
	fact, err := matrix.Factor(lvl.P.IMinusDense())
	if err != nil {
		return nil, fmt.Errorf("core: level %d: I−P_k singular (tasks can avoid departing): %w", k, err)
	}
	if cond := fact.Cond1Est(); cond > matrix.CondLimit {
		return nil, fmt.Errorf("core: level %d: I−P_k has condition estimate %.3g (limit %.3g): %w",
			k, cond, matrix.CondLimit, check.ErrSingular)
	}
	mDenseFactors.Inc()
	return fact, nil
}

func (s *Solver) getWS() *workspace  { return s.ws.Get().(*workspace) }
func (s *Solver) putWS(w *workspace) { s.ws.Put(w) }

// d returns the state count at level k.
func (s *Solver) d(k int) int { return s.Chain.Levels[k].States.Count() }

// Tau returns a copy of τ'_k, the mean time until the next departure
// from each state of level k. The caller owns the returned slice.
func (s *Solver) Tau(k int) []float64 {
	s.checkLevel(k)
	return append([]float64(nil), s.levels[k].tau...)
}

func (s *Solver) checkLevel(k int) {
	if k < 1 || k > s.K {
		panic(fmt.Sprintf("core: level %d outside [1, %d]", k, s.K))
	}
}

// EpochTime returns the mean time to the next departure given state
// distribution pi over level k: π·τ'_k (the paper's Ψ[V_k] when π is
// the entry vector).
func (s *Solver) EpochTime(k int, pi []float64) float64 {
	s.checkLevel(k)
	return matrix.Dot(pi, s.levels[k].tau)
}

// departInto computes π·Y_k into dst (length D(k−1)) using y (length
// ≥ D(k)) as left-solve scratch. No allocations.
func (s *Solver) departInto(dst []float64, k int, pi []float64, y []float64) {
	ls := s.levels[k]
	yy := y[:len(pi)]
	ls.fact.SolveLeftInto(yy, pi)
	ls.lvl.Q.VecMulInto(dst, yy)
}

// feedInto computes π·Y_k·R_k into dst (length D(k)) using the
// workspace's y and t buffers. dst must not be ws.y or ws.t; it may
// be any other buffer, including one aliasing a previous pi.
func (s *Solver) feedInto(dst []float64, k int, pi []float64, ws *workspace) {
	lvl := s.Chain.Levels[k]
	dPrev := lvl.Q.Cols()
	s.departInto(ws.t[:dPrev], k, pi, ws.y)
	lvl.R.VecMulInto(dst, ws.t[:dPrev])
}

// Depart returns the state distribution over level k−1 immediately
// after a departure from distribution pi over level k: π·Y_k, with
// Y_k = V_k M_k Q_k evaluated as a left-solve followed by the exit
// map.
func (s *Solver) Depart(k int, pi []float64) []float64 {
	s.checkLevel(k)
	ws := s.getWS()
	defer s.putWS(ws)
	out := make([]float64, s.Chain.Levels[k].Q.Cols())
	s.departInto(out, k, pi, ws.y)
	return out
}

// Feed returns the state distribution after a departure immediately
// followed by a replacement arrival: π·Y_K·R_K.
func (s *Solver) Feed(k int, pi []float64) []float64 {
	s.checkLevel(k)
	ws := s.getWS()
	defer s.putWS(ws)
	out := make([]float64, s.d(k))
	s.feedInto(out, k, pi, ws)
	return out
}

// EntryVector returns p_k = p·R₂···R_k, the distribution right after
// the k-th task has entered an initially empty system.
func (s *Solver) EntryVector(k int) []float64 {
	s.checkLevel(k)
	return s.Chain.EntryVector(k)
}

// Result is the full transient solution for one workload.
type Result struct {
	N          int       // number of tasks
	K          int       // maximum concurrency used
	Epochs     []float64 // mean inter-departure time of each epoch, length N
	Departures []float64 // cumulative mean departure times, length N
	TotalTime  float64   // E(T) — mean time to complete all N tasks
}

// Solve computes the transient solution for a workload of N tasks.
// The first min(N, K) tasks enter at time zero; every departure is
// replaced while tasks remain queued; then the system drains. For
// N ≤ K the model is the paper's Case 1, otherwise Case 2. The epoch
// loop ping-pongs two workspace buffers, so its cost per epoch is one
// dot product, one left-solve and two vector-matrix products with no
// allocations.
func (s *Solver) Solve(n int) (*Result, error) {
	return s.SolveCtx(context.Background(), n)
}

// SolveCtx is Solve under a context: the epoch loop polls ctx once per
// epoch (a nil-check on a live context — the zero-allocation property
// of the loop is preserved) and returns a check.ErrCanceled-matching
// error as soon as cancellation is observed.
func (s *Solver) SolveCtx(ctx context.Context, n int) (*Result, error) {
	if err := check.Count("core: workload size", n, 1); err != nil {
		return nil, err
	}
	kStart := n
	if kStart > s.K {
		kStart = s.K
	}
	mSolves.Inc()
	res := &Result{N: n, K: kStart, Epochs: make([]float64, 0, n), Departures: make([]float64, 0, n)}
	ws := s.getWS()
	defer s.putWS(ws)
	cur, nxt := ws.cur, ws.next
	pi := cur[:s.d(kStart)]
	copy(pi, s.Chain.EntryVector(kStart))
	queued := n - kStart
	var clock float64
	for k := kStart; k >= 1; {
		if err := check.Canceled(ctx); err != nil {
			return nil, err
		}
		mEpochs.Inc()
		t := matrix.Dot(pi, s.levels[k].tau)
		clock += t
		res.Epochs = append(res.Epochs, t)
		res.Departures = append(res.Departures, clock)
		if queued > 0 {
			out := nxt[:len(pi)]
			s.feedInto(out, k, pi, ws)
			pi = out
			queued--
		} else {
			out := nxt[:s.d(k-1)]
			s.departInto(out, k, pi, ws.y)
			pi = out
			k--
		}
		cur, nxt = nxt, cur
	}
	res.TotalTime = clock
	if err := finiteResult("total time", clock); err != nil {
		return nil, err
	}
	return res, nil
}

// TotalTime is a convenience wrapper returning only E(T) for N tasks.
func (s *Solver) TotalTime(n int) (float64, error) {
	r, err := s.Solve(n)
	if err != nil {
		return 0, err
	}
	return r.TotalTime, nil
}

// SolveSweep computes the transient solution for every workload in ns
// in a single feeding pass. The feeding epochs of Solve(n) are a
// strict prefix of Solve(n′) for n ≤ n′ (both start from p_K and
// apply Y_K·R_K per epoch), so the sweep advances one level-K state
// distribution to each requested checkpoint and runs the K draining
// epochs from a copy — O(max nᵢ + K·len(ns)) linear solves instead of
// the O(Σ nᵢ) of repeated Solve calls. Workloads below K have no
// feeding region to share and are solved individually.
//
// Results are returned in the order of ns (which may be unsorted and
// may contain duplicates) and are identical to per-N Solve outputs:
// both paths run the same kernels in the same order.
func (s *Solver) SolveSweep(ns []int) ([]*Result, error) {
	return s.SolveSweepCtx(context.Background(), ns)
}

// SolveSweepCtx is SolveSweep under a context: cancellation is polled
// once per feeding epoch and once per drain checkpoint, so a canceled
// sweep returns a check.ErrCanceled-matching error promptly instead of
// finishing the pass.
func (s *Solver) SolveSweepCtx(ctx context.Context, ns []int) ([]*Result, error) {
	results := make([]*Result, len(ns))
	targets := make([]int, 0, len(ns)) // indices into ns with ns[i] ≥ K
	for i, n := range ns {
		if err := check.Count("core: workload size", n, 1); err != nil {
			return nil, err
		}
		if n < s.K {
			r, err := s.SolveCtx(ctx, n)
			if err != nil {
				return nil, err
			}
			results[i] = r
			continue
		}
		targets = append(targets, i)
	}
	if len(targets) == 0 {
		return results, nil
	}
	sort.Slice(targets, func(a, b int) bool { return ns[targets[a]] < ns[targets[b]] })

	ws := s.getWS()
	defer s.putWS(ws)
	K := s.K
	dK := s.d(K)
	cur, nxt := ws.cur, ws.next
	pi := cur[:dK]
	copy(pi, s.Chain.EntryVector(K))
	feeds := 0
	feedTimes := make([]float64, 0, ns[targets[len(targets)-1]]-K)
	for _, idx := range targets {
		n := ns[idx]
		// Advance the shared feeding pass to this workload's checkpoint.
		for feeds < n-K {
			if err := check.Canceled(ctx); err != nil {
				return nil, err
			}
			mEpochs.Inc()
			t := matrix.Dot(pi, s.levels[K].tau)
			feedTimes = append(feedTimes, t)
			out := nxt[:dK]
			s.feedInto(out, K, pi, ws)
			pi = out
			cur, nxt = nxt, cur
			feeds++
		}
		// Replay the shared feeding prefix into this result …
		mSweepCheckpoints.Inc()
		res := &Result{N: n, K: K, Epochs: make([]float64, 0, n), Departures: make([]float64, 0, n)}
		var clock float64
		for _, t := range feedTimes[:n-K] {
			clock += t
			res.Epochs = append(res.Epochs, t)
			res.Departures = append(res.Departures, clock)
		}
		// … then drain from a copy, leaving the pass ready to continue.
		dpi := ws.dcur[:dK]
		copy(dpi, pi)
		dcur, dnxt := ws.dcur, ws.dnxt
		for k := K; k >= 1; k-- {
			if err := check.Canceled(ctx); err != nil {
				return nil, err
			}
			mEpochs.Inc()
			t := matrix.Dot(dpi, s.levels[k].tau)
			clock += t
			res.Epochs = append(res.Epochs, t)
			res.Departures = append(res.Departures, clock)
			out := dnxt[:s.d(k-1)]
			s.departInto(out, k, dpi, ws.y)
			dpi = out
			dcur, dnxt = dnxt, dcur
		}
		res.TotalTime = clock
		if err := finiteResult("total time", clock); err != nil {
			return nil, err
		}
		results[idx] = res
	}
	return results, nil
}

// SolveSweepEach is SolveSweepEachCtx with a background context.
func (s *Solver) SolveSweepEach(ns []int) ([]*Result, []error) {
	return s.SolveSweepEachCtx(context.Background(), ns)
}

// SolveSweepEachCtx runs the same shared feeding pass as SolveSweepCtx
// but reports success or failure per workload instead of failing the
// whole sweep: an invalid ns[i] records a typed error at index i
// without touching its neighbours, a numerical failure at one drain
// checkpoint poisons only that checkpoint, and a cancellation (or any
// feeding-pass failure) fails the current and every remaining larger
// workload while already-completed checkpoints keep their results.
// This is the batch scheduler's contract: one bad job in a group must
// not discard the group's work. Both slices are parallel to ns;
// exactly one of results[i], errs[i] is non-nil for every i.
func (s *Solver) SolveSweepEachCtx(ctx context.Context, ns []int) ([]*Result, []error) {
	results := make([]*Result, len(ns))
	errs := make([]error, len(ns))
	targets := make([]int, 0, len(ns)) // indices into ns with ns[i] ≥ K
	for i, n := range ns {
		if err := check.Count("core: workload size", n, 1); err != nil {
			errs[i] = err
			continue
		}
		if n < s.K {
			results[i], errs[i] = s.SolveCtx(ctx, n)
			continue
		}
		targets = append(targets, i)
	}
	if len(targets) == 0 {
		return results, errs
	}
	sort.Slice(targets, func(a, b int) bool { return ns[targets[a]] < ns[targets[b]] })
	// failFrom marks the ti-th and all later (larger) targets failed:
	// once the shared feeding state is unusable nothing downstream of
	// it can be computed, but everything already checkpointed stands.
	failFrom := func(ti int, err error) {
		for _, idx := range targets[ti:] {
			errs[idx] = err
		}
	}

	ws := s.getWS()
	defer s.putWS(ws)
	K := s.K
	dK := s.d(K)
	cur, nxt := ws.cur, ws.next
	pi := cur[:dK]
	copy(pi, s.Chain.EntryVector(K))
	feeds := 0
	feedTimes := make([]float64, 0, ns[targets[len(targets)-1]]-K)
	for ti, idx := range targets {
		n := ns[idx]
		// Advance the shared feeding pass to this workload's checkpoint.
		for feeds < n-K {
			if err := check.Canceled(ctx); err != nil {
				failFrom(ti, err)
				return results, errs
			}
			mEpochs.Inc()
			t := matrix.Dot(pi, s.levels[K].tau)
			feedTimes = append(feedTimes, t)
			out := nxt[:dK]
			s.feedInto(out, K, pi, ws)
			pi = out
			cur, nxt = nxt, cur
			feeds++
		}
		// Replay the shared feeding prefix into this result …
		mSweepCheckpoints.Inc()
		res := &Result{N: n, K: K, Epochs: make([]float64, 0, n), Departures: make([]float64, 0, n)}
		var clock float64
		for _, t := range feedTimes[:n-K] {
			clock += t
			res.Epochs = append(res.Epochs, t)
			res.Departures = append(res.Departures, clock)
		}
		// … then drain from a copy, leaving the pass ready to continue.
		dpi := ws.dcur[:dK]
		copy(dpi, pi)
		dcur, dnxt := ws.dcur, ws.dnxt
		for k := K; k >= 1; k-- {
			if err := check.Canceled(ctx); err != nil {
				failFrom(ti, err)
				return results, errs
			}
			mEpochs.Inc()
			t := matrix.Dot(dpi, s.levels[k].tau)
			clock += t
			res.Epochs = append(res.Epochs, t)
			res.Departures = append(res.Departures, clock)
			out := dnxt[:s.d(k-1)]
			s.departInto(out, k, dpi, ws.y)
			dpi = out
			dcur, dnxt = dnxt, dcur
		}
		res.TotalTime = clock
		if err := finiteResult("total time", clock); err != nil {
			// The drain ran on copies; the feeding state is intact, so
			// only this checkpoint is poisoned.
			errs[idx] = err
			continue
		}
		results[idx] = res
	}
	return results, errs
}

// TotalTimeSweep returns E(T) for every workload in ns via one
// SolveSweep pass, in the order of ns.
func (s *Solver) TotalTimeSweep(ns []int) ([]float64, error) {
	rs, err := s.SolveSweep(ns)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.TotalTime
	}
	return out, nil
}

// SteadyState solves π* = π*·Y_K·R_K, the fixed point of the feeding
// operator, and returns π* with the steady-state inter-departure time
// t_ss = π*·τ'_K (§6.1.2). For small levels it solves the linear
// system directly; otherwise it power-iterates the (cheap) operator
// form. The transient solution approaches t_ss per epoch as the
// workload grows, and for exponential servers t_ss matches the
// product-form solution.
func (s *Solver) SteadyState() (pi []float64, tss float64, err error) {
	return s.SteadyStateCtx(context.Background())
}

// SteadyStateCtx is SteadyState under a context; the power-iteration
// path polls ctx periodically.
func (s *Solver) SteadyStateCtx(ctx context.Context) (pi []float64, tss float64, err error) {
	if err := check.Canceled(ctx); err != nil {
		return nil, 0, err
	}
	k := s.K
	d := s.d(k)
	if d <= 400 {
		pi, err = s.steadyDirect(k)
	} else {
		pi, err = s.steadyPower(ctx, k)
	}
	if err != nil {
		return nil, 0, err
	}
	tss = s.EpochTime(k, pi)
	if err := finiteResult("steady-state epoch time", tss); err != nil {
		return nil, 0, err
	}
	return pi, tss, nil
}

// steadyDirect builds T = Y_K·R_K densely and solves the singular
// system πT = π with the normalization Σπ = 1 replacing one equation.
func (s *Solver) steadyDirect(k int) ([]float64, error) {
	d := s.d(k)
	ws := s.getWS()
	// Build T row by row: row i of T is e_i·Y_k·R_k, written straight
	// into the matrix storage.
	tmat := matrix.New(d, d)
	e := ws.dcur[:d]
	for i := range e {
		e[i] = 0
	}
	for i := 0; i < d; i++ {
		e[i] = 1
		s.feedInto(tmat.RawRow(i), k, e, ws)
		e[i] = 0
	}
	s.putWS(ws)
	// Solve π(T − I) = 0 with Σπ = 1: transpose to (Tᵀ − I)x = 0 and
	// overwrite the last equation with the normalization.
	a := tmat.Transpose().Sub(matrix.Identity(d))
	for j := 0; j < d; j++ {
		a.Set(d-1, j, 1)
	}
	b := make([]float64, d)
	b[d-1] = 1
	x, err := matrix.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("core: steady-state system singular: %w", err)
	}
	return x, nil
}

// steadyPower runs power iteration on the operator form of Y_K·R_K,
// ping-ponging workspace buffers so each iteration is allocation-free.
func (s *Solver) steadyPower(ctx context.Context, k int) ([]float64, error) {
	d := s.d(k)
	ws := s.getWS()
	defer s.putWS(ws)
	pi := ws.cur[:d]
	for i := range pi {
		pi[i] = 1 / float64(d)
	}
	nxt := ws.next[:d]
	const maxIter = 200000
	const tol = 1e-13
	diff := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		if iter%1024 == 0 {
			if err := check.Canceled(ctx); err != nil {
				return nil, err
			}
		}
		mPowerIters.Inc()
		s.feedInto(nxt, k, pi, ws)
		matrix.Normalize1(nxt) // guard against round-off drift
		if diff = matrix.VecMaxAbsDiff(nxt, pi); diff < tol {
			return append([]float64(nil), nxt...), nil
		}
		pi, nxt = nxt, pi
	}
	return nil, fmt.Errorf("core: steady-state power iteration hit %d iterations (residual %.3g, tol %.3g): %w",
		maxIter, diff, tol, check.ErrNotConverged)
}

// TimeStationary returns the time-stationary distribution of the
// feeding-region CTMC at level K — the generator M_K(P_K + Q_K·R_K − I)
// of the system while departures are still being replaced. This is
// NOT the same distribution as SteadyState's fixed point: that one is
// embedded at departure instants, while this one is weighted by the
// time spent in each state. Time averages (mean queue lengths,
// utilizations) must be computed here; for exponential networks they
// then coincide with MVA's, which the tests assert.
func (s *Solver) TimeStationary() ([]float64, error) {
	return s.TimeStationaryCtx(context.Background())
}

// TimeStationaryCtx is TimeStationary under a context; the fixed-point
// iteration polls ctx periodically.
func (s *Solver) TimeStationaryCtx(ctx context.Context) ([]float64, error) {
	k := s.K
	lvl := s.Chain.Levels[k]
	d := lvl.States.Count()
	dPrev := lvl.Q.Cols()
	ws := s.getWS()
	defer s.putWS(ws)
	// ν = π·M solves the embedded jump chain ν = ν(P + Q·R); then
	// π ∝ ν·M⁻¹.
	nu := ws.cur[:d]
	for i := range nu {
		nu[i] = 1 / float64(d)
	}
	next := ws.next[:d]
	hop := ws.dcur[:d]
	const maxIter = 500000
	const tol = 1e-13
	converged := false
	diff := math.Inf(1)
	for iter := 0; iter < maxIter; iter++ {
		if iter%1024 == 0 {
			if err := check.Canceled(ctx); err != nil {
				return nil, err
			}
		}
		mPowerIters.Inc()
		lvl.P.VecMulInto(next, nu)
		lvl.Q.VecMulInto(ws.t[:dPrev], nu)
		lvl.R.VecMulInto(hop, ws.t[:dPrev])
		for i := range next {
			next[i] += hop[i]
		}
		matrix.Normalize1(next)
		if diff = matrix.VecMaxAbsDiff(next, nu); diff < tol {
			nu = next
			converged = true
			break
		}
		nu, next = next, nu
	}
	if !converged {
		return nil, fmt.Errorf("core: time-stationary iteration hit %d iterations (residual %.3g, tol %.3g): %w",
			maxIter, diff, tol, check.ErrNotConverged)
	}
	pi := make([]float64, d)
	for i := range pi {
		pi[i] = nu[i] / lvl.MDiag[i]
	}
	return matrix.Normalize1(pi), nil
}

// ApproxTotalTime is the steady-state approximation of E(T) in the
// spirit of the paper's reference [17]: the N−K feeding epochs are
// costed at t_ss instead of being propagated individually, and the
// draining tail is propagated from the steady-state distribution.
// It trades the per-epoch transient for O(K) work independent of N.
func (s *Solver) ApproxTotalTime(n int) (float64, error) {
	if n <= s.K {
		// No feeding region to approximate; fall back to exact.
		return s.TotalTime(n)
	}
	piSS, tss, err := s.SteadyState()
	if err != nil {
		return 0, err
	}
	// First epoch from the true entry vector, remaining feeding epochs
	// at the steady-state rate.
	pK := s.Chain.EntryVector(s.K)
	total := s.EpochTime(s.K, pK) + float64(n-s.K)*tss
	// Drain from the steady-state distribution.
	pi := piSS
	for k := s.K; k >= 1; k-- {
		if k != s.K {
			total += s.EpochTime(k, pi)
		}
		pi = s.Depart(k, pi)
	}
	// The K-level epoch at steady state was already counted once in
	// the feeding sum; the loop above added draining epochs for
	// k = K−1 … 1 only.
	return total, nil
}
