package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// twoStationNet is a small central-server-style network used by the
// boundary tests: a delay CPU feeding an FCFS disk.
func twoStationNet(pDisk float64) *network.Network {
	route := matrix.New(2, 2)
	route.Set(0, 1, pDisk)
	route.Set(1, 0, 1)
	return &network.Network{
		Stations: []network.Station{
			{Name: "cpu", Kind: statespace.Delay, Service: phase.MustExpo(2)},
			{Name: "disk", Kind: statespace.Queue, Service: phase.MustExpo(5)},
		},
		Route: route,
		Exit:  []float64{1 - pDisk, 0},
		Entry: []float64{1, 0},
	}
}

// K=1 is the degenerate population: no contention, every task walks
// the network alone, so E(T) is N times the solo response time.
func TestPopulationOne(t *testing.T) {
	s := mustSolver(t, twoStationNet(0.4), 1)
	solo, err := s.TotalTime(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 5, 9} {
		got, err := s.TotalTime(n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, got, float64(n)*solo, 1e-9, "E(T) at K=1")
	}
}

// N=K skips the feeding pass entirely: the run is pure drain, with
// exactly K epochs.
func TestWorkloadEqualsPopulation(t *testing.T) {
	const k = 4
	s := mustSolver(t, twoStationNet(0.4), k)
	r, err := s.Solve(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Epochs) != k {
		t.Fatalf("N=K run has %d epochs, want %d", len(r.Epochs), k)
	}
	// The sweep path must agree with the direct path at the boundary.
	sw, err := s.SolveSweep([]int{k})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sw[0].TotalTime, r.TotalTime, 1e-12, "sweep vs direct at N=K")
}

// A zero-probability routing edge must behave exactly like an absent
// edge: the disk branch with p=0 reduces to the CPU-only model.
func TestZeroProbabilityRouting(t *testing.T) {
	withEdge := mustSolver(t, twoStationNet(0), 3)
	solo := mustSolver(t, singleStation(statespace.Delay, phase.MustExpo(2)), 3)
	for _, n := range []int{1, 3, 8} {
		a, err := withEdge.TotalTime(n)
		if err != nil {
			t.Fatal(err)
		}
		b, err := solo.TotalTime(n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, a, b, 1e-9, "zero-probability edge")
	}
}

// A single-phase Erlang is exactly an exponential; the solver must not
// care which constructor produced the distribution.
func TestSinglePhaseErlang(t *testing.T) {
	erl, err := phase.ErlangMean(1, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	a := mustSolver(t, singleStation(statespace.Queue, erl), 3)
	b := mustSolver(t, singleStation(statespace.Queue, phase.MustExpo(1/0.7)), 3)
	ra, err := a.Solve(6)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Solve(6)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ra.TotalTime, rb.TotalTime, 1e-9, "Erlang-1 vs Expo")
}

// SolveSweep on an empty grid is a no-op, and on a singleton grid it
// must agree with Solve.
func TestSolveSweepEmptyAndSingleton(t *testing.T) {
	s := mustSolver(t, twoStationNet(0.4), 3)
	empty, err := s.SolveSweep(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("empty sweep returned %d results", len(empty))
	}
	one, err := s.SolveSweep([]int{7})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := s.Solve(7)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, one[0].TotalTime, direct.TotalTime, 1e-12, "singleton sweep vs direct")
}

// A canceled context must surface as check.ErrCanceled (and as
// context.Canceled) from every solve entry point, promptly.
func TestSolveCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := mustSolver(t, twoStationNet(0.4), 3)

	if _, err := s.SolveCtx(ctx, 50); !errors.Is(err, check.ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx: %v, want ErrCanceled matching context.Canceled", err)
	}
	if _, err := s.SolveSweepCtx(ctx, []int{10, 50}); !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("SolveSweepCtx: %v, want ErrCanceled", err)
	}
	if _, _, err := s.SteadyStateCtx(ctx); !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("SteadyStateCtx: %v, want ErrCanceled", err)
	}
	if _, err := NewSolverCtx(ctx, twoStationNet(0.4), 3); !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("NewSolverCtx: %v, want ErrCanceled", err)
	}
}

// An expired deadline matches both check.ErrCanceled and
// context.DeadlineExceeded, so callers can branch on either.
func TestSolveDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	s := mustSolver(t, twoStationNet(0.4), 3)
	_, err := s.SolveSweepCtx(ctx, []int{40})
	if !errors.Is(err, check.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want ErrCanceled matching DeadlineExceeded", err)
	}
}

// The sparse solver honours the same boundaries and cancellation
// contract as the dense one.
func TestSparseBoundariesAndCancel(t *testing.T) {
	net := twoStationNet(0.4)
	s, err := NewSparseSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	dense := mustSolver(t, net, 3)
	for _, n := range []int{1, 3, 7} {
		rs, err := s.Solve(n)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := dense.Solve(n)
		if err != nil {
			t.Fatal(err)
		}
		approx(t, rs.TotalTime, rd.TotalTime, 1e-8, "sparse vs dense")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SolveCtx(ctx, 50); !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("sparse SolveCtx: %v, want ErrCanceled", err)
	}
}
