package core

import (
	"math"
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/matrix"
	"finwl/internal/phase"
	"finwl/internal/productform"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

func TestRegionsThreePhases(t *testing.T) {
	app := workload.Default(40)
	net, err := cluster.Central(5, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSolver(t, net, 5)
	res, err := s.Solve(app.N)
	if err != nil {
		t.Fatal(err)
	}
	reg := res.Regions(0.01)
	if reg.FillEpochs == 0 || reg.DrainEpochs == 0 || reg.SteadyEpochs == 0 {
		t.Fatalf("expected all three regions, got %+v", reg)
	}
	if reg.FillEpochs+reg.DrainEpochs+reg.SteadyEpochs != app.N {
		t.Fatalf("regions don't partition the epochs: %+v", reg)
	}
	// The steady value should match the fixed point.
	_, tss, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(reg.SteadyValue-tss)/tss > 0.01 {
		t.Fatalf("plateau %v vs t_ss %v", reg.SteadyValue, tss)
	}
	// A bigger workload spends a larger fraction of its life at steady
	// state.
	res2, err := s.Solve(200)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Regions(0.01).SteadyTimeFrac <= reg.SteadyTimeFrac {
		t.Fatal("steady fraction should grow with N")
	}
}

func TestRegionsTinyWorkload(t *testing.T) {
	net := singleStation(statespace.Queue, phase.MustExpo(1))
	s := mustSolver(t, net, 1)
	res, err := s.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	reg := res.Regions(0.05)
	if reg.FillEpochs+reg.DrainEpochs+reg.SteadyEpochs != 1 {
		t.Fatalf("single epoch should partition: %+v", reg)
	}
}

func TestOccupancyConservation(t *testing.T) {
	app := workload.Default(10)
	net, err := cluster.Central(4, app, cluster.Dists{Remote: cluster.WithCV2(10)}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSolver(t, net, 4)
	for k := 1; k <= 4; k++ {
		pi := s.EntryVector(k)
		occ := s.Occupancy(k, pi)
		if math.Abs(matrix.VecSum(occ)-float64(k)) > 1e-9 {
			t.Fatalf("level %d: occupancy sums to %v", k, matrix.VecSum(occ))
		}
	}
	// Right after entry all tasks sit at the CPU.
	occ := s.Occupancy(4, s.EntryVector(4))
	if math.Abs(occ[0]-4) > 1e-9 {
		t.Fatalf("entry occupancy = %v, want all at CPU", occ)
	}
}

// Time-stationary occupancy for an exponential network must match
// MVA's mean queue lengths — and must differ from the
// departure-embedded fixed point, which weights states by departures
// rather than by time.
func TestOccupancyMatchesMVA(t *testing.T) {
	app := workload.Default(10)
	net, err := cluster.Central(4, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := mustSolver(t, net, 4)
	piTime, err := s.TimeStationary()
	if err != nil {
		t.Fatal(err)
	}
	occ := s.Occupancy(4, piTime)
	pfm, err := productform.FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	mva := pfm.MVA(4)
	for i := range occ {
		if math.Abs(occ[i]-mva.QueueLen[i]) > 1e-6*math.Max(1, mva.QueueLen[i]) {
			t.Fatalf("station %d: occupancy %v vs MVA %v", i, occ[i], mva.QueueLen[i])
		}
	}
	piEmb, _, err := s.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	embOcc := s.Occupancy(4, piEmb)
	if math.Abs(embOcc[0]-occ[0]) < 1e-6 {
		t.Fatal("embedded and time-stationary occupancies should differ")
	}
}

func TestBusyServers(t *testing.T) {
	// Two-station multi network: busy servers bounded by the server
	// count and by occupancy.
	net := multiNet(2, 1.5, 1)
	s := mustSolver(t, net, 4)
	pi, err := s.TimeStationary()
	if err != nil {
		t.Fatal(err)
	}
	busy := s.BusyServers(4, pi)
	occ := s.Occupancy(4, pi)
	if busy[1] > 2+1e-12 {
		t.Fatalf("multi station busy %v exceeds 2 servers", busy[1])
	}
	if busy[1] > occ[1]+1e-12 {
		t.Fatal("busy servers cannot exceed occupancy")
	}
	// Delay station: every customer is in service.
	if math.Abs(busy[0]-occ[0]) > 1e-12 {
		t.Fatal("delay station busy != occupancy")
	}
	// Steady-state utilization matches Buzen throughput × demand.
	pf, err := productform.FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	x := pf.ThroughputBuzen(4)
	visits, err := net.VisitRatios()
	if err != nil {
		t.Fatal(err)
	}
	wantUtil := x * visits[1] * net.Stations[1].Service.Mean() // busy servers = X·v·s
	if math.Abs(busy[1]-wantUtil) > 1e-6*math.Max(1, wantUtil) {
		t.Fatalf("busy servers %v vs X·v·s %v", busy[1], wantUtil)
	}
}
