package core

import (
	"fmt"
	"math"

	"finwl/internal/statespace"
)

// Regions locates the paper's three operating regions in a transient
// solution: the fill transient (epochs still moving toward the
// steady value), the steady feeding region, and the draining tail.
type Regions struct {
	// FillEpochs is the number of leading epochs before the series
	// settles within tol of the steady value.
	FillEpochs int
	// DrainEpochs is the number of trailing epochs after the series
	// leaves the steady value again.
	DrainEpochs int
	// SteadyEpochs is what remains in the middle.
	SteadyEpochs int
	// SteadyValue is the plateau inter-departure time used as the
	// reference.
	SteadyValue float64
	// SteadyTimeFrac is the fraction of E(T) spent in the steady
	// region — the paper's criterion for when the product-form
	// solution is a safe approximation.
	SteadyTimeFrac float64
}

// Regions analyses the epoch series with relative tolerance tol
// (e.g. 0.01). For workloads too small to develop a plateau the
// steady region may be empty.
func (r *Result) Regions(tol float64) Regions {
	n := len(r.Epochs)
	if n == 0 {
		return Regions{}
	}
	// Reference plateau: the epoch just before draining begins, which
	// is the most-converged feeding epoch.
	plateauIdx := n - r.K
	if plateauIdx < 0 {
		plateauIdx = 0
	}
	if plateauIdx > 0 {
		plateauIdx-- // last feeding epoch
	}
	steady := r.Epochs[plateauIdx]
	near := func(v float64) bool { return math.Abs(v-steady) <= tol*steady }

	fill := 0
	for fill < n && !near(r.Epochs[fill]) {
		fill++
	}
	drain := 0
	for drain < n-fill && !near(r.Epochs[n-1-drain]) {
		drain++
	}
	regions := Regions{
		FillEpochs:   fill,
		DrainEpochs:  drain,
		SteadyEpochs: n - fill - drain,
		SteadyValue:  steady,
	}
	var steadyTime float64
	for i := fill; i < n-drain; i++ {
		steadyTime += r.Epochs[i]
	}
	if r.TotalTime > 0 {
		regions.SteadyTimeFrac = steadyTime / r.TotalTime
	}
	return regions
}

// Occupancy returns the expected number of customers at each station
// under the level-k state distribution pi. Summed over stations it
// recovers k — a conservation check the tests rely on. Evaluated at
// TimeStationary it gives the mean queue lengths (matching MVA for
// exponential networks); evaluated at SteadyState's fixed point it
// gives the departure-embedded view instead.
func (s *Solver) Occupancy(k int, pi []float64) []float64 {
	s.checkLevel(k)
	lvl := s.Chain.Levels[k]
	space := s.Chain.Space
	if len(pi) != lvl.States.Count() {
		panic(fmt.Sprintf("core: occupancy distribution length %d, want %d", len(pi), lvl.States.Count()))
	}
	out := make([]float64, space.Stations())
	for i, p := range pi {
		if p == 0 {
			continue
		}
		state := lvl.States.State(i)
		for st := 0; st < space.Stations(); st++ {
			out[st] += p * float64(space.CustomersAt(state, st))
		}
	}
	return out
}

// BusyServers returns the expected number of busy servers per station
// under the level-k distribution pi: all customers at a delay
// station, min(1, n) at a queue, min(c, n) at a multi-server station.
// Dividing a queue station's value by 1 (or a multi station's by c)
// gives its utilization.
func (s *Solver) BusyServers(k int, pi []float64) []float64 {
	s.checkLevel(k)
	lvl := s.Chain.Levels[k]
	space := s.Chain.Space
	out := make([]float64, space.Stations())
	for i, p := range pi {
		if p == 0 {
			continue
		}
		state := lvl.States.State(i)
		for st := 0; st < space.Stations(); st++ {
			n := space.CustomersAt(state, st)
			busy := n
			switch space.Shape(st).Kind {
			case statespace.Queue:
				if busy > 1 {
					busy = 1
				}
			case statespace.Multi:
				if c := space.Shape(st).Servers; busy > c {
					busy = c
				}
			}
			out[st] += p * float64(busy)
		}
	}
	return out
}
