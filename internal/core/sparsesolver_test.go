package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"finwl/internal/cluster"
	"finwl/internal/phase"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

// The sparse solver must reproduce the dense solver exactly (both are
// exact methods; only the linear algebra differs).
func TestSparseMatchesDenseCentral(t *testing.T) {
	app := workload.Default(15)
	net, err := cluster.Central(4, app, cluster.Dists{
		Remote: cluster.WithCV2(10),
		CPU:    cluster.ErlangStages(2),
	}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense := mustSolver(t, net, 4)
	sp, err := NewSparseSolver(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	dres, err := dense.Solve(app.N)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sp.Solve(app.N)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dres.Epochs {
		approx(t, sres.Epochs[i], dres.Epochs[i], 1e-8, "sparse epoch")
	}
	approx(t, sres.TotalTime, dres.TotalTime, 1e-9, "sparse total")
}

func TestSparseSteadyStateMatchesDense(t *testing.T) {
	app := workload.Default(10)
	net, err := cluster.Central(4, app, cluster.Dists{Remote: cluster.WithCV2(5)}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense := mustSolver(t, net, 4)
	_, dTss, err := dense.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseSolver(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, sTss, err := sp.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sTss, dTss, 1e-7, "sparse t_ss")
}

// Property: dense and sparse agree on random small networks.
func TestSparseMatchesDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		net := randomNet(r)
		k := 1 + r.Intn(3)
		dense, err := NewSolver(net, k)
		if err != nil {
			return false
		}
		sp, err := NewSparseSolver(net, k)
		if err != nil {
			return false
		}
		n := k + r.Intn(5)
		dTotal, err := dense.TotalTime(n)
		if err != nil {
			return false
		}
		sTotal, err := sp.TotalTime(n)
		if err != nil {
			return false
		}
		return math.Abs(dTotal-sTotal) < 1e-7*math.Max(1, dTotal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// The sparse path handles a distributed cluster whose top level has
// thousands of states; sanity-check against the single-queue bound
// and monotonicity rather than the (infeasible) dense path.
func TestSparseLargeDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("large state space in -short mode")
	}
	app := workload.Default(12)
	k := 6
	net, err := cluster.Distributed(k, app, cluster.Dists{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseSolver(net, k)
	if err != nil {
		t.Fatal(err)
	}
	// D(6) for 8 stations = C(13,6) = 1716; more with bigger k.
	if d := sp.Chain.D(k); d != 1716 {
		t.Fatalf("D(%d) = %d, want 1716", k, d)
	}
	total, err := sp.TotalTime(app.N)
	if err != nil {
		t.Fatal(err)
	}
	// The job cannot beat perfect parallelism over its service time,
	// nor be slower than fully serial execution.
	lower := app.SingleTaskTime() * float64(app.N) / float64(k)
	upper := app.SingleTaskTime() * float64(app.N)
	if total < lower || total > upper {
		t.Fatalf("E(T) = %v outside [%v, %v]", total, lower, upper)
	}
}

func TestSparseSingleQueueSequential(t *testing.T) {
	svc := phase.MustHyperExpFit(2, 6)
	net := singleStation(statespace.Queue, svc)
	net.Stations[0].Name = "q"
	sp, err := NewSparseSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	total, err := sp.TotalTime(7)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, total, 7*svc.Mean(), 1e-8, "sparse sequential queue")
}

func TestSparseRejectsBadInput(t *testing.T) {
	net := singleStation(statespace.Queue, phase.MustExpo(1))
	sp, err := NewSparseSolver(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Solve(0); err == nil {
		t.Fatal("Solve(0) succeeded")
	}
	if _, err := NewSparseSolver(net, 0); err == nil {
		t.Fatal("NewSparseSolver with K=0 succeeded")
	}
}
