package core

import (
	"context"
	"fmt"
	"sync"

	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/sparse"
)

// SparseSolver is the large-state-space counterpart of Solver: the
// same transient model evaluated over CSR level matrices with
// Jacobi-preconditioned BiCGSTAB solves instead of dense LU. It makes
// distributed clusters with tens of thousands of states tractable —
// the dense path is O(D³) per level, the sparse path O(nnz·iters) per
// epoch.
type SparseSolver struct {
	Chain *network.SparseChain
	K     int
	Opts  sparse.Options

	mu   sync.Mutex  // guards taus; solves may run concurrently
	taus [][]float64 // τ'_k per level, computed lazily
}

// NewSparseSolver builds the CSR chain for populations 1..K.
func NewSparseSolver(net *network.Network, k int) (*SparseSolver, error) {
	return NewSparseSolverCtx(context.Background(), net, k)
}

// NewSparseSolverCtx is NewSparseSolver under a context: the chain
// construction observes cancellation.
func NewSparseSolverCtx(ctx context.Context, net *network.Network, k int) (*SparseSolver, error) {
	chain, err := network.NewSparseChainCtx(ctx, net, k)
	if err != nil {
		return nil, err
	}
	return NewSparseSolverFromChain(chain), nil
}

// NewSparseSolverFromChain wraps an existing sparse chain.
func NewSparseSolverFromChain(chain *network.SparseChain) *SparseSolver {
	k := len(chain.Levels) - 1
	return &SparseSolver{Chain: chain, K: k, taus: make([][]float64, k+1)}
}

func (s *SparseSolver) checkLevel(k int) {
	if k < 1 || k > s.K {
		panic(fmt.Sprintf("core: level %d outside [1, %d]", k, s.K))
	}
}

// Tau returns a copy of τ'_k, solving (I−P_k)·τ = M_k⁻¹·ε on first
// use. The caller owns the returned slice — the same contract as
// Solver.Tau. It is safe for concurrent use.
func (s *SparseSolver) Tau(k int) ([]float64, error) {
	tau, err := s.tauShared(k)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), tau...), nil
}

// tauShared returns the mutex-guarded cached τ'_k without copying;
// internal callers treat it as read-only.
func (s *SparseSolver) tauShared(k int) ([]float64, error) {
	s.checkLevel(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.taus[k] != nil {
		return s.taus[k], nil
	}
	lvl := s.Chain.Levels[k]
	b := make([]float64, len(lvl.MDiag))
	for i, m := range lvl.MDiag {
		b[i] = 1 / m
	}
	tau, err := sparse.SolveIMinusP(lvl.P, b, false, s.Opts)
	if err != nil {
		return nil, fmt.Errorf("core: τ'_%d solve: %w", k, err)
	}
	s.taus[k] = tau
	return tau, nil
}

// EpochTime returns π·τ'_k.
func (s *SparseSolver) EpochTime(k int, pi []float64) (float64, error) {
	tau, err := s.tauShared(k)
	if err != nil {
		return 0, err
	}
	return matrix.Dot(pi, tau), nil
}

// Depart returns π·Y_k = y·Q_k with y·(I−P_k) = π.
func (s *SparseSolver) Depart(k int, pi []float64) ([]float64, error) {
	s.checkLevel(k)
	lvl := s.Chain.Levels[k]
	y, err := sparse.SolveIMinusP(lvl.P, pi, true, s.Opts)
	if err != nil {
		return nil, fmt.Errorf("core: departure solve at level %d: %w", k, err)
	}
	return lvl.Q.VecMul(y), nil
}

// Feed returns π·Y_k·R_k.
func (s *SparseSolver) Feed(k int, pi []float64) ([]float64, error) {
	dropped, err := s.Depart(k, pi)
	if err != nil {
		return nil, err
	}
	return s.Chain.Levels[k].R.VecMul(dropped), nil
}

// Solve computes the transient solution for n tasks, mirroring
// Solver.Solve.
func (s *SparseSolver) Solve(n int) (*Result, error) {
	return s.SolveCtx(context.Background(), n)
}

// SolveCtx is Solve under a context: cancellation is polled once per
// epoch, which bounds the latency of a cancel by one sparse solve.
func (s *SparseSolver) SolveCtx(ctx context.Context, n int) (*Result, error) {
	if err := check.Count("core: workload size", n, 1); err != nil {
		return nil, err
	}
	kStart := n
	if kStart > s.K {
		kStart = s.K
	}
	res := &Result{N: n, K: kStart, Epochs: make([]float64, 0, n), Departures: make([]float64, 0, n)}
	pi := s.Chain.EntryVector(kStart)
	queued := n - kStart
	var clock float64
	for k := kStart; k >= 1; {
		if err := check.Canceled(ctx); err != nil {
			return nil, err
		}
		t, err := s.EpochTime(k, pi)
		if err != nil {
			return nil, err
		}
		clock += t
		res.Epochs = append(res.Epochs, t)
		res.Departures = append(res.Departures, clock)
		if queued > 0 {
			pi, err = s.Feed(k, pi)
			queued--
		} else {
			pi, err = s.Depart(k, pi)
			k--
		}
		if err != nil {
			return nil, err
		}
	}
	res.TotalTime = clock
	if err := finiteResult("total time", clock); err != nil {
		return nil, err
	}
	return res, nil
}

// TotalTime returns E(T) for n tasks.
func (s *SparseSolver) TotalTime(n int) (float64, error) {
	r, err := s.Solve(n)
	if err != nil {
		return 0, err
	}
	return r.TotalTime, nil
}

// SteadyState power-iterates the feeding operator to its fixed point.
func (s *SparseSolver) SteadyState() (pi []float64, tss float64, err error) {
	return s.SteadyStateCtx(context.Background())
}

// SteadyStateCtx is SteadyState under a context; cancellation is
// polled once per power iteration.
func (s *SparseSolver) SteadyStateCtx(ctx context.Context) (pi []float64, tss float64, err error) {
	k := s.K
	d := s.Chain.Levels[k].States.Count()
	pi = make([]float64, d)
	for i := range pi {
		pi[i] = 1 / float64(d)
	}
	const maxIter = 200000
	const tol = 1e-12
	diff := 1.0
	for iter := 0; iter < maxIter; iter++ {
		if err := check.Canceled(ctx); err != nil {
			return nil, 0, err
		}
		next, err := s.Feed(k, pi)
		if err != nil {
			return nil, 0, err
		}
		matrix.Normalize1(next)
		if diff = matrix.VecMaxAbsDiff(next, pi); diff < tol {
			t, err := s.EpochTime(k, next)
			if err != nil {
				return nil, 0, err
			}
			if err := finiteResult("steady-state epoch time", t); err != nil {
				return nil, 0, err
			}
			return next, t, nil
		}
		pi = next
	}
	return nil, 0, fmt.Errorf("core: sparse steady-state iteration hit %d iterations (residual %.3g, tol %.3g): %w",
		maxIter, diff, tol, check.ErrNotConverged)
}
