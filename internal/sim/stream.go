// Stream simulation: the discrete-event twin of internal/stream.
// Jobs of JobTasks tasks arrive while earlier ones drain — by a
// phase-type renewal process (open mode) or from a finite pool of
// customers with phase-type think times (closed mode). The sampler
// draws from exactly the laws the solver embeds (the same PH objects,
// the same FIFO admission and FIFO job attribution), so solver vs sim
// discrepancies measure implementation error, not model distance.

package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"finwl/internal/check"
	"finwl/internal/network"
	"finwl/internal/par"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// StreamConfig describes one job-stream scenario; the fields mirror
// stream.Config with simulation controls added.
type StreamConfig struct {
	Net      *network.Network
	K        int // admission cap
	JobTasks int // tasks per job

	// Open mode: Jobs arrive by a renewal process with law Arrival,
	// the first at t = 0.
	Jobs    int
	Arrival *phase.PH

	// Closed mode: Customers cycle submit → drain → think.
	Customers int
	Think     *phase.PH

	Probes    []float64 // times at which tasks-in-system is recorded
	Seed      int64
	MaxEvents int // 0 = unlimited
}

// StreamResult is one replication's outcome.
type StreamResult struct {
	TasksAt []float64 // tasks in system at each probe time
	Drain   float64   // open mode: time of the last departure
}

// streamEvent kinds.
const (
	evService = iota
	evArrival
	evThink
)

type streamEvent struct {
	time    float64
	seq     int
	kind    int
	task    int
	station int
}

type streamHeap []streamEvent

func (h streamHeap) Len() int { return len(h) }
func (h streamHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h streamHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *streamHeap) Push(x interface{}) { *h = append(*h, x.(streamEvent)) }
func (h *streamHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

func (cfg *StreamConfig) validate() error {
	if cfg.Net == nil {
		return check.Invalid("sim: stream: nil network")
	}
	if err := cfg.Net.Validate(); err != nil {
		return err
	}
	if cfg.K < 1 || cfg.JobTasks < 1 {
		return check.Invalid("sim: stream: K=%d JobTasks=%d, want both >= 1", cfg.K, cfg.JobTasks)
	}
	open := cfg.Jobs > 0 || cfg.Arrival != nil
	closed := cfg.Customers > 0 || cfg.Think != nil
	if open == closed {
		return check.Invalid("sim: stream: configure exactly one of open (Jobs + Arrival) and closed (Customers + Think) mode")
	}
	if open {
		if cfg.Jobs < 1 || cfg.Arrival == nil {
			return check.Invalid("sim: stream: open mode needs Jobs >= 1 and an Arrival law")
		}
		return cfg.Arrival.Validate()
	}
	if cfg.Customers < 1 || cfg.Think == nil {
		return check.Invalid("sim: stream: closed mode needs Customers >= 1 and a Think law")
	}
	return cfg.Think.Validate()
}

// RunStream simulates one replication.
func RunStream(cfg StreamConfig) (*StreamResult, error) {
	return RunStreamCtx(context.Background(), cfg)
}

// RunStreamCtx is RunStream under a context, polled every
// cancelCheckInterval events.
func RunStreamCtx(ctx context.Context, cfg StreamConfig) (*StreamResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	open := cfg.Jobs > 0
	net := cfg.Net
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := len(net.Stations)

	var (
		events   streamHeap
		seq      int
		now      float64
		queues   = make([][]int, m)
		busy     = make([]int, m)
		active   int // tasks inside the network
		backlog  int // tasks arrived but not yet admitted
		inSystem int
		departed int
		taskID   int
		arrived  int   // open: jobs arrived so far
		oldest   []int // closed: FIFO remaining-task counts per outstanding job
	)
	res := &StreamResult{TasksAt: make([]float64, len(cfg.Probes))}
	probeIdx := 0

	servers := func(st int) int {
		if net.Stations[st].Kind == statespace.Multi {
			return net.Stations[st].Servers
		}
		return 1
	}
	schedule := func(task, st int) {
		seq++
		heap.Push(&events, streamEvent{
			time: now + net.Stations[st].Service.Sample(rng),
			seq:  seq, kind: evService, task: task, station: st,
		})
	}
	arrive := func(task, st int) {
		switch net.Stations[st].Kind {
		case statespace.Delay:
			schedule(task, st)
		case statespace.Queue, statespace.Multi:
			if busy[st] >= servers(st) {
				queues[st] = append(queues[st], task)
			} else {
				busy[st]++
				schedule(task, st)
			}
		}
	}
	admit := func() {
		task := taskID
		taskID++
		active++
		arrive(task, sampleIndex(rng, net.Entry))
	}
	submitJob := func() {
		inSystem += cfg.JobTasks
		backlog += cfg.JobTasks
		for active < cfg.K && backlog > 0 {
			backlog--
			admit()
		}
		if !open {
			oldest = append(oldest, cfg.JobTasks)
		}
	}
	scheduleThink := func() {
		seq++
		heap.Push(&events, streamEvent{
			time: now + cfg.Think.Sample(rng),
			seq:  seq, kind: evThink,
		})
	}

	if open {
		// Job 1 arrives at t = 0; later arrivals renew from each other.
		arrived = 1
		submitJob()
		if arrived < cfg.Jobs {
			seq++
			heap.Push(&events, streamEvent{
				time: cfg.Arrival.Sample(rng), seq: seq, kind: evArrival,
			})
		}
	} else {
		for c := 0; c < cfg.Customers; c++ {
			scheduleThink()
		}
	}

	total := cfg.Jobs * cfg.JobTasks
	done := func() bool {
		if open {
			return departed == total && probeIdx == len(cfg.Probes)
		}
		return probeIdx == len(cfg.Probes)
	}
	processed := 0
	for !done() {
		if processed%cancelCheckInterval == 0 {
			if err := check.Canceled(ctx); err != nil {
				return nil, err
			}
		}
		if cfg.MaxEvents > 0 && processed >= cfg.MaxEvents {
			return nil, fmt.Errorf("sim: stream: %d events processed without finishing (tasks may never exit): %w",
				processed, check.ErrNotConverged)
		}
		processed++
		if events.Len() == 0 {
			if open && departed == total {
				// Drained: the remaining probes see an empty system.
				for ; probeIdx < len(cfg.Probes); probeIdx++ {
					res.TasksAt[probeIdx] = 0
				}
				break
			}
			return nil, check.Invalid("sim: stream: event list empty before the run finished (deadlocked network?)")
		}
		ev := heap.Pop(&events).(streamEvent)
		// The system is piecewise constant: record every probe that
		// falls strictly before the next event.
		for probeIdx < len(cfg.Probes) && cfg.Probes[probeIdx] < ev.time {
			res.TasksAt[probeIdx] = float64(inSystem)
			probeIdx++
		}
		now = ev.time

		switch ev.kind {
		case evArrival:
			arrived++
			submitJob()
			if arrived < cfg.Jobs {
				seq++
				heap.Push(&events, streamEvent{
					time: now + cfg.Arrival.Sample(rng), seq: seq, kind: evArrival,
				})
			}
		case evThink:
			submitJob()
		case evService:
			st := ev.station
			if k := net.Stations[st].Kind; k == statespace.Queue || k == statespace.Multi {
				if len(queues[st]) > 0 {
					next := queues[st][0]
					queues[st] = queues[st][1:]
					schedule(next, st)
				} else {
					busy[st]--
				}
			}
			dst, exits := sampleRoute(rng, net, st)
			if !exits {
				arrive(ev.task, dst)
				continue
			}
			active--
			inSystem--
			departed++
			if backlog > 0 {
				backlog--
				admit()
			}
			if open {
				if departed == total {
					res.Drain = now
				}
			} else {
				// FIFO attribution: the departure is charged to the
				// oldest outstanding job; its customer rejoins thinking.
				oldest[0]--
				if oldest[0] == 0 {
					oldest = oldest[1:]
					scheduleThink()
				}
			}
		}
	}
	return res, nil
}

// StreamReplicated aggregates independent stream replications with
// normal-theory standard errors per probe and on the drain time.
type StreamReplicated struct {
	Reps      int
	MeanTasks []float64 // mean tasks-in-system per probe
	TasksSE   []float64 // standard error of each MeanTasks entry
	MeanDrain float64   // open mode only
	DrainSE   float64
	Drains    []float64 // per-replication drain times, seed order
}

// ReplicateStream runs reps independent replications (seeds Seed,
// Seed+1, …) across all CPUs. Deterministic per (Seed, reps).
func ReplicateStream(cfg StreamConfig, reps int) (*StreamReplicated, error) {
	return ReplicateStreamCtx(context.Background(), cfg, reps)
}

// ReplicateStreamCtx is ReplicateStream under a context.
func ReplicateStreamCtx(ctx context.Context, cfg StreamConfig, reps int) (*StreamReplicated, error) {
	if reps < 2 {
		return nil, check.Invalid("sim: stream: need at least 2 replications, got %d", reps)
	}
	np := len(cfg.Probes)
	tasks := make([][]float64, reps)
	drains := make([]float64, reps)
	var mu sync.Mutex
	err := par.ForErr(ctx, reps, func(r int) error {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		res, err := RunStreamCtx(ctx, c)
		if err != nil {
			return err
		}
		mu.Lock()
		tasks[r] = res.TasksAt
		drains[r] = res.Drain
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &StreamReplicated{
		Reps:      reps,
		MeanTasks: make([]float64, np),
		TasksSE:   make([]float64, np),
	}
	for p := 0; p < np; p++ {
		col := make([]float64, reps)
		for r := 0; r < reps; r++ {
			col[r] = tasks[r][p]
		}
		out.MeanTasks[p], out.TasksSE[p] = meanSE(col)
	}
	if cfg.Jobs > 0 {
		out.MeanDrain, out.DrainSE = meanSE(drains)
		out.Drains = drains
	}
	return out, nil
}

// meanSE returns the sample mean and its standard error.
func meanSE(xs []float64) (mean, se float64) {
	n := float64(len(xs))
	for _, v := range xs {
		mean += v
	}
	mean /= n
	var ss float64
	for _, v := range xs {
		ss += (v - mean) * (v - mean)
	}
	return mean, math.Sqrt(ss/(n-1)) / math.Sqrt(n)
}
