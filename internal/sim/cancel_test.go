package sim

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"finwl/internal/check"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// A canceled context must stop a single run promptly with a typed
// error.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Net: singleStation(statespace.Queue, phase.MustExpo(1)), K: 3, N: 50000, Seed: 1}
	if _, err := RunCtx(ctx, cfg); !errors.Is(err, check.ErrCanceled) {
		t.Fatalf("RunCtx: %v, want ErrCanceled", err)
	}
}

// Canceling mid-replication must return ErrCanceled and leave no
// worker goroutines behind.
func TestReplicateCanceledNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{Net: singleStation(statespace.Queue, phase.MustExpo(1)), K: 3, N: 2000, Seed: 1}
	done := make(chan error, 1)
	go func() {
		_, err := ReplicateCtx(ctx, cfg, 10000)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the pool spin up mid-flight
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, check.ErrCanceled) {
			t.Fatalf("ReplicateCtx: %v, want ErrCanceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ReplicateCtx did not return after cancel")
	}

	// All workers must have exited by the time ReplicateCtx returns;
	// allow the runtime a few scheduling rounds to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancel", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// The event budget turns a structurally valid but non-absorbing
// network into a typed convergence failure instead of an endless run.
func TestMaxEventsBudget(t *testing.T) {
	net := singleStation(statespace.Queue, phase.MustExpo(1))
	net.Exit[0] = 0
	net.Route.Set(0, 0, 1) // tasks loop forever
	cfg := Config{Net: net, K: 2, N: 5, Seed: 1, MaxEvents: 1000}
	if _, err := RunCtx(context.Background(), cfg); !errors.Is(err, check.ErrNotConverged) {
		t.Fatalf("RunCtx: %v, want ErrNotConverged", err)
	}
}
