package sim

import (
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/workload"
)

func BenchmarkRunCentralK5N30(b *testing.B) {
	app := workload.Default(30)
	net, err := cluster.Central(5, app, cluster.Dists{Remote: cluster.WithCV2(10)}, cluster.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Net: net, K: 5, N: 30, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunDistributedK5N100(b *testing.B) {
	app := workload.Default(100)
	net, err := cluster.Distributed(5, app, cluster.Dists{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Net: net, K: 5, N: 100, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
