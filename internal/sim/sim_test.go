package sim

import (
	"math"
	"math/rand"
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

func singleStation(kind statespace.Kind, svc *phase.PH) *network.Network {
	return &network.Network{
		Stations: []network.Station{{Name: "s", Kind: kind, Service: svc}},
		Route:    matrix.New(1, 1),
		Exit:     []float64{1},
		Entry:    []float64{1},
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("accepted nil network")
	}
	n := singleStation(statespace.Queue, phase.MustExpo(1))
	if _, err := Run(Config{Net: n, K: 0, N: 1}); err == nil {
		t.Fatal("accepted K=0")
	}
	if _, err := Replicate(Config{Net: n, K: 1, N: 1}, 1); err == nil {
		t.Fatal("accepted reps=1")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	n := singleStation(statespace.Queue, phase.MustHyperExpFit(1, 5))
	a, err := Run(Config{Net: n, K: 2, N: 20, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Net: n, K: 2, N: 20, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.Total != b.Total {
		t.Fatalf("same seed, different totals: %v vs %v", a.Total, b.Total)
	}
	c, _ := Run(Config{Net: n, K: 2, N: 20, Seed: 100})
	if a.Total == c.Total {
		t.Fatal("different seeds produced identical totals (suspicious)")
	}
}

// Replicate's result must not depend on how replications are
// partitioned over workers.
func TestReplicateDeterministicUnderParallelism(t *testing.T) {
	n := singleStation(statespace.Queue, phase.MustHyperExpFit(1, 8))
	a, err := Replicate(Config{Net: n, K: 2, N: 15, Seed: 7}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replicate(Config{Net: n, K: 2, N: 15, Seed: 7}, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanTotal != b.MeanTotal || a.TotalCI95 != b.TotalCI95 {
		t.Fatalf("parallel Replicate not deterministic: %v/%v vs %v/%v",
			a.MeanTotal, a.TotalCI95, b.MeanTotal, b.TotalCI95)
	}
	for i := range a.MeanEpochs {
		if a.MeanEpochs[i] != b.MeanEpochs[i] {
			t.Fatalf("epoch %d differs between runs", i)
		}
	}
}

func TestDeparturesSortedAndCounted(t *testing.T) {
	app := workload.Default(25)
	net, err := cluster.Central(4, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Net: net, K: 4, N: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Departures) != 25 {
		t.Fatalf("departures %d, want 25", len(res.Departures))
	}
	for i := 1; i < len(res.Departures); i++ {
		if res.Departures[i] < res.Departures[i-1] {
			t.Fatal("departures not sorted")
		}
	}
}

// Sequential single queue: E(T) = N·E(S) for any distribution.
func TestSimSingleQueueMean(t *testing.T) {
	svc := phase.MustHyperExpFit(2, 8)
	net := singleStation(statespace.Queue, svc)
	rep, err := Replicate(Config{Net: net, K: 3, N: 10, Seed: 5}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	want := 10 * svc.Mean()
	if math.Abs(rep.MeanTotal-want) > 3*rep.TotalCI95 {
		t.Fatalf("sim total %v ± %v, analytic %v", rep.MeanTotal, rep.TotalCI95, want)
	}
}

// Delay station: harmonic draining formula.
func TestSimDelayHarmonic(t *testing.T) {
	mu := 1.25
	net := singleStation(statespace.Delay, phase.MustExpo(mu))
	k, n := 4, 12
	rep, err := Replicate(Config{Net: net, K: k, N: n, Seed: 11}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n-k) / (float64(k) * mu)
	for j := 1; j <= k; j++ {
		want += 1 / (float64(j) * mu)
	}
	if math.Abs(rep.MeanTotal-want) > 3*rep.TotalCI95 {
		t.Fatalf("sim %v ± %v, analytic %v", rep.MeanTotal, rep.TotalCI95, want)
	}
}

// The paper's validation, in reverse: the analytic transient model
// must sit inside the simulator's confidence interval for the central
// cluster — exponential and with a heavy-tailed shared server.
func TestSimMatchesAnalyticCentral(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation in -short mode")
	}
	app := workload.Default(15)
	for name, dists := range map[string]cluster.Dists{
		"exp":     {},
		"h2-rd":   {Remote: cluster.WithCV2(10)},
		"erl-cpu": {CPU: cluster.ErlangStages(3)},
	} {
		net, err := cluster.Central(3, app, dists, cluster.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.NewSolver(net, 3)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.TotalTime(app.N)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Replicate(Config{Net: net, K: 3, N: app.N, Seed: 20}, 6000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rep.MeanTotal-want) > 4*rep.TotalCI95 {
			t.Errorf("%s: sim %v ± %v vs analytic %v", name, rep.MeanTotal, rep.TotalCI95, want)
		}
	}
}

// Per-epoch agreement: the interdeparture-time series (the paper's
// Figures 3/10) must match the simulation epoch means.
func TestSimEpochSeriesMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation in -short mode")
	}
	app := workload.Default(12)
	net, err := cluster.Central(3, app, cluster.Dists{Remote: cluster.WithCV2(5)}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(app.N)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replicate(Config{Net: net, K: 3, N: app.N, Seed: 33}, 8000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Epochs {
		got := rep.MeanEpochs[i]
		want := res.Epochs[i]
		// Per-epoch noise is higher than total noise; allow 5%.
		if math.Abs(got-want)/want > 0.05 {
			t.Errorf("epoch %d: sim %v vs analytic %v", i+1, got, want)
		}
	}
}

// Sampler overrides: a constant-service override must produce the
// deterministic sequential total on a single queue.
func TestSamplerOverride(t *testing.T) {
	net := singleStation(statespace.Queue, phase.MustExpo(1))
	const d = 0.75
	cfg := Config{
		Net: net, K: 2, N: 6, Seed: 1,
		Samplers: []func(*rand.Rand) float64{func(*rand.Rand) float64 { return d }},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Total-6*d) > 1e-12 {
		t.Fatalf("deterministic service total %v, want %v", res.Total, 6*d)
	}
}

func TestTotalQuantile(t *testing.T) {
	net := singleStation(statespace.Queue, phase.MustHyperExpFit(1, 6))
	rep, err := Replicate(Config{Net: net, K: 1, N: 5, Seed: 2}, 2000)
	if err != nil {
		t.Fatal(err)
	}
	q10, q50, q99 := rep.TotalQuantile(0.1), rep.TotalQuantile(0.5), rep.TotalQuantile(0.99)
	if !(q10 < q50 && q50 < q99) {
		t.Fatalf("quantiles out of order: %v %v %v", q10, q50, q99)
	}
	if len(rep.Totals) != 2000 {
		t.Fatalf("Totals length %d", len(rep.Totals))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("quantile out of range did not panic")
		}
	}()
	rep.TotalQuantile(1)
}

// Distributed cluster cross-check.
func TestSimMatchesAnalyticDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation in -short mode")
	}
	app := workload.Default(12)
	net, err := cluster.Distributed(3, app, cluster.Dists{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSolver(net, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.TotalTime(app.N)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Replicate(Config{Net: net, K: 3, N: app.N, Seed: 44}, 6000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MeanTotal-want) > 4*rep.TotalCI95 {
		t.Fatalf("sim %v ± %v vs analytic %v", rep.MeanTotal, rep.TotalCI95, want)
	}
}
