// Package sim is a discrete-event simulator for the finite-workload
// cluster networks. It implements the same stochastic model as the
// analytic packages — phase-type service, delay and FCFS queue
// stations, probabilistic routing, immediate replacement from the
// task queue — by sampling instead of solving, and provides
// replication with confidence intervals. The paper validates its
// model by simulation; this package plays that role here, and the
// integration tests require the analytic and simulated results to
// agree within the CI.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"finwl/internal/check"
	"finwl/internal/network"
	"finwl/internal/par"
	"finwl/internal/statespace"
)

// cancelCheckInterval is how many events the DES processes between
// context polls: frequent enough that a cancel lands within
// microseconds, rare enough to stay invisible in the event loop cost.
const cancelCheckInterval = 1024

// Config describes one simulation scenario.
type Config struct {
	Net  *network.Network
	K    int   // maximum number of concurrently active tasks
	N    int   // total tasks in the workload
	Seed int64 // RNG seed; runs are deterministic per seed

	// Samplers optionally overrides the service-time sampler of
	// individual stations (indexed like Net.Stations; nil entries use
	// the station's phase-type law). This enables trace-driven
	// simulation with laws that are not phase-type at all — e.g. true
	// Pareto service — to quantify what a PH fit loses.
	Samplers []func(*rand.Rand) float64

	// MaxEvents optionally bounds the number of events one replication
	// may process (0 = unlimited). A structurally valid network whose
	// tasks rarely (or never) exit would otherwise simulate forever;
	// with a budget, the run fails with a check.ErrNotConverged-matching
	// error instead.
	MaxEvents int
}

// RunResult is the outcome of a single replication.
type RunResult struct {
	// Departures holds the task completion times in completion order.
	Departures []float64
	// Total is the completion time of the last task.
	Total float64
}

// event is a pending service completion.
type event struct {
	time    float64
	seq     int // tie-break for determinism
	task    int
	station int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run simulates one replication.
func Run(cfg Config) (*RunResult, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a context: the event loop polls ctx every
// cancelCheckInterval events and returns a check.ErrCanceled-matching
// error when canceled, so even a pathologically long replication can
// be abandoned promptly.
func RunCtx(ctx context.Context, cfg Config) (*RunResult, error) {
	if cfg.Net == nil {
		return nil, check.Invalid("sim: nil network")
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.K < 1 || cfg.N < 1 {
		return nil, check.Invalid("sim: K=%d N=%d, want both >= 1", cfg.K, cfg.N)
	}
	net := cfg.Net
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := len(net.Stations)

	var (
		events   eventHeap
		seq      int
		now      float64
		queues   = make([][]int, m) // waiting tasks at queue/multi stations
		busy     = make([]int, m)   // busy servers at queue/multi stations
		started  = 0                // tasks admitted so far
		departed []float64
	)

	servers := func(st int) int {
		if net.Stations[st].Kind == statespace.Multi {
			return net.Stations[st].Servers
		}
		return 1
	}

	sampleService := func(st int) float64 {
		if cfg.Samplers != nil && st < len(cfg.Samplers) && cfg.Samplers[st] != nil {
			return cfg.Samplers[st](rng)
		}
		return net.Stations[st].Service.Sample(rng)
	}

	schedule := func(task, st int) {
		seq++
		heap.Push(&events, event{
			time:    now + sampleService(st),
			seq:     seq,
			task:    task,
			station: st,
		})
	}

	// arrive places a task at a station.
	arrive := func(task, st int) {
		switch net.Stations[st].Kind {
		case statespace.Delay:
			schedule(task, st)
		case statespace.Queue, statespace.Multi:
			if busy[st] >= servers(st) {
				queues[st] = append(queues[st], task)
			} else {
				busy[st]++
				schedule(task, st)
			}
		}
	}

	// enter admits a fresh task from the workload queue.
	enter := func() {
		task := started
		started++
		arrive(task, sampleIndex(rng, net.Entry))
	}

	for i := 0; i < cfg.K && i < cfg.N; i++ {
		enter()
	}

	processed := 0
	for len(departed) < cfg.N {
		if processed%cancelCheckInterval == 0 {
			if err := check.Canceled(ctx); err != nil {
				return nil, err
			}
		}
		if cfg.MaxEvents > 0 && processed >= cfg.MaxEvents {
			return nil, fmt.Errorf("sim: %d of %d tasks done after %d events (tasks may never exit): %w",
				len(departed), cfg.N, processed, check.ErrNotConverged)
		}
		processed++
		if events.Len() == 0 {
			return nil, check.Invalid("sim: event list empty before workload finished (deadlocked network?)")
		}
		ev := heap.Pop(&events).(event)
		now = ev.time
		st := ev.station

		// Free the server and start the next waiting task, if any.
		if k := net.Stations[st].Kind; k == statespace.Queue || k == statespace.Multi {
			if len(queues[st]) > 0 {
				next := queues[st][0]
				queues[st] = queues[st][1:]
				schedule(next, st)
			} else {
				busy[st]--
			}
		}

		// Route the completing task.
		dst, exits := sampleRoute(rng, net, st)
		if exits {
			departed = append(departed, now)
			if started < cfg.N {
				enter()
			}
			continue
		}
		arrive(ev.task, dst)
	}
	return &RunResult{Departures: departed, Total: departed[len(departed)-1]}, nil
}

// sampleIndex draws an index from a probability vector.
func sampleIndex(rng *rand.Rand, pmf []float64) int {
	u := rng.Float64()
	var cum float64
	for i, p := range pmf {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(pmf) - 1
}

// sampleRoute draws the routing outcome after service at station st.
func sampleRoute(rng *rand.Rand, net *network.Network, st int) (dst int, exits bool) {
	u := rng.Float64()
	cum := net.Exit[st]
	if u < cum {
		return 0, true
	}
	for j := 0; j < len(net.Stations); j++ {
		cum += net.Route.At(st, j)
		if u < cum {
			return j, false
		}
	}
	// Round-off tail: send to the last station with non-zero routing.
	for j := len(net.Stations) - 1; j >= 0; j-- {
		if net.Route.At(st, j) > 0 {
			return j, false
		}
	}
	return 0, true
}

// Replicated aggregates independent replications.
type Replicated struct {
	Reps       int
	MeanTotal  float64
	TotalCI95  float64   // half-width of the 95% CI on MeanTotal
	MeanEpochs []float64 // mean inter-departure time per epoch index
	MeanDeps   []float64 // mean departure time per epoch index
	Totals     []float64 // per-replication completion times, in seed order
}

// TotalQuantile returns the empirical p-quantile of the completion
// time across replications.
func (r *Replicated) TotalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("sim: quantile %v outside (0,1)", p))
	}
	sorted := append([]float64(nil), r.Totals...)
	sort.Float64s(sorted)
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Replicate runs reps independent replications (seeds Seed, Seed+1, …)
// across all CPUs and aggregates totals and per-epoch means with a
// normal-theory 95% confidence interval on the total. Results are
// deterministic for a given (Seed, reps): each replication's RNG
// depends only on its own seed, so the partitioning over workers
// cannot change the outcome.
func Replicate(cfg Config, reps int) (*Replicated, error) {
	return ReplicateCtx(context.Background(), cfg, reps)
}

// ReplicateCtx is Replicate under a context. The replication fan-out
// runs through par.ForErr, so cancellation stops claiming new
// replications (and in-flight ones observe ctx inside RunCtx), every
// worker goroutine has exited before it returns, and a worker panic
// comes back as a wrapped error instead of killing the process.
func ReplicateCtx(ctx context.Context, cfg Config, reps int) (*Replicated, error) {
	if reps < 2 {
		return nil, check.Invalid("sim: need at least 2 replications, got %d", reps)
	}
	totals := make([]float64, reps)
	epochSums := make([]float64, cfg.N)
	depSums := make([]float64, cfg.N)

	var mu sync.Mutex
	err := par.ForErr(ctx, reps, func(r int) error {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		res, err := RunCtx(ctx, c)
		if err != nil {
			return err
		}
		totals[r] = res.Total
		mu.Lock()
		prev := 0.0
		for i, d := range res.Departures {
			epochSums[i] += d - prev
			depSums[i] += d
			prev = d
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	var mean, ss float64
	for _, v := range totals {
		mean += v
	}
	mean /= float64(reps)
	for _, v := range totals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(reps-1))
	out := &Replicated{
		Reps:       reps,
		MeanTotal:  mean,
		TotalCI95:  1.96 * sd / math.Sqrt(float64(reps)),
		MeanEpochs: epochSums,
		MeanDeps:   depSums,
		Totals:     totals,
	}
	for i := range out.MeanEpochs {
		out.MeanEpochs[i] /= float64(reps)
		out.MeanDeps[i] /= float64(reps)
	}
	return out, nil
}
