// Package sim is a discrete-event simulator for the finite-workload
// cluster networks. It implements the same stochastic model as the
// analytic packages — phase-type service, delay and FCFS queue
// stations, probabilistic routing, immediate replacement from the
// task queue — by sampling instead of solving, and provides
// replication with confidence intervals. The paper validates its
// model by simulation; this package plays that role here, and the
// integration tests require the analytic and simulated results to
// agree within the CI.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"finwl/internal/network"
	"finwl/internal/statespace"
)

// Config describes one simulation scenario.
type Config struct {
	Net  *network.Network
	K    int   // maximum number of concurrently active tasks
	N    int   // total tasks in the workload
	Seed int64 // RNG seed; runs are deterministic per seed

	// Samplers optionally overrides the service-time sampler of
	// individual stations (indexed like Net.Stations; nil entries use
	// the station's phase-type law). This enables trace-driven
	// simulation with laws that are not phase-type at all — e.g. true
	// Pareto service — to quantify what a PH fit loses.
	Samplers []func(*rand.Rand) float64
}

// RunResult is the outcome of a single replication.
type RunResult struct {
	// Departures holds the task completion times in completion order.
	Departures []float64
	// Total is the completion time of the last task.
	Total float64
}

// event is a pending service completion.
type event struct {
	time    float64
	seq     int // tie-break for determinism
	task    int
	station int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Run simulates one replication.
func Run(cfg Config) (*RunResult, error) {
	if cfg.Net == nil {
		return nil, errors.New("sim: nil network")
	}
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if cfg.K < 1 || cfg.N < 1 {
		return nil, fmt.Errorf("sim: K=%d N=%d, want both >= 1", cfg.K, cfg.N)
	}
	net := cfg.Net
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := len(net.Stations)

	var (
		events   eventHeap
		seq      int
		now      float64
		queues   = make([][]int, m) // waiting tasks at queue/multi stations
		busy     = make([]int, m)   // busy servers at queue/multi stations
		started  = 0                // tasks admitted so far
		departed []float64
	)

	servers := func(st int) int {
		if net.Stations[st].Kind == statespace.Multi {
			return net.Stations[st].Servers
		}
		return 1
	}

	sampleService := func(st int) float64 {
		if cfg.Samplers != nil && st < len(cfg.Samplers) && cfg.Samplers[st] != nil {
			return cfg.Samplers[st](rng)
		}
		return net.Stations[st].Service.Sample(rng)
	}

	schedule := func(task, st int) {
		seq++
		heap.Push(&events, event{
			time:    now + sampleService(st),
			seq:     seq,
			task:    task,
			station: st,
		})
	}

	// arrive places a task at a station.
	arrive := func(task, st int) {
		switch net.Stations[st].Kind {
		case statespace.Delay:
			schedule(task, st)
		case statespace.Queue, statespace.Multi:
			if busy[st] >= servers(st) {
				queues[st] = append(queues[st], task)
			} else {
				busy[st]++
				schedule(task, st)
			}
		}
	}

	// enter admits a fresh task from the workload queue.
	enter := func() {
		task := started
		started++
		arrive(task, sampleIndex(rng, net.Entry))
	}

	for i := 0; i < cfg.K && i < cfg.N; i++ {
		enter()
	}

	for len(departed) < cfg.N {
		if events.Len() == 0 {
			return nil, errors.New("sim: event list empty before workload finished (deadlocked network?)")
		}
		ev := heap.Pop(&events).(event)
		now = ev.time
		st := ev.station

		// Free the server and start the next waiting task, if any.
		if k := net.Stations[st].Kind; k == statespace.Queue || k == statespace.Multi {
			if len(queues[st]) > 0 {
				next := queues[st][0]
				queues[st] = queues[st][1:]
				schedule(next, st)
			} else {
				busy[st]--
			}
		}

		// Route the completing task.
		dst, exits := sampleRoute(rng, net, st)
		if exits {
			departed = append(departed, now)
			if started < cfg.N {
				enter()
			}
			continue
		}
		arrive(ev.task, dst)
	}
	return &RunResult{Departures: departed, Total: departed[len(departed)-1]}, nil
}

// sampleIndex draws an index from a probability vector.
func sampleIndex(rng *rand.Rand, pmf []float64) int {
	u := rng.Float64()
	var cum float64
	for i, p := range pmf {
		cum += p
		if u < cum {
			return i
		}
	}
	return len(pmf) - 1
}

// sampleRoute draws the routing outcome after service at station st.
func sampleRoute(rng *rand.Rand, net *network.Network, st int) (dst int, exits bool) {
	u := rng.Float64()
	cum := net.Exit[st]
	if u < cum {
		return 0, true
	}
	for j := 0; j < len(net.Stations); j++ {
		cum += net.Route.At(st, j)
		if u < cum {
			return j, false
		}
	}
	// Round-off tail: send to the last station with non-zero routing.
	for j := len(net.Stations) - 1; j >= 0; j-- {
		if net.Route.At(st, j) > 0 {
			return j, false
		}
	}
	return 0, true
}

// Replicated aggregates independent replications.
type Replicated struct {
	Reps       int
	MeanTotal  float64
	TotalCI95  float64   // half-width of the 95% CI on MeanTotal
	MeanEpochs []float64 // mean inter-departure time per epoch index
	MeanDeps   []float64 // mean departure time per epoch index
	Totals     []float64 // per-replication completion times, in seed order
}

// TotalQuantile returns the empirical p-quantile of the completion
// time across replications.
func (r *Replicated) TotalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("sim: quantile %v outside (0,1)", p))
	}
	sorted := append([]float64(nil), r.Totals...)
	sort.Float64s(sorted)
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Replicate runs reps independent replications (seeds Seed, Seed+1, …)
// across all CPUs and aggregates totals and per-epoch means with a
// normal-theory 95% confidence interval on the total. Results are
// deterministic for a given (Seed, reps): each replication's RNG
// depends only on its own seed, so the partitioning over workers
// cannot change the outcome.
func Replicate(cfg Config, reps int) (*Replicated, error) {
	if reps < 2 {
		return nil, fmt.Errorf("sim: need at least 2 replications, got %d", reps)
	}
	totals := make([]float64, reps)
	epochSums := make([]float64, cfg.N)
	depSums := make([]float64, cfg.N)

	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := int64(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			localEpochs := make([]float64, cfg.N)
			localDeps := make([]float64, cfg.N)
			for {
				r := atomic.AddInt64(&next, 1)
				if r >= int64(reps) {
					break
				}
				c := cfg
				c.Seed = cfg.Seed + r
				res, err := Run(c)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				totals[r] = res.Total
				prev := 0.0
				for i, d := range res.Departures {
					localEpochs[i] += d - prev
					localDeps[i] += d
					prev = d
				}
			}
			mu.Lock()
			for i := range localEpochs {
				epochSums[i] += localEpochs[i]
				depSums[i] += localDeps[i]
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	var mean, ss float64
	for _, v := range totals {
		mean += v
	}
	mean /= float64(reps)
	for _, v := range totals {
		ss += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(ss / float64(reps-1))
	out := &Replicated{
		Reps:       reps,
		MeanTotal:  mean,
		TotalCI95:  1.96 * sd / math.Sqrt(float64(reps)),
		MeanEpochs: epochSums,
		MeanDeps:   depSums,
		Totals:     totals,
	}
	for i := range out.MeanEpochs {
		out.MeanEpochs[i] /= float64(reps)
		out.MeanDeps[i] /= float64(reps)
	}
	return out, nil
}
