package bounds

import (
	"math/rand"
	"testing"
	"testing/quick"

	"finwl/internal/cluster"
	"finwl/internal/productform"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

// The exact MVA throughput must lie inside both bound pairs, with the
// BJB pair at least as tight as the asymptotic pair.
func TestBoundsBracketMVA(t *testing.T) {
	app := workload.Default(10)
	net, err := cluster.Central(4, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := productform.FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 12; n++ {
		x := m.MVA(n).Throughput
		b, err := FromModel(m, n)
		if err != nil {
			t.Fatal(err)
		}
		const slack = 1e-9
		if x > b.XUpper+slack || x < b.XLower-slack {
			t.Fatalf("n=%d: X=%v outside asymptotic [%v, %v]", n, x, b.XLower, b.XUpper)
		}
		if x > b.XUpperBJB+slack || x < b.XLowerBJB-slack {
			t.Fatalf("n=%d: X=%v outside BJB [%v, %v]", n, x, b.XLowerBJB, b.XUpperBJB)
		}
		if b.XUpperBJB > b.XUpper+slack || b.XLowerBJB < b.XLower-slack {
			t.Fatalf("n=%d: BJB looser than asymptotic", n)
		}
	}
}

// Property: bounds bracket MVA on random queue/delay networks.
func TestBoundsBracketProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := 1 + r.Intn(5)
		m := &productform.Model{
			Visits: make([]float64, s),
			Means:  make([]float64, s),
			Kinds:  make([]statespace.Kind, s),
		}
		for i := 0; i < s; i++ {
			m.Visits[i] = 0.2 + 2*r.Float64()
			m.Means[i] = 0.2 + 2*r.Float64()
			if r.Intn(2) == 0 {
				m.Kinds[i] = statespace.Delay
			} else {
				m.Kinds[i] = statespace.Queue
			}
		}
		for n := 1; n <= 8; n++ {
			x := m.MVA(n).Throughput
			b, err := FromModel(m, n)
			if err != nil {
				return false
			}
			const slack = 1e-9
			if x > b.XUpper+slack || x < b.XLower-slack ||
				x > b.XUpperBJB+slack || x < b.XLowerBJB-slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Saturation: for large n the upper bound equals 1/Dmax and the exact
// throughput approaches it.
func TestBoundsSaturation(t *testing.T) {
	app := workload.Default(10)
	net, err := cluster.Central(4, app, cluster.Dists{}, cluster.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := productform.FromNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromModel(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	x := m.MVA(100).Throughput
	if (b.XUpper-x)/x > 0.02 {
		t.Fatalf("at n=100 exact %v should be within 2%% of 1/Dmax %v", x, b.XUpper)
	}
}

// Pure delay network: all bounds collapse to n/Z.
func TestBoundsPureDelay(t *testing.T) {
	m := &productform.Model{
		Visits: []float64{1},
		Means:  []float64{2},
		Kinds:  []statespace.Kind{statespace.Delay},
	}
	b, err := FromModel(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0 / 2
	for _, v := range []float64{b.XUpper, b.XUpperBJB, b.XLowerBJB} {
		if v != want {
			t.Fatalf("pure delay bound %v, want %v", v, want)
		}
	}
}

// Multi-server stations saturate at c/demand.
func TestBoundsMultiServer(t *testing.T) {
	m := &productform.Model{
		Visits:  []float64{1, 1},
		Means:   []float64{1, 2},
		Kinds:   []statespace.Kind{statespace.Delay, statespace.Multi},
		Servers: []int{0, 4},
	}
	b, err := FromModel(m, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Dmax per server = 2/4 = 0.5 → X ≤ 2.
	if b.XUpper != 2 {
		t.Fatalf("multi-server upper bound %v, want 2", b.XUpper)
	}
}

func TestBoundsErrors(t *testing.T) {
	m := &productform.Model{Visits: []float64{1}, Means: []float64{1}, Kinds: []statespace.Kind{statespace.Queue}}
	if _, err := FromModel(m, 0); err == nil {
		t.Fatal("accepted n=0")
	}
	bad := &productform.Model{}
	if _, err := FromModel(bad, 1); err == nil {
		t.Fatal("accepted empty model")
	}
}
