// Package bounds implements the classical operational-analysis
// performance bounds for closed queueing networks — asymptotic bounds
// (Denning–Buzen) and balanced-job bounds (Zahorjan et al.) — as the
// cheapest baseline tier below MVA and the transient model. They need
// only service demands, cost O(stations), and bracket the exact
// throughput; the experiments use them to show what each modeling
// tier buys: bounds < product form < transient model.
package bounds

import (
	"fmt"

	"finwl/internal/productform"
	"finwl/internal/statespace"
)

// Result brackets the system throughput X(n) and the cycle time.
type Result struct {
	N int
	// Asymptotic (optimistic/pessimistic) bounds.
	XUpper float64 // min(1/Dmax, n/(D+Z))
	XLower float64 // n/(n·D+Z) — pessimistic: full queueing everywhere
	// Balanced-job bounds (tighter on both sides).
	XUpperBJB float64
	XLowerBJB float64
}

// FromModel computes the bounds from a product-form model: queue and
// multi-server stations contribute to the queueing demand D, delay
// stations to the think time Z. Multi-server stations are treated at
// their per-server demand for Dmax (their saturation point).
func FromModel(m *productform.Model, n int) (*Result, error) {
	if n < 1 {
		return nil, fmt.Errorf("bounds: population %d, want >= 1", n)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	var (
		dTotal, dMax, z float64
		queueStations   int
	)
	for i := range m.Visits {
		demand := m.Visits[i] * m.Means[i]
		switch m.Kinds[i] {
		case statespace.Delay:
			z += demand
		case statespace.Queue:
			dTotal += demand
			queueStations++
			if demand > dMax {
				dMax = demand
			}
		case statespace.Multi:
			c := 1
			if m.Servers != nil && m.Servers[i] > 1 {
				c = m.Servers[i]
			}
			dTotal += demand
			queueStations++
			if perServer := demand / float64(c); perServer > dMax {
				dMax = perServer
			}
		}
	}
	res := &Result{N: n}
	nf := float64(n)
	if dMax > 0 {
		res.XUpper = minF(1/dMax, nf/(dTotal+z))
	} else {
		res.XUpper = nf / (dTotal + z)
	}
	res.XLower = nf / (nf*dTotal + z)

	// Balanced-job bounds: a network with all queueing demand balanced
	// at the average is optimistic; balanced at the maximum is
	// pessimistic.
	if queueStations > 0 {
		dAvg := dTotal / float64(queueStations)
		res.XUpperBJB = minF(1/dMax, nf/(z+dTotal+(nf-1)*dAvg*dTotal/(z+dTotal)))
		res.XLowerBJB = nf / (z + dTotal + (nf-1)*dMax)
	} else {
		res.XUpperBJB = res.XUpper
		res.XLowerBJB = res.XUpper
	}
	return res, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
