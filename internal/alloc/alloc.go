// Package alloc optimizes the placement of shared data over the
// disks of a distributed cluster, the application the paper's
// companion work ([15], "Efficient Data Allocation for a Cluster of
// Workstations") built on the same model. The transient solver is the
// objective function: an allocation is a point on the simplex (the
// fraction of shared data per disk), and we search for the fractions
// minimizing the job completion time E(T) — on heterogeneous disks
// the optimum shifts data toward the fast spindles, but less than
// proportionally, because queueing at the hot disk is convex.
package alloc

import (
	"errors"
	"fmt"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/statespace"
	"finwl/internal/workload"
)

// DistributedAlloc builds a distributed cluster of k workstations
// whose shared data is split by `fractions` (a simplex point: disk i
// serves fractions[i] of all disk work) over disks with relative
// `speeds` (work units per time; 1 = nominal). Visit probabilities
// follow the data: p_i = fractions[i], and disk i's per-visit service
// time is W/(speeds[i]·visits) with W the job's total disk work — so
// the single-task disk time lands at Σ fᵢ·W/sᵢ.
func DistributedAlloc(k int, app workload.App, dists cluster.Dists, fractions, speeds []float64) (*network.Network, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if k < 1 {
		return nil, fmt.Errorf("alloc: need k >= 1, got %d", k)
	}
	if len(fractions) != k || len(speeds) != k {
		return nil, fmt.Errorf("alloc: need %d fractions and speeds, got %d and %d", k, len(fractions), len(speeds))
	}
	var sum float64
	for i := range fractions {
		if fractions[i] < 0 {
			return nil, fmt.Errorf("alloc: negative fraction at disk %d", i)
		}
		if speeds[i] <= 0 {
			return nil, fmt.Errorf("alloc: non-positive speed at disk %d", i)
		}
		sum += fractions[i]
	}
	if sum <= 0 {
		return nil, errors.New("alloc: fractions sum to zero")
	}

	if dists.CPU == nil {
		dists.CPU = cluster.Exponential
	}
	if dists.Comm == nil {
		dists.Comm = cluster.Exponential
	}
	if dists.Remote == nil {
		dists.Remote = cluster.Exponential
	}

	q := app.Q()
	visits := (1 - q) / q
	diskWork := (1-app.C)*app.X + app.Y

	m := k + 2
	route := matrix.New(m, m)
	comm := m - 1
	stations := make([]network.Station, m)
	svcCPU, err := dists.CPU(q * app.C * app.X)
	if err != nil {
		return nil, fmt.Errorf("alloc: CPU service: %w", err)
	}
	stations[0] = network.Station{Name: "CPU", Kind: statespace.Delay, Service: svcCPU}
	for i := 0; i < k; i++ {
		p := fractions[i] / sum
		route.Set(0, 1+i, p*(1-q))
		route.Set(1+i, comm, 1)
		perVisit := diskWork / (speeds[i] * visits)
		svc, err := dists.Remote(perVisit)
		if err != nil {
			return nil, fmt.Errorf("alloc: disk %d service: %w", i+1, err)
		}
		stations[1+i] = network.Station{Name: fmt.Sprintf("D%d", i+1), Kind: statespace.Queue, Service: svc}
	}
	route.Set(comm, 0, 1)
	svcComm, err := dists.Comm(app.B * app.Y / visits)
	if err != nil {
		return nil, fmt.Errorf("alloc: Comm service: %w", err)
	}
	stations[comm] = network.Station{Name: "Comm", Kind: statespace.Queue, Service: svcComm}

	exit := make([]float64, m)
	exit[0] = q
	entry := make([]float64, m)
	entry[0] = 1
	net := &network.Network{Stations: stations, Route: route, Exit: exit, Entry: entry}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	return net, nil
}

// Result is an optimized allocation.
type Result struct {
	Fractions []float64
	TotalTime float64 // E(T) under the optimal allocation
	Evals     int     // objective evaluations spent
}

// Optimize searches the allocation simplex for the fractions
// minimizing E(T) of the given workload, by iterated pairwise
// transfers: repeatedly move a step of data from the disk whose
// marginal cost is highest to the one where it is lowest, shrinking
// the step until no transfer helps. The objective is the exact
// transient model, so the optimum accounts for transient and draining
// regions, not just steady state.
func Optimize(k int, app workload.App, dists cluster.Dists, speeds []float64) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("alloc: optimization needs k >= 2, got %d", k)
	}
	fractions := make([]float64, k)
	for i := range fractions {
		fractions[i] = 1 / float64(k)
	}
	evals := 0
	objective := func(f []float64) (float64, error) {
		evals++
		net, err := DistributedAlloc(k, app, dists, f, speeds)
		if err != nil {
			return 0, err
		}
		s, err := core.NewSolver(net, k)
		if err != nil {
			return 0, err
		}
		return s.TotalTime(app.N)
	}

	best, err := objective(fractions)
	if err != nil {
		return nil, err
	}
	step := 0.5 / float64(k)
	const minStep = 1e-4
	for step > minStep {
		improved := false
		for from := 0; from < k; from++ {
			if fractions[from] < step {
				continue
			}
			for to := 0; to < k; to++ {
				if to == from {
					continue
				}
				trial := append([]float64(nil), fractions...)
				trial[from] -= step
				trial[to] += step
				v, err := objective(trial)
				if err != nil {
					return nil, err
				}
				if v < best-1e-12 {
					best = v
					fractions = trial
					improved = true
				}
			}
		}
		if !improved {
			step /= 2
		}
	}
	return &Result{Fractions: fractions, TotalTime: best, Evals: evals}, nil
}
