package alloc

import (
	"math"
	"testing"

	"finwl/internal/cluster"
	"finwl/internal/core"
	"finwl/internal/workload"
)

func ones(k int) []float64 {
	v := make([]float64, k)
	for i := range v {
		v[i] = 1
	}
	return v
}

func uniform(k int) []float64 {
	v := make([]float64, k)
	for i := range v {
		v[i] = 1 / float64(k)
	}
	return v
}

// With identical disks and a uniform allocation, DistributedAlloc
// must agree with cluster.Distributed exactly.
func TestUniformMatchesDistributed(t *testing.T) {
	app := workload.Default(15)
	k := 3
	netA, err := DistributedAlloc(k, app, cluster.Dists{}, uniform(k), ones(k))
	if err != nil {
		t.Fatal(err)
	}
	netB, err := cluster.Distributed(k, app, cluster.Dists{})
	if err != nil {
		t.Fatal(err)
	}
	sA, err := core.NewSolver(netA, k)
	if err != nil {
		t.Fatal(err)
	}
	sB, err := core.NewSolver(netB, k)
	if err != nil {
		t.Fatal(err)
	}
	a, err := sA.TotalTime(app.N)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sB.TotalTime(app.N)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9*b {
		t.Fatalf("alloc %v vs distributed %v", a, b)
	}
}

// Fractions are normalized: scaling them all by a constant changes
// nothing.
func TestFractionsNormalized(t *testing.T) {
	app := workload.Default(10)
	k := 2
	n1, err := DistributedAlloc(k, app, cluster.Dists{}, []float64{1, 3}, ones(k))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := DistributedAlloc(k, app, cluster.Dists{}, []float64{0.25, 0.75}, ones(k))
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := core.NewSolver(n1, k)
	s2, _ := core.NewSolver(n2, k)
	a, _ := s1.TotalTime(app.N)
	b, _ := s2.TotalTime(app.N)
	if math.Abs(a-b) > 1e-9*b {
		t.Fatalf("scaled fractions changed the model: %v vs %v", a, b)
	}
}

func TestDistributedAllocRejections(t *testing.T) {
	app := workload.Default(5)
	if _, err := DistributedAlloc(0, app, cluster.Dists{}, nil, nil); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := DistributedAlloc(2, app, cluster.Dists{}, []float64{1}, ones(2)); err == nil {
		t.Fatal("accepted wrong fraction count")
	}
	if _, err := DistributedAlloc(2, app, cluster.Dists{}, []float64{-1, 2}, ones(2)); err == nil {
		t.Fatal("accepted negative fraction")
	}
	if _, err := DistributedAlloc(2, app, cluster.Dists{}, []float64{0, 0}, ones(2)); err == nil {
		t.Fatal("accepted zero fractions")
	}
	if _, err := DistributedAlloc(2, app, cluster.Dists{}, uniform(2), []float64{1, 0}); err == nil {
		t.Fatal("accepted zero speed")
	}
}

// Identical disks: the optimizer must stay (close to) uniform.
func TestOptimizeIdenticalDisksStaysUniform(t *testing.T) {
	app := workload.Default(10)
	k := 2
	res, err := Optimize(k, app, cluster.Dists{}, ones(k))
	if err != nil {
		t.Fatal(err)
	}
	// Uniform must be within the optimizer's tolerance of optimal.
	netU, _ := DistributedAlloc(k, app, cluster.Dists{}, uniform(k), ones(k))
	sU, _ := core.NewSolver(netU, k)
	u, _ := sU.TotalTime(app.N)
	if res.TotalTime > u+1e-6 {
		t.Fatalf("optimizer (%v) worse than uniform (%v)", res.TotalTime, u)
	}
	if math.Abs(res.Fractions[0]-res.Fractions[1]) > 0.1 {
		t.Fatalf("identical disks got asymmetric allocation %v", res.Fractions)
	}
}

// A fast disk should receive more data — but queueing convexity keeps
// the split milder than speed-proportional.
func TestOptimizeHeterogeneousDisks(t *testing.T) {
	app := workload.Default(12)
	k := 2
	speeds := []float64{2, 1} // disk 1 twice as fast
	res, err := Optimize(k, app, cluster.Dists{}, speeds)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fractions[0] <= res.Fractions[1] {
		t.Fatalf("fast disk got less data: %v", res.Fractions)
	}
	// Beats uniform.
	netU, _ := DistributedAlloc(k, app, cluster.Dists{}, uniform(k), speeds)
	sU, _ := core.NewSolver(netU, k)
	u, _ := sU.TotalTime(app.N)
	if res.TotalTime >= u {
		t.Fatalf("optimized %v not better than uniform %v", res.TotalTime, u)
	}
	if res.Evals < 3 {
		t.Fatalf("suspiciously few evaluations: %d", res.Evals)
	}
}

func TestOptimizeRejectsSmallK(t *testing.T) {
	if _, err := Optimize(1, workload.Default(5), cluster.Dists{}, ones(1)); err == nil {
		t.Fatal("accepted k=1")
	}
}
