package chaos

import (
	"errors"
	"math/rand"
	"sync"

	"finwl/internal/batch"
)

// DiskFault configures the journal-level fault rates a Disk injects.
// Each rate is the probability in [0,1] that the corresponding
// operation misbehaves; zero disables that fault.
type DiskFault struct {
	WriteFail  float64 // append's write errors before touching disk
	ShortWrite float64 // only a prefix of the record is written (torn tail)
	SyncFail   float64 // fsync reports failure
}

// Disk is the durability counterpart of Injector: seeded write/sync
// faults delivered through a batch.Journal's hook points, so the
// crash campaigns can prove a server keeps serving — and keeps its
// in-memory truth — while its disk misbehaves underneath it.
type Disk struct {
	mu    sync.Mutex
	rng   *rand.Rand
	fault DiskFault

	writeFails  int64
	shortWrites int64
	syncFails   int64
}

// NewDisk builds a disk-fault injector; seed fixes the draw sequence.
func NewDisk(seed int64, f DiskFault) *Disk {
	return &Disk{rng: rand.New(rand.NewSource(seed)), fault: f}
}

// Set swaps the active fault rates, so a test can break and heal the
// disk mid-run.
func (d *Disk) Set(f DiskFault) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.fault = f
}

// Counts reports how many operations each fault class has affected.
func (d *Disk) Counts() (writeFails, shortWrites, syncFails int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.writeFails, d.shortWrites, d.syncFails
}

// Hooks returns the journal hook pair wired to this injector; pass it
// as JournalHooks in the serve or fleet config.
func (d *Disk) Hooks() batch.JournalHooks {
	return batch.JournalHooks{Write: d.write, Sync: d.sync}
}

func (d *Disk) write(b []byte, next func([]byte) (int, error)) (int, error) {
	d.mu.Lock()
	f := d.fault
	// Always burn both draws so the sequence is independent of the
	// configured rates: same seed, same faulted operations.
	failDraw, shortDraw := d.rng.Float64(), d.rng.Float64()
	torn := false
	switch {
	case failDraw < f.WriteFail:
		d.writeFails++
		d.mu.Unlock()
		return 0, errors.New("chaos: injected write failure")
	case shortDraw < f.ShortWrite:
		d.shortWrites++
		torn = true
	}
	d.mu.Unlock()
	if torn {
		// Persist only a prefix — the torn tail a crash mid-write
		// leaves. The short count makes the journal record the failure.
		return next(b[:len(b)/2])
	}
	return next(b)
}

func (d *Disk) sync(next func() error) error {
	d.mu.Lock()
	fail := d.rng.Float64() < d.fault.SyncFail
	if fail {
		d.syncFails++
	}
	d.mu.Unlock()
	if fail {
		return errors.New("chaos: injected fsync failure")
	}
	return next()
}
