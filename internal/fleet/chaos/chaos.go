// Package chaos is the fault injector for fleet testing: an
// http.Handler wrapper that makes a replica misbehave on demand —
// dropped connections, added latency, injected 5xx, or a partition
// that swallows requests — deterministically, so the campaigns in
// internal/faultcheck and the fleet tests reproduce bit-for-bit from
// a seed.
package chaos

import (
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Mode selects the fault a replica injects.
type Mode int

const (
	// None passes every request through untouched.
	None Mode = iota
	// Drop closes the connection without writing a response — the
	// client sees a transport error (EOF / connection reset), the
	// signature of a crashed or SIGKILLed replica.
	Drop
	// Delay adds Fault.Delay before serving normally — a slow replica,
	// the failover walk's latency-vs-correctness case.
	Delay
	// Error responds Fault.Status (default 500) with a JSON error body
	// carrying code "chaos" — an untyped replica fault the router must
	// treat as retryable.
	Error
	// Partition hangs without responding until the client gives up —
	// the network partition case: the replica is reachable at the TCP
	// level but no bytes ever come back.
	Partition
)

func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Partition:
		return "partition"
	}
	return "unknown"
}

// Fault describes what to inject. Rate is the probability in [0,1]
// that a given request is affected (0 means 1.0: every request);
// sub-1 rates model a flapping replica.
type Fault struct {
	Mode   Mode
	Delay  time.Duration // Delay mode: added latency
	Status int           // Error mode: status to inject (default 500)
	Rate   float64       // fraction of requests affected; 0 = all
}

// Injector wraps a replica's handler and applies the currently
// configured Fault. Safe for concurrent use; Set swaps the fault at
// runtime so a test can break and heal a replica mid-campaign.
type Injector struct {
	next http.Handler

	mu    sync.Mutex
	fault Fault
	rng   *rand.Rand
	hits  int64 // requests the fault actually affected
}

// New wraps next with a pass-through injector. seed fixes the
// Rate-draw sequence so flapping patterns are reproducible.
func New(next http.Handler, seed int64) *Injector {
	return &Injector{next: next, rng: rand.New(rand.NewSource(seed))}
}

// Set swaps the active fault.
func (in *Injector) Set(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fault = f
}

// Hits reports how many requests the injector has affected.
func (in *Injector) Hits() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits
}

// draw decides whether this request is affected and returns the fault
// to apply.
func (in *Injector) draw() (Fault, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := in.fault
	if f.Mode == None {
		return f, false
	}
	if f.Rate > 0 && f.Rate < 1 && in.rng.Float64() >= f.Rate {
		return f, false
	}
	in.hits++
	return f, true
}

func (in *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f, hit := in.draw()
	if !hit {
		in.next.ServeHTTP(w, r)
		return
	}
	switch f.Mode {
	case Drop:
		// A hard connection teardown; when the writer cannot hijack
		// (HTTP/2, test recorders) panic with the sentinel the net/http
		// server maps to an aborted connection — either way the client
		// sees a transport error, never a status.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	case Delay:
		select {
		case <-time.After(f.Delay):
		case <-r.Context().Done():
			return
		}
		in.next.ServeHTTP(w, r)
	case Error:
		status := f.Status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(`{"error":"chaos: injected fault","code":"chaos"}`))
	case Partition:
		// Hold the request open until the client abandons it; no bytes
		// are ever written. The body must be drained first: the net/http
		// server only watches for a client disconnect once the request
		// body has hit EOF, so an unread body would leave this handler —
		// and any Server.Close waiting on it — parked forever.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
	default:
		in.next.ServeHTTP(w, r)
	}
}
