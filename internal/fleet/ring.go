// Package fleet is the horizontal scaling layer for finwld: a
// health-aware router that consistent-hashes each request's canonical
// model identity (serve.ShardKey) onto a ring of replica daemons, so
// the replica that answers is the one whose solver/chain caches are
// warm for that model — cache-affinity sharding, with failover to the
// next replica on the ring when the owner is down or tripped, and
// WWTA-style load-aware spillover when the owner is healthy but
// saturated.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over replica indices. Each replica
// contributes vnodes virtual points so that (a) load spreads evenly
// and (b) adding or removing one replica of R moves only ~1/R of the
// key space — the property test in ring_test.go pins this down.
type ring struct {
	points   []ringPoint // sorted by hash
	replicas int
}

type ringPoint struct {
	hash    uint64
	replica int
}

// defaultVnodes balances placement smoothness against sequence-walk
// cost; 64 points per replica keeps the owner-share spread within a
// few percent for small fleets.
const defaultVnodes = 64

func newRing(replicas, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &ring{
		points:   make([]ringPoint, 0, replicas*vnodes),
		replicas: replicas,
	}
	for rep := 0; rep < replicas; rep++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("replica-%d#%d", rep, v)),
				replica: rep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// sequence returns every replica index in ring order starting at
// key's position: element 0 is the owner, and the rest are the
// failover candidates in the order a router should try them.
func (r *ring) sequence(key string) []int {
	seq := make([]int, 0, r.replicas)
	if len(r.points) == 0 {
		return seq
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make([]bool, r.replicas)
	for i := 0; i < len(r.points) && len(seq) < r.replicas; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			seq = append(seq, p.replica)
		}
	}
	return seq
}

// owner returns the replica index owning key's shard.
func (r *ring) owner(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.points[i%len(r.points)].replica
}
