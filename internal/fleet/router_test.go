package fleet

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"finwl/internal/check"
	"finwl/internal/fleet/chaos"
	"finwl/internal/serve"
)

// testFleet is a router over n live replica servers (real
// serve.Server engines behind httptest), each wrapped in a chaos
// injector the tests flip faults on.
type testFleet struct {
	router   *Router
	servers  []*httptest.Server
	injector []*chaos.Injector
	backends []*serve.Server
}

func newTestFleet(t *testing.T, n int, mut func(*Config)) *testFleet {
	t.Helper()
	f := &testFleet{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		srv := serve.New(serve.Config{Seed: int64(i) + 1})
		inj := chaos.New(srv.Handler(), 42)
		ts := httptest.NewServer(inj)
		f.backends = append(f.backends, srv)
		f.injector = append(f.injector, inj)
		f.servers = append(f.servers, ts)
		urls[i] = ts.URL
	}
	cfg := Config{
		Replicas: urls,
		Seed:     1,
		// Keep the active prober quiet by default so tests exercise the
		// passive path deterministically; probe tests override.
		ProbeInterval: time.Hour,
		ProbeFails:    1000,
		RetryBase:     time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = rt
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt.Drain(ctx)
		for _, ts := range f.servers {
			ts.Close()
		}
	})
	return f
}

// repIndex maps a RoutedVia tag ("owner http://...") back to the
// replica slot.
func (f *testFleet) repIndex(t *testing.T, via string) int {
	t.Helper()
	for i, ts := range f.servers {
		if strings.HasSuffix(via, ts.URL) {
			return i
		}
	}
	t.Fatalf("routed_via %q names no replica", via)
	return -1
}

func testRequest(n int) *serve.Request {
	return &serve.Request{Arch: "central", K: 3, N: n}
}

// directSolve computes the reference answer on a private engine.
func directSolve(t *testing.T, req *serve.Request) *serve.Response {
	t.Helper()
	s := serve.New(serve.Config{Seed: 99})
	resp, err := s.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	return resp
}

// TestRouterAffinity: repeats of one model land on the same replica,
// so the second answer comes from that replica's result cache.
func TestRouterAffinity(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	req := testRequest(12)

	first, err := f.router.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(first.RoutedVia, "owner ") {
		t.Errorf("first RoutedVia = %q, want owner", first.RoutedVia)
	}
	second, err := f.router.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if second.RoutedVia != first.RoutedVia {
		t.Errorf("affinity broken: %q then %q", first.RoutedVia, second.RoutedVia)
	}
	if !second.Cached {
		t.Error("second identical request was not served from the owner's cache")
	}
	if second.TotalTime != first.TotalTime {
		t.Errorf("cache returned a different answer: %v vs %v", second.TotalTime, first.TotalTime)
	}
}

// TestRouterFailover: killing the owner mid-fleet reroutes the same
// request to another replica, which computes the same answer; the
// failover counter records the hop.
func TestRouterFailover(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	req := testRequest(25)
	want := directSolve(t, req)

	first, err := f.router.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	owner := f.repIndex(t, first.RoutedVia)
	f.servers[owner].CloseClientConnections()
	f.servers[owner].Close() // SIGKILL stand-in: connection refused from here on

	resp, err := f.router.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("solve after owner death: %v", err)
	}
	if !strings.HasPrefix(resp.RoutedVia, "failover ") {
		t.Errorf("RoutedVia = %q, want failover", resp.RoutedVia)
	}
	if f.repIndex(t, resp.RoutedVia) == owner {
		t.Errorf("failover answered via the dead owner (%q)", resp.RoutedVia)
	}
	if math.Abs(resp.TotalTime-want.TotalTime) > 1e-13 {
		t.Errorf("failover answer %v differs from direct solve %v", resp.TotalTime, want.TotalTime)
	}
	if got := f.router.m.failovers.Value(); got < 1 {
		t.Errorf("finwl_fleet_failover_total = %d, want ≥ 1", got)
	}
}

// TestRouterInvalidModelZeroHops: a typed 400 is produced at the
// router without forwarding — it must not burn failover retries.
func TestRouterInvalidModelZeroHops(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	_, err := f.router.Solve(context.Background(), &serve.Request{Arch: "central", K: 0, N: 10})
	if !errors.Is(err, check.ErrInvalidModel) {
		t.Fatalf("err = %v, want ErrInvalidModel", err)
	}
	if got := f.router.m.invalid.Value(); got != 1 {
		t.Errorf("invalid counter = %d, want 1", got)
	}
	if got := f.router.m.failovers.Value(); got != 0 {
		t.Errorf("failover counter = %d, want 0 for a local 400", got)
	}
	for _, rep := range f.router.reps {
		if rep.ewmaNs.Load() != 0 {
			t.Error("a hop was forwarded for an invalid model")
		}
	}
}

// TestRouterSpillover: a healthy but saturated owner is demoted behind
// the least-loaded replica by the weighted-load rule.
func TestRouterSpillover(t *testing.T) {
	f := newTestFleet(t, 3, func(c *Config) {
		c.SpillDepth = 2
		c.SpillFactor = 1.5
	})
	req := testRequest(30)
	net, err := req.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	owner := f.router.ring.owner(serve.ShardKey(net, req.K))
	// Fake the load signals the prober would have scraped: the owner
	// deep in queue and slow, everyone else idle.
	f.router.reps[owner].queued.Store(50)
	f.router.reps[owner].ewmaNs.Store(int64(50 * time.Millisecond))

	resp, err := f.router.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.RoutedVia, "spillover ") {
		t.Errorf("RoutedVia = %q, want spillover", resp.RoutedVia)
	}
	if f.repIndex(t, resp.RoutedVia) == owner {
		t.Errorf("spillover stayed on the saturated owner (%q)", resp.RoutedVia)
	}
	if got := f.router.m.spillovers.Value(); got != 1 {
		t.Errorf("spillover counter = %d, want 1", got)
	}
}

// TestBreakerUnderChaosFlapping: injected faults trip a replica's
// passive breaker; after the cooldown a half-open probe against the
// still-broken replica re-opens it, and once the fault heals the probe
// closes it again.
func TestBreakerUnderChaosFlapping(t *testing.T) {
	clock := struct{ now atomic.Int64 }{}
	clock.now.Store(time.Now().UnixNano())
	now := func() time.Time { return time.Unix(0, clock.now.Load()) }
	advance := func(d time.Duration) { clock.now.Add(int64(d)) }

	f := newTestFleet(t, 1, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = time.Minute
		c.Now = now
	})
	rep := f.router.reps[0]
	req := testRequest(8)

	f.injector[0].Set(chaos.Fault{Mode: chaos.Error})
	for i := 0; i < 2; i++ {
		if _, err := f.router.Solve(context.Background(), req); !errors.Is(err, serve.ErrUnavailable) {
			t.Fatalf("fault %d: err = %v, want ErrUnavailable", i, err)
		}
	}
	if got := rep.br.State(); got != serve.BreakerOpen {
		t.Fatalf("after %d faults breaker = %v, want open", 2, got)
	}

	// Cooldown elapses but the replica still flaps: the half-open probe
	// fails and re-opens the breaker.
	advance(2 * time.Minute)
	if got := rep.br.State(); got != serve.BreakerHalfOpen {
		t.Fatalf("after cooldown breaker = %v, want half-open", got)
	}
	if _, err := f.router.Solve(context.Background(), req); !errors.Is(err, serve.ErrUnavailable) {
		t.Fatalf("probe against broken replica: err = %v, want ErrUnavailable", err)
	}
	if got := rep.br.State(); got != serve.BreakerOpen {
		t.Fatalf("failed probe left breaker %v, want open", got)
	}

	// Fault heals; the next half-open probe succeeds and closes it.
	f.injector[0].Set(chaos.Fault{Mode: chaos.None})
	advance(2 * time.Minute)
	resp, err := f.router.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if resp.TotalTime <= 0 {
		t.Errorf("healed probe returned TotalTime %v", resp.TotalTime)
	}
	if got := rep.br.State(); got != serve.BreakerClosed {
		t.Errorf("successful probe left breaker %v, want closed", got)
	}
}

// TestRouterBatchScatterGather: a batch spanning several shards routes
// each group to its owner and reassembles items in order, tagged with
// the answering replica.
func TestRouterBatchScatterGather(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	reqs := []*serve.Request{
		testRequest(10), testRequest(20),
		{Arch: "central", K: 5, N: 15},
		{Arch: "central", K: 0, N: 1}, // invalid: settled at the router
		nil,                           // null job: settled at the router
	}
	items := f.router.SolveBatch(context.Background(), reqs)
	if len(items) != len(reqs) {
		t.Fatalf("got %d items for %d requests", len(items), len(reqs))
	}
	for i := 0; i < 3; i++ {
		it := items[i]
		if it.Response == nil {
			t.Fatalf("item %d failed: %s (%s)", i, it.Error, it.Code)
		}
		if it.Response.RoutedVia == "" {
			t.Errorf("item %d missing routed_via", i)
		}
		want := directSolve(t, reqs[i])
		if math.Abs(it.Response.TotalTime-want.TotalTime) > 1e-13 {
			t.Errorf("item %d: TotalTime %v, want %v", i, it.Response.TotalTime, want.TotalTime)
		}
	}
	if items[3].Code != "invalid_model" {
		t.Errorf("invalid job code = %q, want invalid_model", items[3].Code)
	}
	if items[4].Code != "invalid_model" {
		t.Errorf("null job code = %q, want invalid_model", items[4].Code)
	}
}

// TestRouterDrainNoLeak mirrors the serve drain test: after Drain
// returns, no router goroutine (probe loop, in-flight hop) survives,
// and new work is refused typed.
func TestRouterDrainNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		srvs := make([]*httptest.Server, 2)
		urls := make([]string, 2)
		for i := range srvs {
			srvs[i] = httptest.NewServer(serve.New(serve.Config{Seed: int64(i) + 1}).Handler())
			urls[i] = srvs[i].URL
			defer srvs[i].Close()
		}
		rt, err := New(Config{
			Replicas:      urls,
			Seed:          1,
			ProbeInterval: 10 * time.Millisecond, // exercise the probe loop for real
			RetryBase:     time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Solve(context.Background(), testRequest(10)); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := rt.Drain(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
		if _, err := rt.Solve(context.Background(), testRequest(10)); !errors.Is(err, serve.ErrDraining) || !errors.Is(err, check.ErrOverloaded) {
			t.Errorf("post-drain solve err = %v, want ErrDraining ∧ ErrOverloaded", err)
		}
		// Draining must flow through to the health endpoint contract.
		if !rt.Draining() {
			t.Error("Draining() = false after Drain")
		}
	}()
	waitForGoroutines(t, before)
}

// TestRouterProbeMarksDownAndUp: the active prober takes a dead
// replica out of rotation and restores it when it answers again.
func TestRouterProbeMarksDownAndUp(t *testing.T) {
	f := newTestFleet(t, 2, func(c *Config) {
		c.ProbeInterval = 10 * time.Millisecond
		c.ProbeTimeout = 200 * time.Millisecond
		c.ProbeFails = 2
	})
	f.injector[0].Set(chaos.Fault{Mode: chaos.Error, Status: http.StatusInternalServerError})
	waitFor(t, func() bool { return !f.router.reps[0].healthy.Load() })
	f.injector[0].Set(chaos.Fault{Mode: chaos.None})
	waitFor(t, func() bool { return f.router.reps[0].healthy.Load() })
	if fails := f.router.reps[0].probeFails.Load(); fails != 0 {
		t.Errorf("probe-fail streak = %d after recovery, want 0", fails)
	}
}

// TestRouterStatsPayload: the /stats body carries the per-replica
// health view and the routing counters.
func TestRouterStatsPayload(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	if _, err := f.router.Solve(context.Background(), testRequest(10)); err != nil {
		t.Fatal(err)
	}
	body, ok := f.router.StatsPayload().(statsBody)
	if !ok {
		t.Fatalf("StatsPayload is %T, want statsBody", f.router.StatsPayload())
	}
	if body.Mode != "router" {
		t.Errorf("mode = %q", body.Mode)
	}
	if body.Requests != 1 {
		t.Errorf("requests = %d, want 1", body.Requests)
	}
	if len(body.Replicas) != 2 {
		t.Fatalf("replicas = %d, want 2", len(body.Replicas))
	}
	for _, rs := range body.Replicas {
		if !rs.Healthy {
			t.Errorf("replica %s unhealthy in a live fleet", rs.URL)
		}
		if rs.Breaker != "closed" {
			t.Errorf("replica %s breaker = %q, want closed", rs.URL, rs.Breaker)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// waitForGoroutines asserts the goroutine count settles back to the
// baseline (HTTP client/server teardown is asynchronous for a few
// scheduler ticks).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutine leak: %d before, %d after\n%s", baseline, runtime.NumGoroutine(), buf[:n])
}
