package fleet

import (
	"finwl/internal/obs"
	"finwl/internal/serve"
)

// fleetMetrics is the router's registry-backed instrument set. Names
// use the finwl_fleet_ prefix (the routing fabric, as opposed to the
// finwld_ serving counters a replica carries): failover and spillover
// totals are the acceptance signals for the chaos harness, the hop
// histogram is the router's added latency, and the per-replica gauges
// registered in registerReplicaMetrics expose each backend's health.
type fleetMetrics struct {
	requests    *obs.Counter
	invalid     *obs.Counter
	failovers   *obs.Counter
	spillovers  *obs.Counter
	faults      *obs.Counter // replica-fault hops (transport error / untyped 5xx)
	unavailable *obs.Counter // requests that exhausted every candidate
	canceled    *obs.Counter
	takeovers   *obs.Counter // orphaned jobs re-dispatched to a ring successor
	cacheWarm   *obs.Counter // write-back solves replayed at a recovered replica

	// Passive-health breaker transitions across all replicas, labeled
	// by the state entered.
	brClosed   *obs.Counter
	brOpen     *obs.Counter
	brHalfOpen *obs.Counter

	hopSeconds *obs.Histogram // successful forwarded-hop latency, ns
}

func newFleetMetrics(reg *obs.Registry) *fleetMetrics {
	br := func(state serve.BreakerState) *obs.Counter {
		return reg.Counter("finwl_fleet_breaker_transitions_total",
			"Per-replica passive-health breaker transitions, labeled by the state entered.",
			obs.L("state", state.String()))
	}
	return &fleetMetrics{
		requests:    reg.Counter("finwl_fleet_requests_total", "Requests received by the router."),
		invalid:     reg.Counter("finwl_fleet_invalid_total", "Requests rejected at the router for an invalid model (never forwarded)."),
		failovers:   reg.Counter("finwl_fleet_failover_total", "Hops forwarded to a replica other than the request's first choice."),
		spillovers:  reg.Counter("finwl_fleet_spillover_total", "Requests diverted off a saturated owner by the weighted-load rule."),
		faults:      reg.Counter("finwl_fleet_replica_faults_total", "Forwarding attempts that hit a transport error or untyped replica failure."),
		unavailable: reg.Counter("finwl_fleet_unavailable_total", "Requests that exhausted every candidate replica."),
		canceled:    reg.Counter("finwl_fleet_canceled_total", "Requests canceled or past their deadline at the router."),
		takeovers:   reg.Counter("finwl_fleet_job_takeover_total", "Orphaned async jobs re-dispatched to a ring successor after their owner was marked down."),
		cacheWarm:   reg.Counter("finwl_fleet_cache_warm_total", "Failover-answered solves replayed at the owning replica once its probe recovered."),

		brClosed:   br(serve.BreakerClosed),
		brOpen:     br(serve.BreakerOpen),
		brHalfOpen: br(serve.BreakerHalfOpen),

		hopSeconds: reg.Histogram("finwl_fleet_hop_seconds",
			"Latency of successful forwarded hops.", obs.ExpBounds(100_000, 4, 14), 1e-9),
	}
}

// breakerTransition is the hook handed to every replica's breaker.
func (m *fleetMetrics) breakerTransition(to serve.BreakerState) {
	switch to {
	case serve.BreakerClosed:
		m.brClosed.Inc()
	case serve.BreakerOpen:
		m.brOpen.Inc()
	case serve.BreakerHalfOpen:
		m.brHalfOpen.Inc()
	}
}

// registerReplicaMetrics exposes each replica's live health view as
// labeled scrape-time gauges, plus its probe-failure counter.
func registerReplicaMetrics(reg *obs.Registry, reps []*replica) {
	for _, rep := range reps {
		rep := rep
		l := obs.L("replica", rep.url)
		reg.GaugeFunc("finwl_fleet_replica_healthy",
			"1 while the replica's active health probe passes.", func() float64 {
				if rep.healthy.Load() {
					return 1
				}
				return 0
			}, l)
		reg.GaugeFunc("finwl_fleet_replica_breaker_open",
			"1 while the replica's passive-health breaker is open.", func() float64 {
				if rep.br.State() == serve.BreakerOpen {
					return 1
				}
				return 0
			}, l)
		reg.GaugeFunc("finwl_fleet_replica_ewma_seconds",
			"EWMA latency of hops to the replica.", func() float64 {
				return float64(rep.ewmaNs.Load()) / 1e9
			}, l)
		reg.GaugeFunc("finwl_fleet_replica_inflight",
			"Hops the router currently has outstanding against the replica.", func() float64 {
				return float64(rep.inflight.Load())
			}, l)
		reg.GaugeFunc("finwl_fleet_replica_queued",
			"Replica admission-queue depth from its last /stats scrape.", func() float64 {
				return float64(rep.queued.Load())
			}, l)
		rep.probeFailC = reg.Counter("finwl_fleet_probe_failures_total",
			"Failed active health probes.", l)
	}
}
