package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"finwl/internal/batch"
	"finwl/internal/check"
	"finwl/internal/cliutil"
	"finwl/internal/obs"
	"finwl/internal/serve"
)

// Config tunes the fleet router. Zero values take the defaults noted
// below.
type Config struct {
	Replicas []string // replica base URLs (required, ≥1)
	Vnodes   int      // virtual nodes per replica on the ring (default 64)

	// Active health: /healthz polled every ProbeInterval with a
	// ProbeTimeout budget; ProbeFails consecutive failures mark the
	// replica down until a probe passes again.
	ProbeInterval time.Duration // default 2s
	ProbeTimeout  time.Duration // default 1s
	ProbeFails    int           // default 2

	// Passive health: each replica's breaker trips after
	// BreakerThreshold consecutive replica faults (transport errors,
	// untyped 5xx) and half-opens after BreakerCooldown.
	BreakerThreshold int           // default 3
	BreakerCooldown  time.Duration // default 2s

	// Failover: up to Retries additional replicas are tried after the
	// first choice, with exponential backoff + jitter between attempts.
	// 0 = try every remaining replica; negative disables failover.
	Retries    int
	RetryBase  time.Duration // first failover backoff (default 25ms)
	MaxTimeout time.Duration // cap and default for request deadlines (default 60s)
	// HopTimeout bounds a single forwarding attempt, so a partitioned
	// replica (reachable but never answering) burns one hop budget, not
	// the whole request deadline, before failover (default 15s).
	HopTimeout time.Duration

	// Spillover: divert off a healthy owner when its outstanding depth
	// reaches SpillDepth and its weighted load (depth × EWMA latency)
	// exceeds SpillFactor times the least-loaded healthy replica's.
	// SpillFactor ≤ 0 disables spillover.
	SpillFactor float64 // default 2.0
	SpillDepth  int     // default 4
	EWMAAlpha   float64 // hop-latency EWMA smoothing (default 0.3)

	MaxBatchJobs int // max jobs per /batch submission (default 256)

	// Durability: a non-empty JournalDir journals every routed /jobs
	// submission (and its takeover/done transitions) to
	// JournalDir/router.jsonl, replayed at boot so orphan takeover
	// survives a router restart. Fsync follows batch.ParseFsyncPolicy
	// (always|interval|never, default interval); JournalHooks inject
	// disk faults for chaos testing.
	JournalDir   string
	Fsync        string
	JournalHooks batch.JournalHooks

	Client *http.Client     // forwarding client (default cliutil.DefaultClient)
	Seed   int64            // backoff-jitter seed (default: wall clock)
	Now    func() time.Time // test hook for breaker clocks
	Logger *slog.Logger     // request + health-transition log; nil disables
}

func (c Config) withDefaults() Config {
	if c.Vnodes == 0 {
		c.Vnodes = defaultVnodes
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProbeFails == 0 {
		c.ProbeFails = 2
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = len(c.Replicas) - 1
	} else if c.Retries < 0 {
		c.Retries = 0
	}
	if c.RetryBase == 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.HopTimeout == 0 {
		c.HopTimeout = 15 * time.Second
	}
	if c.SpillFactor == 0 {
		c.SpillFactor = 2.0
	}
	if c.SpillDepth == 0 {
		c.SpillDepth = 4
	}
	if c.EWMAAlpha == 0 {
		c.EWMAAlpha = 0.3
	}
	if c.MaxBatchJobs == 0 {
		c.MaxBatchJobs = 256
	}
	if c.Client == nil {
		c.Client = cliutil.DefaultClient
	}
	if c.Seed == 0 {
		c.Seed = time.Now().UnixNano()
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Router forwards each request to the replica owning its model's
// shard, failing over along the ring when the owner is down and
// spilling to the least-loaded healthy replica when the owner is
// saturated. It implements serve.Service, so serve.NewFront gives it
// the same HTTP surface (and wire contract) as an embedded server.
type Router struct {
	cfg  Config
	reps []*replica
	ring *ring
	rand *lockedRand

	draining atomic.Bool
	wg       sync.WaitGroup // in-flight Solve/SolveBatch calls

	workCtx     context.Context // canceled when a drain deadline expires
	workCancel  context.CancelFunc
	probeCancel context.CancelFunc
	probeDone   chan struct{}

	// Async-job routing: which replica owns which routed job, journaled
	// (nil journal = memory only) so takeover survives a restart.
	jobs    *jobTracker
	journal *batch.Journal

	reg *obs.Registry
	m   *fleetMetrics
}

// New builds a Router over cfg.Replicas and starts its health-probe
// loop; call Drain to stop it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, check.Invalid("fleet: no replicas configured")
	}
	cfg = cfg.withDefaults()
	workCtx, workCancel := context.WithCancel(context.Background())
	probeCtx, probeCancel := context.WithCancel(context.Background())
	reg := obs.NewRegistry()
	rt := &Router{
		cfg:         cfg,
		rand:        &lockedRand{r: rand.New(rand.NewSource(cfg.Seed))},
		workCtx:     workCtx,
		workCancel:  workCancel,
		probeCancel: probeCancel,
		probeDone:   make(chan struct{}),
		jobs:        newJobTracker(),
		reg:         reg,
		m:           newFleetMetrics(reg),
	}
	for _, url := range cfg.Replicas {
		url = strings.TrimRight(strings.TrimSpace(url), "/")
		if url == "" {
			return nil, check.Invalid("fleet: empty replica URL")
		}
		br := serve.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now, rt.m.breakerTransition)
		rt.reps = append(rt.reps, newReplica(url, br))
	}
	rt.ring = newRing(len(rt.reps), cfg.Vnodes)
	registerReplicaMetrics(reg, rt.reps)
	if cfg.JournalDir != "" {
		if err := rt.openJournal(cfg); err != nil {
			workCancel()
			probeCancel()
			return nil, err
		}
	}
	go rt.probeLoop(probeCtx)
	return rt, nil
}

// Metrics returns the router's metric registry, for embedding into a
// combined /metrics page.
func (rt *Router) Metrics() *obs.Registry { return rt.reg }

// Handler returns the router's HTTP surface: the shared serve.Front
// with the async /jobs routes forwarded to the replica owning each
// job (the Router implements serve.JobRunner).
func (rt *Router) Handler() http.Handler {
	return serve.NewFront(rt, rt, serve.FrontConfig{
		Logger:       rt.cfg.Logger,
		MaxBatchJobs: rt.cfg.MaxBatchJobs,
		Registries:   []*obs.Registry{rt.reg, obs.Default},
	}).Handler()
}

// Draining reports whether Drain has been called (serve.Service).
func (rt *Router) Draining() bool { return rt.draining.Load() }

func draining() error {
	return fmt.Errorf("%w: %w", serve.ErrDraining, check.ErrOverloaded)
}

// Solve forwards one request to the replica owning its shard, walking
// the failover plan on replica faults (serve.Service). A degraded
// replica answer returns both the usable Response and an error
// matching check.ErrDegraded, exactly like an embedded server; the
// response's RoutedVia names the replica that answered and why it was
// chosen (owner, spillover, failover, last-resort).
func (rt *Router) Solve(ctx context.Context, req *serve.Request) (*serve.Response, error) {
	rt.m.requests.Inc()
	rt.wg.Add(1)
	defer rt.wg.Done()
	if rt.draining.Load() {
		return nil, draining()
	}
	// Building the network locally both computes the shard key and
	// rejects invalid models at the router with zero hops — a typed 400
	// must never burn failover retries.
	net, err := req.BuildNetwork()
	if err != nil {
		rt.m.invalid.Inc()
		return nil, err
	}
	key := serve.ShardKey(net, req.K)

	timeout := rt.cfg.MaxTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	stop := context.AfterFunc(rt.workCtx, cancel)
	defer stop()

	plan, spilled := rt.plan(key)
	if spilled {
		rt.m.spillovers.Inc()
	}
	resp, via, err := walk(rt, ctx, plan, spilled, func(ctx context.Context, rep *replica) (*serve.Response, error) {
		return rt.forwardSolve(ctx, rep, req)
	})
	if err != nil {
		if errors.Is(err, check.ErrCanceled) {
			rt.m.canceled.Inc()
		}
		return nil, err
	}
	resp.RoutedVia = via
	rt.noteFailover(key, via, req)
	if resp.Degraded() {
		return resp, &serve.DegradedError{Fidelity: resp.Fidelity, Reason: resp.DegradedFrom}
	}
	return resp, nil
}

// SolveBatch scatter-gathers a batch: jobs are grouped by the replica
// owning their shard (preserving the chain-sharing the replica's own
// batch scheduler performs within each group), groups forward
// concurrently with the same failover walk as single solves, and
// per-group failures are typed into their items (serve.Service).
func (rt *Router) SolveBatch(ctx context.Context, reqs []*serve.Request) []serve.BatchItem {
	rt.wg.Add(1)
	defer rt.wg.Done()
	items := make([]serve.BatchItem, len(reqs))
	if rt.draining.Load() {
		err := draining()
		for i := range items {
			items[i] = errBatchItem(err)
		}
		return items
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.MaxTimeout)
	defer cancel()
	stop := context.AfterFunc(rt.workCtx, cancel)
	defer stop()

	// Group by ring owner; the first job of each group donates the
	// failover plan (all members share seq[0], the owner).
	groups := make(map[int][]int)
	plans := make(map[int][]int)
	for i, req := range reqs {
		if req == nil {
			items[i] = errBatchItem(check.Invalid("fleet: batch job %d is null", i))
			continue
		}
		net, err := req.BuildNetwork()
		if err != nil {
			rt.m.invalid.Inc()
			items[i] = errBatchItem(err)
			continue
		}
		key := serve.ShardKey(net, req.K)
		owner := rt.ring.owner(key)
		if _, ok := plans[owner]; !ok {
			plans[owner] = rt.ring.sequence(key)
		}
		groups[owner] = append(groups[owner], i)
	}

	var wg sync.WaitGroup
	for owner, idxs := range groups {
		wg.Add(1)
		go func(plan, idxs []int) {
			defer wg.Done()
			sub := make([]*serve.Request, len(idxs))
			for j, i := range idxs {
				sub[j] = reqs[i]
			}
			res, via, err := walk(rt, ctx, plan, false, func(ctx context.Context, rep *replica) ([]serve.BatchItem, error) {
				return rt.forwardBatch(ctx, rep, sub)
			})
			if err != nil && res == nil {
				for _, i := range idxs {
					items[i] = errBatchItem(err)
				}
				return
			}
			for j, i := range idxs {
				if j < len(res) {
					if res[j].Response != nil {
						res[j].Response.RoutedVia = via
					}
					items[i] = res[j]
				} else {
					items[i] = errBatchItem(fmt.Errorf("fleet: replica returned %d items for %d jobs: %w", len(res), len(idxs), check.ErrNumeric))
				}
			}
		}(plans[owner], idxs)
	}
	wg.Wait()
	return items
}

func errBatchItem(err error) serve.BatchItem {
	return serve.BatchItem{Error: err.Error(), Code: serve.CodeOf(err)}
}

// plan returns the candidate replicas for key in try order: the ring
// sequence, except that a healthy-but-saturated owner is demoted
// behind the least-loaded healthy replica (spillover). A down or
// tripped owner is left in place — the failover walk skips it without
// charging the spillover counter.
func (rt *Router) plan(key string) (seq []int, spilled bool) {
	seq = rt.ring.sequence(key)
	if len(seq) < 2 || rt.cfg.SpillFactor <= 0 {
		return seq, false
	}
	owner := rt.reps[seq[0]]
	if !owner.routable() || owner.depth() < int64(rt.cfg.SpillDepth) {
		return seq, false
	}
	best := -1
	var bestLoad float64
	for _, idx := range seq[1:] {
		r := rt.reps[idx]
		if !r.routable() {
			continue
		}
		if l := r.load(); best == -1 || l < bestLoad {
			best, bestLoad = idx, l
		}
	}
	if best == -1 || owner.load() < rt.cfg.SpillFactor*bestLoad {
		return seq, false
	}
	out := make([]int, 0, len(seq))
	out = append(out, best, seq[0])
	for _, idx := range seq[1:] {
		if idx != best {
			out = append(out, idx)
		}
	}
	return out, true
}

// hopVerdict classifies one forwarding attempt's outcome for the walk.
type hopVerdict int

const (
	hopOK          hopVerdict = iota
	hopPassThrough            // typed, deterministic: return to caller unretried
	hopCanceled               // caller's deadline/cancel: stop, budget is spent
	hopBusy                   // replica alive but refusing (429/503): retry elsewhere
	hopFault                  // transport error or untyped failure: replica fault
)

func classify(err error) hopVerdict {
	switch {
	case err == nil:
		return hopOK
	case errors.Is(err, check.ErrCanceled):
		return hopCanceled
	case errors.Is(err, check.ErrInvalidModel),
		errors.Is(err, check.ErrSingular),
		errors.Is(err, check.ErrNumeric),
		errors.Is(err, check.ErrNotConverged),
		errors.Is(err, check.ErrDegraded):
		// Deterministic verdicts about the model, not the replica; a
		// second replica would compute the same answer.
		return hopPassThrough
	case errors.Is(err, check.ErrOverloaded):
		return hopBusy
	default:
		return hopFault
	}
}

// walk tries the candidate replicas in plan order until one yields a
// usable outcome. Each attempt settles the replica's passive-health
// breaker: success and coherent typed answers count as health, faults
// trip it, and cancellation aborts a half-open probe without verdict.
// Replicas marked down by the active prober or with an open breaker
// are skipped; if that skips everyone, the first candidate gets one
// last-resort attempt (probe state can be stale). The returned via
// string records which replica answered and why it was chosen.
func walk[T any](rt *Router, ctx context.Context, plan []int, spilled bool, do func(ctx context.Context, rep *replica) (T, error)) (T, string, error) {
	var zero T
	var lastErr error
	attempts := 0
	for i, idx := range plan {
		if attempts > rt.cfg.Retries {
			break
		}
		rep := rt.reps[idx]
		if !rep.healthy.Load() {
			lastErr = fmt.Errorf("fleet: replica %s marked down", rep.url)
			continue
		}
		allowed, probe := rep.br.Allow()
		if !allowed {
			lastErr = fmt.Errorf("fleet: replica %s breaker open", rep.url)
			continue
		}
		if attempts > 0 {
			if err := rt.backoff(ctx, attempts); err != nil {
				if probe {
					rep.br.AbortProbe()
				}
				return zero, "", err
			}
		}
		attempts++
		if i > 0 {
			rt.m.failovers.Inc()
		}
		out, elapsed, err := boundedAttempt(rt, ctx, rep, do)
		switch classify(err) {
		case hopOK:
			rep.br.OnSuccess()
			rep.observe(int64(elapsed), rt.cfg.EWMAAlpha)
			rt.m.hopSeconds.ObserveDuration(elapsed)
			return out, via(rep, i, spilled), nil
		case hopPassThrough:
			rep.br.OnSuccess()
			rep.observe(int64(elapsed), rt.cfg.EWMAAlpha)
			return zero, "", err
		case hopCanceled:
			if probe {
				rep.br.AbortProbe()
			}
			return zero, "", err
		case hopBusy:
			rep.br.OnSuccess()
			lastErr = err
		case hopFault:
			rep.br.OnFailure()
			rt.m.faults.Inc()
			lastErr = err
			if rt.cfg.Logger != nil {
				rt.cfg.Logger.Warn("replica fault", "replica", rep.url, "error", err)
			}
		}
	}
	if attempts == 0 && len(plan) > 0 {
		// Every candidate was skipped on recorded state; probes run on
		// an interval and breakers on a cooldown, so the state may be
		// stale. One unguarded attempt at the owner beats returning 503
		// on what might be a recovered fleet.
		rep := rt.reps[plan[0]]
		out, elapsed, err := boundedAttempt(rt, ctx, rep, do)
		switch classify(err) {
		case hopOK:
			rep.br.OnSuccess()
			rep.observe(int64(elapsed), rt.cfg.EWMAAlpha)
			rt.m.hopSeconds.ObserveDuration(elapsed)
			return out, via(rep, -1, false), nil
		case hopPassThrough, hopCanceled:
			return zero, "", err
		default:
			lastErr = err
		}
	}
	rt.m.unavailable.Inc()
	return zero, "", serve.Unavailable(lastErr)
}

// boundedAttempt cannot be a Router method (methods take no type
// parameters), so it hangs off the router by convention: one hop under
// the per-hop deadline, with in-flight accounting and timing. A hop
// that exhausted its own budget while the request is still alive —
// the signature of a partitioned or hung replica — is rewritten from
// "canceled" to an untyped fault so the walk retries it elsewhere
// instead of passing a 504 to the caller.
func boundedAttempt[T any](rt *Router, ctx context.Context, rep *replica, do func(ctx context.Context, rep *replica) (T, error)) (T, time.Duration, error) {
	hopCtx, cancel := context.WithTimeout(ctx, rt.cfg.HopTimeout)
	defer cancel()
	rep.inflight.Add(1)
	start := time.Now()
	out, err := do(hopCtx, rep)
	elapsed := time.Since(start)
	rep.inflight.Add(-1)
	if err != nil && errors.Is(err, check.ErrCanceled) && hopCtx.Err() != nil && ctx.Err() == nil {
		err = fmt.Errorf("fleet: replica %s: no answer within hop budget %v", rep.url, rt.cfg.HopTimeout)
	}
	return out, elapsed, err
}

// via renders the RoutedVia tag: why this replica, then its address.
func via(rep *replica, planIdx int, spilled bool) string {
	reason := "owner"
	switch {
	case planIdx < 0:
		reason = "last-resort"
	case planIdx > 0:
		reason = "failover"
	case spilled:
		reason = "spillover"
	}
	return reason + " " + rep.url
}

// backoff sleeps the exponential failover delay with jitter in
// [d, 2d), honoring cancellation.
func (rt *Router) backoff(ctx context.Context, attempt int) error {
	d := rt.cfg.RetryBase << (attempt - 1)
	if limit := time.Second; d > limit {
		d = limit
	}
	d += time.Duration(rt.rand.Int63n(int64(d) + 1))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return check.Canceled(ctx)
	case <-timer.C:
		return nil
	}
}

// forwardSolve POSTs one request to rep's /solve and reconstructs the
// typed outcome: 2xx decodes to a Response (degraded answers included
// — they are 200s on the wire), anything else round-trips through
// serve.ErrorFromWire back to the sentinel the replica raised.
func (rt *Router) forwardSolve(ctx context.Context, rep *replica, req *serve.Request) (*serve.Response, error) {
	var out serve.Response
	if err := rt.roundTrip(ctx, rep, "/solve", req, nil, maxSolveRespBytes, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// forwardBatch POSTs a job group to rep's /batch. The items arrive
// with per-job errors already typed by the replica; only whole-batch
// failures (transport, 400/429/503) surface as an error here.
func (rt *Router) forwardBatch(ctx context.Context, rep *replica, reqs []*serve.Request) ([]serve.BatchItem, error) {
	var out []serve.BatchItem
	if err := rt.roundTrip(ctx, rep, "/batch", reqs, rt.idemHeader(ctx), maxBatchRespBytes, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// idemHeader propagates a client-supplied Idempotency-Key through a
// forwarded /batch hop, so the owning replica's dedup window — not
// just the router's — absorbs redeliveries.
func (rt *Router) idemHeader(ctx context.Context) http.Header {
	if key := serve.IdempotencyKeyFrom(ctx); key != "" {
		return http.Header{"Idempotency-Key": []string{key}}
	}
	return nil
}

const (
	maxSolveRespBytes = 1 << 20
	maxBatchRespBytes = 32 << 20
)

func (rt *Router) roundTrip(ctx context.Context, rep *replica, path string, in any, hdr http.Header, limit int64, out any) error {
	httpReq, err := cliutil.NewJSONRequest(ctx, http.MethodPost, rep.url+path, in)
	if err != nil {
		return err
	}
	for k, vs := range hdr {
		httpReq.Header[k] = vs
	}
	return rt.do(ctx, rep, httpReq, limit, out)
}

// getJSON is roundTrip's GET twin (job polling): same decode limits,
// same typed error reconstruction.
func (rt *Router) getJSON(ctx context.Context, rep *replica, path string, limit int64, out any) error {
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+path, nil)
	if err != nil {
		return err
	}
	return rt.do(ctx, rep, httpReq, limit, out)
}

func (rt *Router) do(ctx context.Context, rep *replica, httpReq *http.Request, limit int64, out any) error {
	res, err := rt.cfg.Client.Do(httpReq)
	if err != nil {
		if ctx.Err() != nil {
			return check.Canceled(ctx)
		}
		return fmt.Errorf("fleet: replica %s: %w", rep.url, err)
	}
	defer res.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(res.Body, limit))
	if err != nil {
		if ctx.Err() != nil {
			return check.Canceled(ctx)
		}
		return fmt.Errorf("fleet: replica %s: read response: %w", rep.url, err)
	}
	if res.StatusCode >= 200 && res.StatusCode <= 299 {
		if err := json.Unmarshal(raw, out); err != nil {
			// An untyped failure: a 2xx that does not parse is a replica
			// fault and the walk will retry elsewhere.
			return fmt.Errorf("fleet: replica %s: bad response body: %v", rep.url, err)
		}
		return nil
	}
	var body serve.ErrorBody
	_ = json.Unmarshal(raw, &body) // non-JSON bodies (proxy, chaos) stay untyped
	return serve.ErrorFromWire(res.StatusCode, body)
}

// probeLoop is the active health prober: every ProbeInterval each
// replica's /healthz is checked (2xx = alive and not draining) and its
// /stats queue depth scraped for the spillover weight.
func (rt *Router) probeLoop(ctx context.Context) {
	defer close(rt.probeDone)
	rt.probeAll(ctx)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.probeAll(ctx)
		}
	}
}

func (rt *Router) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, rep := range rt.reps {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			rt.probe(ctx, rep)
		}(rep)
	}
	wg.Wait()
}

func (rt *Router) probe(ctx context.Context, rep *replica) {
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	status, err := cliutil.GetJSON(ctx, rt.cfg.Client, rep.url+"/healthz", nil)
	if err != nil || status != http.StatusOK {
		if rep.probeFailC != nil {
			rep.probeFailC.Inc()
		}
		if rep.probeFails.Add(1) >= int64(rt.cfg.ProbeFails) {
			if rep.healthy.Swap(false) {
				if rt.cfg.Logger != nil {
					rt.cfg.Logger.Warn("replica down", "replica", rep.url, "error", err, "status", status)
				}
				// The down transition is the orphan-takeover trigger: every
				// unfinished job this replica owned moves to its ring
				// successor. Swap makes the transition fire exactly once
				// per down episode.
				rt.takeover(rep.url)
			}
		}
		return
	}
	rep.probeFails.Store(0)
	if !rep.healthy.Swap(true) && rt.cfg.Logger != nil {
		rt.cfg.Logger.Info("replica up", "replica", rep.url)
	}
	var st struct {
		Queued    int    `json:"queued"`
		ReplicaID string `json:"replica_id"`
	}
	if s, err := cliutil.GetJSON(ctx, rt.cfg.Client, rep.url+"/stats", &st); err == nil && s == http.StatusOK {
		rep.queued.Store(int64(st.Queued))
		if st.ReplicaID != "" {
			rep.setReplicaID(st.ReplicaID)
		}
	}
	// A passing probe also drains the replica's cache write-back queue:
	// requests answered elsewhere while it was down replay against it
	// so its caches are warm before the ring routes traffic back.
	rt.warmPeer(rep)
}

// Drain gracefully shuts the router down: new requests fail typed
// 503-draining, the probe loop stops, and in-flight hops get until ctx
// to finish before being force-canceled. When Drain returns no router
// goroutine is still running.
func (rt *Router) Drain(ctx context.Context) error {
	rt.draining.Store(true)
	rt.probeCancel()
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		rt.workCancel()
		<-done
		err = fmt.Errorf("fleet: drain deadline expired, in-flight hops canceled: %w", check.ErrCanceled)
	}
	<-rt.probeDone
	rt.workCancel()
	rt.closeJournal()
	return err
}

// replicaStats is one backend's entry in the /stats payload.
type replicaStats struct {
	URL        string  `json:"url"`
	Healthy    bool    `json:"healthy"`
	Breaker    string  `json:"breaker"`
	EWMAMS     float64 `json:"ewma_ms"`
	Inflight   int64   `json:"inflight"`
	Queued     int64   `json:"queued"`
	ProbeFails int64   `json:"probe_fails"` // consecutive
}

// statsBody is the router's GET /stats payload.
type statsBody struct {
	Mode        string         `json:"mode"`
	Requests    int64          `json:"requests"`
	Invalid     int64          `json:"invalid"`
	Failovers   int64          `json:"failovers"`
	Spillovers  int64          `json:"spillovers"`
	Faults      int64          `json:"replica_faults"`
	Unavailable int64          `json:"unavailable"`
	Canceled    int64          `json:"canceled"`
	Takeovers   int64          `json:"job_takeovers"`
	CacheWarms  int64          `json:"cache_warms"`
	Draining    bool           `json:"draining"`
	Replicas    []replicaStats `json:"replicas"`
}

// StatsPayload is the GET /stats response body (serve.Service).
func (rt *Router) StatsPayload() any {
	body := statsBody{
		Mode:        "router",
		Requests:    rt.m.requests.Value(),
		Invalid:     rt.m.invalid.Value(),
		Failovers:   rt.m.failovers.Value(),
		Spillovers:  rt.m.spillovers.Value(),
		Faults:      rt.m.faults.Value(),
		Unavailable: rt.m.unavailable.Value(),
		Canceled:    rt.m.canceled.Value(),
		Takeovers:   rt.m.takeovers.Value(),
		CacheWarms:  rt.m.cacheWarm.Value(),
		Draining:    rt.draining.Load(),
	}
	for _, rep := range rt.reps {
		body.Replicas = append(body.Replicas, replicaStats{
			URL:        rep.url,
			Healthy:    rep.healthy.Load(),
			Breaker:    rep.br.State().String(),
			EWMAMS:     float64(rep.ewmaNs.Load()) / 1e6,
			Inflight:   rep.inflight.Load(),
			Queued:     rep.queued.Load(),
			ProbeFails: rep.probeFails.Load(),
		})
	}
	return body
}

// lockedRand is a mutex-guarded rand source for backoff jitter.
type lockedRand struct {
	mu sync.Mutex
	r  *rand.Rand
}

func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Int63n(n)
}
