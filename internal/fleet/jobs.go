package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"finwl/internal/batch"
	"finwl/internal/check"
	"finwl/internal/obs"
	"finwl/internal/serve"
)

// The router's async-job fabric. A submitted batch is forwarded whole
// to the replica owning its dominant shard key (so the replica's batch
// scheduler keeps its chain-sharing), and the router remembers which
// replica owns which job ID. That memory — journaled when a JournalDir
// is configured — is what makes orphan takeover possible: when the
// active prober marks a replica down, every job it still owned is
// re-dispatched to its ring successor under the same idempotency key,
// so a redelivery race (or a router restart mid-takeover) cannot run
// the work twice on one replica.

// trackCap bounds the router's job memory; oldest finished jobs are
// evicted first, falling back to ID-prefix routing for their GETs.
const trackCap = 4096

// fleetJob is the router's record of one routed async job.
type fleetJob struct {
	id      string          // job ID minted by the owning replica
	idemKey string          // idempotency key (generated when the client sent none)
	key     string          // dominant shard key, for the takeover successor walk
	owner   string          // URL of the replica currently running the job
	reqs    json.RawMessage // submitted payload, kept until done for redispatch
	newID   string          // post-takeover job ID on the successor ("" before)
	done    bool
	taken   bool // takeover claimed (exactly-once guard)
}

// jobTracker is the mutex-guarded job memory.
type jobTracker struct {
	mu    sync.Mutex
	byID  map[string]*fleetJob
	byKey map[string]string // idemKey → job ID
	order []string          // insertion order, for done-eviction
}

func newJobTracker() *jobTracker {
	return &jobTracker{byID: make(map[string]*fleetJob), byKey: make(map[string]string)}
}

// add inserts a job record; an ID already present (journal replay, a
// replica deduplicating a replayed key) is left untouched.
func (t *jobTracker) add(job *fleetJob) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[job.id]; ok {
		return false
	}
	for len(t.byID) >= trackCap {
		if !t.evictOldestDoneLocked() {
			break
		}
	}
	t.byID[job.id] = job
	t.order = append(t.order, job.id)
	if job.idemKey != "" {
		t.byKey[job.idemKey] = job.id
	}
	return true
}

func (t *jobTracker) evictOldestDoneLocked() bool {
	for i, id := range t.order {
		if job, ok := t.byID[id]; ok && job.done {
			delete(t.byID, id)
			if job.idemKey != "" && t.byKey[job.idemKey] == id {
				delete(t.byKey, job.idemKey)
			}
			t.order = append(t.order[:i], t.order[i+1:]...)
			return true
		}
	}
	return false
}

// get returns a snapshot of the record for id (copied so readers never
// hold the lock while forwarding).
func (t *jobTracker) get(id string) (fleetJob, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if job, ok := t.byID[id]; ok {
		return *job, true
	}
	return fleetJob{}, false
}

func (t *jobTracker) byIdemKey(key string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.byKey[key]
	return id, ok
}

// markDone records a terminal observation and drops the payload the
// record no longer needs.
func (t *jobTracker) markDone(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	job, ok := t.byID[id]
	if !ok || job.done {
		return false
	}
	job.done = true
	job.reqs = nil
	return true
}

// claimOrphans atomically claims every unfinished job owned by the
// dead replica for takeover. The claim is the exactly-once guard: a
// concurrent down-transition (or a re-probe) finds nothing left.
func (t *jobTracker) claimOrphans(deadURL string) []fleetJob {
	t.mu.Lock()
	defer t.mu.Unlock()
	var orphans []fleetJob
	for _, id := range t.order {
		job, ok := t.byID[id]
		if !ok || job.done || job.taken || job.owner != deadURL {
			continue
		}
		job.taken = true
		orphans = append(orphans, *job)
	}
	return orphans
}

// redirect records a completed takeover.
func (t *jobTracker) redirect(id, newID, newOwner string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if job, ok := t.byID[id]; ok {
		job.newID = newID
		job.owner = newOwner
	}
}

// release un-claims a job whose takeover found no healthy successor,
// so a later down-transition retries it.
func (t *jobTracker) release(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if job, ok := t.byID[id]; ok {
		job.taken = false
	}
}

// openJournal opens JournalDir/router.jsonl and rehydrates the job
// tracker from it, so takeover claims survive a router restart.
func (rt *Router) openJournal(cfg Config) error {
	policy, err := batch.ParseFsyncPolicy(cfg.Fsync)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(cfg.JournalDir, 0o755); err != nil {
		return fmt.Errorf("fleet: create journal dir: %w", err)
	}
	journal, entries, err := batch.OpenJournal(batch.JournalConfig{
		Path:   filepath.Join(cfg.JournalDir, "router.jsonl"),
		Fsync:  policy,
		Hooks:  cfg.JournalHooks,
		Logger: cfg.Logger,
		Now:    cfg.Now,
	})
	if err != nil {
		return err
	}
	rt.journal = journal
	for _, e := range entries {
		switch e.Op {
		case batch.OpSubmit:
			rt.jobs.add(&fleetJob{id: e.ID, idemKey: e.IdemKey, key: e.Key, owner: e.Owner, reqs: e.Reqs})
		case batch.OpRedispatch:
			rt.jobs.redirect(e.ID, e.NewID, e.Owner)
		case batch.OpDone:
			rt.jobs.markDone(e.ID)
		default:
			// Unknown (or replica-journal) ops: a newer build's records
			// must not wedge this one.
		}
	}
	return nil
}

func (rt *Router) closeJournal() {
	if rt.journal != nil {
		if err := rt.journal.Close(); err != nil && rt.cfg.Logger != nil {
			rt.cfg.Logger.Warn("router journal close failed", "error", err)
		}
	}
}

// dominantKey is the shard key most of the batch hashes to — the
// replica whose caches serve the largest share of the jobs. Invalid
// members don't vote (the owning replica types them into their items).
func (rt *Router) dominantKey(reqs []*serve.Request) string {
	counts := make(map[string]int)
	best, bestN := "", 0
	for _, req := range reqs {
		if req == nil {
			continue
		}
		net, err := req.BuildNetwork()
		if err != nil {
			continue
		}
		key := serve.ShardKey(net, req.K)
		counts[key]++
		if counts[key] > bestN {
			best, bestN = key, counts[key]
		}
	}
	return best
}

const maxSubmitRespBytes = 1 << 16

// submitOutcome carries the accepted job ID together with the replica
// that took it, which the walk's via string alone cannot.
type submitOutcome struct {
	id    string
	owner string
}

// SubmitJob forwards an async batch to the replica owning its dominant
// shard key (serve.JobRunner), walking the failover plan like a solve.
// The job is recorded — and journaled — as owned by the replica that
// accepted it, keyed by an idempotency key: the client's when supplied,
// a generated one otherwise, so takeover redispatch is always safe to
// repeat.
func (rt *Router) SubmitJob(ctx context.Context, reqs []*serve.Request, idemKey string) (string, error) {
	rt.wg.Add(1)
	defer rt.wg.Done()
	if rt.draining.Load() {
		return "", draining()
	}
	if idemKey != "" {
		if id, ok := rt.jobs.byIdemKey(idemKey); ok {
			return id, nil
		}
	} else {
		// Every routed job gets a key even when the client sent none:
		// the takeover redispatch depends on it to stay exactly-once.
		idemKey = "fleet-" + obs.NewRequestID()
	}
	raw, err := json.Marshal(reqs)
	if err != nil {
		return "", check.Invalid("fleet: marshal job submission: %v", err)
	}
	key := rt.dominantKey(reqs)

	ctx, cancel := context.WithTimeout(ctx, rt.cfg.MaxTimeout)
	defer cancel()
	stop := context.AfterFunc(rt.workCtx, cancel)
	defer stop()

	plan, spilled := rt.plan(key)
	if spilled {
		rt.m.spillovers.Inc()
	}
	out, _, err := walk(rt, ctx, plan, spilled, func(ctx context.Context, rep *replica) (submitOutcome, error) {
		id, err := rt.forwardSubmit(ctx, rep, raw, idemKey)
		return submitOutcome{id: id, owner: rep.url}, err
	})
	if err != nil {
		if errors.Is(err, check.ErrCanceled) {
			rt.m.canceled.Inc()
		}
		return "", err
	}
	if rt.jobs.add(&fleetJob{id: out.id, idemKey: idemKey, key: key, owner: out.owner, reqs: raw}) {
		rt.journal.Append(batch.Entry{Op: batch.OpSubmit, ID: out.id, IdemKey: idemKey, Owner: out.owner, Key: key, Reqs: raw})
	}
	return out.id, nil
}

func (rt *Router) forwardSubmit(ctx context.Context, rep *replica, raw json.RawMessage, idemKey string) (string, error) {
	var acc struct {
		ID string `json:"id"`
	}
	hdr := http.Header{"Idempotency-Key": []string{idemKey}}
	if err := rt.roundTrip(ctx, rep, "/jobs", raw, hdr, maxSubmitRespBytes, &acc); err != nil {
		return "", err
	}
	if acc.ID == "" {
		return "", fmt.Errorf("fleet: replica %s accepted a job without an id", rep.url)
	}
	return acc.ID, nil
}

// JobPayload fetches GET /jobs/{id} from the replica running the job
// (serve.JobRunner): by the router's own record when it has one,
// falling back to the ID's replica prefix for jobs the tracker has
// forgotten. Taken-over jobs are fetched under their successor ID and
// decorated with routed_via "takeover". Replica verdicts (404, 410)
// pass through typed.
func (rt *Router) JobPayload(ctx context.Context, id string) (any, error) {
	rt.wg.Add(1)
	defer rt.wg.Done()
	if rt.draining.Load() {
		return nil, draining()
	}
	ctx, cancel := context.WithTimeout(ctx, rt.cfg.MaxTimeout)
	defer cancel()
	stop := context.AfterFunc(rt.workCtx, cancel)
	defer stop()

	fetchID := id
	var rep *replica
	var tookOver bool
	if job, ok := rt.jobs.get(id); ok {
		if job.newID != "" {
			fetchID, tookOver = job.newID, true
		}
		rep = rt.repByURL(job.owner)
	} else {
		rep = rt.repByPrefix(id)
	}
	if rep == nil {
		return nil, fmt.Errorf("fleet: no replica known for job %q: %w", id, serve.ErrJobUnknown)
	}

	var body map[string]any
	if err := rt.getJSON(ctx, rep, "/jobs/"+fetchID, maxBatchRespBytes, &body); err != nil {
		if classify(err) == hopFault {
			// The owner is unreachable; if the prober agrees, takeover
			// will move the job and a re-poll finds it.
			return nil, serve.Unavailable(err)
		}
		return nil, err
	}
	if tookOver {
		// The client polled the original ID; keep it coherent and tag
		// the provenance like a failover solve does.
		body["id"] = id
		body["routed_via"] = "takeover"
	}
	if state, _ := body["state"].(string); state == "done" {
		if rt.jobs.markDone(id) {
			rt.journal.Append(batch.Entry{Op: batch.OpDone, ID: id})
		}
	}
	return body, nil
}

func (rt *Router) repByURL(url string) *replica {
	for _, rep := range rt.reps {
		if rep.url == url {
			return rep
		}
	}
	return nil
}

// repByPrefix routes a "replica/uuid" job ID by the replica-id prefix
// each backend publishes in its /stats (scraped by the prober).
func (rt *Router) repByPrefix(id string) *replica {
	prefix, _, ok := strings.Cut(id, "/")
	if !ok {
		return nil
	}
	for _, rep := range rt.reps {
		if rep.replicaID() == prefix {
			return rep
		}
	}
	return nil
}

// takeover re-dispatches every unfinished job owned by a replica the
// prober just marked down. Each orphan goes to the first healthy
// replica on its shard's ring sequence, under the same idempotency key
// the original submit carried — so if the "dead" owner actually
// accepted work, or a router restart replays a half-finished takeover,
// the successor's dedup window absorbs the repeat instead of running
// the batch twice.
func (rt *Router) takeover(deadURL string) {
	orphans := rt.jobs.claimOrphans(deadURL)
	for i := range orphans {
		rt.redispatch(&orphans[i], deadURL)
	}
}

func (rt *Router) redispatch(job *fleetJob, deadURL string) {
	ctx, cancel := context.WithTimeout(rt.workCtx, rt.cfg.HopTimeout)
	defer cancel()
	for _, idx := range rt.ring.sequence(job.key) {
		rep := rt.reps[idx]
		if rep.url == deadURL || !rep.routable() {
			continue
		}
		newID, err := rt.forwardSubmit(ctx, rep, job.reqs, job.idemKey)
		if err != nil {
			if rt.cfg.Logger != nil {
				rt.cfg.Logger.Warn("job takeover hop failed", "job", job.id, "successor", rep.url, "error", err)
			}
			continue
		}
		rt.jobs.redirect(job.id, newID, rep.url)
		rt.journal.Append(batch.Entry{Op: batch.OpRedispatch, ID: job.id, NewID: newID, IdemKey: job.idemKey, Key: job.key, Owner: rep.url})
		rt.m.takeovers.Inc()
		if rt.cfg.Logger != nil {
			rt.cfg.Logger.Info("job taken over", "job", job.id, "from", deadURL, "to", rep.url, "new_id", newID)
		}
		return
	}
	// No healthy successor right now: release the claim so the next
	// down-transition (or a later probe round) can retry.
	rt.jobs.release(job.id)
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Warn("job orphaned: no healthy successor", "job", job.id, "owner", deadURL)
	}
}

// noteFailover queues a solve answered away from its healthy-cache
// owner for cache write-back: when the owner's probe passes again, the
// queued requests are replayed against it so its result cache is warm
// before the ring routes traffic back.
func (rt *Router) noteFailover(key string, via string, req *serve.Request) {
	if !strings.HasPrefix(via, "failover ") && !strings.HasPrefix(via, "last-resort ") {
		return
	}
	owner := rt.ring.owner(key)
	if owner < 0 {
		return
	}
	rt.reps[owner].queueWarm(req)
}

// warmPeer replays the requests answered elsewhere while rep was down,
// fire-and-forget, so its caches are warm before the ring sends it
// traffic again. Runs synchronously on the probe goroutine — each POST
// is bounded by the hop timeout and the queue is small.
func (rt *Router) warmPeer(rep *replica) {
	reqs := rep.drainWarm()
	for _, req := range reqs {
		if rt.draining.Load() {
			return
		}
		ctx, cancel := context.WithTimeout(rt.workCtx, rt.cfg.HopTimeout)
		var out serve.Response
		err := rt.roundTrip(ctx, rep, "/solve", req, nil, maxSolveRespBytes, &out)
		cancel()
		if err == nil {
			rt.m.cacheWarm.Inc()
		}
	}
}
