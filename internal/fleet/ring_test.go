package fleet

import (
	"fmt"
	"testing"
)

// testKeys generates deterministic pseudo-shard keys.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("net-spec-%d|K=%d", i, i%7+1)
	}
	return keys
}

// TestRingSequenceCoversAllReplicas: the failover sequence visits
// every replica exactly once, starting at the owner.
func TestRingSequenceCoversAllReplicas(t *testing.T) {
	r := newRing(5, 0)
	for _, key := range testKeys(100) {
		seq := r.sequence(key)
		if len(seq) != 5 {
			t.Fatalf("sequence(%q) = %v, want 5 distinct replicas", key, seq)
		}
		if seq[0] != r.owner(key) {
			t.Fatalf("sequence(%q)[0] = %d, owner = %d", key, seq[0], r.owner(key))
		}
		seen := make(map[int]bool)
		for _, idx := range seq {
			if seen[idx] {
				t.Fatalf("sequence(%q) repeats replica %d: %v", key, idx, seq)
			}
			seen[idx] = true
		}
	}
}

// TestRingSpread: with vnodes, no replica owns a wildly
// disproportionate share of the key space.
func TestRingSpread(t *testing.T) {
	const replicas, keys = 4, 8000
	r := newRing(replicas, 0)
	counts := make([]int, replicas)
	for _, key := range testKeys(keys) {
		counts[r.owner(key)]++
	}
	for i, c := range counts {
		share := float64(c) / keys
		if share < 0.10 || share > 0.45 {
			t.Errorf("replica %d owns %.1f%% of keys (counts %v); want roughly balanced", i, 100*share, counts)
		}
	}
}

// TestRingConsistency is the consistent-hashing property the
// cache-affinity design depends on: removing one replica of R moves
// only that replica's keys (everyone else's owner is unchanged), and
// adding a replica moves only ~1/(R+1) of the keys.
func TestRingConsistency(t *testing.T) {
	const keys = 8000
	small := newRing(3, 0) // replicas 0,1,2
	big := newRing(4, 0)   // replicas 0,1,2,3 — same vnode points for 0..2

	// Removal direction: keys big maps to 0..2 must keep their owner in
	// small (only replica 3's keys may move).
	for _, key := range testKeys(keys) {
		if o := big.owner(key); o != 3 && small.owner(key) != o {
			t.Fatalf("key %q moved %d → %d when replica 3 was removed", key, o, small.owner(key))
		}
	}

	// Addition direction: going 3 → 4 replicas moves about 1/4 of keys
	// (those replica 3 claims). Allow generous slack for hash variance.
	moved := 0
	for _, key := range testKeys(keys) {
		if small.owner(key) != big.owner(key) {
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac < 0.10 || frac > 0.45 {
		t.Errorf("adding a 4th replica moved %.1f%% of keys; want ~25%%", 100*frac)
	}
}

// TestRingEmpty: a ring with no points degrades safely.
func TestRingEmpty(t *testing.T) {
	r := &ring{}
	if got := r.owner("x"); got != -1 {
		t.Errorf("empty ring owner = %d, want -1", got)
	}
	if seq := r.sequence("x"); len(seq) != 0 {
		t.Errorf("empty ring sequence = %v, want empty", seq)
	}
}
