package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"finwl/internal/fleet/chaos"
	"finwl/internal/serve"
)

// waitFleetJobDone polls the router's JobPayload until the job reports
// done, absorbing transient unavailability (a takeover in flight).
func waitFleetJobDone(t *testing.T, rt *Router, id string) map[string]any {
	t.Helper()
	var body map[string]any
	waitFor(t, func() bool {
		payload, err := rt.JobPayload(context.Background(), id)
		if err != nil {
			return false
		}
		body = payload.(map[string]any)
		state, _ := body["state"].(string)
		return state == "done"
	})
	return body
}

// resultTotalTimes extracts each result's total_time from the wire-shape
// job body the router returns.
func resultTotalTimes(t *testing.T, body map[string]any) []float64 {
	t.Helper()
	results, ok := body["results"].([]any)
	if !ok {
		t.Fatalf("job body has no results: %v", body)
	}
	out := make([]float64, len(results))
	for i, raw := range results {
		item, _ := raw.(map[string]any)
		resp, _ := item["response"].(map[string]any)
		tt, ok := resp["total_time"].(float64)
		if !ok {
			t.Fatalf("result %d missing response.total_time: %v", i, item)
		}
		out[i] = tt
	}
	return out
}

// TestRouterJobSubmitPoll: a batch submitted through the router lands
// whole on one replica, polls to done with answers matching a direct
// solve, and a repeat submit under the same idempotency key returns the
// same job rather than a new one.
func TestRouterJobSubmitPoll(t *testing.T) {
	f := newTestFleet(t, 3, nil)
	reqs := []*serve.Request{testRequest(10), testRequest(20), testRequest(31)}

	id, err := f.router.SubmitJob(context.Background(), reqs, "idem-poll")
	if err != nil {
		t.Fatal(err)
	}
	again, err := f.router.SubmitJob(context.Background(), reqs, "idem-poll")
	if err != nil {
		t.Fatal(err)
	}
	if again != id {
		t.Errorf("idempotent re-submit minted a new job: %q then %q", id, again)
	}

	body := waitFleetJobDone(t, f.router, id)
	if got, _ := body["id"].(string); got != id {
		t.Errorf("job body id = %q, want %q", got, id)
	}
	times := resultTotalTimes(t, body)
	if len(times) != len(reqs) {
		t.Fatalf("got %d results for %d jobs", len(times), len(reqs))
	}
	for i, req := range reqs {
		want := directSolve(t, req).TotalTime
		if math.Abs(times[i]-want) > 1e-13 {
			t.Errorf("job %d: total_time %v, want %v", i, times[i], want)
		}
	}
}

// TestRouterJobTakeover: when the prober marks the replica owning a
// pending job down, the router re-dispatches it to a ring successor
// under the same idempotency key; the client's poll on the original ID
// keeps working, tagged routed_via takeover, and the takeover counter
// moves exactly once.
func TestRouterJobTakeover(t *testing.T) {
	f := newTestFleet(t, 3, func(c *Config) {
		c.ProbeInterval = 10 * time.Millisecond
		c.ProbeTimeout = 200 * time.Millisecond
		c.ProbeFails = 2
	})
	req := testRequest(25)
	want := directSolve(t, req)

	id, err := f.router.SubmitJob(context.Background(), []*serve.Request{req}, "")
	if err != nil {
		t.Fatal(err)
	}
	job, ok := f.router.jobs.get(id)
	if !ok {
		t.Fatalf("router does not track its own job %q", id)
	}
	if job.idemKey == "" {
		t.Error("routed job has no idempotency key; takeover redispatch would not be idempotent")
	}
	owner := f.repIndex(t, job.owner)
	f.servers[owner].CloseClientConnections()
	f.servers[owner].Close() // SIGKILL stand-in

	waitFor(t, func() bool { return f.router.m.takeovers.Value() == 1 })

	body := waitFleetJobDone(t, f.router, id)
	if got, _ := body["id"].(string); got != id {
		t.Errorf("post-takeover poll id = %q, want original %q", got, id)
	}
	if via, _ := body["routed_via"].(string); via != "takeover" {
		t.Errorf("routed_via = %q, want takeover", via)
	}
	times := resultTotalTimes(t, body)
	if len(times) != 1 || math.Abs(times[0]-want.TotalTime) > 1e-13 {
		t.Errorf("taken-over result %v, want %v", times, want.TotalTime)
	}
	// The dead owner keeps failing probes; the down transition must not
	// re-fire the takeover.
	time.Sleep(50 * time.Millisecond)
	if got := f.router.m.takeovers.Value(); got != 1 {
		t.Errorf("finwl_fleet_job_takeover_total = %d, want exactly 1", got)
	}
}

// TestRouterJournalReplay: a second router opened on the same journal
// remembers which replica owns which job — polls keep working and the
// idempotency window survives the restart.
func TestRouterJournalReplay(t *testing.T) {
	dir := t.TempDir()
	urls := make([]string, 2)
	for i := range urls {
		ts := httptest.NewServer(serve.New(serve.Config{Seed: int64(i) + 1}).Handler())
		defer ts.Close()
		urls[i] = ts.URL
	}
	cfg := Config{
		Replicas:      urls,
		Seed:          1,
		ProbeInterval: time.Hour,
		ProbeFails:    1000,
		RetryBase:     time.Millisecond,
		JournalDir:    dir,
		Fsync:         "always",
	}
	rt1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []*serve.Request{testRequest(14)}
	id, err := rt1.SubmitJob(context.Background(), reqs, "replay-key")
	if err != nil {
		t.Fatal(err)
	}
	waitFleetJobDone(t, rt1, id)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	rt2, err := New(cfg)
	if err != nil {
		t.Fatalf("reopen on the same journal: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = rt2.Drain(ctx)
	})
	again, err := rt2.SubmitJob(context.Background(), reqs, "replay-key")
	if err != nil {
		t.Fatal(err)
	}
	if again != id {
		t.Errorf("restart re-ran the batch: %q then %q", id, again)
	}
	body := waitFleetJobDone(t, rt2, id)
	want := directSolve(t, reqs[0]).TotalTime
	if times := resultTotalTimes(t, body); len(times) != 1 || math.Abs(times[0]-want) > 1e-13 {
		t.Errorf("replayed poll result %v, want %v", times, want)
	}
}

// TestRouterCacheWriteBack: a solve answered by a failover peer while
// its owner was down is replayed against the owner once its probe
// recovers, so the first post-recovery request is already a cache hit.
func TestRouterCacheWriteBack(t *testing.T) {
	f := newTestFleet(t, 2, func(c *Config) {
		c.ProbeInterval = 10 * time.Millisecond
		c.ProbeTimeout = 200 * time.Millisecond
		c.ProbeFails = 2
	})
	req := testRequest(18)
	net, err := req.BuildNetwork()
	if err != nil {
		t.Fatal(err)
	}
	owner := f.router.ring.owner(serve.ShardKey(net, req.K))

	f.injector[owner].Set(chaos.Fault{Mode: chaos.Error, Status: http.StatusInternalServerError})
	waitFor(t, func() bool { return !f.router.reps[owner].healthy.Load() })

	resp, err := f.router.Solve(context.Background(), req)
	if err != nil {
		t.Fatalf("solve with owner down: %v", err)
	}
	if got := f.repIndex(t, resp.RoutedVia); got == owner {
		t.Fatalf("solve answered by the downed owner (%q)", resp.RoutedVia)
	}

	f.injector[owner].Set(chaos.Fault{Mode: chaos.None})
	waitFor(t, func() bool {
		return f.router.reps[owner].healthy.Load() && f.router.m.cacheWarm.Value() >= 1
	})

	warmed, err := f.router.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.repIndex(t, warmed.RoutedVia); got != owner {
		t.Errorf("post-recovery solve routed via %q, want owner", warmed.RoutedVia)
	}
	if !warmed.Cached {
		t.Error("owner's cache was not warmed: post-recovery solve recomputed")
	}
}

// TestRouterJobsHTTP drives the async-job flow through the router's
// HTTP front: the Idempotency-Key header dedups, the poll URL (with its
// replica-prefixed, slash-bearing ID) round-trips.
func TestRouterJobsHTTP(t *testing.T) {
	f := newTestFleet(t, 2, nil)
	ts := httptest.NewServer(f.router.Handler())
	defer ts.Close()

	payload, err := json.Marshal([]*serve.Request{testRequest(12)})
	if err != nil {
		t.Fatal(err)
	}
	post := func() jobAcceptedWire {
		t.Helper()
		httpReq, err := http.NewRequest(http.MethodPost, ts.URL+"/jobs", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		httpReq.Header.Set("Idempotency-Key", "http-key")
		resp, err := http.DefaultClient.Do(httpReq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST /jobs status = %d, want 202", resp.StatusCode)
		}
		var acc jobAcceptedWire
		if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
			t.Fatal(err)
		}
		return acc
	}
	first, second := post(), post()
	if first.ID == "" || first.ID != second.ID {
		t.Fatalf("Idempotency-Key ignored over HTTP: %q then %q", first.ID, second.ID)
	}

	waitFor(t, func() bool {
		resp, err := http.Get(ts.URL + first.Poll)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status = %d", first.Poll, resp.StatusCode)
		}
		var body struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.State == "done"
	})
}

type jobAcceptedWire struct {
	ID   string `json:"id"`
	Jobs int    `json:"jobs"`
	Poll string `json:"poll"`
}

// TestJobTracker exercises the tracker's exactly-once claim contract
// directly: duplicate adds no-op, a claim is handed out once, release
// re-arms it, and done jobs are never claimed.
func TestJobTracker(t *testing.T) {
	tr := newJobTracker()
	add := func(i int, owner string) string {
		id := fmt.Sprintf("job-%d", i)
		if !tr.add(&fleetJob{id: id, idemKey: "k" + id, owner: owner}) {
			t.Fatalf("add(%s) refused", id)
		}
		return id
	}
	a, b := add(1, "dead"), add(2, "dead")
	c := add(3, "alive")
	if tr.add(&fleetJob{id: a, owner: "other"}) {
		t.Error("duplicate add accepted")
	}
	if id, ok := tr.byIdemKey("k" + a); !ok || id != a {
		t.Errorf("byIdemKey = %q, %v", id, ok)
	}
	if !tr.markDone(b) || tr.markDone(b) {
		t.Error("markDone must report the transition exactly once")
	}

	claimed := tr.claimOrphans("dead")
	if len(claimed) != 1 || claimed[0].id != a {
		t.Fatalf("claimOrphans = %v, want just %s (done jobs and other owners excluded)", claimed, a)
	}
	if again := tr.claimOrphans("dead"); len(again) != 0 {
		t.Errorf("second claim returned %v, want nothing", again)
	}
	tr.release(a)
	if again := tr.claimOrphans("dead"); len(again) != 1 {
		t.Error("released claim was not retryable")
	}
	if got := tr.claimOrphans("alive"); len(got) != 1 || got[0].id != c {
		t.Errorf("claimOrphans(alive) = %v", got)
	}
	tr.redirect(c, "new-c", "successor")
	if job, _ := tr.get(c); job.newID != "new-c" || job.owner != "successor" {
		t.Errorf("redirect not recorded: %+v", job)
	}
}
