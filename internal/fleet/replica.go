package fleet

import (
	"sync"
	"sync/atomic"

	"finwl/internal/obs"
	"finwl/internal/serve"
)

// replica is the router's live view of one finwld backend: its
// address, the active-probe verdict, the passive-health breaker fed by
// forwarding outcomes, and the load signals the WWTA spillover rule
// weighs (router-side in-flight hops, the replica's own admission
// queue depth from /stats, and an EWMA of hop latency).
type replica struct {
	url string
	br  *serve.Breaker // passive health: trips on transport faults / untyped 5xx

	healthy    atomic.Bool  // active-probe verdict; optimistic true at start
	probeFails atomic.Int64 // consecutive failed probes
	inflight   atomic.Int64 // hops this router currently has outstanding
	queued     atomic.Int64 // replica admission-queue depth, last /stats scrape
	ewmaNs     atomic.Int64 // EWMA hop latency in ns; 0 = no sample yet

	// repID is the replica's job-ID prefix from its /stats scrape
	// (empty until first scraped, or for journal-less replicas); it
	// routes GET /jobs/{id} for jobs the router's tracker has forgotten.
	repID atomic.Value // string

	// warmQ holds solve requests answered by a failover peer while this
	// replica was down; a passing probe drains it to pre-warm the
	// replica's result cache before the ring routes traffic back.
	warmMu sync.Mutex
	warmQ  []*serve.Request

	probeFailC *obs.Counter // finwl_fleet_probe_failures_total{replica=...}
}

// maxWarmQueue bounds the write-back backlog per replica; beyond it
// the oldest entries drop — warming is an optimization, not a promise.
const maxWarmQueue = 64

func (r *replica) setReplicaID(id string) { r.repID.Store(id) }

func (r *replica) replicaID() string {
	id, _ := r.repID.Load().(string)
	return id
}

func (r *replica) queueWarm(req *serve.Request) {
	r.warmMu.Lock()
	defer r.warmMu.Unlock()
	if len(r.warmQ) >= maxWarmQueue {
		r.warmQ = r.warmQ[1:]
	}
	r.warmQ = append(r.warmQ, req)
}

func (r *replica) drainWarm() []*serve.Request {
	r.warmMu.Lock()
	defer r.warmMu.Unlock()
	q := r.warmQ
	r.warmQ = nil
	return q
}

func newReplica(url string, br *serve.Breaker) *replica {
	r := &replica{url: url, br: br}
	// Optimistic until the first probe: a router booting alongside its
	// fleet should not 503 every request for one probe interval.
	r.healthy.Store(true)
	return r
}

// observe folds one hop latency into the EWMA. A CAS loop rather than
// a mutex: hops on different goroutines race here on every request.
func (r *replica) observe(ns int64, alpha float64) {
	for {
		old := r.ewmaNs.Load()
		next := ns
		if old != 0 {
			next = int64(alpha*float64(ns) + (1-alpha)*float64(old))
		}
		if r.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// depth is the outstanding-work count the spillover gate checks:
// what this router has in flight plus what the replica itself reports
// queued for admission.
func (r *replica) depth() int64 {
	return r.inflight.Load() + r.queued.Load()
}

// load is the WWTA weight — outstanding work times expected per-hop
// service time — so a slow replica with a short queue can still lose
// to a fast replica with a longer one. An unsampled EWMA degenerates
// to plain depth comparison.
func (r *replica) load() float64 {
	ewma := float64(r.ewmaNs.Load())
	if ewma <= 0 {
		ewma = 1
	}
	return float64(r.depth()) * ewma
}

// routable reports whether the planner should consider this replica at
// all: actively healthy and passive breaker not open. The failover
// walk re-checks via Breaker.Allow so a half-open breaker admits its
// single probe hop.
func (r *replica) routable() bool {
	return r.healthy.Load() && r.br.State() != serve.BreakerOpen
}
