package multiclass

import (
	"context"
	"fmt"

	"finwl/internal/check"
	"finwl/internal/matrix"
	"finwl/internal/statespace"
)

// Policy selects which queued class replaces a departure (and fills
// the initial K slots).
type Policy int

const (
	// Proportional admits a random queued task: class c with
	// probability proportional to its remaining queued count.
	Proportional Policy = iota
	// PriorityOrder always admits the lowest-numbered class that still
	// has queued tasks.
	PriorityOrder
)

// Workload is a multiclass job.
type Workload struct {
	Counts []int // tasks per class
	K      int   // concurrency limit
	Policy Policy
}

// Result is the transient solution.
type Result struct {
	TotalTime float64
	Epochs    []float64 // mean inter-departure times in departure order
}

// Solver evaluates multiclass finite workloads. Levels (population
// vectors) are built and factored lazily and cached; a Solver may be
// reused across workloads of the same network.
type Solver struct {
	cfg    *Config
	space  *space
	levels map[string]*level
}

// NewSolver validates the configuration.
func NewSolver(cfg *Config) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Solver{cfg: cfg, space: newSpace(cfg), levels: map[string]*level{}}, nil
}

func popKey(pop []int) string {
	b := make([]byte, len(pop))
	for i, v := range pop {
		b[i] = byte(v)
	}
	return string(b)
}

// levelFor builds (or fetches) the level of a population vector,
// including its factorization and departure maps. A population whose
// I−P is singular (some state can postpone departures forever)
// surfaces as a check.ErrSingular-matching error.
func (s *Solver) levelFor(pop []int) (*level, error) {
	key := popKey(pop)
	if lvl, ok := s.levels[key]; ok {
		return lvl, nil
	}
	lvl := s.space.enumerate(pop)
	if err := s.buildMatrices(lvl); err != nil {
		return nil, err
	}
	s.levels[key] = lvl
	return lvl, nil
}

func (s *Solver) buildMatrices(lvl *level) error {
	cfg := s.cfg
	sp := s.space
	d := len(lvl.states)
	lvl.mDiag = make([]float64, d)
	lvl.p = matrix.New(d, d)
	lvl.q = make([]*matrix.Matrix, cfg.Classes)
	neighbors := make([]*level, cfg.Classes)
	for c := 0; c < cfg.Classes; c++ {
		if lvl.pop[c] > 0 {
			down := append([]int(nil), lvl.pop...)
			down[c]--
			var err error
			neighbors[c], err = s.levelFor(down)
			if err != nil {
				return err
			}
			lvl.q[c] = matrix.New(d, len(neighbors[c].states))
		}
	}

	// Separate buffers: the removal fan-out keeps iterating over
	// removeBuf after each emit, so the arrival construction must not
	// reuse it.
	removeBuf := make([]int, sp.width)
	arriveBuf := make([]int, sp.width)
	for i, state := range lvl.states {
		// Total event rate.
		var total float64
		s.forEachActive(state, func(st, c int, rate float64) { total += rate })
		if total == 0 {
			// Empty population vector: no events.
			lvl.mDiag[i] = 1
			continue
		}
		lvl.mDiag[i] = total

		s.forEachActive(state, func(st, c int, rate float64) {
			w0 := rate / total
			s.forEachRemoval(state, st, c, removeBuf, func(base []int, bw float64) {
				// Route within the network.
				for dst := 0; dst < len(cfg.Stations); dst++ {
					r := cfg.Route[c].At(st, dst)
					if r == 0 {
						continue
					}
					copy(arriveBuf, base)
					s.addArrival(arriveBuf, dst, c)
					lvl.p.Inc(i, lvl.index[sp.key(arriveBuf)], w0*bw*r)
				}
				// Leave the system.
				if e := cfg.Exit[c][st]; e > 0 {
					j := neighbors[c].index[sp.key(base)]
					lvl.q[c].Inc(i, j, w0*bw*e)
				}
			})
		})
	}

	a := matrix.Identity(d).Sub(lvl.p)
	fact, err := matrix.Factor(a)
	if err != nil {
		return fmt.Errorf("multiclass: I−P singular at pop %v (tasks can avoid departing): %w", lvl.pop, err)
	}
	lvl.fact = fact
	rhs := make([]float64, d)
	for i := range rhs {
		rhs[i] = 1 / lvl.mDiag[i]
	}
	lvl.tau = fact.Solve(rhs)
	return nil
}

// forEachActive visits every completing unit: (station, class, rate).
func (s *Solver) forEachActive(state []int, f func(st, c int, rate float64)) {
	for st := range s.cfg.Stations {
		switch s.cfg.Stations[st].Kind {
		case statespace.Delay:
			for c := 0; c < s.cfg.Classes; c++ {
				if n := s.space.count(state, st, c); n > 0 {
					f(st, c, float64(n)*s.cfg.Rates[st][c])
				}
			}
		case statespace.Queue:
			if s.space.stationTotal(state, st) > 0 {
				c := s.space.serving(state, st)
				f(st, c, s.cfg.Rates[st][c])
			}
		}
	}
}

// forEachRemoval removes one class-c customer from station st,
// fanning out over the next serving class at ROS queues.
func (s *Solver) forEachRemoval(state []int, st, c int, buf []int, emit func(base []int, w float64)) {
	sp := s.space
	switch s.cfg.Stations[st].Kind {
	case statespace.Delay:
		copy(buf, state)
		sp.setCount(buf, st, c, sp.count(buf, st, c)-1)
		emit(buf, 1)
	case statespace.Queue:
		copy(buf, state)
		sp.setCount(buf, st, c, sp.count(buf, st, c)-1)
		total := sp.stationTotal(buf, st)
		if total == 0 {
			sp.setServing(buf, st, 0)
			emit(buf, 1)
			return
		}
		for sc := 0; sc < s.cfg.Classes; sc++ {
			n := sp.count(buf, st, sc)
			if n == 0 {
				continue
			}
			sp.setServing(buf, st, sc)
			emit(buf, float64(n)/float64(total))
		}
	}
}

// addArrival mutates state with a class-c arrival at station dst.
func (s *Solver) addArrival(state []int, dst, c int) {
	sp := s.space
	wasEmpty := s.cfg.Stations[dst].Kind == statespace.Queue && sp.stationTotal(state, dst) == 0
	sp.setCount(state, dst, c, sp.count(state, dst, c)+1)
	if wasEmpty {
		sp.setServing(state, dst, c)
	}
}

// node is one point of the population-lattice walk: a population
// vector, the per-class queued remainder, and the conditional state
// distribution with its weight.
type node struct {
	pop    []int
	queued []int
	dist   []float64
	weight float64
}

// Solve walks the workload: admissions to level K, then N departures
// with policy-driven replacement, accumulating expected epoch times.
func (s *Solver) Solve(w Workload) (*Result, error) {
	return s.SolveCtx(context.Background(), w)
}

// SolveCtx is Solve under a context: cancellation is polled once per
// departure epoch and surfaces as a check.ErrCanceled-matching error.
func (s *Solver) SolveCtx(ctx context.Context, w Workload) (*Result, error) {
	if len(w.Counts) != s.cfg.Classes {
		return nil, check.Invalid("multiclass: %d class counts for %d classes", len(w.Counts), s.cfg.Classes)
	}
	total := 0
	for c, n := range w.Counts {
		if n < 0 {
			return nil, check.Invalid("multiclass: negative count for class %d", c)
		}
		total += n
	}
	if total < 1 {
		return nil, check.Invalid("multiclass: empty workload")
	}
	if w.K < 1 {
		return nil, check.Invalid("multiclass: K must be >= 1, got %d", w.K)
	}
	admit := w.K
	if admit > total {
		admit = total
	}

	// Start: empty system, everything queued.
	emptyPop := make([]int, s.cfg.Classes)
	start := node{
		pop:    emptyPop,
		queued: append([]int(nil), w.Counts...),
		dist:   []float64{1},
		weight: 1,
	}
	nodes := []node{start}
	var err error
	for i := 0; i < admit; i++ {
		nodes, err = s.admitOne(nodes, w.Policy)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{Epochs: make([]float64, 0, total)}
	for dep := 0; dep < total; dep++ {
		if err := check.Canceled(ctx); err != nil {
			return nil, err
		}
		// Expected epoch time across nodes.
		var t float64
		for _, nd := range nodes {
			lvl, err := s.levelFor(nd.pop)
			if err != nil {
				return nil, err
			}
			t += nd.weight * matrix.Dot(nd.dist, lvl.tau)
		}
		res.Epochs = append(res.Epochs, t)
		res.TotalTime += t

		// Departure branching by class, then replacement.
		var next []node
		for _, nd := range nodes {
			lvl, err := s.levelFor(nd.pop)
			if err != nil {
				return nil, err
			}
			y := lvl.fact.SolveLeft(nd.dist)
			for c := 0; c < s.cfg.Classes; c++ {
				if lvl.q[c] == nil {
					continue
				}
				u := lvl.q[c].VecMul(y)
				mass := matrix.VecSum(u)
				if mass < 1e-14 {
					continue
				}
				down := append([]int(nil), nd.pop...)
				down[c]--
				next = append(next, node{
					pop:    down,
					queued: nd.queued,
					dist:   matrix.VecScale(1/mass, u),
					weight: nd.weight * mass,
				})
			}
		}
		nodes = mergeNodes(next)
		// Replacement (if any tasks remain queued).
		anyQueued := false
		for _, nd := range nodes {
			for _, q := range nd.queued {
				if q > 0 {
					anyQueued = true
				}
			}
		}
		if anyQueued && dep < total-1 {
			nodes, err = s.admitOne(nodes, w.Policy)
			if err != nil {
				return nil, err
			}
		}
	}
	if err := finiteTotal(res.TotalTime); err != nil {
		return nil, err
	}
	return res, nil
}

// finiteTotal screens the result boundary for NaN/Inf.
func finiteTotal(v float64) error {
	if v != v || v > 1e308 || v < -1e308 {
		return fmt.Errorf("multiclass: total time is %v: %w", v, check.ErrNumeric)
	}
	return nil
}

// admitOne admits one queued task to every node per the policy.
func (s *Solver) admitOne(nodes []node, policy Policy) ([]node, error) {
	var out []node
	for _, nd := range nodes {
		totalQueued := 0
		for _, q := range nd.queued {
			totalQueued += q
		}
		if totalQueued == 0 {
			out = append(out, nd)
			continue
		}
		admitClass := func(c int, w float64) error {
			up := append([]int(nil), nd.pop...)
			up[c]++
			queued := append([]int(nil), nd.queued...)
			queued[c]--
			dist, err := s.applyArrival(nd.pop, nd.dist, c)
			if err != nil {
				return err
			}
			out = append(out, node{
				pop:    up,
				queued: queued,
				dist:   dist,
				weight: nd.weight * w,
			})
			return nil
		}
		switch policy {
		case PriorityOrder:
			for c, q := range nd.queued {
				if q > 0 {
					if err := admitClass(c, 1); err != nil {
						return nil, err
					}
					break
				}
			}
		default: // Proportional
			for c, q := range nd.queued {
				if q > 0 {
					if err := admitClass(c, float64(q)/float64(totalQueued)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return mergeNodes(out), nil
}

// applyArrival maps a distribution at pop to pop+e_c through the
// class-c entry vector.
func (s *Solver) applyArrival(pop []int, dist []float64, c int) ([]float64, error) {
	from, err := s.levelFor(pop)
	if err != nil {
		return nil, err
	}
	up := append([]int(nil), pop...)
	up[c]++
	to, err := s.levelFor(up)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(to.states))
	scratch := make([]int, s.space.width)
	for i, p := range dist {
		if p == 0 {
			continue
		}
		for e, pe := range s.cfg.Entry[c] {
			if pe == 0 {
				continue
			}
			copy(scratch, from.states[i])
			s.addArrival(scratch, e, c)
			out[to.index[s.space.key(scratch)]] += p * pe
		}
	}
	return out, nil
}

// mergeNodes combines nodes sharing (pop, queued).
func mergeNodes(nodes []node) []node {
	type acc struct {
		node
	}
	merged := map[string]*acc{}
	var order []string
	for _, nd := range nodes {
		key := popKey(nd.pop) + "|" + popKey(nd.queued)
		if a, ok := merged[key]; ok {
			for i := range a.dist {
				a.dist[i] = (a.dist[i]*a.weight + nd.dist[i]*nd.weight) / (a.weight + nd.weight)
			}
			a.weight += nd.weight
			continue
		}
		cp := nd
		cp.dist = append([]float64(nil), nd.dist...)
		merged[key] = &acc{cp}
		order = append(order, key)
	}
	out := make([]node, 0, len(merged))
	for _, key := range order {
		out = append(out, merged[key].node)
	}
	return out
}
