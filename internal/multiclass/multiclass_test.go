package multiclass

import (
	"math"
	"testing"

	"finwl/internal/core"
	"finwl/internal/matrix"
	"finwl/internal/network"
	"finwl/internal/phase"
	"finwl/internal/statespace"
)

// twoClassCfg builds a central-cluster-like 3-station network (CPU
// delay, Comm queue, Disk queue) with per-class rates.
func twoClassCfg(cpuRates, commRates, diskRates [2]float64, q float64) *Config {
	routes := make([]*matrix.Matrix, 2)
	exits := make([][]float64, 2)
	entries := make([][]float64, 2)
	for c := 0; c < 2; c++ {
		r := matrix.New(3, 3)
		r.Set(0, 1, (1-q)/2) // CPU → Comm
		r.Set(0, 2, (1-q)/2) // CPU → Disk
		r.Set(1, 0, 1)
		r.Set(2, 0, 1)
		routes[c] = r
		exits[c] = []float64{q, 0, 0}
		entries[c] = []float64{1, 0, 0}
	}
	return &Config{
		Stations: []Station{
			{Name: "CPU", Kind: statespace.Delay},
			{Name: "Comm", Kind: statespace.Queue},
			{Name: "Disk", Kind: statespace.Queue},
		},
		Classes: 2,
		Rates: [][]float64{
			{cpuRates[0], cpuRates[1]},
			{commRates[0], commRates[1]},
			{diskRates[0], diskRates[1]},
		},
		Route: routes,
		Exit:  exits,
		Entry: entries,
	}
}

func approx(t *testing.T, got, want, relTol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Max(1, math.Abs(want)) {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

// With both classes identical, the multiclass solver must reproduce
// the single-class core solver exactly, whatever the class split.
func TestIdenticalClassesMatchSingleClass(t *testing.T) {
	cfg := twoClassCfg([2]float64{2, 2}, [2]float64{3, 3}, [2]float64{1.5, 1.5}, 0.25)
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The equivalent single-class network.
	route := matrix.New(3, 3)
	route.Set(0, 1, 0.375)
	route.Set(0, 2, 0.375)
	route.Set(1, 0, 1)
	route.Set(2, 0, 1)
	single := &network.Network{
		Stations: []network.Station{
			{Name: "CPU", Kind: statespace.Delay, Service: phase.MustExpo(2)},
			{Name: "Comm", Kind: statespace.Queue, Service: phase.MustExpo(3)},
			{Name: "Disk", Kind: statespace.Queue, Service: phase.MustExpo(1.5)},
		},
		Route: route,
		Exit:  []float64{0.25, 0, 0},
		Entry: []float64{1, 0, 0},
	}
	sc, err := core.NewSolver(single, 3)
	if err != nil {
		t.Fatal(err)
	}

	for _, counts := range [][]int{{6, 0}, {3, 3}, {2, 4}} {
		for _, policy := range []Policy{Proportional, PriorityOrder} {
			res, err := s.Solve(Workload{Counts: counts, K: 3, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			want, err := sc.TotalTime(6)
			if err != nil {
				t.Fatal(err)
			}
			approx(t, res.TotalTime, want, 1e-9, "identical classes vs single class")
		}
	}
}

// A single queue serves sequentially: E(T) = Σ N_c/µ_c for any
// admission policy and K.
func TestSingleQueueSequentialMix(t *testing.T) {
	cfg := &Config{
		Stations: []Station{{Name: "q", Kind: statespace.Queue}},
		Classes:  2,
		Rates:    [][]float64{{2, 0.5}},
		Route:    []*matrix.Matrix{matrix.New(1, 1), matrix.New(1, 1)},
		Exit:     [][]float64{{1}, {1}},
		Entry:    [][]float64{{1}, {1}},
	}
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []Policy{Proportional, PriorityOrder} {
		res, err := s.Solve(Workload{Counts: []int{3, 2}, K: 2, Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		want := 3.0/2 + 2.0/0.5
		approx(t, res.TotalTime, want, 1e-9, "sequential mixed queue")
		if len(res.Epochs) != 5 {
			t.Fatalf("epochs %d, want 5", len(res.Epochs))
		}
	}
}

// Admission order matters on a delay station: starting the slow class
// first shortens the makespan (LPT intuition). Class 0 slow, class 1
// fast; PriorityOrder admits class 0 first.
func TestPolicyEffectOnDelayStation(t *testing.T) {
	cfgSlowFirst := &Config{
		Stations: []Station{{Name: "d", Kind: statespace.Delay}},
		Classes:  2,
		Rates:    [][]float64{{0.25, 2}}, // class 0 mean 4, class 1 mean 0.5
		Route:    []*matrix.Matrix{matrix.New(1, 1), matrix.New(1, 1)},
		Exit:     [][]float64{{1}, {1}},
		Entry:    [][]float64{{1}, {1}},
	}
	s, err := NewSolver(cfgSlowFirst)
	if err != nil {
		t.Fatal(err)
	}
	slowFirst, err := s.Solve(Workload{Counts: []int{2, 6}, K: 2, Policy: PriorityOrder})
	if err != nil {
		t.Fatal(err)
	}
	// Swap class order → fast first under PriorityOrder.
	cfgFastFirst := &Config{
		Stations: cfgSlowFirst.Stations,
		Classes:  2,
		Rates:    [][]float64{{2, 0.25}},
		Route:    cfgSlowFirst.Route,
		Exit:     cfgSlowFirst.Exit,
		Entry:    cfgSlowFirst.Entry,
	}
	s2, err := NewSolver(cfgFastFirst)
	if err != nil {
		t.Fatal(err)
	}
	fastFirst, err := s2.Solve(Workload{Counts: []int{6, 2}, K: 2, Policy: PriorityOrder})
	if err != nil {
		t.Fatal(err)
	}
	if slowFirst.TotalTime >= fastFirst.TotalTime {
		t.Fatalf("slow-first %v should beat fast-first %v", slowFirst.TotalTime, fastFirst.TotalTime)
	}
}

// The analytic solution must sit inside the simulator's CI for a
// genuinely heterogeneous workload, both policies.
func TestMulticlassSimAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated simulation in -short mode")
	}
	cfg := twoClassCfg([2]float64{2, 0.8}, [2]float64{4, 2}, [2]float64{1.2, 0.6}, 0.2)
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []Policy{Proportional, PriorityOrder} {
		w := Workload{Counts: []int{5, 4}, K: 3, Policy: policy}
		res, err := s.Solve(w)
		if err != nil {
			t.Fatal(err)
		}
		mean, ci, err := Replicate(cfg, w, 11, 8000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mean-res.TotalTime) > 4*ci {
			t.Fatalf("policy %v: sim %v ± %v vs analytic %v", policy, mean, ci, res.TotalTime)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	good := twoClassCfg([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1}, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := twoClassCfg([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1}, 0.5)
	bad.Rates[0][1] = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative rate")
	}
	bad2 := twoClassCfg([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1}, 0.5)
	bad2.Entry[1] = []float64{0.5, 0, 0}
	if err := bad2.Validate(); err == nil {
		t.Fatal("accepted entry not summing to 1")
	}
	bad3 := twoClassCfg([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1}, 0.5)
	bad3.Stations[0].Kind = statespace.Multi
	if err := bad3.Validate(); err == nil {
		t.Fatal("accepted multi station")
	}
}

func TestSolveRejections(t *testing.T) {
	cfg := twoClassCfg([2]float64{1, 1}, [2]float64{1, 1}, [2]float64{1, 1}, 0.5)
	s, err := NewSolver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(Workload{Counts: []int{1}, K: 1}); err == nil {
		t.Fatal("accepted wrong class count length")
	}
	if _, err := s.Solve(Workload{Counts: []int{0, 0}, K: 1}); err == nil {
		t.Fatal("accepted empty workload")
	}
	if _, err := s.Solve(Workload{Counts: []int{1, 1}, K: 0}); err == nil {
		t.Fatal("accepted K=0")
	}
	if _, err := s.Solve(Workload{Counts: []int{-1, 2}, K: 1}); err == nil {
		t.Fatal("accepted negative count")
	}
}

// Mirror of the single-class cross-check: the analytic multiclass
// solution for a heterogeneous two-class central cluster must agree
// with the single-class solver when classes are merged appropriately
// (probabilistic class assignment == mixing at the task level is NOT
// an identity, so instead verify total time monotonicity: adding a
// slower class extends the job).
func TestSlowerClassExtendsJob(t *testing.T) {
	fast := twoClassCfg([2]float64{2, 2}, [2]float64{4, 4}, [2]float64{1.5, 1.5}, 0.25)
	mixed := twoClassCfg([2]float64{2, 1}, [2]float64{4, 2}, [2]float64{1.5, 0.75}, 0.25)
	sFast, err := NewSolver(fast)
	if err != nil {
		t.Fatal(err)
	}
	sMixed, err := NewSolver(mixed)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Counts: []int{4, 3}, K: 3, Policy: Proportional}
	a, err := sFast.Solve(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sMixed.Solve(w)
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalTime <= a.TotalTime {
		t.Fatalf("slower class 1 should extend the job: %v vs %v", b.TotalTime, a.TotalTime)
	}
}
